package nfvnice

import (
	"math"
	"testing"
)

// buildSmallChain is a cheap 2-NF topology for metric-math tests.
func buildSmallChain() (*Platform, int) {
	p := NewPlatform(DefaultConfig(SchedBatch, ModeNFVnice))
	core := p.AddCore()
	n1 := p.AddNF("a", FixedCost(150), core)
	n2 := p.AddNF("b", FixedCost(300), core)
	ch := p.AddChain("ab", n1, n2)
	f := UDPFlow(0, 64)
	p.MapFlow(f, ch)
	p.AddCBR(f, LineRate10G(64))
	return p, ch
}

func checkFinite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, want finite", name, v)
	}
}

// TestZeroElapsedWindow pins the edge case of a snapshot taken and read at
// the same instant: every windowed metric must come back zero, never NaN or
// Inf from a division by a zero-length window.
func TestZeroElapsedWindow(t *testing.T) {
	p, ch := buildSmallChain()
	p.Run(Milliseconds(10))
	snap := p.TakeSnapshot() // no Run in between: elapsed == 0

	for i, m := range p.NFMetricsSince(snap) {
		if m.ProcessedPps != 0 || m.WastedDropsPps != 0 || m.EntryDropsPps != 0 {
			t.Errorf("nf %d: nonzero rates over empty window: %+v", i, m)
		}
		checkFinite(t, "CPUShare", m.CPUShare)
		checkFinite(t, "RuntimeMs", m.RuntimeMs)
		if m.CPUShare != 0 {
			t.Errorf("nf %d: CPUShare = %v over empty window", i, m.CPUShare)
		}
	}
	for i, c := range p.CoreMetricsSince(snap) {
		checkFinite(t, "Utilization", c.Utilization)
		checkFinite(t, "SwitchOverhead", c.SwitchOverhead)
		if c.Utilization != 0 || c.SwitchOverhead != 0 {
			t.Errorf("core %d: nonzero utilization over empty window: %+v", i, c)
		}
	}
	if r := p.ChainDeliveredSince(snap, ch); r != 0 {
		t.Errorf("ChainDeliveredSince = %v, want 0", r)
	}
	if v := p.ChainDeliveredMbpsSince(snap, ch); v != 0 {
		t.Errorf("ChainDeliveredMbpsSince = %v, want 0", v)
	}
	checkFinite(t, "ChainDeliveredMbpsSince", p.ChainDeliveredMbpsSince(snap, ch))
	if r := p.TotalWastedSince(snap); r != 0 {
		t.Errorf("TotalWastedSince = %v, want 0", r)
	}
	if r := p.TotalDeliveredSince(snap); r != 0 {
		t.Errorf("TotalDeliveredSince = %v, want 0", r)
	}
	if r := p.QueueDropSince(snap, 0); r != 0 {
		t.Errorf("QueueDropSince = %v, want 0", r)
	}
}

// TestWindowedMetrics exercises TakeSnapshot / *Since over a real window, in
// table form across the metric accessors.
func TestWindowedMetrics(t *testing.T) {
	p, ch := buildSmallChain()
	w := p.RunWindow(Milliseconds(20), Milliseconds(50))

	if r := w.ChainRate(ch); r <= 0 {
		t.Fatalf("ChainRate = %v, want > 0", r)
	}
	if v := w.ChainMbps(ch); v <= 0 {
		t.Errorf("ChainMbps = %v, want > 0", v)
	}
	if w.TotalDelivered() != w.ChainRate(ch) {
		t.Errorf("TotalDelivered %v != single chain rate %v", w.TotalDelivered(), w.ChainRate(ch))
	}
	nfm := w.NFMetrics()
	if len(nfm) != 2 {
		t.Fatalf("NFMetrics count = %d, want 2", len(nfm))
	}
	for _, m := range nfm {
		if m.ProcessedPps <= 0 {
			t.Errorf("nf %s processed nothing", m.Name)
		}
		checkFinite(t, "CPUShare", m.CPUShare)
		if m.CPUShare <= 0 || m.CPUShare > 1 {
			t.Errorf("nf %s CPUShare = %v, want (0,1]", m.Name, m.CPUShare)
		}
	}
	// Delivered cannot exceed the slowest stage's processing rate.
	if w.ChainRate(ch) > nfm[1].ProcessedPps {
		t.Errorf("chain rate %v exceeds terminal NF rate %v", w.ChainRate(ch), nfm[1].ProcessedPps)
	}
	for i, c := range w.CoreMetrics() {
		// A run span overlapping the window edge can push measured busy
		// cycles a hair past the window length.
		if c.Utilization <= 0 || c.Utilization > 1.01 {
			t.Errorf("core %d utilization = %v, want (0,1]", i, c.Utilization)
		}
		if c.SwitchOverhead < 0 || c.SwitchOverhead > c.Utilization {
			t.Errorf("core %d switch overhead %v out of range (util %v)", i, c.SwitchOverhead, c.Utilization)
		}
	}
	if q := p.LatencyQuantile(0.5); q <= 0 || math.IsNaN(q) {
		t.Errorf("p50 latency = %v, want > 0", q)
	}
	if p50, p99 := p.LatencyQuantile(0.5), p.LatencyQuantile(0.99); p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}

// TestBackToBackWindows chains two RunWindow calls and checks the windows
// measure disjoint spans: totals accumulate, rates stay in the same regime.
func TestBackToBackWindows(t *testing.T) {
	p, ch := buildSmallChain()
	w1 := p.RunWindow(Milliseconds(20), Milliseconds(50))
	r1 := w1.ChainRate(ch)
	mark := p.Now()

	w2 := p.RunWindow(0, Milliseconds(50))
	r2 := w2.ChainRate(ch)

	if p.Now() != mark+Milliseconds(50) {
		t.Errorf("second window advanced to %v, want %v", p.Now(), mark+Milliseconds(50))
	}
	if r1 <= 0 || r2 <= 0 {
		t.Fatalf("rates: w1=%v w2=%v, want both > 0", r1, r2)
	}
	// Same steady-state workload: the two windows should agree within 20%.
	ratio := float64(r2) / float64(r1)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("window rates diverge: w1=%v w2=%v (ratio %.2f)", r1, r2, ratio)
	}
	// The first window's snapshot is immutable; re-reading it after more
	// simulation extends its span to now but must stay in the same regime.
	if again := w1.ChainRate(ch); float64(again) < float64(r1)*0.8 || float64(again) > float64(r1)*1.25 {
		t.Errorf("w1 rate drifted after more simulation: %v -> %v", r1, again)
	}
}
