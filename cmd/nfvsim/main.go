// Command nfvsim runs the NFVnice reproduction experiments: every table and
// figure from the paper's evaluation, by id.
//
// Usage:
//
//	nfvsim list
//	nfvsim run fig7 [-quick] [-csv]
//	nfvsim all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nfvnice"
	"nfvnice/internal/exp"
	"nfvnice/internal/obs"
	"nfvnice/internal/telemetry"
)

func usage() {
	fmt.Fprintf(os.Stderr, `nfvsim — NFVnice (SIGCOMM'17) reproduction experiments

Usage:
  nfvsim list                 list experiment ids
  nfvsim run <id> [flags]     run one experiment
  nfvsim all [flags]          run every experiment
  nfvsim spec <file.json>     build a platform from a declarative spec and
                              report per-chain throughput (100ms warm, 300ms
                              measured)

Flags (run/all):
  -quick   short windows (smoke test quality)
  -csv     emit CSV instead of aligned tables
  -chart   render ASCII bar charts instead of tables

Flags (spec):
  -trace <file>     stream a Chrome/Perfetto trace JSON
  -record <file>    write the metric registry as a CSV time series
  -recordms <ms>    recorder sample period in simulated ms (default 10)
  -events <file>    write the structured event log as JSON
  -listen <addr>    after the run, serve /metrics, /snapshot, /events and
                    pprof until interrupted
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	quick := fs.Bool("quick", false, "short measurement windows")
	csv := fs.Bool("csv", false, "CSV output")
	chart := fs.Bool("chart", false, "ASCII bar charts")

	switch cmd {
	case "list":
		for _, e := range exp.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
	case "run":
		if len(os.Args) < 3 {
			usage()
		}
		id := os.Args[2]
		fs.Parse(os.Args[3:])
		run, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "nfvsim: unknown experiment %q (try 'nfvsim list')\n", id)
			os.Exit(1)
		}
		emit(id, run, *quick, *csv, *chart)
	case "all":
		fs.Parse(os.Args[2:])
		for _, e := range exp.Registry() {
			emit(e.ID, e.Run, *quick, *csv, *chart)
		}
	case "spec":
		if len(os.Args) < 3 {
			usage()
		}
		sfs := flag.NewFlagSet("spec", flag.ExitOnError)
		opts := specOpts{}
		sfs.StringVar(&opts.traceOut, "trace", "", "stream a Chrome/Perfetto trace JSON to this file")
		sfs.StringVar(&opts.listen, "listen", "", "after the run, serve /metrics, /snapshot, /events and pprof on this address (e.g. :9090) until interrupted")
		sfs.StringVar(&opts.recordOut, "record", "", "write a CSV time series of the metric registry to this file")
		sfs.Float64Var(&opts.recordMs, "recordms", 10, "recorder sample period in simulated milliseconds")
		sfs.StringVar(&opts.eventsOut, "events", "", "write the structured event log as JSON to this file")
		sfs.Parse(os.Args[3:])
		runSpec(os.Args[2], opts)
	default:
		usage()
	}
}

type specOpts struct {
	traceOut  string
	listen    string
	recordOut string
	recordMs  float64
	eventsOut string
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfvsim:", err)
	os.Exit(1)
}

func runSpec(path string, opts specOpts) {
	s, err := nfvnice.LoadSpecFile(path)
	if err != nil {
		fatal(err)
	}
	p, chains, err := s.Build()
	if err != nil {
		fatal(err)
	}
	tel := p.EnableTelemetry()
	var trace *obs.ChromeWriter
	if opts.traceOut != "" {
		f, err := os.Create(opts.traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		trace = obs.NewChromeWriter(f)
		tel.AttachTrace(trace)
	}
	var rec *telemetry.Recorder
	if opts.recordOut != "" {
		if opts.recordMs <= 0 {
			fmt.Fprintln(os.Stderr, "nfvsim: -recordms must be positive")
			os.Exit(2)
		}
		rec = tel.StartRecorder(nfvnice.Milliseconds(opts.recordMs), 0)
	}

	w := p.RunWindow(nfvnice.Milliseconds(100), nfvnice.Milliseconds(300))

	fmt.Printf("%-16s %12s\n", "chain", "Mpps")
	for i, ch := range chains {
		name := s.Chains[i].Name
		if name == "" {
			name = fmt.Sprintf("chain%d", ch)
		}
		fmt.Printf("%-16s %12.3f\n", name, float64(w.ChainRate(ch))/1e6)
	}
	fmt.Printf("%-16s %12.3f\n", "wasted", float64(w.TotalWasted())/1e6)
	for _, nm := range w.NFMetrics() {
		fmt.Printf("nf %-12s svc %8.3f Mpps  cpu-share %5.1f%%  svc-time %d cyc\n",
			nm.Name, float64(nm.ProcessedPps)/1e6, nm.CPUShare*100, nm.ServiceTimeCycles)
	}

	if trace != nil {
		if err := trace.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[trace: %d events -> %s]\n", trace.Len(), opts.traceOut)
	}
	if rec != nil {
		f, err := os.Create(opts.recordOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteCSV(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "[recorder: %d samples -> %s]\n", rec.Len(), opts.recordOut)
		if n := rec.Overwritten(); n > 0 {
			fmt.Fprintf(os.Stderr, "[recorder: %d oldest samples overwritten by the bounded ring]\n", n)
		}
	}
	if opts.eventsOut != "" {
		f, err := os.Create(opts.eventsOut)
		if err != nil {
			fatal(err)
		}
		if err := tel.Events.WriteJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "[events: %d -> %s]\n", tel.Events.Len(), opts.eventsOut)
	}
	if n := tel.Events.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "[events: %d oldest entries overwritten by the bounded ring]\n", n)
	}
	if opts.listen != "" {
		srv, err := telemetry.StartServer(opts.listen, tel.Registry, tel.Events)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[serving final metrics at http://%s/metrics (also /snapshot, /events, /debug/pprof) — Ctrl-C to exit]\n", srv.Addr)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.Close()
	}
}

func emit(id string, run exp.Runner, quick, csv, chart bool) {
	d := exp.Default()
	if quick {
		d = exp.Quick()
	}
	start := time.Now()
	res := run(d)
	elapsed := time.Since(start)
	switch {
	case csv:
		for _, t := range res.Tables {
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		}
	case chart:
		for _, t := range res.Tables {
			fmt.Println(t.Chart())
		}
	default:
		fmt.Print(res.String())
	}
	fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, elapsed.Round(time.Millisecond))
}
