// Command nfvsim runs the NFVnice reproduction experiments: every table and
// figure from the paper's evaluation, by id.
//
// Usage:
//
//	nfvsim list
//	nfvsim run fig7 [-quick] [-csv]
//	nfvsim all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nfvnice"
	"nfvnice/internal/exp"
	"nfvnice/internal/obs"
)

func usage() {
	fmt.Fprintf(os.Stderr, `nfvsim — NFVnice (SIGCOMM'17) reproduction experiments

Usage:
  nfvsim list                 list experiment ids
  nfvsim run <id> [flags]     run one experiment
  nfvsim all [flags]          run every experiment
  nfvsim spec <file.json>     build a platform from a declarative spec and
                              report per-chain throughput (100ms warm, 300ms
                              measured)

Flags:
  -quick   short windows (smoke test quality)
  -csv     emit CSV instead of aligned tables
  -chart   render ASCII bar charts instead of tables
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	quick := fs.Bool("quick", false, "short measurement windows")
	csv := fs.Bool("csv", false, "CSV output")
	chart := fs.Bool("chart", false, "ASCII bar charts")

	switch cmd {
	case "list":
		for _, e := range exp.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
	case "run":
		if len(os.Args) < 3 {
			usage()
		}
		id := os.Args[2]
		fs.Parse(os.Args[3:])
		run, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "nfvsim: unknown experiment %q (try 'nfvsim list')\n", id)
			os.Exit(1)
		}
		emit(id, run, *quick, *csv, *chart)
	case "all":
		fs.Parse(os.Args[2:])
		for _, e := range exp.Registry() {
			emit(e.ID, e.Run, *quick, *csv, *chart)
		}
	case "spec":
		if len(os.Args) < 3 {
			usage()
		}
		sfs := flag.NewFlagSet("spec", flag.ExitOnError)
		traceOut := sfs.String("trace", "", "write a Chrome/Perfetto trace JSON to this file")
		sfs.Parse(os.Args[3:])
		runSpec(os.Args[2], *traceOut)
	default:
		usage()
	}
}

func runSpec(path, traceOut string) {
	s, err := nfvnice.LoadSpecFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvsim:", err)
		os.Exit(1)
	}
	p, chains, err := s.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvsim:", err)
		os.Exit(1)
	}
	var trace *obs.Trace
	if traceOut != "" {
		trace = p.EnableTracing()
	}
	p.Run(nfvnice.Milliseconds(100))
	snap := p.TakeSnapshot()
	p.Run(nfvnice.Milliseconds(400))
	fmt.Printf("%-16s %12s\n", "chain", "Mpps")
	for i, ch := range chains {
		name := s.Chains[i].Name
		if name == "" {
			name = fmt.Sprintf("chain%d", ch)
		}
		fmt.Printf("%-16s %12.3f\n", name, float64(p.ChainDeliveredSince(snap, ch))/1e6)
	}
	fmt.Printf("%-16s %12.3f\n", "wasted", float64(p.TotalWastedSince(snap))/1e6)
	m := p.NFMetricsSince(snap)
	for _, nm := range m {
		fmt.Printf("nf %-12s svc %8.3f Mpps  cpu-share %5.1f%%  svc-time %d cyc\n",
			nm.Name, float64(nm.ProcessedPps)/1e6, nm.CPUShare*100, nm.ServiceTimeCycles)
	}
	if trace != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfvsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, "nfvsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[trace: %d events -> %s]\n", trace.Len(), traceOut)
	}
}

func emit(id string, run exp.Runner, quick, csv, chart bool) {
	d := exp.Default()
	if quick {
		d = exp.Quick()
	}
	start := time.Now()
	res := run(d)
	elapsed := time.Since(start)
	switch {
	case csv:
		for _, t := range res.Tables {
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		}
	case chart:
		for _, t := range res.Tables {
			fmt.Println(t.Chart())
		}
	default:
		fmt.Print(res.String())
	}
	fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, elapsed.Round(time.Millisecond))
}
