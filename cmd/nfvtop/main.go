// Command nfvtop is a terminal dashboard for a live dataplane engine: it
// polls the telemetry endpoints (/snapshot, /healthz, /debug/decisions) of a
// running process — any binary that serves telemetry.NewMux plus the
// engine's debug endpoints, e.g. examples/dataplane_live — and renders the
// paper's control surfaces at a glance: per-stage queue depth against the
// backpressure watermarks, WFQ weights, mover park ratios, per-hop latency
// quantiles from the flight recorder, and the tail of the decision journal.
//
// Usage:
//
//	nfvtop -addr localhost:9090            # refresh twice a second
//	nfvtop -addr localhost:9090 -once      # one frame, no screen control
//	nfvtop -addr localhost:9090 -json      # one merged JSON document, exit
//	nfvtop -interval 1s -n 12              # slower poll, longer journal tail
//
// -json is the scripting surface: it polls /snapshot and /debug/decisions
// once and emits a single JSON object {"snapshot": [...], "decisions": {...}}
// on stdout — the metric families verbatim as the engine exported them, plus
// the journal tail — so shell pipelines (jq, CI assertions) get one document
// instead of scraping two endpoints and the rendered screen.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// The /snapshot wire format (mirrors internal/telemetry's JSON export).
type family struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	Series []series `json:"series"`
}

type series struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *hist             `json:"histogram,omitempty"`
}

type hist struct {
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Buckets [][2]uint64 `json:"buckets"`
}

// decision mirrors the journal's wire form (internal/dataplane.Decision).
type decision struct {
	Seq        uint64  `json:"seq"`
	TimeNanos  int64   `json:"t_ns"`
	Kind       string  `json:"kind"`
	Chain      int     `json:"chain"`
	Stage      string  `json:"stage,omitempty"`
	QueueDepth int     `json:"qdepth,omitempty"`
	HighWater  int     `json:"high_water,omitempty"`
	LowWater   int     `json:"low_water,omitempty"`
	Load       float64 `json:"load,omitempty"`
	CostNanos  float64 `json:"cost_ns,omitempty"`
	OldWeight  int64   `json:"old_weight,omitempty"`
	NewWeight  int64   `json:"new_weight,omitempty"`
	From       string  `json:"from,omitempty"`
	To         string  `json:"to,omitempty"`
	Note       string  `json:"note,omitempty"`
}

type decisionReply struct {
	Total     uint64     `json:"total"`
	Dropped   uint64     `json:"dropped"`
	Decisions []decision `json:"decisions"`
}

// snapshot indexes one /snapshot poll for lookup by family name.
type snapshot map[string]*family

func parseSnapshot(r io.Reader) (snapshot, error) {
	var fams []family
	if err := json.NewDecoder(r).Decode(&fams); err != nil {
		return nil, err
	}
	s := make(snapshot, len(fams))
	for i := range fams {
		s[fams[i].Name] = &fams[i]
	}
	return s, nil
}

// value returns the first series value of a family whose labels include all
// of want (nil want: any series). Missing family or series yields 0.
func (s snapshot) value(name string, want map[string]string) float64 {
	f := s[name]
	if f == nil {
		return 0
	}
	for _, se := range f.Series {
		if se.Value == nil || !labelsMatch(se.Labels, want) {
			continue
		}
		return *se.Value
	}
	return 0
}

// histogram returns the first histogram series matching want, or nil.
func (s snapshot) histogram(name string, want map[string]string) *hist {
	f := s[name]
	if f == nil {
		return nil
	}
	for _, se := range f.Series {
		if se.Hist != nil && labelsMatch(se.Labels, want) {
			return se.Hist
		}
	}
	return nil
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// quantile estimates the q-quantile (0 < q <= 1) of a snapshot histogram by
// linear interpolation inside the winning bucket. Buckets arrive as
// [upper bound, count] pairs with zero-count buckets elided.
func quantile(h *hist, q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum, prevCum float64
	lower := 0.0
	for _, b := range h.Buckets {
		upper, cnt := float64(b[0]), float64(b[1])
		prevCum = cum
		cum += cnt
		if cum >= rank {
			frac := 0.0
			if cnt > 0 {
				frac = (rank - prevCum) / cnt
			}
			return lower + frac*(upper-lower)
		}
		lower = upper
	}
	return float64(h.Buckets[len(h.Buckets)-1][0])
}

// bar renders a fixed-width occupancy bar with a high-watermark tick: filled
// cells for the fraction, '|' at the watermark position, e.g.
// "#####...|.." for frac 0.42, mark 0.75, width 12.
func bar(frac, mark float64, width int) string {
	if width <= 0 {
		return ""
	}
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	fill := int(clamp(frac)*float64(width) + 0.5)
	markAt := -1
	if mark > 0 {
		markAt = int(clamp(mark) * float64(width))
		if markAt >= width {
			markAt = width - 1
		}
	}
	b := make([]byte, width)
	for i := range b {
		switch {
		case i == markAt:
			b[i] = '|'
		case i < fill:
			b[i] = '#'
		default:
			b[i] = '.'
		}
	}
	return string(b)
}

// fmtNanos renders a nanosecond quantity with an adaptive unit.
func fmtNanos(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtRate renders a per-second rate compactly (4.3Mpps style).
func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// stageRow is one stage's rendered state, extracted from a snapshot.
type stageRow struct {
	Name      string
	ID        string
	Depth     float64
	Weight    float64
	Health    float64
	Processed float64 // cumulative; rate computed against the prior frame
	Drops     float64
}

// stageRows extracts the per-stage series in stable (id) order.
func stageRows(s snapshot) []stageRow {
	f := s["dataplane_stage_queue_depth"]
	if f == nil {
		return nil
	}
	rows := make([]stageRow, 0, len(f.Series))
	for _, se := range f.Series {
		if se.Value == nil {
			continue
		}
		lbl := map[string]string{"stage": se.Labels["stage"], "id": se.Labels["id"]}
		rows = append(rows, stageRow{
			Name:      se.Labels["stage"],
			ID:        se.Labels["id"],
			Depth:     *se.Value,
			Weight:    s.value("dataplane_stage_weight", lbl),
			Health:    s.value("dataplane_stage_health", lbl),
			Processed: s.value("dataplane_stage_processed_total", lbl),
			Drops:     s.value("dataplane_stage_queue_drops_total", lbl),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if len(rows[i].ID) != len(rows[j].ID) {
			return len(rows[i].ID) < len(rows[j].ID)
		}
		return rows[i].ID < rows[j].ID
	})
	return rows
}

func healthName(v float64) string {
	switch int(v) {
	case 0:
		return "healthy"
	case 1:
		return "degraded"
	case 2:
		return "failed"
	case 3:
		return "restarting"
	default:
		return "?"
	}
}

// render draws one frame from the current and previous snapshots. elapsed
// separates them (rates are deltas over it); decs is the journal tail.
func render(w io.Writer, cur, prev snapshot, elapsed time.Duration, decs *decisionReply, tail int) {
	rate := func(name string, lbl map[string]string) float64 {
		if prev == nil || elapsed <= 0 {
			return 0
		}
		return (cur.value(name, lbl) - prev.value(name, lbl)) / elapsed.Seconds()
	}

	ringSize := cur.value("dataplane_watermark_packets", map[string]string{"level": "high"})
	highW := ringSize
	lowW := cur.value("dataplane_watermark_packets", map[string]string{"level": "low"})

	fmt.Fprintf(w, "nfvtop — inject %spps  deliver %spps  drops %s/s  throttle_events %.0f\n",
		fmtRate(rate("dataplane_injected_total", nil)),
		fmtRate(rate("dataplane_delivered_total", nil)),
		fmtRate(rate("dataplane_ring_drops_total", nil)+rate("dataplane_entry_drops_total", nil)),
		cur.value("dataplane_throttle_events_total", nil))
	fmt.Fprintf(w, "watermarks high=%.0f low=%.0f   spans sampled=%.0f completed=%.0f aborted=%.0f spool_drops=%.0f\n\n",
		highW, lowW,
		cur.value("dataplane_spans_sampled_total", nil),
		cur.value("dataplane_spans_completed_total", nil),
		cur.value("dataplane_spans_aborted_total", nil),
		cur.value("dataplane_span_spool_drops_total", nil))

	rows := stageRows(cur)
	if len(rows) > 0 {
		fmt.Fprintf(w, "%-10s %-24s %7s %7s %9s %8s %8s %8s %10s\n",
			"STAGE", "QUEUE", "DEPTH", "WEIGHT", "PROC/s", "DROPS", "HOP p50", "HOP p99", "HEALTH")
		for _, r := range rows {
			// Bars are scaled to the high watermark ring share: the '|' tick
			// is the high watermark, full bar ≈ 4/3 of it (so crossing the
			// mark is visible before saturation).
			scale := highW * 4 / 3
			frac, mark := 0.0, 0.75
			if scale > 0 {
				frac = r.Depth / scale
			}
			lbl := map[string]string{"stage": r.Name, "id": r.ID}
			p50 := quantile(cur.histogram("dataplane_hop_service_nanoseconds", lbl), 0.50)
			p99 := quantile(cur.histogram("dataplane_hop_service_nanoseconds", lbl), 0.99)
			fmt.Fprintf(w, "%-10s [%s] %7.0f %7.0f %9s %8.0f %8s %8s %10s\n",
				r.Name, bar(frac, mark, 22), r.Depth, r.Weight,
				fmtRate(rate("dataplane_stage_processed_total", lbl)),
				r.Drops, fmtNanos(p50), fmtNanos(p99), healthName(r.Health))
		}
		fmt.Fprintln(w)
	}

	if f := cur["dataplane_mover_park_ratio"]; f != nil && len(f.Series) > 0 {
		fmt.Fprintf(w, "%-8s %12s %14s %12s\n", "MOVER", "PARK RATIO", "DRAIN/SWEEP", "MOVED/s")
		for _, se := range f.Series {
			if se.Value == nil {
				continue
			}
			lbl := map[string]string{"mover": se.Labels["mover"]}
			fmt.Fprintf(w, "%-8s %12.3f %14.2f %12s\n",
				"tx/"+se.Labels["mover"], *se.Value,
				cur.value("dataplane_mover_drain_per_sweep", lbl),
				fmtRate(rate("dataplane_mover_moved_total", lbl)))
		}
		fmt.Fprintln(w)
	}

	if f := cur["dataplane_chain_throttled"]; f != nil {
		var throttled []string
		for _, se := range f.Series {
			if se.Value != nil && *se.Value > 0 {
				throttled = append(throttled, se.Labels["chain"])
			}
		}
		if len(throttled) > 0 {
			fmt.Fprintf(w, "BACKPRESSURE: chains throttled: %s\n\n", strings.Join(throttled, ", "))
		}
	}

	if decs != nil && len(decs.Decisions) > 0 {
		fmt.Fprintf(w, "DECISIONS (last %d of %d, %d overwritten)\n", min(tail, len(decs.Decisions)), decs.Total, decs.Dropped)
		ds := decs.Decisions
		if len(ds) > tail {
			ds = ds[len(ds)-tail:]
		}
		for _, d := range ds {
			fmt.Fprintf(w, "  %s %s\n", time.Unix(0, d.TimeNanos).Format("15:04:05.000"), formatDecision(d))
		}
	}
}

// formatDecision renders one journal record as a cause-carrying line.
func formatDecision(d decision) string {
	switch d.Kind {
	case "bp_on":
		return fmt.Sprintf("bp_on    chain %d: %s queue %d ≥ high water %d", d.Chain, d.Stage, d.QueueDepth, d.HighWater)
	case "bp_off":
		return fmt.Sprintf("bp_off   chain %d: %s queue %d ≤ low water %d", d.Chain, d.Stage, d.QueueDepth, d.LowWater)
	case "weight":
		return fmt.Sprintf("weight   %s: %d → %d (load %.2f, cost %s)", d.Stage, d.OldWeight, d.NewWeight, d.Load, fmtNanos(d.CostNanos))
	case "health":
		s := fmt.Sprintf("health   %s: %s → %s", d.Stage, d.From, d.To)
		if d.Note != "" {
			s += " (" + d.Note + ")"
		}
		return s
	case "restart":
		return fmt.Sprintf("restart  %s: %s", d.Stage, d.Note)
	case "circuit_open":
		return fmt.Sprintf("circuit  %s: %s", d.Stage, d.Note)
	case "chain_down":
		return fmt.Sprintf("chain %d down (stage %s failed)", d.Chain, d.Stage)
	case "chain_up":
		return fmt.Sprintf("chain %d back up", d.Chain)
	default:
		b, _ := json.Marshal(d)
		return string(b)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// retryBackoff returns how long to wait before the fails-th consecutive
// reconnect attempt (fails >= 1): the poll interval doubled per failure and
// capped at 10s, so a bounced peer is re-acquired within one interval while
// a dead one is not hammered.
func retryBackoff(fails int, base time.Duration) time.Duration {
	const max = 10 * time.Second
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// staleBanner is the header shown while the peer is unreachable and the
// last good frame is being re-rendered.
func staleBanner(addr string, fails int, err error) string {
	return fmt.Sprintf("nfvtop: STALE (reconnecting to %s, attempt %d: %v)", addr, fails, err)
}

// jsonDump is the -json output document: the /snapshot families verbatim
// plus the decision-journal tail. Decisions is null when the journal
// endpoint is absent (engines built without a journal still dump cleanly).
type jsonDump struct {
	Snapshot  json.RawMessage `json:"snapshot"`
	Decisions json.RawMessage `json:"decisions"`
}

// dumpJSON fetches both telemetry endpoints once and writes the merged
// document. The snapshot bytes pass through untouched (after a validity
// check) so the dump never lags the engine's metric schema.
func dumpJSON(client *http.Client, base string, tail int, w io.Writer) error {
	resp, err := client.Get(base + "/snapshot")
	if err != nil {
		return err
	}
	snapRaw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if !json.Valid(snapRaw) {
		return fmt.Errorf("/snapshot returned invalid JSON (%d bytes)", len(snapRaw))
	}
	doc := jsonDump{Snapshot: snapRaw, Decisions: json.RawMessage("null")}
	if resp, err := client.Get(fmt.Sprintf("%s/debug/decisions?n=%d", base, tail)); err == nil {
		decRaw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK && json.Valid(decRaw) {
			doc.Decisions = decRaw
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func fetchSnapshot(client *http.Client, base string) (snapshot, error) {
	resp, err := client.Get(base + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return parseSnapshot(resp.Body)
}

func fetchDecisions(client *http.Client, base string, n int) *decisionReply {
	resp, err := client.Get(fmt.Sprintf("%s/debug/decisions?n=%d", base, n))
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var dr decisionReply
	if json.NewDecoder(resp.Body).Decode(&dr) != nil {
		return nil
	}
	return &dr
}

func main() {
	addr := flag.String("addr", "localhost:9090", "telemetry address of the dataplane process")
	interval := flag.Duration("interval", 500*time.Millisecond, "poll interval")
	once := flag.Bool("once", false, "render a single frame and exit (no screen control)")
	jsonOut := flag.Bool("json", false, "dump one merged snapshot+decisions JSON document and exit")
	tail := flag.Int("n", 8, "decision-journal tail length")
	flag.Parse()

	base := "http://" + *addr
	client := &http.Client{Timeout: 5 * time.Second}

	if *jsonOut {
		if err := dumpJSON(client, base, *tail, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "nfvtop: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var prev snapshot
	var prevAt time.Time
	fails := 0
	for {
		cur, err := fetchSnapshot(client, base)
		if err != nil {
			// -once keeps the scripting contract: one shot, hard failure.
			if *once {
				fmt.Fprintf(os.Stderr, "nfvtop: %v\n", err)
				os.Exit(1)
			}
			// Live mode survives peer restarts: mark the frame stale, keep
			// the last good numbers on screen, and retry under a capped
			// backoff until the peer answers again.
			fails++
			fmt.Print("\033[2J\033[H")
			fmt.Println(staleBanner(*addr, fails, err))
			fmt.Println()
			if prev != nil {
				render(os.Stdout, prev, nil, 0, nil, *tail)
			}
			time.Sleep(retryBackoff(fails, *interval))
			continue
		}
		fails = 0
		now := time.Now()
		decs := fetchDecisions(client, base, *tail)
		if !*once {
			fmt.Print("\033[2J\033[H") // clear screen, home cursor
		}
		render(os.Stdout, cur, prev, now.Sub(prevAt), decs, *tail)
		if *once {
			return
		}
		prev, prevAt = cur, now
		time.Sleep(*interval)
	}
}
