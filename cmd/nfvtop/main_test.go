package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const sampleSnapshot = `[
 {"name":"dataplane_injected_total","type":"counter","series":[{"value":100000}]},
 {"name":"dataplane_delivered_total","type":"counter","series":[{"value":99000}]},
 {"name":"dataplane_throttle_events_total","type":"counter","series":[{"value":3}]},
 {"name":"dataplane_watermark_packets","type":"gauge","series":[
   {"labels":{"level":"high"},"value":48},
   {"labels":{"level":"low"},"value":32}]},
 {"name":"dataplane_stage_queue_depth","type":"gauge","series":[
   {"labels":{"stage":"fw","id":"0","core":"-1"},"value":12},
   {"labels":{"stage":"nat","id":"1","core":"-1"},"value":50}]},
 {"name":"dataplane_stage_weight","type":"gauge","series":[
   {"labels":{"stage":"fw","id":"0","core":"-1"},"value":1024},
   {"labels":{"stage":"nat","id":"1","core":"-1"},"value":2048}]},
 {"name":"dataplane_stage_health","type":"gauge","series":[
   {"labels":{"stage":"fw","id":"0","core":"-1"},"value":0},
   {"labels":{"stage":"nat","id":"1","core":"-1"},"value":1}]},
 {"name":"dataplane_stage_processed_total","type":"counter","series":[
   {"labels":{"stage":"fw","id":"0","core":"-1"},"value":100000},
   {"labels":{"stage":"nat","id":"1","core":"-1"},"value":99500}]},
 {"name":"dataplane_hop_service_nanoseconds","type":"histogram","series":[
   {"labels":{"stage":"fw","id":"0"},"histogram":{"count":100,"sum":100000,
     "buckets":[[1000,50],[2000,40],[4000,10]]}}]},
 {"name":"dataplane_mover_park_ratio","type":"gauge","series":[
   {"labels":{"mover":"0"},"value":0.25}]},
 {"name":"dataplane_mover_drain_per_sweep","type":"gauge","series":[
   {"labels":{"mover":"0"},"value":12.5}]},
 {"name":"dataplane_chain_throttled","type":"gauge","series":[
   {"labels":{"chain":"0"},"value":1}]}
]`

func mustSnapshot(t *testing.T, s string) snapshot {
	t.Helper()
	snap, err := parseSnapshot(strings.NewReader(s))
	if err != nil {
		t.Fatalf("parseSnapshot: %v", err)
	}
	return snap
}

func TestParseSnapshotAndLookup(t *testing.T) {
	s := mustSnapshot(t, sampleSnapshot)
	if v := s.value("dataplane_injected_total", nil); v != 100000 {
		t.Errorf("injected = %v, want 100000", v)
	}
	if v := s.value("dataplane_watermark_packets", map[string]string{"level": "low"}); v != 32 {
		t.Errorf("low watermark = %v, want 32", v)
	}
	if v := s.value("no_such_family", nil); v != 0 {
		t.Errorf("missing family = %v, want 0", v)
	}
	if h := s.histogram("dataplane_hop_service_nanoseconds", map[string]string{"stage": "fw"}); h == nil || h.Count != 100 {
		t.Errorf("histogram lookup failed: %+v", h)
	}
}

func TestStageRows(t *testing.T) {
	rows := stageRows(mustSnapshot(t, sampleSnapshot))
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Name != "fw" || rows[1].Name != "nat" {
		t.Fatalf("rows out of id order: %+v", rows)
	}
	if rows[1].Depth != 50 || rows[1].Weight != 2048 || healthName(rows[1].Health) != "degraded" {
		t.Errorf("nat row = %+v", rows[1])
	}
}

func TestQuantile(t *testing.T) {
	h := &hist{Count: 100, Sum: 100000, Buckets: [][2]uint64{{1000, 50}, {2000, 40}, {4000, 10}}}
	// p50 lands exactly at the first bucket's upper bound.
	if p := quantile(h, 0.50); p != 1000 {
		t.Errorf("p50 = %v, want 1000", p)
	}
	// p90 exhausts the second bucket: 2000.
	if p := quantile(h, 0.90); p != 2000 {
		t.Errorf("p90 = %v, want 2000", p)
	}
	// p99 interpolates inside the last bucket: 2000 + (99-90)/10 * 2000.
	if p := quantile(h, 0.99); p != 3800 {
		t.Errorf("p99 = %v, want 3800", p)
	}
	if p := quantile(nil, 0.5); p != 0 {
		t.Errorf("nil histogram = %v, want 0", p)
	}
	if p := quantile(&hist{}, 0.5); p != 0 {
		t.Errorf("empty histogram = %v, want 0", p)
	}
}

func TestBar(t *testing.T) {
	if got := bar(0.5, 0.75, 8); got != "####..|." {
		t.Errorf("bar(0.5, 0.75, 8) = %q", got)
	}
	if got := bar(0, 0, 4); got != "...." {
		t.Errorf("empty bar = %q", got)
	}
	// Overfull clamps; the watermark tick survives at the last cell.
	if got := bar(2.0, 1.0, 4); got != "###|" {
		t.Errorf("overfull bar = %q", got)
	}
	if got := bar(0.5, 0.75, 0); got != "" {
		t.Errorf("zero width = %q", got)
	}
}

func TestFormatDecision(t *testing.T) {
	cases := []struct {
		d    decision
		want string
	}{
		{decision{Kind: "bp_on", Chain: 2, Stage: "nat", QueueDepth: 51, HighWater: 48},
			"bp_on    chain 2: nat queue 51 ≥ high water 48"},
		{decision{Kind: "bp_off", Chain: 2, Stage: "nat", QueueDepth: 7, LowWater: 32},
			"bp_off   chain 2: nat queue 7 ≤ low water 32"},
		{decision{Kind: "weight", Stage: "fw", OldWeight: 1024, NewWeight: 2048, Load: 0.5, CostNanos: 1500},
			"weight   fw: 1024 → 2048 (load 0.50, cost 1.5µs)"},
		{decision{Kind: "health", Stage: "mid", From: "healthy", To: "failed", Note: "panic: boom"},
			"health   mid: healthy → failed (panic: boom)"},
		{decision{Kind: "chain_down", Chain: 1, Stage: "mid"},
			"chain 1 down (stage mid failed)"},
	}
	for _, c := range cases {
		if got := formatDecision(c.d); got != c.want {
			t.Errorf("formatDecision(%s):\n got %q\nwant %q", c.d.Kind, got, c.want)
		}
	}
}

// TestRenderFrame smoke-tests a full frame: every section renders, rates
// compute against the previous snapshot, and the journal tail appears.
func TestRenderFrame(t *testing.T) {
	cur := mustSnapshot(t, sampleSnapshot)
	prev := mustSnapshot(t, strings.ReplaceAll(sampleSnapshot, "100000", "0"))
	decs := &decisionReply{Total: 9, Dropped: 1, Decisions: []decision{
		{Seq: 8, TimeNanos: time.Now().UnixNano(), Kind: "bp_on", Chain: 0, Stage: "nat", QueueDepth: 50, HighWater: 48},
	}}
	var b strings.Builder
	render(&b, cur, prev, time.Second, decs, 8)
	out := b.String()
	for _, want := range []string{
		"inject 100.0kpps", // (100000-0)/1s
		"watermarks high=48 low=32",
		"fw", "nat", "degraded",
		"tx/0", "0.250",
		"chains throttled: 0",
		"DECISIONS", "bp_on    chain 0: nat queue 50 ≥ high water 48",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// First frame (no previous sample): rates are zero, nothing crashes.
	var b2 strings.Builder
	render(&b2, cur, nil, 0, nil, 8)
	if !strings.Contains(b2.String(), "inject 0pps") {
		t.Errorf("first frame should show zero rates:\n%s", b2.String())
	}
}

// TestRetryBackoff pins the reconnect schedule: interval-doubling per
// consecutive failure, capped at 10s, with a sane default for a zero base.
func TestRetryBackoff(t *testing.T) {
	base := 500 * time.Millisecond
	cases := []struct {
		fails int
		base  time.Duration
		want  time.Duration
	}{
		{1, base, 500 * time.Millisecond},
		{2, base, time.Second},
		{3, base, 2 * time.Second},
		{5, base, 8 * time.Second},
		{6, base, 10 * time.Second},   // capped
		{100, base, 10 * time.Second}, // stays capped, no overflow
		{1, 0, 500 * time.Millisecond},
		{3, 0, 2 * time.Second},
	}
	for _, tc := range cases {
		if got := retryBackoff(tc.fails, tc.base); got != tc.want {
			t.Errorf("retryBackoff(%d, %v) = %v, want %v", tc.fails, tc.base, got, tc.want)
		}
	}
}

// TestDumpJSON pins the -json scripting surface: one document merging the
// verbatim /snapshot families with the decision-journal tail, and the
// requested tail length forwarded to the journal endpoint.
func TestDumpJSON(t *testing.T) {
	var gotN string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/snapshot":
			w.Write([]byte(sampleSnapshot))
		case "/debug/decisions":
			gotN = r.URL.Query().Get("n")
			w.Write([]byte(`{"total":2,"dropped":0,"decisions":[
				{"seq":1,"t_ns":1,"kind":"bp_on","chain":0,"stage":"nat","qdepth":50,"high_water":48}]}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	var b strings.Builder
	if err := dumpJSON(srv.Client(), srv.URL, 12, &b); err != nil {
		t.Fatalf("dumpJSON: %v", err)
	}
	if gotN != "12" {
		t.Errorf("journal tail length not forwarded: n=%q, want 12", gotN)
	}
	var doc struct {
		Snapshot  []family       `json:"snapshot"`
		Decisions *decisionReply `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not one JSON document: %v\n%s", err, b.String())
	}
	if len(doc.Snapshot) == 0 {
		t.Fatal("snapshot families missing from the dump")
	}
	names := map[string]bool{}
	for _, f := range doc.Snapshot {
		names[f.Name] = true
	}
	if !names["dataplane_injected_total"] || !names["dataplane_stage_queue_depth"] {
		t.Errorf("snapshot families not passed through verbatim: %v", names)
	}
	if doc.Decisions == nil || doc.Decisions.Total != 2 || len(doc.Decisions.Decisions) != 1 {
		t.Errorf("decisions not merged: %+v", doc.Decisions)
	}
	if doc.Decisions.Decisions[0].Kind != "bp_on" {
		t.Errorf("decision record mangled: %+v", doc.Decisions.Decisions[0])
	}
}

// TestDumpJSONNoJournal: an engine without the journal endpoint still dumps
// — decisions comes back null, the snapshot is intact, and the exit is clean.
func TestDumpJSONNoJournal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/snapshot" {
			w.Write([]byte(sampleSnapshot))
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	var b strings.Builder
	if err := dumpJSON(srv.Client(), srv.URL, 8, &b); err != nil {
		t.Fatalf("dumpJSON: %v", err)
	}
	var doc jsonDump
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("bad document: %v", err)
	}
	if string(doc.Decisions) != "null" {
		t.Errorf("decisions should be null without a journal endpoint, got %s", doc.Decisions)
	}
	if !json.Valid(doc.Snapshot) || len(doc.Snapshot) < 10 {
		t.Errorf("snapshot missing from the dump")
	}
}

// TestDumpJSONBadSnapshot: a peer serving garbage fails loudly, not with a
// half-written document.
func TestDumpJSONBadSnapshot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json at all"))
	}))
	defer srv.Close()
	var b strings.Builder
	if err := dumpJSON(srv.Client(), srv.URL, 8, &b); err == nil {
		t.Fatal("want an error for an invalid /snapshot body")
	}
	if b.Len() != 0 {
		t.Errorf("nothing should be written on failure, got %q", b.String())
	}
}

// TestStaleBanner pins the marker live mode shows while the peer is away.
func TestStaleBanner(t *testing.T) {
	b := staleBanner("localhost:9090", 3, errors.New("connection refused"))
	for _, want := range []string{"STALE", "reconnecting", "localhost:9090", "attempt 3", "connection refused"} {
		if !strings.Contains(b, want) {
			t.Errorf("banner missing %q: %s", want, b)
		}
	}
}
