// Command nfvtrace generates synthetic packet traces and inspects captures:
// a workbench for feeding the dataplane's real NFs and for eyeballing what
// they emit in Wireshark.
//
// Usage:
//
//	nfvtrace gen -o trace.pcap -packets 10000 -flows 16 -mix 70,25,5
//	nfvtrace info trace.pcap
//	nfvtrace replay trace.pcap        # run the trace through a real NF chain
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"nfvnice"
	"nfvnice/internal/flowtable"
	"nfvnice/internal/nfs"
	"nfvnice/internal/pcap"
	"nfvnice/internal/proto"
	"nfvnice/internal/simtime"
)

func usage() {
	fmt.Fprintf(os.Stderr, `nfvtrace — synthetic trace generation and inspection

Usage:
  nfvtrace gen -o FILE [-packets N] [-flows N] [-mix udp,tcp,bad] [-seed N]
  nfvtrace info FILE
  nfvtrace replay FILE            run the trace through real NFs inline
  nfvtrace sim FILE [-speedup N]  replay the trace into the simulated
                                  NFVnice platform (3-NF chain) and report
                                  throughput and drops
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		if len(os.Args) < 3 {
			usage()
		}
		info(os.Args[2])
	case "replay":
		if len(os.Args) < 3 {
			usage()
		}
		replay(os.Args[2])
	case "sim":
		if len(os.Args) < 3 {
			usage()
		}
		simulate(os.Args[2], os.Args[3:])
	default:
		usage()
	}
}

// simulate replays a capture into the simulated NFVnice platform: every
// trace flow is routed through a monitor→nat→dpi chain on one core.
func simulate(path string, args []string) {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	speedup := fs.Float64("speedup", 1, "replay time compression factor")
	mode := fs.String("mode", "nfvnice", "default|cgroups|backpressure|nfvnice")
	fs.Parse(args)

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	pkts, err := pcap.ReadAll(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	if len(pkts) == 0 {
		fmt.Fprintln(os.Stderr, "nfvtrace: empty trace")
		os.Exit(1)
	}
	spec := nfvnice.Spec{Mode: *mode, Scheduler: "BATCH", Cores: 1,
		NFs: []nfvnice.NFSpec{
			{Name: "monitor", Core: 0, Cost: 120},
			{Name: "nat", Core: 0, Cost: 270},
			{Name: "dpi", Core: 0, Cost: 550},
		},
		Chains: []nfvnice.ChainSpec{{Name: "c", NFs: []string{"monitor", "nat", "dpi"}}},
	}
	p, chains, err := spec.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	r := p.AddReplay(pkts, 0)
	r.Speedup = *speedup
	// Route every trace flow to the chain.
	p.InstallRule(flowtable.Rule{ChainID: chains[0]})

	span := pkts[len(pkts)-1].Time.Sub(pkts[0].Time)
	horizon := nfvnice.Cycles(float64(simtimeFromDuration(span))/(*speedup)) + nfvnice.Milliseconds(50)
	p.Run(horizon)
	fmt.Printf("replayed %d packets (%d flows) over %v simulated\n",
		r.Offered.Total(), r.Flows(), horizon.Duration().Round(time.Millisecond))
	fmt.Printf("accepted %d, delivered %d, wasted %d, entry sheds %d\n",
		r.Accepted.Total(), p.Mgr.Delivered[chains[0]].Total(),
		p.Mgr.TotalWasted(), p.EntryThrottleDrops())
	fmt.Printf("p50 latency %.1fµs, p99 %.1fµs\n", p.LatencyQuantile(0.5), p.LatencyQuantile(0.99))
}

func simtimeFromDuration(d time.Duration) nfvnice.Cycles {
	return simtime.FromDuration(d)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("o", "trace.pcap", "output file")
	packets := fs.Int("packets", 10000, "number of packets")
	flows := fs.Int("flows", 16, "number of flows")
	mix := fs.String("mix", "70,25,5", "percent udp,tcp,malicious")
	seed := fs.Int64("seed", 1, "rng seed")
	fs.Parse(args)

	parts := strings.Split(*mix, ",")
	if len(parts) != 3 {
		fmt.Fprintln(os.Stderr, "nfvtrace: -mix wants three percentages")
		os.Exit(1)
	}
	var pct [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfvtrace: bad mix:", err)
			os.Exit(1)
		}
		pct[i] = v
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	w := pcap.NewWriter(f, 0)
	rng := rand.New(rand.NewSource(*seed))
	macA := proto.MAC{2, 0, 0, 0, 0, 1}
	macB := proto.MAC{2, 0, 0, 0, 0, 2}
	t0 := time.Unix(1700000000, 0)
	for i := 0; i < *packets; i++ {
		flow := rng.Intn(*flows)
		src := proto.Addr4(10, 0, byte(flow>>8), byte(flow))
		dst := proto.Addr4(93, 184, 216, 34)
		sp := uint16(20000 + flow)
		ts := t0.Add(time.Duration(i) * 50 * time.Microsecond)
		roll := rng.Intn(100)
		var frame []byte
		switch {
		case roll < pct[0]:
			frame = proto.BuildUDP(macA, macB, src, dst, sp, 53, payload(rng, 22))
		case roll < pct[0]+pct[1]:
			frame = proto.BuildTCP(macA, macB, src, dst, sp, 443, uint32(i), 0, proto.TCPAck, payload(rng, 400))
		default:
			frame = proto.BuildTCP(macA, macB, src, dst, sp, 80, uint32(i), 0, proto.TCPAck,
				append([]byte("GET /?q=exploit "), payload(rng, 60)...))
		}
		if err := w.WritePacket(ts, frame); err != nil {
			fmt.Fprintln(os.Stderr, "nfvtrace:", err)
			os.Exit(1)
		}
	}
	w.Flush()
	fmt.Printf("wrote %d packets to %s\n", w.Packets, *out)
}

func payload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return b
}

func info(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	pkts, err := pcap.ReadAll(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	mon := nfs.NewMonitor()
	var bytes uint64
	for _, p := range pkts {
		mon.Process(p.Data)
		bytes += uint64(p.Orig)
	}
	fmt.Printf("%s: %d packets, %d bytes, %d flows\n", path, len(pkts), bytes, mon.Flows())
	if len(pkts) > 0 {
		span := pkts[len(pkts)-1].Time.Sub(pkts[0].Time)
		fmt.Printf("span %v (%.0f pps)\n", span, float64(len(pkts))/max(span.Seconds(), 1e-9))
	}
	fmt.Println("top flows:")
	for _, fl := range mon.Top(5) {
		fmt.Printf("  %v:%d -> %v:%d proto %d: %d pkts, %d bytes\n",
			fl.Src, fl.SrcPort, fl.Dst, fl.DstPort, fl.Proto, fl.Packets, fl.Bytes)
	}
}

func replay(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	pkts, err := pcap.ReadAll(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrace:", err)
		os.Exit(1)
	}
	fw := nfs.NewFirewall(nfs.Drop)
	fw.AddRule(nfs.FirewallRule{DstPortLo: 53, Proto: proto.IPProtoUDP, Action: nfs.Accept})
	fw.AddRule(nfs.FirewallRule{DstPortLo: 80, DstPortHi: 443, Action: nfs.Accept})
	nat := nfs.NewNAT(proto.Addr4(198, 51, 100, 1), func(a proto.IPv4Addr) bool { return uint32(a)>>24 == 10 })
	dpi := nfs.NewDPI([][]byte{[]byte("exploit")}, true)
	chain := []nfs.Processor{fw, nat, dpi}
	survived := 0
	start := time.Now()
	for _, p := range pkts {
		frame := append([]byte(nil), p.Data...)
		ok := true
		for _, nf := range chain {
			if nf.Process(frame) == nfs.Drop {
				ok = false
				break
			}
		}
		if ok {
			survived++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d packets through firewall→nat→dpi in %v (%.0f pps)\n",
		len(pkts), elapsed.Round(time.Millisecond), float64(len(pkts))/max(elapsed.Seconds(), 1e-9))
	fmt.Printf("survived %d, firewall dropped %d, dpi dropped %d, nat bindings %d\n",
		survived, fw.Dropped, dpi.Dropped, nat.Bindings())
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
