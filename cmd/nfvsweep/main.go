// Command nfvsweep explores NFVnice tuning parameters (§4.3.8 of the
// paper): watermark placement, hysteresis margin, libnf batch size, and the
// weight-update period, reporting throughput, wasted work and latency for
// the canonical 3-NF chain.
//
// Usage:
//
//	nfvsweep [-high 0.5,0.7,0.8,0.9] [-margin 0.2] [-batch 32] [-weightms 10]
//	         [-warm 100] [-meas 300]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nfvnice"
	"nfvnice/internal/simtime"
)

func parseList(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfvsweep: bad number %q\n", part)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	highs := flag.String("high", "0.3,0.5,0.7,0.8,0.9,0.98", "comma list of HIGH_WATER_MARK fractions")
	margin := flag.Float64("margin", 0.20, "LOW = HIGH - margin")
	batch := flag.Int("batch", 32, "libnf batch size")
	weightMs := flag.Float64("weightms", 10, "cpu.shares update period (ms)")
	ringSize := flag.Int("ring", 1024, "ring size in descriptors")
	warmMs := flag.Float64("warm", 100, "warmup (ms)")
	measMs := flag.Float64("meas", 300, "measurement window (ms)")
	flag.Parse()

	fmt.Printf("%-6s %-6s %12s %12s %10s\n", "high", "low", "tput(Mpps)", "wasted", "p50(µs)")
	for _, high := range parseList(*highs) {
		low := high - *margin
		if low < 0 {
			low = 0
		}
		cfg := nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeNFVnice)
		cfg.NFParams.HighFrac = high
		cfg.NFParams.LowFrac = low
		cfg.NFParams.BatchSize = *batch
		cfg.NFParams.RingSize = *ringSize
		cfg.CtlParams.WeightInterval = simtime.Cycles(*weightMs * float64(simtime.Millisecond))

		p := nfvnice.NewPlatform(cfg)
		core := p.AddCore()
		n1 := p.AddNF("low", nfvnice.FixedCost(120), core)
		n2 := p.AddNF("med", nfvnice.FixedCost(270), core)
		n3 := p.AddNF("high", nfvnice.FixedCost(550), core)
		ch := p.AddChain("chain", n1, n2, n3)
		f := nfvnice.UDPFlow(0, 64)
		p.MapFlow(f, ch)
		p.AddCBR(f, nfvnice.LineRate10G(64))

		w := p.RunWindow(nfvnice.Milliseconds(*warmMs), nfvnice.Milliseconds(*measMs))

		fmt.Printf("%-6.2f %-6.2f %12.3f %12.3f %10.1f\n",
			high, low,
			float64(w.ChainRate(ch))/1e6,
			float64(w.TotalWasted())/1e6,
			p.LatencyQuantile(0.5))
	}
}
