// Command nfvhypo runs the hypothesis-driven invariant experiments
// (internal/hypo) against the live dataplane engine and emits canonical
// JSON result sets plus markdown ledger bodies for
// hypotheses/<name>/FINDINGS.md.
//
//	nfvhypo -list
//	nfvhypo -hypothesis h-conservation -rounds 3 -seeds 42,123,456
//	nfvhypo -hypothesis all -rounds 2 -scale 0.5 -out results/
//	nfvhypo -hypothesis h-liveness -dry-run
//
// Canonical JSON (without -observed) is byte-reproducible for a fixed
// (hypothesis, seeds, rounds, scale) as long as the verdict reproduces:
// it contains only the config matrix, seeds, fault plans, and pass/fail
// bits — no timestamps or measured counters. Exit status is 0 only when
// every requested hypothesis is Confirmed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"nfvnice/internal/hypo"
)

func main() {
	var (
		name     = flag.String("hypothesis", "", "hypothesis to run (name from -list, or 'all')")
		list     = flag.Bool("list", false, "list registered hypotheses and exit")
		rounds   = flag.Int("rounds", 3, "rounds per (config, seed) point")
		seedsStr = flag.String("seeds", "42,123,456", "comma-separated fault/jitter seeds")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = ledger scale)")
		out      = flag.String("out", "", "output path: file for one hypothesis, directory for 'all' (default stdout)")
		mdOut    = flag.String("md", "", "also write the markdown ledger body to this path (single hypothesis only)")
		observed = flag.Bool("observed", false, "include measured counters in the JSON (breaks byte-reproducibility)")
		dryRun   = flag.Bool("dry-run", false, "print the expanded config matrix and planned run count, then exit")
		quiet    = flag.Bool("q", false, "suppress per-run progress on stderr")
	)
	flag.Parse()

	if *list {
		for _, n := range hypo.Names() {
			e, _ := hypo.Get(n)
			fmt.Printf("%-16s %s\n", n, e.Title)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "nfvhypo: -hypothesis required (or -list); see -h")
		os.Exit(2)
	}

	seeds, err := parseSeeds(*seedsStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfvhypo: %v\n", err)
		os.Exit(2)
	}

	var names []string
	if *name == "all" {
		names = hypo.Names()
	} else {
		if _, ok := hypo.Get(*name); !ok {
			fmt.Fprintf(os.Stderr, "nfvhypo: unknown hypothesis %q (have: %s)\n",
				*name, strings.Join(hypo.Names(), ", "))
			os.Exit(2)
		}
		names = []string{*name}
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	opt := hypo.Options{Rounds: *rounds, Seeds: seeds, Scale: *scale, Logf: logf}

	if *dryRun {
		for _, n := range names {
			e, _ := hypo.Get(n)
			configs := hypo.ExpandMatrix(e.Axes)
			fmt.Printf("%s: %d configs x %d seeds x %d rounds = %d runs\n",
				n, len(configs), len(seeds), *rounds, len(configs)*len(seeds)**rounds)
			for _, c := range configs {
				fmt.Printf("  %v\n", c)
			}
		}
		return
	}

	allConfirmed := true
	for _, n := range names {
		e, _ := hypo.Get(n)
		res, err := hypo.Run(e, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfvhypo: %s: %v\n", n, err)
			os.Exit(1)
		}
		if res.Verdict != hypo.Confirmed {
			allConfirmed = false
		}
		blob, err := hypo.CanonicalJSON(res, *observed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfvhypo: %s: %v\n", n, err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		switch {
		case *out == "":
			os.Stdout.Write(blob)
		case len(names) > 1:
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "nfvhypo: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, n+".json")
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "nfvhypo: %v\n", err)
				os.Exit(1)
			}
			logf("%s: wrote %s", n, path)
		default:
			if err := os.WriteFile(*out, blob, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "nfvhypo: %v\n", err)
				os.Exit(1)
			}
		}
		if *mdOut != "" && len(names) == 1 {
			if err := os.WriteFile(*mdOut, []byte(hypo.Markdown(res)), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "nfvhypo: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "nfvhypo: %s verdict=%s (%d runs)\n", n, res.Verdict, len(res.Runs))
	}
	if !allConfirmed {
		os.Exit(1)
	}
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return out, nil
}
