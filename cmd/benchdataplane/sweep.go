package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"nfvnice/internal/dataplane"
)

// Sweep parameters mirror the committed BenchmarkChain3StagesMovers shape so
// the in-process numbers are comparable to the `go test -bench` ones: a
// 3-stage chain, closed-loop injection bounded below every ring's high
// watermark (zero drops, deterministic delivery), batch recycle through the
// shared freelist.
const (
	sweepStages   = 3
	sweepBatch    = 64
	sweepInflight = 1024
	sweepWarmup   = 100 * time.Millisecond
)

// sweepMovers drives the closed-loop 3-stage chain with the TX path sharded
// across the given mover count for roughly the measurement window, and
// reports the achieved rate plus per-packet heap allocations (freelist
// regressions show up here as allocs/op > 0).
func sweepMovers(movers int, window time.Duration) Result {
	e := dataplane.New(dataplane.Config{
		RingSize:  4096,
		BatchSize: 256,
		Movers:    movers,
	})
	ids := make([]int, sweepStages)
	for i := range ids {
		ids[i] = e.AddStage("nf"+string(rune('a'+i)), 1024, func(p *dataplane.Packet) {})
	}
	ch, err := e.AddChain(ids...)
	if err != nil {
		panic(err)
	}
	e.MapFlow(0, ch)
	var received atomic.Int64
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	cache := e.NewPacketCache(2 * sweepBatch)
	batch := make([]*dataplane.Packet, sweepBatch)
	// injected is cumulative across the warmup and measured phases — the
	// inflight window compares it against the cumulative delivery count.
	var injected int64
	inject := func(until time.Time) {
		for time.Now().Before(until) {
			if injected-received.Load() < sweepInflight {
				for i := range batch {
					p := cache.Get()
					p.FlowID = 0
					p.Size = 64
					batch[i] = p
				}
				injected += int64(e.InjectBatch(batch))
			} else {
				runtime.Gosched()
			}
		}
		// Drain the window so the measured packet count is fully delivered.
		for received.Load() < injected {
			runtime.Gosched()
		}
	}

	inject(time.Now().Add(sweepWarmup))
	warm := received.Load()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	inject(start.Add(window))
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	cancel()
	<-done

	n := received.Load() - warm
	if n <= 0 || elapsed <= 0 {
		return Result{}
	}
	if os.Getenv("SWEEP_DEBUG") != "" {
		fmt.Printf("debug: movers=%d stats=%+v moverstats=%+v\n", movers, e.Stats(), e.MoverStats())
	}
	return Result{
		NsPerPkt:    float64(elapsed.Nanoseconds()) / float64(n),
		PPS:         float64(n) / elapsed.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}
