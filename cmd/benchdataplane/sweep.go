package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"nfvnice/internal/dataplane"
)

// Sweep parameters mirror the committed BenchmarkChain3StagesMovers shape so
// the in-process numbers are comparable to the `go test -bench` ones: a
// 3-stage chain, closed-loop injection bounded below every ring's high
// watermark (zero drops, deterministic delivery), batch recycle through the
// shared freelist.
const (
	sweepStages   = 3
	sweepBatch    = 64
	sweepInflight = 1024
	sweepWarmup   = 100 * time.Millisecond
)

// sweepMovers drives the closed-loop 3-stage chain with the TX path sharded
// across the given mover count for roughly the measurement window, and
// reports the achieved rate plus per-packet heap allocations (freelist
// regressions show up here as allocs/op > 0).
func sweepMovers(movers int, window time.Duration) Result {
	e := dataplane.New(dataplane.Config{
		RingSize:  4096,
		BatchSize: 256,
		Movers:    movers,
	})
	ids := make([]int, sweepStages)
	for i := range ids {
		ids[i] = e.AddStage("nf"+string(rune('a'+i)), 1024, func(p *dataplane.Packet) {})
	}
	return runSweep(e, ids, window, false)
}

// sweepCores is the core-count scaling point: GOMAXPROCS is pinned to the
// core count for the whole measurement, the engine runs one mover per core
// with the chain's stages spread across the cores, and injection goes
// through a producer lane (the parallel-producer fast path) instead of the
// shared entry ring. On a host with fewer physical CPUs than the pinned
// count the movers time-share and the curve flattens — the recorded
// maxprocs_host makes that visible next to the points.
func sweepCores(cores int, window time.Duration) Result {
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)
	e := dataplane.New(dataplane.Config{
		RingSize:  4096,
		BatchSize: 256,
		Cores:     cores,
		Movers:    cores,
	})
	ids := make([]int, sweepStages)
	for i := range ids {
		ids[i] = e.AddStageOn("nf"+string(rune('a'+i)), 1024, i%cores, func(p *dataplane.Packet) {})
	}
	return runSweep(e, ids, window, true)
}

// runSweep drives the prepared engine closed-loop for the warmup plus the
// measurement window. With lanes set, injection goes through a registered
// ProducerHandle (per-producer SPSC lane); otherwise through the shared
// entry ring via Engine.InjectBatch.
func runSweep(e *dataplane.Engine, ids []int, window time.Duration, lanes bool) Result {
	ch, err := e.AddChain(ids...)
	if err != nil {
		panic(err)
	}
	e.MapFlow(0, ch)
	var received atomic.Int64
	e.SetSink(func(ps []*dataplane.Packet) {
		received.Add(int64(len(ps)))
		e.PutPacketBatch(ps)
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	var lane *dataplane.ProducerHandle
	if lanes {
		lane = e.ProducerHandle(0)
	}
	cache := e.NewPacketCache(2 * sweepBatch)
	batch := make([]*dataplane.Packet, sweepBatch)
	// injected is cumulative across the warmup and measured phases — the
	// inflight window compares it against the cumulative delivery count.
	var injected int64
	inject := func(until time.Time) {
		for time.Now().Before(until) {
			if injected-received.Load() < sweepInflight {
				for i := range batch {
					p := cache.Get()
					p.FlowID = 0
					p.Size = 64
					batch[i] = p
				}
				if lane != nil {
					k := lane.InjectBatch(batch)
					injected += int64(k)
					// Lane full: the rejected tail stays ours — recycle it.
					for _, p := range batch[k:] {
						cache.Put(p)
					}
				} else {
					injected += int64(e.InjectBatch(batch))
				}
			} else {
				runtime.Gosched()
			}
		}
		// Drain the window so the measured packet count is fully delivered.
		for received.Load() < injected {
			runtime.Gosched()
		}
	}

	inject(time.Now().Add(sweepWarmup))
	warm := received.Load()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	inject(start.Add(window))
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	cancel()
	<-done

	n := received.Load() - warm
	if n <= 0 || elapsed <= 0 {
		return Result{}
	}
	if os.Getenv("SWEEP_DEBUG") != "" {
		fmt.Printf("debug: stats=%+v moverstats=%+v\n", e.Stats(), e.MoverStats())
	}
	return Result{
		NsPerPkt:    float64(elapsed.Nanoseconds()) / float64(n),
		PPS:         float64(n) / elapsed.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}
