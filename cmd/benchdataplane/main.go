// benchdataplane turns `go test -bench` output into BENCH_dataplane.json.
//
// It reads benchmark output on stdin, extracts the pps / ns-per-packet /
// allocs metrics the dataplane benchmarks report, and rewrites the JSON
// file's "current" section while preserving the committed "baseline"
// section (the pre-batching numbers recorded before the hot-path rework).
//
// Usage (see `make bench-dataplane`):
//
//	go test -run='^$' -bench='SteadyState|Chain3' -benchtime=2s ./internal/dataplane/ |
//	    go run ./cmd/benchdataplane -out BENCH_dataplane.json -commit $(git rev-parse --short HEAD)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	NsPerPkt    float64 `json:"ns_per_pkt"`
	PPS         float64 `json:"pps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Section is one measurement epoch: a commit and its benchmark results.
type Section struct {
	Commit     string            `json:"commit,omitempty"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// File is the whole BENCH_dataplane.json document.
type File struct {
	Baseline Section `json:"baseline"`
	Current  Section `json:"current"`
}

func main() {
	out := flag.String("out", "BENCH_dataplane.json", "JSON file to update in place")
	commit := flag.String("commit", "", "commit hash to record in the current section")
	flag.Parse()

	results := parseBench(os.Stdin)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdataplane: no benchmark lines on stdin")
		os.Exit(1)
	}

	var doc File
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchdataplane: %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	doc.Current = Section{
		Commit:     *commit,
		Note:       "batch-amortized hot path: InjectBatch + freelist + Sink delivery",
		Benchmarks: results,
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdataplane:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdataplane:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
}

// parseBench extracts metric pairs from `go test -bench` output lines, which
// look like:
//
//	BenchmarkChain3Stages   10000   143.8 ns/pkt   6953819 pps   0 B/op   0 allocs/op
func parseBench(f *os.File) map[string]Result {
	results := make(map[string]Result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -N GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r Result
		seen := false
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/pkt":
				r.NsPerPkt, seen = v, true
			case "pps":
				r.PPS, seen = v, true
			case "allocs/op":
				r.AllocsPerOp, seen = v, true
			}
		}
		if seen {
			results[name] = r
		}
	}
	return results
}
