// benchdataplane turns `go test -bench` output into BENCH_dataplane.json,
// runs in-process mover sweeps, and compares two benchmark runs.
//
// It reads benchmark output on stdin, extracts the pps / ns-per-packet /
// allocs metrics the dataplane benchmarks report (averaging across -count
// repetitions), and rewrites the JSON file's "current" section while
// preserving the committed "baseline" section (the pre-batching numbers
// recorded before the hot-path rework).
//
// Usage (see `make bench-dataplane` and `make bench-compare`):
//
//	go test -run='^$' -bench='SteadyState|Chain3' -benchtime=2s ./internal/dataplane/ |
//	    go run ./cmd/benchdataplane -out BENCH_dataplane.json -commit $(git rev-parse --short HEAD)
//
//	# In-process movers sweep (no `go test` needed), merged into the JSON:
//	go run ./cmd/benchdataplane -movers 1,2,4 -benchtime 2s -out BENCH_dataplane.json
//
//	# Core-count scaling sweep: pins GOMAXPROCS per point, Movers = Cores,
//	# lane-path injection; writes the "scaling" section of the JSON:
//	go run ./cmd/benchdataplane -cores 1,2,4,8 -benchtime 2s -out BENCH_dataplane.json
//
//	# Compare two saved runs (fallback when benchstat is not installed);
//	# -threshold N makes it exit nonzero when any ns/pkt regresses > N%:
//	go run ./cmd/benchdataplane -compare -threshold 5 old.txt new.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	NsPerPkt    float64 `json:"ns_per_pkt"`
	PPS         float64 `json:"pps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Env records the toolchain and host a section was measured on, so a
// regression flagged by -compare can be told apart from a machine change.
type Env struct {
	GoVersion string `json:"go_version,omitempty"`
	GoArch    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
}

// Section is one measurement epoch: a commit and its benchmark results.
type Section struct {
	Commit     string            `json:"commit,omitempty"`
	Note       string            `json:"note,omitempty"`
	Env        *Env              `json:"env,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// ScalingPoint is one core-count sweep measurement. Speedup is the PPS ratio
// against the sweep's first (cores=1) point.
type ScalingPoint struct {
	Cores    int     `json:"cores"`
	Movers   int     `json:"movers"`
	NsPerPkt float64 `json:"ns_per_pkt"`
	PPS      float64 `json:"pps"`
	Speedup  float64 `json:"speedup"`
}

// ScalingSection records a -cores sweep: the commit it measured, the host's
// CPU count (a 1-CPU host time-shares every point, flattening the curve),
// and the per-core-count points.
type ScalingSection struct {
	Commit       string         `json:"commit,omitempty"`
	HostMaxProcs int            `json:"maxprocs_host"`
	Env          *Env           `json:"env,omitempty"`
	Points       []ScalingPoint `json:"points"`
}

// File is the whole BENCH_dataplane.json document. Previous holds the
// last epoch's current section (rotated by hand when a PR re-measures) so
// the JSON keeps one generation of history beyond the fixed baseline.
type File struct {
	Baseline Section         `json:"baseline"`
	Current  Section         `json:"current"`
	Previous *Section        `json:"previous,omitempty"`
	Scaling  *ScalingSection `json:"scaling,omitempty"`
}

const currentNote = "zero-copy frame arena + batch NF adapters; RealNFChain3 " +
	"family runs firewall→NAT→monitor on live engine (single-CPU runner)"

func main() {
	out := flag.String("out", "BENCH_dataplane.json", "JSON file to update in place (empty to skip writing)")
	commit := flag.String("commit", "", "commit hash to record in the current section")
	movers := flag.String("movers", "", "comma-separated mover counts to sweep in-process (e.g. 1,2,4)")
	cores := flag.String("cores", "", "comma-separated core counts to sweep, pinning GOMAXPROCS per point (e.g. 1,2,4,8)")
	benchtime := flag.Duration("benchtime", 2*time.Second, "measurement window per sweep point")
	compare := flag.Bool("compare", false, "compare two benchmark output files: -compare old.txt new.txt")
	threshold := flag.Float64("threshold", -1, "with -compare: exit nonzero when any shared benchmark's ns/pkt regresses more than this percentage (negative disables the gate)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the in-process sweeps to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile of the in-process sweeps to this file")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchdataplane -compare [-threshold pct] old.txt new.txt")
			os.Exit(2)
		}
		os.Exit(compareFiles(flag.Arg(0), flag.Arg(1), *threshold))
	}

	results := make(map[string]Result)
	// Stdin is parsed when it is a pipe; the -movers sweep needs no input.
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		for k, v := range parseBench(os.Stdin) {
			results[k] = v
		}
	}

	stopProfiles := startProfiles(*cpuprofile, *mutexprofile)
	if *movers != "" {
		counts, err := parseMovers(*movers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdataplane:", err)
			os.Exit(2)
		}
		for _, m := range counts {
			r := sweepMovers(m, *benchtime)
			name := "BenchmarkChain3StagesMovers/" + strconv.Itoa(m)
			results[name] = r
			fmt.Printf("%-40s %10.1f ns/pkt %12.0f pps %6.2f allocs/op\n",
				name, r.NsPerPkt, r.PPS, r.AllocsPerOp)
		}
	}
	var scaling *ScalingSection
	if *cores != "" {
		counts, err := parseMovers(*cores)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdataplane:", err)
			os.Exit(2)
		}
		scaling = &ScalingSection{Commit: *commit, HostMaxProcs: runtime.NumCPU(), Env: hostEnv()}
		var base float64
		for _, c := range counts {
			r := sweepCores(c, *benchtime)
			pt := ScalingPoint{Cores: c, Movers: c, NsPerPkt: r.NsPerPkt, PPS: r.PPS}
			if base == 0 {
				base = r.PPS
			}
			if base > 0 {
				pt.Speedup = r.PPS / base
			}
			scaling.Points = append(scaling.Points, pt)
			fmt.Printf("scaling cores=%-2d %10.1f ns/pkt %12.0f pps %6.2fx %6.2f allocs/op\n",
				c, r.NsPerPkt, r.PPS, pt.Speedup, r.AllocsPerOp)
		}
	}
	stopProfiles()

	if len(results) == 0 && scaling == nil {
		fmt.Fprintln(os.Stderr, "benchdataplane: no benchmark lines on stdin and no -movers/-cores sweep")
		os.Exit(1)
	}
	if *out == "" {
		return
	}

	var doc File
	if raw, err := os.ReadFile(*out); err == nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchdataplane: %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	// Merge so a -movers sweep refreshes its points without discarding the
	// `go test` numbers recorded by an earlier bench-dataplane run.
	if doc.Current.Benchmarks == nil {
		doc.Current.Benchmarks = make(map[string]Result)
	}
	for k, v := range results {
		doc.Current.Benchmarks[k] = v
	}
	if *commit != "" {
		doc.Current.Commit = *commit
	}
	doc.Current.Note = currentNote
	doc.Current.Env = hostEnv()
	if scaling != nil {
		doc.Scaling = scaling
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdataplane:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdataplane:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
}

// hostEnv stamps the toolchain and CPU the measurement ran on.
func hostEnv() *Env {
	return &Env{GoVersion: runtime.Version(), GoArch: runtime.GOARCH, CPU: cpuModel()}
}

// cpuModel reads the CPU model name from /proc/cpuinfo; empty when the
// platform does not expose one (the field is then omitted from the JSON).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// startProfiles arms the requested profilers around the in-process sweeps and
// returns the function that stops them and writes the files. Mutex profiling
// samples 1-in-5 contention events — enough to rank hot locks without
// perturbing the sweep.
func startProfiles(cpuPath, mutexPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdataplane:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchdataplane:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(5)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Println("wrote CPU profile:", cpuPath)
		}
		if mutexPath != "" {
			f, err := os.Create(mutexPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdataplane:", err)
				os.Exit(1)
			}
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "benchdataplane:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Println("wrote mutex profile:", mutexPath)
		}
	}
}

// parseMovers parses "1,2,4" into mover counts.
func parseMovers(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -movers element %q (want positive integers)", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// parseBench extracts metric pairs from `go test -bench` output lines, which
// look like:
//
//	BenchmarkChain3Stages   10000   143.8 ns/pkt   6953819 pps   0 B/op   0 allocs/op
//
// Repeated lines for the same benchmark (`-count=N` runs) are averaged.
func parseBench(f io.Reader) map[string]Result {
	sums := make(map[string]Result)
	counts := make(map[string]int)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -N GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r Result
		seen := false
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/pkt":
				r.NsPerPkt, seen = v, true
			case "pps":
				r.PPS, seen = v, true
			case "allocs/op":
				r.AllocsPerOp, seen = v, true
			}
		}
		if seen {
			s := sums[name]
			s.NsPerPkt += r.NsPerPkt
			s.PPS += r.PPS
			s.AllocsPerOp += r.AllocsPerOp
			sums[name] = s
			counts[name]++
		}
	}
	for name, n := range counts {
		s := sums[name]
		s.NsPerPkt /= float64(n)
		s.PPS /= float64(n)
		s.AllocsPerOp /= float64(n)
		sums[name] = s
	}
	return sums
}

// compareFiles prints an old-vs-new delta table for two benchmark output
// files (the builtin fallback for benchstat). With a non-negative threshold
// it becomes a regression gate: any benchmark present in both files whose
// ns/pkt grew by more than threshold percent makes it return 1. Returns the
// process exit code.
func compareFiles(oldPath, newPath string, threshold float64) int {
	read := func(path string) map[string]Result {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdataplane:", err)
			os.Exit(1)
		}
		defer f.Close()
		return parseBench(f)
	}
	oldR, newR := read(oldPath), read(newPath)

	names := make([]string, 0, len(newR))
	for name := range newR {
		names = append(names, name)
	}
	sort.Strings(names)

	worstName, worstPct := "", 0.0
	fmt.Printf("%-42s %12s %12s %8s\n", "benchmark", "old ns/pkt", "new ns/pkt", "delta")
	for _, name := range names {
		n := newR[name]
		o, ok := oldR[name]
		if !ok {
			fmt.Printf("%-42s %12s %12.1f %8s\n", name, "-", n.NsPerPkt, "new")
			continue
		}
		delta := "~"
		if o.NsPerPkt > 0 {
			pct := (n.NsPerPkt - o.NsPerPkt) / o.NsPerPkt * 100
			delta = fmt.Sprintf("%+.1f%%", pct)
			if pct > worstPct {
				worstName, worstPct = name, pct
			}
		}
		fmt.Printf("%-42s %12.1f %12.1f %8s\n", name, o.NsPerPkt, n.NsPerPkt, delta)
	}
	for name := range oldR {
		if _, ok := newR[name]; !ok {
			fmt.Printf("%-42s %12.1f %12s %8s\n", name, oldR[name].NsPerPkt, "-", "gone")
		}
	}
	if threshold >= 0 && worstPct > threshold {
		fmt.Fprintf(os.Stderr, "benchdataplane: %s regressed %+.1f%% ns/pkt (threshold %.1f%%)\n",
			worstName, worstPct, threshold)
		return 1
	}
	return 0
}
