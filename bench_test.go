// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation. Each iteration runs the complete experiment through
// internal/exp and reports the headline numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every paper result. An iteration is a full experiment (often
// seconds of simulated time); expect b.N == 1 per benchmark.
package nfvnice_test

import (
	"testing"

	"nfvnice/internal/exp"
)

// runExp executes the experiment once per b.N and reports selected cells as
// benchmark metrics.
func runExp(b *testing.B, id string, metrics func(*exp.Result, *testing.B)) {
	b.Helper()
	run, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res *exp.Result
	for i := 0; i < b.N; i++ {
		res = run(exp.Default())
	}
	if metrics != nil {
		metrics(res, b)
	}
	b.Logf("\n%s", res.String())
}

func report(b *testing.B, res *exp.Result, tableID, row, col, unit string) {
	t := res.Find(tableID)
	if t == nil {
		b.Fatalf("table %s missing", tableID)
	}
	v, ok := t.Get(row, col)
	if !ok {
		b.Fatalf("cell (%s, %s) missing in %s", row, col, tableID)
	}
	b.ReportMetric(v, unit)
}

func BenchmarkFig1a(b *testing.B) {
	runExp(b, "fig1a", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig1a-uneven", "NF1", "RR", "NF1-RR-Mpps")
		report(b, r, "fig1a-uneven", "NF3", "RR", "NF3-RR-Mpps")
	})
}

func BenchmarkFig1b(b *testing.B) {
	runExp(b, "fig1b", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig1b-even", "NF1", "NORMAL", "NF1-NORMAL-Mpps")
		report(b, r, "fig1b-even", "NF3", "NORMAL", "NF3-NORMAL-Mpps")
	})
}

func BenchmarkTable1(b *testing.B) {
	runExp(b, "table1", func(r *exp.Result, b *testing.B) {
		report(b, r, "table1-even", "NF1", "NORMAL nvcswch/s", "NF1-nvcswch-per-s")
	})
}

func BenchmarkTable2(b *testing.B) {
	runExp(b, "table2", func(r *exp.Result, b *testing.B) {
		report(b, r, "table2-even", "NF1", "NORMAL nvcswch/s", "NORMAL-nvcswch-per-s")
		report(b, r, "table2-even", "NF1", "BATCH nvcswch/s", "BATCH-nvcswch-per-s")
	})
}

func BenchmarkFig7(b *testing.B) {
	runExp(b, "fig7", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig7", "Default", "BATCH", "default-Mpps")
		report(b, r, "fig7", "NFVnice", "BATCH", "nfvnice-Mpps")
	})
}

func BenchmarkTable3(b *testing.B) {
	runExp(b, "table3", func(r *exp.Result, b *testing.B) {
		report(b, r, "table3", "NF1", "BATCH Default", "default-wasted-pps")
		report(b, r, "table3", "NF1", "BATCH NFVnice", "nfvnice-wasted-pps")
	})
}

func BenchmarkTable4(b *testing.B) {
	runExp(b, "table4", func(r *exp.Result, b *testing.B) {
		report(b, r, "table4-delay", "NF3", "BATCH NFVnice", "NF3-delay-ms")
	})
}

func BenchmarkTable5(b *testing.B) {
	runExp(b, "table5", func(r *exp.Result, b *testing.B) {
		report(b, r, "table5", "NF1", "Default CPU %", "default-NF1-cpu")
		report(b, r, "table5", "NF1", "NFVnice CPU %", "nfvnice-NF1-cpu")
	})
}

func BenchmarkFig9(b *testing.B) {
	runExp(b, "fig9", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig9", "chain1", "Default", "default-chain1-Mpps")
		report(b, r, "fig9", "chain1", "NFVnice", "nfvnice-chain1-Mpps")
	})
}

func BenchmarkFig10(b *testing.B) {
	runExp(b, "fig10", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig10", "Default", "BATCH", "default-BATCH-Mpps")
		report(b, r, "fig10", "OnlyBKPR", "BATCH", "bkpr-BATCH-Mpps")
	})
}

func BenchmarkFig11(b *testing.B) {
	runExp(b, "fig11", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig11", "Med-High-Low", "RR(100ms) Def", "default-rr100-Mpps")
		report(b, r, "fig11", "Med-High-Low", "RR(100ms) NFV", "nfvnice-rr100-Mpps")
	})
}

func BenchmarkFig12(b *testing.B) {
	runExp(b, "fig12", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig12", "Type 6", "NORMAL Def", "default-type6-Mpps")
		report(b, r, "fig12", "Type 6", "NORMAL NFV", "nfvnice-type6-Mpps")
	})
}

func BenchmarkFig13(b *testing.B) {
	runExp(b, "fig13", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig13", "10s", "Default TCP", "default-tcp-Mbps")
		report(b, r, "fig13", "10s", "NFVnice TCP", "nfvnice-tcp-Mbps")
		report(b, r, "fig13", "10s", "NFVnice UDP", "nfvnice-udp-Mbps")
	})
}

func BenchmarkFig14(b *testing.B) {
	runExp(b, "fig14", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig14", "64B", "Async gain x", "async-gain-64B")
	})
}

func BenchmarkFig15a(b *testing.B) {
	runExp(b, "fig15a", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig15a", "5s", "NFVnice NF1", "nf1-cpu-before")
		report(b, r, "fig15a", "15s", "NFVnice NF1", "nf1-cpu-during")
	})
}

func BenchmarkFig15b(b *testing.B) {
	runExp(b, "fig15b", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig15b", "6", "Default (NORMAL)", "default-jain")
		report(b, r, "fig15b", "6", "NFVnice", "nfvnice-jain")
	})
}

func BenchmarkFig15c(b *testing.B) {
	runExp(b, "fig15c", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig15c", "NF1", "NFVnice CPU %", "lightest-cpu")
		report(b, r, "fig15c", "NF6", "NFVnice CPU %", "heaviest-cpu")
	})
}

func BenchmarkFig16(b *testing.B) {
	runExp(b, "fig16", func(r *exp.Result, b *testing.B) {
		report(b, r, "fig16", "5", "SC Default", "sc-default-len5-Mpps")
		report(b, r, "fig16", "5", "SC NFVnice", "sc-nfvnice-len5-Mpps")
	})
}

func BenchmarkWatermarkSweep(b *testing.B) {
	runExp(b, "sweep", func(r *exp.Result, b *testing.B) {
		report(b, r, "sweep-high", "80%", "throughput", "high80-Mpps")
	})
}

func BenchmarkAblations(b *testing.B) {
	runExp(b, "ablation", func(r *exp.Result, b *testing.B) {
		report(b, r, "ablation-bp-scope", "chain-entry", "chain1", "entry-chain1-Mpps")
		report(b, r, "ablation-bp-scope", "hop-by-hop", "chain1", "hop-chain1-Mpps")
		report(b, r, "ablation-weight-period", "10ms", "jain", "weights10ms-jain")
		report(b, r, "ablation-weight-period", "1000ms", "jain", "weights1000ms-jain")
	})
}

func BenchmarkECNExtension(b *testing.B) {
	runExp(b, "ecn", func(r *exp.Result, b *testing.B) {
		report(b, r, "ecn", "ECN (RFC 3168)", "losses/s", "ecn-losses-per-s")
		report(b, r, "ecn", "loss-based (ECN off)", "losses/s", "lossbased-losses-per-s")
	})
}

func BenchmarkCustomSchedExtension(b *testing.B) {
	runExp(b, "customsched", func(r *exp.Result, b *testing.B) {
		report(b, r, "customsched", "NFVnice (user space)", "throughput", "nfvnice-Mpps")
		report(b, r, "customsched", "qlen-kernel (sync 10µs)", "throughput", "qlen-sync10us-Mpps")
	})
}

func BenchmarkLatencyExtension(b *testing.B) {
	runExp(b, "latency", func(r *exp.Result, b *testing.B) {
		report(b, r, "latency", "Default", "p99", "default-p99-us")
		report(b, r, "latency", "NFVnice", "p99", "nfvnice-p99-us")
	})
}

func BenchmarkPoissonExtension(b *testing.B) {
	runExp(b, "poisson", func(r *exp.Result, b *testing.B) {
		report(b, r, "poisson", "NFVnice", "Poisson", "nfvnice-poisson-Mpps")
	})
}

func BenchmarkCrossHostExtension(b *testing.B) {
	runExp(b, "crosshost", func(r *exp.Result, b *testing.B) {
		report(b, r, "crosshost", "ECN across hosts", "losses/s", "ecn-losses-per-s")
		report(b, r, "crosshost", "loss-based (ECN off)", "losses/s", "lossbased-losses-per-s")
	})
}
