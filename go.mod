module nfvnice

go 1.22
