package nfvnice

import (
	"nfvnice/internal/simtime"
)

// NFMetrics is a snapshot of one NF's counters, in the units the paper
// reports.
type NFMetrics struct {
	Name string
	// ProcessedPps is the NF's service rate over the measured window.
	ProcessedPps Rate
	// WastedDropsPps is the rate of packets this NF processed that were
	// later dropped downstream (Table 3's wasted work).
	WastedDropsPps Rate
	// EntryDropsPps is the rate of packets dropped unprocessed at this
	// NF's receive ring when it is a chain entry.
	EntryDropsPps Rate
	// RuntimeMs is cumulative CPU runtime in milliseconds.
	RuntimeMs float64
	// AvgSchedDelayMs is the mean runnable-to-running latency.
	AvgSchedDelayMs float64
	// VoluntaryCswch and InvoluntaryCswch are context switches per second
	// over the platform lifetime.
	VoluntaryCswch, InvoluntaryCswch float64
	// CPUShare is the fraction of its core's cycles this NF consumed over
	// the measured window.
	CPUShare float64
	// ServiceTimeCycles is the controller's current median service-time
	// estimate.
	ServiceTimeCycles Cycles
}

// Snapshot captures per-NF totals so a later call can compute windowed
// rates.
type Snapshot struct {
	at        Cycles
	processed []uint64
	wasted    []uint64
	entry     []uint64
	qdrops    []uint64
	runtime   []Cycles
	busy      []Cycles
	sw        []Cycles
	delivered []uint64
	dbytes    []uint64
}

// TakeSnapshot records current counters; pass it to MetricsSince after the
// measurement window.
func (p *Platform) TakeSnapshot() *Snapshot {
	s := &Snapshot{at: p.Eng.Now()}
	for _, n := range p.nfs {
		s.processed = append(s.processed, n.ProcessedMeter.Total())
		s.wasted = append(s.wasted, p.Mgr.Wasted[n.ID].Total())
		s.entry = append(s.entry, p.Mgr.EntryRingDrops[n.ID].Total())
		s.qdrops = append(s.qdrops, p.Mgr.QueueDrops[n.ID].Total())
		s.runtime = append(s.runtime, n.Task.Stats.Runtime)
	}
	for _, c := range p.cores {
		s.busy = append(s.busy, c.BusyCycles)
		s.sw = append(s.sw, c.SwitchCycles)
	}
	for i := range p.Mgr.Delivered {
		s.delivered = append(s.delivered, p.Mgr.Delivered[i].Total())
		s.dbytes = append(s.dbytes, p.Mgr.DeliveredBytes[i].Total())
	}
	return s
}

// NFMetricsSince reports each NF's windowed metrics since the snapshot.
func (p *Platform) NFMetricsSince(s *Snapshot) []NFMetrics {
	now := p.Eng.Now()
	elapsed := now - s.at
	out := make([]NFMetrics, len(p.nfs))
	lifetime := now
	for i, n := range p.nfs {
		st := n.Task.Stats
		m := NFMetrics{
			Name:              n.Name,
			ProcessedPps:      simtime.PerSecond(n.ProcessedMeter.Total()-s.processed[i], elapsed),
			WastedDropsPps:    simtime.PerSecond(p.Mgr.Wasted[n.ID].Total()-s.wasted[i], elapsed),
			EntryDropsPps:     simtime.PerSecond(p.Mgr.EntryRingDrops[n.ID].Total()-s.entry[i], elapsed),
			RuntimeMs:         float64(st.Runtime) / float64(simtime.Millisecond),
			AvgSchedDelayMs:   float64(st.AvgSchedDelay()) / float64(simtime.Millisecond),
			ServiceTimeCycles: n.EstimatedServiceTime(now),
		}
		if lifetime > 0 {
			m.VoluntaryCswch = float64(st.VoluntarySwitches) / lifetime.Seconds()
			m.InvoluntaryCswch = float64(st.InvolSwitches) / lifetime.Seconds()
		}
		if elapsed > 0 {
			m.CPUShare = float64(st.Runtime-s.runtime[i]) / float64(elapsed)
		}
		out[i] = m
	}
	return out
}

// CoreMetrics is a per-core utilization snapshot.
type CoreMetrics struct {
	// Utilization is busy+switch cycles over the window.
	Utilization float64
	// SwitchOverhead is the fraction of the window burned in context
	// switches.
	SwitchOverhead float64
}

// CoreMetricsSince reports windowed core utilization since the snapshot.
func (p *Platform) CoreMetricsSince(s *Snapshot) []CoreMetrics {
	elapsed := p.Eng.Now() - s.at
	out := make([]CoreMetrics, len(p.cores))
	for i, c := range p.cores {
		if elapsed == 0 {
			continue
		}
		busy := c.BusyCycles - s.busy[i]
		sw := c.SwitchCycles - s.sw[i]
		out[i] = CoreMetrics{
			Utilization:    float64(busy+sw) / float64(elapsed),
			SwitchOverhead: float64(sw) / float64(elapsed),
		}
	}
	return out
}

// QueueDropSince reports the rate of packets dropped at an NF's receive
// queue (ring full) over the window — Table 5's per-NF drop rate.
func (p *Platform) QueueDropSince(s *Snapshot, nfID int) Rate {
	elapsed := p.Eng.Now() - s.at
	return simtime.PerSecond(p.Mgr.QueueDrops[nfID].Total()-s.qdrops[nfID], elapsed)
}

// ChainDeliveredSince reports a chain's delivered packet rate over the
// window since the snapshot.
func (p *Platform) ChainDeliveredSince(s *Snapshot, chainID int) Rate {
	elapsed := p.Eng.Now() - s.at
	return simtime.PerSecond(p.Mgr.Delivered[chainID].Total()-s.delivered[chainID], elapsed)
}

// ChainDeliveredMbpsSince reports a chain's delivered bandwidth in Mbps.
func (p *Platform) ChainDeliveredMbpsSince(s *Snapshot, chainID int) float64 {
	elapsed := p.Eng.Now() - s.at
	bytes := p.Mgr.DeliveredBytes[chainID].Total() - s.dbytes[chainID]
	if elapsed == 0 {
		return 0
	}
	return float64(bytes) * 8 / elapsed.Seconds() / 1e6
}

// TotalDeliveredSince sums delivered packet rates across all chains.
func (p *Platform) TotalDeliveredSince(s *Snapshot) Rate {
	var total Rate
	for i := range p.Mgr.Delivered {
		total += p.ChainDeliveredSince(s, i)
	}
	return total
}

// TotalWastedSince sums wasted-work drop rates across all NFs.
func (p *Platform) TotalWastedSince(s *Snapshot) Rate {
	elapsed := p.Eng.Now() - s.at
	var tot uint64
	var base uint64
	for i := range p.nfs {
		tot += p.Mgr.Wasted[i].Total()
		base += s.wasted[i]
	}
	return simtime.PerSecond(tot-base, elapsed)
}

// EntryThrottleDrops reports total backpressure sheds at chain entries.
func (p *Platform) EntryThrottleDrops() uint64 {
	return p.Mgr.Throttles.TotalEntryDrops()
}

// LatencyQuantile reports the q-th quantile of end-to-end latency of
// delivered packets (lifetime), in microseconds.
func (p *Platform) LatencyQuantile(q float64) float64 {
	return float64(p.Mgr.Latency.Quantile(q)) / float64(simtime.Microsecond)
}

// Window is a completed measurement interval: RunWindow warms the platform,
// snapshots every counter, runs the measured span, and hands back accessors
// for the windowed rates. It replaces the warm/snapshot/measure boilerplate
// cmd/nfvsim and cmd/nfvsweep used to copy.
type Window struct {
	p    *Platform
	snap *Snapshot
}

// RunWindow advances the simulation warm cycles (excluded from measurement),
// then meas cycles more, and returns the measured window. Both are durations
// from the platform's current time, so windows can be chained back to back.
func (p *Platform) RunWindow(warm, meas Cycles) *Window {
	p.Run(p.Now() + warm)
	w := &Window{p: p, snap: p.TakeSnapshot()}
	p.Run(p.Now() + meas)
	return w
}

// NFMetrics reports each NF's windowed metrics.
func (w *Window) NFMetrics() []NFMetrics { return w.p.NFMetricsSince(w.snap) }

// CoreMetrics reports windowed per-core utilization.
func (w *Window) CoreMetrics() []CoreMetrics { return w.p.CoreMetricsSince(w.snap) }

// ChainRate reports a chain's delivered packet rate over the window.
func (w *Window) ChainRate(chainID int) Rate { return w.p.ChainDeliveredSince(w.snap, chainID) }

// ChainMbps reports a chain's delivered bandwidth over the window.
func (w *Window) ChainMbps(chainID int) float64 { return w.p.ChainDeliveredMbpsSince(w.snap, chainID) }

// TotalDelivered sums delivered packet rates across chains.
func (w *Window) TotalDelivered() Rate { return w.p.TotalDeliveredSince(w.snap) }

// TotalWasted sums wasted-work drop rates across NFs.
func (w *Window) TotalWasted() Rate { return w.p.TotalWastedSince(w.snap) }

// QueueDropRate reports an NF's receive-queue drop rate over the window.
func (w *Window) QueueDropRate(nfID int) Rate { return w.p.QueueDropSince(w.snap, nfID) }
