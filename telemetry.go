package nfvnice

import (
	"strconv"

	"nfvnice/internal/bp"
	"nfvnice/internal/cpusched"
	"nfvnice/internal/obs"
	"nfvnice/internal/simtime"
	"nfvnice/internal/telemetry"
)

// Telemetry bundles a platform's observability surfaces: the metric registry
// (gather it, serve it with telemetry.NewMux/StartServer, or record it into
// a time series), and the structured event log of control-plane decisions
// (backpressure edges, cgroup weight writes, ECN marks). Obtain one with
// Platform.EnableTelemetry after declaring the topology and before Run.
type Telemetry struct {
	Registry *telemetry.Registry
	Events   *telemetry.EventLog

	p *Platform
}

// EnableTelemetry registers every NF, core and chain of the platform into a
// fresh metric registry and hooks the manager and controller into a
// structured event log. Call after the topology is declared (AddNF/AddChain)
// and before Run; NFs or chains added later are not instrumented.
//
// The registry's instruments read the simulator's meters directly, so gather
// (scrape, record, dump) only while the simulation is not being advanced —
// from inside the event loop (StartRecorder does this) or after Run returns.
func (p *Platform) EnableTelemetry() *Telemetry {
	t := &Telemetry{
		Registry: telemetry.NewRegistry(),
		Events:   telemetry.NewEventLog(0),
		p:        p,
	}
	reg := t.Registry

	reg.GaugeFunc("nfvnice_sim_seconds",
		"Current simulated time.", func() float64 { return p.Eng.Now().Seconds() })

	for id, n := range p.nfs {
		lbl := []telemetry.Label{
			telemetry.L("nf", n.Name),
			telemetry.L("id", strconv.Itoa(id)),
		}
		reg.CounterFunc("nfvnice_nf_processed_total",
			"Packets processed by the NF.", n.ProcessedMeter.Total, lbl...)
		reg.CounterFunc("nfvnice_nf_arrivals_total",
			"Packets offered to the NF's receive queue (attempts).", n.ArrivalMeter.Total, lbl...)
		reg.CounterFunc("nfvnice_nf_wasted_total",
			"Packets this NF processed that were dropped downstream (wasted work).",
			p.Mgr.Wasted[id].Total, lbl...)
		reg.CounterFunc("nfvnice_nf_entry_drops_total",
			"Packets dropped unprocessed at this NF's receive ring as a chain entry.",
			p.Mgr.EntryRingDrops[id].Total, lbl...)
		reg.CounterFunc("nfvnice_nf_queue_drops_total",
			"Packets dropped at this NF's receive queue (entry and downstream).",
			p.Mgr.QueueDrops[id].Total, lbl...)
		reg.CounterFunc("nfvnice_nf_ecn_marked_total",
			"CE marks applied at this NF's queue.",
			func() uint64 { return p.Mgr.ECNMarked(id) }, lbl...)
		reg.GaugeFunc("nfvnice_nf_queue_depth",
			"Instantaneous receive-ring occupancy.",
			func() float64 { return float64(n.Rx.Len()) }, lbl...)
		reg.GaugeFunc("nfvnice_nf_service_time_cycles",
			"Median service-time estimate over the moving window.",
			func() float64 { return float64(n.EstimatedServiceTime(p.Eng.Now())) }, lbl...)
		reg.GaugeFunc("nfvnice_nf_runtime_cycles",
			"Cumulative on-CPU cycles.",
			func() float64 { return float64(n.Task.Stats.Runtime) }, lbl...)
		reg.HistogramFunc("nfvnice_nf_service_cycles",
			"Sampled per-packet service times.", n.ServiceHist.Snapshot, lbl...)
		if p.cfg.features().CGroupShares {
			reg.GaugeFunc("nfvnice_nf_cpu_shares",
				"Current cgroup cpu.shares assigned by the controller.",
				func() float64 { return float64(p.Ctl.ShareOf(n)) }, lbl...)
		}
	}

	for id, c := range p.cores {
		lbl := []telemetry.Label{telemetry.L("core", strconv.Itoa(id))}
		reg.CounterFunc("nfvnice_core_busy_cycles_total",
			"Cycles spent executing NF work.", func() uint64 { return uint64(c.BusyCycles) }, lbl...)
		reg.CounterFunc("nfvnice_core_switch_cycles_total",
			"Cycles burned in context switches.", func() uint64 { return uint64(c.SwitchCycles) }, lbl...)
		reg.CounterFunc("nfvnice_core_switches_total",
			"Context switches.", func() uint64 { return c.Switches }, lbl...)
	}

	for _, ch := range p.Chains.All() {
		id := ch.ID
		lbl := []telemetry.Label{
			telemetry.L("chain", ch.Name),
			telemetry.L("id", strconv.Itoa(id)),
		}
		reg.CounterFunc("nfvnice_chain_delivered_total",
			"Packets that completed the chain.", p.Mgr.Delivered[id].Total, lbl...)
		reg.CounterFunc("nfvnice_chain_delivered_bytes_total",
			"Bytes delivered by the chain.", p.Mgr.DeliveredBytes[id].Total, lbl...)
		reg.CounterFunc("nfvnice_chain_entry_throttle_drops_total",
			"Packets shed at the chain entry by backpressure.",
			func() uint64 { return p.Mgr.Throttles.EntryDrops[id] }, lbl...)
		reg.GaugeFunc("nfvnice_chain_throttled",
			"1 while the chain is shed at entry.",
			func() float64 {
				if p.Mgr.Throttles.Throttled(id) {
					return 1
				}
				return 0
			}, lbl...)
	}

	reg.CounterFunc("nfvnice_pool_drops_total",
		"NIC-level drops from descriptor-pool exhaustion.", p.Mgr.PoolDrops.Total)
	reg.CounterFunc("nfvnice_cgroup_writes_total",
		"cpu.shares sysfs writes.", func() uint64 { return p.FS.Writes })
	reg.HistogramFunc("nfvnice_latency_cycles",
		"End-to-end latency of delivered packets.", p.Mgr.Latency.Snapshot)

	// Event log: every control-plane decision flows through here; sinks
	// (AttachTrace) fan the same instrumentation points out to the trace.
	p.addThrottleHook(func(nfID int, enabled bool, now Cycles) {
		state := "clear"
		lvl := telemetry.LevelInfo
		if enabled {
			state = "throttle"
		}
		t.Events.Emit(now.Seconds(), lvl, "backpressure",
			telemetry.F("nf", p.nfs[nfID].Name), telemetry.F("state", state))
	})
	p.addBPTransitionHook(func(nfID int, tr bp.Transition) {
		t.Events.Emit(p.Eng.Now().Seconds(), telemetry.LevelDebug, "bp_state",
			telemetry.F("nf", p.nfs[nfID].Name),
			telemetry.F("from", tr.From.String()), telemetry.F("to", tr.To.String()),
			telemetry.F("above_high", tr.AboveHigh), telemetry.F("below_low", tr.BelowLow),
			telemetry.F("time_above_us", float64(tr.TimeAbove)/float64(simtime.Microsecond)))
	})
	p.addSharesHook(func(nfID, shares int, now Cycles) {
		t.Events.Emit(now.Seconds(), telemetry.LevelDebug, "cpu.shares",
			telemetry.F("nf", p.nfs[nfID].Name), telemetry.F("shares", shares))
	})
	p.addECNHook(func(nfID int, now Cycles) {
		t.Events.Emit(now.Seconds(), telemetry.LevelDebug, "ecn-mark",
			telemetry.F("nf", p.nfs[nfID].Name))
	})
	return t
}

// StartRecorder samples the registry every period of simulated time into a
// bounded time series (capacity 0 takes the default). Call before Run; the
// samples happen inside the event loop, so gathering is race-free.
func (t *Telemetry) StartRecorder(period Cycles, capacity int) *telemetry.Recorder {
	rec := telemetry.NewRecorder(t.Registry, capacity)
	eng := t.p.Eng
	eng.Every(eng.Now()+period, period, func() {
		rec.Sample(eng.Now().Seconds())
	})
	return rec
}

// AttachTrace mirrors the platform's instrumentation into a Chrome-trace
// sink (obs.Trace to buffer, obs.ChromeWriter to stream): per-core NF run
// spans directly, and the event log's backpressure/weight events as instants
// and counter tracks — one set of instrumentation points, three outputs
// (Prometheus, CSV time series, Perfetto trace).
func (t *Telemetry) AttachTrace(sink obs.Sink) {
	t.p.addRunSpanHook(sink)
	t.Events.AddSink(func(e telemetry.Event) {
		now := simtime.Cycles(e.Time * float64(simtime.Second))
		switch e.Type {
		case "backpressure":
			args := make(map[string]any, len(e.Fields))
			state := ""
			for _, f := range e.Fields {
				args[f.Key] = f.Value
				if f.Key == "state" {
					state, _ = f.Value.(string)
				}
			}
			sink.Instant("bp-"+state, now, args)
		case "cpu.shares":
			name := ""
			shares := 0
			for _, f := range e.Fields {
				switch f.Key {
				case "nf":
					name, _ = f.Value.(string)
				case "shares":
					shares, _ = f.Value.(int)
				}
			}
			sink.Counter("shares:"+name, now, float64(shares))
		}
	})
}

// addBPTransitionHook chains a Figure-4 state-machine observer onto the
// manager without displacing previously registered ones.
func (p *Platform) addBPTransitionHook(fn func(nfID int, tr bp.Transition)) {
	prev := p.Mgr.OnBPTransition
	p.Mgr.OnBPTransition = func(nfID int, tr bp.Transition) {
		if prev != nil {
			prev(nfID, tr)
		}
		fn(nfID, tr)
	}
}

// addThrottleHook chains a backpressure observer onto the manager without
// displacing previously registered ones.
func (p *Platform) addThrottleHook(fn func(nfID int, enabled bool, now Cycles)) {
	prev := p.Mgr.OnThrottle
	p.Mgr.OnThrottle = func(nfID int, enabled bool, now Cycles) {
		if prev != nil {
			prev(nfID, enabled, now)
		}
		fn(nfID, enabled, now)
	}
}

// addSharesHook chains a cpu.shares observer onto the controller.
func (p *Platform) addSharesHook(fn func(nfID, shares int, now Cycles)) {
	prev := p.Ctl.OnShares
	p.Ctl.OnShares = func(nfID, shares int, now Cycles) {
		if prev != nil {
			prev(nfID, shares, now)
		}
		fn(nfID, shares, now)
	}
}

// addECNHook chains a CE-mark observer onto the manager.
func (p *Platform) addECNHook(fn func(nfID int, now Cycles)) {
	prev := p.Mgr.OnECNMark
	p.Mgr.OnECNMark = func(nfID int, now Cycles) {
		if prev != nil {
			prev(nfID, now)
		}
		fn(nfID, now)
	}
}

// addRunSpanHook chains a run-span observer onto every core.
func (p *Platform) addRunSpanHook(sink obs.Sink) {
	for _, c := range p.cores {
		prev := c.OnRunSpan
		c.OnRunSpan = func(t *cpusched.Task, start, end Cycles) {
			if prev != nil {
				prev(t, start, end)
			}
			sink.RunSpan(t.Core().ID, t.Name, start, end)
		}
	}
}
