// Package nfvnice is a Go reproduction of "NFVnice: Dynamic Backpressure and
// Scheduling for NFV Service Chains" (SIGCOMM 2017): a user-space NF
// scheduling and service-chain management framework providing rate-cost
// proportional fair CPU allocation via cgroup weights and chain-aware
// backpressure, evaluated over faithful models of the Linux CFS, CFS-BATCH
// and round-robin schedulers inside a deterministic discrete-event
// simulation of an OpenNetVM-style platform.
//
// The entry point is Platform: declare cores with a scheduling policy, pin
// NFs with per-packet cost models, register service chains, map flows,
// attach workloads, and run. Metrics mirror what the paper reports:
// per-chain throughput, wasted work, context switches, scheduling latency,
// CPU utilization and fairness.
//
//	cfg := nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeNFVnice)
//	p := nfvnice.NewPlatform(cfg)
//	core := p.AddCore()
//	nf1 := p.AddNF("light", nfvnice.FixedCost(120), core)
//	nf2 := p.AddNF("heavy", nfvnice.FixedCost(550), core)
//	ch := p.AddChain("fw-dpi", nf1, nf2)
//	p.MapFlow(nfvnice.UDPFlow(0, 64), ch)
//	p.AddCBR(nfvnice.UDPFlow(0, 64), nfvnice.LineRate10G(64))
//	p.Run(nfvnice.Seconds(1))
//	fmt.Println(p.ChainDeliveredRate(ch, nfvnice.Seconds(1)))
package nfvnice

import (
	"fmt"
	"math/rand"

	"nfvnice/internal/cgroups"
	"nfvnice/internal/chain"
	ctl "nfvnice/internal/core"
	"nfvnice/internal/cpusched"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/flowtable"
	"nfvnice/internal/iosim"
	"nfvnice/internal/mgr"
	"nfvnice/internal/nf"
	"nfvnice/internal/obs"
	"nfvnice/internal/packet"
	"nfvnice/internal/pcap"
	"nfvnice/internal/simtime"
	"nfvnice/internal/traffic"
)

// Re-exported time and rate types: all public APIs speak cycles of the
// simulated 2.6 GHz clock and packets per second.
type (
	// Cycles is simulated time/duration in CPU cycles (2.6 GHz).
	Cycles = simtime.Cycles
	// Rate is packets (or events) per second.
	Rate = simtime.Rate
	// Flow identifies a generated traffic flow.
	Flow = traffic.Flow
	// CostModel prices one packet's processing at an NF.
	CostModel = nf.CostModel
	// DropPoint tells where a packet died.
	DropPoint = mgr.DropPoint
	// Sink observes a flow's delivered/dropped packets.
	Sink = mgr.Sink
	// Packet is the packet descriptor handed to sinks.
	Packet = packet.Packet
)

// Convenience duration constructors.
func Seconds(s float64) Cycles       { return Cycles(s * float64(simtime.Second)) }
func Milliseconds(ms float64) Cycles { return Cycles(ms * float64(simtime.Millisecond)) }

// Exposed simtime helpers.
var (
	// LineRate10G is the 10 GbE packet rate for a frame size.
	LineRate10G = simtime.LineRate10G
	// UDPFlow and TCPFlow construct distinct flows by index.
	UDPFlow = traffic.FlowN
	TCPFlow = traffic.TCPFlowN
)

// Cost model constructors re-exported from the NF layer.
func FixedCost(cycles Cycles) CostModel            { return nf.FixedCost(cycles) }
func ClassCost(classes ...Cycles) CostModel        { return nf.ClassCost(classes) }
func UniformCost(lo, hi Cycles) CostModel          { return nf.UniformCost{Lo: lo, Hi: hi} }
func ByteCost(base, perByte Cycles) CostModel      { return nf.ByteCost{Base: base, PerByte: perByte} }
func NewDynamicCost(cycles Cycles) *nf.DynamicCost { return nf.NewDynamicCost(cycles) }

// SchedPolicy selects the kernel scheduler model for a core.
type SchedPolicy int

// Scheduler policies from the paper's evaluation.
const (
	SchedNormal  SchedPolicy = iota // CFS SCHED_NORMAL
	SchedBatch                      // CFS SCHED_BATCH
	SchedRR1ms                      // SCHED_RR, 1 ms slice
	SchedRR100ms                    // SCHED_RR, 100 ms slice
)

func (s SchedPolicy) String() string {
	switch s {
	case SchedNormal:
		return "NORMAL"
	case SchedBatch:
		return "BATCH"
	case SchedRR1ms:
		return "RR(1ms)"
	case SchedRR100ms:
		return "RR(100ms)"
	default:
		return fmt.Sprintf("sched(%d)", int(s))
	}
}

// AllSchedPolicies lists the four evaluated schedulers.
func AllSchedPolicies() []SchedPolicy {
	return []SchedPolicy{SchedNormal, SchedBatch, SchedRR1ms, SchedRR100ms}
}

// Mode selects which NFVnice mechanisms run, matching the paper's ablation
// bars: Default, CGroup, Only BKPR, NFVnice.
type Mode int

// Feature modes.
const (
	ModeDefault Mode = iota
	ModeCgroupsOnly
	ModeBackpressureOnly
	ModeNFVnice
)

func (m Mode) String() string {
	switch m {
	case ModeDefault:
		return "Default"
	case ModeCgroupsOnly:
		return "CGroup"
	case ModeBackpressureOnly:
		return "OnlyBKPR"
	case ModeNFVnice:
		return "NFVnice"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Features returns the manager feature set the mode enables, for building
// FeatureOverride values in ablations.
func (m Mode) Features() mgr.Features { return m.features() }

func (m Mode) features() mgr.Features {
	switch m {
	case ModeCgroupsOnly:
		return mgr.FeatureCgroupsOnly()
	case ModeBackpressureOnly:
		return mgr.FeatureBackpressureOnly()
	case ModeNFVnice:
		return mgr.FeatureNFVnice()
	default:
		return mgr.FeatureDefault()
	}
}

// AllModes lists the four ablation configurations.
func AllModes() []Mode {
	return []Mode{ModeDefault, ModeCgroupsOnly, ModeBackpressureOnly, ModeNFVnice}
}

// Config assembles a platform. Zero values are filled by DefaultConfig.
type Config struct {
	Scheduler SchedPolicy
	Mode      Mode
	// PoolSize is the shared descriptor pool capacity.
	PoolSize int
	// NFParams configure libnf (batch size, rings, watermarks, sampling).
	NFParams nf.Params
	// MgrParams configure the manager threads and backpressure.
	MgrParams *mgr.Params
	// CtlParams configure the NFVnice controller (monitor and weight
	// update cadence).
	CtlParams ctl.Params
	// FeatureOverride, when non-nil, replaces the Mode-derived feature
	// set (for ablations such as hop-by-hop-only backpressure).
	FeatureOverride *mgr.Features
	// SchedulerFactory, when non-nil, overrides the Scheduler policy with
	// a custom per-core scheduler (e.g. the queue-length-aware kernel
	// scheduler ablation).
	SchedulerFactory func() cpusched.Scheduler
	// CoreParams, when non-nil, overrides the context-switch cost model
	// (e.g. to charge per-decision kernel-sync overhead).
	CoreParams *cpusched.CoreParams
	// Seed drives every RNG in the platform.
	Seed int64
}

func (c Config) features() mgr.Features {
	if c.FeatureOverride != nil {
		return *c.FeatureOverride
	}
	return c.Mode.features()
}

// DefaultConfig returns the calibrated configuration for a scheduler/mode
// combination.
func DefaultConfig(s SchedPolicy, m Mode) Config {
	return Config{
		Scheduler: s,
		Mode:      m,
		PoolSize:  65536,
		NFParams:  nf.DefaultParams(),
		CtlParams: ctl.DefaultParams(),
		Seed:      1,
	}
}

// Platform is an assembled NFV host: cores, NFs, chains, manager,
// controller, and workloads, all inside one deterministic simulation.
type Platform struct {
	cfg Config

	Eng    *eventsim.Engine
	Pool   *packet.Pool
	Chains *chain.Registry
	Mgr    *mgr.Manager
	FS     *cgroups.FS
	Ctl    *ctl.Controller

	cores    []*cpusched.Core
	nfs      []*nf.NF
	nic      *traffic.NIC
	gens     []*traffic.CBR
	poissons []*traffic.Poisson
	replays  []*traffic.Replay
	tcps     []*traffic.TCPFlow

	started bool
	seedSeq int64
}

// NewPlatform builds an empty platform from the config.
func NewPlatform(cfg Config) *Platform {
	return NewPlatformOn(cfg, eventsim.New())
}

// NewPlatformOn builds a platform on an existing engine, so several hosts
// can share one simulated timeline (cross-host chains, §3.3). Create host A
// with NewPlatform and host B with NewPlatformOn(cfg, hostA.Eng), then
// bridge them with a Link.
func NewPlatformOn(cfg Config, eng *eventsim.Engine) *Platform {
	if cfg.PoolSize == 0 {
		cfg = DefaultConfig(cfg.Scheduler, cfg.Mode)
	}
	pool := packet.NewPool(cfg.PoolSize)
	chains := chain.NewRegistry()
	mp := mgr.DefaultParams(cfg.features())
	if cfg.MgrParams != nil {
		mp = *cfg.MgrParams
		mp.Features = cfg.features()
	}
	m := mgr.New(eng, pool, chains, mp)
	fs := cgroups.NewFS()
	return &Platform{
		nic:    traffic.NewNIC(eng),
		cfg:    cfg,
		Eng:    eng,
		Pool:   pool,
		Chains: chains,
		Mgr:    m,
		FS:     fs,
		Ctl:    ctl.New(eng, fs, cfg.CtlParams),
	}
}

// Config returns the platform's configuration.
func (p *Platform) Config() Config { return p.cfg }

func (p *Platform) newScheduler() cpusched.Scheduler {
	if p.cfg.SchedulerFactory != nil {
		return p.cfg.SchedulerFactory()
	}
	switch p.cfg.Scheduler {
	case SchedBatch:
		return cpusched.NewCFSBatch()
	case SchedRR1ms:
		return cpusched.NewRR("rr-1ms", simtime.Millisecond)
	case SchedRR100ms:
		return cpusched.NewRR("rr-100ms", 100*simtime.Millisecond)
	default:
		return cpusched.NewCFS()
	}
}

// AddCore creates an NF core under the configured scheduler and returns its
// index.
func (p *Platform) AddCore() int {
	id := len(p.cores)
	cp := cpusched.DefaultCoreParams()
	if p.cfg.CoreParams != nil {
		cp = *p.cfg.CoreParams
	}
	c := cpusched.NewCore(id, p.Eng, p.newScheduler(), cp)
	p.cores = append(p.cores, c)
	return id
}

// Core exposes a core for metric collection.
func (p *Platform) Core(id int) *cpusched.Core { return p.cores[id] }

// Cores reports the number of NF cores.
func (p *Platform) Cores() int { return len(p.cores) }

// AddNF creates an NF with the given per-packet cost model, pins it to the
// core, and registers it with the manager and controller. It returns the NF
// id used in chain definitions.
func (p *Platform) AddNF(name string, cost CostModel, coreID int) int {
	if p.started {
		panic("nfvnice: AddNF after Run")
	}
	id := len(p.nfs)
	p.seedSeq++
	n := nf.New(id, name, cost, p.cfg.NFParams, p.cfg.Seed*1_000_003+p.seedSeq)
	p.cores[coreID].AddTask(n.Task)
	p.nfs = append(p.nfs, n)
	p.Mgr.AddNF(n)
	if p.cfg.features().CGroupShares {
		if err := p.Ctl.Manage(n); err != nil {
			panic(err)
		}
	}
	return id
}

// NF exposes the underlying NF for metric collection and advanced knobs
// (priority, loggers).
func (p *Platform) NF(id int) *nf.NF { return p.nfs[id] }

// NFCount reports the number of NFs.
func (p *Platform) NFCount() int { return len(p.nfs) }

// SetPriority sets the NFVnice priority multiplier for differentiated
// service.
func (p *Platform) SetPriority(nfID int, prio float64) { p.nfs[nfID].Priority = prio }

// AddChain registers a service chain over NF ids and returns the chain id.
func (p *Platform) AddChain(name string, nfIDs ...int) int {
	c := p.Chains.MustAdd(name, nfIDs...)
	// The manager sized its per-chain meters at construction; re-grow.
	p.Mgr.GrowChains(p.Chains.Len())
	return c.ID
}

// MapFlow routes a flow's 5-tuple to a chain.
func (p *Platform) MapFlow(f Flow, chainID int) {
	p.Mgr.Table.InstallExact(f.Key, chainID)
}

// InstallRule adds a wildcard flow rule (zero fields match anything).
func (p *Platform) InstallRule(r flowtable.Rule) { p.Mgr.Table.Install(r) }

// AddCBR attaches a constant-rate UDP generator for the flow. Generators
// share a NIC that interleaves concurrent flows' packets on the wire.
func (p *Platform) AddCBR(f Flow, rate Rate) *traffic.CBR {
	p.seedSeq++
	g := traffic.NewCBR(p.nic, p.Mgr, f, rate, p.cfg.Seed*7_000_003+p.seedSeq)
	p.gens = append(p.gens, g)
	return g
}

// AddReplay attaches a pcap trace replayer. Flows discovered in the trace
// get dense ids starting at firstFlowID; map them to chains via Prescan +
// MapFlow or a wildcard InstallRule before running.
func (p *Platform) AddReplay(pkts []pcap.Packet, firstFlowID int) *traffic.Replay {
	r := traffic.NewReplay(p.Eng, p.Mgr, pkts, firstFlowID)
	p.replays = append(p.replays, r)
	return r
}

// AddPoisson attaches a Poisson-arrival UDP generator for the flow.
func (p *Platform) AddPoisson(f Flow, rate Rate) *traffic.Poisson {
	p.seedSeq++
	g := traffic.NewPoisson(p.Eng, p.Mgr, f, rate, p.cfg.Seed*11_000_003+p.seedSeq)
	p.poissons = append(p.poissons, g)
	return g
}

// AddTCP attaches a Reno TCP bulk sender for the flow.
func (p *Platform) AddTCP(f Flow, params traffic.TCPParams) *traffic.TCPFlow {
	t := traffic.NewTCPFlow(p.Eng, p.Mgr, f, params)
	p.tcps = append(p.tcps, t)
	return t
}

// AttachAsyncLogger gives the NF a double-buffered async disk writer
// (libnf_write_data); logFlows restricts logging to those FlowIDs (nil =
// all).
func (p *Platform) AttachAsyncLogger(nfID int, logFlows map[int]bool) *iosim.Writer {
	disk := iosim.NewDisk(p.Eng)
	w := iosim.NewWriter(p.Eng, disk)
	n := p.nfs[nfID]
	n.AttachLogger(w)
	n.LogFlows = logFlows
	return w
}

// AttachSyncLogger gives the NF the synchronous-write baseline.
func (p *Platform) AttachSyncLogger(nfID int, logFlows map[int]bool) {
	disk := iosim.NewDisk(p.Eng)
	n := p.nfs[nfID]
	n.SyncLogger = iosim.NewSyncWriter(disk)
	n.LogFlows = logFlows
}

// RegisterSink attaches a per-flow observer (UDP accounting and tests).
func (p *Platform) RegisterSink(flowID int, s Sink) { p.Mgr.RegisterSink(flowID, s) }

// Rand returns a deterministic RNG derived from the platform seed, for
// experiment-level randomness (workload construction).
func (p *Platform) Rand() *rand.Rand {
	p.seedSeq++
	return rand.New(rand.NewSource(p.cfg.Seed*13_000_001 + p.seedSeq))
}

// EnableTracing records a Chrome-trace (Perfetto-compatible) timeline of
// the run: per-core NF run spans, backpressure transitions, and cpu.shares
// counters. Call before Run; write the result with Trace.WriteChrome. For
// long runs prefer EnableTraceTo with a streaming obs.ChromeWriter, which
// never hits the in-memory retention cap.
func (p *Platform) EnableTracing() *obs.Trace {
	tr := obs.New()
	p.EnableTraceTo(tr)
	return tr
}

// EnableTraceTo sends the tracing instrumentation to any obs.Sink — a
// buffered obs.Trace or a streaming obs.ChromeWriter. Hooks are chained, so
// tracing composes with EnableTelemetry and repeated calls.
func (p *Platform) EnableTraceTo(tr obs.Sink) {
	p.addRunSpanHook(tr)
	p.addThrottleHook(func(nfID int, enabled bool, now Cycles) {
		state := "clear"
		if enabled {
			state = "throttle"
		}
		tr.Instant("bp-"+state, now, map[string]any{"nf": p.nfs[nfID].Name})
	})
	p.addSharesHook(func(nfID, shares int, now Cycles) {
		tr.Counter("shares:"+p.nfs[nfID].Name, now, float64(shares))
	})
}

// Start arms the manager, controller and generators without advancing time.
// Run calls it implicitly.
func (p *Platform) Start() {
	if p.started {
		return
	}
	p.started = true
	p.Mgr.Start()
	if p.cfg.features().CGroupShares {
		p.Ctl.Start()
	}
	for _, g := range p.gens {
		g.Start()
	}
	for _, g := range p.poissons {
		g.Start()
	}
	for _, r := range p.replays {
		r.Start()
	}
}

// Run advances the simulation until the given absolute time.
func (p *Platform) Run(until Cycles) {
	p.Start()
	p.Eng.RunUntil(until)
}

// Now reports current simulated time.
func (p *Platform) Now() Cycles { return p.Eng.Now() }
