// Chaos chain: a 3-stage service chain where the middle NF panics on a
// deterministic schedule. The supervisor isolates each crash (the packets in
// the dying worker's hands are charged to FaultDrops, nothing else is lost),
// restarts the stage with exponential backoff, and — because the chain runs
// the default fail-closed policy — sheds new arrivals at the chain entry
// while the hop is down. When the dust settles, packet conservation holds
// exactly:
//
//	injected == delivered + nf + fault + shutdown + output + mid-ring drops
//
// Run:
//
//	go run ./examples/chaos_chain
//	go run ./examples/chaos_chain -listen :9090   # poll /healthz live
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/faults"
	"nfvnice/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "", "serve /metrics, /events and /healthz on this address (e.g. :9090) and run until interrupted")
	seed := flag.Uint64("seed", 42, "fault schedule seed (same seed, same crash timeline)")
	every := flag.Int("every", 400, "middle stage panics every Nth packet it touches")
	flag.Parse()

	e := dataplane.New(dataplane.Config{
		RingSize:       512,
		BatchSize:      16,
		GrantTimeout:   100 * time.Millisecond,
		DrainTimeout:   time.Second,
		RestartBackoff: 2 * time.Millisecond,
		MaxRestarts:    -1, // keep restarting; the demo faults never stop
		JitterSeed:     1,
	})

	// The fault injector is part of the harness, not the handler: the same
	// seed replays the same crash schedule byte for byte.
	inj := faults.New(*seed,
		faults.PanicOn(faults.EveryNth(*every), "chaos_chain: injected NF crash"),
		faults.DelayOn(faults.Prob(0.005), 100*time.Microsecond),
	)
	defer inj.Release()

	classify := e.AddStage("classify", 1024, func(p *dataplane.Packet) {})
	flaky := e.AddStage("flaky-dpi", 1024, faults.Wrap(inj, func(p *dataplane.Packet) {}))
	forward := e.AddStage("forward", 1024, func(p *dataplane.Packet) {})
	chain, err := e.AddChain(classify, flaky, forward)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos_chain:", err)
		os.Exit(1)
	}
	e.MapFlow(0, chain)
	// Default policy is fail-closed: while flaky-dpi is Failed, arrivals are
	// shed at the chain entry (FaultEntryDrops) instead of piling up behind
	// a dead hop. Uncomment for fail-open (skip the dead hop instead):
	//
	//	e.SetChainPolicy(chain, dataplane.FailOpen)

	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(4096)
	e.RegisterMetrics(reg)
	e.SetEventLog(events)

	var ctx context.Context
	var cancel context.CancelFunc
	if *listen != "" {
		mux := telemetry.NewMux(reg, events)
		telemetry.AddHealthz(mux, e.HealthSnapshot)
		srv, err := telemetry.StartServerMux(*listen, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos_chain:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/healthz (also /metrics, /events) — Ctrl-C to exit\n", srv.Addr)
		ctx, cancel = signal.NotifyContext(context.Background(), os.Interrupt)
	} else {
		ctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
	}
	defer cancel()

	sink := e.NewPacketCache(256)
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			sink.Put(p)
		}
	})

	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	go func() {
		cache := e.NewPacketCache(256)
		batch := make([]*dataplane.Packet, 8)
		for ctx.Err() == nil {
			for i := range batch {
				p := cache.Get()
				p.FlowID = 0
				p.Size = 64
				batch[i] = p
			}
			e.InjectBatch(batch)
			time.Sleep(50 * time.Microsecond)
		}
	}()

	fmt.Printf("chaos chain: classify -> flaky-dpi (panics every %dth packet) -> forward\n\n", *every)
	fmt.Printf("%6s  %-10s %-10s %9s %8s %10s %10s\n",
		"t(ms)", "stage", "health", "processed", "restarts", "faultDrops", "entryShed")
	start := time.Now()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for printed := 0; (*listen != "" || printed < 4) && ctx.Err() == nil; {
		select {
		case <-ctx.Done():
		case <-tick.C:
			for _, s := range e.Stats() {
				fmt.Printf("%6d  %-10s %-10s %9d %8d %10d %10d\n",
					time.Since(start).Milliseconds(), s.Name, s.Health,
					s.Processed, s.Restarts, s.FaultDrops, e.FaultEntryDrops.Load())
			}
			printed++
		}
	}
	cancel()
	<-done

	fmt.Println("\nsupervision timeline (first 12 health events):")
	shown := 0
	for _, ev := range events.Events() {
		switch ev.Type {
		case "stage_fault", "stage_restart", "stage_health", "chain_failclosed":
			if shown < 12 {
				fmt.Printf("  %8.3fs  %-16s %v\n", ev.Time, ev.Type, ev.Fields)
				shown++
			}
		}
	}

	var midDrops uint64
	for _, s := range e.Stats() {
		if s.Name != "classify" { // entry-ring drops happen before acceptance
			midDrops += s.QueueDrops
		}
	}
	injected := e.Injected.Load()
	accounted := e.Delivered.Load() + e.OutputDrops.Load() + midDrops +
		e.NFDrops.Load() + e.FaultDrops.Load() + e.ShutdownDrops.Load()
	fmt.Printf("\ninjected=%d delivered=%d faultDrops=%d entryShed=%d shutdownDrops=%d\n",
		injected, e.Delivered.Load(), e.FaultDrops.Load(),
		e.FaultEntryDrops.Load(), e.ShutdownDrops.Load())
	fmt.Printf("conservation: injected=%d accounted=%d (%v)\n", injected, accounted, injected == accounted)
	fmt.Println("\nEvery crash cost only the packets in the dying worker's hands;")
	fmt.Println("the supervisor restarted the stage with backoff and the chain shed")
	fmt.Println("at its entry while the hop was down — the process never died.")
}
