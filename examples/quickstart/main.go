// Quickstart: build the paper's basic scenario — a three-NF service chain
// (Low/Med/High per-packet cost) sharing one CPU core under line-rate
// traffic — and compare the default kernel scheduler against full NFVnice.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"nfvnice"
)

func run(mode nfvnice.Mode) (tput, wasted float64) {
	p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedBatch, mode))

	// One shared core hosting three NFs of increasing cost: think
	// flow-monitor -> NAT -> DPI.
	core := p.AddCore()
	mon := p.AddNF("monitor", nfvnice.FixedCost(120), core)
	nat := p.AddNF("nat", nfvnice.FixedCost(270), core)
	dpi := p.AddNF("dpi", nfvnice.FixedCost(550), core)

	// Chain them and steer one UDP flow through at 10G line rate (64B).
	ch := p.AddChain("mon-nat-dpi", mon, nat, dpi)
	flow := nfvnice.UDPFlow(0, 64)
	p.MapFlow(flow, ch)
	p.AddCBR(flow, nfvnice.LineRate10G(64))

	// Warm up 100 ms, measure 500 ms.
	p.Run(nfvnice.Milliseconds(100))
	snap := p.TakeSnapshot()
	p.Run(nfvnice.Milliseconds(600))

	return float64(p.ChainDeliveredSince(snap, ch)) / 1e6,
		float64(p.TotalWastedSince(snap)) / 1e6
}

func main() {
	fmt.Println("3-NF chain (120/270/550 cycles) on one shared core, 14.88 Mpps offered")
	fmt.Println()
	for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
		tput, wasted := run(mode)
		fmt.Printf("%-8s  throughput %5.2f Mpps   wasted work %5.2f Mpps\n",
			mode, tput, wasted)
	}
	fmt.Println()
	fmt.Println("NFVnice's backpressure sheds excess load at the chain entry and its")
	fmt.Println("cgroup weights give each NF CPU proportional to arrival rate x cost,")
	fmt.Println("so the chain runs at its theoretical ~2.77 Mpps ceiling with ~zero")
	fmt.Println("packets dropped after processing.")
}
