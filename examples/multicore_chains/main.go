// Multicore chains: the paper's Figure 8/9 scenario. Two service chains
// share their first and last NFs across four dedicated cores; chain 2 runs
// through a CPU hog (4500 cycles/packet) that bottlenecks it. Without
// NFVnice, the shared NF1 wastes half its capacity processing chain-2
// packets that die at the hog's queue, halving chain 1's throughput too.
// With chain-granularity backpressure, chain 2 is shed at the entry point
// and chain 1 gets the shared capacity back.
//
// Run:
//
//	go run ./examples/multicore_chains
package main

import (
	"fmt"

	"nfvnice"
)

func run(mode nfvnice.Mode) {
	p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedNormal, mode))

	// Four NFs, each pinned to its own core (Fig 8 topology).
	nf1 := p.AddNF("classifier", nfvnice.FixedCost(270), p.AddCore())
	nf2 := p.AddNF("firewall", nfvnice.FixedCost(120), p.AddCore())
	nf3 := p.AddNF("dpi-hog", nfvnice.FixedCost(4500), p.AddCore())
	nf4 := p.AddNF("router", nfvnice.FixedCost(300), p.AddCore())

	chain1 := p.AddChain("chain1", nf1, nf2, nf4)
	chain2 := p.AddChain("chain2", nf1, nf3, nf4)

	f1, f2 := nfvnice.UDPFlow(0, 64), nfvnice.UDPFlow(1, 64)
	p.MapFlow(f1, chain1)
	p.MapFlow(f2, chain2)
	half := nfvnice.LineRate10G(64) / 2
	p.AddCBR(f1, half)
	p.AddCBR(f2, half)

	p.Run(nfvnice.Milliseconds(100))
	snap := p.TakeSnapshot()
	p.Run(nfvnice.Milliseconds(400))

	fmt.Printf("--- %s ---\n", mode)
	fmt.Printf("chain1 (via firewall): %5.2f Mpps\n", float64(p.ChainDeliveredSince(snap, chain1))/1e6)
	fmt.Printf("chain2 (via dpi-hog):  %5.2f Mpps (bottleneck capacity ~0.58)\n",
		float64(p.ChainDeliveredSince(snap, chain2))/1e6)
	m := p.NFMetricsSince(snap)
	cm := p.CoreMetricsSince(snap)
	for i, name := range []string{"classifier", "firewall", "dpi-hog", "router"} {
		fmt.Printf("  %-10s svc %6.2f Mpps  wasted %6.2f Mpps  cpu %5.1f%%\n",
			name, float64(m[i].ProcessedPps)/1e6, float64(m[i].WastedDropsPps)/1e6,
			cm[i].Utilization*100)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Two chains sharing entry/exit NFs over 4 cores; chain 2 bottlenecked")
	fmt.Println()
	run(nfvnice.ModeDefault)
	run(nfvnice.ModeNFVnice)
	fmt.Println("With NFVnice, chain-2 packets destined to die at the dpi-hog's queue")
	fmt.Println("are dropped before the classifier touches them; chain 1 roughly")
	fmt.Println("doubles while chain 2 still runs at its bottleneck rate.")
}
