// Dataplane live: the real (non-simulated) goroutine runtime. Two service
// chains of Go handler functions share the cooperative weighted scheduler;
// the rate-cost controller measures actual handler nanoseconds and
// re-weights every 10 ms, while watermark backpressure sheds an overloaded
// chain at its entry.
//
// Run:
//
//	go run ./examples/dataplane_live
package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"nfvnice/internal/dataplane"
)

// work simulates payload processing by hashing a buffer n times.
func work(n int) dataplane.Handler {
	buf := make([]byte, 256)
	return func(p *dataplane.Packet) {
		for i := 0; i < n; i++ {
			h := fnv.New64a()
			h.Write(buf)
			_ = h.Sum64()
		}
	}
}

func main() {
	e := dataplane.New(dataplane.DefaultConfig())

	light := e.AddStage("light-fw", 1024, work(5))
	heavy := e.AddStage("heavy-dpi", 1024, work(50))

	chLight, _ := e.AddChain(light)
	chHeavy, _ := e.AddChain(heavy)
	e.MapFlow(0, chLight)
	e.MapFlow(1, chHeavy)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	go e.Run(ctx)

	// Drain delivered packets.
	go func() {
		for range e.Output() {
		}
	}()

	// Offer equal load to both chains for 2 seconds.
	go func() {
		for ctx.Err() == nil {
			e.Inject(&dataplane.Packet{FlowID: 0, Size: 64})
			e.Inject(&dataplane.Packet{FlowID: 1, Size: 64})
			time.Sleep(20 * time.Microsecond)
		}
	}()

	fmt.Println("live dataplane: equal arrivals, 10x cost ratio, auto weights")
	fmt.Printf("%6s  %-10s %10s %8s %12s\n", "t(ms)", "stage", "processed", "weight", "est cost")
	start := time.Now()
	for t := 0; t < 4; t++ {
		time.Sleep(500 * time.Millisecond)
		for _, s := range e.Stats() {
			fmt.Printf("%6d  %-10s %10d %8d %12v\n",
				time.Since(start).Milliseconds(), s.Name, s.Processed, s.Weight, s.EstCost.Round(time.Nanosecond))
		}
	}
	fmt.Printf("\ndelivered=%d entryDrops=%d ringDrops=%d throttleEvents=%d\n",
		e.Delivered.Load(), e.EntryDrops.Load(), e.RingDrops.Load(), e.ThrottleEvents.Load())
	fmt.Println("\nThe controller weights the heavy stage up (~10x) so both chains")
	fmt.Println("drain at similar packet rates despite the cost imbalance.")
}
