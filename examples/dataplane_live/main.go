// Dataplane live: the real (non-simulated) goroutine runtime. Two service
// chains of Go handler functions share the cooperative weighted scheduler;
// the rate-cost controller measures actual handler nanoseconds and
// re-weights every 10 ms, while watermark backpressure sheds an overloaded
// chain at its entry.
//
// Run:
//
//	go run ./examples/dataplane_live
//	go run ./examples/dataplane_live -listen :9090   # scrape /metrics live
//	go run ./examples/dataplane_live -listen :9090 -sample 6 \
//	    -trace spans.json        # flight recorder: 1-in-64 packet spans
//
// With -listen set, point cmd/nfvtop at the same address for a live
// dashboard, and query /debug/decisions for the control plane's decision
// journal.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/obs"
	"nfvnice/internal/telemetry"
)

// work simulates payload processing by hashing a buffer n times.
func work(n int) dataplane.Handler {
	buf := make([]byte, 256)
	return func(p *dataplane.Packet) {
		for i := 0; i < n; i++ {
			h := fnv.New64a()
			h.Write(buf)
			_ = h.Sum64()
		}
	}
}

func main() {
	listen := flag.String("listen", "", "serve /metrics, /snapshot, /events and pprof on this address (e.g. :9090) and keep the pipeline running until interrupted")
	sample := flag.Int("sample", 0, "flight recorder: sample 1-in-2^N packets as spans (0 = off)")
	trace := flag.String("trace", "", "write sampled spans as a Chrome trace (chrome://tracing, Perfetto) to this file; requires -sample")
	flag.Parse()

	cfg := dataplane.DefaultConfig()
	cfg.TraceSampleShift = *sample
	e := dataplane.New(cfg)

	light := e.AddStage("light-fw", 1024, work(5))
	heavy := e.AddStage("heavy-dpi", 1024, work(50))

	chLight, _ := e.AddChain(light)
	chHeavy, _ := e.AddChain(heavy)
	e.MapFlow(0, chLight)
	e.MapFlow(1, chHeavy)

	// Telemetry: every stage counter/gauge is an atomic the scraper reads
	// while the pipeline runs.
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(0)
	e.RegisterMetrics(reg)
	e.SetEventLog(events)

	// Flight recorder: stream sampled packet spans into a Chrome trace.
	if *trace != "" {
		if *sample == 0 {
			fmt.Fprintln(os.Stderr, "dataplane_live: -trace requires -sample > 0")
			os.Exit(1)
		}
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dataplane_live:", err)
			os.Exit(1)
		}
		cw := obs.NewChromeWriter(f).SetUnit(obs.UnitNanos)
		e.SetSpanSink(e.SpanTraceSink(cw))
		defer func() {
			cw.Close()
			f.Close()
			fmt.Printf("flight recorder: %d trace events -> %s (open in chrome://tracing or Perfetto)\n", cw.Len(), *trace)
		}()
	}

	var ctx context.Context
	var cancel context.CancelFunc
	if *listen != "" {
		mux := telemetry.NewMux(reg, events)
		// A failing probe carries the recent control-plane decisions that
		// explain it; /debug/decisions serves the full queryable journal.
		telemetry.AddHealthzDetail(mux, e.HealthSnapshot, func() any {
			if j := e.Decisions(); j != nil {
				return j.Tail(16)
			}
			return nil
		})
		e.AddDebugEndpoints(mux)
		srv, err := telemetry.StartServerMux(*listen, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dataplane_live:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /snapshot, /events, /healthz, /debug/pprof) — Ctrl-C to exit\n", srv.Addr)
		ctx, cancel = signal.NotifyContext(context.Background(), os.Interrupt)
	} else {
		ctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
	}
	defer cancel()
	go e.Run(ctx)

	// Deliver in batches on the mover goroutine and recycle descriptors so
	// the steady state never allocates.
	sinkCache := e.NewPacketCache(256)
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
	})

	// Offer equal load to both chains until the context ends, on the
	// batch-amortized hot path: descriptors come from a per-goroutine
	// freelist cache and InjectBatch publishes each same-flow run with one
	// ring reservation.
	go func() {
		cache := e.NewPacketCache(256)
		batch := make([]*dataplane.Packet, 8)
		// Flows are assigned by a seeded PRNG rather than a fixed
		// flow-to-batch-position layout: the flight recorder samples every
		// 2^N-th packet, and any periodic layout aliases with that stride
		// (one flow hogging every sample).
		rng := rand.New(rand.NewSource(1))
		for ctx.Err() == nil {
			for i := range batch {
				p := cache.Get()
				p.FlowID = rng.Intn(2)
				p.Size = 64
				batch[i] = p
			}
			e.InjectBatch(batch)
			time.Sleep(80 * time.Microsecond)
		}
	}()

	fmt.Println("live dataplane: equal arrivals, 10x cost ratio, auto weights")
	fmt.Printf("%6s  %-10s %10s %8s %12s %10s %8s\n", "t(ms)", "stage", "processed", "weight", "est cost", "drops", "wasted")
	start := time.Now()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	printed := 0
	for (*listen != "" || printed < 4) && ctx.Err() == nil {
		select {
		case <-ctx.Done():
		case <-tick.C:
			for _, s := range e.Stats() {
				fmt.Printf("%6d  %-10s %10d %8d %12v %10d %8d\n",
					time.Since(start).Milliseconds(), s.Name, s.Processed, s.Weight,
					s.EstCost.Round(time.Nanosecond), s.QueueDrops, s.Wasted)
			}
			printed++
		}
	}
	fmt.Printf("\ninjected=%d delivered=%d entryDrops=%d ringDrops=%d outputDrops=%d throttleEvents=%d events=%d(dropped %d)\n",
		e.Injected.Load(), e.Delivered.Load(), e.EntryDrops.Load(), e.RingDrops.Load(),
		e.OutputDrops.Load(), e.ThrottleEvents.Load(), events.Total(), events.Dropped())
	if *sample > 0 {
		fmt.Printf("spans: %+v\n", e.SpanStats())
	}
	fmt.Println("\nThe controller weights the heavy stage up (~10x) so both chains")
	fmt.Println("drain at similar packet rates despite the cost imbalance.")
}
