// Dataplane live: the real (non-simulated) goroutine runtime. Two service
// chains of Go handler functions share the cooperative weighted scheduler;
// the rate-cost controller measures actual handler nanoseconds and
// re-weights every 10 ms, while watermark backpressure sheds an overloaded
// chain at its entry.
//
// Run:
//
//	go run ./examples/dataplane_live
//	go run ./examples/dataplane_live -listen :9090   # scrape /metrics live
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"os/signal"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/telemetry"
)

// work simulates payload processing by hashing a buffer n times.
func work(n int) dataplane.Handler {
	buf := make([]byte, 256)
	return func(p *dataplane.Packet) {
		for i := 0; i < n; i++ {
			h := fnv.New64a()
			h.Write(buf)
			_ = h.Sum64()
		}
	}
}

func main() {
	listen := flag.String("listen", "", "serve /metrics, /snapshot, /events and pprof on this address (e.g. :9090) and keep the pipeline running until interrupted")
	flag.Parse()

	e := dataplane.New(dataplane.DefaultConfig())

	light := e.AddStage("light-fw", 1024, work(5))
	heavy := e.AddStage("heavy-dpi", 1024, work(50))

	chLight, _ := e.AddChain(light)
	chHeavy, _ := e.AddChain(heavy)
	e.MapFlow(0, chLight)
	e.MapFlow(1, chHeavy)

	// Telemetry: every stage counter/gauge is an atomic the scraper reads
	// while the pipeline runs.
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(0)
	e.RegisterMetrics(reg)
	e.SetEventLog(events)

	var ctx context.Context
	var cancel context.CancelFunc
	if *listen != "" {
		mux := telemetry.NewMux(reg, events)
		telemetry.AddHealthz(mux, e.HealthSnapshot)
		srv, err := telemetry.StartServerMux(*listen, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dataplane_live:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /snapshot, /events, /healthz, /debug/pprof) — Ctrl-C to exit\n", srv.Addr)
		ctx, cancel = signal.NotifyContext(context.Background(), os.Interrupt)
	} else {
		ctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
	}
	defer cancel()
	go e.Run(ctx)

	// Deliver in batches on the mover goroutine and recycle descriptors so
	// the steady state never allocates.
	sinkCache := e.NewPacketCache(256)
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
	})

	// Offer equal load to both chains until the context ends, on the
	// batch-amortized hot path: descriptors come from a per-goroutine
	// freelist cache and InjectBatch publishes each same-flow run with one
	// ring reservation.
	go func() {
		cache := e.NewPacketCache(256)
		batch := make([]*dataplane.Packet, 8)
		for ctx.Err() == nil {
			for i := range batch {
				p := cache.Get()
				p.FlowID = i * 2 / len(batch) // first half flow 0, second half flow 1
				p.Size = 64
				batch[i] = p
			}
			e.InjectBatch(batch)
			time.Sleep(80 * time.Microsecond)
		}
	}()

	fmt.Println("live dataplane: equal arrivals, 10x cost ratio, auto weights")
	fmt.Printf("%6s  %-10s %10s %8s %12s %10s %8s\n", "t(ms)", "stage", "processed", "weight", "est cost", "drops", "wasted")
	start := time.Now()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	printed := 0
	for (*listen != "" || printed < 4) && ctx.Err() == nil {
		select {
		case <-ctx.Done():
		case <-tick.C:
			for _, s := range e.Stats() {
				fmt.Printf("%6d  %-10s %10d %8d %12v %10d %8d\n",
					time.Since(start).Milliseconds(), s.Name, s.Processed, s.Weight,
					s.EstCost.Round(time.Nanosecond), s.QueueDrops, s.Wasted)
			}
			printed++
		}
	}
	fmt.Printf("\ninjected=%d delivered=%d entryDrops=%d ringDrops=%d outputDrops=%d throttleEvents=%d events=%d(dropped %d)\n",
		e.Injected.Load(), e.Delivered.Load(), e.EntryDrops.Load(), e.RingDrops.Load(),
		e.OutputDrops.Load(), e.ThrottleEvents.Load(), events.Total(), events.Dropped())
	fmt.Println("\nThe controller weights the heavy stage up (~10x) so both chains")
	fmt.Println("drain at similar packet rates despite the cost imbalance.")
}
