// I/O logging: the paper's Figure 14 scenario. A monitoring NF logs one of
// two flows to disk. With blocking writes every logged packet stalls the NF
// (and the co-resident flow); with libnf's asynchronous double-buffered
// writer the NF overlaps disk flushes with packet processing and throughput
// recovers by an order of magnitude.
//
// Run:
//
//	go run ./examples/io_logging
package main

import (
	"fmt"

	"nfvnice"
)

func run(async bool, size int) float64 {
	mode := nfvnice.ModeDefault
	if async {
		mode = nfvnice.ModeNFVnice
	}
	p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedBatch, mode))
	core := p.AddCore()
	mon := p.AddNF("monitor", nfvnice.ByteCost(200, 1), core)
	fwd := p.AddNF("fwd", nfvnice.FixedCost(150), core)
	ch := p.AddChain("mon-fwd", mon, fwd)

	logged := map[int]bool{1: true} // only flow 1 is logged
	if async {
		p.AttachAsyncLogger(mon, logged)
	} else {
		p.AttachSyncLogger(mon, logged)
	}

	for i := 0; i < 2; i++ {
		f := nfvnice.UDPFlow(i, size)
		p.MapFlow(f, ch)
		p.AddCBR(f, nfvnice.LineRate10G(size)/2)
	}
	p.Run(nfvnice.Milliseconds(100))
	snap := p.TakeSnapshot()
	p.Run(nfvnice.Milliseconds(400))
	return float64(p.ChainDeliveredSince(snap, ch)) / 1e6
}

func main() {
	fmt.Println("Two flows through a monitor NF; flow 1 is logged to disk (500 MB/s)")
	fmt.Println()
	fmt.Printf("%8s  %14s  %14s  %8s\n", "pktsize", "blocking Mpps", "async Mpps", "gain")
	for _, size := range []int{64, 128, 256, 512, 1024} {
		sync := run(false, size)
		async := run(true, size)
		fmt.Printf("%7dB  %14.3f  %14.3f  %7.1fx\n", size, sync, async, async/sync)
	}
	fmt.Println()
	fmt.Println("Double buffering keeps the NF processing while a full buffer flushes;")
	fmt.Println("the NF only yields when both buffers are in flight.")
}
