// Crosshost live: a service chain split across two processes joined by the
// remote-stage transport. The downstream process terminates the chain and
// listens for frames; the upstream process runs a local stage plus a remote
// uplink stage that ships every packet over TCP under a bounded credit
// window, with reconnect/backoff and exactly-once delivery accounting.
//
// Run the pair (two shells, or background the first):
//
//	go run ./examples/crosshost_live -role down -listen 127.0.0.1:7007
//	go run ./examples/crosshost_live -role up -peer 127.0.0.1:7007 \
//	    -rate 50000 -duration 3s -kill 500 -seed 42
//
// -kill N arms the seeded wire-fault injector on the upstream dialer: the
// connection is killed every N writes and the link must heal under backoff
// and retransmit, without losing a single packet (-seed replays the exact
// schedule). Both sides finish by printing their delivered count and a
// "conservation ok" line once their ledger closes exactly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/faults"
	"nfvnice/internal/remote"
)

// reconcile sums every accounted fate of an accepted packet, including the
// cross-host transport classes. Entry-stage ring drops are excluded: they
// happen before acceptance.
func reconcile(e *dataplane.Engine, entry map[string]bool) (uint64, uint64) {
	var midDrops uint64
	for _, s := range e.Stats() {
		if !entry[s.Name] {
			midDrops += s.QueueDrops
		}
	}
	acc := e.Delivered.Load() + e.OutputDrops.Load() + midDrops +
		e.NFDrops.Load() + e.FaultDrops.Load() + e.ShutdownDrops.Load() +
		e.RemoteDelivered.Load() + e.RemoteDrops.Load()
	return e.Injected.Load(), acc
}

func verdict(role string, e *dataplane.Engine, entry map[string]bool) int {
	inj, acc := reconcile(e, entry)
	if inj != acc {
		fmt.Printf("crosshost %s: conservation ERROR (injected=%d accounted=%d)\n", role, inj, acc)
		return 1
	}
	fmt.Printf("crosshost %s: conservation ok (injected=%d accounted=%d)\n", role, inj, acc)
	return 0
}

func runDown(ctx context.Context, listen string, dur time.Duration) int {
	e := dataplane.New(dataplane.DefaultConfig())
	sink := e.AddStage("sink", 1024, func(p *dataplane.Packet) {})
	ch, err := e.AddChain(sink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crosshost down:", err)
		return 1
	}
	e.MapFlow(1, ch)
	e.SetSink(e.PutPacketBatch)

	ectx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ectx); close(done) }()

	srv, err := remote.Listen(listen, remote.ServerConfig{
		OnBatch: e.RemoteIngress(),
		ECN:     e.CongestionSignal(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crosshost down:", err)
		cancel()
		<-done
		return 1
	}
	fmt.Printf("crosshost down: listening on %s for %v\n", srv.Addr(), dur)

	// Serve for the window (upstream's duration plus its drain), or until
	// interrupted.
	select {
	case <-time.After(dur):
	case <-ctx.Done():
	}
	srv.Close()
	cancel()
	<-done

	st := srv.Stats()
	fmt.Printf("crosshost down: delivered=%d received=%d dups_deduped=%d conns=%d\n",
		e.Delivered.Load(), st.Received, st.Dups, st.Conns)
	return verdict("down", e, map[string]bool{"sink": true})
}

func runUp(ctx context.Context, peer string, rate int, dur time.Duration, kill int, seed int64) int {
	rcfg := dataplane.RemoteConfig{
		Addr:       peer,
		Window:     32,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 250 * time.Millisecond,
		MaxDials:   -1, // outages heal; keep dialing until we are done
		Seed:       seed,
	}
	var wire *faults.WireInjector
	if kill > 0 {
		wire = faults.NewWire(uint64(seed), faults.ConnDropOn(faults.EveryNth(kill)))
		rcfg.Dial = wire.Dial(nil)
	}

	e := dataplane.New(dataplane.DefaultConfig())
	stamp := e.AddStage("stamp", 1024, func(p *dataplane.Packet) {})
	up := e.AddRemoteStage("uplink", 1024, rcfg)
	ch, err := e.AddChain(stamp, up)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crosshost up:", err)
		return 1
	}
	e.MapFlow(1, ch)

	ectx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ectx); close(done) }()

	// Pace the source: -rate packets/s in 1ms slices, with the in-flight
	// population capped so a link outage backs pressure up to the injector
	// (the transport's send queue absorbs it) instead of overflowing the
	// uplink ring.
	fmt.Printf("crosshost up: %d pps to %s for %v (kill every %d writes, seed %d)\n",
		rate, peer, dur, kill, seed)
	deadline := time.Now().Add(dur)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	var sent uint64
	for time.Now().Before(deadline) && ctx.Err() == nil {
		<-tick.C
		quota := rate / 1000
		for i := 0; i < quota; i++ {
			if sent-e.RemoteDelivered.Load() >= 256 {
				break // transport saturated or mid-outage: shed the slice
			}
			p := e.GetPacket()
			p.FlowID = 1
			p.Size = 64
			if e.Inject(p) {
				sent++
			} else {
				e.PutPacket(p)
			}
		}
	}

	// Drain: wait for every accepted packet's fate before shutting down.
	settle := time.Now().Add(10 * time.Second)
	for time.Now().Before(settle) {
		rs := e.RemoteStats()[0]
		inj, acc := reconcile(e, map[string]bool{"stamp": true})
		if rs.Queued == 0 && rs.Inflight == 0 && inj == acc {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	rs := e.RemoteStats()[0]
	var kills uint64
	if wire != nil {
		kills = wire.Stats().Drops
	}
	fmt.Printf("crosshost up: delivered=%d remote_drops=%d kills=%d reconnects=%d retries=%d window_stalls=%d\n",
		e.RemoteDelivered.Load(), e.RemoteDrops.Load(), kills, rs.Reconnects,
		rs.Retries, rs.WindowStalls)
	return verdict("up", e, map[string]bool{"stamp": true})
}

func main() {
	role := flag.String("role", "", "up (inject and ship over the uplink) or down (listen and terminate)")
	listen := flag.String("listen", "127.0.0.1:7007", "down: frame listener address")
	peer := flag.String("peer", "127.0.0.1:7007", "up: downstream listener address")
	rate := flag.Int("rate", 50000, "up: injection rate, packets/s")
	dur := flag.Duration("duration", 3*time.Second, "up: injection window; down: serve window")
	kill := flag.Int("kill", 0, "up: kill the connection every N writes (0 = no wire faults)")
	seed := flag.Int64("seed", 42, "seed for the wire-fault schedule and reconnect jitter")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *role {
	case "down":
		os.Exit(runDown(ctx, *listen, *dur))
	case "up":
		os.Exit(runUp(ctx, *peer, *rate, *dur, *kill, *seed))
	default:
		fmt.Fprintln(os.Stderr, "crosshost: -role must be up or down")
		os.Exit(2)
	}
}
