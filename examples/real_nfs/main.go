// Real NFs: a service chain of actual packet processors — monitor →
// firewall → NAT → router → DPI — running real Ethernet/IPv4/UDP frames
// through the concurrent dataplane, with NFVnice-style auto weights and
// backpressure. This is the paper's motivating middlebox chain as working
// code: headers get parsed, checksums get rewritten incrementally, payloads
// get scanned.
//
// Frames ride the zero-copy arena path: Config.FrameSize preallocates one
// frame slot per descriptor, ingress copies wire bytes into the slot once
// (the NIC-DMA analogue), and every NF mutates the slot in place. An NF
// Drop verdict recycles the descriptor mid-chain and shows up in the
// conservation ledger's NFDrops class, not at the output.
//
// Run:
//
//	go run ./examples/real_nfs
package main

import (
	"context"
	"fmt"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/nfs"
	"nfvnice/internal/proto"
)

func main() {
	var (
		macSrc = proto.MAC{2, 0, 0, 0, 0, 1}
		macGW  = proto.MAC{2, 0, 0, 0, 0, 2}
		inside = proto.Addr4(10, 0, 0, 42)
		dnsSrv = proto.Addr4(8, 8, 8, 8)
		webSrv = proto.Addr4(93, 184, 216, 34)
		natIP  = proto.Addr4(198, 51, 100, 1)
	)

	mon := nfs.NewMonitor()
	fw := nfs.NewFirewall(nfs.Drop)
	fw.AddRule(nfs.FirewallRule{DstPortLo: 53, Proto: proto.IPProtoUDP, Action: nfs.Accept})
	fw.AddRule(nfs.FirewallRule{DstPortLo: 80, DstPortHi: 443, Action: nfs.Accept})
	nat := nfs.NewNAT(natIP, func(a proto.IPv4Addr) bool { return uint32(a)>>24 == 10 })
	rt := nfs.NewRouter()
	rt.AddRoute(proto.Addr4(0, 0, 0, 0), 0, 1)
	rt.AddRoute(proto.Addr4(8, 8, 8, 0), 24, 2)
	dpi := nfs.NewDPI([][]byte{[]byte("exploit"), []byte("\x90\x90\x90\x90")}, true)

	cfg := dataplane.DefaultConfig()
	cfg.FrameSize = 256
	e := dataplane.New(cfg)
	stages := []struct {
		name string
		p    nfs.Processor
	}{
		{"monitor", mon}, {"firewall", fw}, {"nat", nat}, {"router", rt}, {"dpi", dpi},
	}
	ids := make([]int, len(stages))
	for i, s := range stages {
		ids[i] = e.AddBatchStage(s.name, 1024, nfs.AdaptBatch(s.p))
	}
	ch, err := e.AddChain(ids...)
	if err != nil {
		panic(err)
	}
	e.MapFlow(0, ch)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	go e.Run(ctx)

	// Frames an NF drops mid-chain are recycled there and charged to the
	// ledger; only survivors reach the output.
	survived := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case p := <-e.Output():
				survived++
				e.PutPacket(p)
			case <-ctx.Done():
				return
			}
		}
	}()

	// Inject a realistic mix: DNS queries (allowed), HTTP (allowed, one
	// carrying an exploit string the DPI kills), and SSH (firewalled).
	// Each frame is copied once into an arena slot at ingress.
	injected := 0
	inject := func(frame []byte) {
		p := e.GetPacket()
		buf := p.Frame[:cap(p.Frame)]
		n := copy(buf, frame)
		p.Frame = buf[:n]
		p.Size = n
		p.FlowID = 0
		for !e.Inject(p) {
			time.Sleep(10 * time.Microsecond)
		}
		injected++
	}
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		inject(proto.BuildUDP(macSrc, macGW, inside, dnsSrv, uint16(30000+i%1000), 53, []byte("dns query")))
		inject(proto.BuildTCP(macSrc, macGW, inside, webSrv, uint16(40000+i%1000), 80, 1, 1, proto.TCPAck, []byte("GET / HTTP/1.1")))
		if i%100 == 0 {
			inject(proto.BuildTCP(macSrc, macGW, inside, webSrv, 45555, 80, 1, 1, proto.TCPAck, []byte("run exploit now")))
		}
		inject(proto.BuildTCP(macSrc, macGW, inside, webSrv, uint16(50000+i%1000), 22, 1, 1, proto.TCPSyn, nil))
	}
	time.Sleep(500 * time.Millisecond)
	cancel()
	<-done

	l := e.LedgerSnapshot()
	fmt.Println("chain: monitor → firewall → nat → router → dpi")
	fmt.Printf("injected %d frames: %d survived, %d dropped mid-chain (ledger residual %d)\n\n",
		injected, survived, l.NFDrops, l.Residual())
	fmt.Printf("monitor:  %d flows tracked, top flow %d packets\n", mon.Flows(), mon.Top(1)[0].Packets)
	fmt.Printf("firewall: %d accepted, %d dropped (ssh blocked)\n", fw.Accepted, fw.Dropped)
	fmt.Printf("nat:      %d translations, %d bindings (external %v)\n", nat.Translated, nat.Bindings(), natIP)
	fmt.Printf("router:   %d routed, last next-hop %d\n", rt.Routed, rt.LastNextHop)
	fmt.Printf("dpi:      %d payloads scanned, %d matches, %d dropped\n", dpi.Scanned, dpi.Matches, dpi.Dropped)
	fmt.Println()
	for _, s := range e.Stats() {
		fmt.Printf("stage %-9s processed=%6d weight=%5d estCost=%v\n", s.Name, s.Processed, s.Weight, s.EstCost)
	}
}
