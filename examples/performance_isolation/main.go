// Performance isolation: the paper's Figure 13 scenario. One responsive TCP
// flow shares two NFs with ten non-responsive UDP flows whose chain
// continues into a bottleneck NF on another core. Without NFVnice, the UDP
// packets eat the shared core and die at the bottleneck queue, collapsing
// TCP from gigabits to megabits. With per-chain backpressure, the UDP load
// is shed at the entry point, TCP keeps most of its throughput, and the UDP
// aggregate still achieves its full bottleneck rate.
//
// Run:
//
//	go run ./examples/performance_isolation
package main

import (
	"fmt"

	"nfvnice"
	"nfvnice/internal/traffic"
)

func run(mode nfvnice.Mode) {
	p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedNormal, mode))
	shared := p.AddCore()
	nf1 := p.AddNF("fw", nfvnice.FixedCost(480), shared)
	nf2 := p.AddNF("nat", nfvnice.FixedCost(1080), shared)
	nf3 := p.AddNF("logger", nfvnice.FixedCost(19000), p.AddCore()) // ~280 Mbps at 256B

	tcpChain := p.AddChain("tcp", nf1, nf2)
	udpChain := p.AddChain("udp", nf1, nf2, nf3)

	tf := nfvnice.TCPFlow(0, 1470)
	p.MapFlow(tf, tcpChain)
	tp := traffic.DefaultTCPParams()
	tp.MaxCwnd = 64
	tcp := p.AddTCP(tf, tp)

	var gens []*traffic.CBR
	for i := 0; i < 10; i++ {
		f := nfvnice.UDPFlow(100+i, 256)
		p.MapFlow(f, udpChain)
		g := p.AddCBR(f, 200_000)
		g.Stop()
		gens = append(gens, g)
	}
	p.Start()
	tcp.Start()

	fmt.Printf("--- %s ---\n", mode)
	fmt.Printf("%4s  %10s  %10s\n", "sec", "TCP Mbps", "UDP Mbps")
	snap := p.TakeSnapshot()
	for s := 1; s <= 9; s++ {
		if s == 3 {
			for _, g := range gens {
				g.Restart()
			}
		}
		if s == 8 {
			for _, g := range gens {
				g.Stop()
			}
		}
		p.Run(nfvnice.Seconds(float64(s)))
		fmt.Printf("%3ds  %10.1f  %10.1f\n", s,
			p.ChainDeliveredMbpsSince(snap, tcpChain),
			p.ChainDeliveredMbpsSince(snap, udpChain))
		snap = p.TakeSnapshot()
	}
	fmt.Println()
}

func main() {
	fmt.Println("TCP vs 10 UDP flows; UDP active seconds 3-7 (bottlenecked at ~280 Mbps)")
	fmt.Println()
	run(nfvnice.ModeDefault)
	run(nfvnice.ModeNFVnice)
}
