// Capture pipeline: the full stack in one program. A two-core goroutine
// dataplane runs real NFs (monitor on core 0, DPI on core 1) over real
// frames; every frame that survives the chain is mirrored through a tap
// into a Wireshark-readable pcap file, which is then read back and
// summarized.
//
// Run:
//
//	go run ./examples/capture_pipeline
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/nfs"
	"nfvnice/internal/pcap"
	"nfvnice/internal/proto"
)

func main() {
	const out = "capture.pcap"

	mon := nfs.NewMonitor()
	dpi := nfs.NewDPI([][]byte{[]byte("exfiltrate")}, true)

	e := dataplane.New(dataplane.Config{Cores: 2, RingSize: 1024, FrameSize: 128})
	s1 := e.AddBatchStageOn("monitor", 1024, 0, nfs.AdaptBatch(mon))
	s2 := e.AddBatchStageOn("dpi", 1024, 1, nfs.AdaptBatch(dpi))
	ch, err := e.AddChain(s1, s2)
	if err != nil {
		panic(err)
	}
	e.MapFlow(0, ch)

	f, err := os.Create(out)
	if err != nil {
		panic(err)
	}
	w := pcap.NewWriter(f, 0)
	e.Tap(func(p *dataplane.Packet) {
		// Frames the DPI killed mid-chain were recycled at the DPI stage
		// (Packet.Drop) and never reach the tap; survivors carry their
		// arena frame.
		if len(p.Frame) == 0 {
			return
		}
		w.WritePacket(time.Now(), p.Frame)
	})

	ctx, cancel := context.WithCancel(context.Background())
	go e.Run(ctx)
	go func() {
		for p := range e.Output() {
			e.PutPacket(p) // recycle the descriptor and its arena frame
		}
	}()

	// Offer a mix of benign and malicious traffic.
	macA := proto.MAC{2, 0, 0, 0, 0, 1}
	macB := proto.MAC{2, 0, 0, 0, 0, 2}
	src := proto.Addr4(10, 0, 0, 1)
	dst := proto.Addr4(10, 9, 9, 9)
	const total = 2000
	sent := 0
	for i := 0; sent < total; i++ {
		payload := []byte("regular business traffic")
		if i%50 == 0 {
			payload = []byte("attempt to exfiltrate secrets")
		}
		frame := proto.BuildUDP(macA, macB, src, dst, uint16(4000+i%100), 9, payload)
		p := e.GetPacket()
		buf := p.Frame[:cap(p.Frame)]
		n := copy(buf, frame)
		p.Frame = buf[:n]
		p.Size = n
		p.FlowID = 0
		if e.Inject(p) {
			sent++
		} else {
			e.PutPacket(p)
			time.Sleep(50 * time.Microsecond)
		}
	}
	time.Sleep(300 * time.Millisecond)
	cancel()
	w.Flush()
	f.Close()

	// Read the capture back.
	rf, err := os.Open(out)
	if err != nil {
		panic(err)
	}
	pkts, err := pcap.ReadAll(rf)
	rf.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("injected %d frames across 2 cores (monitor@0 → dpi@1)\n", sent)
	fmt.Printf("monitor tracked %d flows; dpi dropped %d malicious frames\n", mon.Flows(), dpi.Dropped)
	fmt.Printf("tap captured %d surviving frames to %s (Wireshark-readable)\n", len(pkts), out)
	if len(pkts) > 0 {
		fr, _ := proto.Decode(pkts[0].Data)
		fmt.Printf("first captured frame: %v:%d -> %v:%d, %d bytes\n",
			fr.IP.Src, fr.UDP.SrcPort, fr.IP.Dst, fr.UDP.DstPort, pkts[0].Orig)
	}
	os.Remove(out)
}
