package nfvnice

import (
	"strings"
	"testing"
)

const goodSpec = `{
  "scheduler": "BATCH",
  "mode": "nfvnice",
  "cores": 1,
  "nfs": [
    {"name": "low", "core": 0, "cost": 120},
    {"name": "med", "core": 0, "cost": 270},
    {"name": "high", "core": 0, "cost": 550}
  ],
  "chains": [{"name": "c", "nfs": ["low", "med", "high"]}],
  "flows": [{"chain": "c", "lineRate": true}]
}`

func TestSpecBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("platform run")
	}
	s, err := LoadSpec(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	p, chains, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 || p.NFCount() != 3 {
		t.Fatalf("chains=%v nfs=%d", chains, p.NFCount())
	}
	p.Run(Milliseconds(80))
	snap := p.TakeSnapshot()
	p.Run(Milliseconds(160))
	tput := p.ChainDeliveredSince(snap, chains[0])
	if tput.Mpps() < 2.0 {
		t.Fatalf("spec-built platform delivered %.3f Mpps", tput.Mpps())
	}
}

func TestSpecCostModels(t *testing.T) {
	js := `{"cores":1,"nfs":[
	  {"name":"a","core":0,"cost":100},
	  {"name":"b","core":0,"cost":100,"cost2":200,"costModel":"uniform"},
	  {"name":"c","core":0,"cost":100,"cost2":2,"costModel":"perbyte","priority":2}
	],"chains":[{"name":"x","nfs":["a","b","c"]}],
	 "flows":[{"chain":"x","ratePps":1000}]}`
	s, err := LoadSpec(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		js   string
	}{
		{"unknown field", `{"cores":1,"bogus":true,"nfs":[{"name":"a","core":0,"cost":1}]}`},
		{"no cores", `{"nfs":[{"name":"a","core":0,"cost":1}]}`},
		{"no nfs", `{"cores":1,"nfs":[]}`},
		{"bad core", `{"cores":1,"nfs":[{"name":"a","core":5,"cost":1}]}`},
		{"no cost", `{"cores":1,"nfs":[{"name":"a","core":0}]}`},
		{"dup nf", `{"cores":1,"nfs":[{"name":"a","core":0,"cost":1},{"name":"a","core":0,"cost":1}]}`},
		{"nameless nf", `{"cores":1,"nfs":[{"core":0,"cost":1}]}`},
		{"unknown nf in chain", `{"cores":1,"nfs":[{"name":"a","core":0,"cost":1}],"chains":[{"name":"c","nfs":["zz"]}]}`},
		{"empty chain", `{"cores":1,"nfs":[{"name":"a","core":0,"cost":1}],"chains":[{"name":"c","nfs":[]}]}`},
		{"unknown chain in flow", `{"cores":1,"nfs":[{"name":"a","core":0,"cost":1}],"chains":[{"name":"c","nfs":["a"]}],"flows":[{"chain":"zz","ratePps":1}]}`},
		{"rateless flow", `{"cores":1,"nfs":[{"name":"a","core":0,"cost":1}],"chains":[{"name":"c","nfs":["a"]}],"flows":[{"chain":"c"}]}`},
		{"bad scheduler", `{"scheduler":"FIFO","cores":1,"nfs":[{"name":"a","core":0,"cost":1}]}`},
		{"bad mode", `{"mode":"turbo","cores":1,"nfs":[{"name":"a","core":0,"cost":1}]}`},
		{"bad uniform", `{"cores":1,"nfs":[{"name":"a","core":0,"cost":100,"cost2":50,"costModel":"uniform"}]}`},
		{"bad cost model", `{"cores":1,"nfs":[{"name":"a","core":0,"cost":1,"costModel":"quadratic"}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := LoadSpec(strings.NewReader(c.js))
			if err != nil {
				return // rejected at decode time: fine
			}
			if _, _, err := s.Build(); err == nil {
				t.Fatalf("invalid spec accepted: %s", c.js)
			}
		})
	}
}

func TestSpecSchedulerAndModeNames(t *testing.T) {
	for _, sched := range []string{"", "NORMAL", "batch", "RR1", "rr100ms"} {
		js := `{"scheduler":"` + sched + `","cores":1,"nfs":[{"name":"a","core":0,"cost":1}]}`
		s, err := LoadSpec(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Build(); err != nil {
			t.Fatalf("scheduler %q rejected: %v", sched, err)
		}
	}
	for _, mode := range []string{"", "default", "cgroups", "bkpr"} {
		js := `{"mode":"` + mode + `","cores":1,"nfs":[{"name":"a","core":0,"cost":1}]}`
		s, _ := LoadSpec(strings.NewReader(js))
		if _, _, err := s.Build(); err != nil {
			t.Fatalf("mode %q rejected: %v", mode, err)
		}
	}
}
