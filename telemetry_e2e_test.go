package nfvnice

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"nfvnice/internal/obs"
	"nfvnice/internal/telemetry"
)

// TestTelemetryEndToEnd is the acceptance test for the unified observability
// layer: ONE simulator run simultaneously produces a valid Prometheus text
// dump, a recorder CSV time series, and a Perfetto-loadable Chrome trace,
// all fed from the same instrumentation points.
func TestTelemetryEndToEnd(t *testing.T) {
	p, ch := buildSmallChain()
	tel := p.EnableTelemetry()

	var traceBuf bytes.Buffer
	cw := obs.NewChromeWriter(&traceBuf)
	tel.AttachTrace(cw)
	rec := tel.StartRecorder(Milliseconds(5), 0)

	w := p.RunWindow(Milliseconds(20), Milliseconds(80))
	if w.ChainRate(ch) <= 0 {
		t.Fatal("run delivered nothing")
	}

	// Output 1: Prometheus text exposition, parsed back.
	var prom bytes.Buffer
	if err := telemetry.WritePrometheus(&prom, tel.Registry); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	vals, err := telemetry.ParseText(strings.NewReader(prom.String()))
	if err != nil {
		t.Fatalf("Prometheus dump does not parse: %v", err)
	}
	for _, key := range []string{
		`nfvnice_nf_processed_total{nf="a",id="0"}`,
		`nfvnice_nf_processed_total{nf="b",id="1"}`,
		`nfvnice_nf_wasted_total{nf="a",id="0"}`,
		`nfvnice_nf_queue_drops_total{nf="a",id="0"}`,
		`nfvnice_nf_queue_depth{nf="a",id="0"}`,
		`nfvnice_chain_delivered_total{chain="ab",id="0"}`,
		"nfvnice_latency_cycles_count",
		"nfvnice_sim_seconds",
	} {
		if _, ok := vals[key]; !ok {
			t.Errorf("Prometheus dump missing %s", key)
		}
	}
	if vals[`nfvnice_nf_processed_total{nf="a",id="0"}`] == 0 {
		t.Error("nf a processed_total = 0")
	}
	if vals[`nfvnice_chain_delivered_total{chain="ab",id="0"}`] == 0 {
		t.Error("chain delivered_total = 0")
	}
	if vals["nfvnice_sim_seconds"] <= 0 {
		t.Error("sim_seconds not advanced")
	}
	// The controller ran in NFVnice mode: cpu.shares gauges must be present.
	if vals[`nfvnice_nf_cpu_shares{nf="a",id="0"}`] <= 0 {
		t.Error("cpu_shares gauge missing or zero")
	}

	// Output 2: recorder CSV time series from the same registry.
	if rec.Len() < 10 {
		t.Fatalf("recorder took %d samples over 100 ms at 5 ms period", rec.Len())
	}
	var csvBuf bytes.Buffer
	if err := rec.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(csvBuf.String())).ReadAll()
	if err != nil {
		t.Fatalf("recorder CSV invalid: %v", err)
	}
	if len(rows) != rec.Len()+1 {
		t.Errorf("CSV rows = %d, want %d", len(rows), rec.Len()+1)
	}
	procCol := `nfvnice_nf_processed_total{nf="a",id="0"}`
	times, series, ok := rec.Column(procCol)
	if !ok {
		t.Fatalf("recorder missing column %s (have %v)", procCol, rec.Columns()[:5])
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Errorf("counter column not monotonic at sample %d: %v -> %v", i, series[i-1], series[i])
		}
		if times[i] <= times[i-1] {
			t.Errorf("sample times not increasing: %v -> %v", times[i-1], times[i])
		}
	}
	// The final sample agrees with the Prometheus dump taken after the run.
	if final := series[len(series)-1]; final > vals[procCol] {
		t.Errorf("last recorded %v exceeds final scrape %v", final, vals[procCol])
	}

	// Output 3: the Chrome trace, terminated and decoded.
	if err := cw.Close(); err != nil {
		t.Fatalf("trace Close: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceBuf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	kinds := map[string]int{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		kinds[ph]++
	}
	if kinds["X"] == 0 {
		t.Error("trace has no run spans")
	}
	if kinds["C"] == 0 {
		t.Error("trace has no cpu.shares counter samples (event-log bridge broken)")
	}

	// The event log recorded control-plane decisions behind those counters.
	sawShares := false
	for _, e := range tel.Events.Events() {
		if e.Type == "cpu.shares" {
			sawShares = true
			break
		}
	}
	if !sawShares && tel.Events.Dropped() == 0 {
		t.Error("event log has no cpu.shares events")
	}
}

// TestTelemetryComposesWithTracing pins that EnableTelemetry and the legacy
// EnableTracing chain their hooks instead of displacing each other.
func TestTelemetryComposesWithTracing(t *testing.T) {
	p, _ := buildSmallChain()
	tel := p.EnableTelemetry()
	tr := p.EnableTracing()
	p.Run(Milliseconds(30))

	if tr.Len() == 0 {
		t.Error("buffered trace saw no events")
	}
	if tel.Events.Total() == 0 {
		t.Error("event log saw no events")
	}
	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, tel.Registry); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if _, err := telemetry.ParseText(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
}
