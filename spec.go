package nfvnice

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Spec is a declarative platform description — the analogue of OpenNetVM's
// "simple configuration files" (§3.1) through which service chains are
// configured at startup, and the surface an SDN controller would program.
// Decode one from JSON with LoadSpec and instantiate it with Build.
type Spec struct {
	// Scheduler is NORMAL, BATCH, RR1 or RR100 (default NORMAL).
	Scheduler string `json:"scheduler"`
	// Mode is default, cgroups, backpressure or nfvnice (default nfvnice).
	Mode string `json:"mode"`
	// Cores is the number of NF cores.
	Cores int `json:"cores"`
	// Seed makes the run reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`

	NFs    []NFSpec    `json:"nfs"`
	Chains []ChainSpec `json:"chains"`
	Flows  []FlowSpec  `json:"flows"`
}

// NFSpec declares one network function.
type NFSpec struct {
	Name string `json:"name"`
	// Core is the index of the core the NF is pinned to.
	Core int `json:"core"`
	// Cost is the per-packet cost in CPU cycles. CostModel selects the
	// shape: "fixed" (default), "uniform" (Cost..Cost2), or "perbyte"
	// (Cost base + Cost2 per byte).
	Cost      int    `json:"cost"`
	Cost2     int    `json:"cost2,omitempty"`
	CostModel string `json:"costModel,omitempty"`
	// Priority is the NFVnice differentiated-service multiplier.
	Priority float64 `json:"priority,omitempty"`
}

// ChainSpec declares a service chain by NF names.
type ChainSpec struct {
	Name string   `json:"name"`
	NFs  []string `json:"nfs"`
}

// FlowSpec declares one offered flow.
type FlowSpec struct {
	// Chain is the chain name the flow traverses.
	Chain string `json:"chain"`
	// RatePps is the offered constant rate; Size the frame bytes
	// (default 64). Set LineRate true to offer 10G line rate for Size.
	RatePps  float64 `json:"ratePps,omitempty"`
	LineRate bool    `json:"lineRate,omitempty"`
	Size     int     `json:"size,omitempty"`
}

// LoadSpec decodes a Spec from JSON.
func LoadSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &s, nil
}

// LoadSpecFile decodes a Spec from a file.
func LoadSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSpec(f)
}

func (s *Spec) scheduler() (SchedPolicy, error) {
	switch s.Scheduler {
	case "", "NORMAL", "normal":
		return SchedNormal, nil
	case "BATCH", "batch":
		return SchedBatch, nil
	case "RR1", "rr1", "rr1ms":
		return SchedRR1ms, nil
	case "RR100", "rr100", "rr100ms":
		return SchedRR100ms, nil
	default:
		return 0, fmt.Errorf("spec: unknown scheduler %q", s.Scheduler)
	}
}

func (s *Spec) mode() (Mode, error) {
	switch s.Mode {
	case "", "nfvnice":
		return ModeNFVnice, nil
	case "default":
		return ModeDefault, nil
	case "cgroups":
		return ModeCgroupsOnly, nil
	case "backpressure", "bkpr":
		return ModeBackpressureOnly, nil
	default:
		return 0, fmt.Errorf("spec: unknown mode %q", s.Mode)
	}
}

// Build validates the spec and assembles a ready-to-run Platform. It
// returns the platform plus the chain ids in spec order.
func (s *Spec) Build() (*Platform, []int, error) {
	sched, err := s.scheduler()
	if err != nil {
		return nil, nil, err
	}
	mode, err := s.mode()
	if err != nil {
		return nil, nil, err
	}
	if s.Cores <= 0 {
		return nil, nil, fmt.Errorf("spec: cores must be positive")
	}
	if len(s.NFs) == 0 {
		return nil, nil, fmt.Errorf("spec: no NFs")
	}
	cfg := DefaultConfig(sched, mode)
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	p := NewPlatform(cfg)
	for i := 0; i < s.Cores; i++ {
		p.AddCore()
	}
	nfByName := make(map[string]int, len(s.NFs))
	for _, n := range s.NFs {
		if n.Name == "" {
			return nil, nil, fmt.Errorf("spec: NF without a name")
		}
		if _, dup := nfByName[n.Name]; dup {
			return nil, nil, fmt.Errorf("spec: duplicate NF name %q", n.Name)
		}
		if n.Core < 0 || n.Core >= s.Cores {
			return nil, nil, fmt.Errorf("spec: NF %q on core %d of %d", n.Name, n.Core, s.Cores)
		}
		if n.Cost <= 0 {
			return nil, nil, fmt.Errorf("spec: NF %q needs a positive cost", n.Name)
		}
		var model CostModel
		switch n.CostModel {
		case "", "fixed":
			model = FixedCost(Cycles(n.Cost))
		case "uniform":
			if n.Cost2 < n.Cost {
				return nil, nil, fmt.Errorf("spec: NF %q uniform cost2 < cost", n.Name)
			}
			model = UniformCost(Cycles(n.Cost), Cycles(n.Cost2))
		case "perbyte":
			model = ByteCost(Cycles(n.Cost), Cycles(n.Cost2))
		default:
			return nil, nil, fmt.Errorf("spec: NF %q unknown cost model %q", n.Name, n.CostModel)
		}
		id := p.AddNF(n.Name, model, n.Core)
		nfByName[n.Name] = id
		if n.Priority > 0 {
			p.SetPriority(id, n.Priority)
		}
	}
	chainByName := make(map[string]int, len(s.Chains))
	chainIDs := make([]int, 0, len(s.Chains))
	for _, c := range s.Chains {
		if len(c.NFs) == 0 {
			return nil, nil, fmt.Errorf("spec: chain %q has no NFs", c.Name)
		}
		ids := make([]int, 0, len(c.NFs))
		for _, name := range c.NFs {
			id, ok := nfByName[name]
			if !ok {
				return nil, nil, fmt.Errorf("spec: chain %q references unknown NF %q", c.Name, name)
			}
			ids = append(ids, id)
		}
		chID := p.AddChain(c.Name, ids...)
		if c.Name != "" {
			if _, dup := chainByName[c.Name]; dup {
				return nil, nil, fmt.Errorf("spec: duplicate chain name %q", c.Name)
			}
			chainByName[c.Name] = chID
		}
		chainIDs = append(chainIDs, chID)
	}
	for i, fl := range s.Flows {
		chID, ok := chainByName[fl.Chain]
		if !ok {
			return nil, nil, fmt.Errorf("spec: flow %d references unknown chain %q", i, fl.Chain)
		}
		size := fl.Size
		if size == 0 {
			size = 64
		}
		rate := Rate(fl.RatePps)
		if fl.LineRate {
			rate = LineRate10G(size)
		}
		if rate <= 0 {
			return nil, nil, fmt.Errorf("spec: flow %d needs ratePps or lineRate", i)
		}
		f := UDPFlow(i, size)
		p.MapFlow(f, chID)
		p.AddCBR(f, rate)
	}
	return p, chainIDs, nil
}
