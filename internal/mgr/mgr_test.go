package mgr

import (
	"testing"

	"nfvnice/internal/bp"
	"nfvnice/internal/chain"
	"nfvnice/internal/cpusched"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/nf"
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

// env is a minimal two-NF chain on one core for manager tests.
type env struct {
	eng   *eventsim.Engine
	m     *Manager
	core  *cpusched.Core
	nfs   []*nf.NF
	chain *chain.Chain
	flow  packet.FlowKey
}

func newEnv(t *testing.T, feats Features, costs ...simtime.Cycles) *env {
	t.Helper()
	eng := eventsim.New()
	pool := packet.NewPool(16384)
	reg := chain.NewRegistry()
	m := New(eng, pool, reg, DefaultParams(feats))
	core := cpusched.NewCore(0, eng, cpusched.NewCFSBatch(), cpusched.DefaultCoreParams())
	var ids []int
	var nfs []*nf.NF
	for i, c := range costs {
		n := nf.New(i, "nf", nf.FixedCost(c), nf.DefaultParams(), int64(i+1))
		core.AddTask(n.Task)
		m.AddNF(n)
		nfs = append(nfs, n)
		ids = append(ids, i)
	}
	ch := reg.MustAdd("chain", ids...)
	m.GrowChains(reg.Len())
	flow := packet.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: packet.UDP}
	m.Table.InstallExact(flow, ch.ID)
	m.Start()
	return &env{eng: eng, m: m, core: core, nfs: nfs, chain: ch, flow: flow}
}

func (e *env) inject(n int) (accepted int) {
	for i := 0; i < n; i++ {
		if ok, _ := e.m.Inject(e.flow, 0, 64, packet.NotECT, 0); ok {
			accepted++
		}
	}
	return accepted
}

func TestInjectRoutesToEntryNF(t *testing.T) {
	e := newEnv(t, FeatureDefault(), 100, 100)
	if got := e.inject(10); got != 10 {
		t.Fatalf("accepted %d, want 10", got)
	}
	// The first packet's wakeup starts a segment immediately, so one
	// packet may already be in the NF's in-flight batch.
	if got := e.nfs[0].Rx.Len() + e.nfs[0].InFlight(); got != 10 {
		t.Fatalf("entry rx + in-flight = %d", got)
	}
	if e.nfs[0].ArrivalMeter.Total() != 10 {
		t.Fatalf("arrivals = %d", e.nfs[0].ArrivalMeter.Total())
	}
}

func TestInjectNoRoute(t *testing.T) {
	e := newEnv(t, FeatureDefault(), 100)
	bad := packet.FlowKey{SrcIP: 99}
	ok, at := e.m.Inject(bad, 0, 64, packet.NotECT, 0)
	if ok || at != DropNoRoute {
		t.Fatalf("unrouted inject: ok=%v at=%v", ok, at)
	}
}

func TestEndToEndDelivery(t *testing.T) {
	e := newEnv(t, FeatureDefault(), 100, 100)
	e.inject(100)
	e.eng.RunUntil(simtime.Millisecond)
	if got := e.m.Delivered[0].Total(); got != 100 {
		t.Fatalf("delivered %d, want 100", got)
	}
	if e.m.Pool.InUse() != 0 {
		t.Fatalf("descriptors leaked: %d in use", e.m.Pool.InUse())
	}
	if e.m.Latency.Count() != 100 {
		t.Fatalf("latency samples = %d", e.m.Latency.Count())
	}
}

func TestSinkNotifications(t *testing.T) {
	e := newEnv(t, FeatureDefault(), 100)
	var delivered, dropped int
	e.m.RegisterSink(0, sinkFns{
		onDeliver: func(*packet.Packet) { delivered++ },
		onDrop:    func(*packet.Packet, DropPoint) { dropped++ },
	})
	e.inject(50)
	e.eng.RunUntil(simtime.Millisecond)
	if delivered != 50 {
		t.Fatalf("delivered callbacks = %d", delivered)
	}
	if dropped != 0 {
		t.Fatalf("dropped callbacks = %d", dropped)
	}
}

type sinkFns struct {
	onDeliver func(*packet.Packet)
	onDrop    func(*packet.Packet, DropPoint)
}

func (s sinkFns) Delivered(_ simtime.Cycles, p *packet.Packet) { s.onDeliver(p) }
func (s sinkFns) Dropped(_ simtime.Cycles, p *packet.Packet, at DropPoint) {
	s.onDrop(p, at)
}

func TestDefaultModeDropsDownstreamAndCountsWaste(t *testing.T) {
	// Slow downstream NF: in default mode the Tx thread drops at its full
	// ring and attributes wasted work to the upstream NF.
	e := newEnv(t, FeatureDefault(), 50, 20000)
	stop := e.eng.Every(0, 5*simtime.Microsecond, func() { e.inject(40) })
	e.eng.RunUntil(100 * simtime.Millisecond)
	stop.Cancel()
	if e.m.Wasted[0].Total() == 0 {
		t.Fatal("no wasted-work drops recorded in default mode")
	}
	if e.m.QueueDrops[1].Total() == 0 {
		t.Fatal("no queue drops recorded at the slow NF")
	}
	if e.m.Throttles.TotalEntryDrops() != 0 {
		t.Fatal("default mode must not shed at entry")
	}
}

func TestBackpressureShedsAtEntryAndStopsWaste(t *testing.T) {
	e := newEnv(t, FeatureBackpressureOnly(), 50, 20000)
	stop := e.eng.Every(0, 5*simtime.Microsecond, func() { e.inject(40) })
	e.eng.RunUntil(100 * simtime.Millisecond)
	stop.Cancel()
	if e.m.Throttles.TotalEntryDrops() == 0 {
		t.Fatal("backpressure never shed at entry")
	}
	if e.m.Wasted[0].Total() != 0 {
		t.Fatalf("wasted %d packets despite backpressure", e.m.Wasted[0].Total())
	}
	// The bottleneck NF must have entered throttle at some point.
	if e.m.BPState(1) == bp.WatchList && e.m.Throttles.TotalEntryDrops() == 0 {
		t.Fatal("state machine never advanced")
	}
}

func TestYieldFlagSetOnUpstreamOnly(t *testing.T) {
	// Three-NF chain with the bottleneck in the middle: when it throttles,
	// the upstream NF yields but the downstream one (which drains the
	// bottleneck) must not.
	e := newEnv(t, FeatureBackpressureOnly(), 50, 20000, 60)
	stop := e.eng.Every(0, 5*simtime.Microsecond, func() { e.inject(40) })
	// Run until the middle NF throttles.
	var sawYield bool
	check := e.eng.Every(simtime.Millisecond, simtime.Millisecond, func() {
		if e.m.BPState(1) == bp.PacketThrottle {
			if e.nfs[0].YieldFlag {
				sawYield = true
			}
			if e.nfs[2].YieldFlag {
				t.Error("downstream NF must never yield for an upstream bottleneck")
			}
		}
	})
	e.eng.RunUntil(100 * simtime.Millisecond)
	stop.Cancel()
	check.Cancel()
	if !sawYield {
		t.Fatal("upstream NF never yielded while bottleneck throttled")
	}
}

func TestThrottleClearsAndResumes(t *testing.T) {
	e := newEnv(t, FeatureBackpressureOnly(), 50, 20000)
	stop := e.eng.Every(0, 5*simtime.Microsecond, func() { e.inject(40) })
	e.eng.RunUntil(50 * simtime.Millisecond)
	stop.Cancel()
	// Stop traffic; the bottleneck drains and throttle must clear.
	e.eng.RunUntil(2 * simtime.Second)
	if got := e.m.BPState(1); got != bp.ClearThrottle {
		t.Fatalf("state after drain = %v, want clear", got)
	}
	if e.nfs[0].YieldFlag {
		t.Fatal("yield flag stuck after throttle cleared")
	}
	// All in-flight packets completed or dropped; no descriptor leak.
	inFlight := 0
	for _, n := range e.nfs {
		inFlight += n.Rx.Len() + n.Tx.Len() + n.InFlight()
	}
	if e.m.Pool.InUse() != inFlight {
		t.Fatalf("pool in use %d vs rings %d", e.m.Pool.InUse(), inFlight)
	}
}

func TestECNMarkingOnPersistentQueue(t *testing.T) {
	p := DefaultParams(FeatureNFVnice())
	p.ECNThreshold = 10
	eng := eventsim.New()
	pool := packet.NewPool(16384)
	reg := chain.NewRegistry()
	m := New(eng, pool, reg, p)
	core := cpusched.NewCore(0, eng, cpusched.NewCFSBatch(), cpusched.DefaultCoreParams())
	n := nf.New(0, "slow", nf.FixedCost(50000), nf.DefaultParams(), 1)
	core.AddTask(n.Task)
	m.AddNF(n)
	ch := reg.MustAdd("c", 0)
	m.GrowChains(1)
	flow := packet.FlowKey{SrcIP: 1, Proto: packet.TCP}
	m.Table.InstallExact(flow, ch.ID)
	m.Start()
	marked := 0
	m.RegisterSink(0, sinkFns{
		onDeliver: func(pkt *packet.Packet) {
			if pkt.ECN == packet.CE {
				marked++
			}
		},
		onDrop: func(*packet.Packet, DropPoint) {},
	})
	gen := eng.Every(0, 10*simtime.Microsecond, func() {
		m.Inject(flow, 0, 1470, packet.ECT, 0)
	})
	eng.RunUntil(50 * simtime.Millisecond)
	gen.Cancel()
	eng.RunUntil(5 * simtime.Second)
	if marked == 0 {
		t.Fatal("no CE marks on a persistently deep ECT queue")
	}
	if m.ECNMarked(0) == 0 {
		t.Fatal("marker counter not incremented")
	}
}

func TestLocalBackpressureHoldsInsteadOfDropping(t *testing.T) {
	// With backpressure on, a full downstream ring holds packets in the
	// upstream Tx ring rather than dropping them.
	e := newEnv(t, FeatureBackpressureOnly(), 50, 20000)
	stop := e.eng.Every(0, 5*simtime.Microsecond, func() { e.inject(40) })
	e.eng.RunUntil(30 * simtime.Millisecond)
	stop.Cancel()
	if e.m.Wasted[0].Total() != 0 {
		t.Fatal("local backpressure dropped processed packets")
	}
	e.eng.RunUntil(3 * simtime.Second)
	// Everything eventually drains out the NIC.
	if e.m.Pool.InUse() != 0 {
		t.Fatalf("descriptors stuck after drain: %d", e.m.Pool.InUse())
	}
}

func TestDenseNFRegistration(t *testing.T) {
	eng := eventsim.New()
	m := New(eng, packet.NewPool(16), chain.NewRegistry(), DefaultParams(FeatureDefault()))
	n := nf.New(5, "bad", nf.FixedCost(1), nf.DefaultParams(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("sparse NF id did not panic")
		}
	}()
	m.AddNF(n)
}

func TestDropPointString(t *testing.T) {
	for _, d := range []DropPoint{DropPool, DropNoRoute, DropEntry, DropEntryRing, DropDownstream} {
		if d.String() == "?" {
			t.Fatalf("missing name for drop point %d", d)
		}
	}
}

func TestPoolExhaustionDropsAtNIC(t *testing.T) {
	eng := eventsim.New()
	pool := packet.NewPool(8) // tiny pool
	reg := chain.NewRegistry()
	m := New(eng, pool, reg, DefaultParams(FeatureDefault()))
	core := cpusched.NewCore(0, eng, cpusched.NewCFSBatch(), cpusched.DefaultCoreParams())
	n := nf.New(0, "slow", nf.FixedCost(1_000_000), nf.DefaultParams(), 1)
	core.AddTask(n.Task)
	m.AddNF(n)
	reg.MustAdd("c", 0)
	m.GrowChains(1)
	m.Start()
	flow := packet.FlowKey{SrcIP: 1, Proto: packet.UDP}
	m.Table.InstallExact(flow, 0)
	var poolDrops int
	m.RegisterSink(0, sinkFns{
		onDeliver: func(*packet.Packet) {},
		onDrop: func(_ *packet.Packet, at DropPoint) {
			if at == DropPool {
				poolDrops++
			}
		},
	})
	for i := 0; i < 20; i++ {
		m.Inject(flow, 0, 64, packet.NotECT, 0)
	}
	if m.PoolDrops.Total() == 0 || poolDrops == 0 {
		t.Fatalf("pool exhaustion not surfaced: meter=%d sink=%d", m.PoolDrops.Total(), poolDrops)
	}
}

func TestWakeupThreadBackstop(t *testing.T) {
	// An NF left blocked with pending packets (e.g. its direct wake was
	// suppressed) must be picked up by the periodic wakeup scan.
	e := newEnv(t, FeatureDefault(), 100)
	n := e.nfs[0]
	// Bypass Inject's direct wake by enqueuing straight into the ring.
	pkt := e.m.Pool.Get()
	n.Rx.Enqueue(e.eng.Now(), pkt)
	if n.Task.State() != cpusched.Blocked {
		t.Fatal("setup: task should be blocked")
	}
	e.eng.RunUntil(e.eng.Now() + 500*simtime.Microsecond)
	if n.ProcessedMeter.Total() != 1 {
		t.Fatalf("wakeup thread never rescued the blocked NF (processed=%d)",
			n.ProcessedMeter.Total())
	}
}

func TestChainThroughputHelper(t *testing.T) {
	e := newEnv(t, FeatureDefault(), 100)
	e.inject(1000)
	e.eng.RunUntil(100 * simtime.Millisecond)
	r := e.m.ChainThroughput(0, e.eng.Now())
	if r < 9000 || r > 11000 {
		t.Fatalf("throughput = %v pps, want ~10000 (1000 pkts / 0.1s)", r)
	}
}
