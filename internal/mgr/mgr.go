// Package mgr implements the NF manager: the OpenNetVM-style control plane
// running on dedicated cores that ferries packet descriptors between the
// NIC and NF rings (Rx/Tx threads), wakes NFs (wakeup subsystem), detects
// overload at enqueue time, and drives NFVnice's cross-chain backpressure.
//
// Thread model in the simulation: the Rx path runs inline with traffic
// injection (the Rx thread is never the bottleneck on its dedicated core);
// the Tx threads are modelled as a polling loop that drains NF transmit
// rings every TxPollInterval; the wakeup thread scans NF state every
// WakeupInterval, exactly the separation of overload detection (Tx) from
// control (wakeup) that the paper describes.
package mgr

import (
	"fmt"

	"nfvnice/internal/bp"
	"nfvnice/internal/chain"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/flowtable"
	"nfvnice/internal/nf"
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
	"nfvnice/internal/stats"
)

// Features select which NFVnice mechanisms are active, matching the paper's
// ablation: Default (none), CGroups only, Backpressure only, full NFVnice.
// CGroupShares itself is enacted by the controller in internal/core; the
// flag here gates nothing in the manager but travels with the config.
type Features struct {
	// CGroupShares enables rate-cost proportional cpu.shares assignment.
	CGroupShares bool
	// Backpressure enables the watermark state machine, chain-entry
	// dropping, upstream yield flags, and hold-instead-of-drop at
	// downstream rings (local backpressure).
	Backpressure bool
	// ECN enables CE marking of ECN-capable flows on smoothed queue
	// length.
	ECN bool
	// NoEntryDrop keeps backpressure's yield flags and local hold but
	// disables chain-entry shedding — the hop-by-hop-only ablation.
	NoEntryDrop bool
}

// FeatureDefault is the vanilla platform (kernel scheduler only).
func FeatureDefault() Features { return Features{} }

// FeatureCgroupsOnly matches the paper's "CGroup" bars.
func FeatureCgroupsOnly() Features { return Features{CGroupShares: true} }

// FeatureBackpressureOnly matches the paper's "Only BKPR" bars.
func FeatureBackpressureOnly() Features { return Features{Backpressure: true} }

// FeatureNFVnice is the full system.
func FeatureNFVnice() Features { return Features{CGroupShares: true, Backpressure: true, ECN: true} }

// Params configure the manager.
type Params struct {
	TxPollInterval simtime.Cycles
	WakeupInterval simtime.Cycles
	BP             bp.Params
	// ECNThreshold is the smoothed queue length (packets) above which
	// ECT packets are CE-marked. Half the default ring: comfortably above
	// the standing queue a weighted-fair share produces, and below the
	// 80% HIGH watermark so responsive flows react before backpressure
	// engages (RFC 3168 works at longer timescales).
	ECNThreshold float64
	Features     Features
}

// DefaultParams returns calibrated manager parameters.
func DefaultParams(f Features) Params {
	return Params{
		TxPollInterval: 10 * simtime.Microsecond,
		WakeupInterval: 50 * simtime.Microsecond,
		BP:             bp.DefaultParams(),
		ECNThreshold:   2048,
		Features:       f,
	}
}

// DropPoint says where a packet died.
type DropPoint uint8

// Drop locations.
const (
	DropPool       DropPoint = iota // descriptor pool exhausted (NIC drop)
	DropNoRoute                     // no flow table match
	DropEntry                       // shed at chain entry by backpressure
	DropEntryRing                   // first NF's receive ring full
	DropDownstream                  // mid-chain receive ring full (wasted work)
)

func (d DropPoint) String() string {
	switch d {
	case DropPool:
		return "pool"
	case DropNoRoute:
		return "no-route"
	case DropEntry:
		return "entry-throttle"
	case DropEntryRing:
		return "entry-ring"
	case DropDownstream:
		return "downstream"
	default:
		return "?"
	}
}

// Sink observes a flow's fate: traffic models (TCP) use it for feedback,
// experiments for per-flow accounting. Implementations must not retain pkt.
type Sink interface {
	Delivered(now simtime.Cycles, pkt *packet.Packet)
	Dropped(now simtime.Cycles, pkt *packet.Packet, at DropPoint)
}

// Manager wires NFs, chains, rings and backpressure together.
type Manager struct {
	Eng    *eventsim.Engine
	Pool   *packet.Pool
	Table  *flowtable.Table
	Chains *chain.Registry
	Params Params

	nfs      []*nf.NF
	bpStates []bp.NFState
	// throttledBy records, per NF, the chain IDs it currently throttles
	// so disable edges release exactly what enable claimed.
	throttledBy [][]int
	Throttles   *bp.ChainThrottles
	ecn         []*bp.ECNMarker

	sinks map[int]Sink

	// Per-chain delivered packets and bytes (exit throughput).
	Delivered      []stats.Meter
	DeliveredBytes []stats.Meter
	// Wasted-work drops attributed to the NF that last processed the
	// packet (the paper's Table 3 metric).
	Wasted []stats.Meter
	// EntryRingDrops: packets dropped unprocessed at the chain's first
	// ring (occupied before any work was invested).
	EntryRingDrops []stats.Meter
	// QueueDrops counts drops AT each NF's receive queue (entry-ring and
	// downstream-full combined) — the per-NF "drop rate" of Table 5.
	QueueDrops []stats.Meter
	// PoolDrops counts NIC-level drops from descriptor exhaustion.
	PoolDrops stats.Meter
	// OnThrottle, when set, observes backpressure enable/disable edges
	// per NF (tracing).
	OnThrottle func(nfID int, enabled bool, now simtime.Cycles)
	// OnBPTransition, when set, observes every Figure-4 state-machine edge
	// with its cause (watermark conditions and time-above-high at decision
	// time) — finer-grained than OnThrottle, which only sees the
	// enable/disable edges. Decision-journal provenance.
	OnBPTransition func(nfID int, tr bp.Transition)
	// OnECNMark, when set, observes every CE mark applied at an NF's queue
	// (telemetry). Set before AddNF calls take effect on later NFs; the
	// platform wires it before any packet flows.
	OnECNMark func(nfID int, now simtime.Cycles)
	// Latency accumulates end-to-end packet latency of delivered packets.
	Latency stats.Histogram

	started bool
}

// New returns a manager over the given chains. NFs are added with AddNF;
// call Start before running the engine.
func New(eng *eventsim.Engine, pool *packet.Pool, chains *chain.Registry, params Params) *Manager {
	nChains := chains.Len()
	return &Manager{
		Eng:            eng,
		Pool:           pool,
		Table:          flowtable.New(),
		Chains:         chains,
		Params:         params,
		Throttles:      bp.NewChainThrottles(),
		sinks:          make(map[int]Sink),
		Delivered:      make([]stats.Meter, nChains),
		DeliveredBytes: make([]stats.Meter, nChains),
	}
}

// AddNF registers an NF; its ID must equal its index (dense registration).
func (m *Manager) AddNF(n *nf.NF) {
	if n.ID != len(m.nfs) {
		panic(fmt.Sprintf("mgr: NF %q has id %d, want %d (dense registration)", n.Name, n.ID, len(m.nfs)))
	}
	m.nfs = append(m.nfs, n)
	nfIdx := n.ID
	m.bpStates = append(m.bpStates, bp.NFState{Observer: func(tr bp.Transition) {
		if m.OnBPTransition != nil {
			m.OnBPTransition(nfIdx, tr)
		}
	}})
	m.throttledBy = append(m.throttledBy, nil)
	marker := bp.NewECNMarker(m.Params.ECNThreshold)
	nfID := n.ID
	marker.OnMark = func() {
		if m.OnECNMark != nil {
			m.OnECNMark(nfID, m.Eng.Now())
		}
	}
	m.ecn = append(m.ecn, marker)
	m.Wasted = append(m.Wasted, stats.Meter{})
	m.EntryRingDrops = append(m.EntryRingDrops, stats.Meter{})
	m.QueueDrops = append(m.QueueDrops, stats.Meter{})
}

// GrowChains resizes per-chain meters after chains are registered. Safe to
// call repeatedly; existing counts are preserved.
func (m *Manager) GrowChains(n int) {
	for len(m.Delivered) < n {
		m.Delivered = append(m.Delivered, stats.Meter{})
		m.DeliveredBytes = append(m.DeliveredBytes, stats.Meter{})
	}
}

// NF returns the NF with the given id.
func (m *Manager) NF(id int) *nf.NF { return m.nfs[id] }

// NFs returns all registered NFs.
func (m *Manager) NFs() []*nf.NF { return m.nfs }

// RegisterSink attaches a per-flow observer.
func (m *Manager) RegisterSink(flowID int, s Sink) { m.sinks[flowID] = s }

// BPState exposes an NF's backpressure state for tests and metrics.
func (m *Manager) BPState(nfID int) bp.State { return m.bpStates[nfID].State() }

// Start arms the Tx and wakeup threads.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.Eng.Every(m.Params.TxPollInterval, m.Params.TxPollInterval, m.txThread)
	m.Eng.Every(m.Params.WakeupInterval, m.Params.WakeupInterval, m.wakeupThread)
}

// Inject delivers one packet from the wire into the platform: flow table
// lookup, backpressure entry check, first-ring enqueue, wakeup. The caller
// (traffic generator) provides the header fields; the manager allocates the
// descriptor. The returned DropPoint is only meaningful when ok is false.
func (m *Manager) Inject(key packet.FlowKey, flowID, size int, ecn packet.ECN, costClass int) (ok bool, at DropPoint) {
	now := m.Eng.Now()
	chainID, routed := m.Table.Lookup(key)
	if !routed {
		return false, DropNoRoute
	}
	if m.Params.Features.Backpressure && !m.Params.Features.NoEntryDrop && m.Throttles.Throttled(chainID) {
		// Selective early discard at the chain entry: no descriptor is
		// consumed, no NF cycles are wasted. The packet still counts as a
		// wire arrival for the entry NF's rate estimate — otherwise
		// throttling would depress λ, shrink the NF's CPU share, and
		// spiral it into starvation.
		m.nfs[m.Chains.Get(chainID).Entry()].ArrivalMeter.Inc()
		m.Throttles.CountEntryDrop(chainID)
		if s := m.sinks[flowID]; s != nil {
			tmp := packet.Packet{Flow: key, FlowID: flowID, ChainID: chainID, Size: size}
			s.Dropped(now, &tmp, DropEntry)
		}
		return false, DropEntry
	}
	pkt := m.Pool.Get()
	if pkt == nil {
		m.PoolDrops.Inc()
		if s := m.sinks[flowID]; s != nil {
			tmp := packet.Packet{Flow: key, FlowID: flowID, ChainID: chainID, Size: size}
			s.Dropped(now, &tmp, DropPool)
		}
		return false, DropPool
	}
	pkt.Flow = key
	pkt.FlowID = flowID
	pkt.ChainID = chainID
	pkt.Size = size
	pkt.ECN = ecn
	pkt.CostClass = costClass
	pkt.Arrival = now

	entry := m.nfs[m.Chains.Get(chainID).Entry()]
	// Arrival accounting happens on the attempt: a packet dropped at a
	// full ring still arrived at that NF's queue, and the controller's
	// λ_i must reflect offered load, not survivor throughput.
	entry.ArrivalMeter.Inc()
	if !entry.Rx.Enqueue(now, pkt) {
		m.EntryRingDrops[entry.ID].Inc()
		m.QueueDrops[entry.ID].Inc()
		if s := m.sinks[flowID]; s != nil {
			s.Dropped(now, pkt, DropEntryRing)
		}
		pkt.Release()
		return false, DropEntryRing
	}
	if m.Params.Features.ECN {
		m.ecn[entry.ID].OnEnqueue(entry.Rx.Len(), pkt)
	}
	m.maybeWake(entry)
	return true, 0
}

func (m *Manager) maybeWake(n *nf.NF) {
	if n.Task.Core() != nil && n.WantsWake() {
		n.Task.Core().Wake(n.Task)
	}
}

// txThread drains every NF's transmit ring toward the next hop or the NIC.
func (m *Manager) txThread() {
	now := m.Eng.Now()
	for _, src := range m.nfs {
		m.drainTx(now, src)
	}
}

func (m *Manager) drainTx(now simtime.Cycles, src *nf.NF) {
	localBP := m.Params.Features.Backpressure
	for {
		pkt := src.Tx.Peek()
		if pkt == nil {
			break
		}
		ch := m.Chains.Get(pkt.ChainID)
		if pkt.Hop >= ch.Len() {
			// Chain complete: out the NIC.
			src.Tx.Dequeue(now)
			m.Delivered[pkt.ChainID].Inc()
			m.DeliveredBytes[pkt.ChainID].Add(uint64(pkt.Size))
			m.Latency.Observe(uint64(now - pkt.Arrival))
			if s := m.sinks[pkt.FlowID]; s != nil {
				s.Delivered(now, pkt)
			}
			pkt.Release()
			continue
		}
		dst := m.nfs[ch.NFAt(pkt.Hop)]
		if dst.Rx.Free() == 0 {
			if localBP {
				// Hold: the packet stays in src's Tx ring; src suspends
				// via local backpressure when the ring fills. Arrival is
				// counted when the packet actually moves.
				break
			}
			// Default platform: the Tx thread drops — work already
			// invested in this packet is wasted. It still arrived at
			// dst's queue for rate-estimation purposes.
			src.Tx.Dequeue(now)
			dst.ArrivalMeter.Inc()
			m.Wasted[src.ID].Inc()
			m.QueueDrops[dst.ID].Inc()
			if s := m.sinks[pkt.FlowID]; s != nil {
				s.Dropped(now, pkt, DropDownstream)
			}
			pkt.Release()
			continue
		}
		src.Tx.Dequeue(now)
		dst.Rx.Enqueue(now, pkt)
		dst.ArrivalMeter.Inc()
		if m.Params.Features.ECN {
			m.ecn[dst.ID].OnEnqueue(dst.Rx.Len(), pkt)
		}
		m.maybeWake(dst)
	}
	// Clear local backpressure once the ring has meaningful room again.
	if src.TxBlocked() && src.Tx.Free() > src.Tx.Cap()/2 {
		src.SetTxBlocked(false)
		m.maybeWake(src)
	}
}

// wakeupThread is the control half: advance backpressure state machines,
// maintain yield flags, and wake eligible NFs.
func (m *Manager) wakeupThread() {
	now := m.Eng.Now()
	if m.Params.Features.Backpressure {
		for i, n := range m.nfs {
			st := &m.bpStates[i]
			enable, disable := st.Update(m.Params.BP, n.Rx.AboveHigh(), n.Rx.BelowLow(), n.Rx.TimeAboveHigh(now))
			switch {
			case enable:
				chains := m.Chains.ChainsThrough(n.ID)
				ids := make([]int, 0, len(chains))
				for _, c := range chains {
					m.Throttles.Enable(c.ID)
					ids = append(ids, c.ID)
				}
				m.throttledBy[i] = ids
				if m.OnThrottle != nil {
					m.OnThrottle(n.ID, true, now)
				}
			case disable:
				for _, id := range m.throttledBy[i] {
					m.Throttles.Disable(id)
				}
				m.throttledBy[i] = nil
				if m.OnThrottle != nil {
					m.OnThrottle(n.ID, false, now)
				}
			}
		}
		m.recomputeYieldFlags()
	}
	for _, n := range m.nfs {
		m.maybeWake(n)
	}
}

// recomputeYieldFlags sets YieldFlag on NFs that should relinquish the CPU:
// an NF yields only when every chain it serves is throttled and it sits
// strictly upstream of a throttling bottleneck in each of them. Shared NFs
// with un-throttled chains keep running (the paper's Fig 8: NF1 keeps
// serving chain 1 while chain 2 is back-pressured), and NFs downstream of a
// bottleneck keep running to drain it.
func (m *Manager) recomputeYieldFlags() {
	for u, n := range m.nfs {
		chains := m.Chains.ChainsThrough(n.ID)
		yield := len(chains) > 0
		for _, c := range chains {
			if !m.Throttles.Throttled(c.ID) {
				yield = false
				break
			}
			posU := c.Position(u)
			upstreamOfBottleneck := false
			for _, b := range c.NFs {
				if m.bpStates[b].State() == bp.PacketThrottle && posU < c.Position(b) {
					upstreamOfBottleneck = true
					break
				}
			}
			if !upstreamOfBottleneck {
				yield = false
				break
			}
		}
		if n.YieldFlag && !yield {
			n.YieldFlag = false
			m.maybeWake(n)
		} else {
			n.YieldFlag = yield
		}
	}
}

// ChainThroughput reports a chain's delivered packet rate since the last
// snapshot of its meter.
func (m *Manager) ChainThroughput(chainID int, now simtime.Cycles) simtime.Rate {
	return m.Delivered[chainID].Snapshot(now)
}

// TotalDelivered sums delivered packets across chains.
func (m *Manager) TotalDelivered() uint64 {
	var n uint64
	for i := range m.Delivered {
		n += m.Delivered[i].Total()
	}
	return n
}

// TotalWasted sums wasted-work drops across NFs.
func (m *Manager) TotalWasted() uint64 {
	var n uint64
	for i := range m.Wasted {
		n += m.Wasted[i].Total()
	}
	return n
}

// ECNMarked reports total CE marks applied at an NF's queue.
func (m *Manager) ECNMarked(nfID int) uint64 { return m.ecn[nfID].Marked }
