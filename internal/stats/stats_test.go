package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nfvnice/internal/simtime"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []uint64{100, 200, 300, 400} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 250 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 100 || h.Max() != 400 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Log buckets: the quantile estimate must be within 2x of truth.
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Intn(5000) + 50)
		vals = append(vals, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est := float64(h.Quantile(q))
		// exact quantile
		sorted := append([]uint64(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		exact := float64(sorted[int(q*float64(len(sorted)-1))])
		if est < exact/2 || est > exact*2 {
			t.Errorf("q=%v: est %v vs exact %v out of 2x band", q, est, exact)
		}
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("negative q should clamp to 0")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 should clamp to 1")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestMedianWindow(t *testing.T) {
	m := NewMedianWindow(100 * simtime.Microsecond)
	now := simtime.Cycles(0)
	for i, v := range []uint64{10, 20, 30, 40, 50} {
		m.Observe(now+simtime.Cycles(i)*simtime.Microsecond, v)
	}
	if got := m.Median(4 * simtime.Microsecond); got != 30 {
		t.Fatalf("median = %d, want 30", got)
	}
	// Advance far enough that early samples age out (span 100µs): at
	// t=103µs samples at 0,1,2µs are out, leaving {40,50}. The estimator
	// uses the upper median for even counts.
	if got := m.Median(103 * simtime.Microsecond); got != 50 {
		t.Fatalf("median after eviction = %d, want 50 (upper median of 40,50)", got)
	}
}

func TestMedianWindowEmpty(t *testing.T) {
	m := NewMedianWindow(simtime.Millisecond)
	if m.Median(0) != 0 || m.Mean(0) != 0 {
		t.Fatal("empty window should report 0")
	}
}

func TestMedianWindowMean(t *testing.T) {
	m := NewMedianWindow(simtime.Second)
	m.Observe(0, 10)
	m.Observe(1, 30)
	if got := m.Mean(2); got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
}

func TestMedianRobustToOutliers(t *testing.T) {
	// The paper chooses the median specifically because context switches
	// mid-measurement produce huge outliers.
	m := NewMedianWindow(simtime.Second)
	for i := 0; i < 99; i++ {
		m.Observe(simtime.Cycles(i), 250)
	}
	m.Observe(99, 1_000_000) // a context switch hit this sample
	if got := m.Median(100); got != 250 {
		t.Fatalf("median = %d, want 250 despite outlier", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("initial value should be 0")
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first sample should initialize: %v", e.Value())
	}
	e.Observe(0)
	if e.Value() != 50 {
		t.Fatalf("value = %v, want 50", e.Value())
	}
	e.Observe(0)
	if e.Value() != 25 {
		t.Fatalf("value = %v, want 25", e.Value())
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{1, 1, 1, 1}); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("equal allocations: %v, want 1", got)
	}
	// One user hogging everything among n: index = 1/n.
	if got := Jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single hog: %v, want 0.25", got)
	}
	if got := Jain(nil); got != 1 {
		t.Fatalf("empty: %v", got)
	}
	if got := Jain([]float64{0, 0}); got != 1 {
		t.Fatalf("all zero: %v", got)
	}
}

func TestJainProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		j := Jain(xs)
		// Bounded in [1/n, 1] (within float tolerance).
		return j <= 1+1e-9 && j >= 1/float64(len(xs))-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainScaleInvariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if math.Abs(Jain(xs)-Jain(ys)) > 1e-12 {
		t.Fatal("Jain index must be scale invariant")
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add(500)
	m.Inc()
	if m.Total() != 501 {
		t.Fatalf("Total = %d", m.Total())
	}
	r := m.Snapshot(simtime.Second)
	if math.Abs(float64(r)-501) > 1e-9 {
		t.Fatalf("rate = %v, want 501/s", r)
	}
	// Second window: 100 events in half a second = 200/s.
	m.Add(100)
	r = m.Snapshot(simtime.Second + simtime.Second/2)
	if math.Abs(float64(r)-200) > 1e-9 {
		t.Fatalf("rate = %v, want 200/s", r)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 {
		t.Fatal("empty Last should be 0")
	}
	s.Record(10, 1.0)
	s.Record(20, 3.0)
	s.Record(30, 5.0)
	if s.Last() != 5.0 {
		t.Fatalf("Last = %v", s.Last())
	}
	if got := s.MeanOver(10, 20); got != 2.0 {
		t.Fatalf("MeanOver = %v, want 2", got)
	}
	if got := s.MeanOver(100, 200); got != 0 {
		t.Fatalf("MeanOver empty range = %v", got)
	}
	lo, hi, ok := s.MinMaxOver(10, 30)
	if !ok || lo != 1.0 || hi != 5.0 {
		t.Fatalf("MinMaxOver = %v,%v,%v", lo, hi, ok)
	}
	if _, _, ok := s.MinMaxOver(40, 50); ok {
		t.Fatal("MinMaxOver out of range should report !ok")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i%4096 + 64))
	}
}

func BenchmarkMedianWindow(b *testing.B) {
	m := NewMedianWindow(100 * simtime.Millisecond)
	now := simtime.Cycles(0)
	for i := 0; i < b.N; i++ {
		now += simtime.Millisecond
		m.Observe(now, uint64(i%1000))
		if i%10 == 0 {
			m.Median(now)
		}
	}
}
