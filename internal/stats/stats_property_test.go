package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nfvnice/internal/simtime"
)

// TestHistogramQuantileMonotone: quantiles must be non-decreasing in q.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		prev := uint64(0)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHistogramCountSumConsistent: count and mean track inputs exactly.
func TestHistogramCountSumConsistent(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		var sum uint64
		for _, v := range vals {
			h.Observe(uint64(v))
			sum += uint64(v)
		}
		if h.Count() != uint64(len(vals)) {
			return false
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		return h.Mean() == float64(sum)/float64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMedianWindowMatchesSort: the window median equals the sorted-slice
// median of the in-window samples.
func TestMedianWindowMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		span := simtime.Cycles(1000)
		m := NewMedianWindow(span)
		type s struct {
			at simtime.Cycles
			v  uint64
		}
		var all []s
		now := simtime.Cycles(0)
		for i := 0; i < 200; i++ {
			now += simtime.Cycles(rng.Intn(50))
			v := uint64(rng.Intn(10000))
			m.Observe(now, v)
			all = append(all, s{now, v})

			// Reference: samples with now-at <= span.
			var ref []uint64
			for _, x := range all {
				if now-x.at <= span {
					ref = append(ref, x.v)
				}
			}
			sort.Slice(ref, func(a, b int) bool { return ref[a] < ref[b] })
			want := ref[len(ref)/2]
			if got := m.Median(now); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEWMABounded: the average always stays within the observed range.
func TestEWMABounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		e := NewEWMA(0.3)
		lo, hi := float64(vals[0]), float64(vals[0])
		for _, v := range vals {
			fv := float64(v)
			if fv < lo {
				lo = fv
			}
			if fv > hi {
				hi = fv
			}
			e.Observe(fv)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
