// Package stats provides the measurement primitives NFVnice relies on:
// cycle-count histograms with percentile estimation (libnf's shared-memory
// service-time histogram), moving-window medians (the 100 ms estimator the
// NF manager uses), exponentially weighted moving averages (ECN queue-length
// tracking), rate meters, Jain's fairness index, and time-series recorders
// for the evaluation figures.
package stats

import (
	"math"
	"sort"

	"nfvnice/internal/simtime"
)

// Histogram counts samples in logarithmically spaced buckets, like the
// shared-memory histogram libnf maintains for packet processing times. The
// log spacing keeps the structure small while preserving relative precision
// across the 50..10000-cycle range the paper's NFs cover.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// bucketOf maps a value to a bucket index: bit length of the value, i.e.
// bucket k holds values in [2^(k-1), 2^k).
func bucketOf(v uint64) int {
	return 64 - leadingZeros(v)
}

// BucketOf exposes the log-bucket index function so other packages
// (internal/telemetry) can share the same bucket layout.
func BucketOf(v uint64) int { return bucketOf(v) }

// BucketUpper reports the largest value bucket i can hold — the inclusive
// ("le") upper bound used when exposing the histogram.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// HistogramSnapshot is a copyable view of a log-bucket histogram, shared
// with internal/telemetry for exposition.
type HistogramSnapshot struct {
	Count, Sum uint64
	Min, Max   uint64
	// Buckets[k] counts samples of bit length k (range [2^(k-1), 2^k)).
	Buckets [64]uint64
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Observe adds a sample.
func (h *Histogram) Observe(v uint64) {
	idx := bucketOf(v)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max report observed extremes (0 with no samples).
func (h *Histogram) Min() uint64 { return h.min }
func (h *Histogram) Max() uint64 { return h.max }

// Quantile estimates the q-th quantile (0..1) from the bucket midpoints.
// With log buckets the estimate is within a factor of two of the true value,
// which is ample for CPU-share computation.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1)
			hi := uint64(1) << i
			return (lo + hi) / 2
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Snapshot copies the histogram state for exposition. Not safe against a
// concurrent Observe; the simulator is single-threaded, so callers gather
// when the simulation is not being advanced.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: h.buckets,
	}
}

// MedianWindow estimates the median over a sliding window of the most recent
// samples — the NF manager's "median over a 100 ms moving window" estimator
// for per-packet processing time. It keeps raw samples (bounded) and evicts
// by age.
type MedianWindow struct {
	span    simtime.Cycles
	samples []timedSample
	scratch []uint64
}

type timedSample struct {
	at simtime.Cycles
	v  uint64
}

// NewMedianWindow returns a window covering span cycles of history.
func NewMedianWindow(span simtime.Cycles) *MedianWindow {
	return &MedianWindow{span: span}
}

// Observe records v at time now and evicts samples older than the span.
func (m *MedianWindow) Observe(now simtime.Cycles, v uint64) {
	m.samples = append(m.samples, timedSample{now, v})
	m.evict(now)
}

func (m *MedianWindow) evict(now simtime.Cycles) {
	cut := 0
	for cut < len(m.samples) && now-m.samples[cut].at > m.span {
		cut++
	}
	if cut > 0 {
		m.samples = append(m.samples[:0], m.samples[cut:]...)
	}
}

// Median reports the median of in-window samples, or 0 when empty.
func (m *MedianWindow) Median(now simtime.Cycles) uint64 {
	m.evict(now)
	n := len(m.samples)
	if n == 0 {
		return 0
	}
	m.scratch = m.scratch[:0]
	for _, s := range m.samples {
		m.scratch = append(m.scratch, s.v)
	}
	sort.Slice(m.scratch, func(i, j int) bool { return m.scratch[i] < m.scratch[j] })
	return m.scratch[n/2]
}

// Mean reports the mean of in-window samples (used by the estimator
// ablation), or 0 when empty.
func (m *MedianWindow) Mean(now simtime.Cycles) float64 {
	m.evict(now)
	if len(m.samples) == 0 {
		return 0
	}
	var sum uint64
	for _, s := range m.samples {
		sum += s.v
	}
	return float64(sum) / float64(len(m.samples))
}

// Len reports the number of in-window samples without evicting.
func (m *MedianWindow) Len() int { return len(m.samples) }

// EWMA is an exponentially weighted moving average, used for the ECN
// queue-length estimate (RFC 3168-style RED averaging).
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0,1]; larger
// alpha weights recent samples more.
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{alpha: alpha}
}

// Observe folds a sample into the average.
func (e *EWMA) Observe(v float64) {
	if !e.init {
		e.value = v
		e.init = true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value reports the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Jain computes Jain's fairness index over a set of allocations:
// (Σx)² / (n·Σx²). It is 1.0 when all values are equal and approaches 1/n
// under maximal unfairness. Zero-length or all-zero input reports 1 (a
// degenerate but conventionally "fair" outcome).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Meter counts events and converts windows of counts into rates. Experiments
// snapshot it once per simulated second to produce the paper's per-second
// series.
type Meter struct {
	total     uint64
	lastCount uint64
	lastAt    simtime.Cycles
}

// Add counts n events.
func (m *Meter) Add(n uint64) { m.total += n }

// Inc counts one event.
func (m *Meter) Inc() { m.total++ }

// Total reports the lifetime count.
func (m *Meter) Total() uint64 { return m.total }

// Snapshot reports the event rate since the previous Snapshot (or since the
// meter's creation) and starts a new window at now.
func (m *Meter) Snapshot(now simtime.Cycles) simtime.Rate {
	delta := m.total - m.lastCount
	elapsed := now - m.lastAt
	m.lastCount = m.total
	m.lastAt = now
	return simtime.PerSecond(delta, elapsed)
}

// Series records (time, value) points for plotting or row output.
type Series struct {
	Name   string
	Times  []simtime.Cycles
	Values []float64
}

// Record appends a point.
func (s *Series) Record(t simtime.Cycles, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Last reports the most recent value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// MeanOver reports the mean of values recorded in [from, to].
func (s *Series) MeanOver(from, to simtime.Cycles) float64 {
	var sum float64
	n := 0
	for i, t := range s.Times {
		if t >= from && t <= to {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MinMaxOver reports the extremes of values recorded in [from, to]; ok is
// false when no points fall in the range.
func (s *Series) MinMaxOver(from, to simtime.Cycles) (lo, hi float64, ok bool) {
	for i, t := range s.Times {
		if t < from || t > to {
			continue
		}
		v := s.Values[i]
		if !ok {
			lo, hi, ok = v, v, true
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, ok
}
