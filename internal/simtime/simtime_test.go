package simtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstants(t *testing.T) {
	if Microsecond != 2600 {
		t.Fatalf("Microsecond = %d cycles, want 2600 (2.6 GHz)", Microsecond)
	}
	if Millisecond != 2_600_000 {
		t.Fatalf("Millisecond = %d cycles, want 2.6M", Millisecond)
	}
	if Second != Frequency {
		t.Fatalf("Second = %d, want %d", Second, Frequency)
	}
}

func TestFromDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want Cycles
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Second, Second},
		{time.Millisecond, Millisecond},
		{time.Microsecond, Microsecond},
		{10 * time.Second, 10 * Second},
		{1500 * time.Millisecond, Second + Second/2},
	}
	for _, c := range cases {
		if got := FromDuration(c.d); got != c.want {
			t.Errorf("FromDuration(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	// Round-tripping through Duration must be exact at microsecond
	// granularity for durations up to an hour.
	f := func(us uint32) bool {
		d := time.Duration(us%3_600_000_000) * time.Microsecond
		c := FromDuration(d)
		return c.Duration() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeconds(t *testing.T) {
	if got := (Second / 2).Seconds(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half second = %v", got)
	}
}

func TestRateInterval(t *testing.T) {
	// 1 Mpps at 2.6 GHz means one packet every 2600 cycles.
	if got := Rate(1e6).Interval(); got != 2600 {
		t.Fatalf("1Mpps interval = %d, want 2600", got)
	}
	if got := Rate(0).Interval(); got != 0 {
		t.Fatalf("zero rate interval = %d, want 0", got)
	}
	if got := Rate(-5).Interval(); got != 0 {
		t.Fatalf("negative rate interval = %d, want 0", got)
	}
}

func TestPerSecond(t *testing.T) {
	if got := PerSecond(1_000_000, Second); got != 1e6 {
		t.Fatalf("PerSecond = %v, want 1e6", got)
	}
	if got := PerSecond(500, Second/2); got != 1000 {
		t.Fatalf("PerSecond = %v, want 1000", got)
	}
	if got := PerSecond(42, 0); got != 0 {
		t.Fatalf("PerSecond with zero elapsed = %v, want 0", got)
	}
}

func TestLineRate10G(t *testing.T) {
	// 64-byte frames on 10GbE: the canonical 14.88 Mpps.
	got := LineRate10G(64)
	if math.Abs(got.Mpps()-14.88) > 0.01 {
		t.Fatalf("64B line rate = %.3f Mpps, want 14.88", got.Mpps())
	}
	// 1024-byte frames: 10e9 / ((1024+24)*8) ≈ 1.19 Mpps.
	got = LineRate10G(1024)
	if math.Abs(got.Mpps()-1.197) > 0.01 {
		t.Fatalf("1024B line rate = %.3f Mpps, want ~1.19", got.Mpps())
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		c    Cycles
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{5 * Microsecond, "5.000µs"},
		{100, "100cyc"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.c), got, c.want)
		}
	}
}

func TestPropertyIntervalInvertsRate(t *testing.T) {
	// For rates that divide the clock evenly, Interval must be the exact
	// reciprocal in cycles.
	f := func(k uint8) bool {
		divisors := []Cycles{1, 2, 4, 5, 10, 100, 1000, 2600}
		d := divisors[int(k)%len(divisors)]
		r := Rate(float64(Frequency) / float64(d))
		return r.Interval() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
