// Package simtime defines the simulated clock used throughout the NFVnice
// simulator. Time is measured in CPU cycles of a fixed-frequency core,
// matching how the paper reports NF costs (cycles per packet). All
// conversions between cycles, wall durations, and packet rates live here so
// that the rest of the simulator never touches floating point time.
package simtime

import (
	"fmt"
	"time"
)

// Cycles is a point in simulated time, or a duration, measured in CPU clock
// cycles. The simulated platform clocks every core at Frequency, mirroring
// the paper's Xeon E5-2697 v3 @ 2.60 GHz testbed.
type Cycles uint64

// Frequency is the simulated core clock in cycles per second (2.6 GHz).
const Frequency = 2_600_000_000

// Common durations expressed in cycles.
const (
	Microsecond Cycles = Frequency / 1_000_000 // 2600 cycles
	Millisecond Cycles = Frequency / 1_000
	Second      Cycles = Frequency
)

// FromDuration converts a wall-clock duration to cycles, rounding down.
func FromDuration(d time.Duration) Cycles {
	if d <= 0 {
		return 0
	}
	// Split to avoid overflow for large durations: d.Seconds() loses
	// precision, so work in integer nanoseconds.
	ns := uint64(d.Nanoseconds())
	sec := ns / 1e9
	rem := ns % 1e9
	return Cycles(sec*Frequency + rem*Frequency/1e9)
}

// Duration converts cycles to a wall-clock duration, rounding down.
func (c Cycles) Duration() time.Duration {
	sec := uint64(c) / Frequency
	rem := uint64(c) % Frequency
	return time.Duration(sec)*time.Second + time.Duration(rem*1e9/Frequency)
}

// Seconds reports the cycle count as (fractional) seconds.
func (c Cycles) Seconds() float64 { return float64(c) / Frequency }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (c Cycles) String() string {
	switch {
	case c >= Second:
		return fmt.Sprintf("%.3fs", c.Seconds())
	case c >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(c)/float64(Millisecond))
	case c >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(c)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dcyc", uint64(c))
	}
}

// Rate is an event rate in events per second (e.g. packets per second).
type Rate float64

// Interval returns the cycle gap between events at rate r. A zero or
// negative rate returns 0, which callers must treat as "no events".
func (r Rate) Interval() Cycles {
	if r <= 0 {
		return 0
	}
	return Cycles(Frequency / float64(r))
}

// Mpps formats the rate in millions of packets per second.
func (r Rate) Mpps() float64 { return float64(r) / 1e6 }

// PerSecond converts a count observed over an elapsed number of cycles into
// an events-per-second rate. Zero elapsed time reports zero.
func PerSecond(count uint64, elapsed Cycles) Rate {
	if elapsed == 0 {
		return 0
	}
	return Rate(float64(count) / elapsed.Seconds())
}

// LineRate10G returns the packets-per-second line rate of a 10 Gbps link for
// a given Ethernet frame size in bytes (FCS included, as in MoonGen's "64
// byte packets"). It adds the 20 bytes of preamble, SFD, and inter-frame
// gap, so 64-byte frames yield the canonical 14.88 Mpps.
func LineRate10G(frameBytes int) Rate {
	const linkBits = 10_000_000_000
	wire := (frameBytes + 20) * 8 // preamble(7)+SFD(1)+IFG(12)
	return Rate(linkBits / float64(wire))
}
