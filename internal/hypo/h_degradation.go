package hypo

// H-Degradation: under 2-4x overload of one chain, the system degrades at
// the right place — the watermark backpressure machine throttles the
// overloaded chain and sheds its excess at chain entry (before work is
// invested), downstream drops stay near zero, and chains that are NOT
// overloaded keep their throughput: a paced victim workload completes
// losslessly while the aggressor is being shed. This is the paper's Fig. 8
// performance-isolation claim (cgroup weights + early drop).

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nfvnice/internal/dataplane"
)

func init() {
	Register(Experiment{
		Name:  "h-degradation",
		Title: "Graceful degradation and isolation under overload",
		Claim: "With one chain overdriven by 2-4 unpaced producers against an expensive NF, " +
			"backpressure sheds the excess at the aggressor's chain entry (EntryDrops, journaled " +
			"bp_on for that chain), accepted packets are not lost downstream (mid-chain drops " +
			"<= 1% of accepted, zero NF drops), and paced victim chains sharing the same core " +
			"deliver 100% of their packets within the run deadline.",
		Axes: []Axis{
			{Name: "overload", Values: []string{"2", "4"}},
			{Name: "movers", Values: []string{"1", "2"}},
		},
		Run: runDegradation,
	})
}

func runDegradation(ctx RunCtx) (Outcome, error) {
	producers, _ := strconv.Atoi(ctx.Params["overload"])
	movers, _ := strconv.Atoi(ctx.Params["movers"])
	const (
		nVictims     = 3
		victimFlows  = nVictims // flows 0..2 -> victim chains
		aggFlow      = nVictims // flow 3 -> aggressor chain
		inflightVict = 64
	)

	e := dataplane.New(dataplane.Config{
		RingSize: 256, BatchSize: 16, Movers: movers,
		WeightPeriod: 10 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		JitterSeed:   int64(ctx.Seed),
	})
	// Victim chains: three hops of negligible cost.
	victims := buildChains(e, nVictims, 3, func(chain, hop int) dataplane.Handler {
		return func(p *dataplane.Packet) {}
	})
	// Aggressor chain: a cheap entry hop feeding an expensive NF (~2 us of
	// busy work per packet) on the same core as the victims.
	aggEntry := e.AddStage("agg.entry", 1024, func(p *dataplane.Packet) {})
	aggWork := e.AddStage("agg.work", 1024, func(p *dataplane.Packet) {
		end := time.Now().Add(2 * time.Microsecond)
		for time.Now().Before(end) {
		}
	})
	aggChain, err := e.AddChain(aggEntry, aggWork)
	if err != nil {
		return Outcome{}, err
	}
	e.MapFlow(aggFlow, aggChain)

	// Per-chain delivery counts, taken in the sink.
	var mu sync.Mutex
	delivered := map[int]uint64{}
	e.SetSink(func(ps []*dataplane.Packet) {
		mu.Lock()
		for _, p := range ps {
			delivered[p.ChainID]++
		}
		mu.Unlock()
		e.PutPacketBatch(ps)
	})

	run := start(e)

	// Aggressor: `producers` goroutines blasting unpaced — offered load is
	// a multiple of what the expensive stage can drain, so the excess can
	// only be shed. Rejected packets are surrendered, not retried.
	var stopAgg atomic.Bool
	var aggWG sync.WaitGroup
	var aggOffered atomic.Uint64
	for i := 0; i < producers; i++ {
		aggWG.Add(1)
		go func() {
			defer aggWG.Done()
			for !stopAgg.Load() {
				p := e.GetPacket()
				p.FlowID = aggFlow
				p.Size = 64
				if !e.Inject(p) {
					e.PutPacket(p)
				}
				aggOffered.Add(1)
			}
		}()
	}

	// Victim: one paced producer pushing a fixed workload through the
	// victim chains while the aggressor rages. Pacing caps the victims'
	// own in-flight population (injected minus delivered, from the sink
	// counts) well below the rings, so the victim load is admissible by
	// construction — any victim loss is an isolation failure, not
	// self-inflicted overload.
	victimTotal := ctx.N(12000)
	deadline := time.Now().Add(180 * time.Second)
	victimInFlight := func(sent int) int {
		mu.Lock()
		var d uint64
		for _, ch := range victims {
			d += delivered[ch]
		}
		mu.Unlock()
		return sent - int(d)
	}
	victimStart := time.Now()
	victimDone := true
	for sent := 0; sent < victimTotal; {
		if time.Now().After(deadline) {
			victimDone = false
			break
		}
		if victimInFlight(sent) >= inflightVict {
			time.Sleep(20 * time.Microsecond)
			continue
		}
		p := e.GetPacket()
		p.FlowID = sent % victimFlows
		p.Size = 64
		if e.Inject(p) {
			sent++
		} else {
			e.PutPacket(p)
			time.Sleep(100 * time.Microsecond)
		}
	}
	victimElapsed := time.Since(victimStart)

	stopAgg.Store(true)
	aggWG.Wait()
	settled := waitSettled(e, 60*time.Second)
	if err := run.stop(30 * time.Second); err != nil {
		return Outcome{}, err
	}

	l := e.LedgerSnapshot()
	bpOnAgg := journalCount(e, func(d dataplane.Decision) bool {
		return d.Kind == dataplane.DecisionBPOn && d.Chain == aggChain
	})
	mu.Lock()
	var victimDelivered uint64
	for _, ch := range victims {
		victimDelivered += delivered[ch]
	}
	aggDelivered := delivered[aggChain]
	mu.Unlock()

	checks := []Check{
		check("victim_completes", victimDone,
			"victim workload (%d pkts) did not finish before the deadline (elapsed=%v)",
			victimTotal, victimElapsed),
		check("settles", settled, "residual never reached zero: %+v", l),
		check("ledger_closes", l.Residual() == 0, "residual=%d ledger=%+v", l.Residual(), l),
		check("sheds_at_entry", l.EntryDrops > 0 && l.ThrottleEvents > 0,
			"no entry shedding under %dx overload: entryDrops=%d throttleEvents=%d",
			producers, l.EntryDrops, l.ThrottleEvents),
		check("bp_journaled", bpOnAgg > 0,
			"no bp_on decisions journaled for the aggressor chain %d", aggChain),
		check("downstream_protected",
			l.NFDrops == 0 && l.MidRingDrops*100 <= l.Injected,
			"downstream loss: midRingDrops=%d (%.2f%% of %d injected) nfDrops=%d",
			l.MidRingDrops, 100*float64(l.MidRingDrops)/float64(l.Injected), l.Injected, l.NFDrops),
		check("victim_no_loss", victimDelivered == uint64(victimTotal),
			"victim delivered %d of %d", victimDelivered, victimTotal),
	}
	return Outcome{
		Checks: checks,
		Observed: map[string]uint64{
			"injected":          l.Injected,
			"entry_drops":       l.EntryDrops,
			"throttle_events":   l.ThrottleEvents,
			"mid_ring_drops":    l.MidRingDrops,
			"aggressor_offered": aggOffered.Load(),
			"aggressor_done":    aggDelivered,
			"victim_delivered":  victimDelivered,
			"victim_ms":         uint64(victimElapsed.Milliseconds()),
			"bp_on_aggressor":   uint64(bpOnAgg),
		},
	}, nil
}
