package hypo

// Shared engine-driving plumbing for the experiments: chain topology
// builders, paced injection, quiescence waits, and journal queries. The
// experiments drive the real internal/dataplane engine — no simulation.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"nfvnice/internal/dataplane"
)

// engineRun wraps a running engine with its shutdown plumbing.
type engineRun struct {
	e      *dataplane.Engine
	cancel context.CancelFunc
	done   chan struct{}
}

// start launches Run on a fresh goroutine.
func start(e *dataplane.Engine) *engineRun {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	return &engineRun{e: e, cancel: cancel, done: done}
}

// stop cancels Run and waits for it to return (bounded).
func (r *engineRun) stop(timeout time.Duration) error {
	r.cancel()
	select {
	case <-r.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("hypo: Run did not return within %v", timeout)
	}
}

// buildChains adds n linear chains of hops stages each and maps flow i to
// chain i. handler(chain, hop) supplies each stage's handler. Returns the
// chain ids.
func buildChains(e *dataplane.Engine, n, hops int, handler func(chain, hop int) dataplane.Handler) []int {
	chains := make([]int, n)
	for c := 0; c < n; c++ {
		ids := make([]int, hops)
		for h := 0; h < hops; h++ {
			ids[h] = e.AddStage(fmt.Sprintf("c%d.s%d", c, h), 1024, handler(c, h))
		}
		ch, err := e.AddChain(ids...)
		if err != nil {
			panic(err)
		}
		e.MapFlow(c, ch)
		chains[c] = ch
	}
	return chains
}

// injectPaced pushes total packets round-robin across flows, keeping the
// accepted-but-unaccounted population at or below inflight (admissible
// load: queues stay bounded by construction). Rejected injects are retried
// until accepted. Returns false if the deadline passes first.
func injectPaced(e *dataplane.Engine, flows, total, inflight int, deadline time.Time) bool {
	sent := 0
	for sent < total {
		if time.Now().After(deadline) {
			return false
		}
		if l := e.LedgerSnapshot(); l.Residual() >= int64(inflight) {
			runtime.Gosched()
			continue
		}
		p := e.GetPacket()
		p.FlowID = sent % flows
		p.Size = 64
		if e.Inject(p) {
			sent++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	return true
}

// waitSettled polls until the ledger residual reaches zero (the pipeline
// has accounted every accepted packet) or the deadline passes.
func waitSettled(e *dataplane.Engine, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e.LedgerSnapshot().Residual() == 0 {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// journalCount counts journal records matching pred (0 when the journal is
// disabled).
func journalCount(e *dataplane.Engine, pred func(dataplane.Decision) bool) int {
	j := e.Decisions()
	if j == nil {
		return 0
	}
	return len(j.Filter(0, pred))
}

// depthSampler polls every stage's queue depth in the background and tracks
// the global maximum. Stop it before reading Max.
type depthSampler struct {
	e    *dataplane.Engine
	stop chan struct{}
	done chan struct{}
	max  int
}

func sampleDepths(e *dataplane.Engine) *depthSampler {
	s := &depthSampler{e: e, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var buf []int
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(500 * time.Microsecond):
			}
			buf = s.e.QueueDepths(buf)
			for _, d := range buf {
				if d > s.max {
					s.max = d
				}
			}
		}
	}()
	return s
}

func (s *depthSampler) Stop() int {
	close(s.stop)
	<-s.done
	return s.max
}

// check builds a passing or failing Check; detail is only attached on
// failure (canonical output stays byte-stable across passing runs).
func check(name string, pass bool, detailFmt string, args ...any) Check {
	c := Check{Name: name, Pass: pass}
	if !pass {
		c.Detail = fmt.Sprintf(detailFmt, args...)
	}
	return c
}

// mix is splitmix64 (same finalizer internal/faults uses), for deriving
// per-chain injector seeds from the run seed.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
