package hypo

// H-Liveness: under admissible load (offered rate held below capacity by an
// in-flight cap, rho < 0.9), every admitted packet is eventually delivered,
// no accepted packet is lost to any drop class, and queue occupancy stays
// bounded by the in-flight population — across mover counts, chain counts,
// and watermark settings. This is the baseline form of the paper's §3.2
// claim: backpressure at admissible load is quiescent, not lossy.

import (
	"strconv"
	"time"

	"nfvnice/internal/dataplane"
)

func init() {
	Register(Experiment{
		Name:  "h-liveness",
		Title: "Liveness under admissible load",
		Claim: "With offered load paced below capacity (in-flight cap 128 << ring 512, rho < 0.9), " +
			"every admitted packet is delivered: the ledger closes with zero mid-chain, fault, " +
			"NF, and shutdown drops, and no stage queue ever exceeds the in-flight population — " +
			"for movers in {1,4}, chains in {4,16}, and watermarks in {default 0.80/0.60, tight 0.50/0.30}.",
		Axes: []Axis{
			{Name: "movers", Values: []string{"1", "4"}},
			{Name: "chains", Values: []string{"4", "16"}},
			{Name: "watermarks", Values: []string{"default", "tight"}},
		},
		Run: runLiveness,
	})
}

func runLiveness(ctx RunCtx) (Outcome, error) {
	movers, _ := strconv.Atoi(ctx.Params["movers"])
	chains, _ := strconv.Atoi(ctx.Params["chains"])
	high, low := 0.80, 0.60
	if ctx.Params["watermarks"] == "tight" {
		high, low = 0.50, 0.30
	}

	const inflight = 128
	e := dataplane.New(dataplane.Config{
		RingSize: 512, BatchSize: 16, Movers: movers,
		HighFrac: high, LowFrac: low,
		WeightPeriod: 10 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		JitterSeed:   int64(ctx.Seed),
	})
	buildChains(e, chains, 3, func(chain, hop int) dataplane.Handler {
		return func(p *dataplane.Packet) {}
	})
	e.SetSink(e.PutPacketBatch)

	run := start(e)
	sampler := sampleDepths(e)

	total := ctx.N(2500 * chains)
	deadline := time.Now().Add(120 * time.Second)
	injected := injectPaced(e, chains, total, inflight, deadline)
	settled := injected && waitSettled(e, 60*time.Second)
	maxDepth := sampler.Stop()
	if err := run.stop(30 * time.Second); err != nil {
		return Outcome{}, err
	}

	l := e.LedgerSnapshot()
	checks := []Check{
		check("admits_full_load", injected,
			"injection did not complete %d packets before the deadline (injected=%d)", total, l.Injected),
		check("settles", settled, "residual never reached zero: %+v", l),
		check("ledger_closes", l.Residual() == 0, "residual=%d ledger=%+v", l.Residual(), l),
		check("all_delivered", l.Delivered == uint64(total),
			"delivered=%d want=%d ledger=%+v", l.Delivered, total, l),
		check("no_accepted_loss",
			l.MidRingDrops == 0 && l.NFDrops == 0 && l.FaultDrops == 0 &&
				l.ShutdownDrops == 0 && l.LateDrops == 0,
			"accepted packets lost: mid=%d nf=%d fault=%d shutdown=%d late=%d",
			l.MidRingDrops, l.NFDrops, l.FaultDrops, l.ShutdownDrops, l.LateDrops),
		check("queues_bounded", maxDepth <= inflight,
			"max sampled queue depth %d exceeds the in-flight cap %d", maxDepth, inflight),
	}
	return Outcome{
		Checks: checks,
		Observed: map[string]uint64{
			"injected":        l.Injected,
			"delivered":       l.Delivered,
			"entry_drops":     l.EntryDrops,
			"throttle_events": l.ThrottleEvents,
			"max_queue_depth": uint64(maxDepth),
		},
	}, nil
}
