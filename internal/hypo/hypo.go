// Package hypo is the hypothesis-driven invariant harness: each system
// invariant (liveness, conservation, FIFO, overload degradation) is encoded
// as a seeded, multi-round, multi-config experiment over the live
// internal/dataplane engine, with a recorded verdict. The pattern follows
// the hypotheses/<name>/FINDINGS.md experiment-ledger methodology: a
// hypothesis is Confirmed only when every invariant check passes in every
// round of every configuration for every seed; a check that fails
// everywhere Refutes it; a check that fails intermittently marks it Flaky.
//
// Experiments are registered at init time (h_*.go) and run by cmd/nfvhypo.
// Everything a run executes is a pure function of (config, seed, scale):
// fault schedules come from internal/faults seeded injectors and are
// exported as replayable plans in the result set, so a verdict can be
// reproduced byte-for-byte from the manifest alone.
package hypo

import (
	"fmt"
	"sort"

	"nfvnice/internal/faults"
)

// Verdict is the outcome of a hypothesis (or of one check aggregated across
// all runs).
type Verdict string

const (
	// Confirmed: the invariant held in every run.
	Confirmed Verdict = "confirmed"
	// Refuted: the invariant failed in every run (a systematic violation).
	Refuted Verdict = "refuted"
	// Flaky: the invariant failed in some runs but not others.
	Flaky Verdict = "flaky"
)

// Axis is one dimension of an experiment's configuration matrix.
type Axis struct {
	Name   string
	Values []string
}

// Params is one point of the expanded matrix: axis name -> chosen value.
// (encoding/json marshals map keys sorted, so Params serialize
// deterministically.)
type Params map[string]string

// Check is one invariant verified against a single run. Detail is only
// populated when the check fails — passing checks must serialize
// identically across runs so result sets are byte-reproducible.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// Outcome is what one experiment run reports back to the runner.
type Outcome struct {
	Checks []Check
	// FaultPlans are the replayable manifests of every seeded injector the
	// run wired in (exported over a fixed horizon, so they are a function
	// of the seed alone).
	FaultPlans []faults.Plan
	// Observed carries non-deterministic measured counters (delivered
	// totals, drop classes, queue maxima). Stripped from canonical output;
	// kept under the CLI's -observed flag.
	Observed map[string]uint64
}

// RunCtx is the input to one experiment run.
type RunCtx struct {
	Params Params
	Seed   uint64
	// Scale multiplies workload sizes (chains, packet totals); 1.0 is the
	// ledger scale, smoke jobs run smaller.
	Scale float64
	// Logf reports progress to the operator (stderr); never nil.
	Logf func(format string, args ...any)
}

// N scales a workload count, never below 1.
func (c RunCtx) N(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// Experiment is a registered hypothesis: a claim, a config matrix, and a
// run function that drives the engine and checks the invariant.
type Experiment struct {
	// Name is the ledger slug, e.g. "h-conservation".
	Name string
	// Title is the one-line human name.
	Title string
	// Claim is the falsifiable statement the experiment tests.
	Claim string
	// Axes span the configuration matrix (expanded as a cartesian
	// product, first axis slowest).
	Axes []Axis
	// Run executes one (config, seed) point and reports the checks.
	Run func(RunCtx) (Outcome, error)
}

var registry = map[string]Experiment{}

// Register adds an experiment; called from init in h_*.go.
func Register(e Experiment) {
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("hypo: duplicate experiment %q", e.Name))
	}
	registry[e.Name] = e
}

// Get looks an experiment up by name.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names lists the registered experiments, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExpandMatrix produces the cartesian product of the axes in deterministic
// order (first axis varies slowest). No axes yields one empty config.
func ExpandMatrix(axes []Axis) []Params {
	configs := []Params{{}}
	for _, ax := range axes {
		next := make([]Params, 0, len(configs)*len(ax.Values))
		for _, base := range configs {
			for _, v := range ax.Values {
				p := make(Params, len(base)+1)
				for k, bv := range base {
					p[k] = bv
				}
				p[ax.Name] = v
				next = append(next, p)
			}
		}
		configs = next
	}
	return configs
}
