package hypo

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nfvnice/internal/faults"
)

func TestExpandMatrix(t *testing.T) {
	got := ExpandMatrix([]Axis{
		{Name: "a", Values: []string{"1", "2"}},
		{Name: "b", Values: []string{"x", "y", "z"}},
	})
	if len(got) != 6 {
		t.Fatalf("want 6 configs, got %d", len(got))
	}
	// First axis varies slowest.
	want := []Params{
		{"a": "1", "b": "x"}, {"a": "1", "b": "y"}, {"a": "1", "b": "z"},
		{"a": "2", "b": "x"}, {"a": "2", "b": "y"}, {"a": "2", "b": "z"},
	}
	for i, w := range want {
		for k, v := range w {
			if got[i][k] != v {
				t.Fatalf("config %d: want %v got %v", i, w, got[i])
			}
		}
	}
	if n := len(ExpandMatrix(nil)); n != 1 {
		t.Fatalf("no axes should yield one empty config, got %d", n)
	}
}

func TestAggregateVerdicts(t *testing.T) {
	run := func(pairs ...any) RunResult {
		var rr RunResult
		for i := 0; i < len(pairs); i += 2 {
			rr.Checks = append(rr.Checks, Check{Name: pairs[i].(string), Pass: pairs[i+1].(bool)})
		}
		return rr
	}
	cases := []struct {
		name    string
		runs    []RunResult
		overall Verdict
		checks  map[string]Verdict
	}{
		{"all pass", []RunResult{run("a", true), run("a", true)},
			Confirmed, map[string]Verdict{"a": Confirmed}},
		{"all fail", []RunResult{run("a", false), run("a", false)},
			Refuted, map[string]Verdict{"a": Refuted}},
		{"mixed is flaky", []RunResult{run("a", true), run("a", false)},
			Flaky, map[string]Verdict{"a": Flaky}},
		{"any refuted dominates", []RunResult{run("a", true, "b", false), run("a", false, "b", false)},
			Refuted, map[string]Verdict{"a": Flaky, "b": Refuted}},
		{"no checks refutes", nil, Refuted, map[string]Verdict{}},
	}
	for _, tc := range cases {
		verdicts, overall := aggregate(tc.runs)
		if overall != tc.overall {
			t.Errorf("%s: overall want %s got %s", tc.name, tc.overall, overall)
		}
		if len(verdicts) != len(tc.checks) {
			t.Errorf("%s: verdicts want %v got %v", tc.name, tc.checks, verdicts)
			continue
		}
		for k, v := range tc.checks {
			if verdicts[k] != v {
				t.Errorf("%s: check %s want %s got %s", tc.name, k, v, verdicts[k])
			}
		}
	}
}

func TestRunnerOrderAndDefaults(t *testing.T) {
	var trace []string
	exp := Experiment{
		Name:  "t-order",
		Title: "ordering probe",
		Claim: "runs execute configs, then seeds, then rounds",
		Axes:  []Axis{{Name: "v", Values: []string{"p", "q"}}},
		Run: func(ctx RunCtx) (Outcome, error) {
			trace = append(trace, fmt.Sprintf("%s/%d", ctx.Params["v"], ctx.Seed))
			return Outcome{Checks: []Check{{Name: "ok", Pass: true}}}, nil
		},
	}
	res, err := Run(exp, Options{Rounds: 2, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"p/1", "p/1", "p/2", "p/2", "q/1", "q/1", "q/2", "q/2"}
	if strings.Join(trace, " ") != strings.Join(want, " ") {
		t.Fatalf("execution order: want %v got %v", want, trace)
	}
	if res.Verdict != Confirmed || len(res.Runs) != 8 {
		t.Fatalf("want confirmed over 8 runs, got %s over %d", res.Verdict, len(res.Runs))
	}
	// Defaults: 1 round, seed 42, scale 1.0.
	res, err = Run(exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || len(res.Seeds) != 1 || res.Seeds[0] != 42 || res.Scale != 1.0 {
		t.Fatalf("defaults not applied: %+v", res)
	}
}

func TestRunnerPlansOnRoundOneOnly(t *testing.T) {
	inj := faults.New(7, faults.DropOn(faults.EveryNth(10)))
	plan, err := inj.ExportPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	exp := Experiment{
		Name: "t-plans", Title: "plans probe", Claim: "plans ride round 1",
		Run: func(ctx RunCtx) (Outcome, error) {
			return Outcome{
				Checks:     []Check{{Name: "ok", Pass: true}},
				FaultPlans: []faults.Plan{plan},
			}, nil
		},
	}
	res, err := Run(exp, Options{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Runs {
		if r.Round == 1 && len(r.FaultPlans) != 1 {
			t.Fatalf("round 1 lost its plan: %+v", r)
		}
		if r.Round > 1 && len(r.FaultPlans) != 0 {
			t.Fatalf("round %d should not carry plans", r.Round)
		}
	}
}

// TestCanonicalJSONDeterministic runs the same synthetic experiment twice —
// with Observed counters that differ between executions — and requires the
// canonical (non-observed) output to be byte-identical, while -observed
// output differs.
func TestCanonicalJSONDeterministic(t *testing.T) {
	mk := func(noise uint64) Result {
		exp := Experiment{
			Name: "t-canon", Title: "canonical probe", Claim: "bytes reproduce",
			Axes: []Axis{{Name: "k", Values: []string{"a", "b"}}},
			Run: func(ctx RunCtx) (Outcome, error) {
				return Outcome{
					Checks:   []Check{{Name: "ok", Pass: true}},
					Observed: map[string]uint64{"noise": noise},
				}, nil
			},
		}
		res, err := Run(exp, Options{Rounds: 2, Seeds: []uint64{1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := mk(111), mk(999)
	c1, err := CanonicalJSON(r1, false)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CanonicalJSON(r2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonical output not byte-identical:\n%s\n---\n%s", c1, c2)
	}
	o1, err := CanonicalJSON(r1, true)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := CanonicalJSON(r2, true)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(o1, o2) {
		t.Fatal("-observed output should differ when counters differ")
	}
	if !strings.Contains(string(o1), "observed") || strings.Contains(string(c1), "observed") {
		t.Fatal("observed block present/absent in the wrong outputs")
	}
}

func TestMarkdownReport(t *testing.T) {
	exp := Experiment{
		Name: "t-md", Title: "markdown probe", Claim: "the claim text",
		Axes: []Axis{{Name: "k", Values: []string{"a"}}},
		Run: func(ctx RunCtx) (Outcome, error) {
			return Outcome{Checks: []Check{
				{Name: "good", Pass: true},
				{Name: "bad", Pass: false, Detail: "it broke"},
			}}, nil
		},
	}
	res, err := Run(exp, Options{Seeds: []uint64{5}})
	if err != nil {
		t.Fatal(err)
	}
	md := Markdown(res)
	for _, want := range []string{
		"## Result: REFUTED", "the claim text", "1 configs x 1 seeds x 1 rounds",
		"| bad | refuted |", "| good | confirmed |", "it broke",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestRegisteredHypothesesSmoke executes every registered hypothesis at a
// small scale with one seed and requires a Confirmed verdict — the same
// invariants the ledgers record, compressed for CI. Scale 0.25 is the floor
// at which every seeded fault trigger (EveryNth(1500) panics, After(500)
// circuit-building crashes) still fires within the shrunken workload.
func TestRegisteredHypothesesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-engine smoke; skipped in -short")
	}
	names := Names()
	if len(names) != 5 {
		t.Fatalf("expected 5 registered hypotheses, got %v", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			e, ok := Get(name)
			if !ok {
				t.Fatalf("Get(%q) failed", name)
			}
			res, err := Run(e, Options{Rounds: 1, Seeds: []uint64{42}, Scale: 0.25, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Confirmed {
				for _, r := range res.Runs {
					for _, c := range r.Checks {
						if !c.Pass {
							t.Errorf("config=%v seed=%d round=%d %s: %s",
								r.Config, r.Seed, r.Round, c.Name, c.Detail)
						}
					}
				}
				t.Fatalf("verdict %s, want confirmed", res.Verdict)
			}
		})
	}
}
