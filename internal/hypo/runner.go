package hypo

import (
	"fmt"

	"nfvnice/internal/faults"
)

// Options tunes a hypothesis run.
type Options struct {
	// Rounds repeats every (config, seed) point to expose scheduling
	// flakiness; the fault schedule is identical across rounds (it is a
	// function of the seed), the goroutine interleavings are not.
	Rounds int
	// Seeds are the fault/jitter seeds; each (config, seed) pair is an
	// independent experiment point.
	Seeds []uint64
	// Scale multiplies workload sizes (1.0 = ledger scale).
	Scale float64
	// Logf reports progress (nil discards).
	Logf func(format string, args ...any)
}

// RunResult is one executed (config, seed, round) point.
type RunResult struct {
	Config Params  `json:"config"`
	Seed   uint64  `json:"seed"`
	Round  int     `json:"round"`
	Pass   bool    `json:"pass"`
	Checks []Check `json:"checks"`
	// FaultPlans are the replayable injector manifests for this point
	// (identical across rounds of the same seed).
	FaultPlans []faults.Plan `json:"fault_plans,omitempty"`
	// Observed is stripped from canonical output (see report.go).
	Observed map[string]uint64 `json:"observed,omitempty"`
}

// Result is the full outcome of a hypothesis: every run plus the per-check
// and overall verdicts.
type Result struct {
	Hypothesis string      `json:"hypothesis"`
	Title      string      `json:"title"`
	Claim      string      `json:"claim"`
	Scale      float64     `json:"scale"`
	Rounds     int         `json:"rounds"`
	Seeds      []uint64    `json:"seeds"`
	Configs    []Params    `json:"configs"`
	Runs       []RunResult `json:"runs"`
	// CheckVerdicts aggregates each named check across all runs:
	// confirmed (always passed), refuted (always failed), flaky (mixed).
	CheckVerdicts map[string]Verdict `json:"check_verdicts"`
	Verdict       Verdict            `json:"verdict"`
}

// Run executes the experiment across its full matrix × seeds × rounds and
// aggregates the verdict. Execution order is deterministic: configs in
// matrix order, then seeds, then rounds.
func Run(e Experiment, opt Options) (Result, error) {
	if opt.Rounds <= 0 {
		opt.Rounds = 1
	}
	if len(opt.Seeds) == 0 {
		opt.Seeds = []uint64{42}
	}
	if opt.Scale <= 0 {
		opt.Scale = 1.0
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	res := Result{
		Hypothesis: e.Name,
		Title:      e.Title,
		Claim:      e.Claim,
		Scale:      opt.Scale,
		Rounds:     opt.Rounds,
		Seeds:      opt.Seeds,
		Configs:    ExpandMatrix(e.Axes),
	}
	total := len(res.Configs) * len(opt.Seeds) * opt.Rounds
	n := 0
	for _, cfg := range res.Configs {
		for _, seed := range opt.Seeds {
			for round := 1; round <= opt.Rounds; round++ {
				n++
				logf("%s: run %d/%d config=%v seed=%d round=%d",
					e.Name, n, total, cfg, seed, round)
				out, err := e.Run(RunCtx{Params: cfg, Seed: seed, Scale: opt.Scale, Logf: logf})
				if err != nil {
					return Result{}, fmt.Errorf("hypo: %s config=%v seed=%d round=%d: %w",
						e.Name, cfg, seed, round, err)
				}
				rr := RunResult{
					Config: cfg, Seed: seed, Round: round,
					Pass: true, Checks: out.Checks,
					Observed: out.Observed,
				}
				// Plans are a function of the seed alone; carrying them on
				// round 1 only keeps the result set compact without losing
				// information.
				if round == 1 {
					rr.FaultPlans = out.FaultPlans
				}
				for _, c := range out.Checks {
					if !c.Pass {
						rr.Pass = false
						logf("%s: FAIL %s: %s", e.Name, c.Name, c.Detail)
					}
				}
				res.Runs = append(res.Runs, rr)
			}
		}
	}
	res.CheckVerdicts, res.Verdict = aggregate(res.Runs)
	return res, nil
}

// aggregate folds per-run check outcomes into verdicts. A check missing
// from some runs is judged only over the runs that report it.
func aggregate(runs []RunResult) (map[string]Verdict, Verdict) {
	passes := map[string]int{}
	fails := map[string]int{}
	for _, r := range runs {
		for _, c := range r.Checks {
			if c.Pass {
				passes[c.Name]++
			} else {
				fails[c.Name]++
			}
		}
	}
	verdicts := make(map[string]Verdict, len(passes)+len(fails))
	for name := range passes {
		if fails[name] == 0 {
			verdicts[name] = Confirmed
		} else {
			verdicts[name] = Flaky
		}
	}
	for name := range fails {
		if passes[name] == 0 {
			verdicts[name] = Refuted
		}
	}
	overall := Confirmed
	for _, v := range verdicts {
		if v == Refuted {
			return verdicts, Refuted
		}
		if v == Flaky {
			overall = Flaky
		}
	}
	if len(verdicts) == 0 {
		overall = Refuted // an experiment that checked nothing proves nothing
	}
	return verdicts, overall
}
