package hypo

// H-Conservation: the packet ledger closes exactly — Injected equals the
// sum of Delivered plus every post-acceptance drop class (including the
// Remote* transport classes) — through seeded panics, stalls, wedges, NF
// drops, and wire kill/heal/partition cycles on remote links. Conservation
// is the engine's strongest safety property: a packet is never lost without
// being charged to exactly one cause.

import (
	"fmt"
	"runtime"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/faults"
	"nfvnice/internal/remote"
)

func init() {
	Register(Experiment{
		Name:  "h-conservation",
		Title: "Exact ledger closure through faults",
		Claim: "Injected == Delivered + MidRingDrops + OutputDrops + NFDrops + FaultDrops + " +
			"ShutdownDrops + RemoteDelivered + RemoteDrops holds exactly after shutdown, through " +
			"seeded handler panics, sub- and super-grant-deadline stalls, probabilistic NF drops, " +
			"supervised restarts under FailClosed and FailOpen policies, and — for cross-host " +
			"chains — TCP connection kills and timed partitions with reconnect/retransmit " +
			"(exactly-once delivery at the peer).",
		Axes: []Axis{
			{Name: "scenario", Values: []string{
				"local-fc-m1", "local-fc-m2", "local-fo-m2",
				"remote-kill", "remote-kill-partition",
			}},
		},
		Run: runConservation,
	})
}

func runConservation(ctx RunCtx) (Outcome, error) {
	switch ctx.Params["scenario"] {
	case "local-fc-m1":
		return conservationLocal(ctx, 1, dataplane.FailClosed)
	case "local-fc-m2":
		return conservationLocal(ctx, 2, dataplane.FailClosed)
	case "local-fo-m2":
		return conservationLocal(ctx, 2, dataplane.FailOpen)
	case "remote-kill":
		return conservationRemote(ctx, false)
	case "remote-kill-partition":
		return conservationRemote(ctx, true)
	default:
		return Outcome{}, fmt.Errorf("unknown scenario %q", ctx.Params["scenario"])
	}
}

// conservationFaultRules is the per-chain fault envelope: a panic roughly
// every 1500 wrapped calls, a short stall (absorbed within the grant
// deadline), one long stall (exceeds the deadline — exercises wedge
// detachment and FaultDrops), and probabilistic NF drops.
func conservationFaultRules() []faults.Rule {
	return []faults.Rule{
		faults.PanicOn(faults.EveryNth(1500), "hypo: injected panic"),
		faults.StallOn(faults.EveryNth(2100), 2*time.Millisecond),
		faults.StallOn(faults.OnceAt(777), 120*time.Millisecond),
		faults.DropOn(faults.Prob(0.005)),
	}
}

func conservationLocal(ctx RunCtx, movers int, policy dataplane.FailPolicy) (Outcome, error) {
	const nChains = 8
	e := dataplane.New(dataplane.Config{
		RingSize: 256, BatchSize: 16, Movers: movers,
		WeightPeriod:   10 * time.Millisecond,
		GrantTimeout:   50 * time.Millisecond,
		DrainTimeout:   time.Second,
		RestartBackoff: time.Millisecond, MaxRestarts: -1,
		JitterSeed: int64(ctx.Seed),
	})
	// One injector per chain, wrapped around hops 1 and 2 (the entry hop
	// stays clean so pre-acceptance behavior is undisturbed). The injector
	// seed derives from (run seed, chain), so the whole envelope replays
	// from the run seed.
	injectors := make([]*faults.Injector, nChains)
	for c := 0; c < nChains; c++ {
		injectors[c] = faults.New(mix(ctx.Seed^uint64(c)), conservationFaultRules()...)
	}
	chains := buildChains(e, nChains, 3, func(chain, hop int) dataplane.Handler {
		fn := func(p *dataplane.Packet) {}
		if hop == 0 {
			return fn
		}
		return faults.Wrap(injectors[chain], fn)
	})
	for _, ch := range chains {
		e.SetChainPolicy(ch, policy)
	}
	e.SetSink(e.PutPacketBatch)
	defer func() {
		for _, in := range injectors {
			in.Release()
		}
	}()

	run := start(e)
	total := ctx.N(3000 * nChains)
	deadline := time.Now().Add(180 * time.Second)
	injected := injectPaced(e, nChains, total, 384, deadline)
	settled := injected && waitSettled(e, 60*time.Second)
	if err := run.stop(30 * time.Second); err != nil {
		return Outcome{}, err
	}

	l := e.LedgerSnapshot()
	restarts := journalCount(e, func(d dataplane.Decision) bool {
		return d.Kind == dataplane.DecisionRestart
	})
	checks := []Check{
		check("admits_full_load", injected, "injection stalled (injected=%d want=%d)", l.Injected, total),
		check("settles", settled, "residual never reached zero: %+v", l),
		check("ledger_closes", l.Residual() == 0, "residual=%d ledger=%+v", l.Residual(), l),
		check("faults_exercised", restarts > 0 && l.NFDrops > 0,
			"fault envelope idle: restarts=%d nf_drops=%d", restarts, l.NFDrops),
		check("restarts_journaled", restarts > 0, "no restart decisions journaled"),
	}
	// The chain-0 plan stands for the set: chains c > 0 use seed
	// mix(seed^c) with identical rules.
	plan, err := injectors[0].ExportPlan(8192)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Checks:     checks,
		FaultPlans: []faults.Plan{plan},
		Observed: map[string]uint64{
			"injected":    l.Injected,
			"delivered":   l.Delivered,
			"nf_drops":    l.NFDrops,
			"fault_drops": l.FaultDrops,
			"mid_drops":   l.MidRingDrops,
			"restarts":    uint64(restarts),
		},
	}, nil
}

func conservationRemote(ctx RunCtx, partition bool) (Outcome, error) {
	// Downstream engine B: one local sink stage fed by the wire.
	b := dataplane.New(dataplane.Config{
		RingSize: 4096, WeightPeriod: 0, DrainTimeout: time.Second,
		JitterSeed: int64(ctx.Seed),
	})
	bs := b.AddStage("sink", 1024, func(p *dataplane.Packet) {})
	bch, err := b.AddChain(bs)
	if err != nil {
		return Outcome{}, err
	}
	b.MapFlow(1, bch)
	b.SetSink(b.PutPacketBatch)
	brun := start(b)

	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: b.RemoteIngress(),
		ECN:     b.CongestionSignal(),
	})
	if err != nil {
		return Outcome{}, err
	}

	// Seeded wire faults: kill the connection every 60 writes; the
	// partition variant also opens a 40 ms two-sided outage at write 80.
	rules := []faults.WireRule{faults.ConnDropOn(faults.EveryNth(60))}
	if partition {
		rules = append(rules, faults.PartitionFor(faults.OnceAt(80), 40*time.Millisecond))
	}
	wire := faults.NewWire(ctx.Seed, rules...)

	// Upstream engine A: local stamp stage, then the remote uplink.
	a := dataplane.New(dataplane.Config{
		RingSize: 512, BatchSize: 16, Movers: 2, WeightPeriod: 0,
		DrainTimeout: 2 * time.Second,
		JitterSeed:   int64(ctx.Seed),
	})
	as := a.AddStage("stamp", 1024, func(p *dataplane.Packet) {})
	up := a.AddRemoteStage("uplink", 1024, dataplane.RemoteConfig{
		Addr:       srv.Addr(),
		Window:     8,
		FrameBatch: 16,
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
		MaxDials:   -1, // the schedule heals; keep dialing
		Seed:       int64(ctx.Seed),
		Dial:       wire.Dial(nil),
	})
	ach, err := a.AddChain(as, up)
	if err != nil {
		return Outcome{}, err
	}
	a.MapFlow(1, ach)
	arun := start(a)

	// Pace against the link: cap in-flight below the uplink ring so
	// outages back pressure up to the injector instead of overflowing
	// mid-chain — every accepted packet must cross the wire exactly once.
	total := ctx.N(8000)
	sent := 0
	deadline := time.Now().Add(120 * time.Second)
	injected := true
	for sent < total {
		if time.Now().After(deadline) {
			injected = false
			break
		}
		if uint64(sent)-a.RemoteDelivered.Load() >= 256 {
			runtime.Gosched()
			continue
		}
		p := a.GetPacket()
		p.FlowID = 1
		p.Size = 64
		if a.Inject(p) {
			sent++
		} else {
			a.PutPacket(p)
			runtime.Gosched()
		}
	}

	// Quiesce: the unacked window empties (the schedule always heals) and
	// the upstream ledger balances.
	settled := false
	if injected {
		settleBy := time.Now().Add(60 * time.Second)
		for time.Now().Before(settleBy) {
			rs := a.RemoteStats()[0]
			if rs.Queued == 0 && rs.Inflight == 0 && a.LedgerSnapshot().Residual() == 0 {
				settled = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if err := arun.stop(30 * time.Second); err != nil {
		return Outcome{}, err
	}
	srv.Close()
	if err := brun.stop(30 * time.Second); err != nil {
		return Outcome{}, err
	}

	la, lb := a.LedgerSnapshot(), b.LedgerSnapshot()
	ws := wire.Stats()
	reconnects := journalCount(a, func(d dataplane.Decision) bool {
		return d.Kind == dataplane.DecisionRemoteReconnect
	})
	faultsFired := ws.Drops >= 1
	if partition {
		faultsFired = faultsFired && ws.Partitions >= 1
	}
	checks := []Check{
		check("admits_full_load", injected, "injection stalled (sent=%d want=%d)", sent, total),
		check("settles", settled, "upstream link/ledger never quiesced: %+v stats=%+v", la, a.RemoteStats()),
		check("ledger_closes_up", la.Residual() == 0, "upstream residual=%d ledger=%+v", la.Residual(), la),
		check("ledger_closes_down", lb.Residual() == 0, "downstream residual=%d ledger=%+v", lb.Residual(), lb),
		check("exactly_once",
			la.RemoteDelivered == uint64(total) && la.RemoteDrops == 0 &&
				srv.Stats().Received == uint64(total),
			"remoteDelivered=%d remoteDrops=%d peerReceived=%d dups=%d want=%d",
			la.RemoteDelivered, la.RemoteDrops, srv.Stats().Received, srv.Stats().Dups, total),
		check("wire_faults_fired", faultsFired,
			"wire schedule idle: drops=%d partitions=%d writes=%d", ws.Drops, ws.Partitions, wire.Seen()),
		check("reconnects_journaled", reconnects > 0, "no remote_reconnect decisions journaled"),
	}
	plan, err := wire.ExportPlan(2048)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Checks:     checks,
		FaultPlans: []faults.Plan{plan},
		Observed: map[string]uint64{
			"injected":         la.Injected,
			"remote_delivered": la.RemoteDelivered,
			"wire_kills":       ws.Drops,
			"wire_partitions":  ws.Partitions,
			"reconnects":       uint64(reconnects),
			"peer_received":    srv.Stats().Received,
			"peer_dups":        srv.Stats().Dups,
		},
	}, nil
}
