package hypo

// H-FIFO: per-flow delivery order is preserved — every delivered packet of
// a flow carries a strictly larger sequence number than the one before it
// (drops create gaps, never reordering) — across mover counts, producer
// lane churn (handles closed and reopened mid-stream), and FailOpen bypass
// of a crashed-and-circuit-opened stage.
//
// One deliberate carve-out, discovered by this experiment: the bypass
// BOUNDARY can scramble the faulted chain. When the mid hop dies, packets
// it already processed are still queued in its tx ring while newer packets
// start bypassing straight to the next hop's rx — whichever ring drains
// first wins, so flows on the bypassed chain may see a transient reorder
// bounded by the in-flight population at the fault instant. Flows on other
// chains must never invert, and the scramble must stay within that bound;
// both are checked.

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/faults"
)

func init() {
	Register(Experiment{
		Name:  "h-fifo",
		Title: "Per-flow FIFO under scaling, lane churn, and bypass",
		Claim: "For every flow, delivered packets appear in strictly increasing sequence order " +
			"(gaps from accounted drops allowed, inversions never) — with movers in {1,2,4} and " +
			"with producer inject lanes closed and reopened mid-stream (after draining, per the " +
			"lane contract). With a FailOpen chain whose mid stage panics until its circuit " +
			"opens, flows on every OTHER chain still never invert, and the bypassed chain's own " +
			"flows reorder at most transiently at the fault boundary: total inversions stay " +
			"within the in-flight population (packets past the dead hop racing packets that " +
			"bypass it), never a sustained interleave.",
		Axes: []Axis{
			{Name: "movers", Values: []string{"1", "2", "4"}},
			{Name: "mode", Values: []string{"plain", "lanechurn", "failopen"}},
		},
		Run: runFIFO,
	})
}

func runFIFO(ctx RunCtx) (Outcome, error) {
	movers, _ := strconv.Atoi(ctx.Params["movers"])
	mode := ctx.Params["mode"]
	const (
		nChains  = 4
		nFlows   = 16
		inflight = 256
	)

	cfg := dataplane.Config{
		RingSize: 512, BatchSize: 16, Movers: movers,
		WeightPeriod:   10 * time.Millisecond,
		DrainTimeout:   2 * time.Second,
		RestartBackoff: time.Millisecond,
		JitterSeed:     int64(ctx.Seed),
	}
	var inj *faults.Injector
	if mode == "failopen" {
		// From packet 500 on, every grant to the wrapped stage panics: the
		// failure streak builds through each restart (no clean grants to
		// reset it), the circuit opens at MaxRestarts, and the FailOpen
		// policy bypasses the dead hop for the rest of the run.
		cfg.MaxRestarts = 2
		inj = faults.New(mix(ctx.Seed), faults.PanicOn(faults.After(500), "hypo: fifo crash"))
	} else {
		cfg.MaxRestarts = -1
	}
	e := dataplane.New(cfg)
	chains := buildChains(e, nChains, 3, func(chain, hop int) dataplane.Handler {
		fn := func(p *dataplane.Packet) {}
		if inj != nil && chain == 0 && hop == 1 {
			return faults.Wrap(inj, fn)
		}
		return fn
	})
	for f := nChains; f < nFlows; f++ {
		e.MapFlow(f, chains[f%nChains])
	}
	if mode == "failopen" {
		for _, ch := range chains {
			e.SetChainPolicy(ch, dataplane.FailOpen)
		}
	}

	// The sink checks per-flow monotonicity: sequence numbers ride in
	// Userdata, assigned in injection order by the single producer.
	var (
		mu         sync.Mutex
		lastSeq    [nFlows]int
		deliveries [nFlows]uint64
		inversions [nFlows]int
	)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	e.SetSink(func(ps []*dataplane.Packet) {
		mu.Lock()
		for _, p := range ps {
			f := p.FlowID
			s := p.Userdata.(int)
			if s <= lastSeq[f] {
				inversions[f]++
			}
			lastSeq[f] = s
			deliveries[f]++
		}
		mu.Unlock()
		e.PutPacketBatch(ps)
	})
	if inj != nil {
		defer inj.Release()
	}

	run := start(e)
	total := ctx.N(16000)
	deadline := time.Now().Add(180 * time.Second)

	var handle *dataplane.ProducerHandle
	if mode == "lanechurn" {
		handle = e.ProducerHandle(256)
	}
	churnEvery := total / 8
	nextChurn := churnEvery
	injected := true
	sent := 0
	for sent < total {
		if time.Now().After(deadline) {
			injected = false
			break
		}
		if handle != nil && churnEvery > 0 && sent >= nextChurn {
			nextChurn += churnEvery
			// Lane churn: drain the old handle fully before retiring it —
			// the per-flow order contract spans lanes only through empty
			// handoffs — then continue on a fresh lane.
			for handle.Len() > 0 && !time.Now().After(deadline) {
				runtime.Gosched()
			}
			handle.Close()
			handle = e.ProducerHandle(256)
		}
		if l := e.LedgerSnapshot(); l.Residual() >= inflight ||
			(handle != nil && handle.Len() >= inflight/2) {
			runtime.Gosched()
			continue
		}
		p := e.GetPacket()
		p.FlowID = sent % nFlows
		p.Size = 64
		p.Userdata = sent / nFlows
		ok := false
		if handle != nil {
			ok = handle.Inject(p)
		} else {
			ok = e.Inject(p)
		}
		if ok {
			sent++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	if handle != nil {
		for handle.Len() > 0 && !time.Now().After(deadline) {
			runtime.Gosched()
		}
		handle.Close()
	}
	if inj != nil {
		// The fail-open bypass races the restart ladder: every Failed
		// backoff window lets the whole remaining load route around the
		// dead hop, so a restarted incarnation can come back to an empty
		// rx and never earn the grant that trips the breaker. Keep the
		// load (and the per-flow sequence numbers) flowing until the
		// circuit actually opens, bounded by one more run's worth.
		opened := func() bool {
			return journalCount(e, func(d dataplane.Decision) bool {
				return d.Kind == dataplane.DecisionCircuitOpen
			}) > 0
		}
		for extra := 0; extra < total && !time.Now().After(deadline); {
			if extra%64 == 0 && opened() {
				break
			}
			if l := e.LedgerSnapshot(); l.Residual() >= inflight {
				runtime.Gosched()
				continue
			}
			p := e.GetPacket()
			p.FlowID = sent % nFlows
			p.Size = 64
			p.Userdata = sent / nFlows
			if e.Inject(p) {
				sent++
				extra++
			} else {
				e.PutPacket(p)
				runtime.Gosched()
			}
		}
	}
	settled := injected && waitSettled(e, 60*time.Second)
	if err := run.stop(30 * time.Second); err != nil {
		return Outcome{}, err
	}

	l := e.LedgerSnapshot()
	mu.Lock()
	// Split inversions by chain: flows f with f%nChains == 0 ride chain 0,
	// the only chain the failopen mode faults. invFaulted is the bypass
	// boundary's transient scramble (bounded, failopen only); invClean must
	// be zero in every mode.
	var invFaulted, invClean int
	for f, n := range inversions {
		if f%nChains == 0 {
			invFaulted += n
		} else {
			invClean += n
		}
	}
	var starved []int
	var deliveredTotal uint64
	for f, d := range deliveries {
		deliveredTotal += d
		if d == 0 {
			starved = append(starved, f)
		}
	}
	mu.Unlock()

	checks := []Check{
		check("admits_full_load", injected, "injection stalled before %d packets", total),
		check("settles", settled, "residual never reached zero: %+v", l),
		check("ledger_closes", l.Residual() == 0, "residual=%d ledger=%+v", l.Residual(), l),
		check("all_flows_delivered", len(starved) == 0, "flows with zero deliveries: %v", starved),
	}
	observed := map[string]uint64{
		"injected":    l.Injected,
		"delivered":   deliveredTotal,
		"fault_drops": l.FaultDrops,
		"late_drops":  l.LateDrops,
	}
	if inj == nil {
		checks = append(checks,
			check("fifo_preserved", invFaulted+invClean == 0,
				"%d per-flow order inversions", invFaulted+invClean))
	} else {
		checks = append(checks,
			check("fifo_preserved_unfaulted", invClean == 0,
				"%d inversions on chains the fault never touched", invClean),
			check("bypass_scramble_bounded", invFaulted <= inflight,
				"bypassed chain scrambled beyond the in-flight window: %d inversions > %d",
				invFaulted, inflight))
		observed["bypass_inversions"] = uint64(invFaulted)
	}
	out := Outcome{Checks: checks, Observed: observed}
	if inj != nil {
		circuitOpens := journalCount(e, func(d dataplane.Decision) bool {
			return d.Kind == dataplane.DecisionCircuitOpen
		})
		out.Checks = append(out.Checks,
			check("bypass_engaged", circuitOpens > 0,
				"circuit never opened (restarts absorbed every panic): %s",
				fmt.Sprint(e.HealthSnapshot())))
		observed["circuit_opens"] = uint64(circuitOpens)
		plan, err := inj.ExportPlan(8192)
		if err != nil {
			return Outcome{}, err
		}
		out.FaultPlans = []faults.Plan{plan}
	}
	return out, nil
}
