package hypo

// H-RealNF-Liveness: the liveness invariant holds when the stages are real
// network functions on the zero-copy frame path, not no-op handlers. A
// paced firewall→NAT→monitor chain below capacity must deliver every
// admitted frame, close the ledger, keep queues bounded by the in-flight
// population — and deliver the frames *intact*: every frame carries a flow
// number and payload checksum written at ingress and verified at the sink,
// after the NAT has rewritten addresses, ports, and checksums in the same
// arena slot. A buffer-ownership bug in the arena (slot aliasing, recycle
// while in flight, cross-slot append bleed) shows up here as a checksum
// mismatch even when the packet-count invariants all pass.

import (
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/frontend"
	"nfvnice/internal/nfs"
	"nfvnice/internal/proto"
)

func init() {
	Register(Experiment{
		Name:  "h-realnf-liveness",
		Title: "Real-NF chains on arena frames are lossless and frame-intact below capacity",
		Claim: "With offered load paced below capacity (in-flight cap 128 << ring 512), " +
			"firewall→NAT→monitor chains running on preallocated arena frames deliver every " +
			"admitted packet with a closed ledger and queues bounded by the in-flight " +
			"population, and every delivered frame passes its ingress payload checksum after " +
			"in-place NAT rewriting — for movers in {1,4}, chains in {2,8}, and payloads in " +
			"{64B, 512B}.",
		Axes: []Axis{
			{Name: "movers", Values: []string{"1", "4"}},
			{Name: "chains", Values: []string{"2", "8"}},
			{Name: "payload", Values: []string{"64", "512"}},
		},
		Run: runRealNFLiveness,
	})
}

// realNFHeaderLen is the fixed header prefix of the generated frames; the
// checksummed payload starts right after it.
const realNFHeaderLen = proto.EthernetHeaderLen + proto.IPv4MinHeaderLen + proto.UDPHeaderLen

func runRealNFLiveness(ctx RunCtx) (Outcome, error) {
	movers, _ := strconv.Atoi(ctx.Params["movers"])
	chains, _ := strconv.Atoi(ctx.Params["chains"])
	payloadLen, _ := strconv.Atoi(ctx.Params["payload"])

	const inflight = 128
	const flowsPerChain = 64 // bounded so NAT bindings and monitor flows stay finite
	frameSize := realNFHeaderLen + payloadLen
	e := dataplane.New(dataplane.Config{
		RingSize: 512, BatchSize: 16, Movers: movers,
		FrameSize:    frameSize,
		WeightPeriod: 10 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		JitterSeed:   int64(ctx.Seed),
	})
	for c := 0; c < chains; c++ {
		procs := []nfs.Processor{
			nfs.NewFirewall(nfs.Accept),
			nfs.NewNAT(proto.Addr4(203, 0, 113, byte(c+1)), nil),
			nfs.NewMonitor(),
		}
		ids := make([]int, len(procs))
		for i, p := range procs {
			ids[i] = e.AddBatchStage(p.Name(), 1024, nfs.AdaptBatch(p))
		}
		ch, err := e.AddChain(ids...)
		if err != nil {
			return Outcome{}, err
		}
		e.MapFlow(c, ch)
	}

	// The CRC tap: the sink re-derives each delivered frame's payload
	// checksum (frontend.FillPayload wrote it at ingress) before recycling.
	// NAT rewrote the headers in the same slot; the payload must be intact.
	var verified, corrupt atomic.Uint64
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			if len(p.Frame) >= realNFHeaderLen+16 {
				if _, ok := frontend.VerifyPayload(p.Frame[realNFHeaderLen:]); ok {
					verified.Add(1)
				} else {
					corrupt.Add(1)
				}
			} else {
				corrupt.Add(1)
			}
		}
		e.PutPacketBatch(ps)
	})

	// Per-flow payloads: flow number + FNV-1a checksum, precomputed once.
	flows := chains * flowsPerChain
	payloads := make([][]byte, flows)
	for n := range payloads {
		payloads[n] = make([]byte, payloadLen)
		frontend.FillPayload(uint64(n), payloads[n])
	}

	run := start(e)
	sampler := sampleDepths(e)

	total := ctx.N(2000 * chains)
	deadline := time.Now().Add(120 * time.Second)
	injected := injectFrames(e, chains, flowsPerChain, payloads, total, inflight, deadline)
	settled := injected && waitSettled(e, 60*time.Second)
	maxDepth := sampler.Stop()
	if err := run.stop(30 * time.Second); err != nil {
		return Outcome{}, err
	}

	l := e.LedgerSnapshot()
	checks := []Check{
		check("admits_full_load", injected,
			"injection did not complete %d packets before the deadline (injected=%d)", total, l.Injected),
		check("settles", settled, "residual never reached zero: %+v", l),
		check("ledger_closes", l.Residual() == 0, "residual=%d ledger=%+v", l.Residual(), l),
		check("all_delivered", l.Delivered == uint64(total),
			"delivered=%d want=%d ledger=%+v", l.Delivered, total, l),
		check("no_accepted_loss",
			l.MidRingDrops == 0 && l.NFDrops == 0 && l.FaultDrops == 0 &&
				l.ShutdownDrops == 0 && l.LateDrops == 0,
			"accepted packets lost: mid=%d nf=%d fault=%d shutdown=%d late=%d",
			l.MidRingDrops, l.NFDrops, l.FaultDrops, l.ShutdownDrops, l.LateDrops),
		check("queues_bounded", maxDepth <= inflight,
			"max sampled queue depth %d exceeds the in-flight cap %d", maxDepth, inflight),
		check("frames_intact", corrupt.Load() == 0 && verified.Load() == uint64(total),
			"frame integrity tap: verified=%d corrupt=%d want=%d",
			verified.Load(), corrupt.Load(), total),
	}
	return Outcome{
		Checks: checks,
		Observed: map[string]uint64{
			"injected":        l.Injected,
			"delivered":       l.Delivered,
			"verified_frames": verified.Load(),
			"corrupt_frames":  corrupt.Load(),
			"max_queue_depth": uint64(maxDepth),
		},
	}, nil
}

// injectFrames is injectPaced for the frame path: each admitted packet gets
// a full Ethernet+IPv4+UDP frame encoded in place into its arena slot, with
// flow n's checksummed payload. Flows cycle round-robin across chains and a
// bounded per-chain flow population, so every chain's NAT sees a finite,
// recurring set of 5-tuples.
func injectFrames(e *dataplane.Engine, chains, flowsPerChain int, payloads [][]byte, total, inflight int, deadline time.Time) bool {
	srcMAC := proto.MAC{2, 0, 0, 0, 0, 1}
	dstMAC := proto.MAC{2, 0, 0, 0, 0, 2}
	flows := chains * flowsPerChain
	sent := 0
	for sent < total {
		if time.Now().After(deadline) {
			return false
		}
		if l := e.LedgerSnapshot(); l.Residual() >= int64(inflight) {
			runtime.Gosched()
			continue
		}
		f := sent % flows
		p := e.GetPacket()
		buf := p.Frame[:cap(p.Frame)]
		n := proto.EncodeUDP(buf, srcMAC, dstMAC,
			proto.Addr4(10, byte(f>>16), byte(f>>8), byte(f)),
			proto.Addr4(198, 51, 100, 7),
			uint16(20000+f%40000), 53, payloads[f])
		p.Frame = buf[:n]
		p.Size = n
		p.FlowID = f % chains
		if e.Inject(p) {
			sent++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	return true
}
