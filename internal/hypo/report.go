package hypo

// Result emission: canonical JSON for machine diffing and CI artifacts,
// markdown for the hypotheses/<name>/FINDINGS.md ledgers.
//
// Canonical JSON is byte-reproducible for a fixed (config matrix, seeds,
// rounds, scale) as long as the verdict reproduces: it contains only data
// that is a pure function of those inputs plus the per-check pass/fail
// bits. Observed counters (delivered totals, drop classes — measured, not
// deterministic) are stripped unless explicitly requested.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// CanonicalJSON renders the result set. With includeObserved false (the
// default, and the mode the byte-reproducibility guarantee covers) the
// per-run Observed maps are stripped.
func CanonicalJSON(res Result, includeObserved bool) ([]byte, error) {
	if !includeObserved {
		runs := make([]RunResult, len(res.Runs))
		for i, r := range res.Runs {
			r.Observed = nil
			runs[i] = r
		}
		res.Runs = runs
	}
	return json.MarshalIndent(res, "", "  ")
}

// Markdown renders the ledger body for FINDINGS.md: claim, matrix, verdict
// table. Deliberately timestamp-free — the committed ledger carries its own
// date line.
func Markdown(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Result: %s\n\n", strings.ToUpper(string(res.Verdict)))
	fmt.Fprintf(&b, "**Hypothesis:** %s\n\n", res.Claim)
	fmt.Fprintf(&b, "**Runs:** %d configs x %d seeds x %d rounds = %d runs at scale %g\n\n",
		len(res.Configs), len(res.Seeds), res.Rounds,
		len(res.Runs), res.Scale)
	fmt.Fprintf(&b, "**Seeds:** %s\n\n", joinSeeds(res.Seeds))

	b.WriteString("### Config matrix\n\n")
	axes := axisNames(res.Configs)
	if len(axes) > 0 {
		b.WriteString("| " + strings.Join(axes, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(axes)) + "\n")
		for _, cfg := range res.Configs {
			row := make([]string, len(axes))
			for i, a := range axes {
				row[i] = cfg[a]
			}
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteString("\n")
	}

	b.WriteString("### Check verdicts\n\n")
	b.WriteString("| check | verdict | pass | fail |\n|---|---|---|---|\n")
	names := make([]string, 0, len(res.CheckVerdicts))
	for n := range res.CheckVerdicts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pass, fail := 0, 0
		for _, r := range res.Runs {
			for _, c := range r.Checks {
				if c.Name != n {
					continue
				}
				if c.Pass {
					pass++
				} else {
					fail++
				}
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d |\n", n, res.CheckVerdicts[n], pass, fail)
	}
	b.WriteString("\n")

	if failures := failedRuns(res); len(failures) > 0 {
		b.WriteString("### Failures\n\n")
		for _, f := range failures {
			b.WriteString(f + "\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// axisNames collects the sorted union of config keys.
func axisNames(configs []Params) []string {
	set := map[string]bool{}
	for _, c := range configs {
		for k := range c {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func failedRuns(res Result) []string {
	var out []string
	for _, r := range res.Runs {
		for _, c := range r.Checks {
			if !c.Pass {
				out = append(out, fmt.Sprintf("- `%s` config=%v seed=%d round=%d: %s",
					c.Name, r.Config, r.Seed, r.Round, c.Detail))
			}
		}
	}
	return out
}

func joinSeeds(seeds []uint64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ", ")
}
