package dataplane

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMoverPartitionStatic pins the stage-affinity rule: stage i belongs to
// mover i mod M, every stage has exactly one owner, and the owner is
// recorded on the stage for the wake path.
func TestMoverPartitionStatic(t *testing.T) {
	e := New(Config{Movers: 3})
	for i := 0; i < 8; i++ {
		e.AddStage("s", 1024, func(*Packet) {})
	}
	e.assignMovers()
	owned := 0
	for mi, m := range e.movers {
		for _, s := range m.stages {
			if s.id%len(e.movers) != mi {
				t.Errorf("stage %d owned by mover %d, want %d", s.id, mi, s.id%len(e.movers))
			}
			if s.mov != m {
				t.Errorf("stage %d records wrong owning mover", s.id)
			}
			owned++
		}
	}
	if owned != 8 {
		t.Fatalf("partition covers %d stages, want 8", owned)
	}
}

// TestMoverParksWhenIdle asserts the idle ladder bottoms out in parks (no
// busy-burning cores on an idle engine) and that traffic still flows after
// parking — the wake/timeout path works.
func TestMoverParksWhenIdle(t *testing.T) {
	e := New(Config{RingSize: 64, WeightPeriod: 0, Movers: 2})
	a := e.AddStage("a", 1024, func(*Packet) {})
	b := e.AddStage("b", 1024, func(*Packet) {})
	ch, _ := e.AddChain(a, b)
	e.MapFlow(0, ch)
	var got atomic.Int64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		got.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	// Idle phase: both movers must descend to parking.
	deadline := time.Now().Add(2 * time.Second)
	parked := func() bool {
		for _, m := range e.MoverStats() {
			if m.Stages > 0 && m.Parks == 0 {
				return false
			}
		}
		return true
	}
	for time.Now().Before(deadline) && !parked() {
		time.Sleep(time.Millisecond)
	}
	if !parked() {
		t.Fatalf("movers never parked while idle: %+v", e.MoverStats())
	}

	// Traffic after parking: deliveries resume (wake signal or park
	// timeout, either is correctness; the wake just bounds latency).
	for i := 0; i < 32; {
		p := e.GetPacket()
		p.FlowID = 0
		if e.Inject(p) {
			i++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && got.Load() < 32 {
		runtime.Gosched()
	}
	if got.Load() < 32 {
		t.Fatalf("only %d/32 delivered after movers parked", got.Load())
	}
	var sweeps, moved uint64
	for _, m := range e.MoverStats() {
		sweeps += m.Sweeps
		moved += m.Moved
	}
	if sweeps == 0 {
		t.Error("no sweeps recorded")
	}
	// Each packet crosses two tx rings (stage a's and stage b's), so the
	// movers drained at least 2×32 packets.
	if moved < 64 {
		t.Errorf("moved = %d, want >= 64", moved)
	}
	cancel()
	<-done
}

// TestConservationMovers drives an overloaded 3-stage chain with a sharded
// TX path and asserts exact packet conservation after shutdown:
// injected == delivered + mid-chain ring drops + all drop classes. Run
// under -race in CI (the chaos job) to certify the sharded counters.
func TestConservationMovers(t *testing.T) {
	e := New(Config{RingSize: 64, BatchSize: 16, WeightPeriod: 0, Movers: 2,
		DrainTimeout: 2 * time.Second})
	entry := e.AddStage("entry", 1024, func(*Packet) {})
	mid := e.AddStage("mid", 1024, func(p *Packet) {
		if p.Userdata == nil {
			return
		}
		if p.Userdata.(int)%97 == 0 {
			p.Drop = true // exercise the NF-drop class under sharding
		}
	})
	back := e.AddStage("back", 1024, func(*Packet) { spin(time.Microsecond) })
	ch, err := e.AddChain(entry, mid, back)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	// Overdrive the tiny rings from two producers so mid-chain drops and
	// backpressure both fire while the movers run concurrently.
	prodDone := make(chan struct{}, 2)
	for pr := 0; pr < 2; pr++ {
		go func(pr int) {
			defer func() { prodDone <- struct{}{} }()
			deadline := time.Now().Add(500 * time.Millisecond)
			seq := 0
			for time.Now().Before(deadline) {
				p := e.GetPacket()
				p.FlowID = 0
				p.Userdata = seq
				seq++
				if !e.Inject(p) {
					e.PutPacket(p)
					runtime.Gosched()
				}
			}
		}(pr)
	}
	<-prodDone
	<-prodDone
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return")
	}

	var midDrops uint64
	for _, s := range e.Stats() {
		if s.Name != "entry" {
			midDrops += s.QueueDrops
		}
	}
	injected := e.Injected.Load()
	accounted := e.Delivered.Load() + e.OutputDrops.Load() + midDrops +
		e.NFDrops.Load() + e.FaultDrops.Load() + e.ShutdownDrops.Load()
	if injected == 0 {
		t.Fatal("nothing injected")
	}
	if e.Delivered.Load() == 0 {
		t.Fatal("nothing delivered")
	}
	if injected != accounted {
		t.Fatalf("conservation violated with Movers=2: injected=%d accounted=%d "+
			"(delivered=%d mid=%d nf=%d fault=%d shutdown=%d out=%d)",
			injected, accounted, e.Delivered.Load(), midDrops, e.NFDrops.Load(),
			e.FaultDrops.Load(), e.ShutdownDrops.Load(), e.OutputDrops.Load())
	}
	// The sharded path actually ran: both movers swept and moved packets.
	ms := e.MoverStats()
	if len(ms) != 2 {
		t.Fatalf("MoverStats = %d shards, want 2", len(ms))
	}
	for i, m := range ms {
		if m.Moved == 0 {
			t.Errorf("mover %d moved nothing (stages=%d sweeps=%d)", i, m.Stages, m.Sweeps)
		}
	}
}
