package dataplane

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// laneOutcomes sums every terminal class a lane-accepted packet can reach:
// delivery plus each drop ledger, whether the shed happened at drain time
// (entry classes), mid-chain, or at shutdown. For any quiesced engine,
// lane-accepted == delivered + laneOutcomes-drops.
func laneDrops(e *Engine) uint64 {
	return e.EntryDrops.Load() + e.FaultEntryDrops.Load() + e.RingDrops.Load() +
		e.LateDrops.Load() + e.NFDrops.Load() + e.FaultDrops.Load() +
		e.ShutdownDrops.Load() + e.OutputDrops.Load()
}

// TestLaneDeliversInOrder is the basic lane path: one registered producer,
// one chain; deliveries are a strictly increasing subsequence of the
// injected sequence (drain-time shedding may thin it under load, so
// conservation — not losslessness — is the delivery-count check).
func TestLaneDeliversInOrder(t *testing.T) {
	e := New(Config{RingSize: 256, WeightPeriod: 0, DrainTimeout: 2 * time.Second})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(1, ch)
	h := e.ProducerHandle(0)
	lastSeq := -1
	var reorders uint64
	var delivered atomic.Uint64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			if p.Userdata.(int) <= lastSeq {
				reorders++
			}
			lastSeq = p.Userdata.(int)
		}
		delivered.Add(uint64(len(ps)))
		e.PutPacketBatch(ps)
	})
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { e.Run(ctx); close(runDone) }()

	const total = 5000
	sent := 0
	for sent < total {
		p := e.GetPacket()
		p.FlowID = 1
		p.Userdata = sent
		if h.Inject(p) {
			sent++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	// Quiesce (lanes drained, chain flushed) before stopping.
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load()+laneDrops(e) < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-runDone
	if reorders > 0 {
		t.Fatalf("%d per-producer FIFO violations on the lane path", reorders)
	}
	if got := delivered.Load() + laneDrops(e); got != total {
		t.Fatalf("conservation: accepted %d, outcomes %d (delivered %d)", total, got, delivered.Load())
	}
	if delivered.Load() == 0 {
		t.Fatal("nothing delivered through the lane")
	}
}

// TestLanePerProducerFIFO drives several registered producers (distinct
// flows) concurrently — including handles registered mid-run, so the lane
// count changes under traffic — and checks every flow's delivery sequence
// is strictly FIFO.
func TestLanePerProducerFIFO(t *testing.T) {
	e := New(Config{RingSize: 512, Movers: 3, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	b := e.AddStage("b", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a, b)

	const producers = 6
	const perProducer = 4000
	for f := 0; f < producers; f++ {
		e.MapFlow(f, ch)
	}

	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	var violations atomic.Uint64
	var delivered atomic.Uint64
	var mu sync.Mutex // sink may run on several movers
	e.SetSink(func(ps []*Packet) {
		mu.Lock()
		for _, p := range ps {
			seq := p.Userdata.(int)
			if seq <= lastSeq[p.FlowID] {
				violations.Add(1)
			}
			lastSeq[p.FlowID] = seq
		}
		mu.Unlock()
		delivered.Add(uint64(len(ps)))
		e.PutPacketBatch(ps)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	var wg sync.WaitGroup
	for f := 0; f < producers; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			// Half the handles register before traffic, half mid-run, so
			// the movers' lane lists change while draining.
			if f%2 == 1 {
				time.Sleep(time.Duration(f) * 2 * time.Millisecond)
			}
			h := e.ProducerHandle(128)
			defer h.Close()
			cache := e.NewPacketCache(64)
			sent := 0
			for sent < perProducer {
				p := cache.Get()
				p.FlowID = f
				p.Userdata = sent
				if h.Inject(p) {
					sent++
				} else {
					cache.Put(p)
					runtime.Gosched()
				}
			}
		}(f)
	}
	wg.Wait()
	const total = producers * perProducer
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load()+laneDrops(e) < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := delivered.Load() + laneDrops(e); got != total {
		t.Fatalf("conservation: accepted %d, outcomes %d (delivered %d)", total, got, delivered.Load())
	}
	if delivered.Load() == 0 {
		t.Fatal("nothing delivered")
	}
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d per-producer FIFO violations", v)
	}
}

// TestLaneConservationChurn registers and closes producer handles
// continuously while the engine runs, with backpressure-inducing load, and
// checks exact producer-side conservation after shutdown: every packet a
// lane accepted is either Injected or charged to a pre-acceptance drop
// class (entry/fault-entry shedding happens at drain time on the lane
// path; LateDrops absorbs lane leftovers at shutdown), and the engine-side
// invariant reconciles as usual.
func TestLaneConservationChurn(t *testing.T) {
	e := New(Config{RingSize: 128, Movers: 2, BatchSize: 16, WeightPeriod: 0,
		HighFrac: 0.5, LowFrac: 0.25, DrainTimeout: 2 * time.Second})
	slow := e.AddStage("slow", 1024, func(p *Packet) { time.Sleep(2 * time.Microsecond) })
	ch, _ := e.AddChain(slow)

	const producers = 8
	const perProducer = 3000
	for f := 0; f < producers; f++ {
		e.MapFlow(f, ch)
	}
	var delivered atomic.Uint64
	e.SetSink(func(ps []*Packet) {
		delivered.Add(uint64(len(ps)))
		e.PutPacketBatch(ps)
	})

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { e.Run(ctx); close(runDone) }()

	var accepted atomic.Uint64 // packets lanes took ownership of
	var wg sync.WaitGroup
	for f := 0; f < producers; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(f) + 1))
			sent := 0
			for sent < perProducer {
				// Churn: every producer reopens its handle repeatedly, so
				// lanes register and retire mid-run under load.
				h := e.ProducerHandle(64)
				burst := 100 + rng.Intn(400)
				for i := 0; i < burst && sent < perProducer; {
					p := e.GetPacket()
					p.FlowID = f
					p.Userdata = nil
					if h.Inject(p) {
						accepted.Add(1)
						sent++
						i++
					} else {
						e.PutPacket(p)
						runtime.Gosched()
					}
				}
				h.Close()
			}
		}(f)
	}
	wg.Wait()
	// Let the movers drain the closed lanes, then stop.
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-runDone

	inj := e.Injected.Load()
	entry := e.EntryDrops.Load()
	late := e.LateDrops.Load()
	fentry := e.FaultEntryDrops.Load()
	// RingDrops on a 1-stage chain are all entry-side (charged against
	// lane-accepted packets); there is no mid-chain ring.
	ringDrops := e.RingDrops.Load()
	if got := inj + entry + fentry + ringDrops + late; got != accepted.Load() {
		t.Fatalf("lane-accepted packets unaccounted: accepted=%d injected=%d entry=%d faultEntry=%d ring=%d late=%d (sum %d)",
			accepted.Load(), inj, entry, fentry, ringDrops, late, got)
	}
	outcome := delivered.Load() + e.NFDrops.Load() + e.FaultDrops.Load() +
		e.ShutdownDrops.Load() + e.OutputDrops.Load()
	if inj != outcome {
		t.Fatalf("engine invariant broken: injected=%d outcomes=%d", inj, outcome)
	}
	if len(e.lanes) != 0 {
		t.Fatalf("%d lanes leaked past shutdown retirement", len(e.lanes))
	}
}

// TestLaneCloseRetires checks a closed lane is drained (its packets still
// delivered) and unlinked from its mover.
func TestLaneCloseRetires(t *testing.T) {
	e := New(Config{RingSize: 256, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(1, ch)
	var delivered atomic.Uint64
	e.SetSink(func(ps []*Packet) {
		delivered.Add(uint64(len(ps)))
		e.PutPacketBatch(ps)
	})
	h := e.ProducerHandle(256)
	// Fill the lane before Run so the drain happens after Close.
	const total = 100
	for i := 0; i < total; i++ {
		p := e.GetPacket()
		p.FlowID = 1
		if !h.Inject(p) {
			t.Fatal("pre-run lane inject rejected")
		}
	}
	h.Close()
	if h.Inject(e.GetPacket()) {
		t.Fatal("inject on a closed handle succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != total {
		t.Fatalf("delivered %d of %d packets from a closed lane", delivered.Load(), total)
	}
	for time.Now().Before(deadline) {
		if st := e.MoverStats(); st[0].Lanes == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, st := range e.MoverStats() {
		if st.Lanes != 0 {
			t.Fatal("closed lane not retired from its mover")
		}
	}
}

// TestLaneBatchInject covers the batch enqueue path and its
// caller-keeps-the-tail contract.
func TestLaneBatchInject(t *testing.T) {
	// The ring exceeds the total packet count so neither the watermark
	// throttle nor a full entry ring can ever shed a lane-accepted packet
	// at drain time (sheds are accounted, not retried — the test counts on
	// delivery). The tiny lane below is the subject: partial accepts.
	e := New(Config{RingSize: 4096, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(1, ch)
	h := e.ProducerHandle(16) // tiny lane: forces partial accepts
	var delivered atomic.Uint64
	e.SetSink(func(ps []*Packet) {
		delivered.Add(uint64(len(ps)))
		e.PutPacketBatch(ps)
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	const total = 2000
	batch := make([]*Packet, 0, 64)
	sent := 0
	for sent < total {
		for len(batch) < cap(batch) && sent+len(batch) < total {
			p := e.GetPacket()
			p.FlowID = 1
			batch = append(batch, p)
		}
		n := h.InjectBatch(batch)
		sent += n
		// The rejected tail stays ours: shift it down and retry.
		copy(batch, batch[n:])
		batch = batch[:len(batch)-n]
		if n == 0 {
			runtime.Gosched()
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != total {
		t.Fatalf("delivered %d, want %d", delivered.Load(), total)
	}
}

// TestLaneAfterStopCountsLate checks the stop gate on the lane path.
func TestLaneAfterStopCountsLate(t *testing.T) {
	e := New(Config{RingSize: 64, WeightPeriod: 0, DrainTimeout: 50 * time.Millisecond})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(1, ch)
	h := e.ProducerHandle(64)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	cancel()
	<-done
	p := e.GetPacket()
	p.FlowID = 1
	if h.Inject(p) {
		t.Fatal("lane inject accepted after Run exited")
	}
	if e.LateDrops.Load() == 0 {
		t.Fatal("late lane inject not counted in LateDrops")
	}
	ps := []*Packet{e.GetPacket(), e.GetPacket()}
	for _, q := range ps {
		q.FlowID = 1
	}
	if h.InjectBatch(ps) != 0 {
		t.Fatal("lane batch inject accepted after Run exited")
	}
	if e.LateDrops.Load() < 3 {
		t.Fatalf("LateDrops %d, want >= 3", e.LateDrops.Load())
	}
}

// TestAdaptiveBatchBounds checks the adaptive mover batch stays inside the
// configured window and grows under sustained backlog.
func TestAdaptiveBatchBounds(t *testing.T) {
	e := New(Config{RingSize: 4096, MoverBatchMin: 16, MoverBatchMax: 128,
		BatchSize: 64, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(1, ch)
	var delivered atomic.Uint64
	e.SetSink(func(ps []*Packet) {
		delivered.Add(uint64(len(ps)))
		e.PutPacketBatch(ps)
	})
	h := e.ProducerHandle(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	grew := false
	const total = 200000
	sent := 0
	batch := make([]*Packet, 0, 256)
	deadline := time.Now().Add(10 * time.Second)
	for sent < total && time.Now().Before(deadline) {
		for len(batch) < cap(batch) && sent+len(batch) < total {
			p := e.GetPacket()
			p.FlowID = 1
			batch = append(batch, p)
		}
		n := h.InjectBatch(batch)
		sent += n
		copy(batch, batch[n:])
		batch = batch[:len(batch)-n]
		for _, st := range e.MoverStats() {
			if st.Batch < 16 || st.Batch > 128 {
				t.Fatalf("adaptive batch %d escaped [16, 128]", st.Batch)
			}
			if st.Batch > 64 {
				grew = true
			}
		}
	}
	if sent < total {
		t.Fatalf("sent only %d of %d", sent, total)
	}
	if !grew {
		t.Log("adaptive batch never exceeded its start; acceptable on an unloaded run, but unusual")
	}
}
