package dataplane

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"nfvnice/internal/telemetry"
)

// scrape fetches /metrics from the mux and parses the exposition.
func scrape(t *testing.T, mux http.Handler) map[string]float64 {
	t.Helper()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	vals, err := telemetry.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text format: %v\n%s", err, body)
	}
	return vals
}

// TestScrapeWhileRunning is the acceptance test for the live exposition: the
// pipeline runs with a sharded TX path and concurrent producers while the
// HTTP handler is scraped, and the parsed output must carry per-stage
// processed/wasted/drop counters, queue-depth gauges, and per-mover shard
// counters.
func TestScrapeWhileRunning(t *testing.T) {
	e := New(Config{RingSize: 64, WeightPeriod: 5 * time.Millisecond, Movers: 2})
	a := e.AddStage("fw", 1024, func(p *Packet) {})
	b := e.AddStage("dpi", 1024, func(p *Packet) { spin(5 * time.Microsecond) })
	ch, err := e.AddChain(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)

	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(0)
	e.RegisterMetrics(reg)
	e.SetEventLog(events)
	mux := telemetry.NewMux(reg, events)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	stop := make(chan struct{})
	defer close(stop)
	drain(e, stop)

	// Overdrive a small ring so drops and wasted work occur, scraping
	// concurrently with the producers.
	deadline := time.Now().Add(2 * time.Second)
	sent := 0
	for time.Now().Before(deadline) && sent < 20000 {
		if e.Inject(&Packet{FlowID: 0, Size: 64}) {
			sent++
		} else {
			runtime.Gosched()
		}
		if sent%1000 == 0 {
			scrape(t, mux)
		}
	}
	// Quiesce: stop injecting and wait until every accepted packet has been
	// accounted for (delivered, dropped at the full output channel, or
	// dropped at dpi's receive ring). Until then the batch-flushed counters
	// lag the in-flight packets and the equalities below would race.
	midDrops := func() uint64 {
		for _, s := range e.Stats() {
			if s.Name == "dpi" {
				return s.QueueDrops
			}
		}
		return 0
	}
	waitUntil := time.Now().Add(5 * time.Second)
	for time.Now().Before(waitUntil) {
		if e.Injected.Load() == e.Delivered.Load()+e.OutputDrops.Load()+midDrops() &&
			e.Delivered.Load() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	vals := scrape(t, mux)

	for _, stage := range []string{
		`stage="fw",id="0",core="0"`,
		`stage="dpi",id="1",core="0"`,
	} {
		for _, metric := range []string{
			"dataplane_stage_processed_total",
			"dataplane_stage_wasted_total",
			"dataplane_stage_queue_drops_total",
			"dataplane_stage_queue_depth",
			"dataplane_stage_weight",
		} {
			key := metric + "{" + stage + "}"
			if _, ok := vals[key]; !ok {
				t.Errorf("scrape missing %s", key)
			}
		}
	}
	if vals[`dataplane_stage_processed_total{stage="fw",id="0",core="0"}`] == 0 {
		t.Error("fw processed nothing")
	}
	if vals["dataplane_delivered_total"] == 0 {
		t.Error("dataplane_delivered_total = 0")
	}
	if c := vals["dataplane_latency_nanoseconds_count"]; c == 0 {
		t.Error("latency histogram empty")
	}
	if vals["dataplane_latency_nanoseconds_count"] != vals["dataplane_delivered_total"] {
		t.Errorf("latency count %v != delivered %v",
			vals["dataplane_latency_nanoseconds_count"], vals["dataplane_delivered_total"])
	}

	// Per-mover shard telemetry: both TX shards own a stage here (stage i →
	// mover i mod 2), so both must expose counters and have swept.
	for _, shard := range []string{`mover="0"`, `mover="1"`} {
		for _, metric := range []string{
			"dataplane_mover_sweeps_total",
			"dataplane_mover_moved_total",
			"dataplane_mover_parks_total",
			"dataplane_mover_wakes_total",
			"dataplane_mover_park_ratio",
			"dataplane_mover_drain_per_sweep",
		} {
			key := metric + "{" + shard + "}"
			if _, ok := vals[key]; !ok {
				t.Errorf("scrape missing %s", key)
			}
		}
		if vals["dataplane_mover_sweeps_total{"+shard+"}"] == 0 {
			t.Errorf("mover %s never swept", shard)
		}
	}
	if vals[`dataplane_mover_moved_total{mover="0"}`]+
		vals[`dataplane_mover_moved_total{mover="1"}`] == 0 {
		t.Error("no packets moved through the sharded TX path")
	}

	// Engine-level accounting reconciles through the scrape: every packet
	// accepted into the chain was delivered, dropped at the full output
	// channel, or dropped at a mid-chain receive ring.
	injected := vals["dataplane_injected_total"]
	if injected == 0 {
		t.Error("dataplane_injected_total = 0")
	}
	accounted := vals["dataplane_delivered_total"] +
		vals["dataplane_output_drops_total"] +
		vals[`dataplane_stage_queue_drops_total{stage="dpi",id="1",core="0"}`]
	if injected != accounted {
		t.Errorf("scrape does not reconcile: injected %v != delivered+output_drops+mid_drops %v",
			injected, accounted)
	}
}

// TestStageDropAndWastedCounters pins the attribution of the new per-stage
// counters: with the output channel never drained, every delivery past its
// capacity is wasted work charged to the stage that processed the packet, and
// overdriving the small entry ring charges queue drops to the entry stage.
// HighFrac 1.0 disables early entry shedding so the ring genuinely fills.
func TestStageDropAndWastedCounters(t *testing.T) {
	e := New(Config{RingSize: 16, BatchSize: 8, WeightPeriod: 0, HighFrac: 1.0, LowFrac: 0.5})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, err := e.AddChain(a)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	stats := func() (wasted, qdrops uint64) {
		for _, s := range e.Stats() {
			if s.Name == "a" {
				return s.Wasted, s.QueueDrops
			}
		}
		t.Fatal("stage a missing from Stats")
		return 0, 0
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		e.Inject(&Packet{FlowID: 0, Size: 64})
		if w, q := stats(); w > 0 && q > 0 {
			break
		}
		runtime.Gosched()
	}
	wasted, qdrops := stats()
	if wasted == 0 {
		t.Error("stage a recorded no wasted work despite a full output channel")
	}
	if qdrops == 0 {
		t.Error("stage a recorded no queue drops despite an overdriven entry ring")
	}

	// The same counters flow through the registry.
	vals := scrape(t, telemetry.NewMux(reg, nil))
	key := `dataplane_stage_wasted_total{stage="a",id="0",core="0"}`
	if vals[key] == 0 {
		t.Errorf("%s = 0 in scrape", key)
	}
}
