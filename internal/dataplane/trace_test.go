package dataplane

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nfvnice/internal/obs"
	"nfvnice/internal/telemetry"
)

// TestSamplerRateHonored pins the power-of-two sampling arithmetic: with
// shift s, exactly the packets whose sequence number is a multiple of 2^s
// get a span, regardless of how the stream is chopped into batches.
func TestSamplerRateHonored(t *testing.T) {
	e := New(Config{TraceSampleShift: 3}) // 1 in 8
	mk := func(n int) []*Packet {
		ps := make([]*Packet, n)
		for i := range ps {
			ps[i] = &Packet{}
		}
		return ps
	}
	var total, sampled int
	// Uneven batch sizes exercise the first-offset arithmetic across
	// batch boundaries.
	for _, n := range []int{1, 7, 8, 3, 64, 5, 100} {
		ps := mk(n)
		e.sampleBatch(ps, time.Now().UnixNano())
		for _, p := range ps {
			if p.span != nil {
				sampled++
				e.abortSpan(p)
			}
		}
		total += n
	}
	want := (total + 7) / 8 // seq 0, 8, 16, ... below total
	if sampled != want {
		t.Fatalf("sampled %d of %d packets at shift 3, want %d", sampled, total, want)
	}
	st := e.SpanStats()
	if st.Sampled != uint64(want) || st.Aborted != uint64(want) {
		t.Fatalf("counters: %+v, want sampled=aborted=%d", st, want)
	}
}

// TestSamplerDisabledNoStamps proves the recorder stays fully inert when
// TraceSampleShift is 0: no spans, no counters, nil recorder.
func TestSamplerDisabledNoStamps(t *testing.T) {
	e := New(Config{RingSize: 64})
	if e.rec != nil {
		t.Fatal("recorder allocated despite TraceSampleShift=0")
	}
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(0, ch)
	var got atomic.Int32
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			if p.span != nil {
				t.Error("unsampled packet carries a span")
			}
			e.PutPacket(p)
		}
		got.Add(int32(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	for i := 0; i < 100; {
		if e.Inject(&Packet{FlowID: 0}) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	waitFor(t, 5*time.Second, "delivery", func() bool { return got.Load() == 100 })
	if st := e.SpanStats(); st != (SpanStats{}) {
		t.Fatalf("disabled recorder counted spans: %+v", st)
	}
}

// TestSpanSlabRecycling drives far more sampled packets than there are span
// slabs through a running pipeline: the control loop's spool drain must
// recycle slabs fast enough that sampling keeps working (total sampled >>
// slab count) and the accounting closes (sampled == completed + aborted
// once quiesced).
func TestSpanSlabRecycling(t *testing.T) {
	e := New(Config{
		RingSize:         256,
		TraceSampleShift: 1, // 1 in 2
		TraceSpoolSize:   16,
	})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(0, ch)
	var got atomic.Int64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		got.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	const n = 4000
	sent := 0
	for sent < n {
		p := e.GetPacket()
		p.FlowID = 0
		if e.Inject(p) {
			sent++
		} else {
			e.PutPacket(p) // aborts the span a failed inject leaves attached
			runtime.Gosched()
		}
		// Closed loop: never outrun the 16-slab recorder by more than the
		// ring; the point is recycling, not starvation.
		for int(got.Load()) < sent-64 {
			runtime.Gosched()
		}
	}
	waitFor(t, 5*time.Second, "delivery", func() bool { return int(got.Load()) == n })
	cancel()
	<-done

	st := e.SpanStats()
	if st.Sampled <= 16 {
		t.Fatalf("sampled only %d spans with 16 slabs — recycling is broken", st.Sampled)
	}
	if st.Sampled != st.Completed+st.Aborted {
		t.Fatalf("span accounting open after Run: %+v", st)
	}
	t.Logf("spans: %+v", st)
}

// TestSpanHopsChain3 is the tentpole e2e: a 3-stage chain sampled at 1/64
// must produce spans whose hop count equals the chain length, whose stage
// sequence matches the chain, and whose timestamps are monotonic through
// inject → (enter ≤ exit ≤ moved)×3 → deliver.
func TestSpanHopsChain3(t *testing.T) {
	e := New(Config{
		RingSize:         1024,
		TraceSampleShift: 6, // 1 in 64
	})
	a := e.AddStage("fw", 1024, func(p *Packet) {})
	b := e.AddStage("nat", 1024, func(p *Packet) {})
	c := e.AddStage("dpi", 1024, func(p *Packet) {})
	ch, err := e.AddChain(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)

	// The sink runs on the control goroutine and spans are recycled after
	// it returns: copy.
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var spans []Span
	e.SetSpanSink(func(sp *Span) {
		<-mu
		spans = append(spans, *sp)
		mu <- struct{}{}
	})

	var got atomic.Int64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		got.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	const n = 64 * 40
	cache := e.NewPacketCache(256)
	batch := make([]*Packet, 64)
	sent := 0
	for sent < n {
		for i := range batch {
			p := cache.Get()
			p.FlowID = 0
			batch[i] = p
		}
		sent += len(batch)
		e.InjectBatch(batch)
		for int(got.Load()) < sent-512 {
			runtime.Gosched()
		}
	}
	waitFor(t, 5*time.Second, "all spans drained", func() bool {
		st := e.SpanStats()
		return st.Sampled > 0 && st.Sampled == st.Completed+st.Aborted
	})
	cancel()
	<-done

	<-mu
	defer func() { mu <- struct{}{} }()
	if len(spans) == 0 {
		t.Fatal("no spans reached the sink")
	}
	wantStages := []int32{int32(a), int32(b), int32(c)}
	for _, sp := range spans {
		if sp.N != 3 {
			t.Fatalf("span has %d hops, want 3 (chain length): %+v", sp.N, sp)
		}
		prev := sp.InjectNanos
		for h := 0; h < sp.N; h++ {
			hs := sp.Hops[h]
			if hs.Stage != wantStages[h] {
				t.Fatalf("hop %d ran stage %d, want %d", h, hs.Stage, wantStages[h])
			}
			if hs.EnterNanos < prev || hs.ExitNanos < hs.EnterNanos || hs.MovedNanos < hs.ExitNanos {
				t.Fatalf("hop %d timestamps not monotonic: prev=%d enter=%d exit=%d moved=%d",
					h, prev, hs.EnterNanos, hs.ExitNanos, hs.MovedNanos)
			}
			prev = hs.MovedNanos
		}
		if sp.DeliverNanos < prev {
			t.Fatalf("deliver %d precedes last move %d", sp.DeliverNanos, prev)
		}
	}
	t.Logf("verified %d spans, stats %+v", len(spans), e.SpanStats())
}

// TestBackpressureFlightRecorder is the acceptance scenario: a 3-stage chain
// with a slow tail under overload must (a) journal a bp_on decision naming
// the congested stage with its queue depth at or above the high watermark,
// and (b) stream sampled spans into a Chrome trace whose events include the
// congested stage's ring-wait slices.
func TestBackpressureFlightRecorder(t *testing.T) {
	e := New(Config{
		RingSize:           64,
		BatchSize:          8,
		HighFrac:           0.5,
		LowFrac:            0.25,
		TraceSampleShift:   1, // 1 in 2: plenty of spans despite shedding
		BackpressurePeriod: time.Millisecond,
		WeightPeriod:       0,
	})
	a := e.AddStage("fw", 1024, func(p *Packet) {})
	b := e.AddStage("nat", 1024, func(p *Packet) {})
	c := e.AddStage("slow", 1024, func(p *Packet) { spin(20 * time.Microsecond) })
	ch, err := e.AddChain(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)

	var buf bytes.Buffer
	cw := obs.NewChromeWriter(&buf).SetUnit(obs.UnitNanos)
	e.SetSpanSink(e.SpanTraceSink(cw))
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.ThrottleEvents.Load() > 0 && e.SpanStats().Completed > 10 {
			break
		}
		p := e.GetPacket()
		p.FlowID = 0
		if !e.Inject(p) {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	cancel()
	<-done
	if e.ThrottleEvents.Load() == 0 {
		t.Fatal("never built enough backpressure to throttle")
	}

	// (a) The journal carries the throttle decision with its cause.
	var bpOn []Decision
	for _, d := range e.Decisions().Tail(0) {
		if d.Kind == DecisionBPOn {
			bpOn = append(bpOn, d)
		}
	}
	if len(bpOn) == 0 {
		t.Fatal("no bp_on decision journaled")
	}
	d := bpOn[0]
	if d.Chain != ch {
		t.Errorf("bp_on chain = %d, want %d", d.Chain, ch)
	}
	if d.Stage == "" {
		t.Error("bp_on decision names no stage")
	}
	if d.HighWater == 0 || d.QueueDepth < d.HighWater {
		t.Errorf("bp_on cause incoherent: qdepth=%d high_water=%d", d.QueueDepth, d.HighWater)
	}

	// (b) The Chrome trace holds sampled spans, including ring-wait slices.
	if err := cw.Close(); err != nil {
		t.Fatalf("chrome writer: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var service, rxwait int
	for _, ev := range events {
		name, _ := ev["name"].(string)
		switch {
		case strings.HasSuffix(name, ":rxwait"):
			rxwait++
		case name == "fw" || name == "nat" || name == "slow":
			service++
		}
	}
	if service == 0 {
		t.Fatal("trace has no stage service spans")
	}
	if rxwait == 0 {
		t.Fatal("trace has no ring-wait spans despite congestion")
	}
	t.Logf("journal bp_on=%d (first: stage=%s qdepth=%d/hw=%d); trace events=%d service=%d rxwait=%d",
		len(bpOn), d.Stage, d.QueueDepth, d.HighWater, len(events), service, rxwait)
}

// TestHopHistogramsRegistered checks the per-hop latency histograms fill
// from drained spans and expose through the registry scrape.
func TestHopHistogramsRegistered(t *testing.T) {
	e := New(Config{RingSize: 256, TraceSampleShift: 2})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	b := e.AddStage("b", 1024, func(p *Packet) {})
	ch, _ := e.AddChain(a, b)
	e.MapFlow(0, ch)
	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	var got atomic.Int64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		got.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	for i := 0; i < 400; {
		p := e.GetPacket()
		p.FlowID = 0
		if e.Inject(p) {
			i++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	waitFor(t, 5*time.Second, "delivery", func() bool { return got.Load() == 400 })
	waitFor(t, 5*time.Second, "spool drain", func() bool {
		st := e.SpanStats()
		return st.Sampled > 0 && st.Sampled == st.Completed+st.Aborted
	})
	cancel()
	<-done

	vals := scrape(t, telemetry.NewMux(reg, nil))
	for _, key := range []string{
		`dataplane_hop_service_nanoseconds_count{stage="a",id="0"}`,
		`dataplane_hop_wait_nanoseconds_count{stage="a",id="0"}`,
		`dataplane_hop_service_nanoseconds_count{stage="b",id="1"}`,
		`dataplane_spans_sampled_total`,
		`dataplane_spans_completed_total`,
	} {
		if vals[key] == 0 {
			t.Errorf("%s = 0 after sampled run", key)
		}
	}
}
