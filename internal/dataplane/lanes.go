package dataplane

// Per-producer inject lanes: the contention-free entry path.
//
// Engine.Inject and Engine.InjectBatch enqueue straight into the chain
// entry stage's shared MPMC rx ring — correct from any goroutine, but every
// producer CASes against every other producer (and the movers forwarding
// mid-chain traffic) on the same reservation index. The paper's NF Manager
// avoids exactly this by giving the RX path its own threads and per-NF
// rings; inject lanes are that design's Go shape:
//
//   - A producer registers with Engine.ProducerHandle and receives a
//     private SPSC lane. Lane enqueues are single-producer ring writes —
//     zero CAS, zero contention with other producers.
//   - Each lane is bound (round-robin at registration) to one TX shard,
//     which drains it during its sweeps and routes the packets into entry
//     rings with the same batched, run-detecting path InjectBatch uses
//     (enqueueRouted). One drainer per lane preserves per-producer FIFO
//     end to end: SPSC lane order → single mover → entry ring reservation
//     order.
//   - The shared Engine.Inject/InjectBatch path remains as the fallback
//     lane for anonymous injectors — code that cannot register, or that
//     needs the synchronous shed feedback (Inject's false return reports
//     backpressure at call time; a lane defers routing to drain time).
//
// Deferred routing moves the shed/accounting decisions from the producer's
// call site to the mover's drain site, which is exactly the NIC-RX model:
// acceptance into the lane only promises the packet will be *offered* to
// the chain; backpressure, fail-closed gates and entry-ring overflow are
// applied (and counted) when the mover drains it. Producers that need
// per-packet shed feedback should stay on Engine.Inject.
//
// Lifecycle: Close marks the lane; the owning mover drains what remains,
// then unlinks it (COW under Engine.laneMu). Lanes still holding packets
// when Run winds down are swept into LateDrops by shutdown — those packets
// were never counted Injected, so the conservation invariant is untouched.

import (
	"sync/atomic"
	"time"

	"nfvnice/internal/ring"
)

// injectLane is one producer's private SPSC entry ring plus its binding to
// the draining TX shard.
type injectLane struct {
	ring *ring.SPSC[*Packet]
	mov  *mover
	// closed flips on ProducerHandle.Close; the owning mover retires the
	// lane once it has drained the remainder.
	closed atomic.Bool
}

// ProducerHandle is a registered producer's private entry lane. Create one
// per producer goroutine with Engine.ProducerHandle; a handle must not be
// shared between goroutines (the lane is single-producer).
type ProducerHandle struct {
	e    *Engine
	lane *injectLane
}

// ProducerHandle registers a new per-producer inject lane of the given
// capacity (0 takes Config.RingSize; rounded up to a power of two) and
// binds it round-robin to a TX shard. Safe to call before or during Run;
// lanes registered mid-run are picked up by the owning mover's next sweep.
func (e *Engine) ProducerHandle(capacity int) *ProducerHandle {
	if capacity <= 0 {
		capacity = e.cfg.RingSize
	}
	ln := &injectLane{ring: ring.NewSPSC[*Packet](capacity)}
	e.laneMu.Lock()
	m := e.movers[e.laneRR%len(e.movers)]
	e.laneRR++
	ln.mov = m
	e.lanes = append(e.lanes, ln)
	cur := *m.lanes.Load()
	next := make([]*injectLane, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ln
	m.lanes.Store(&next)
	e.laneMu.Unlock()
	return &ProducerHandle{e: e, lane: ln}
}

// Inject offers a packet through the producer's private lane. It reports
// false when the lane is full (the mover hasn't caught up — per-lane
// backpressure), the handle is closed, or Run has exited; the caller keeps
// ownership of a rejected packet. Acceptance means the packet will be
// offered to its chain at the mover's next drain; chain-entry shedding is
// applied and counted there, not here (see the package comment in this
// file).
func (h *ProducerHandle) Inject(p *Packet) bool {
	if h.lane.closed.Load() {
		return false
	}
	if h.e.stopped.Load() {
		h.e.LateDrops.Add(1)
		return false
	}
	if !h.lane.ring.Enqueue(p) {
		return false
	}
	h.lane.mov.maybeWake()
	if h.e.stopped.Load() {
		// Run exited between the gate check and the enqueue: the shutdown
		// lane sweep may already have run, so rescue our own lane.
		h.e.lateSweepLane(h.lane)
	}
	return true
}

// InjectBatch offers packets through the lane with one ring publish,
// reporting how many were accepted. Unlike Engine.InjectBatch, the caller
// KEEPS ownership of the rejected tail ps[n:] — retry it or recycle it —
// because a lane-full condition is transient per-producer backpressure, not
// a routing verdict.
func (h *ProducerHandle) InjectBatch(ps []*Packet) int {
	if len(ps) == 0 || h.lane.closed.Load() {
		return 0
	}
	if h.e.stopped.Load() {
		h.e.LateDrops.Add(uint64(len(ps)))
		return 0
	}
	n := h.lane.ring.EnqueueBatch(ps)
	if n > 0 {
		h.lane.mov.maybeWake()
		if h.e.stopped.Load() {
			h.e.lateSweepLane(h.lane)
		}
	}
	return n
}

// Len reports the lane's instantaneous backlog (packets enqueued but not
// yet drained by the mover).
func (h *ProducerHandle) Len() int { return h.lane.ring.Len() }

// Close retires the handle: further Injects fail, and the owning mover
// drains whatever the lane still holds into the chain before unlinking it.
// Close does not wait for that drain; packets already accepted are routed
// (or, if the engine stops first, swept into LateDrops) asynchronously.
// Safe to call at most once per handle.
func (h *ProducerHandle) Close() {
	if h.lane.closed.CompareAndSwap(false, true) {
		// Wake the mover so an idle shard retires the lane promptly.
		h.lane.mov.maybeWake()
	}
}

// lateSweepLane rescues packets enqueued into a lane by an Inject that
// raced Run's stop gate, recycling them as LateDrops (lane packets are
// pre-acceptance: never counted Injected). lateMu serializes against the
// shutdown lane sweep and other racing producers — the SPSC consumer role
// is handed around under the lock, which is sound because the mover that
// normally owns it has exited before stopped flips.
func (e *Engine) lateSweepLane(ln *injectLane) {
	if ln.ring.Len() == 0 {
		return
	}
	e.lateMu.Lock()
	var n uint64
	for {
		p, ok := ln.ring.Dequeue()
		if !ok {
			break
		}
		e.freePacket(p)
		n++
	}
	if n > 0 {
		e.LateDrops.Add(n)
	}
	e.lateMu.Unlock()
}

// drainLanes is the mover-side half of the lane path: drain every bound
// lane in round-robin order (rotating the start index each sweep so one
// saturated lane cannot starve the others), route the packets into entry
// rings via enqueueRouted, and retire closed lanes once empty. Returns how
// many packets were drained. Runs only on the owning mover's goroutine
// (or, after the movers exit, on Run's shutdown goroutine), preserving the
// lanes' single-consumer contract.
func (e *Engine) drainLanes(m *mover) int {
	lanes := *m.lanes.Load()
	if len(lanes) == 0 {
		return 0
	}
	var now int64 // lazy, like moveStages: idle sweeps skip the clock read
	moved := 0
	var retired bool
	for off := 0; off < len(lanes); off++ {
		ln := lanes[(m.laneRR+off)%len(lanes)]
		for {
			k := ln.ring.DequeueBatch(m.buf[:m.batch])
			if k == 0 {
				break
			}
			if now == 0 {
				now = time.Now().UnixNano()
				e.coarseNanos.Store(now)
			}
			moved += k
			if e.rec != nil {
				// Spans attach at drain time — the moment the packet
				// enters the engine proper — so lane residence shows up
				// as pre-inject time, not chain latency.
				e.sampleBatch(m.buf[:k], now)
			}
			if n := e.enqueueRouted(m.buf[:k], now, m.rc); n > 0 {
				e.Injected.Add(uint64(n))
			}
		}
		if ln.closed.Load() && ln.ring.Len() == 0 {
			retired = true
		}
	}
	m.laneRR++
	if moved > 0 {
		m.laneMoved.Add(uint64(moved))
		m.rc.flush()
	}
	if retired {
		e.retireLanes(m)
	}
	return moved
}

// retireLanes unlinks every closed-and-empty lane from the mover's COW
// list (and the engine registry). Cold path: runs only after a Close.
func (e *Engine) retireLanes(m *mover) {
	e.laneMu.Lock()
	cur := *m.lanes.Load()
	next := make([]*injectLane, 0, len(cur))
	for _, ln := range cur {
		if ln.closed.Load() && ln.ring.Len() == 0 {
			continue
		}
		next = append(next, ln)
	}
	m.lanes.Store(&next)
	keep := e.lanes[:0]
	for _, ln := range e.lanes {
		if ln.mov == m && ln.closed.Load() && ln.ring.Len() == 0 {
			continue
		}
		keep = append(keep, ln)
	}
	e.lanes = keep
	e.laneMu.Unlock()
}

// sweepLanes drains every registered lane into LateDrops — the shutdown
// path, called after the movers have exited (so the single-consumer
// contract transfers to the caller). Packets still in a lane were never
// counted Injected; LateDrops is their pre-acceptance drop class.
func (e *Engine) sweepLanes() {
	e.laneMu.Lock()
	lanes := append([]*injectLane(nil), e.lanes...)
	e.laneMu.Unlock()
	e.lateMu.Lock()
	var n uint64
	for _, ln := range lanes {
		for {
			p, ok := ln.ring.Dequeue()
			if !ok {
				break
			}
			e.freePacket(p)
			n++
		}
	}
	if n > 0 {
		e.LateDrops.Add(n)
	}
	e.lateMu.Unlock()
}
