package dataplane

// The flight recorder's packet-span half: a power-of-two 1-in-N sampler
// stamps selected packets at inject and records per-hop wall-clock
// timestamps — stage enter (worker dequeued it), stage exit (handler
// returned), mover move (drained from the tx ring) — plus inject and
// delivery, into pooled fixed-size Span records.
//
// Cost model: the unsampled path stays zero-allocation and zero-atomic —
// when the recorder is disabled (Config.TraceSampleShift == 0) the only
// additions to the hot path are a nil pointer check per batch (inject,
// mover) and a nil `span` field check per packet in the worker, all
// perfectly predicted; the allocation gate (TestSteadyStateZeroAllocs)
// holds. With sampling enabled, the sampler pays one atomic add per
// injected batch (per packet on the compat Inject path) and sampled packets
// pay a handful of time.Now calls; spans are recycled through a lock-free
// freelist so the sampled path does not allocate either.
//
// Completed spans drain into a bounded MPMC spool. The control loop empties
// the spool off the hot path: each span feeds the per-hop latency
// histograms (dataplane_hop_{service,wait}_nanoseconds) and the optional
// SetSpanSink callback, then returns to the freelist. Spool overflow drops
// are counted, never blocked on.

import (
	"sync/atomic"
	"time"

	"nfvnice/internal/obs"
	"nfvnice/internal/ring"
	"nfvnice/internal/simtime"
)

// MaxSpanHops bounds the per-hop stamps one span can hold. Chains longer
// than this still flow normally; spans just stop stamping past the limit
// (Span.N stays below the chain length, which consumers can detect).
const MaxSpanHops = 16

// HopStamp is one stage visit of a sampled packet, in wall-clock unix
// nanoseconds. RingWait for hop h is EnterNanos - (previous hop's
// MovedNanos, or the span's InjectNanos for hop 0); service time is
// ExitNanos - EnterNanos; tx dwell is MovedNanos - ExitNanos.
type HopStamp struct {
	// Stage is the stage id (index into Engine.Stats).
	Stage int32
	// EnterNanos is when the stage's worker picked the packet up (handler
	// about to run); ExitNanos when the handler returned; MovedNanos when
	// a mover drained it from the stage's tx ring.
	EnterNanos int64
	ExitNanos  int64
	MovedNanos int64
}

// Span is the recorded journey of one sampled packet. Spans handed to the
// SetSpanSink callback are recycled when the callback returns — copy, don't
// retain.
type Span struct {
	FlowID  int
	ChainID int
	// Seq is the sampler's packet sequence number at inject.
	Seq uint64
	// InjectNanos is the chain-entry timestamp; DeliverNanos is when the
	// packet reached the output boundary (sink, output channel, or tap).
	InjectNanos  int64
	DeliverNanos int64
	// N is how many hops committed stamps (equals the chain length for a
	// fully traversed chain of ≤ MaxSpanHops stages).
	N    int
	Hops [MaxSpanHops]HopStamp
}

// reset clears a span for reuse without releasing the array.
func (sp *Span) reset() {
	*sp = Span{}
}

// stampEnter opens hop N: the stage's worker just dequeued the packet.
// The hop stays uncommitted until stampExit, so a handler that panics or
// drops mid-hop leaves no half-written stamp visible to consumers.
func (sp *Span) stampEnter(stageID int, now int64) {
	if sp.N >= MaxSpanHops {
		return
	}
	h := &sp.Hops[sp.N]
	h.Stage = int32(stageID)
	h.EnterNanos = now
	h.ExitNanos = 0
	h.MovedNanos = 0
}

// stampExit commits hop N: the handler returned.
func (sp *Span) stampExit(now int64) {
	if sp.N >= MaxSpanHops {
		return
	}
	sp.Hops[sp.N].ExitNanos = now
	sp.N++
}

// SpanStats is a snapshot of the flight recorder's span accounting.
// Sampled == Completed + Aborted + in-flight; after the pipeline quiesces
// the in-flight term is zero.
type SpanStats struct {
	// Sampled counts spans started at inject; Completed counts spans that
	// reached the output boundary; Aborted counts spans whose packet was
	// dropped mid-flight (shed, crashed, swept at shutdown).
	Sampled   uint64
	Completed uint64
	Aborted   uint64
	// Starved counts sampler hits skipped because every span slab was in
	// flight; SpoolDrops counts completed spans discarded at a full spool.
	// Both mean "raise Config.TraceSpoolSize", never blocking.
	Starved    uint64
	SpoolDrops uint64
}

// recorder is the engine's span machinery; nil when sampling is disabled.
type recorder struct {
	// mask selects 1-in-(mask+1) packets by sequence number (power of two).
	mask uint64
	// seq numbers every offered packet; one atomic add per injected batch.
	seq atomic.Uint64
	// free holds idle span slabs; spool holds completed spans awaiting the
	// control loop's drain.
	free  *ring.MPMC[*Span]
	spool *ring.MPMC[*Span]

	sampled    atomic.Uint64
	completed  atomic.Uint64
	aborted    atomic.Uint64
	starved    atomic.Uint64
	spoolDrops atomic.Uint64
}

// newRecorder builds the span pools: spoolSize slabs preallocated into the
// freelist and a spool of the same capacity.
func newRecorder(shift, spoolSize int) *recorder {
	r := &recorder{
		mask:  (uint64(1) << uint(shift)) - 1,
		free:  ring.NewMPMC[*Span](spoolSize),
		spool: ring.NewMPMC[*Span](spoolSize),
	}
	for i := 0; i < r.free.Cap(); i++ {
		r.free.Enqueue(&Span{})
	}
	return r
}

// SpanStats snapshots the recorder's counters (zero value when sampling is
// disabled).
func (e *Engine) SpanStats() SpanStats {
	r := e.rec
	if r == nil {
		return SpanStats{}
	}
	return SpanStats{
		Sampled:    r.sampled.Load(),
		Completed:  r.completed.Load(),
		Aborted:    r.aborted.Load(),
		Starved:    r.starved.Load(),
		SpoolDrops: r.spoolDrops.Load(),
	}
}

// SetSpanSink registers a callback receiving every completed span, invoked
// on the control goroutine during its spool drain. The span is recycled when
// the callback returns — copy what you need, do not retain the pointer. Must
// be called before Run. Combine with Engine.SpanTraceSink to stream spans as
// a Chrome trace.
func (e *Engine) SetSpanSink(fn func(*Span)) {
	if e.running.Load() {
		panic("dataplane: SetSpanSink after Run")
	}
	e.spanSink = fn
}

// startSpan attaches a fresh span to a sampled packet. Called with the
// packet still owned by the injector, before it is published to any ring.
func (e *Engine) startSpan(p *Packet, seq uint64, nowNanos int64) {
	r := e.rec
	if p.span != nil {
		return // retried Inject of an already-sampled packet
	}
	sp, ok := r.free.Dequeue()
	if !ok {
		r.starved.Add(1)
		return
	}
	sp.reset()
	sp.FlowID = p.FlowID
	sp.Seq = seq
	sp.InjectNanos = nowNanos
	p.span = sp
	r.sampled.Add(1)
}

// sampleInject is the per-packet (compat Inject) sampling decision; the
// clock is only read on a sampler hit.
func (e *Engine) sampleInject(p *Packet) {
	r := e.rec
	seq := r.seq.Add(1) - 1
	if seq&r.mask == 0 {
		e.startSpan(p, seq, time.Now().UnixNano())
	}
}

// sampleBatch numbers a whole injected batch with one atomic add and starts
// spans on the packets whose sequence numbers hit the 1-in-N boundary.
func (e *Engine) sampleBatch(ps []*Packet, nowNanos int64) {
	r := e.rec
	n := uint64(len(ps))
	base := r.seq.Add(n) - n
	step := r.mask + 1
	// First offset in [0,n) whose absolute sequence is a multiple of step.
	off := (step - base&r.mask) & r.mask
	for ; off < n; off += step {
		e.startSpan(ps[off], base+off, nowNanos)
	}
}

// abortSpan releases the span of a packet that died before delivery.
func (e *Engine) abortSpan(p *Packet) {
	sp := p.span
	p.span = nil
	if sp == nil || e.rec == nil {
		return
	}
	e.rec.aborted.Add(1)
	e.rec.free.Enqueue(sp)
}

// stampSpans is the mover-side pass over a drained batch, gated on the
// recorder being enabled: stamp the move time of each sampled packet's last
// committed hop, and complete spans whose packet reached the end of its
// chain (the main forwarding loop below will deliver it). The clock is read
// once per batch that actually carries a span.
func (e *Engine) stampSpans(ps []*Packet) {
	var tnow int64
	for _, p := range ps {
		sp := p.span
		if sp == nil {
			continue
		}
		if tnow == 0 {
			tnow = time.Now().UnixNano()
		}
		// Stamp the last committed hop's move time exactly once (a chain
		// longer than MaxSpanHops keeps transiting movers after the span
		// stopped committing hops — don't overwrite the last record).
		if sp.N > 0 && sp.Hops[sp.N-1].MovedNanos == 0 {
			sp.Hops[sp.N-1].MovedNanos = tnow
		}
		if p.Hop >= len(e.chains[p.ChainID]) {
			e.completeSpan(p, tnow)
		}
	}
}

// completeSpan detaches and spools a span whose packet reached the output
// boundary. (An output-channel consumer that then fails to drain still
// counts the span as completed: the span records the journey through the
// pipeline, OutputDrops records the final disposition.)
func (e *Engine) completeSpan(p *Packet, nowNanos int64) {
	sp := p.span
	p.span = nil
	r := e.rec
	sp.DeliverNanos = nowNanos
	sp.ChainID = p.ChainID
	r.completed.Add(1)
	if !r.spool.Enqueue(sp) {
		r.spoolDrops.Add(1)
		r.free.Enqueue(sp)
	}
}

// drainSpool empties the completed-span spool on the control goroutine:
// feed the per-hop histograms and the span sink, then recycle. Returns how
// many spans were drained.
func (e *Engine) drainSpool() int {
	r := e.rec
	if r == nil {
		return 0
	}
	n := 0
	for {
		sp, ok := r.spool.Dequeue()
		if !ok {
			return n
		}
		e.observeSpan(sp)
		if e.spanSink != nil {
			e.spanSink(sp)
		}
		r.free.Enqueue(sp)
		n++
	}
}

// observeSpan feeds one completed span into the per-hop latency histograms
// (no-ops until RegisterMetrics created them).
func (e *Engine) observeSpan(sp *Span) {
	if e.hopService == nil {
		return
	}
	prev := sp.InjectNanos
	for h := 0; h < sp.N; h++ {
		st := &sp.Hops[h]
		id := int(st.Stage)
		if id < 0 || id >= len(e.hopService) {
			continue
		}
		if wait := st.EnterNanos - prev; wait >= 0 {
			e.hopWait[id].Observe(uint64(wait))
		}
		if svc := st.ExitNanos - st.EnterNanos; svc >= 0 {
			e.hopService[id].Observe(uint64(svc))
		}
		prev = st.MovedNanos
	}
}

// SpanTraceSink adapts an obs sink (obs.Trace, obs.ChromeWriter) into a
// span sink for SetSpanSink: each hop becomes a "service" slice on the
// stage's lane preceded by an "rxwait" slice covering the packet's ring
// wait, so a congested stage shows as inflated rxwait ahead of it. The obs
// sink must be configured for wall-clock nanoseconds (obs.UnitNanos);
// timestamps are passed as nanos cast to the sink's tick type.
//
//	cw := obs.NewChromeWriter(f).SetUnit(obs.UnitNanos)
//	e.SetSpanSink(e.SpanTraceSink(cw))
func (e *Engine) SpanTraceSink(sink obs.Sink) func(*Span) {
	return func(sp *Span) {
		prev := sp.InjectNanos
		for h := 0; h < sp.N; h++ {
			st := sp.Hops[h]
			name := "stage"
			if id := int(st.Stage); id >= 0 && id < len(e.stages) {
				name = e.stages[id].name
			}
			if st.EnterNanos > prev {
				sink.RunSpan(int(st.Stage), name+":rxwait",
					simtime.Cycles(prev), simtime.Cycles(st.EnterNanos))
			}
			sink.RunSpan(int(st.Stage), name,
				simtime.Cycles(st.EnterNanos), simtime.Cycles(st.ExitNanos))
			prev = st.MovedNanos
		}
		sink.Instant("deliver", simtime.Cycles(sp.DeliverNanos), map[string]any{
			"flow": sp.FlowID, "chain": sp.ChainID, "seq": sp.Seq,
		})
	}
}
