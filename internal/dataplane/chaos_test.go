// Chaos soak: seeded faults (panics, stalls, delays, drops) across a
// 3-stage chain, asserting the engine survives, restarts converge, and the
// packet-conservation invariant holds after Run returns. External test
// package because internal/faults imports internal/dataplane.
package dataplane_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/faults"
	"nfvnice/internal/telemetry"
)

// chaosReconcile sums every accounted fate of an accepted packet. Entry
// ring drops are excluded: they happen before acceptance.
func chaosReconcile(e *dataplane.Engine, entryStages map[string]bool) (uint64, uint64) {
	var midDrops uint64
	for _, s := range e.Stats() {
		if !entryStages[s.Name] {
			midDrops += s.QueueDrops
		}
	}
	return e.Injected.Load(), e.Delivered.Load() + e.OutputDrops.Load() +
		midDrops + e.NFDrops.Load() + e.FaultDrops.Load() + e.ShutdownDrops.Load()
}

// chaosSoak drives a 3-stage chain under a seeded fault schedule: the
// middle stage panics periodically and stalls past the grant deadline once;
// the first stage injects latency spikes and transient drops. The process
// must survive, the faulty stage must keep being restarted, and accounting
// must balance exactly when the dust settles. movers selects the TX-path
// shard count so supervision and conservation are soaked on both the
// serial and the sharded mover; sampleShift > 0 additionally arms the span
// recorder so the flight recorder is soaked against crashes, stalls, and
// drops (spans attached to killed packets must abort, not leak).
func chaosSoak(t *testing.T, movers, sampleShift int) {
	if testing.Short() {
		t.Skip("soak test")
	}
	e := dataplane.New(dataplane.Config{
		RingSize:         256,
		BatchSize:        16,
		Movers:           movers,
		GrantTimeout:     50 * time.Millisecond,
		DrainTimeout:     time.Second,
		RestartBackoff:   time.Millisecond,
		MaxRestarts:      -1, // faults keep firing; restarts must keep coming
		JitterSeed:       7,
		TraceSampleShift: sampleShift,
	})
	events := telemetry.NewEventLog(8192)
	e.SetEventLog(events)

	injFront := faults.New(11,
		faults.DelayOn(faults.Prob(0.002), 200*time.Microsecond),
		faults.DropOn(faults.Prob(0.01)),
	)
	injMid := faults.New(23,
		faults.PanicOn(faults.EveryNth(503), "chaos: injected panic"),
		faults.StallOn(faults.OnceAt(2000), 120*time.Millisecond),
	)
	defer injFront.Release()
	defer injMid.Release()

	a := e.AddStage("front", 1024, faults.Wrap(injFront, func(p *dataplane.Packet) {}))
	b := e.AddStage("mid", 1024, faults.Wrap(injMid, func(p *dataplane.Packet) {}))
	c := e.AddStage("back", 1024, func(p *dataplane.Packet) {})
	chain, err := e.AddChain(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, chain)
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		st := e.Stats()
		if st[b].Restarts >= 5 && st[b].Health == dataplane.Healthy &&
			e.Delivered.Load() > 5000 {
			break
		}
		p := e.GetPacket()
		p.FlowID = 0
		if !e.Inject(p) {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after chaos soak")
	}

	st := e.Stats()
	if st[b].Restarts == 0 {
		t.Error("faulty stage never restarted")
	}
	if st[b].FaultDrops == 0 {
		t.Error("no fault drops charged despite periodic panics")
	}
	if e.Delivered.Load() == 0 {
		t.Error("nothing delivered under chaos")
	}
	if inj, acc := chaosReconcile(e, map[string]bool{"front": true}); inj != acc {
		t.Errorf("conservation violated: injected=%d accounted=%d (delivered=%d nf=%d fault=%d shutdown=%d out=%d)",
			inj, acc, e.Delivered.Load(), e.NFDrops.Load(), e.FaultDrops.Load(),
			e.ShutdownDrops.Load(), e.OutputDrops.Load())
	}
	// Restarts must converge: the stage ends the run schedulable (it was
	// restarted after its last fault), or mid-probation.
	if h := st[b].Health; h == dataplane.Failed {
		// Legal only if the run ended inside a backoff window; the stage
		// must at least have been restarted several times before that.
		if st[b].Restarts < 2 {
			t.Errorf("stage stuck Failed after only %d restarts", st[b].Restarts)
		}
	}
	var restarts int
	for _, ev := range events.Events() {
		if ev.Type == "stage_restart" {
			restarts++
		}
	}
	if restarts == 0 {
		t.Error("event log shows no restarts")
	}
	if sampleShift > 0 {
		// Span accounting must close even though faults killed packets at
		// every lifecycle point: every sampled span was either completed at
		// delivery or aborted when its packet died.
		ss := e.SpanStats()
		if ss.Sampled == 0 {
			t.Error("sampling armed but no spans sampled")
		}
		if ss.Sampled != ss.Completed+ss.Aborted {
			t.Errorf("span accounting open after chaos: %+v", ss)
		}
		t.Logf("chaos spans: %+v", ss)
	}
	t.Logf("chaos: injected=%d delivered=%d restarts=%d faultDrops=%d nfDrops=%d shutdownDrops=%d",
		e.Injected.Load(), e.Delivered.Load(), st[b].Restarts, e.FaultDrops.Load(),
		e.NFDrops.Load(), e.ShutdownDrops.Load())
}

// TestChaosSoak soaks the serial TX path (one mover).
func TestChaosSoak(t *testing.T) { chaosSoak(t, 1, 0) }

// TestChaosSoakMovers2 soaks the sharded TX path: two movers own disjoint
// halves of the stages' tx rings while faults crash and stall stages, so
// conservation and supervision are certified against concurrent movers
// (CI runs this under -race).
func TestChaosSoakMovers2(t *testing.T) { chaosSoak(t, 2, 0) }

// TestChaosSoakSampled soaks the sharded TX path with the flight recorder
// armed at 1-in-16 sampling: spans ride packets through panics, stalls,
// drops, and restarts, and the Sampled == Completed + Aborted invariant
// must close when the dust settles (CI runs this under -race).
func TestChaosSoakSampled(t *testing.T) { chaosSoak(t, 2, 4) }

// TestChaosSeededReplay runs the same short chaos scenario twice with
// identical seeds and checks the fault injectors evaluated identical
// schedules — the reproducibility contract that makes chaos failures
// debuggable.
func TestChaosSeededReplay(t *testing.T) {
	plan := func() []faults.Event {
		in := faults.New(99,
			faults.PanicOn(faults.EveryNth(251), "boom"),
			faults.DropOn(faults.Prob(0.03)),
		)
		return in.Plan(5000)
	}
	a, b := plan(), plan()
	if len(a) == 0 {
		t.Fatal("empty fault plan")
	}
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
