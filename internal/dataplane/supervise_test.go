package dataplane

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nfvnice/internal/telemetry"
)

// reconcile returns the two sides of the full-run accounting invariant:
// accepted packets vs every accounted fate. Entry-stage ring drops are
// excluded — those happen before acceptance (Inject returns false without
// incrementing Injected); only mid-chain ring drops consume an accepted
// packet.
func reconcile(e *Engine) (injected, accounted uint64) {
	entry := make(map[int]bool)
	for _, ch := range e.chains {
		entry[ch[0]] = true
	}
	var midDrops uint64
	for i, s := range e.stages {
		if !entry[i] {
			midDrops += s.drops.Load()
		}
	}
	return e.Injected.Load(), e.Delivered.Load() + e.OutputDrops.Load() +
		midDrops + e.NFDrops.Load() + e.FaultDrops.Load() + e.ShutdownDrops.Load()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPanicIsolationAndRestart is the headline demo scenario: one stage of
// a 3-stage chain panics every Nth packet. The process survives, the stage
// restarts with backoff, fail-closed drops are charged at chain entry, the
// accounting reconciles after Run returns, and the event log shows the
// fault/restart/recovery timeline.
func TestPanicIsolationAndRestart(t *testing.T) {
	e := New(Config{
		RingSize:       256,
		BatchSize:      16,
		RestartBackoff: time.Millisecond,
		MaxRestarts:    -1, // unlimited: the fault keeps firing
	})
	events := telemetry.NewEventLog(4096)
	e.SetEventLog(events)

	// The fault period must exceed the probation window (probationGrants
	// grants × BatchSize packets), or the stage can never re-earn Healthy.
	var calls atomic.Uint64
	a := e.AddStage("ingress", 1024, func(p *Packet) {})
	b := e.AddStage("flaky", 1024, func(p *Packet) {
		if calls.Add(1)%600 == 0 {
			panic("injected crash")
		}
	})
	c := e.AddStage("egress", 1024, func(p *Packet) {})
	chain, _ := e.AddChain(a, b, c)
	e.MapFlow(0, chain)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		// Keep driving until every asserted-on counter has fired: a
		// fail-closed entry drop needs an Inject to land inside a restart
		// window, which fast restarts can make narrow.
		if e.Stats()[1].Restarts >= 3 && e.Delivered.Load() > 1000 &&
			e.FaultEntryDrops.Load() > 0 {
			break
		}
		if !e.Inject(&Packet{FlowID: 0}) {
			runtime.Gosched()
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return")
	}

	st := e.Stats()
	if st[1].FaultDrops == 0 {
		t.Error("panicking stage charged no fault drops")
	}
	if st[1].Restarts == 0 {
		t.Error("stage never restarted")
	}
	if e.Delivered.Load() == 0 {
		t.Error("nothing delivered despite restarts")
	}
	if e.FaultEntryDrops.Load() == 0 {
		t.Error("fail-closed chain charged no entry drops while its stage was down")
	}
	if inj, acc := reconcile(e); inj != acc {
		t.Errorf("accounting does not reconcile after Run: injected=%d accounted=%d", inj, acc)
	}

	var sawFault, sawRestart, sawRecovered bool
	for _, ev := range events.Events() {
		switch ev.Type {
		case "stage_fault":
			sawFault = true
		case "stage_restart":
			sawRestart = true
		case "stage_health":
			for _, f := range ev.Fields {
				if f.Key == "state" && f.Value == "healthy" {
					sawRecovered = true
				}
			}
		}
	}
	if !sawFault || !sawRestart || !sawRecovered {
		t.Errorf("event timeline incomplete: fault=%v restart=%v recovered=%v",
			sawFault, sawRestart, sawRecovered)
	}

	// /healthz surface: every stage reports first (in stage-id order), the
	// flaky stage's history shows its restarts, and the TX shards append
	// rows carrying their drain telemetry.
	snap := e.HealthSnapshot()
	if len(snap) < 3 {
		t.Fatalf("HealthSnapshot returned %d components, want >= 3 stages", len(snap))
	}
	if snap[1].Restarts == 0 {
		t.Error("HealthSnapshot shows no restarts for the flaky stage")
	}
	var moverRows int
	for _, c := range snap[3:] {
		if !strings.HasPrefix(c.Component, "mover/") {
			t.Errorf("unexpected non-mover component %q after the stage rows", c.Component)
			continue
		}
		moverRows++
		if c.Detail == nil {
			t.Errorf("%s row has no detail map", c.Component)
		} else if c.Detail["sweeps"] == 0 {
			t.Errorf("%s reports zero sweeps after a full run", c.Component)
		}
	}
	if moverRows == 0 {
		t.Error("HealthSnapshot has no mover rows")
	}
}

// TestWedgedHandlerDetached is the stall-watchdog regression test: a
// handler that blocks forever is detached and marked Failed within the
// grant deadline, sibling stages keep processing, and Run still returns.
func TestWedgedHandlerDetached(t *testing.T) {
	e := New(Config{
		RingSize:       64,
		BatchSize:      8,
		GrantTimeout:   20 * time.Millisecond,
		DrainTimeout:   50 * time.Millisecond,
		RestartBackoff: time.Millisecond,
		MaxRestarts:    1, // one restart, then the circuit opens
	})
	unblock := make(chan struct{})
	wedged := e.AddStage("wedged", 1024, func(p *Packet) { <-unblock })
	healthy := e.AddStage("healthy", 1024, func(p *Packet) {})
	cw, _ := e.AddChain(wedged)
	ch, _ := e.AddChain(healthy)
	e.MapFlow(0, cw)
	e.MapFlow(1, ch)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	defer close(unblock)

	// Feed the wedge packets until it re-fails past its restart budget and
	// the circuit opens; prove the scheduler survives every detach.
	waitFor(t, 5*time.Second, "wedged stage circuit-open (Failed for good)", func() bool {
		e.Inject(&Packet{FlowID: 0})
		st := e.Stats()[wedged]
		return st.Health == Failed && st.Restarts >= 1
	})

	// The same core must still grant the healthy stage.
	before := e.Delivered.Load()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && e.Delivered.Load() < before+100 {
		e.Inject(&Packet{FlowID: 1})
	}
	if got := e.Delivered.Load(); got < before+100 {
		t.Fatalf("healthy stage starved after sibling wedged: delivered %d", got-before)
	}
	if e.Stats()[wedged].FaultDrops == 0 {
		t.Error("wedged stage's in-flight packet was not charged to fault drops")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run wedged at shutdown despite the blocked handler")
	}
	if inj, acc := reconcile(e); inj != acc {
		t.Errorf("accounting does not reconcile: injected=%d accounted=%d", inj, acc)
	}
	if e.HealthSnapshot()[wedged].Healthy {
		t.Error("healthz reports the wedged stage healthy")
	}
}

// TestFailOpenBypassesDeadHop: on a FailOpen chain the mover forwards
// around a Failed stage, so delivery continues (minus that hop's work).
func TestFailOpenBypassesDeadHop(t *testing.T) {
	e := New(Config{
		RingSize:       256,
		BatchSize:      16,
		GrantTimeout:   20 * time.Millisecond,
		RestartBackoff: time.Millisecond,
		MaxRestarts:    2,
	})
	var midRuns atomic.Uint64
	a := e.AddStage("first", 1024, func(p *Packet) {})
	b := e.AddStage("dies", 1024, func(p *Packet) {
		midRuns.Add(1)
		panic("dead on arrival")
	})
	c := e.AddStage("last", 1024, func(p *Packet) {})
	chain, _ := e.AddChain(a, b, c)
	e.SetChainPolicy(chain, FailOpen)
	e.MapFlow(0, chain)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && e.Delivered.Load() < 500 {
		e.Inject(&Packet{FlowID: 0})
	}
	cancel()
	<-done

	if e.Stats()[b].Health != Failed {
		t.Errorf("middle stage health = %v, want Failed", e.Stats()[b].Health)
	}
	if e.FaultEntryDrops.Load() != 0 {
		t.Errorf("fail-open chain charged %d entry drops", e.FaultEntryDrops.Load())
	}
	if e.Delivered.Load() < 500 {
		t.Errorf("only %d delivered around the dead hop", e.Delivered.Load())
	}
	if last := e.Stats()[c]; last.Processed == 0 {
		t.Error("downstream stage processed nothing: bypass is not forwarding")
	}
	if inj, acc := reconcile(e); inj != acc {
		t.Errorf("accounting does not reconcile: injected=%d accounted=%d", inj, acc)
	}
}

// TestCircuitBreakerStopsRestarts: with MaxRestarts = N, a stage that
// fails on every grant is restarted at most N times and then left down;
// its queue is drained into FaultDrops instead of stranding packets.
func TestCircuitBreakerStopsRestarts(t *testing.T) {
	e := New(Config{
		RingSize:       256,
		BatchSize:      8,
		RestartBackoff: time.Millisecond,
		MaxRestarts:    2,
	})
	s := e.AddStage("hopeless", 1024, func(p *Packet) { panic("always") })
	chain, _ := e.AddChain(s)
	e.MapFlow(0, chain)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		e.Inject(&Packet{FlowID: 0})
		if st := e.Stats()[s]; st.Health == Failed && st.Restarts >= 2 {
			// Give it a few more backoff periods to prove it stays down.
			time.Sleep(50 * time.Millisecond)
			break
		}
	}
	st := e.Stats()[s]
	if st.Restarts != 2 {
		t.Errorf("restarts = %d, want exactly MaxRestarts = 2", st.Restarts)
	}
	if st.Health != Failed {
		t.Errorf("health = %v, want Failed (circuit open)", st.Health)
	}
	cancel()
	<-done
	if inj, acc := reconcile(e); inj != acc {
		t.Errorf("accounting does not reconcile: injected=%d accounted=%d", inj, acc)
	}
}

// TestDrainOnShutdown: packets sitting in rings at cancel are delivered by
// the bounded drain rather than dropped, and the invariant holds after Run
// returns.
func TestDrainOnShutdown(t *testing.T) {
	e := New(Config{RingSize: 512, BatchSize: 16, DrainTimeout: time.Second})
	s := e.AddStage("nf", 1024, func(p *Packet) {})
	chain, _ := e.AddChain(s)
	e.MapFlow(0, chain)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})

	// Pre-fill the ring, then run with an already-canceled context: Run
	// goes straight to the drain phase.
	const n = 300
	for i := 0; i < n; i++ {
		if !e.Inject(&Packet{FlowID: 0}) {
			t.Fatalf("inject %d rejected before Run", i)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Run(ctx)

	if got := e.Delivered.Load(); got != n {
		t.Errorf("drain delivered %d of %d pre-filled packets", got, n)
	}
	if inj, acc := reconcile(e); inj != acc {
		t.Errorf("accounting does not reconcile after Run: injected=%d accounted=%d", inj, acc)
	}
}

// TestInjectAfterRunRejected: once Run has exited, Inject and InjectBatch
// refuse packets (counting the attempts) instead of enqueueing into rings
// nobody will ever drain.
func TestInjectAfterRunRejected(t *testing.T) {
	e := New(Config{RingSize: 64, BatchSize: 8, DrainTimeout: -1})
	s := e.AddStage("nf", 1024, func(p *Packet) {})
	chain, _ := e.AddChain(s)
	e.MapFlow(0, chain)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Run(ctx)

	if e.Inject(&Packet{FlowID: 0}) {
		t.Error("Inject accepted a packet after Run exited")
	}
	batch := []*Packet{{FlowID: 0}, {FlowID: 0}, {FlowID: 0}}
	if got := e.InjectBatch(batch); got != 0 {
		t.Errorf("InjectBatch accepted %d packets after Run exited", got)
	}
	if got := e.LateDrops.Load(); got != 4 {
		t.Errorf("LateDrops = %d, want 4", got)
	}
	if inj, acc := reconcile(e); inj != acc {
		t.Errorf("accounting does not reconcile: injected=%d accounted=%d", inj, acc)
	}
}

// TestDebugPoolDoublePut: with Config.DebugPool set, returning the same
// descriptor twice panics instead of silently corrupting the freelist.
func TestDebugPoolDoublePut(t *testing.T) {
	e := New(Config{RingSize: 64, BatchSize: 8, DebugPool: true})
	p := e.GetPacket()
	e.PutPacket(p)
	defer func() {
		if recover() == nil {
			t.Error("double PutPacket did not panic with DebugPool enabled")
		}
	}()
	e.PutPacket(p)
}

// TestDebugPoolUseAfterRecycle: a handler that stashes a packet pointer
// and touches it after the engine recycled it is caught by the stage-side
// check, which names the offending stage. The panic surfaces through the
// supervision layer as a stage fault, so the engine survives it.
func TestDebugPoolUseAfterRecycle(t *testing.T) {
	e := New(Config{
		RingSize:     64,
		BatchSize:    8,
		DebugPool:    true,
		MaxRestarts:  0,
		DrainTimeout: 50 * time.Millisecond,
	})
	events := telemetry.NewEventLog(256)
	e.SetEventLog(events)
	s := e.AddStage("hoarder", 1024, func(p *Packet) {})
	chain, _ := e.AddChain(s)
	e.MapFlow(0, chain)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	// The bug under test: a producer returns a descriptor to the pool but
	// keeps the pointer, then injects it again without GetPacket. The
	// stage-side check must flag the stale descriptor, naming the stage.
	stale := e.GetPacket()
	e.PutPacket(stale)
	stale.FlowID = 0
	e.Inject(stale)
	waitFor(t, 2*time.Second, "use-after-recycle flagged as stage fault", func() bool {
		for _, ev := range events.Events() {
			if ev.Type == "stage_fault" {
				for _, f := range ev.Fields {
					if f.Key == "msg" {
						if msg, ok := f.Value.(string); ok &&
							contains(msg, "hoarder") && contains(msg, "recycled") {
							return true
						}
					}
				}
			}
		}
		return false
	})
	cancel()
	<-done
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestGrantTimerReuse: the grant deadline machinery must not wedge plain
// healthy scheduling (timer Reset/Stop/drain reuse across thousands of
// grants).
func TestGrantTimerReuse(t *testing.T) {
	// The deadline must comfortably exceed worst-case goroutine scheduling
	// latency (single-CPU -race runs), or healthy stages detach spuriously.
	e := New(Config{RingSize: 512, BatchSize: 16, GrantTimeout: 50 * time.Millisecond})
	s := e.AddStage("nf", 1024, func(p *Packet) {})
	chain, _ := e.AddChain(s)
	e.MapFlow(0, chain)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && e.Delivered.Load() < 10000 {
		p := e.GetPacket()
		if !e.Inject(p) {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	cancel()
	<-done
	if e.Delivered.Load() < 10000 {
		t.Errorf("throughput collapsed under grant deadlines: %d delivered", e.Delivered.Load())
	}
	if e.FaultDrops.Load() != 0 || e.Stats()[0].Restarts != 0 {
		t.Errorf("healthy stage tripped the watchdog: faultDrops=%d restarts=%d",
			e.FaultDrops.Load(), e.Stats()[0].Restarts)
	}
}
