package dataplane

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// testPerFlowFIFO drives seq-stamped packets from several flows through a
// 3-stage chain and asserts every flow's packets are delivered in injection
// order. This pins the FIFO contract the sharded TX path must preserve: a
// flow's path is a fixed stage sequence, every ring on it is FIFO, and each
// tx ring has exactly one consumer (its owning mover), so per-flow order
// survives any number of movers.
func testPerFlowFIFO(t *testing.T, movers int) {
	const (
		flows = 4
		total = 20000
	)
	e := New(Config{RingSize: 1024, BatchSize: 32, WeightPeriod: 0, Movers: movers})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	b := e.AddStage("b", 1024, func(p *Packet) {})
	c := e.AddStage("c", 1024, func(p *Packet) {})
	ch, err := e.AddChain(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < flows; f++ {
		e.MapFlow(f, ch)
	}

	// The sink may run concurrently when movers > 1; guard the per-flow
	// order state with a mutex (PutPacket itself is concurrency-safe).
	var (
		mu       sync.Mutex
		lastSeq  [flows]int
		gotCount int
		violated string
	)
	for f := range lastSeq {
		lastSeq[f] = -1
	}
	done := make(chan struct{})
	e.SetSink(func(ps []*Packet) {
		mu.Lock()
		for _, p := range ps {
			seq := p.Userdata.(int)
			if seq <= lastSeq[p.FlowID] && violated == "" {
				violated = "flow " + string(rune('0'+p.FlowID)) +
					": delivered out of order"
			}
			lastSeq[p.FlowID] = seq
			gotCount++
		}
		fin := gotCount == total
		mu.Unlock()
		for _, p := range ps {
			e.PutPacket(p)
		}
		if fin {
			close(done)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { e.Run(ctx); close(runDone) }()

	// One producer goroutine, flows interleaved round-robin; retry until
	// accepted so no packet is shed and every sequence number is delivered.
	// The closed-loop window stays below every ring's capacity and the
	// high watermark, so no mid-chain ring can overflow and drop.
	const inflight = 512
	injected := 0
	for seq := 0; seq < total/flows; seq++ {
		for f := 0; f < flows; f++ {
			for {
				mu.Lock()
				got := gotCount
				mu.Unlock()
				if injected-got < inflight {
					break
				}
				runtime.Gosched()
			}
			p := e.GetPacket()
			p.FlowID = f
			p.Userdata = seq
			for !e.Inject(p) {
				runtime.Gosched()
			}
			injected++
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		mu.Lock()
		got := gotCount
		mu.Unlock()
		t.Fatalf("timeout: delivered %d/%d", got, total)
	}
	cancel()
	<-runDone

	mu.Lock()
	defer mu.Unlock()
	if violated != "" {
		t.Fatal(violated)
	}
	for f := 0; f < flows; f++ {
		if want := total/flows - 1; lastSeq[f] != want {
			t.Errorf("flow %d: last seq = %d, want %d", f, lastSeq[f], want)
		}
	}
}

// TestPerFlowFIFOThreeStageChain is the end-to-end ordering regression for
// the single-mover TX path.
func TestPerFlowFIFOThreeStageChain(t *testing.T) { testPerFlowFIFO(t, 1) }

// TestPerFlowFIFOThreeStageChainMovers4 repeats the ordering regression
// with the TX path sharded four ways.
func TestPerFlowFIFOThreeStageChainMovers4(t *testing.T) { testPerFlowFIFO(t, 4) }
