package dataplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestDecisionJournalRing(t *testing.T) {
	j := NewDecisionJournal(16)
	for i := 0; i < 40; i++ {
		j.Append(Decision{Kind: DecisionWeight, Chain: i})
	}
	if j.Total() != 40 {
		t.Fatalf("Total = %d, want 40", j.Total())
	}
	if j.Dropped() != 24 {
		t.Fatalf("Dropped = %d, want 24 (40 appends into 16 slots)", j.Dropped())
	}
	tail := j.Tail(0)
	if len(tail) != 16 {
		t.Fatalf("Tail(0) holds %d, want 16", len(tail))
	}
	// Oldest-first, contiguous, ending at the newest append (Seq 39).
	for i, d := range tail {
		if want := uint64(24 + i); d.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, d.Seq, want)
		}
		if d.TimeUnixNanos == 0 {
			t.Fatalf("tail[%d] missing timestamp", i)
		}
	}
	if got := j.Tail(4); len(got) != 4 || got[3].Seq != 39 {
		t.Fatalf("Tail(4) = %d entries ending Seq %d, want 4 ending 39", len(got), got[len(got)-1].Seq)
	}
}

func TestDecisionJournalFilter(t *testing.T) {
	j := NewDecisionJournal(64)
	for i := 0; i < 30; i++ {
		k := DecisionBPOn
		if i%3 == 0 {
			k = DecisionBPOff
		}
		j.Append(Decision{Kind: k, Chain: i % 2, Stage: fmt.Sprintf("s%d", i%2)})
	}
	got := j.Filter(0, func(d Decision) bool {
		return d.Kind == DecisionBPOff && d.Chain == 0
	})
	want := 0
	for i := 0; i < 30; i++ {
		if i%3 == 0 && i%2 == 0 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Filter matched %d, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("filtered results not in append order: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}

// TestDecisionJournalConcurrent hammers Append from many writers while
// readers Tail/Filter/serve concurrently; run under -race this is the
// journal's thread-safety proof.
func TestDecisionJournalConcurrent(t *testing.T) {
	j := NewDecisionJournal(128)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tail := j.Tail(32)
				for i := 1; i < len(tail); i++ {
					if tail[i].Seq <= tail[i-1].Seq {
						t.Errorf("tail out of order: %d then %d", tail[i-1].Seq, tail[i].Seq)
						return
					}
				}
				j.Filter(16, func(d Decision) bool { return d.Kind == DecisionBPOn })
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				j.Append(Decision{Kind: DecisionBPOn, Chain: w, QueueDepth: i})
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	const total = writers * perWriter
	if j.Total() != total {
		t.Fatalf("Total = %d, want %d", j.Total(), total)
	}
	if j.Dropped() != total-128 {
		t.Fatalf("Dropped = %d, want %d", j.Dropped(), total-128)
	}
}

func TestDecisionEndpoint(t *testing.T) {
	e := New(Config{RingSize: 64})
	e.record(Decision{Kind: DecisionBPOn, Chain: 2, Stage: "nat", QueueDepth: 51, HighWater: 48, LowWater: 32})
	e.record(Decision{Kind: DecisionBPOff, Chain: 2, Stage: "nat", QueueDepth: 7, HighWater: 48, LowWater: 32})
	e.record(Decision{Kind: DecisionWeight, Chain: -1, Stage: "fw", OldWeight: 100, NewWeight: 180})

	mux := http.NewServeMux()
	e.AddDebugEndpoints(mux)

	get := func(url string) (int, map[string]any) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
		return rec.Code, body
	}

	code, body := get("/debug/decisions")
	if code != 200 {
		t.Fatalf("/debug/decisions -> %d", code)
	}
	if body["total"].(float64) != 3 {
		t.Fatalf("total = %v, want 3", body["total"])
	}
	if n := len(body["decisions"].([]any)); n != 3 {
		t.Fatalf("got %d decisions, want 3", n)
	}

	_, body = get("/debug/decisions?kind=bp_on")
	ds := body["decisions"].([]any)
	if len(ds) != 1 {
		t.Fatalf("kind=bp_on matched %d, want 1", len(ds))
	}
	d := ds[0].(map[string]any)
	if d["kind"] != "bp_on" || d["qdepth"].(float64) != 51 || d["high_water"].(float64) != 48 {
		t.Fatalf("bp_on record lost its cause: %v", d)
	}

	_, body = get("/debug/decisions?chain=2&n=1")
	ds = body["decisions"].([]any)
	if len(ds) != 1 || ds[0].(map[string]any)["kind"] != "bp_off" {
		t.Fatalf("chain=2&n=1 should return the newest chain-2 record, got %v", ds)
	}

	_, body = get("/debug/decisions?stage=fw")
	ds = body["decisions"].([]any)
	if len(ds) != 1 || ds[0].(map[string]any)["kind"] != "weight" {
		t.Fatalf("stage=fw should match the weight record, got %v", ds)
	}

	// /debug/spans mounts when sampling is on.
	e2 := New(Config{TraceSampleShift: 4})
	mux2 := http.NewServeMux()
	e2.AddDebugEndpoints(mux2)
	rec := httptest.NewRecorder()
	mux2.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/spans -> %d", rec.Code)
	}
	var st map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/debug/spans bad JSON: %v", err)
	}
}

func TestJournalDisabled(t *testing.T) {
	e := New(Config{DecisionJournalSize: -1})
	if e.Decisions() != nil {
		t.Fatal("journal allocated despite DecisionJournalSize=-1")
	}
	e.record(Decision{Kind: DecisionBPOn}) // must not panic
	mux := http.NewServeMux()
	e.AddDebugEndpoints(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/decisions should be unmounted when disabled, got %d", rec.Code)
	}
}
