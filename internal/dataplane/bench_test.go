package dataplane

import (
	"context"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// benchConfig is shared by the steady-state benchmarks so pre/post
// comparisons in BENCH_dataplane.json measure the same topology.
func benchConfig() Config {
	return Config{RingSize: 4096, BatchSize: 256, WeightPeriod: 0}
}

// benchInflight bounds the closed-loop window. Keeping it below every ring's
// high watermark and the output channel capacity guarantees zero drops, so
// exactly b.N packets cross the pipeline and the benchmark is deterministic.
const benchInflight = 1024

// benchBatch is the injection batch size for the bulk path.
const benchBatch = 64

func newBenchEngine(b *testing.B, stages int) *Engine {
	return newBenchEngineCfg(b, stages, benchConfig())
}

func newBenchEngineMovers(b *testing.B, stages, movers int) *Engine {
	cfg := benchConfig()
	cfg.Movers = movers
	return newBenchEngineCfg(b, stages, cfg)
}

func newBenchEngineCfg(b *testing.B, stages int, cfg Config) *Engine {
	e := New(cfg)
	ids := make([]int, stages)
	for i := range ids {
		ids[i] = e.AddStage("nf"+string(rune('a'+i)), 1024, func(p *Packet) {})
	}
	ch, err := e.AddChain(ids...)
	if err != nil {
		b.Fatal(err)
	}
	e.MapFlow(0, ch)
	return e
}

func reportRate(b *testing.B, elapsed time.Duration) {
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "pps")
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ns/pkt")
	}
}

// runChainBench drives b.N packets through a chain of `stages` no-op stages
// on the batch-amortized hot path — PacketCache allocation, InjectBatch
// injection, Sink delivery, recycling — and reports pps and ns/pkt. The
// handler is a no-op so the measurement isolates framework overhead:
// injection, ring transfer per hop, scheduling, movement, delivery and
// recycling.
func runChainBench(b *testing.B, stages int) {
	runChainBenchEngine(b, newBenchEngine(b, stages))
}

func runChainBenchEngine(b *testing.B, e *Engine) {
	var received atomic.Int64
	sinkCache := e.NewPacketCache(2 * benchBatch)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(2 * benchBatch)
	batch := make([]*Packet, benchBatch)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	injected := 0
	for int(received.Load()) < b.N {
		n := b.N - injected
		if n > benchBatch {
			n = benchBatch
		}
		if n > 0 && injected-int(received.Load()) < benchInflight {
			for i := 0; i < n; i++ {
				p := cache.Get()
				p.FlowID = 0
				p.Size = 64
				batch[i] = p
			}
			injected += e.InjectBatch(batch[:n])
		} else {
			runtime.Gosched()
		}
	}
	reportRate(b, time.Since(start))
}

// runChainBenchChannel is the compatibility path: per-packet Inject and the
// Output channel, still recycling descriptors through the freelist.
func runChainBenchChannel(b *testing.B, stages int) {
	e := newBenchEngine(b, stages)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	out := e.Output()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	injected, received := 0, 0
	for received < b.N {
		if injected < b.N && injected-received < benchInflight {
			p := e.GetPacket()
			p.FlowID = 0
			p.Size = 64
			if e.Inject(p) {
				injected++
				continue
			}
			e.PutPacket(p)
		}
		select {
		case p := <-out:
			e.PutPacket(p)
			received++
		default:
			runtime.Gosched()
		}
	}
	reportRate(b, time.Since(start))
}

// BenchmarkInjectSteadyState measures the full inject→process→deliver path
// through a single no-op stage on the batch-amortized hot path.
func BenchmarkInjectSteadyState(b *testing.B) { runChainBench(b, 1) }

// BenchmarkChain3Stages measures a three-stage service chain: each packet
// crosses four rings (entry + two hops + delivery).
func BenchmarkChain3Stages(b *testing.B) { runChainBench(b, 3) }

// BenchmarkChain3StagesSampled is the flight-recorder overhead gate: the
// same 3-stage chain with 1-in-1024 span sampling armed. The unsampled
// 1023/1024 of packets pay only the per-batch sequence add and a nil span
// check per hop, so this must stay within a few percent of the unsampled
// BenchmarkChain3Stages.
func BenchmarkChain3StagesSampled(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceSampleShift = 10 // 1 in 1024
	runChainBenchEngine(b, newBenchEngineCfg(b, 3, cfg))
}

// BenchmarkInjectSteadyStateChannel and BenchmarkChain3StagesChannel keep
// the pre-batching API (per-packet Inject, Output channel) measurable; the
// pre-PR baseline in BENCH_dataplane.json was recorded on this path.
func BenchmarkInjectSteadyStateChannel(b *testing.B) { runChainBenchChannel(b, 1) }
func BenchmarkChain3StagesChannel(b *testing.B)     { runChainBenchChannel(b, 3) }

// runChainBenchMovers is the movers-sweep variant of runChainBench: a
// 3-stage chain with the TX path sharded across the given mover count.
// With Movers > 1 the sink runs concurrently, so delivery recycles through
// the lock-free shared freelist (PutPacket) instead of a single-goroutine
// PacketCache; every sweep point uses the same sink so the curve isolates
// mover parallelism, not recycle-path differences.
func runChainBenchMovers(b *testing.B, stages, movers int) {
	e := newBenchEngineMovers(b, stages, movers)
	var received atomic.Int64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(2 * benchBatch)
	batch := make([]*Packet, benchBatch)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	injected := 0
	for int(received.Load()) < b.N {
		n := b.N - injected
		if n > benchBatch {
			n = benchBatch
		}
		if n > 0 && injected-int(received.Load()) < benchInflight {
			for i := 0; i < n; i++ {
				p := cache.Get()
				p.FlowID = 0
				p.Size = 64
				batch[i] = p
			}
			injected += e.InjectBatch(batch[:n])
		} else {
			runtime.Gosched()
		}
	}
	reportRate(b, time.Since(start))
}

// BenchmarkChain3StagesMovers is the multi-core scaling gate for the
// sharded TX path: the same 3-stage chain at 1, 2 and 4 movers. On a
// ≥4-CPU runner the 4-mover point should reach ≥1.8× the single-mover
// pps; on fewer CPUs the curve flattens (the shards time-share) but must
// not collapse below the serial mover.
func BenchmarkChain3StagesMovers(b *testing.B) {
	for _, m := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(m), func(b *testing.B) {
			runChainBenchMovers(b, 3, m)
		})
	}
}

// TestSteadyStateZeroAllocs is the allocation gate for the hot path: after
// warm-up, pushing packets through a running chain must not allocate —
// descriptors come from the freelist and every counter, stamp and ring
// operation is allocation-free. CI fails on any regression here.
func TestSteadyStateZeroAllocs(t *testing.T) {
	e := New(benchConfig())
	a := e.AddStage("a", 1024, func(p *Packet) {})
	bID := e.AddStage("b", 1024, func(p *Packet) {})
	ch, err := e.AddChain(a, bID)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	var received atomic.Int64
	sinkCache := e.NewPacketCache(512)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(512)
	batch := make([]*Packet, 256)
	sent := 0
	push := func() {
		for i := range batch {
			p := cache.Get()
			p.FlowID = 0
			p.Size = 64
			batch[i] = p
		}
		sent += e.InjectBatch(batch)
		for int(received.Load()) < sent {
			runtime.Gosched()
		}
	}
	// Warm the freelist and reach steady state before measuring.
	for i := 0; i < 8; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(50, push)
	perPacket := allocs / float64(len(batch))
	if perPacket > 0.01 {
		t.Fatalf("steady state allocates: %.4f allocs/packet (%.1f per %d-packet batch)",
			perPacket, allocs, len(batch))
	}
}

// TestSteadyStateZeroAllocsMovers2 holds the allocation gate on the
// sharded TX path: with two movers sweeping concurrently (park/wake ladder
// included) the steady state must still not allocate. Delivery recycles
// via PutPacket because the sink runs on two mover goroutines.
func TestSteadyStateZeroAllocsMovers2(t *testing.T) {
	cfg := benchConfig()
	cfg.Movers = 2
	e := New(cfg)
	a := e.AddStage("a", 1024, func(p *Packet) {})
	bID := e.AddStage("b", 1024, func(p *Packet) {})
	ch, err := e.AddChain(a, bID)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	var received atomic.Int64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(512)
	batch := make([]*Packet, 256)
	sent := 0
	push := func() {
		for i := range batch {
			p := cache.Get()
			p.FlowID = 0
			p.Size = 64
			batch[i] = p
		}
		sent += e.InjectBatch(batch)
		for int(received.Load()) < sent {
			runtime.Gosched()
		}
	}
	for i := 0; i < 8; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(50, push)
	perPacket := allocs / float64(len(batch))
	if perPacket > 0.01 {
		t.Fatalf("sharded steady state allocates: %.4f allocs/packet (%.1f per %d-packet batch)",
			perPacket, allocs, len(batch))
	}
}
