package dataplane

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchConfig is shared by the steady-state benchmarks so pre/post
// comparisons in BENCH_dataplane.json measure the same topology.
func benchConfig() Config {
	return Config{RingSize: 4096, BatchSize: 256, WeightPeriod: 0}
}

// benchInflight bounds the closed-loop window. Keeping it below every ring's
// high watermark and the output channel capacity guarantees zero drops, so
// exactly b.N packets cross the pipeline and the benchmark is deterministic.
const benchInflight = 1024

// benchBatch is the injection batch size for the bulk path.
const benchBatch = 64

func newBenchEngine(b *testing.B, stages int) *Engine {
	return newBenchEngineCfg(b, stages, benchConfig())
}

// newBenchEngineMovers builds the multi-core scaling topology: `movers` TX
// shards AND `movers` scheduler cores with the stages spread across them
// (stage i → core i mod movers), so added shards bring real parallelism
// instead of time-sharing one scheduler loop. Single-mover configs reduce
// to the serial topology the other benchmarks use.
func newBenchEngineMovers(b *testing.B, stages, movers int) *Engine {
	cfg := benchConfig()
	cfg.Movers = movers
	cfg.Cores = movers
	e := New(cfg)
	ids := make([]int, stages)
	for i := range ids {
		ids[i] = e.AddStageOn("nf"+string(rune('a'+i)), 1024, i%movers, func(p *Packet) {})
	}
	ch, err := e.AddChain(ids...)
	if err != nil {
		b.Fatal(err)
	}
	e.MapFlow(0, ch)
	return e
}

func newBenchEngineCfg(b *testing.B, stages int, cfg Config) *Engine {
	e := New(cfg)
	ids := make([]int, stages)
	for i := range ids {
		ids[i] = e.AddStage("nf"+string(rune('a'+i)), 1024, func(p *Packet) {})
	}
	ch, err := e.AddChain(ids...)
	if err != nil {
		b.Fatal(err)
	}
	e.MapFlow(0, ch)
	return e
}

func reportRate(b *testing.B, elapsed time.Duration) {
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "pps")
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ns/pkt")
	}
}

// runChainBench drives b.N packets through a chain of `stages` no-op stages
// on the batch-amortized hot path — PacketCache allocation, InjectBatch
// injection, Sink delivery, recycling — and reports pps and ns/pkt. The
// handler is a no-op so the measurement isolates framework overhead:
// injection, ring transfer per hop, scheduling, movement, delivery and
// recycling.
func runChainBench(b *testing.B, stages int) {
	runChainBenchEngine(b, newBenchEngine(b, stages))
}

func runChainBenchEngine(b *testing.B, e *Engine) {
	var received atomic.Int64
	sinkCache := e.NewPacketCache(2 * benchBatch)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(2 * benchBatch)
	batch := make([]*Packet, benchBatch)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	injected := 0
	for int(received.Load()) < b.N {
		n := b.N - injected
		if n > benchBatch {
			n = benchBatch
		}
		if n > 0 && injected-int(received.Load()) < benchInflight {
			for i := 0; i < n; i++ {
				p := cache.Get()
				p.FlowID = 0
				p.Size = 64
				batch[i] = p
			}
			injected += e.InjectBatch(batch[:n])
		} else {
			runtime.Gosched()
		}
	}
	reportRate(b, time.Since(start))
}

// runChainBenchChannel is the compatibility path: per-packet Inject and the
// Output channel, still recycling descriptors through the freelist.
func runChainBenchChannel(b *testing.B, stages int) {
	e := newBenchEngine(b, stages)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	out := e.Output()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	injected, received := 0, 0
	for received < b.N {
		if injected < b.N && injected-received < benchInflight {
			p := e.GetPacket()
			p.FlowID = 0
			p.Size = 64
			if e.Inject(p) {
				injected++
				continue
			}
			e.PutPacket(p)
		}
		select {
		case p := <-out:
			e.PutPacket(p)
			received++
		default:
			runtime.Gosched()
		}
	}
	reportRate(b, time.Since(start))
}

// BenchmarkInjectSteadyState measures the full inject→process→deliver path
// through a single no-op stage on the batch-amortized hot path.
func BenchmarkInjectSteadyState(b *testing.B) { runChainBench(b, 1) }

// BenchmarkChain3Stages measures a three-stage service chain: each packet
// crosses four rings (entry + two hops + delivery).
func BenchmarkChain3Stages(b *testing.B) { runChainBench(b, 3) }

// BenchmarkChain3StagesSampled is the flight-recorder overhead gate: the
// same 3-stage chain with 1-in-1024 span sampling armed. The unsampled
// 1023/1024 of packets pay only the per-batch sequence add and a nil span
// check per hop, so this must stay within a few percent of the unsampled
// BenchmarkChain3Stages.
func BenchmarkChain3StagesSampled(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceSampleShift = 10 // 1 in 1024
	runChainBenchEngine(b, newBenchEngineCfg(b, 3, cfg))
}

// BenchmarkInjectSteadyStateChannel and BenchmarkChain3StagesChannel keep
// the pre-batching API (per-packet Inject, Output channel) measurable; the
// pre-PR baseline in BENCH_dataplane.json was recorded on this path.
func BenchmarkInjectSteadyStateChannel(b *testing.B) { runChainBenchChannel(b, 1) }
func BenchmarkChain3StagesChannel(b *testing.B)      { runChainBenchChannel(b, 3) }

// runChainBenchMovers is the multi-core variant of runChainBench: a
// 3-stage chain with the TX path sharded across `movers` shards, the
// scheduler spread over as many cores, and injection through a registered
// ProducerHandle lane (the contention-free entry path the scaling work
// added). With Movers > 1 the sink runs concurrently, so delivery recycles
// through the batch freelist path (PutPacketBatch); every sweep point uses
// the same sink so the curve isolates mover parallelism, not recycle-path
// differences.
func runChainBenchMovers(b *testing.B, stages, movers int) {
	e := newBenchEngineMovers(b, stages, movers)
	var received atomic.Int64
	e.SetSink(func(ps []*Packet) {
		e.PutPacketBatch(ps)
		received.Add(int64(len(ps)))
	})
	h := e.ProducerHandle(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(2 * benchBatch)
	batch := make([]*Packet, benchBatch)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	injected := 0
	for int(received.Load()) < b.N {
		n := b.N - injected
		if n > benchBatch {
			n = benchBatch
		}
		if n > 0 && injected-int(received.Load()) < benchInflight {
			for i := 0; i < n; i++ {
				p := cache.Get()
				p.FlowID = 0
				p.Size = 64
				batch[i] = p
			}
			k := h.InjectBatch(batch[:n])
			injected += k
			// The lane kept what it accepted; recycle nothing — the
			// rejected tail is retried next pass via fresh Gets, so
			// return it to the cache.
			for _, p := range batch[k:n] {
				cache.Put(p)
			}
		} else {
			runtime.Gosched()
		}
	}
	reportRate(b, time.Since(start))
}

// BenchmarkChain3StagesMovers is the multi-core scaling gate for the
// sharded TX path: the same 3-stage chain at 1, 2 and 4 movers, with the
// scheduler cores scaled alongside and injection on the lane path. On a
// ≥4-CPU runner the 4-mover point must reach ≥2.8× the single-mover pps
// (TestMoverScalingGate enforces it); on fewer CPUs the curve flattens
// (the shards time-share) but must not collapse below the serial mover.
func BenchmarkChain3StagesMovers(b *testing.B) {
	for _, m := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(m), func(b *testing.B) {
			runChainBenchMovers(b, 3, m)
		})
	}
}

// runFanIn drives b.N packets from `producers` concurrent goroutines into
// one single-stage chain and reports the aggregate rate. The shared variant
// funnels every producer through Engine.InjectBatch — all of them CASing on
// the entry ring's reservation index — while the lanes variant gives each
// producer a private SPSC lane; the gap between the two is the entry-side
// fan-in contention the lanes eliminate.
func runFanIn(b *testing.B, producers int, lanes bool) {
	e := newBenchEngineMovers(b, 1, 1)
	var received atomic.Int64
	e.SetSink(func(ps []*Packet) {
		e.PutPacketBatch(ps)
		received.Add(int64(len(ps)))
	})
	handles := make([]*ProducerHandle, producers)
	if lanes {
		for i := range handles {
			handles[i] = e.ProducerHandle(0)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	var injected atomic.Int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			cache := e.NewPacketCache(2 * benchBatch)
			batch := make([]*Packet, benchBatch)
			for {
				have := int(injected.Load())
				n := b.N - have
				if n <= 0 {
					return
				}
				if n > benchBatch {
					n = benchBatch
				}
				if have-int(received.Load()) >= benchInflight {
					runtime.Gosched()
					continue
				}
				// Reserve our slice of the budget optimistically; if
				// another producer got there first the ring/lane feedback
				// self-limits via the inflight window.
				if !injected.CompareAndSwap(int64(have), int64(have+n)) {
					continue
				}
				for i := 0; i < n; i++ {
					p := cache.Get()
					p.FlowID = 0
					p.Size = 64
					batch[i] = p
				}
				if lanes {
					// The lane keeps what it accepted; spin the rejected
					// tail back in (transient per-producer backpressure).
					rem := batch[:n]
					for len(rem) > 0 {
						rem = rem[handles[pi].InjectBatch(rem):]
						if len(rem) > 0 {
							runtime.Gosched()
						}
					}
				} else {
					// Engine.InjectBatch consumes the whole slice; sheds
					// (none expected under the inflight window) recycle
					// internally and shrink the effective budget.
					if k := e.InjectBatch(batch[:n]); k < n {
						injected.Add(int64(k - n))
					}
				}
			}
		}(pi)
	}
	wg.Wait()
	for int(received.Load()) < int(injected.Load()) {
		runtime.Gosched()
	}
	reportRate(b, time.Since(start))
}

// BenchmarkFanIn4Producers measures 4-producer entry fan-in on both entry
// paths. The contention gap only shows on multi-CPU hosts; on one CPU the
// two converge (producers time-share instead of CASing concurrently).
func BenchmarkFanIn4Producers(b *testing.B) {
	b.Run("shared", func(b *testing.B) { runFanIn(b, 4, false) })
	b.Run("lanes", func(b *testing.B) { runFanIn(b, 4, true) })
}

// TestMoverScalingGate is the CI scaling gate in test form: it runs the
// 3-stage closed loop at 1 and 4 movers (cores scaled alongside) and
// requires the 4-mover point to reach ≥2.8× the single-mover throughput on
// a ≥4-CPU runner, best of three attempts. On smaller hosts the shards
// time-share one CPU, so the gate only demands flat-not-collapsed (≥0.7×).
func TestMoverScalingGate(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling gate skipped in -short mode")
	}
	const pkts = 200_000
	run := func(movers int) float64 {
		e := newBenchEngineMoversT(t, 3, movers)
		var received atomic.Int64
		e.SetSink(func(ps []*Packet) {
			e.PutPacketBatch(ps)
			received.Add(int64(len(ps)))
		})
		h := e.ProducerHandle(0)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go e.Run(ctx)
		cache := e.NewPacketCache(2 * benchBatch)
		batch := make([]*Packet, benchBatch)
		start := time.Now()
		injected := 0
		for int(received.Load()) < pkts {
			n := pkts - injected
			if n > benchBatch {
				n = benchBatch
			}
			if n > 0 && injected-int(received.Load()) < benchInflight {
				for i := 0; i < n; i++ {
					p := cache.Get()
					p.FlowID = 0
					p.Size = 64
					batch[i] = p
				}
				k := h.InjectBatch(batch[:n])
				injected += k
				for _, p := range batch[k:n] {
					cache.Put(p)
				}
			} else {
				runtime.Gosched()
			}
		}
		return float64(pkts) / time.Since(start).Seconds()
	}
	cpus := runtime.NumCPU()
	want := 2.8
	if cpus < 4 {
		want = 0.7
	}
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		base := run(1)
		wide := run(4)
		if base > 0 {
			if r := wide / base; r > best {
				best = r
			}
		}
		if best >= want {
			break
		}
	}
	if best < want {
		t.Fatalf("mover scaling 4v1 = %.2fx, want >= %.2fx (NumCPU=%d)", best, want, cpus)
	}
}

// newBenchEngineMoversT is newBenchEngineMovers for tests.
func newBenchEngineMoversT(t *testing.T, stages, movers int) *Engine {
	cfg := benchConfig()
	cfg.Movers = movers
	cfg.Cores = movers
	e := New(cfg)
	ids := make([]int, stages)
	for i := range ids {
		ids[i] = e.AddStageOn("nf"+string(rune('a'+i)), 1024, i%movers, func(p *Packet) {})
	}
	ch, err := e.AddChain(ids...)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	return e
}

// TestSteadyStateZeroAllocs is the allocation gate for the hot path: after
// warm-up, pushing packets through a running chain must not allocate —
// descriptors come from the freelist and every counter, stamp and ring
// operation is allocation-free. CI fails on any regression here.
func TestSteadyStateZeroAllocs(t *testing.T) {
	e := New(benchConfig())
	a := e.AddStage("a", 1024, func(p *Packet) {})
	bID := e.AddStage("b", 1024, func(p *Packet) {})
	ch, err := e.AddChain(a, bID)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	var received atomic.Int64
	sinkCache := e.NewPacketCache(512)
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(512)
	batch := make([]*Packet, 256)
	sent := 0
	push := func() {
		for i := range batch {
			p := cache.Get()
			p.FlowID = 0
			p.Size = 64
			batch[i] = p
		}
		sent += e.InjectBatch(batch)
		for int(received.Load()) < sent {
			runtime.Gosched()
		}
	}
	// Warm the freelist and reach steady state before measuring.
	for i := 0; i < 8; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(50, push)
	perPacket := allocs / float64(len(batch))
	if perPacket > 0.01 {
		t.Fatalf("steady state allocates: %.4f allocs/packet (%.1f per %d-packet batch)",
			perPacket, allocs, len(batch))
	}
}

// TestSteadyStateZeroAllocsMovers2 holds the allocation gate on the
// sharded TX path: with two movers sweeping concurrently (park/wake ladder
// included) the steady state must still not allocate. Delivery recycles
// via PutPacket because the sink runs on two mover goroutines.
func TestSteadyStateZeroAllocsMovers2(t *testing.T) {
	cfg := benchConfig()
	cfg.Movers = 2
	e := New(cfg)
	a := e.AddStage("a", 1024, func(p *Packet) {})
	bID := e.AddStage("b", 1024, func(p *Packet) {})
	ch, err := e.AddChain(a, bID)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	var received atomic.Int64
	e.SetSink(func(ps []*Packet) {
		for _, p := range ps {
			e.PutPacket(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(512)
	batch := make([]*Packet, 256)
	sent := 0
	push := func() {
		for i := range batch {
			p := cache.Get()
			p.FlowID = 0
			p.Size = 64
			batch[i] = p
		}
		sent += e.InjectBatch(batch)
		for int(received.Load()) < sent {
			runtime.Gosched()
		}
	}
	for i := 0; i < 8; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(50, push)
	perPacket := allocs / float64(len(batch))
	if perPacket > 0.01 {
		t.Fatalf("sharded steady state allocates: %.4f allocs/packet (%.1f per %d-packet batch)",
			perPacket, allocs, len(batch))
	}
}

// TestSteadyStateZeroAllocsMovers4 is the allocation gate for the full
// scaling path: four movers over four scheduler cores, injection through a
// ProducerHandle lane (drain-time routing, adaptive batch, recycler
// flushes), delivery through PutPacketBatch. The whole
// lane→route→process→move→deliver→recycle loop must stay allocation-free.
func TestSteadyStateZeroAllocsMovers4(t *testing.T) {
	e := newBenchEngineMoversT(t, 2, 4)
	var received atomic.Int64
	e.SetSink(func(ps []*Packet) {
		e.PutPacketBatch(ps)
		received.Add(int64(len(ps)))
	})
	h := e.ProducerHandle(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(512)
	batch := make([]*Packet, 256)
	sent := 0
	push := func() {
		remaining := len(batch)
		for remaining > 0 {
			for i := 0; i < remaining; i++ {
				p := cache.Get()
				p.FlowID = 0
				p.Size = 64
				batch[i] = p
			}
			k := h.InjectBatch(batch[:remaining])
			sent += k
			for _, p := range batch[k:remaining] {
				cache.Put(p)
			}
			remaining -= k
			for int(received.Load()) < sent {
				runtime.Gosched()
			}
		}
	}
	for i := 0; i < 8; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(50, push)
	perPacket := allocs / float64(len(batch))
	if perPacket > 0.01 {
		t.Fatalf("lane steady state allocates: %.4f allocs/packet (%.1f per %d-packet batch)",
			perPacket, allocs, len(batch))
	}
}
