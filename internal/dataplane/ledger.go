package dataplane

// Ledger is a point-in-time snapshot of the engine's global packet-accounting
// counters, packaged so the conservation identity can be checked (or
// serialized into an experiment manifest) without touching the atomics
// directly. See the reconciliation comment on Engine: at quiescence — and,
// with the shutdown drain, after Run returns —
//
//	Injected == Delivered + MidRingDrops + OutputDrops + NFDrops
//	          + FaultDrops + ShutdownDrops + RemoteDelivered + RemoteDrops
//
// The pre-acceptance classes (EntryDrops, FaultEntryDrops, LateDrops, and the
// entry-ring portion of RingDrops) are reported for completeness but are not
// part of the identity: those packets were never counted Injected.
type Ledger struct {
	Injected        uint64 `json:"injected"`
	Delivered       uint64 `json:"delivered"`
	MidRingDrops    uint64 `json:"mid_ring_drops"`
	OutputDrops     uint64 `json:"output_drops"`
	NFDrops         uint64 `json:"nf_drops"`
	FaultDrops      uint64 `json:"fault_drops"`
	ShutdownDrops   uint64 `json:"shutdown_drops"`
	RemoteDelivered uint64 `json:"remote_delivered"`
	RemoteDrops     uint64 `json:"remote_drops"`

	// Pre-acceptance classes (not part of the identity).
	EntryDrops      uint64 `json:"entry_drops"`
	FaultEntryDrops uint64 `json:"fault_entry_drops"`
	LateDrops       uint64 `json:"late_drops"`
	RingDrops       uint64 `json:"ring_drops"`
	ThrottleEvents  uint64 `json:"throttle_events"`
}

// LedgerSnapshot reads the global counters. Each counter is read atomically,
// but the set is not a consistent cut while the engine is running; call it at
// quiescence (or after Run returns) when Residual must be exact.
func (e *Engine) LedgerSnapshot() Ledger {
	return Ledger{
		Injected:        e.Injected.Load(),
		Delivered:       e.Delivered.Load(),
		MidRingDrops:    e.MidRingDrops.Load(),
		OutputDrops:     e.OutputDrops.Load(),
		NFDrops:         e.NFDrops.Load(),
		FaultDrops:      e.FaultDrops.Load(),
		ShutdownDrops:   e.ShutdownDrops.Load(),
		RemoteDelivered: e.RemoteDelivered.Load(),
		RemoteDrops:     e.RemoteDrops.Load(),
		EntryDrops:      e.EntryDrops.Load(),
		FaultEntryDrops: e.FaultEntryDrops.Load(),
		LateDrops:       e.LateDrops.Load(),
		RingDrops:       e.RingDrops.Load(),
		ThrottleEvents:  e.ThrottleEvents.Load(),
	}
}

// Accounted sums the post-acceptance outcome classes.
func (l Ledger) Accounted() uint64 {
	return l.Delivered + l.MidRingDrops + l.OutputDrops + l.NFDrops +
		l.FaultDrops + l.ShutdownDrops + l.RemoteDelivered + l.RemoteDrops
}

// Residual is Injected minus Accounted: zero at quiescence, positive while
// packets are in flight, and never negative once the pipeline has settled.
func (l Ledger) Residual() int64 {
	return int64(l.Injected) - int64(l.Accounted())
}

// QueueDepths writes the instantaneous receive-ring occupancy of every stage
// into out (grown if needed) and returns it, indexed by stage id. The reads
// are individually atomic but not a consistent cut; intended for bounded-queue
// sampling, not exact accounting.
func (e *Engine) QueueDepths(out []int) []int {
	if cap(out) < len(e.stages) {
		out = make([]int, len(e.stages))
	}
	out = out[:len(e.stages)]
	for i, s := range e.stages {
		out[i] = s.rx.Len()
	}
	return out
}

// NumChains reports how many chains have been added.
func (e *Engine) NumChains() int { return len(e.chains) }

// ChainStages returns a copy of the stage-id path of one chain, or nil if the
// chain id is out of range.
func (e *Engine) ChainStages(chainID int) []int {
	if chainID < 0 || chainID >= len(e.chains) {
		return nil
	}
	return append([]int(nil), e.chains[chainID]...)
}
