package dataplane

// The flight recorder's decision-journal half: every control-plane decision
// — backpressure edges, weight pushes, supervision transitions — is appended
// to a bounded ring as a structured record carrying its cause (queue depth
// against the watermarks, load×cost behind a weight, failure streak behind
// a restart), so "why did the engine throttle chain 2 at 14:03?" is
// answerable from the journal alone.
//
// Writers are the control goroutine (backpressure, weights, supervised
// restarts) and the scheduler goroutines (grant-deadline detach, panic
// fail, probation promotions) — all cold paths that fire on transitions,
// never per packet, so a short mutex-guarded critical section is fine and
// keeps readers trivially consistent. When the ring wraps, the oldest
// record is overwritten and counted in Dropped.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DecisionKind classifies a journal record.
type DecisionKind uint8

// Decision kinds.
const (
	// DecisionBPOn and DecisionBPOff are the chain-throttle edges of the
	// watermark backpressure machine (the paper's §3.2): the record names
	// the stage whose queue crossed the watermark and the depth it had.
	DecisionBPOn DecisionKind = iota
	DecisionBPOff
	// DecisionWeight is a rate-cost controller weight push (§3.3): the
	// record carries the load×cost inputs and the old→new weight.
	DecisionWeight
	// DecisionHealth is a supervision state transition (Healthy, Degraded,
	// Failed, Restarting) with the fault note when one caused it.
	DecisionHealth
	// DecisionRestart is a supervised worker respawn after backoff.
	DecisionRestart
	// DecisionCircuitOpen marks a stage failed permanently after
	// MaxRestarts consecutive failures.
	DecisionCircuitOpen
	// DecisionChainDown and DecisionChainUp are the fail-closed entry
	// gate edges for chains through a Failed stage.
	DecisionChainDown
	DecisionChainUp
	// DecisionRemoteReconnect is a remote link recovering after an outage:
	// the record carries the peer address and how many dials it took.
	DecisionRemoteReconnect
	// DecisionRemoteCircuitOpen is a remote link declared dead after
	// MaxDials consecutive failed dials.
	DecisionRemoteCircuitOpen
)

func (k DecisionKind) String() string {
	switch k {
	case DecisionBPOn:
		return "bp_on"
	case DecisionBPOff:
		return "bp_off"
	case DecisionWeight:
		return "weight"
	case DecisionHealth:
		return "health"
	case DecisionRestart:
		return "restart"
	case DecisionCircuitOpen:
		return "circuit_open"
	case DecisionChainDown:
		return "chain_down"
	case DecisionChainUp:
		return "chain_up"
	case DecisionRemoteReconnect:
		return "remote_reconnect"
	case DecisionRemoteCircuitOpen:
		return "remote_circuit_open"
	default:
		return "?"
	}
}

// MarshalJSON renders the kind as its string name.
func (k DecisionKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Decision is one control-plane decision with its cause. Fields irrelevant
// to a kind are zero and omitted from JSON; Chain is -1 when the decision
// is not chain-scoped.
type Decision struct {
	// Seq is the journal-assigned monotonic sequence number; TimeUnixNanos
	// the wall-clock append time.
	Seq           uint64 `json:"seq"`
	TimeUnixNanos int64  `json:"t_ns"`

	Kind  DecisionKind `json:"kind"`
	Chain int          `json:"chain"`
	Stage string       `json:"stage,omitempty"`

	// Backpressure cause: the observed queue depth against the watermarks
	// at decision time.
	QueueDepth int `json:"qdepth,omitempty"`
	HighWater  int `json:"high_water,omitempty"`
	LowWater   int `json:"low_water,omitempty"`

	// Weight cause: the controller's load share (arrivals × cost) and
	// smoothed per-packet cost estimate behind the push.
	Load      float64 `json:"load,omitempty"`
	CostNanos float64 `json:"cost_ns,omitempty"`
	OldWeight int64   `json:"old_weight,omitempty"`
	NewWeight int64   `json:"new_weight,omitempty"`

	// Supervision cause: the health edge and the fault or context note
	// ("panic: ...", "stall: grant deadline exceeded", failure streak).
	From     string `json:"from,omitempty"`
	To       string `json:"to,omitempty"`
	Failures int    `json:"failures,omitempty"`
	Note     string `json:"note,omitempty"`

	// Peer is the remote link's peer address on remote_* records.
	Peer string `json:"peer,omitempty"`
}

// DecisionJournal is a bounded, overwrite-oldest ring of decisions.
type DecisionJournal struct {
	mu    sync.Mutex
	buf   []Decision
	next  uint64 // total appends; buf[(next-1) % len] is the newest
	drops uint64
}

// NewDecisionJournal returns a journal retaining the last size decisions
// (minimum 16).
func NewDecisionJournal(size int) *DecisionJournal {
	if size < 16 {
		size = 16
	}
	return &DecisionJournal{buf: make([]Decision, 0, size)}
}

// Append records a decision, stamping its sequence number and (if unset)
// its time.
func (j *DecisionJournal) Append(d Decision) {
	if d.TimeUnixNanos == 0 {
		d.TimeUnixNanos = time.Now().UnixNano()
	}
	j.mu.Lock()
	d.Seq = j.next
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, d)
	} else {
		j.buf[j.next%uint64(cap(j.buf))] = d
		j.drops++
	}
	j.next++
	j.mu.Unlock()
}

// Total reports how many decisions were ever appended; Dropped how many
// were overwritten by ring wrap.
func (j *DecisionJournal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped reports decisions lost to ring wrap.
func (j *DecisionJournal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.drops
}

// Tail returns up to n of the most recent decisions, oldest first.
// n <= 0 returns everything retained.
func (j *DecisionJournal) Tail(n int) []Decision {
	return j.Filter(n, func(Decision) bool { return true })
}

// Filter returns up to n of the most recent decisions matching keep,
// oldest first (n <= 0: no limit).
func (j *DecisionJournal) Filter(n int, keep func(Decision) bool) []Decision {
	j.mu.Lock()
	defer j.mu.Unlock()
	held := len(j.buf)
	out := make([]Decision, 0, held)
	for i := 0; i < held; i++ {
		// Oldest-first scan: once full, the oldest record sits at
		// next % cap (which is index 0 until the first overwrite).
		idx := i
		if held == cap(j.buf) {
			idx = int((j.next + uint64(i)) % uint64(held))
		}
		if d := j.buf[idx]; keep(d) {
			out = append(out, d)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// record appends to the engine's journal, if one is enabled. Callers are
// all transition-rate (not packet-rate) paths.
func (e *Engine) record(d Decision) {
	if e.journal != nil {
		e.journal.Append(d)
	}
}

// Decisions exposes the engine's decision journal (nil when disabled via
// Config.DecisionJournalSize < 0).
func (e *Engine) Decisions() *DecisionJournal { return e.journal }

// ServeHTTP answers decision queries:
//
//	GET /debug/decisions?chain=2&stage=nat&kind=bp_on&n=50
//
// All parameters are optional filters; n bounds the reply to the most
// recent matches. kind matches exactly or as an underscore-delimited prefix,
// so kind=remote selects remote_reconnect and remote_circuit_open together.
// The reply is {"total":…,"dropped":…,"decisions":[…]}, oldest first.
func (j *DecisionJournal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	chain, haveChain := -1, false
	if v := q.Get("chain"); v != "" {
		if c, err := strconv.Atoi(v); err == nil {
			chain, haveChain = c, true
		}
	}
	stage := q.Get("stage")
	kind := q.Get("kind")
	n := 0
	if v := q.Get("n"); v != "" {
		if k, err := strconv.Atoi(v); err == nil {
			n = k
		}
	}
	ds := j.Filter(n, func(d Decision) bool {
		if haveChain && d.Chain != chain {
			return false
		}
		if stage != "" && d.Stage != stage {
			return false
		}
		if kind != "" {
			k := d.Kind.String()
			if k != kind && !strings.HasPrefix(k, kind+"_") {
				return false
			}
		}
		return true
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total     uint64     `json:"total"`
		Dropped   uint64     `json:"dropped"`
		Decisions []Decision `json:"decisions"`
	}{j.Total(), j.Dropped(), ds})
}

// AddDebugEndpoints mounts the engine's flight-recorder debug surfaces on
// the mux: /debug/decisions (the decision journal query endpoint, when the
// journal is enabled) and /debug/spans (the span recorder's counters).
func (e *Engine) AddDebugEndpoints(mux *http.ServeMux) {
	if e.journal != nil {
		mux.Handle("/debug/decisions", e.journal)
	}
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e.SpanStats())
	})
}
