// Cross-host chain tests: two engines in one test binary joined by a real
// localhost TCP link, with seeded wire faults killing and healing the
// connection mid-stream. External test package because internal/faults
// imports internal/dataplane.
package dataplane_test

import (
	"context"
	"io"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/faults"
	"nfvnice/internal/remote"
	"nfvnice/internal/telemetry"
)

// remoteWait polls cond until it holds or the deadline passes.
func remoteWait(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// remoteReconcile extends chaosReconcile with the cross-host ledger classes.
func remoteReconcile(e *dataplane.Engine, entryStages map[string]bool) (uint64, uint64) {
	inj, acc := chaosReconcile(e, entryStages)
	return inj, acc + e.RemoteDelivered.Load() + e.RemoteDrops.Load()
}

// TestCrossProcessConservation is the headline fault-tolerance scenario: an
// upstream engine ships a chain's packets to a downstream engine over TCP
// while a seeded wire injector kills the connection every 150 writes. Exact
// conservation must hold on both sides of the wire: every packet the
// upstream accepted is delivered-to-peer exactly once (retransmits dedup'd
// by sequence), and both engines' ledgers close after shutdown.
func TestCrossProcessConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Downstream engine B: one local stage, generous rings.
	b := dataplane.New(dataplane.Config{
		RingSize: 4096, WeightPeriod: 0, DrainTimeout: time.Second,
	})
	bs := b.AddStage("sink", 1024, func(p *dataplane.Packet) {})
	bch, err := b.AddChain(bs)
	if err != nil {
		t.Fatal(err)
	}
	b.MapFlow(1, bch)
	b.SetSink(b.PutPacketBatch)
	bctx, bcancel := context.WithCancel(context.Background())
	bdone := make(chan struct{})
	go func() { b.Run(bctx); close(bdone) }()

	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: b.RemoteIngress(),
		ECN:     b.CongestionSignal(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The seeded wire schedule: kill the connection every 150 writes. Same
	// seed, same kill indices (see TestWireDropDeterministic), so a failing
	// run replays exactly.
	wire := faults.NewWire(42, faults.ConnDropOn(faults.EveryNth(150)))

	// Upstream engine A: local stamp stage, then the remote uplink.
	a := dataplane.New(dataplane.Config{
		RingSize: 512, BatchSize: 16, Movers: 2, WeightPeriod: 0,
		DrainTimeout: 2 * time.Second,
	})
	as := a.AddStage("stamp", 1024, func(p *dataplane.Packet) {})
	up := a.AddRemoteStage("uplink", 1024, dataplane.RemoteConfig{
		Addr:       srv.Addr(),
		Window:     8,
		FrameBatch: 16,
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
		MaxDials:   -1, // the fault schedule heals; keep dialing
		Seed:       42,
		Dial:       wire.Dial(nil),
	})
	ach, err := a.AddChain(as, up)
	if err != nil {
		t.Fatal(err)
	}
	a.MapFlow(1, ach)
	actx, acancel := context.WithCancel(context.Background())
	adone := make(chan struct{})
	go func() { a.Run(actx); close(adone) }()

	// Pace the source against the link: cap the in-flight population below
	// the uplink ring so an outage backs pressure up to the injector instead
	// of overflowing mid-chain. (Overflow is a legitimate accounted class —
	// the watermark reaction window is ~1ms — but pacing pins the stronger
	// invariant: every single packet traverses the faulty wire exactly once.)
	const total = 20000
	sent := 0
	for sent < total {
		if uint64(sent)-a.RemoteDelivered.Load() >= 256 {
			runtime.Gosched()
			continue
		}
		p := a.GetPacket()
		p.FlowID = 1
		p.Size = 64
		if a.Inject(p) {
			sent++
		} else {
			a.PutPacket(p)
			runtime.Gosched()
		}
	}

	// Quiesce: injection has stopped, so the pipeline drains and the link's
	// unacked window empties (the fault schedule always heals). The ledger
	// balances exactly once every accepted packet's fate — delivered locally,
	// shed mid-chain during an outage, or delivered-to-peer — is recorded.
	remoteWait(t, 30*time.Second, func() bool {
		rs := a.RemoteStats()[0]
		if rs.Queued != 0 || rs.Inflight != 0 {
			return false
		}
		inj, acc := remoteReconcile(a, map[string]bool{"stamp": true})
		return inj == acc
	}, "upstream ledger never settled")

	acancel()
	select {
	case <-adone:
	case <-time.After(10 * time.Second):
		t.Fatal("upstream Run did not return")
	}
	srv.Close()
	bcancel()
	select {
	case <-bdone:
	case <-time.After(10 * time.Second):
		t.Fatal("downstream Run did not return")
	}

	// ≥3 seeded kill/heal cycles actually happened.
	ws := wire.Stats()
	rs := a.RemoteStats()[0]
	if ws.Drops < 3 {
		t.Errorf("wire kills = %d, want >= 3", ws.Drops)
	}
	if rs.Reconnects < 3 {
		t.Errorf("reconnects = %d, want >= 3", rs.Reconnects)
	}
	if rs.Retries == 0 {
		t.Error("no frames retransmitted despite connection kills")
	}

	// Exact conservation across the process boundary: everything the link
	// accepted reached the peer exactly once (retransmits dedup'd by
	// sequence), and a link that always heals surrenders nothing.
	if got := a.RemoteDrops.Load(); got != 0 {
		t.Errorf("RemoteDrops = %d on a healed link, want 0", got)
	}
	if got := a.RemoteDelivered.Load(); got != total {
		t.Errorf("RemoteDelivered = %d, want %d", got, total)
	}
	if got := srv.Stats().Received; got != total {
		t.Errorf("peer received %d packets exactly-once, want %d (dups=%d)",
			got, total, srv.Stats().Dups)
	}
	if inj, acc := remoteReconcile(a, map[string]bool{"stamp": true}); inj != acc {
		t.Errorf("upstream conservation violated: injected=%d accounted=%d", inj, acc)
	}
	if inj, acc := remoteReconcile(b, map[string]bool{"sink": true}); inj != acc {
		t.Errorf("downstream conservation violated: injected=%d accounted=%d", inj, acc)
	}

	// The outage and recovery are journaled with the peer address.
	recs := a.Decisions().Filter(0, func(d dataplane.Decision) bool {
		return d.Kind == dataplane.DecisionRemoteReconnect
	})
	if len(recs) == 0 {
		t.Fatal("no remote_reconnect decisions journaled")
	}
	for _, d := range recs {
		if d.Peer != srv.Addr() {
			t.Errorf("remote_reconnect peer = %q, want %q", d.Peer, srv.Addr())
		}
		if d.Failures < 1 {
			t.Errorf("remote_reconnect without an attempt count: %+v", d)
		}
	}
	t.Logf("crosshost: injected=%d remoteDelivered=%d kills=%d reconnects=%d retries=%d dups=%d wireWrites=%d",
		a.Injected.Load(), a.RemoteDelivered.Load(), ws.Drops, rs.Reconnects,
		rs.Retries, srv.Stats().Dups, wire.Seen())
}

// TestRemoteWindowBackpressure starves the link of acks (a peer that reads
// but never responds): the credit window fills, the send queue backs up, the
// scheduler stops granting the remote stage, its rx ring crosses the high
// watermark, and the chain throttles at entry with the journal naming
// remote_window as the cause.
func TestRemoteWindowBackpressure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c) // swallow frames, never ack
		}
	}()

	e := dataplane.New(dataplane.Config{
		RingSize: 64, BatchSize: 4, WeightPeriod: 0,
		DrainTimeout: 50 * time.Millisecond,
	})
	up := e.AddRemoteStage("uplink", 1024, dataplane.RemoteConfig{
		Addr:       ln.Addr().String(),
		Window:     1,
		FrameBatch: 4,
		SendBuf:    8,
	})
	ch, err := e.AddChain(up)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(1, ch)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	// Wait for the dial to complete, then fill the transport: the unacked
	// window (one frame of 4) plus the send queue (8) absorb a dozen packets
	// — well under the high watermark, so no backpressure edge fires yet —
	// and Space pins at zero because the acks never come.
	remoteWait(t, 10*time.Second, func() bool {
		return e.RemoteStats()[0].State == "connected"
	}, "link never connected")
	for i := 0; i < 24; i++ {
		p := e.GetPacket()
		p.FlowID = 1
		if !e.Inject(p) {
			e.PutPacket(p)
		}
	}
	remoteWait(t, 10*time.Second, func() bool {
		return e.RemoteStats()[0].Queued == 8 // SendBuf full: Space == 0
	}, "send queue never filled against a dead-ack peer")

	// Now flood: grants are stopped, the rx ring crosses the watermark, and
	// the one throttle edge that fires must name the exhausted window.
	deadline := time.Now().Add(10 * time.Second)
	for !e.Throttled(ch) && time.Now().Before(deadline) {
		p := e.GetPacket()
		p.FlowID = 1
		if !e.Inject(p) {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	if !e.Throttled(ch) {
		t.Fatal("chain never throttled despite a dead-ack peer")
	}

	bps := e.Decisions().Filter(0, func(d dataplane.Decision) bool {
		return d.Kind == dataplane.DecisionBPOn && d.Note == "remote_window"
	})
	if len(bps) == 0 {
		t.Fatalf("no bp_on journaled with cause remote_window; got %+v",
			e.Decisions().Tail(10))
	}
	if st := e.RemoteStats()[0]; st.WindowStalls == 0 {
		t.Error("window never stalled despite Window=1 and no acks")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return")
	}
	// Unacked and queued packets were surrendered to the transport ledger.
	if inj, acc := remoteReconcile(e, map[string]bool{"uplink": true}); inj != acc {
		t.Errorf("conservation violated: injected=%d accounted=%d", inj, acc)
	}
	if e.RemoteDrops.Load() == 0 {
		t.Error("closing a stalled link surrendered nothing to RemoteDrops")
	}
}

// TestRemoteECNOriginThrottle drives the §3.4 loop end to end: the peer
// marks congestion on every ack, the client surfaces the echoes, the control
// loop's observer asserts, and the chain throttles at its origin — then
// clears once the peer stops marking.
func TestRemoteECNOriginThrottle(t *testing.T) {
	var congested atomic.Bool
	congested.Store(true)
	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: func([]remote.Pkt) {},
		ECN:     congested.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	e := dataplane.New(dataplane.Config{
		RingSize: 256, BatchSize: 8, WeightPeriod: 0,
		DrainTimeout: 100 * time.Millisecond,
	})
	up := e.AddRemoteStage("uplink", 1024, dataplane.RemoteConfig{
		Addr: srv.Addr(), Window: 32,
	})
	ch, err := e.AddChain(up)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(1, ch)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	defer func() {
		cancel()
		<-done
	}()

	// Prime with a small burst once the link is up: it is far below the
	// watermark, so the only way the chain can throttle is the peer's marked
	// acks driving the ECN observer — no ambiguity about the edge's cause.
	remoteWait(t, 10*time.Second, func() bool {
		return e.RemoteStats()[0].State == "connected"
	}, "link never connected")
	for i := 0; i < 32; i++ {
		p := e.GetPacket()
		p.FlowID = 1
		if !e.Inject(p) {
			e.PutPacket(p)
		}
	}
	remoteWait(t, 10*time.Second, func() bool {
		return e.RemoteStats()[0].ECNEchoes > 0
	}, "peer never echoed ECN in its acks")
	remoteWait(t, 10*time.Second, func() bool { return e.Throttled(ch) },
		"peer ECN marks never throttled the origin")
	bps := e.Decisions().Filter(0, func(d dataplane.Decision) bool {
		return d.Kind == dataplane.DecisionBPOn && d.Note == "remote_ecn"
	})
	if len(bps) == 0 {
		t.Fatalf("no bp_on journaled with cause remote_ecn; got %+v",
			e.Decisions().Tail(10))
	}
	if e.RemoteStats()[0].ECNEchoes == 0 {
		t.Error("no ECN echoes counted")
	}

	// Peer recovers: echoes stop, the observer's quiet windows elapse, and
	// the throttle clears.
	congested.Store(false)
	remoteWait(t, 10*time.Second, func() bool { return !e.Throttled(ch) },
		"throttle never cleared after the peer stopped marking")
}

// TestRemoteCircuitOpenFailClosed points a link at a dead address: MaxDials
// failures open the circuit, the stage fails permanently, the fail-closed
// chain sheds at entry, buffered packets settle in RemoteDrops, and the
// journal answers ?kind=remote with the peer address and attempt count.
func TestRemoteCircuitOpenFailClosed(t *testing.T) {
	// A listener bound then closed: its port refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	e := dataplane.New(dataplane.Config{
		RingSize: 64, BatchSize: 4, WeightPeriod: 0,
		DrainTimeout: 50 * time.Millisecond,
	})
	up := e.AddRemoteStage("uplink", 1024, dataplane.RemoteConfig{
		Addr:       deadAddr,
		Window:     4,
		MaxDials:   3,
		BackoffMin: time.Millisecond,
		BackoffMax: 2 * time.Millisecond,
	})
	ch, err := e.AddChain(up)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(1, ch)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	// Feed a few packets while the link is still dialing; they buffer in
	// the send path and must settle in RemoteDrops once the circuit opens.
	for i := 0; i < 8; i++ {
		p := e.GetPacket()
		p.FlowID = 1
		if !e.Inject(p) {
			e.PutPacket(p)
		}
	}

	remoteWait(t, 10*time.Second, func() bool {
		return e.RemoteStats()[0].State == "circuit_open"
	}, "circuit never opened against a dead address")
	remoteWait(t, 10*time.Second, func() bool {
		return e.Stats()[up].Health == dataplane.Failed
	}, "stage not Failed after circuit open")

	// Fail-closed: the chain sheds at entry now.
	fed := e.FaultEntryDrops.Load()
	remoteWait(t, 10*time.Second, func() bool {
		p := e.GetPacket()
		p.FlowID = 1
		if e.Inject(p) {
			return false
		}
		e.PutPacket(p)
		return e.FaultEntryDrops.Load() > fed
	}, "fail-closed chain still accepting packets after circuit open")

	// The journal names the dead peer, queryable as ?kind=remote.
	req := httptest.NewRequest("GET", "/debug/decisions?kind=remote", nil)
	rec := httptest.NewRecorder()
	e.Decisions().ServeHTTP(rec, req)
	body := rec.Body.String()
	if !strings.Contains(body, "remote_circuit_open") {
		t.Errorf("?kind=remote missing remote_circuit_open: %s", body)
	}
	if !strings.Contains(body, deadAddr) {
		t.Errorf("?kind=remote missing peer address %s: %s", deadAddr, body)
	}
	circ := e.Decisions().Filter(0, func(d dataplane.Decision) bool {
		return d.Kind == dataplane.DecisionRemoteCircuitOpen
	})
	if len(circ) != 1 || circ[0].Peer != deadAddr || circ[0].Failures < 3 {
		t.Errorf("remote_circuit_open record wrong: %+v", circ)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return")
	}
	// Everything accepted was either refused by the dead link or
	// surrendered when the circuit opened — all of it in RemoteDrops.
	if inj, acc := remoteReconcile(e, map[string]bool{"uplink": true}); inj != acc {
		t.Errorf("conservation violated: injected=%d accounted=%d", inj, acc)
	}
}

// TestRemoteConfigValidate is the remote-knob validation table.
func TestRemoteConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  dataplane.RemoteConfig
		ok   bool
	}{
		{"default", dataplane.DefaultRemoteConfig("127.0.0.1:9000"), true},
		{"full", dataplane.RemoteConfig{Addr: "h:1", Window: 4, FrameBatch: 8,
			SendBuf: 64, BackoffMin: time.Millisecond, BackoffMax: time.Second,
			MaxDials: 3}, true},
		{"missing addr", dataplane.RemoteConfig{Window: 4}, false},
		{"zero window", dataplane.RemoteConfig{Addr: "h:1"}, false},
		{"negative window", dataplane.RemoteConfig{Addr: "h:1", Window: -1}, false},
		{"negative frame batch", dataplane.RemoteConfig{Addr: "h:1", Window: 4,
			FrameBatch: -1}, false},
		{"negative send buf", dataplane.RemoteConfig{Addr: "h:1", Window: 4,
			SendBuf: -8}, false},
		{"negative backoff", dataplane.RemoteConfig{Addr: "h:1", Window: 4,
			BackoffMin: -time.Millisecond}, false},
		{"backoff min > max", dataplane.RemoteConfig{Addr: "h:1", Window: 4,
			BackoffMin: time.Second, BackoffMax: time.Millisecond}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestAddRemoteStagePanicsOnInvalidConfig mirrors TestNewPanicsOnInvalidConfig.
func TestAddRemoteStagePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRemoteStage accepted a config Validate rejects")
		}
	}()
	e := dataplane.New(dataplane.Config{})
	e.AddRemoteStage("uplink", 1024, dataplane.RemoteConfig{Window: 4}) // no Addr
}

// TestRemoteTelemetryAndHealthz exercises the cross-host observability
// surface end to end: the per-link counters and gauges appear on /metrics
// with stage+peer labels, the transport ledger totals are exported, and
// HealthSnapshot grows a remote/<stage> row that /healthz serves as healthy
// while the link is connected.
func TestRemoteTelemetryAndHealthz(t *testing.T) {
	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: func([]remote.Pkt) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	e := dataplane.New(dataplane.Config{
		RingSize: 256, WeightPeriod: 0, DrainTimeout: 100 * time.Millisecond,
	})
	e.AddRemoteStage("uplink", 1024, dataplane.DefaultRemoteConfig(srv.Addr()))
	ch, err := e.AddChain(0)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(1, ch)

	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	mux := telemetry.NewMux(reg, telemetry.NewEventLog(0))
	telemetry.AddHealthz(mux, e.HealthSnapshot)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	defer func() {
		cancel()
		<-done
	}()

	remoteWait(t, 10*time.Second, func() bool {
		return e.RemoteStats()[0].State == "connected"
	}, "link never connected")
	for i := 0; i < 100; i++ {
		p := e.GetPacket()
		p.FlowID = 1
		if !e.Inject(p) {
			e.PutPacket(p)
		}
	}
	remoteWait(t, 10*time.Second, func() bool {
		return e.RemoteDelivered.Load() > 0
	}, "nothing delivered to the peer")

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`dataplane_remote_sent_total{stage="uplink",peer="` + srv.Addr() + `"}`,
		"dataplane_remote_acked_total",
		"dataplane_remote_reconnects_total",
		"dataplane_remote_window_stalls_total",
		"dataplane_remote_ecn_echoes_total",
		"dataplane_remote_queued",
		"dataplane_remote_inflight_frames",
		"dataplane_remote_link_state",
		"dataplane_remote_delivered_total",
		"dataplane_remote_drops_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz = %d with a connected link, want 200", rec.Code)
	}
	hb := rec.Body.String()
	if !strings.Contains(hb, "remote/uplink") {
		t.Errorf("/healthz missing remote/uplink row: %s", hb)
	}
	if !strings.Contains(hb, `"connected"`) {
		t.Errorf("/healthz remote row not connected: %s", hb)
	}
}

// TestRemoteDrainDeadLink is the shutdown-vs-outage regression: the remote
// peer dies permanently, packets pile up behind the reconnecting uplink, and
// the engine is asked to stop. The graceful drain cannot complete — the link
// never heals — so DrainTimeout must expire, Run must return (watchdogged
// here: a hang is the bug this test pins), and every stranded packet must be
// charged to an accounted class (RemoteDrops for what the link held,
// ShutdownDrops for what the sweep found) so the ledger still closes.
func TestRemoteDrainDeadLink(t *testing.T) {
	b := dataplane.New(dataplane.Config{
		RingSize: 1024, WeightPeriod: 0, DrainTimeout: 500 * time.Millisecond,
	})
	bs := b.AddStage("sink", 1024, func(p *dataplane.Packet) {})
	bch, err := b.AddChain(bs)
	if err != nil {
		t.Fatal(err)
	}
	b.MapFlow(1, bch)
	b.SetSink(b.PutPacketBatch)
	bctx, bcancel := context.WithCancel(context.Background())
	bdone := make(chan struct{})
	go func() { b.Run(bctx); close(bdone) }()

	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: b.RemoteIngress(),
		ECN:     b.CongestionSignal(),
	})
	if err != nil {
		t.Fatal(err)
	}

	a := dataplane.New(dataplane.Config{
		RingSize: 256, BatchSize: 16, Movers: 2, WeightPeriod: 0,
		DrainTimeout: 300 * time.Millisecond,
	})
	as := a.AddStage("stamp", 1024, func(p *dataplane.Packet) {})
	up := a.AddRemoteStage("uplink", 1024, dataplane.RemoteConfig{
		Addr:       srv.Addr(),
		Window:     4,
		FrameBatch: 16,
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
		MaxDials:   -1, // keep dialing a peer that will never come back
	})
	ach, err := a.AddChain(as, up)
	if err != nil {
		t.Fatal(err)
	}
	a.MapFlow(1, ach)
	actx, acancel := context.WithCancel(context.Background())
	adone := make(chan struct{})
	go func() { a.Run(actx); close(adone) }()

	// paced tracks RemoteDelivered so the warm-up phase never outruns the
	// credit window into mid-ring overflow; the dead-link phase injects
	// unpaced on purpose — buildup behind the corpse is the scenario.
	inject := func(n int, paced bool) int {
		sent := 0
		deadline := time.Now().Add(5 * time.Second)
		for sent < n && time.Now().Before(deadline) {
			if paced && uint64(sent)-a.RemoteDelivered.Load() >= 64 {
				runtime.Gosched()
				continue
			}
			p := a.GetPacket()
			p.FlowID = 1
			p.Size = 64
			if a.Inject(p) {
				sent++
			} else {
				a.PutPacket(p)
				runtime.Gosched()
			}
		}
		return sent
	}

	// Phase 1: a healthy paced burst proves the link up before we kill it.
	warm := inject(500, true)
	remoteWait(t, 10*time.Second, func() bool {
		return a.RemoteDelivered.Load() >= uint64(warm)
	}, "uplink never delivered the warm-up burst")

	// Phase 2: the peer dies for good. The uplink enters its reconnect loop
	// (every dial now refused) while fresh packets stack up behind it.
	srv.Close()
	bcancel()
	<-bdone
	inject(400, false)

	// Phase 3: stop the engine mid-reconnect. The drain can't finish; Run
	// must give up at DrainTimeout and still return. 20s is the watchdog —
	// orders of magnitude past the 300ms drain budget.
	acancel()
	select {
	case <-adone:
	case <-time.After(20 * time.Second):
		t.Fatal("Run hung draining a dead remote link (DrainTimeout not honored)")
	}

	l := a.LedgerSnapshot()
	if l.Residual() != 0 {
		t.Fatalf("ledger open after dead-link drain: residual=%d ledger=%+v", l.Residual(), l)
	}
	if l.RemoteDelivered < uint64(warm) {
		t.Errorf("warm-up burst lost: remoteDelivered=%d want>=%d", l.RemoteDelivered, warm)
	}
	if l.RemoteDrops+l.ShutdownDrops == 0 {
		t.Errorf("stranded packets uncharged: remoteDrops=%d shutdownDrops=%d ledger=%+v",
			l.RemoteDrops, l.ShutdownDrops, l)
	}
	if st := a.RemoteStats()[0]; st.Queued != 0 || st.Inflight != 0 {
		t.Errorf("link closed with unsettled frames: %+v", st)
	}
}
