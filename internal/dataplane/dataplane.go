// Package dataplane is a real (non-simulated) concurrent service-chain
// runtime implementing NFVnice's control algorithms with goroutines: stages
// (NFs) connected by lock-free rings, a weighted-fair cooperative scheduler
// standing in for cgroup-weighted CFS, watermark backpressure with
// chain-entry shedding, and yield flags checked at batch boundaries.
//
// Where the simulator (the rest of this repository) reproduces the paper's
// evaluation against faithful kernel-scheduler models, this package shows
// the same control plane working against wall-clock time: rate-cost
// proportional weights equalize throughput of unequal-cost stages, and
// backpressure sheds load at chain entries instead of wasting work.
//
// The steady-state hot path is allocation-free and batch-amortized, the
// regime the paper's ≤32-packet grant quantum targets: packet descriptors
// come from a per-engine freelist and are recycled on drop and (optionally,
// via PutPacket or a batch Sink) on delivery; stage receive rings are
// CAS-reserve multi-producer rings so injectors never contend with the mover
// on a lock; workers, the mover and the injectors move packets with bulk
// ring operations that publish once per batch; and per-packet wall-clock
// reads are replaced by a coarse engine clock sampled once per grant and
// once per moved or injected batch, so end-to-end latency is accurate to
// within one batch quantum.
//
// Threading model: user code injects packets from any number of producer
// goroutines; each stage's handler runs on its own goroutine but only while
// holding a grant from the scheduler, which serializes stage execution (the
// shared-CPU-core regime the paper studies) while keeping handlers free to
// block briefly on their own I/O.
package dataplane

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nfvnice/internal/ring"
	"nfvnice/internal/telemetry"
)

// Packet is the unit of work flowing through a pipeline. Handlers may use
// Userdata to carry per-packet state between stages.
//
// Descriptors are pooled: obtain them with Engine.GetPacket (or a
// PacketCache) and return delivered ones with PutPacket. Packets the engine
// drops internally are recycled automatically unless Config.NoRecycle is
// set, so a recycled packet must never be retained past the call that
// surrendered it — copy what you need instead.
type Packet struct {
	FlowID   int
	ChainID  int
	Size     int
	Hop      int
	Userdata any

	// enqueuedNanos is the coarse engine clock (unix nanos) at chain entry.
	enqueuedNanos int64
}

// Handler processes one packet at a stage.
type Handler func(*Packet)

// Config tunes the runtime.
type Config struct {
	// Cores is the number of scheduler loops; stages are assigned to a
	// core with AddStageOn and contend only with co-resident stages, as
	// NFs pinned to CPU cores do (default 1).
	Cores int
	// RingSize is each stage's receive/transmit ring capacity (rounded up
	// to a power of two).
	RingSize int
	// BatchSize bounds packets processed per grant between yield checks.
	BatchSize int
	// HighFrac and LowFrac are the backpressure watermarks.
	HighFrac, LowFrac float64
	// WeightPeriod is how often auto-weights are recomputed (0 disables
	// the rate-cost controller; manual SetWeight still works).
	WeightPeriod time.Duration
	// PoolSize caps the packet freelist (rounded up to a power of two;
	// default 4×RingSize). Excess recycled packets are left to the GC.
	PoolSize int
	// NoRecycle disables automatic recycling of packets the engine drops
	// (shed batches, full rings, full output). Set it when the producer
	// retains references to injected packets; GetPacket/PutPacket still
	// work, they just never race the engine for ownership.
	NoRecycle bool
}

// DefaultConfig mirrors the paper's platform parameters.
func DefaultConfig() Config {
	return Config{
		Cores:        1,
		RingSize:     4096,
		BatchSize:    32,
		HighFrac:     0.80,
		LowFrac:      0.60,
		WeightPeriod: 10 * time.Millisecond,
	}
}

// StageStats is a snapshot of one stage's counters.
type StageStats struct {
	Name      string
	Processed uint64
	// Arrivals counts packets offered to the stage, including ones that
	// were then shed or dropped (offered load, the controller's λ).
	Arrivals uint64
	Weight   int64
	// Busy is cumulative handler wall time.
	Busy time.Duration
	// EstCost is the controller's smoothed per-packet cost estimate.
	EstCost time.Duration
	// QueueDrops counts packets dropped at this stage's full receive ring;
	// Wasted counts packets this stage processed that died downstream (the
	// paper's wasted-work metric).
	QueueDrops uint64
	Wasted     uint64
}

type stage struct {
	id   int
	core int
	name string
	fn   Handler
	// rx is a CAS-reserve multi-producer ring: injector goroutines and the
	// mover enqueue concurrently without a lock; the stage's worker is the
	// single consumer.
	rx *ring.MPMC[*Packet]
	// tx is SPSC: the worker produces, the mover consumes.
	tx     *ring.SPSC[*Packet]
	weight atomic.Int64
	yield  atomic.Bool

	grant chan int // batch budget; closed on shutdown
	done  chan struct{}

	// batch is the worker's dequeue scratch (BatchSize long, worker-owned).
	batch []*Packet

	processed atomic.Uint64
	busyNanos atomic.Int64
	arrivals  atomic.Uint64
	drops     atomic.Uint64 // packets lost at this stage's full rx ring
	wasted    atomic.Uint64 // packets processed here that died downstream

	pass     float64 // WFQ virtual time, owned by the scheduler goroutine
	estCost  float64 // smoothed ns/packet, owned by the controller
	lastArr  uint64
	lastBusy int64
	lastProc uint64
}

// Engine is a runnable pipeline host.
type Engine struct {
	cfg    Config
	stages []*stage
	chains [][]int // chainID -> stage ids

	// flows maps flowID -> chainID. It is copy-on-write: MapFlow clones the
	// map under flowsMu and swaps the pointer, so the per-packet lookup is a
	// plain (allocation-free) map read — sync.Map would box every int key
	// outside the runtime's small-integer cache.
	flows   atomic.Pointer[map[int]int]
	flowsMu sync.Mutex

	throttled []atomic.Bool // per chain
	highWater int
	lowWater  int

	out  chan *Packet
	sink func([]*Packet)
	tap  func(*Packet)

	// free is the shared packet freelist (see GetPacket/PutPacket and
	// PacketCache for the per-producer caches layered on top).
	free *ring.MPMC[*Packet]

	// coarseNanos is the engine clock: unix nanos refreshed once per
	// scheduler iteration, grant and moved batch. Injection stamps and
	// latency measurements read it instead of calling time.Now per packet.
	coarseNanos atomic.Int64

	// Injected counts packets accepted into a chain entry ring; Delivered,
	// EntryDrops, RingDrops and OutputDrops count packet outcomes
	// (Injected == Delivered + RingDrops(mid-chain) + OutputDrops once the
	// pipeline quiesces); ThrottleEvents counts chain-throttle activations.
	Injected       atomic.Uint64
	Delivered      atomic.Uint64
	EntryDrops     atomic.Uint64
	RingDrops      atomic.Uint64
	OutputDrops    atomic.Uint64
	ThrottleEvents atomic.Uint64

	// latNanos accumulates end-to-end sojourn time of delivered packets
	// (owned by the control goroutine; read via LatencyStats).
	latSumNanos atomic.Int64
	latMaxNanos atomic.Int64

	// moveBuf is the mover's tx-drain scratch; over/under, wLoads and
	// wTotals are control-loop scratch, all hoisted out of the steady-state
	// loops so they allocate once.
	moveBuf []*Packet
	over    []bool
	under   []bool
	wLoads  []float64
	wTotals []float64

	// latHist, when registered via RegisterMetrics, observes per-packet
	// end-to-end latency in nanoseconds.
	latHist *telemetry.Histogram
	// events, when set via SetEventLog, receives control-plane decisions.
	events    *telemetry.EventLog
	startWall time.Time

	running atomic.Bool
}

// New returns an engine with the given config (zero value fields take
// defaults).
func New(cfg Config) *Engine {
	def := DefaultConfig()
	if cfg.RingSize == 0 {
		cfg.RingSize = def.RingSize
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = def.BatchSize
	}
	if cfg.HighFrac == 0 {
		cfg.HighFrac = def.HighFrac
	}
	if cfg.LowFrac == 0 {
		cfg.LowFrac = def.LowFrac
	}
	if cfg.Cores <= 0 {
		cfg.Cores = def.Cores
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4 * cfg.RingSize
	}
	high, low := ring.ClampWatermarks(cfg.RingSize, cfg.HighFrac, cfg.LowFrac)
	e := &Engine{
		cfg:       cfg,
		highWater: high,
		lowWater:  low,
		out:       make(chan *Packet, cfg.RingSize),
		free:      ring.NewMPMC[*Packet](cfg.PoolSize),
		moveBuf:   make([]*Packet, cfg.BatchSize),
	}
	e.coarseNanos.Store(time.Now().UnixNano())
	return e
}

// AddStage registers an NF on core 0 with the given initial weight (1024 =
// one default share). Must be called before Run.
func (e *Engine) AddStage(name string, weight int64, fn Handler) int {
	return e.AddStageOn(name, weight, 0, fn)
}

// AddStageOn registers an NF pinned to the given core. Must be called
// before Run.
func (e *Engine) AddStageOn(name string, weight int64, core int, fn Handler) int {
	if core < 0 || core >= e.cfg.Cores {
		panic("dataplane: stage core out of range")
	}
	s := &stage{
		id:    len(e.stages),
		core:  core,
		name:  name,
		fn:    fn,
		rx:    ring.NewMPMC[*Packet](e.cfg.RingSize),
		tx:    ring.NewSPSC[*Packet](e.cfg.RingSize),
		grant: make(chan int),
		done:  make(chan struct{}),
		batch: make([]*Packet, e.cfg.BatchSize),
	}
	s.weight.Store(weight)
	s.estCost = float64(time.Microsecond) // prior until measured
	e.stages = append(e.stages, s)
	return s.id
}

// AddChain registers a service chain over stage ids and returns the chain
// id. Must be called before Run.
func (e *Engine) AddChain(stageIDs ...int) (int, error) {
	if len(stageIDs) == 0 {
		return 0, errors.New("dataplane: empty chain")
	}
	for _, id := range stageIDs {
		if id < 0 || id >= len(e.stages) {
			return 0, errors.New("dataplane: unknown stage in chain")
		}
	}
	e.chains = append(e.chains, append([]int(nil), stageIDs...))
	e.throttled = append(e.throttled, atomic.Bool{})
	return len(e.chains) - 1, nil
}

// MapFlow routes a flow to a chain. Safe to call at any time.
func (e *Engine) MapFlow(flowID, chainID int) {
	e.flowsMu.Lock()
	defer e.flowsMu.Unlock()
	next := make(map[int]int)
	if cur := e.flows.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[flowID] = chainID
	e.flows.Store(&next)
}

// routeOf resolves a flow to its chain without allocating.
func (e *Engine) routeOf(flowID int) (int, bool) {
	m := e.flows.Load()
	if m == nil {
		return 0, false
	}
	chainID, ok := (*m)[flowID]
	return chainID, ok
}

// SetWeight adjusts a stage's scheduler weight (manual control when the
// auto controller is disabled).
func (e *Engine) SetWeight(stageID int, w int64) {
	if w < 2 {
		w = 2
	}
	e.stages[stageID].weight.Store(w)
}

// Output delivers packets that completed their chains. The consumer must
// drain it; a full output channel backpressures the final stages. Return
// packets with PutPacket (or a PacketCache) once consumed to keep the hot
// path allocation-free. Unused when a Sink is set.
func (e *Engine) Output() <-chan *Packet { return e.out }

// SetSink replaces the Output channel with a callback invoked on the mover
// goroutine with each batch of delivered packets — the batch-amortized
// delivery path (no per-packet channel operation). The sink owns the
// packets; recycle them with PutPacket or a PacketCache when done. The slice
// is reused after the call returns — don't retain it. Must be called before
// Run.
func (e *Engine) SetSink(fn func([]*Packet)) {
	if e.running.Load() {
		panic("dataplane: SetSink after Run")
	}
	e.sink = fn
}

// Inject offers a packet from a producer goroutine. It reports false when
// the packet was shed — by chain-entry backpressure or a full entry ring —
// or when the flow has no route; the caller keeps ownership of a rejected
// packet (retry it or PutPacket it). For bulk producers InjectBatch
// amortizes the per-packet costs.
func (e *Engine) Inject(p *Packet) bool {
	chainID, ok := e.routeOf(p.FlowID)
	if !ok {
		return false
	}
	p.ChainID = chainID
	p.Hop = 0
	entry := e.stages[e.chains[chainID][0]]
	// Arrivals count offered load (attempts), not surviving enqueues:
	// the rate-cost controller's λ must not collapse to the drain rate
	// when a stage is overloaded or its chain is being shed.
	entry.arrivals.Add(1)
	if e.throttled[chainID].Load() {
		e.EntryDrops.Add(1)
		return false
	}
	p.enqueuedNanos = e.coarseNanos.Load()
	if !entry.rx.Enqueue(p) {
		e.RingDrops.Add(1)
		entry.drops.Add(1)
		return false
	}
	e.Injected.Add(1)
	return true
}

// InjectBatch offers every packet in ps, sampling the engine clock once and
// publishing each run of same-flow packets with a single ring reservation.
// It reports how many were accepted. Unlike Inject, the engine consumes the
// whole slice: packets shed by backpressure, full rings or missing routes
// are dropped (and recycled unless Config.NoRecycle), so the caller must not
// reuse any packet in ps afterwards.
func (e *Engine) InjectBatch(ps []*Packet) int {
	if len(ps) == 0 {
		return 0
	}
	now := time.Now().UnixNano()
	e.coarseNanos.Store(now)
	accepted := 0
	for i := 0; i < len(ps); {
		p := ps[i]
		chainID, ok := e.routeOf(p.FlowID)
		if !ok {
			e.freePacket(p)
			i++
			continue
		}
		entry := e.stages[e.chains[chainID][0]]
		// Extend the run across packets sharing the flow: one routing
		// lookup, one counter update, one ring reservation for the run.
		j := i
		for j < len(ps) && ps[j].FlowID == p.FlowID {
			ps[j].ChainID = chainID
			ps[j].Hop = 0
			ps[j].enqueuedNanos = now
			j++
		}
		run := ps[i:j]
		entry.arrivals.Add(uint64(len(run)))
		if e.throttled[chainID].Load() {
			e.EntryDrops.Add(uint64(len(run)))
			for _, q := range run {
				e.freePacket(q)
			}
		} else {
			n := entry.rx.EnqueueBatch(run)
			accepted += n
			if n < len(run) {
				d := uint64(len(run) - n)
				e.RingDrops.Add(d)
				entry.drops.Add(d)
				for _, q := range run[n:] {
					e.freePacket(q)
				}
			}
		}
		i = j
	}
	if accepted > 0 {
		e.Injected.Add(uint64(accepted))
	}
	return accepted
}

// Stats snapshots every stage.
func (e *Engine) Stats() []StageStats {
	out := make([]StageStats, len(e.stages))
	for i, s := range e.stages {
		out[i] = StageStats{
			Name:       s.name,
			Processed:  s.processed.Load(),
			Arrivals:   s.arrivals.Load(),
			Weight:     s.weight.Load(),
			Busy:       time.Duration(s.busyNanos.Load()),
			EstCost:    time.Duration(s.estCost),
			QueueDrops: s.drops.Load(),
			Wasted:     s.wasted.Load(),
		}
	}
	return out
}

// LatencyStats reports the mean and maximum end-to-end sojourn time of
// delivered packets, accurate to within one batch quantum (the coarse-clock
// bound).
func (e *Engine) LatencyStats() (mean, max time.Duration) {
	n := e.Delivered.Load()
	if n == 0 {
		return 0, 0
	}
	return time.Duration(e.latSumNanos.Load() / int64(n)), time.Duration(e.latMaxNanos.Load())
}

// Throttled reports whether a chain is currently shed at entry.
func (e *Engine) Throttled(chainID int) bool { return e.throttled[chainID].Load() }

// Run operates the pipeline until ctx is canceled. It blocks; run it on its
// own goroutine. Run may be called once.
func (e *Engine) Run(ctx context.Context) {
	if !e.running.CompareAndSwap(false, true) {
		panic("dataplane: Run called twice")
	}
	e.startWall = time.Now()
	e.over = make([]bool, len(e.stages))
	e.under = make([]bool, len(e.stages))
	e.wLoads = make([]float64, len(e.stages))
	e.wTotals = make([]float64, e.cfg.Cores)
	var workers, cores sync.WaitGroup
	for _, s := range e.stages {
		workers.Add(1)
		go func(s *stage) {
			defer workers.Done()
			e.worker(s)
		}(s)
	}
	// One scheduler loop per core; core 0's loop doubles as the control
	// plane (Tx-thread packet movement, backpressure, weights), matching
	// the manager-on-dedicated-core split.
	for core := 1; core < e.cfg.Cores; core++ {
		cores.Add(1)
		go func(core int) {
			defer cores.Done()
			for ctx.Err() == nil {
				if !e.scheduleCore(core) {
					// Idle: plain sleep, not time.After — the select-timer
					// variant allocates, and this is inside the hot loop.
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(core)
	}
	lastWeights := time.Now()
	for ctx.Err() == nil {
		e.coarseNanos.Store(time.Now().UnixNano())
		granted := e.scheduleCore(0)
		e.moveAll()
		e.updateBackpressure()
		if e.cfg.WeightPeriod > 0 && time.Since(lastWeights) >= e.cfg.WeightPeriod {
			e.updateWeights()
			lastWeights = time.Now()
		}
		if !granted {
			// Idle: nothing runnable; yield the OS thread briefly.
			time.Sleep(50 * time.Microsecond)
		}
	}
	// Shutdown order matters: first join the scheduler loops (no more
	// grants in flight), then close grant channels so workers drain out.
	cores.Wait()
	for _, s := range e.stages {
		close(s.grant)
	}
	workers.Wait()
}

// worker runs a stage's handler under grants, moving packets rx→tx in bulk:
// one ring reservation per dequeued batch and one per published batch.
func (e *Engine) worker(s *stage) {
	for budget := range s.grant {
		start := time.Now()
		n := 0
		for n < budget {
			want := budget - n
			if want > len(s.batch) {
				want = len(s.batch)
			}
			k := s.rx.DequeueBatch(s.batch[:want])
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				pkt := s.batch[i]
				s.fn(pkt)
				pkt.Hop++
			}
			// Tx is sized like Rx and drained between grants, and the
			// grant budget never exceeds free Tx space, so this cannot
			// come up short.
			s.tx.EnqueueBatch(s.batch[:k])
			n += k
		}
		if n > 0 {
			s.processed.Add(uint64(n))
		}
		s.busyNanos.Add(time.Since(start).Nanoseconds())
		s.done <- struct{}{}
	}
}

// scheduleCore grants the core's runnable stage with the smallest WFQ pass
// one batch and waits for completion. Reports whether anything ran. The
// engine clock is refreshed once per grant.
func (e *Engine) scheduleCore(core int) bool {
	var pick *stage
	for _, s := range e.stages {
		if s.core != core || s.yield.Load() || s.rx.Len() == 0 {
			continue
		}
		if s.tx.Len() >= e.cfg.RingSize-1-e.cfg.BatchSize {
			continue // local backpressure: tx nearly full
		}
		if pick == nil || s.pass < pick.pass {
			pick = s
		}
	}
	if pick == nil {
		return false
	}
	e.coarseNanos.Store(time.Now().UnixNano())
	before := time.Duration(pick.busyNanos.Load())
	pick.grant <- e.cfg.BatchSize
	<-pick.done
	ran := time.Duration(pick.busyNanos.Load()) - before
	w := pick.weight.Load()
	if w < 2 {
		w = 2
	}
	pick.pass += float64(ran) * 1024 / float64(w)
	// Keep sleeping stages from banking unbounded credit.
	min := pick.pass
	for _, s := range e.stages {
		if s.core == core && s.pass < min-float64(time.Second) {
			s.pass = min - float64(time.Second)
		}
	}
	return true
}

// moveAll drains every stage's tx ring toward the next hop, the sink or the
// output channel (the Tx-thread role), in batches: runs of packets bound for
// the same destination ring are forwarded with one reservation, and all
// engine counters are flushed once per drained batch (add-N, not N adds).
func (e *Engine) moveAll() {
	now := time.Now().UnixNano()
	e.coarseNanos.Store(now)
	var delivered, outDrops, ringDrops uint64
	var latSum, latMax int64
	// Coarse-clock latencies arrive in runs of identical values; batch them
	// into the histogram with run-length encoding.
	var histVal, histN uint64
	var sinkFrom int
	for _, s := range e.stages {
		var wastedHere uint64
		for {
			k := s.tx.DequeueBatch(e.moveBuf)
			if k == 0 {
				break
			}
			sinkFrom = 0
			for i := 0; i < k; {
				pkt := e.moveBuf[i]
				chain := e.chains[pkt.ChainID]
				if pkt.Hop >= len(chain) {
					// Delivery.
					if e.tap != nil {
						e.tap(pkt)
					}
					lat := now - pkt.enqueuedNanos
					if lat < 0 {
						lat = 0
					}
					if e.sink != nil {
						// Batch path: leave the packet in moveBuf; the
						// contiguous delivered run is handed over below.
						delivered++
						latSum += lat
						if lat > latMax {
							latMax = lat
						}
						if uint64(lat) == histVal {
							histN++
						} else {
							if histN > 0 && e.latHist != nil {
								e.latHist.ObserveN(histVal, histN)
							}
							histVal, histN = uint64(lat), 1
						}
						i++
						continue
					}
					select {
					case e.out <- pkt:
						delivered++
						latSum += lat
						if lat > latMax {
							latMax = lat
						}
						if uint64(lat) == histVal {
							histN++
						} else {
							if histN > 0 && e.latHist != nil {
								e.latHist.ObserveN(histVal, histN)
							}
							histVal, histN = uint64(lat), 1
						}
					default:
						outDrops++ // consumer not draining
						wastedHere++
						e.freePacket(pkt)
					}
					i++
					continue
				}
				// Forward: extend the run while packets share the next-hop
				// ring, then publish the run with one reservation.
				if e.sink != nil && i > sinkFrom {
					e.flushSink(e.moveBuf[sinkFrom:i])
				}
				dstID := chain[pkt.Hop]
				dst := e.stages[dstID]
				j := i + 1
				for j < k {
					q := e.moveBuf[j]
					qc := e.chains[q.ChainID]
					if q.Hop >= len(qc) || qc[q.Hop] != dstID {
						break
					}
					j++
				}
				run := e.moveBuf[i:j]
				dst.arrivals.Add(uint64(len(run)))
				n := dst.rx.EnqueueBatch(run)
				if n < len(run) {
					// Work already invested in these packets is wasted; the
					// drop itself happens at dst's full receive ring.
					d := uint64(len(run) - n)
					ringDrops += d
					dst.drops.Add(d)
					wastedHere += d
					for _, q := range run[n:] {
						e.freePacket(q)
					}
				}
				i = j
				sinkFrom = j
			}
			if e.sink != nil && k > sinkFrom {
				e.flushSink(e.moveBuf[sinkFrom:k])
			}
		}
		if wastedHere > 0 {
			s.wasted.Add(wastedHere)
		}
	}
	if histN > 0 && e.latHist != nil {
		e.latHist.ObserveN(histVal, histN)
	}
	if delivered > 0 {
		e.Delivered.Add(delivered)
		e.latSumNanos.Add(latSum)
		for {
			cur := e.latMaxNanos.Load()
			if latMax <= cur || e.latMaxNanos.CompareAndSwap(cur, latMax) {
				break
			}
		}
	}
	if outDrops > 0 {
		e.OutputDrops.Add(outDrops)
	}
	if ringDrops > 0 {
		e.RingDrops.Add(ringDrops)
	}
}

// flushSink hands a contiguous all-delivered run of moveBuf to the sink.
func (e *Engine) flushSink(run []*Packet) {
	if len(run) > 0 {
		e.sink(run)
	}
}

// updateBackpressure applies the watermark state machine: a chain sheds at
// entry while any of its stages' receive queues is above the high watermark,
// and clears when all are below the low one. Upstream yield flags follow the
// same rule as the simulator: set only when every chain through the stage is
// throttled and the stage sits upstream of a bottleneck.
func (e *Engine) updateBackpressure() {
	over, under := e.over, e.under
	for i, s := range e.stages {
		l := s.rx.Len()
		over[i] = l >= e.highWater
		under[i] = l < e.lowWater
	}
	for ci, chain := range e.chains {
		if e.throttled[ci].Load() {
			all := true
			for _, sid := range chain {
				if !under[sid] {
					all = false
					break
				}
			}
			if all {
				e.throttled[ci].Store(false)
				if e.events != nil {
					e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelInfo,
						"backpressure", telemetry.F("chain", ci), telemetry.F("state", "clear"))
				}
			}
		} else {
			for _, sid := range chain {
				if over[sid] {
					e.throttled[ci].Store(true)
					e.ThrottleEvents.Add(1)
					if e.events != nil {
						e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelInfo,
							"backpressure", telemetry.F("chain", ci), telemetry.F("state", "throttle"),
							telemetry.F("stage", e.stages[sid].name))
					}
					break
				}
			}
		}
	}
	for sid, s := range e.stages {
		yield := false
		for ci, chain := range e.chains {
			pos := -1
			for i, id := range chain {
				if id == sid {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			if !e.throttled[ci].Load() {
				yield = false
				break
			}
			upstreamOfBottleneck := false
			for i := pos + 1; i < len(chain); i++ {
				if over[chain[i]] {
					upstreamOfBottleneck = true
					break
				}
			}
			yield = upstreamOfBottleneck
			if !yield {
				break
			}
		}
		s.yield.Store(yield)
	}
}

// updateWeights is the rate-cost proportional controller: weight_i ∝
// arrivals_i × estimated cost_i, with an EWMA cost estimate from measured
// handler time.
func (e *Engine) updateWeights() {
	loads, totals := e.wLoads, e.wTotals
	for i := range totals {
		totals[i] = 0
	}
	for i, s := range e.stages {
		arr := s.arrivals.Load()
		busy := s.busyNanos.Load()
		proc := s.processed.Load()
		dArr := arr - s.lastArr
		dBusy := busy - s.lastBusy
		dProc := proc - s.lastProc
		s.lastArr, s.lastBusy, s.lastProc = arr, busy, proc
		if dProc > 0 {
			sample := float64(dBusy) / float64(dProc)
			s.estCost = 0.3*sample + 0.7*s.estCost
		}
		loads[i] = float64(dArr) * s.estCost
		totals[s.core] += loads[i]
	}
	const scale = 10 * 1024
	for i, s := range e.stages {
		if totals[s.core] <= 0 {
			continue
		}
		w := int64(loads[i] / totals[s.core] * scale)
		if w < scale/100 {
			w = scale / 100
		}
		if s.weight.Swap(w) != w && e.events != nil {
			e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelDebug,
				"weight", telemetry.F("stage", s.name), telemetry.F("weight", w))
		}
	}
}

// RegisterMetrics publishes the engine's counters, gauges and the end-to-end
// latency histogram into a telemetry registry. All backing values are
// atomic, so the registry may be gathered (scraped) live while the engine
// runs. Must be called before Run.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	if e.running.Load() {
		panic("dataplane: RegisterMetrics after Run")
	}
	for _, s := range e.stages {
		lbl := []telemetry.Label{
			telemetry.L("stage", s.name),
			telemetry.L("id", strconv.Itoa(s.id)),
			telemetry.L("core", strconv.Itoa(s.core)),
		}
		reg.CounterFunc("dataplane_stage_processed_total",
			"Packets processed by the stage.", s.processed.Load, lbl...)
		reg.CounterFunc("dataplane_stage_arrivals_total",
			"Packets offered to the stage (attempts, including drops).", s.arrivals.Load, lbl...)
		reg.CounterFunc("dataplane_stage_queue_drops_total",
			"Packets dropped at the stage's full receive ring.", s.drops.Load, lbl...)
		reg.CounterFunc("dataplane_stage_wasted_total",
			"Packets processed by the stage that died downstream (wasted work).", s.wasted.Load, lbl...)
		reg.CounterFunc("dataplane_stage_busy_nanoseconds_total",
			"Cumulative handler wall time.", func() uint64 { return uint64(s.busyNanos.Load()) }, lbl...)
		reg.GaugeFunc("dataplane_stage_weight",
			"Current scheduler weight (1024 = one default share).",
			func() float64 { return float64(s.weight.Load()) }, lbl...)
		reg.GaugeFunc("dataplane_stage_queue_depth",
			"Instantaneous receive-ring occupancy.",
			func() float64 { return float64(s.rx.Len()) }, lbl...)
	}
	for ci := range e.chains {
		lbl := []telemetry.Label{telemetry.L("chain", strconv.Itoa(ci))}
		th := &e.throttled[ci]
		reg.GaugeFunc("dataplane_chain_throttled",
			"1 while the chain is shed at entry by backpressure.",
			func() float64 {
				if th.Load() {
					return 1
				}
				return 0
			}, lbl...)
	}
	reg.CounterFunc("dataplane_injected_total",
		"Packets accepted into a chain entry ring.", e.Injected.Load)
	reg.CounterFunc("dataplane_delivered_total",
		"Packets that completed their chains.", e.Delivered.Load)
	reg.CounterFunc("dataplane_entry_drops_total",
		"Packets shed at chain entry by backpressure.", e.EntryDrops.Load)
	reg.CounterFunc("dataplane_ring_drops_total",
		"Packets dropped at full stage receive rings (entry or mid-chain).", e.RingDrops.Load)
	reg.CounterFunc("dataplane_output_drops_total",
		"Delivered packets dropped because the output channel was full.", e.OutputDrops.Load)
	reg.CounterFunc("dataplane_throttle_events_total",
		"Chain-throttle activations.", e.ThrottleEvents.Load)
	e.latHist = reg.Histogram("dataplane_latency_nanoseconds",
		"End-to-end sojourn time of delivered packets.")
}

// SetEventLog attaches a structured event log receiving backpressure
// transitions (info) and weight updates (debug). Must be called before Run.
func (e *Engine) SetEventLog(l *telemetry.EventLog) {
	if e.running.Load() {
		panic("dataplane: SetEventLog after Run")
	}
	e.events = l
}

// Tap registers a callback invoked (on the control goroutine) for every
// delivered packet, e.g. to mirror frames into a pcap capture. Must be set
// before Run.
func (e *Engine) Tap(fn func(*Packet)) {
	if e.running.Load() {
		panic("dataplane: Tap after Run")
	}
	e.tap = fn
}
