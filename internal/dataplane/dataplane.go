// Package dataplane is a real (non-simulated) concurrent service-chain
// runtime implementing NFVnice's control algorithms with goroutines: stages
// (NFs) connected by lock-free SPSC rings, a weighted-fair cooperative
// scheduler standing in for cgroup-weighted CFS, watermark backpressure with
// chain-entry shedding, and yield flags checked at batch boundaries.
//
// Where the simulator (the rest of this repository) reproduces the paper's
// evaluation against faithful kernel-scheduler models, this package shows
// the same control plane working against wall-clock time: rate-cost
// proportional weights equalize throughput of unequal-cost stages, and
// backpressure sheds load at chain entries instead of wasting work.
//
// Threading model: user code injects packets from one producer goroutine;
// each stage's handler runs on its own goroutine but only while holding a
// grant from the scheduler, which serializes stage execution (the shared-
// CPU-core regime the paper studies) while keeping handlers free to block
// briefly on their own I/O.
package dataplane

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nfvnice/internal/ring"
	"nfvnice/internal/telemetry"
)

// Packet is the unit of work flowing through a pipeline. Handlers may use
// Userdata to carry per-packet state between stages.
type Packet struct {
	FlowID   int
	ChainID  int
	Size     int
	Hop      int
	Userdata any

	enqueued time.Time
}

// Handler processes one packet at a stage.
type Handler func(*Packet)

// Config tunes the runtime.
type Config struct {
	// Cores is the number of scheduler loops; stages are assigned to a
	// core with AddStageOn and contend only with co-resident stages, as
	// NFs pinned to CPU cores do (default 1).
	Cores int
	// RingSize is each stage's receive/transmit ring capacity (rounded up
	// to a power of two).
	RingSize int
	// BatchSize bounds packets processed per grant between yield checks.
	BatchSize int
	// HighFrac and LowFrac are the backpressure watermarks.
	HighFrac, LowFrac float64
	// WeightPeriod is how often auto-weights are recomputed (0 disables
	// the rate-cost controller; manual SetWeight still works).
	WeightPeriod time.Duration
}

// DefaultConfig mirrors the paper's platform parameters.
func DefaultConfig() Config {
	return Config{
		Cores:        1,
		RingSize:     4096,
		BatchSize:    32,
		HighFrac:     0.80,
		LowFrac:      0.60,
		WeightPeriod: 10 * time.Millisecond,
	}
}

// StageStats is a snapshot of one stage's counters.
type StageStats struct {
	Name      string
	Processed uint64
	Weight    int64
	// Busy is cumulative handler wall time.
	Busy time.Duration
	// EstCost is the controller's smoothed per-packet cost estimate.
	EstCost time.Duration
	// QueueDrops counts packets dropped at this stage's full receive ring;
	// Wasted counts packets this stage processed that died downstream (the
	// paper's wasted-work metric).
	QueueDrops uint64
	Wasted     uint64
}

type stage struct {
	id     int
	core   int
	name   string
	fn     Handler
	rx     *ring.SPSC[*Packet]
	rxMu   sync.Mutex // serializes rx producers (injector + mover)
	tx     *ring.SPSC[*Packet]
	weight atomic.Int64
	yield  atomic.Bool

	grant chan int // batch budget; closed on shutdown
	done  chan struct{}

	processed atomic.Uint64
	busyNanos atomic.Int64
	arrivals  atomic.Uint64
	drops     atomic.Uint64 // packets lost at this stage's full rx ring
	wasted    atomic.Uint64 // packets processed here that died downstream

	pass     float64 // WFQ virtual time, owned by the scheduler goroutine
	estCost  float64 // smoothed ns/packet, owned by the controller
	lastArr  uint64
	lastBusy int64
	lastProc uint64
}

// Engine is a runnable pipeline host.
type Engine struct {
	cfg    Config
	stages []*stage
	chains [][]int  // chainID -> stage ids
	flows  sync.Map // flowID -> chainID

	throttled []atomic.Bool // per chain
	highWater int
	lowWater  int

	out chan *Packet
	tap func(*Packet)

	// Delivered, EntryDrops and RingDrops count packet outcomes;
	// ThrottleEvents counts chain-throttle activations.
	Delivered      atomic.Uint64
	EntryDrops     atomic.Uint64
	RingDrops      atomic.Uint64
	ThrottleEvents atomic.Uint64

	// latNanos accumulates end-to-end sojourn time of delivered packets
	// (owned by the control goroutine; read via LatencyStats).
	latSumNanos atomic.Int64
	latMaxNanos atomic.Int64

	// latHist, when registered via RegisterMetrics, observes per-packet
	// end-to-end latency in nanoseconds.
	latHist *telemetry.Histogram
	// events, when set via SetEventLog, receives control-plane decisions.
	events    *telemetry.EventLog
	startWall time.Time

	running atomic.Bool
}

// New returns an engine with the given config (zero value fields take
// defaults).
func New(cfg Config) *Engine {
	def := DefaultConfig()
	if cfg.RingSize == 0 {
		cfg.RingSize = def.RingSize
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = def.BatchSize
	}
	if cfg.HighFrac == 0 {
		cfg.HighFrac = def.HighFrac
	}
	if cfg.LowFrac == 0 {
		cfg.LowFrac = def.LowFrac
	}
	if cfg.Cores <= 0 {
		cfg.Cores = def.Cores
	}
	return &Engine{
		cfg:       cfg,
		highWater: int(float64(cfg.RingSize) * cfg.HighFrac),
		lowWater:  int(float64(cfg.RingSize) * cfg.LowFrac),
		out:       make(chan *Packet, cfg.RingSize),
	}
}

// AddStage registers an NF on core 0 with the given initial weight (1024 =
// one default share). Must be called before Run.
func (e *Engine) AddStage(name string, weight int64, fn Handler) int {
	return e.AddStageOn(name, weight, 0, fn)
}

// AddStageOn registers an NF pinned to the given core. Must be called
// before Run.
func (e *Engine) AddStageOn(name string, weight int64, core int, fn Handler) int {
	if core < 0 || core >= e.cfg.Cores {
		panic("dataplane: stage core out of range")
	}
	s := &stage{
		id:    len(e.stages),
		core:  core,
		name:  name,
		fn:    fn,
		rx:    ring.NewSPSC[*Packet](e.cfg.RingSize),
		tx:    ring.NewSPSC[*Packet](e.cfg.RingSize),
		grant: make(chan int),
		done:  make(chan struct{}),
	}
	s.weight.Store(weight)
	s.estCost = float64(time.Microsecond) // prior until measured
	e.stages = append(e.stages, s)
	return s.id
}

// AddChain registers a service chain over stage ids and returns the chain
// id. Must be called before Run.
func (e *Engine) AddChain(stageIDs ...int) (int, error) {
	if len(stageIDs) == 0 {
		return 0, errors.New("dataplane: empty chain")
	}
	for _, id := range stageIDs {
		if id < 0 || id >= len(e.stages) {
			return 0, errors.New("dataplane: unknown stage in chain")
		}
	}
	e.chains = append(e.chains, append([]int(nil), stageIDs...))
	e.throttled = append(e.throttled, atomic.Bool{})
	return len(e.chains) - 1, nil
}

// MapFlow routes a flow to a chain. Safe to call at any time.
func (e *Engine) MapFlow(flowID, chainID int) { e.flows.Store(flowID, chainID) }

// SetWeight adjusts a stage's scheduler weight (manual control when the
// auto controller is disabled).
func (e *Engine) SetWeight(stageID int, w int64) {
	if w < 2 {
		w = 2
	}
	e.stages[stageID].weight.Store(w)
}

// Output delivers packets that completed their chains. The consumer must
// drain it; a full output channel backpressures the final stages.
func (e *Engine) Output() <-chan *Packet { return e.out }

// Inject offers a packet from the (single) producer goroutine. It reports
// false when the packet was shed — by chain-entry backpressure or a full
// entry ring — or when the flow has no route.
func (e *Engine) Inject(p *Packet) bool {
	v, ok := e.flows.Load(p.FlowID)
	if !ok {
		return false
	}
	chainID := v.(int)
	p.ChainID = chainID
	p.Hop = 0
	entry := e.stages[e.chains[chainID][0]]
	// Arrivals count offered load (attempts), not surviving enqueues:
	// the rate-cost controller's λ must not collapse to the drain rate
	// when a stage is overloaded or its chain is being shed.
	entry.arrivals.Add(1)
	if e.throttled[chainID].Load() {
		e.EntryDrops.Add(1)
		return false
	}
	p.enqueued = time.Now()
	entry.rxMu.Lock()
	ok = entry.rx.Enqueue(p)
	entry.rxMu.Unlock()
	if !ok {
		e.RingDrops.Add(1)
		entry.drops.Add(1)
		return false
	}
	return true
}

// Stats snapshots every stage.
func (e *Engine) Stats() []StageStats {
	out := make([]StageStats, len(e.stages))
	for i, s := range e.stages {
		out[i] = StageStats{
			Name:       s.name,
			Processed:  s.processed.Load(),
			Weight:     s.weight.Load(),
			Busy:       time.Duration(s.busyNanos.Load()),
			EstCost:    time.Duration(s.estCost),
			QueueDrops: s.drops.Load(),
			Wasted:     s.wasted.Load(),
		}
	}
	return out
}

// LatencyStats reports the mean and maximum end-to-end sojourn time of
// delivered packets.
func (e *Engine) LatencyStats() (mean, max time.Duration) {
	n := e.Delivered.Load()
	if n == 0 {
		return 0, 0
	}
	return time.Duration(e.latSumNanos.Load() / int64(n)), time.Duration(e.latMaxNanos.Load())
}

// Throttled reports whether a chain is currently shed at entry.
func (e *Engine) Throttled(chainID int) bool { return e.throttled[chainID].Load() }

// Run operates the pipeline until ctx is canceled. It blocks; run it on its
// own goroutine. Run may be called once.
func (e *Engine) Run(ctx context.Context) {
	if !e.running.CompareAndSwap(false, true) {
		panic("dataplane: Run called twice")
	}
	e.startWall = time.Now()
	var workers, cores sync.WaitGroup
	for _, s := range e.stages {
		workers.Add(1)
		go func(s *stage) {
			defer workers.Done()
			e.worker(s)
		}(s)
	}
	// One scheduler loop per core; core 0's loop doubles as the control
	// plane (Tx-thread packet movement, backpressure, weights), matching
	// the manager-on-dedicated-core split.
	for core := 1; core < e.cfg.Cores; core++ {
		cores.Add(1)
		go func(core int) {
			defer cores.Done()
			for ctx.Err() == nil {
				if !e.scheduleCore(core) {
					select {
					case <-ctx.Done():
					case <-time.After(50 * time.Microsecond):
					}
				}
			}
		}(core)
	}
	lastWeights := time.Now()
	for ctx.Err() == nil {
		granted := e.scheduleCore(0)
		e.moveAll()
		e.updateBackpressure()
		if e.cfg.WeightPeriod > 0 && time.Since(lastWeights) >= e.cfg.WeightPeriod {
			e.updateWeights()
			lastWeights = time.Now()
		}
		if !granted {
			// Idle: nothing runnable; yield the OS thread briefly.
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Microsecond):
			}
		}
	}
	// Shutdown order matters: first join the scheduler loops (no more
	// grants in flight), then close grant channels so workers drain out.
	cores.Wait()
	for _, s := range e.stages {
		close(s.grant)
	}
	workers.Wait()
}

// worker runs a stage's handler under grants.
func (e *Engine) worker(s *stage) {
	for budget := range s.grant {
		start := time.Now()
		n := 0
		for n < budget {
			pkt, ok := s.rx.Dequeue()
			if !ok {
				break
			}
			s.fn(pkt)
			pkt.Hop++
			// Tx is sized like Rx and drained between grants, and the
			// grant budget never exceeds free Tx space, so this cannot
			// fail.
			s.tx.Enqueue(pkt)
			n++
		}
		s.processed.Add(uint64(n))
		s.busyNanos.Add(time.Since(start).Nanoseconds())
		s.done <- struct{}{}
	}
}

// scheduleCore grants the core's runnable stage with the smallest WFQ pass
// one batch and waits for completion. Reports whether anything ran.
func (e *Engine) scheduleCore(core int) bool {
	var pick *stage
	for _, s := range e.stages {
		if s.core != core || s.yield.Load() || s.rx.Len() == 0 {
			continue
		}
		if s.tx.Len() >= e.cfg.RingSize-1-e.cfg.BatchSize {
			continue // local backpressure: tx nearly full
		}
		if pick == nil || s.pass < pick.pass {
			pick = s
		}
	}
	if pick == nil {
		return false
	}
	before := time.Duration(pick.busyNanos.Load())
	pick.grant <- e.cfg.BatchSize
	<-pick.done
	ran := time.Duration(pick.busyNanos.Load()) - before
	w := pick.weight.Load()
	if w < 2 {
		w = 2
	}
	pick.pass += float64(ran) * 1024 / float64(w)
	// Keep sleeping stages from banking unbounded credit.
	min := pick.pass
	for _, s := range e.stages {
		if s.core == core && s.pass < min-float64(time.Second) {
			s.pass = min - float64(time.Second)
		}
	}
	return true
}

// moveAll drains every stage's tx ring toward the next hop or the output
// channel (the Tx-thread role).
func (e *Engine) moveAll() {
	for _, s := range e.stages {
		for {
			pkt, ok := s.tx.Dequeue()
			if !ok {
				break
			}
			chain := e.chains[pkt.ChainID]
			if pkt.Hop >= len(chain) {
				if e.tap != nil {
					e.tap(pkt)
				}
				select {
				case e.out <- pkt:
					e.Delivered.Add(1)
					lat := time.Since(pkt.enqueued).Nanoseconds()
					e.latSumNanos.Add(lat)
					if e.latHist != nil {
						e.latHist.Observe(uint64(lat))
					}
					for {
						cur := e.latMaxNanos.Load()
						if lat <= cur || e.latMaxNanos.CompareAndSwap(cur, lat) {
							break
						}
					}
				default:
					e.RingDrops.Add(1) // consumer not draining
					s.wasted.Add(1)
				}
				continue
			}
			dst := e.stages[chain[pkt.Hop]]
			dst.rxMu.Lock()
			ok = dst.rx.Enqueue(pkt)
			dst.rxMu.Unlock()
			if !ok {
				// Work already invested in this packet is wasted; the drop
				// itself happens at dst's full receive ring.
				e.RingDrops.Add(1)
				dst.drops.Add(1)
				s.wasted.Add(1)
				continue
			}
			dst.arrivals.Add(1)
		}
	}
}

// updateBackpressure applies the watermark state machine: a chain sheds at
// entry while any of its stages' receive queues is above the high watermark,
// and clears when all are below the low one. Upstream yield flags follow the
// same rule as the simulator: set only when every chain through the stage is
// throttled and the stage sits upstream of a bottleneck.
func (e *Engine) updateBackpressure() {
	over := make([]bool, len(e.stages))
	under := make([]bool, len(e.stages))
	for i, s := range e.stages {
		l := s.rx.Len()
		over[i] = l >= e.highWater
		under[i] = l < e.lowWater
	}
	for ci, chain := range e.chains {
		if e.throttled[ci].Load() {
			all := true
			for _, sid := range chain {
				if !under[sid] {
					all = false
					break
				}
			}
			if all {
				e.throttled[ci].Store(false)
				if e.events != nil {
					e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelInfo,
						"backpressure", telemetry.F("chain", ci), telemetry.F("state", "clear"))
				}
			}
		} else {
			for _, sid := range chain {
				if over[sid] {
					e.throttled[ci].Store(true)
					e.ThrottleEvents.Add(1)
					if e.events != nil {
						e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelInfo,
							"backpressure", telemetry.F("chain", ci), telemetry.F("state", "throttle"),
							telemetry.F("stage", e.stages[sid].name))
					}
					break
				}
			}
		}
	}
	for sid, s := range e.stages {
		yield := false
		for ci, chain := range e.chains {
			pos := -1
			for i, id := range chain {
				if id == sid {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			if !e.throttled[ci].Load() {
				yield = false
				break
			}
			upstreamOfBottleneck := false
			for i := pos + 1; i < len(chain); i++ {
				if over[chain[i]] {
					upstreamOfBottleneck = true
					break
				}
			}
			yield = upstreamOfBottleneck
			if !yield {
				break
			}
		}
		s.yield.Store(yield)
	}
}

// updateWeights is the rate-cost proportional controller: weight_i ∝
// arrivals_i × estimated cost_i, with an EWMA cost estimate from measured
// handler time.
func (e *Engine) updateWeights() {
	loads := make([]float64, len(e.stages))
	totals := make([]float64, e.cfg.Cores)
	for i, s := range e.stages {
		arr := s.arrivals.Load()
		busy := s.busyNanos.Load()
		proc := s.processed.Load()
		dArr := arr - s.lastArr
		dBusy := busy - s.lastBusy
		dProc := proc - s.lastProc
		s.lastArr, s.lastBusy, s.lastProc = arr, busy, proc
		if dProc > 0 {
			sample := float64(dBusy) / float64(dProc)
			s.estCost = 0.3*sample + 0.7*s.estCost
		}
		loads[i] = float64(dArr) * s.estCost
		totals[s.core] += loads[i]
	}
	const scale = 10 * 1024
	for i, s := range e.stages {
		if totals[s.core] <= 0 {
			continue
		}
		w := int64(loads[i] / totals[s.core] * scale)
		if w < scale/100 {
			w = scale / 100
		}
		if s.weight.Swap(w) != w && e.events != nil {
			e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelDebug,
				"weight", telemetry.F("stage", s.name), telemetry.F("weight", w))
		}
	}
}

// RegisterMetrics publishes the engine's counters, gauges and the end-to-end
// latency histogram into a telemetry registry. All backing values are
// atomic, so the registry may be gathered (scraped) live while the engine
// runs. Must be called before Run.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	if e.running.Load() {
		panic("dataplane: RegisterMetrics after Run")
	}
	for _, s := range e.stages {
		lbl := []telemetry.Label{
			telemetry.L("stage", s.name),
			telemetry.L("id", strconv.Itoa(s.id)),
			telemetry.L("core", strconv.Itoa(s.core)),
		}
		reg.CounterFunc("dataplane_stage_processed_total",
			"Packets processed by the stage.", s.processed.Load, lbl...)
		reg.CounterFunc("dataplane_stage_arrivals_total",
			"Packets offered to the stage (attempts, including drops).", s.arrivals.Load, lbl...)
		reg.CounterFunc("dataplane_stage_queue_drops_total",
			"Packets dropped at the stage's full receive ring.", s.drops.Load, lbl...)
		reg.CounterFunc("dataplane_stage_wasted_total",
			"Packets processed by the stage that died downstream (wasted work).", s.wasted.Load, lbl...)
		reg.CounterFunc("dataplane_stage_busy_nanoseconds_total",
			"Cumulative handler wall time.", func() uint64 { return uint64(s.busyNanos.Load()) }, lbl...)
		reg.GaugeFunc("dataplane_stage_weight",
			"Current scheduler weight (1024 = one default share).",
			func() float64 { return float64(s.weight.Load()) }, lbl...)
		reg.GaugeFunc("dataplane_stage_queue_depth",
			"Instantaneous receive-ring occupancy.",
			func() float64 { return float64(s.rx.Len()) }, lbl...)
	}
	for ci := range e.chains {
		lbl := []telemetry.Label{telemetry.L("chain", strconv.Itoa(ci))}
		th := &e.throttled[ci]
		reg.GaugeFunc("dataplane_chain_throttled",
			"1 while the chain is shed at entry by backpressure.",
			func() float64 {
				if th.Load() {
					return 1
				}
				return 0
			}, lbl...)
	}
	reg.CounterFunc("dataplane_delivered_total",
		"Packets that completed their chains.", e.Delivered.Load)
	reg.CounterFunc("dataplane_entry_drops_total",
		"Packets shed at chain entry by backpressure.", e.EntryDrops.Load)
	reg.CounterFunc("dataplane_ring_drops_total",
		"Packets dropped at full rings (entry, mid-chain, or output).", e.RingDrops.Load)
	reg.CounterFunc("dataplane_throttle_events_total",
		"Chain-throttle activations.", e.ThrottleEvents.Load)
	e.latHist = reg.Histogram("dataplane_latency_nanoseconds",
		"End-to-end sojourn time of delivered packets.")
}

// SetEventLog attaches a structured event log receiving backpressure
// transitions (info) and weight updates (debug). Must be called before Run.
func (e *Engine) SetEventLog(l *telemetry.EventLog) {
	if e.running.Load() {
		panic("dataplane: SetEventLog after Run")
	}
	e.events = l
}

// Tap registers a callback invoked (on the control goroutine) for every
// delivered packet, e.g. to mirror frames into a pcap capture. Must be set
// before Run.
func (e *Engine) Tap(fn func(*Packet)) {
	if e.running.Load() {
		panic("dataplane: Tap after Run")
	}
	e.tap = fn
}
