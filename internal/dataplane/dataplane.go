// Package dataplane is a real (non-simulated) concurrent service-chain
// runtime implementing NFVnice's control algorithms with goroutines: stages
// (NFs) connected by lock-free rings, a weighted-fair cooperative scheduler
// standing in for cgroup-weighted CFS, watermark backpressure with
// chain-entry shedding, and yield flags checked at batch boundaries.
//
// Where the simulator (the rest of this repository) reproduces the paper's
// evaluation against faithful kernel-scheduler models, this package shows
// the same control plane working against wall-clock time: rate-cost
// proportional weights equalize throughput of unequal-cost stages, and
// backpressure sheds load at chain entries instead of wasting work.
//
// The steady-state hot path is allocation-free and batch-amortized, the
// regime the paper's ≤32-packet grant quantum targets: packet descriptors
// come from a per-engine freelist and are recycled on drop and (optionally,
// via PutPacket or a batch Sink) on delivery; stage receive rings are
// CAS-reserve multi-producer rings so injectors never contend with movers
// on a lock; workers, movers and injectors move packets with bulk ring
// operations that publish once per batch; and per-packet wall-clock reads
// are replaced by a coarse engine clock sampled once per grant and once per
// moved or injected batch, so end-to-end latency is accurate to within one
// batch quantum.
//
// Threading model: user code injects packets from any number of producer
// goroutines; each stage's handler runs on its own goroutine but only while
// holding a grant from the scheduler, which serializes stage execution (the
// shared-CPU-core regime the paper studies) while keeping handlers free to
// block briefly on their own I/O. The TX path is sharded (mover.go): the
// paper's manager TX threads map to Config.Movers mover goroutines, each
// owning a static partition of the stages' tx rings, while backpressure,
// supervision and the weight controller run on a decoupled control
// goroutine at the paper's cadences (Config.BackpressurePeriod 1 ms,
// Config.WeightPeriod 10 ms).
//
// Failure model: stages are supervised (see supervise.go). A handler panic
// fails only its stage; a handler that exceeds the grant deadline is
// detached so it can never wedge the scheduler; failed stages restart with
// exponential backoff under a max-restart circuit breaker, and chains
// through a failed stage either shed at entry (fail-closed, the default) or
// bypass the dead hop (fail-open). Every packet lost to a fault is charged
// to an explicit drop class so accounting reconciles even across crashes
// and shutdown.
package dataplane

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nfvnice/internal/ring"
	"nfvnice/internal/telemetry"
)

// Packet is the unit of work flowing through a pipeline. Handlers may use
// Userdata to carry per-packet state between stages.
//
// Descriptors are pooled: obtain them with Engine.GetPacket (or a
// PacketCache) and return delivered ones with PutPacket. Packets the engine
// drops internally are recycled automatically unless Config.NoRecycle is
// set, so a recycled packet must never be retained past the call that
// surrendered it — copy what you need instead.
type Packet struct {
	FlowID   int
	ChainID  int
	Size     int
	Hop      int
	Userdata any

	// Frame is the packet's wire bytes, backed by a preallocated arena
	// slot that travels with the descriptor (Config.FrameSize > 0).
	// Handlers mutate it in place — the zero-copy path real NFs run on —
	// and may shrink or grow it within the slot's capacity via reslicing
	// or append. Swapping in a foreign buffer breaks the pooling contract
	// (Config.DebugPool catches it); the length is reset to zero whenever
	// the descriptor is recycled, the bytes are not cleared.
	Frame []byte

	// frame0 is the descriptor's arena slot at full capacity; Frame is
	// restored to frame0[:0] on every recycle so ownership of the slot
	// follows the descriptor through the freelist.
	frame0 []byte

	// Drop, when set by a handler, discards the packet instead of
	// forwarding it: the worker recycles it and charges an NF drop (the
	// path fault injectors use to model transient NF errors). The flag is
	// cleared before the descriptor is reused.
	Drop bool

	// enqueuedNanos is the coarse engine clock (unix nanos) at chain entry.
	enqueuedNanos int64

	// span is the flight recorder's per-hop trace, attached at inject to
	// sampled packets only (see trace.go); nil on the unsampled path, so
	// the hot path pays one predictable branch per packet.
	span *Span

	// poolState tracks freelist ownership when Config.DebugPool is set
	// (0 = live, 1 = pooled); manipulated with sync/atomic functions.
	poolState int32
}

// Handler processes one packet at a stage.
type Handler func(*Packet)

// BatchHandler processes a whole dequeued batch at a stage in one call —
// the amortized dispatch path for frame-native NFs (one closure invocation
// and one interface dispatch per batch instead of per packet). Handlers
// mark discards by setting Packet.Drop; the worker routes them to NFDrops
// exactly as on the per-packet path. The slice is the worker's scratch and
// must not be retained past the call.
type BatchHandler func([]*Packet)

// Config tunes the runtime.
type Config struct {
	// Cores is the number of scheduler loops; stages are assigned to a
	// core with AddStageOn and contend only with co-resident stages, as
	// NFs pinned to CPU cores do (default 1).
	Cores int
	// Movers is the number of TX-path mover goroutines (the paper's
	// manager TX threads). Each mover owns a static partition of the
	// stages' tx rings — stage i belongs to mover i mod Movers — so every
	// tx ring keeps a single consumer and per-flow FIFO is preserved.
	// 0 takes min(Cores, GOMAXPROCS). With Movers > 1 the Sink and Tap
	// callbacks may be invoked concurrently from multiple movers.
	Movers int
	// BackpressurePeriod is the control plane's queue-length sampling
	// cadence: how often the watermark backpressure state machine runs
	// (the paper's 1 ms load-estimation interval; 0 takes the 1 ms
	// default).
	BackpressurePeriod time.Duration
	// RingSize is each stage's receive/transmit ring capacity (rounded up
	// to a power of two).
	RingSize int
	// BatchSize bounds packets processed per grant between yield checks.
	BatchSize int
	// MoverBatchMin and MoverBatchMax bound the movers' adaptive sweep
	// batch: each TX shard grows its per-sweep drain batch toward
	// MoverBatchMax while its drain-per-sweep EWMA shows sustained backlog
	// and shrinks it toward MoverBatchMin when sweeps come up light, so
	// loaded shards get deep batch amortization without idle shards walking
	// oversized buffers. Defaults: min(32, BatchSize) and
	// max(256, BatchSize). Setting both to the same value pins the batch.
	MoverBatchMin int
	MoverBatchMax int
	// HighFrac and LowFrac are the backpressure watermarks.
	HighFrac, LowFrac float64
	// WeightPeriod is the weight-push cadence: how often the rate-cost
	// controller recomputes auto-weights (the paper's 10 ms interval;
	// 0 disables the controller; manual SetWeight still works).
	WeightPeriod time.Duration
	// PoolSize caps the packet freelist (rounded up to a power of two;
	// default 4×RingSize). Excess recycled packets are left to the GC.
	PoolSize int
	// FrameSize, when > 0, gives every pooled descriptor a wire-frame
	// buffer of this capacity carved from one contiguous preallocated
	// arena (PoolSize slots — the role OpenNetVM's shared huge-page
	// mempool plays for the paper's NFs). Packet.Frame aliases the
	// descriptor's slot for its whole pooled lifetime: frontends fill it
	// in place, NFs mutate it in place, and recycling resets only its
	// length, so the steady-state frame path allocates nothing. 0 (the
	// default) leaves Frame nil and the arena unallocated.
	FrameSize int
	// NoRecycle disables automatic recycling of packets the engine drops
	// (shed batches, full rings, full output). Set it when the producer
	// retains references to injected packets; GetPacket/PutPacket still
	// work, they just never race the engine for ownership.
	NoRecycle bool

	// GrantTimeout bounds how long the scheduler waits for a granted stage
	// to finish its batch. A stage that overruns it is detached and marked
	// Failed instead of wedging the core (0 takes the 100ms default;
	// negative disables the deadline and restores unbounded waits).
	GrantTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown drain: after ctx cancel,
	// Run keeps granting and moving until the rings empty or the deadline
	// passes, then sweeps leftovers into ShutdownDrops (0 takes the 500ms
	// default; negative skips the drain and sweeps immediately).
	DrainTimeout time.Duration
	// RestartBackoff and RestartBackoffMax shape the supervised-restart
	// schedule: the k-th consecutive failure waits
	// min(RestartBackoff<<(k-1), RestartBackoffMax), plus jitter
	// (defaults 2ms and 500ms).
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// MaxRestarts is the circuit breaker: after this many consecutive
	// failures the stage stays Failed permanently and its queue is drained
	// into FaultDrops (0 takes the default of 8; negative means unlimited).
	MaxRestarts int
	// JitterSeed seeds the restart-backoff jitter PRNG so chaos runs are
	// reproducible (0 takes seed 1).
	JitterSeed int64
	// DebugPool enables double-PutPacket and use-after-recycle detection
	// on the packet freelist; violations panic with the offending stage.
	// Costs one predictable branch per packet — leave off in production.
	DebugPool bool

	// TraceSampleShift enables the flight recorder's packet spans: 0 (the
	// default) disables sampling entirely; a value s ≥ 1 samples 1 in 2^s
	// injected packets and records per-hop timestamps into pooled spans
	// (see trace.go). Disabled, the hot path stays zero-atomic and
	// zero-allocation.
	TraceSampleShift int
	// TraceSpoolSize is the completed-span spool capacity and the number
	// of preallocated span slabs (rounded up to a power of two; 0 takes
	// 1024). Overflow drops are counted, never blocked on.
	TraceSpoolSize int
	// DecisionJournalSize is the control-plane decision journal capacity
	// (0 takes 1024; negative disables the journal). The journal records
	// every backpressure, weight and supervision decision with its cause;
	// query it with Engine.Decisions or over HTTP via AddDebugEndpoints.
	DecisionJournalSize int
}

// DefaultConfig mirrors the paper's platform parameters (1 ms load
// estimation, 10 ms weight push). Movers is left 0 — New resolves it to
// min(Cores, GOMAXPROCS).
func DefaultConfig() Config {
	return Config{
		Cores:              1,
		RingSize:           4096,
		BatchSize:          32,
		HighFrac:           0.80,
		LowFrac:            0.60,
		BackpressurePeriod: time.Millisecond,
		WeightPeriod:       10 * time.Millisecond,
		GrantTimeout:       100 * time.Millisecond,
		DrainTimeout:       500 * time.Millisecond,
		RestartBackoff:     2 * time.Millisecond,
		RestartBackoffMax:  500 * time.Millisecond,
		MaxRestarts:        8,
		JitterSeed:         1,
	}
}

// Validate reports the first nonsensical setting in the config, before
// zero-value defaulting is applied. Fields where a negative value selects
// documented behaviour (GrantTimeout, DrainTimeout, MaxRestarts) are not
// flagged. New panics on an invalid config; call Validate first to handle
// bad configs gracefully.
func (cfg Config) Validate() error {
	switch {
	case cfg.Cores < 0:
		return errors.New("dataplane: Cores must be >= 0")
	case cfg.Movers < 0:
		return errors.New("dataplane: Movers must be >= 0")
	case cfg.RingSize < 0:
		return errors.New("dataplane: RingSize must be >= 0")
	case cfg.BatchSize < 0:
		return errors.New("dataplane: BatchSize must be >= 0")
	case cfg.MoverBatchMin < 0:
		return errors.New("dataplane: MoverBatchMin must be >= 0")
	case cfg.MoverBatchMax < 0:
		return errors.New("dataplane: MoverBatchMax must be >= 0")
	case cfg.MoverBatchMin > 0 && cfg.MoverBatchMax > 0 && cfg.MoverBatchMin > cfg.MoverBatchMax:
		return errors.New("dataplane: MoverBatchMin must not exceed MoverBatchMax")
	case cfg.BackpressurePeriod < 0:
		return errors.New("dataplane: BackpressurePeriod must be >= 0")
	case cfg.WeightPeriod < 0:
		return errors.New("dataplane: WeightPeriod must be >= 0 (0 disables the controller)")
	case cfg.HighFrac < 0 || cfg.HighFrac > 1:
		return errors.New("dataplane: HighFrac must be in [0, 1]")
	case cfg.LowFrac < 0 || cfg.LowFrac > 1:
		return errors.New("dataplane: LowFrac must be in [0, 1]")
	case cfg.HighFrac > 0 && cfg.LowFrac > 0 && cfg.LowFrac > cfg.HighFrac:
		return errors.New("dataplane: LowFrac must not exceed HighFrac")
	case cfg.FrameSize < 0:
		return errors.New("dataplane: FrameSize must be >= 0")
	case cfg.TraceSampleShift < 0 || cfg.TraceSampleShift > 32:
		return errors.New("dataplane: TraceSampleShift must be in [0, 32]")
	case cfg.TraceSpoolSize < 0:
		return errors.New("dataplane: TraceSpoolSize must be >= 0")
	}
	return nil
}

// StageStats is a snapshot of one stage's counters.
type StageStats struct {
	Name      string
	Processed uint64
	// Arrivals counts packets offered to the stage, including ones that
	// were then shed or dropped (offered load, the controller's λ).
	Arrivals uint64
	Weight   int64
	// Busy is cumulative handler wall time.
	Busy time.Duration
	// EstCost is the controller's smoothed per-packet cost estimate.
	EstCost time.Duration
	// QueueDrops counts packets dropped at this stage's full receive ring;
	// Wasted counts packets this stage processed that died downstream (the
	// paper's wasted-work metric).
	QueueDrops uint64
	Wasted     uint64
	// Health is the supervision state; Restarts counts supervised worker
	// respawns; FaultDrops counts packets lost in this stage's crashes,
	// stalls and failed-queue drains; NFDrops counts packets the handler
	// discarded via Packet.Drop.
	Health     Health
	Restarts   uint64
	FaultDrops uint64
	NFDrops    uint64
}

type stage struct {
	id   int
	core int
	name string
	fn   Handler
	// bfn, when non-nil, replaces fn with whole-batch dispatch (see
	// runChunkBatch): the worker hands the handler its dequeued chunk in
	// one call. Exactly one of fn/bfn is set for local stages.
	bfn BatchHandler
	// rx is a CAS-reserve multi-producer ring: injector goroutines and the
	// mover enqueue concurrently without a lock; the stage's live worker is
	// normally the single consumer (a detached worker incarnation may race
	// it briefly, which the MPMC ring tolerates).
	rx *ring.MPMC[*Packet]
	// tx is MPMC on the producer side so a detached worker incarnation
	// waking from a stall can never corrupt the ring against its
	// replacement; the stage's owning mover remains the single consumer.
	tx *ring.MPMC[*Packet]
	// mov is the TX shard owning this stage's tx ring (the wake target for
	// workers publishing into it); assigned by Run before workers spawn.
	mov *mover
	// rem, when non-nil, marks a remote stage: the handler ships packets to
	// a peer engine over rem.client instead of processing them (remote.go).
	// The scheduler gates grants on the link's credit, the backpressure pass
	// folds the link's ECN signal into the stage's watermark state, and the
	// link's state machine — not grant probation — owns the stage's health.
	rem    *remoteLink
	weight atomic.Int64
	yield  atomic.Bool

	// w is the live worker incarnation (grant/done channels, scratch,
	// in-flight claim counter). Swapped on supervised restart; epoch
	// stamps incarnations so a stale worker can detect it was detached.
	w     atomic.Pointer[workerCtx]
	epoch atomic.Uint64

	// health is the supervision state machine (Health values); consecFails
	// feeds the backoff schedule and circuit breaker; restartAtNanos is
	// when a Failed stage may respawn (restartNever = circuit open).
	health         atomic.Int32
	consecFails    atomic.Int32
	restartAtNanos atomic.Int64
	restarts       atomic.Uint64

	// Hot counters, grouped by writer with cache-line pads between groups
	// (the ring.Pad contract): the stage's worker hammering processed can
	// never invalidate the line carrying the injectors' arrivals, and
	// vice versa. Within a group the writers are the same goroutine (or
	// rare cold paths), so sharing a line is free.
	_          ring.Pad
	processed  atomic.Uint64 // worker-written
	busyNanos  atomic.Int64  // worker-written
	nfDrops    atomic.Uint64 // worker-written: handler discards via Packet.Drop
	_          ring.Pad
	arrivals   atomic.Uint64 // injector/mover-written: offered load
	drops      atomic.Uint64 // injector/mover-written: full-rx-ring losses
	wasted     atomic.Uint64 // mover-written: processed here, died downstream
	faultDrops atomic.Uint64 // supervisor-written: crash/stall/drain losses
	_          ring.Pad

	pass float64 // WFQ virtual time, owned by the scheduler goroutine
	// estCost is the smoothed ns/packet estimate as Float64bits: written
	// only by the controller, but read by Stats while the engine runs.
	estCost  atomic.Uint64
	lastArr  uint64
	lastBusy int64
	lastProc uint64
}

// schedulable reports whether the scheduler may grant the stage: every
// state but Failed runs (Degraded and Restarting stages prove themselves
// under real traffic).
func (s *stage) schedulable() bool { return Health(s.health.Load()) != Failed }

// Engine is a runnable pipeline host.
type Engine struct {
	cfg    Config
	stages []*stage
	chains [][]int // chainID -> stage ids

	// flows maps flowID -> chainID. It is copy-on-write: MapFlow clones the
	// map under flowsMu and swaps the pointer, so the per-packet lookup is a
	// plain (allocation-free) map read — sync.Map would box every int key
	// outside the runtime's small-integer cache.
	flows   atomic.Pointer[map[int]int]
	flowsMu sync.Mutex

	throttled []atomic.Bool // per chain
	highWater int
	lowWater  int

	// chainDown marks chains shed at entry because a stage on them is
	// Failed under the fail-closed policy; chainPolicy is fixed at Run.
	chainDown   []atomic.Bool
	chainPolicy []FailPolicy

	// anyFaulty is the fast-path gate for all supervision checks: while
	// every stage is Healthy the mover and supervisor skip per-packet and
	// per-tick health work entirely.
	anyFaulty atomic.Bool

	// stopped flips when Run's drain completes: later Inject/InjectBatch
	// calls are rejected and counted in LateDrops instead of enqueueing
	// into rings nobody will drain.
	stopped atomic.Bool

	// liveWorkers counts running worker goroutines (wedged ones included
	// until they wake); shutdown waits for it boundedly.
	liveWorkers atomic.Int64

	// jitterMu guards jitterRand, the seeded PRNG behind restart-backoff
	// jitter (reachable from every core's scheduler loop).
	jitterMu   sync.Mutex
	jitterRand *rand.Rand

	out  chan *Packet
	sink func([]*Packet)
	tap  func(*Packet)

	// free is the shared packet freelist (see GetPacket/PutPacket and
	// PacketCache for the per-producer caches layered on top).
	free *ring.MPMC[*Packet]

	// coarseNanos is the engine clock: unix nanos refreshed once per
	// scheduler iteration, grant and moved batch. Injection stamps and
	// latency measurements read it instead of calling time.Now per packet.
	// It is written by several planes (control loop, schedulers, movers,
	// batch injectors), so it gets a cache line to itself: a clock store
	// must not invalidate any counter's line.
	_           ring.Pad
	coarseNanos atomic.Int64
	_           ring.Pad

	// Injected counts packets accepted into a chain entry ring; Delivered,
	// EntryDrops, RingDrops and OutputDrops count packet outcomes;
	// ThrottleEvents counts chain-throttle activations.
	//
	// Fault-tolerance classes: FaultEntryDrops counts packets shed at the
	// entry of a fail-closed chain whose stage is down (pre-acceptance,
	// like EntryDrops); NFDrops counts packets handlers discarded via
	// Packet.Drop; FaultDrops counts in-flight packets lost to stage
	// crashes/stalls and failed-queue drains; ShutdownDrops counts
	// accepted packets swept out of rings when Run winds down; LateDrops
	// counts Inject attempts rejected after Run exited (pre-acceptance).
	//
	// Cross-host classes: packets a remote stage hands to its link leave
	// the local classes and settle in exactly one of RemoteDelivered (the
	// peer acknowledged the frame) or RemoteDrops (the link died with the
	// packet queued or in flight, refused it, or was closed holding it).
	//
	// Reconciliation: once the pipeline quiesces — and, with the shutdown
	// drain, after Run returns —
	//
	//	Injected == Delivered + MidRingDrops + OutputDrops
	//	          + NFDrops + FaultDrops + ShutdownDrops
	//	          + RemoteDelivered + RemoteDrops
	//
	// MidRingDrops is the mid-chain (post-acceptance) subset of RingDrops;
	// LedgerSnapshot packages this identity as a checkable struct.
	//
	// Layout: the counters are grouped by their steady-state writers —
	// producer-side (injector goroutines), delivery-side (movers), and
	// worker/control — with a cache-line pad between groups so a producer
	// bumping Injected never bounces the line the movers bump Delivered on.
	Injected        atomic.Uint64 // producer-written
	EntryDrops      atomic.Uint64 // producer-written
	FaultEntryDrops atomic.Uint64 // producer-written
	LateDrops       atomic.Uint64 // producer-written
	RingDrops       atomic.Uint64 // producer- and mover-written (entry vs mid-chain)
	_               ring.Pad
	Delivered       atomic.Uint64 // mover-written
	OutputDrops     atomic.Uint64 // mover-written
	// MidRingDrops is the mover-written subset of RingDrops: packets that
	// were already accepted (counted Injected) and then died at a full
	// mid-chain receive ring. Entry-ring drops are pre-acceptance and appear
	// only in RingDrops, so the reconciliation above can be checked exactly
	// from the global counters alone (see LedgerSnapshot) without knowing
	// which stages are chain entries.
	MidRingDrops atomic.Uint64 // mover-written
	// latSumNanos/latMaxNanos accumulate end-to-end sojourn time of
	// delivered packets (mover-written; read via LatencyStats).
	latSumNanos    atomic.Int64
	latMaxNanos    atomic.Int64
	_              ring.Pad
	ThrottleEvents atomic.Uint64 // control-written
	NFDrops        atomic.Uint64 // worker-written
	FaultDrops     atomic.Uint64 // worker/supervisor-written
	ShutdownDrops  atomic.Uint64 // shutdown/worker-written
	// RemoteDelivered/RemoteDrops are written from remote-link callback
	// goroutines (ack-rate and transition-rate, never per local grant).
	RemoteDelivered atomic.Uint64
	RemoteDrops     atomic.Uint64

	// remotes lists the remote links behind StageRemote stages (remote.go);
	// fixed before Run, so the slice itself needs no lock.
	remotes []*remoteLink

	// movers are the TX shards (see mover.go); moverStop ends them after
	// the scheduler loops join, and moverWg waits for their exit before
	// the serial shutdown drain takes over their rings.
	movers    []*mover
	moverStop chan struct{}
	moverWg   sync.WaitGroup

	// laneMu guards lane registration/retirement (the COW writes to each
	// mover's lane list and the engine-wide lanes slice); laneRR spreads
	// new lanes across movers round-robin. The per-packet lane paths never
	// take it (see lanes.go).
	laneMu sync.Mutex
	lanes  []*injectLane
	laneRR int

	// lateMu serializes the post-stop rescue sweeps (lateSweep, lane
	// shutdown sweeps) so a producer racing Run's exit can't double-drain
	// a ring against another late producer.
	lateMu sync.Mutex

	// drainRC batches freelist recycling for the serial shutdown drain
	// (movers carry their own; see recycler in pool.go).
	drainRC *recycler

	// drainBuf is the shutdown drain's tx scratch (the serial moveAll);
	// over/under, depths, wLoads and wTotals are control-loop scratch, all
	// hoisted out of the steady-state loops so they allocate once.
	drainBuf []*Packet
	over     []bool
	under    []bool
	depths   []int
	wLoads   []float64
	wTotals  []float64

	// rec is the flight recorder's span machinery (nil unless
	// Config.TraceSampleShift > 0); spanSink optionally receives completed
	// spans on the control goroutine; hopService/hopWait are the per-stage
	// per-hop latency histograms created by RegisterMetrics.
	rec        *recorder
	spanSink   func(*Span)
	hopService []*telemetry.Histogram
	hopWait    []*telemetry.Histogram

	// journal is the control-plane decision journal (nil when
	// Config.DecisionJournalSize < 0).
	journal *DecisionJournal

	// latHist, when registered via RegisterMetrics, observes per-packet
	// end-to-end latency in nanoseconds.
	latHist *telemetry.Histogram
	// events, when set via SetEventLog, receives control-plane decisions.
	events    *telemetry.EventLog
	startWall time.Time

	running atomic.Bool
}

// New returns an engine with the given config (zero value fields take
// defaults). It panics on a config Validate rejects.
func New(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	def := DefaultConfig()
	if cfg.RingSize == 0 {
		cfg.RingSize = def.RingSize
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = def.BatchSize
	}
	if cfg.MoverBatchMin == 0 {
		cfg.MoverBatchMin = 32
		if cfg.BatchSize < 32 {
			cfg.MoverBatchMin = cfg.BatchSize
		}
	}
	if cfg.MoverBatchMax == 0 {
		cfg.MoverBatchMax = 256
		if cfg.BatchSize > 256 {
			cfg.MoverBatchMax = cfg.BatchSize
		}
	}
	if cfg.MoverBatchMax < cfg.MoverBatchMin {
		cfg.MoverBatchMax = cfg.MoverBatchMin
	}
	if cfg.HighFrac == 0 {
		cfg.HighFrac = def.HighFrac
	}
	if cfg.LowFrac == 0 {
		cfg.LowFrac = def.LowFrac
	}
	if cfg.Cores <= 0 {
		cfg.Cores = def.Cores
	}
	if cfg.Movers <= 0 {
		cfg.Movers = cfg.Cores
		if p := runtime.GOMAXPROCS(0); cfg.Movers > p {
			cfg.Movers = p
		}
		if cfg.Movers < 1 {
			cfg.Movers = 1
		}
	}
	if cfg.BackpressurePeriod == 0 {
		cfg.BackpressurePeriod = def.BackpressurePeriod
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4 * cfg.RingSize
	}
	if cfg.GrantTimeout == 0 {
		cfg.GrantTimeout = def.GrantTimeout
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = def.DrainTimeout
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = def.RestartBackoff
	}
	if cfg.RestartBackoffMax <= 0 {
		cfg.RestartBackoffMax = def.RestartBackoffMax
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = def.MaxRestarts
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = def.JitterSeed
	}
	if cfg.TraceSpoolSize == 0 {
		cfg.TraceSpoolSize = 1024
	}
	high, low := ring.ClampWatermarks(cfg.RingSize, cfg.HighFrac, cfg.LowFrac)
	e := &Engine{
		cfg:        cfg,
		highWater:  high,
		lowWater:   low,
		out:        make(chan *Packet, cfg.RingSize),
		free:       ring.NewMPMC[*Packet](cfg.PoolSize),
		drainBuf:   make([]*Packet, cfg.BatchSize),
		jitterRand: rand.New(rand.NewSource(cfg.JitterSeed)),
	}
	if cfg.TraceSampleShift > 0 {
		e.rec = newRecorder(cfg.TraceSampleShift, cfg.TraceSpoolSize)
	}
	if cfg.DecisionJournalSize >= 0 {
		size := cfg.DecisionJournalSize
		if size == 0 {
			size = 1024
		}
		e.journal = NewDecisionJournal(size)
	}
	// TX shards exist from construction so RegisterMetrics can expose
	// their counters and ProducerHandle can bind lanes to them before Run
	// partitions the stages across them. The sweep scratch is sized for
	// the adaptive batch ceiling; the starting batch is BatchSize clamped
	// into the adaptive window.
	startBatch := cfg.BatchSize
	if startBatch < cfg.MoverBatchMin {
		startBatch = cfg.MoverBatchMin
	}
	if startBatch > cfg.MoverBatchMax {
		startBatch = cfg.MoverBatchMax
	}
	e.movers = make([]*mover, cfg.Movers)
	for i := range e.movers {
		m := &mover{
			id:     i,
			buf:    make([]*Packet, cfg.MoverBatchMax),
			wakeCh: make(chan struct{}, 1),
			batch:  startBatch,
			ewma:   float64(startBatch),
			rc:     e.newRecycler(cfg.MoverBatchMax),
		}
		m.curBatch.Store(int32(startBatch))
		m.lanes.Store(&[]*injectLane{})
		e.movers[i] = m
	}
	e.drainRC = e.newRecycler(cfg.BatchSize)
	if cfg.FrameSize > 0 {
		// One contiguous arena, sliced into full-capacity slots bound to
		// prefilled descriptors: frame ownership rides the freelist, and
		// the three-index slice caps append growth at the slot boundary so
		// a runaway handler can never bleed into a neighbour's frame.
		fs := cfg.FrameSize
		arena := make([]byte, cfg.PoolSize*fs)
		for i := 0; i < cfg.PoolSize; i++ {
			slot := arena[i*fs : (i+1)*fs : (i+1)*fs]
			e.free.Enqueue(&Packet{Frame: slot[:0], frame0: slot})
		}
	}
	e.coarseNanos.Store(time.Now().UnixNano())
	return e
}

// AddStage registers an NF on core 0 with the given initial weight (1024 =
// one default share). Must be called before Run.
func (e *Engine) AddStage(name string, weight int64, fn Handler) int {
	return e.AddStageOn(name, weight, 0, fn)
}

// AddStageOn registers an NF pinned to the given core. Must be called
// before Run.
func (e *Engine) AddStageOn(name string, weight int64, core int, fn Handler) int {
	return e.addStage(name, weight, core, fn, nil)
}

// AddBatchStage registers a batch-dispatch NF on core 0: the handler
// receives each dequeued chunk whole instead of packet by packet, so
// frame-native NFs amortize dispatch and lookup costs across the batch.
// Must be called before Run.
func (e *Engine) AddBatchStage(name string, weight int64, fn BatchHandler) int {
	return e.AddBatchStageOn(name, weight, 0, fn)
}

// AddBatchStageOn registers a batch-dispatch NF pinned to the given core.
// Must be called before Run.
func (e *Engine) AddBatchStageOn(name string, weight int64, core int, fn BatchHandler) int {
	return e.addStage(name, weight, core, nil, fn)
}

func (e *Engine) addStage(name string, weight int64, core int, fn Handler, bfn BatchHandler) int {
	if core < 0 || core >= e.cfg.Cores {
		panic("dataplane: stage core out of range")
	}
	s := &stage{
		id:   len(e.stages),
		core: core,
		name: name,
		fn:   fn,
		bfn:  bfn,
		rx:   ring.NewMPMC[*Packet](e.cfg.RingSize),
		tx:   ring.NewMPMC[*Packet](e.cfg.RingSize),
	}
	s.weight.Store(weight)
	s.estCost.Store(math.Float64bits(float64(time.Microsecond))) // prior until measured
	s.health.Store(int32(Healthy))
	e.stages = append(e.stages, s)
	return s.id
}

// AddChain registers a service chain over stage ids and returns the chain
// id. Must be called before Run.
func (e *Engine) AddChain(stageIDs ...int) (int, error) {
	if len(stageIDs) == 0 {
		return 0, errors.New("dataplane: empty chain")
	}
	for _, id := range stageIDs {
		if id < 0 || id >= len(e.stages) {
			return 0, errors.New("dataplane: unknown stage in chain")
		}
	}
	e.chains = append(e.chains, append([]int(nil), stageIDs...))
	e.throttled = append(e.throttled, atomic.Bool{})
	e.chainDown = append(e.chainDown, atomic.Bool{})
	e.chainPolicy = append(e.chainPolicy, FailClosed)
	return len(e.chains) - 1, nil
}

// SetChainPolicy selects what happens to a chain while one of its stages is
// Failed: FailClosed (the default) sheds the chain's packets at entry,
// charged to FaultEntryDrops; FailOpen forwards past the dead hop. Must be
// called before Run.
func (e *Engine) SetChainPolicy(chainID int, p FailPolicy) {
	if e.running.Load() {
		panic("dataplane: SetChainPolicy after Run")
	}
	e.chainPolicy[chainID] = p
}

// MapFlow routes a flow to a chain. Safe to call at any time.
func (e *Engine) MapFlow(flowID, chainID int) {
	e.flowsMu.Lock()
	defer e.flowsMu.Unlock()
	next := make(map[int]int)
	if cur := e.flows.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[flowID] = chainID
	e.flows.Store(&next)
}

// routeOf resolves a flow to its chain without allocating.
func (e *Engine) routeOf(flowID int) (int, bool) {
	m := e.flows.Load()
	if m == nil {
		return 0, false
	}
	chainID, ok := (*m)[flowID]
	return chainID, ok
}

// SetWeight adjusts a stage's scheduler weight (manual control when the
// auto controller is disabled).
func (e *Engine) SetWeight(stageID int, w int64) {
	if w < 2 {
		w = 2
	}
	e.stages[stageID].weight.Store(w)
}

// Output delivers packets that completed their chains. The consumer must
// drain it; a full output channel backpressures the final stages. Return
// packets with PutPacket (or a PacketCache) once consumed to keep the hot
// path allocation-free. Unused when a Sink is set.
func (e *Engine) Output() <-chan *Packet { return e.out }

// SetSink replaces the Output channel with a callback invoked on a mover
// goroutine with each batch of delivered packets — the batch-amortized
// delivery path (no per-packet channel operation). The sink owns the
// packets; recycle them with PutPacket or a PacketCache when done. The slice
// is reused after the call returns — don't retain it. Must be called before
// Run.
//
// Sink concurrency: with Config.Movers > 1 the sink may be invoked
// concurrently from multiple movers, so it must be safe for concurrent
// use (Engine.PutPacket is; a PacketCache is not — use one per mover's
// worth of traffic only under an external lock, or a plain PutPacket
// loop). Deliveries of any single flow always come from one mover — a
// flow exits through a fixed final stage, and each stage's tx ring has
// exactly one consumer — so per-flow delivery order is still FIFO.
func (e *Engine) SetSink(fn func([]*Packet)) {
	if e.running.Load() {
		panic("dataplane: SetSink after Run")
	}
	e.sink = fn
}

// Inject offers a packet from a producer goroutine. It reports false when
// the packet was shed — by chain-entry backpressure, a fail-closed chain
// whose stage is down, a full entry ring, or because Run has exited — or
// when the flow has no route; the caller keeps ownership of a rejected
// packet (retry it or PutPacket it). For bulk producers InjectBatch
// amortizes the per-packet costs.
func (e *Engine) Inject(p *Packet) bool {
	if e.stopped.Load() {
		e.LateDrops.Add(1)
		return false
	}
	chainID, ok := e.routeOf(p.FlowID)
	if !ok {
		return false
	}
	p.ChainID = chainID
	p.Hop = 0
	entry := e.stages[e.chains[chainID][0]]
	// Arrivals count offered load (attempts), not surviving enqueues:
	// the rate-cost controller's λ must not collapse to the drain rate
	// when a stage is overloaded or its chain is being shed.
	entry.arrivals.Add(1)
	if e.throttled[chainID].Load() {
		e.EntryDrops.Add(1)
		return false
	}
	if e.chainDown[chainID].Load() {
		e.FaultEntryDrops.Add(1)
		return false
	}
	p.enqueuedNanos = e.coarseNanos.Load()
	// Spans attach before the enqueue publishes the packet: once it is in
	// the ring a worker may already be reading it.
	if e.rec != nil {
		e.sampleInject(p)
	}
	if !entry.rx.Enqueue(p) {
		e.RingDrops.Add(1)
		entry.drops.Add(1)
		return false
	}
	e.Injected.Add(1)
	if e.stopped.Load() {
		// Run exited between the first check and the enqueue: the final
		// sweep may already have run, so sweep this ring ourselves. The
		// packet counts as accepted-then-shutdown-dropped.
		e.lateSweep(entry)
	}
	return true
}

// lateSweep rescues packets enqueued by an Inject/InjectBatch that raced
// Run's stop gate: it drains the stage's rx ring into ShutdownDrops. The
// empty-ring fast path makes the sweep effectively one-shot — once some
// racer (or the final shutdown sweep) has drained the ring, later late
// calls see it empty and pay two atomic loads instead of re-sweeping, so a
// lingering producer can't spin on sweeps. A strict once-per-stage latch
// would be unsound: a second racer can enqueue after the first racer's
// sweep, and its packet still needs rescuing for conservation to hold. The
// mutex serializes concurrent racers (sweepRing tolerates concurrency; the
// lock just keeps the accounting ordering obvious and covers the lane
// sweeps sharing it).
func (e *Engine) lateSweep(s *stage) {
	if s.rx.Len() == 0 {
		return
	}
	e.lateMu.Lock()
	e.sweepRing(s.rx, &e.ShutdownDrops)
	e.lateMu.Unlock()
}

// InjectBatch offers every packet in ps, sampling the engine clock once and
// publishing each run of same-flow packets with a single ring reservation.
// It reports how many were accepted. Unlike Inject, the engine consumes the
// whole slice: packets shed by backpressure, full rings or missing routes
// are dropped (and recycled unless Config.NoRecycle), so the caller must not
// reuse any packet in ps afterwards.
func (e *Engine) InjectBatch(ps []*Packet) int {
	if len(ps) == 0 {
		return 0
	}
	if e.stopped.Load() {
		// Run has exited: consume the slice per the InjectBatch contract,
		// but account the attempts instead of enqueueing into rings nobody
		// will ever drain.
		e.LateDrops.Add(uint64(len(ps)))
		for _, p := range ps {
			e.freePacket(p)
		}
		return 0
	}
	now := time.Now().UnixNano()
	e.coarseNanos.Store(now)
	// Sample the whole batch up front (one atomic add); packets the loop
	// below sheds abort their spans through freePacket.
	if e.rec != nil {
		e.sampleBatch(ps, now)
	}
	accepted := e.enqueueRouted(ps, now, nil)
	if accepted > 0 {
		e.Injected.Add(uint64(accepted))
	}
	if e.stopped.Load() && accepted > 0 {
		// Run exited mid-batch: the final sweep may have missed what we
		// just enqueued, so sweep the entry rings ourselves (lateSweep
		// skips the untouched ones on the empty-ring fast path).
		for _, s := range e.stages {
			e.lateSweep(s)
		}
	}
	return accepted
}

// enqueueRouted routes every packet in ps to its chain's entry ring,
// publishing each run of same-flow packets with a single ring reservation:
// one routing lookup, one counter update, one reservation per run. Packets
// shed by backpressure, a down chain, a full entry ring or a missing route
// are recycled (through rc when non-nil, so movers batch the freelist
// returns) and charged to their drop classes. Reports how many packets were
// accepted; the caller owns adding them to Injected. Shared by InjectBatch
// and the mover-side inject-lane drain.
func (e *Engine) enqueueRouted(ps []*Packet, now int64, rc *recycler) int {
	drop := func(p *Packet) {
		if rc != nil {
			rc.put(p)
		} else {
			e.freePacket(p)
		}
	}
	accepted := 0
	for i := 0; i < len(ps); {
		p := ps[i]
		chainID, ok := e.routeOf(p.FlowID)
		if !ok {
			drop(p)
			i++
			continue
		}
		entry := e.stages[e.chains[chainID][0]]
		// Extend the run across packets sharing the flow: one routing
		// lookup, one counter update, one ring reservation for the run.
		j := i
		for j < len(ps) && ps[j].FlowID == p.FlowID {
			ps[j].ChainID = chainID
			ps[j].Hop = 0
			ps[j].enqueuedNanos = now
			j++
		}
		run := ps[i:j]
		entry.arrivals.Add(uint64(len(run)))
		if e.throttled[chainID].Load() {
			e.EntryDrops.Add(uint64(len(run)))
			for _, q := range run {
				drop(q)
			}
		} else if e.chainDown[chainID].Load() {
			e.FaultEntryDrops.Add(uint64(len(run)))
			for _, q := range run {
				drop(q)
			}
		} else {
			n := entry.rx.EnqueueBatch(run)
			accepted += n
			if n < len(run) {
				d := uint64(len(run) - n)
				e.RingDrops.Add(d)
				entry.drops.Add(d)
				for _, q := range run[n:] {
					drop(q)
				}
			}
		}
		i = j
	}
	return accepted
}

// Stats snapshots every stage.
func (e *Engine) Stats() []StageStats {
	out := make([]StageStats, len(e.stages))
	for i, s := range e.stages {
		out[i] = StageStats{
			Name:       s.name,
			Processed:  s.processed.Load(),
			Arrivals:   s.arrivals.Load(),
			Weight:     s.weight.Load(),
			Busy:       time.Duration(s.busyNanos.Load()),
			EstCost:    time.Duration(math.Float64frombits(s.estCost.Load())),
			QueueDrops: s.drops.Load(),
			Wasted:     s.wasted.Load(),
			Health:     Health(s.health.Load()),
			Restarts:   s.restarts.Load(),
			FaultDrops: s.faultDrops.Load(),
			NFDrops:    s.nfDrops.Load(),
		}
	}
	return out
}

// LatencyStats reports the mean and maximum end-to-end sojourn time of
// delivered packets, accurate to within one batch quantum (the coarse-clock
// bound).
func (e *Engine) LatencyStats() (mean, max time.Duration) {
	n := e.Delivered.Load()
	if n == 0 {
		return 0, 0
	}
	return time.Duration(e.latSumNanos.Load() / int64(n)), time.Duration(e.latMaxNanos.Load())
}

// Throttled reports whether a chain is currently shed at entry.
func (e *Engine) Throttled(chainID int) bool { return e.throttled[chainID].Load() }

// Run operates the pipeline until ctx is canceled, then winds down in
// order: a bounded drain (grant and move until the rings empty or
// Config.DrainTimeout passes), a stop gate rejecting later Injects, worker
// shutdown with a bounded wait (a wedged handler cannot block Run), and a
// final sweep that charges every packet still in flight to ShutdownDrops so
// the accounting reconciliation holds after Run returns. It blocks; run it
// on its own goroutine. Run may be called once.
func (e *Engine) Run(ctx context.Context) {
	if !e.running.CompareAndSwap(false, true) {
		panic("dataplane: Run called twice")
	}
	e.startWall = time.Now()
	e.over = make([]bool, len(e.stages))
	e.under = make([]bool, len(e.stages))
	e.depths = make([]int, len(e.stages))
	e.wLoads = make([]float64, len(e.stages))
	e.wTotals = make([]float64, e.cfg.Cores)
	e.moverStop = make(chan struct{})
	// Partition the stages across the TX shards before any worker can
	// publish into a tx ring (workers wake their stage's owning mover).
	e.assignMovers()
	// Remote links start dialing now, not at AddRemoteStage: their state
	// callbacks touch supervision structures that must not race setup.
	e.startRemotes()
	for _, s := range e.stages {
		e.spawnWorker(s)
	}
	// The three decoupled planes, mirroring the paper's manager split:
	// scheduler loops (one per core) grant stages, mover shards (the
	// manager's TX threads) shuttle packets between rings, and the control
	// plane — this goroutine — runs backpressure, supervision and the
	// weight controller at their configured cadences, off the hot path.
	var cores sync.WaitGroup
	for core := 0; core < e.cfg.Cores; core++ {
		cores.Add(1)
		go func(core int) {
			defer cores.Done()
			timer := newGrantTimer()
			defer timer.Stop()
			for ctx.Err() == nil {
				if !e.scheduleCore(core, timer) {
					// Idle: plain sleep, not time.After — the select-timer
					// variant allocates, and this is inside the hot loop.
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(core)
	}
	for _, m := range e.movers {
		// Every shard runs, even with an empty stage partition: inject
		// lanes may bind to it mid-run, and an idle shard parks on its
		// wake channel for near-nothing.
		e.moverWg.Add(1)
		go e.runMover(m)
	}
	e.controlLoop(ctx)
	// Shutdown. Join the scheduler loops first; movers keep draining tx
	// rings until then so the graceful drain starts from near-empty rings.
	// Only after the movers exit does the serial drain own every ring.
	cores.Wait()
	close(e.moverStop)
	e.moverWg.Wait()
	timer := newGrantTimer()
	defer timer.Stop()
	e.shutdown(timer)
}

// worker runs a stage's handler under grants until its grant channel closes
// or the incarnation is detached, moving packets rx→tx in bulk: one ring
// reservation per dequeued batch and one per published batch.
func (e *Engine) worker(s *stage, w *workerCtx) {
	defer e.liveWorkers.Add(-1)
	for budget := range w.grant {
		res, exit := e.runGrant(s, w, budget)
		if s.epoch.Load() != w.epoch {
			// Detached while running: the scheduler stopped listening and
			// a replacement may exist. Exit without signalling.
			return
		}
		w.done <- res // cap 1: never blocks, even if the scheduler left
		if exit {
			return // handler panicked; the supervisor decides what's next
		}
	}
}

// runGrant executes one grant: up to budget packets in chunks of the
// incarnation's scratch batch. Each chunk publishes its size in w.inflight
// before running the handler; whoever Swap()s it to zero — this worker on
// the happy path, the scheduler on detach, the final sweep at shutdown —
// owns the accounting for those packets (see runChunk).
func (e *Engine) runGrant(s *stage, w *workerCtx, budget int) (res grantResult, exit bool) {
	start := time.Now()
	n := 0
	for n < budget {
		want := budget - n
		if want > len(w.batch) {
			want = len(w.batch)
		}
		k := s.rx.DequeueBatch(w.batch[:want])
		if k == 0 {
			break
		}
		w.inflight.Store(int64(k))
		var live, done int
		var panicked bool
		var pmsg string
		if s.bfn != nil {
			live, done, panicked, pmsg = e.runChunkBatch(s, w, k)
		} else {
			live, done, panicked, pmsg = e.runChunk(s, w, k)
		}
		n += done
		if panicked {
			s.busyNanos.Add(time.Since(start).Nanoseconds())
			if n > 0 {
				s.processed.Add(uint64(n))
			}
			return grantResult{panicked: true, panicVal: pmsg}, true
		}
		if live > 0 {
			if claimed := w.inflight.Swap(0); claimed == 0 {
				// The scheduler detached us mid-chunk and already charged
				// these packets as fault drops; recycle without counting.
				for i := 0; i < live; i++ {
					e.freePacket(w.batch[i])
				}
				s.busyNanos.Add(time.Since(start).Nanoseconds())
				if n > 0 {
					s.processed.Add(uint64(n))
				}
				return res, true
			}
			if e.stopped.Load() {
				// Run already returned: the mover is gone, so delivering
				// into tx would strand the packets uncounted.
				e.ShutdownDrops.Add(uint64(live))
				for i := 0; i < live; i++ {
					e.freePacket(w.batch[i])
				}
			} else {
				// The scheduler only grants while tx has a batch of free
				// space and the owning mover only removes, so this completes
				// on the first pass; the loop covers the detached-incarnation
				// race where two workers briefly share the ring.
				rem := w.batch[:live]
				for {
					rem = rem[s.tx.EnqueueBatch(rem):]
					if len(rem) == 0 {
						break
					}
					if e.stopped.Load() {
						e.ShutdownDrops.Add(uint64(len(rem)))
						for _, p := range rem {
							e.freePacket(p)
						}
						break
					}
					runtime.Gosched()
				}
				if m := s.mov; m != nil {
					m.maybeWake()
				}
			}
		} else {
			w.inflight.Store(0)
		}
	}
	if n > 0 {
		s.processed.Add(uint64(n))
	}
	s.busyNanos.Add(time.Since(start).Nanoseconds())
	return res, false
}

// runChunk runs the handler over batch[:k], compacting survivors to the
// front. It recovers handler panics: on panic the unaccounted remainder of
// the chunk is claimed back from w.inflight (unless the scheduler already
// detached us and charged it) and recycled, so no packet escapes the drop
// ledger. done is how many packets completed the handler.
func (e *Engine) runChunk(s *stage, w *workerCtx, k int) (live, done int, panicked bool, pmsg string) {
	i := 0
	debug := e.cfg.DebugPool
	defer func() {
		if r := recover(); r == nil {
			return
		} else {
			panicked = true
			pmsg = panicString(r)
		}
		// Unaccounted packets: the kept-but-unpublished survivors plus the
		// panicking packet and everything after it. A descriptor the debug
		// check just flagged as recycled is already in the freelist — skip
		// it rather than tripping the double-put check inside this recover.
		free := func(p *Packet) {
			if debug && atomic.LoadInt32(&p.poolState) != 0 {
				return
			}
			e.freePacket(p)
		}
		if claimed := w.inflight.Swap(0); claimed > 0 {
			e.FaultDrops.Add(uint64(claimed))
			s.faultDrops.Add(uint64(claimed))
		}
		for j := 0; j < live; j++ {
			free(w.batch[j])
		}
		for j := i; j < k; j++ {
			free(w.batch[j])
		}
		live, done = 0, i
	}()
	for ; i < k; i++ {
		pkt := w.batch[i]
		if debug && atomic.LoadInt32(&pkt.poolState) != 0 {
			panic("dataplane: stage " + s.name + " processing a recycled packet (use-after-PutPacket)")
		}
		// Flight recorder: unsampled packets (all of them when the recorder
		// is off) pay one predicted-not-taken branch per stamp site.
		sp := pkt.span
		if sp != nil {
			sp.stampEnter(s.id, time.Now().UnixNano())
		}
		s.fn(pkt)
		if sp != nil {
			sp.stampExit(time.Now().UnixNano())
		}
		if pkt.Drop {
			pkt.Drop = false
			// Claim the single unit back; if the scheduler detached us it
			// already charged this packet as a fault drop instead. Remote
			// stages consume every packet this way, but their units belong
			// to the transport ledger (RemoteDelivered/RemoteDrops), not
			// NFDrops — the handler already charged any refusal.
			if decInflight(&w.inflight) && w.kind == workerLocal {
				s.nfDrops.Add(1)
				e.NFDrops.Add(1)
			}
			e.freePacket(pkt)
			continue
		}
		pkt.Hop++
		w.batch[live] = pkt
		live++
	}
	return live, k, false, ""
}

// runChunkBatch is runChunk's whole-batch twin for stages registered with
// AddBatchStage: one handler call covers batch[:k], with the flight
// recorder's enter/exit stamps bracketing the batch (one clock read per
// side, shared by every sampled packet in it). A panic inside the batch
// handler leaves no packet with a defined outcome, so the recovery charges
// the entire unclaimed chunk to fault drops.
func (e *Engine) runChunkBatch(s *stage, w *workerCtx, k int) (live, done int, panicked bool, pmsg string) {
	debug := e.cfg.DebugPool
	defer func() {
		if r := recover(); r == nil {
			return
		} else {
			panicked = true
			pmsg = panicString(r)
		}
		free := func(p *Packet) {
			if debug && atomic.LoadInt32(&p.poolState) != 0 {
				return
			}
			e.freePacket(p)
		}
		if claimed := w.inflight.Swap(0); claimed > 0 {
			e.FaultDrops.Add(uint64(claimed))
			s.faultDrops.Add(uint64(claimed))
		}
		for j := 0; j < k; j++ {
			free(w.batch[j])
		}
		live, done = 0, 0
	}()
	batch := w.batch[:k]
	if debug {
		for _, pkt := range batch {
			if atomic.LoadInt32(&pkt.poolState) != 0 {
				panic("dataplane: stage " + s.name + " processing a recycled packet (use-after-PutPacket)")
			}
		}
	}
	// Stamp sampled packets lazily: the clock is read only when the batch
	// actually carries a span, so the unsampled path stays clock-free.
	var now int64
	for _, pkt := range batch {
		if sp := pkt.span; sp != nil {
			if now == 0 {
				now = time.Now().UnixNano()
			}
			sp.stampEnter(s.id, now)
		}
	}
	s.bfn(batch)
	now = 0
	for _, pkt := range batch {
		if sp := pkt.span; sp != nil {
			if now == 0 {
				now = time.Now().UnixNano()
			}
			sp.stampExit(now)
		}
	}
	for _, pkt := range batch {
		if pkt.Drop {
			pkt.Drop = false
			if decInflight(&w.inflight) && w.kind == workerLocal {
				s.nfDrops.Add(1)
				e.NFDrops.Add(1)
			}
			e.freePacket(pkt)
			continue
		}
		pkt.Hop++
		w.batch[live] = pkt
		live++
	}
	return live, k, false, ""
}

// scheduleCore grants the core's runnable stage with the smallest WFQ pass
// one batch and waits for completion, up to the grant deadline: an overdue
// stage is detached and marked Failed rather than wedging the core, so one
// stuck handler can never stall its neighbours. Reports whether anything
// ran. The engine clock is refreshed once per grant.
func (e *Engine) scheduleCore(core int, timer *time.Timer) bool {
	var pick *stage
	for _, s := range e.stages {
		if s.core != core || !s.schedulable() || s.yield.Load() || s.rx.Len() == 0 {
			continue
		}
		if s.tx.Len() >= e.cfg.RingSize-1-e.cfg.BatchSize {
			continue // local backpressure: tx nearly full
		}
		if s.rem != nil && !s.rem.grantable(e.cfg.BatchSize) {
			// Remote credit exhausted (window full, link down, or send
			// queue at capacity): leave the packets in rx so the watermark
			// machine sees the pressure and throttles the chain at entry.
			continue
		}
		if pick == nil || s.pass < pick.pass {
			pick = s
		}
	}
	if pick == nil {
		return false
	}
	e.coarseNanos.Store(time.Now().UnixNano())
	e.grantStage(pick, timer, core)
	return true
}

// grantStage issues one batch grant to the stage's live worker and settles
// the outcome: WFQ pass accounting and probation on success, failStage on
// panic, detach on deadline. Shared by scheduleCore and the shutdown drain.
func (e *Engine) grantStage(pick *stage, timer *time.Timer, core int) {
	w := pick.w.Load()
	before := time.Duration(pick.busyNanos.Load())
	w.grant <- e.cfg.BatchSize
	res, ok := waitGrant(w, timer, e.cfg.GrantTimeout)
	if !ok {
		e.detachStage(pick, w)
		return
	}
	if res.panicked {
		e.failStage(pick, "panic", res.panicVal)
		return
	}
	ran := time.Duration(pick.busyNanos.Load()) - before
	wt := pick.weight.Load()
	if wt < 2 {
		wt = 2
	}
	pick.pass += float64(ran) * 1024 / float64(wt)
	// Keep sleeping stages from banking unbounded credit.
	min := pick.pass
	for _, s := range e.stages {
		if s.core == core && s.pass < min-float64(time.Second) {
			s.pass = min - float64(time.Second)
		}
	}
	// Probation: a restarted stage earns Healthy back by completing clean
	// grants under real traffic. Remote stages are exempt — their health
	// tracks the link state machine (remoteLinkState), and a clean grant
	// only proves the send queue had room, not that the peer is reachable.
	if w.kind == workerRemote {
		return
	}
	switch Health(pick.health.Load()) {
	case Restarting:
		w.okGrants = 1
		e.setHealth(pick, Degraded)
	case Degraded:
		w.okGrants++
		if w.okGrants >= probationGrants {
			pick.consecFails.Store(0)
			e.setHealth(pick, Healthy)
		}
	}
}

// moveAll serially drains every stage's tx ring — the shutdown drain's
// single-threaded mover, run only after the TX shards have exited.
func (e *Engine) moveAll() { e.moveStages(e.stages, e.drainBuf, e.drainRC) }

// moveStages drains each given stage's tx ring toward the next hop, the
// sink or the output channel (the paper's TX-thread role), in batches: runs
// of packets bound for the same destination ring are forwarded with one
// reservation, and all engine counters are flushed once per drained batch
// (add-N, not N adds). Every piece of scratch state — the drain buffer, the
// latency run-length encoder, the counter accumulators — is local to the
// call, so concurrent movers over disjoint partitions share nothing but
// the rings and the final atomic adds. Packets dropped in flight are
// recycled through rc — buffered locally and returned to the shared
// freelist with one batch reservation per sweep instead of one CAS each.
// Reports how many packets it moved.
func (e *Engine) moveStages(stages []*stage, buf []*Packet, rc *recycler) int {
	// The clock is read lazily, once per sweep that actually drains
	// packets: idle movers sweep dry partitions thousands of times per
	// millisecond, and a vDSO clock call per dry sweep is the single
	// largest avoidable cost on the serial path.
	var now int64
	moved := 0
	var delivered, outDrops, ringDrops uint64
	var latSum, latMax int64
	// Coarse-clock latencies arrive in runs of identical values; batch them
	// into the histogram with run-length encoding.
	var histVal, histN uint64
	var sinkFrom int
	for _, s := range stages {
		var wastedHere uint64
		for {
			k := s.tx.DequeueBatch(buf)
			if k == 0 {
				break
			}
			if now == 0 {
				now = time.Now().UnixNano()
				e.coarseNanos.Store(now)
			}
			moved += k
			if e.anyFaulty.Load() {
				// Fail-open chains skip Failed hops; resolving every
				// packet's effective hop up front keeps the run-forwarding
				// loop below oblivious to faults.
				e.bypassFailedHops(buf[:k])
			}
			if e.rec != nil {
				// Flight recorder: stamp sampled packets' move times with a
				// fresh clock read (the lazy `now` above can lag a worker's
				// exit stamp and break hop monotonicity) and complete spans
				// whose packet is about to be delivered below.
				e.stampSpans(buf[:k])
			}
			sinkFrom = 0
			for i := 0; i < k; {
				pkt := buf[i]
				chain := e.chains[pkt.ChainID]
				if pkt.Hop >= len(chain) {
					// Delivery.
					if e.tap != nil {
						e.tap(pkt)
					}
					lat := now - pkt.enqueuedNanos
					if lat < 0 {
						lat = 0
					}
					if e.sink != nil {
						// Batch path: leave the packet in moveBuf; the
						// contiguous delivered run is handed over below.
						delivered++
						latSum += lat
						if lat > latMax {
							latMax = lat
						}
						if uint64(lat) == histVal {
							histN++
						} else {
							if histN > 0 && e.latHist != nil {
								e.latHist.ObserveN(histVal, histN)
							}
							histVal, histN = uint64(lat), 1
						}
						i++
						continue
					}
					select {
					case e.out <- pkt:
						delivered++
						latSum += lat
						if lat > latMax {
							latMax = lat
						}
						if uint64(lat) == histVal {
							histN++
						} else {
							if histN > 0 && e.latHist != nil {
								e.latHist.ObserveN(histVal, histN)
							}
							histVal, histN = uint64(lat), 1
						}
					default:
						outDrops++ // consumer not draining
						wastedHere++
						rc.put(pkt)
					}
					i++
					continue
				}
				// Forward: extend the run while packets share the next-hop
				// ring, then publish the run with one reservation.
				if e.sink != nil && i > sinkFrom {
					e.flushSink(buf[sinkFrom:i])
				}
				dstID := chain[pkt.Hop]
				dst := e.stages[dstID]
				j := i + 1
				for j < k {
					q := buf[j]
					qc := e.chains[q.ChainID]
					if q.Hop >= len(qc) || qc[q.Hop] != dstID {
						break
					}
					j++
				}
				run := buf[i:j]
				dst.arrivals.Add(uint64(len(run)))
				n := dst.rx.EnqueueBatch(run)
				if n < len(run) {
					// Work already invested in these packets is wasted; the
					// drop itself happens at dst's full receive ring.
					d := uint64(len(run) - n)
					ringDrops += d
					dst.drops.Add(d)
					wastedHere += d
					for _, q := range run[n:] {
						rc.put(q)
					}
				}
				i = j
				sinkFrom = j
			}
			if e.sink != nil && k > sinkFrom {
				e.flushSink(buf[sinkFrom:k])
			}
		}
		if wastedHere > 0 {
			s.wasted.Add(wastedHere)
		}
	}
	if histN > 0 && e.latHist != nil {
		e.latHist.ObserveN(histVal, histN)
	}
	if delivered > 0 {
		e.Delivered.Add(delivered)
		e.latSumNanos.Add(latSum)
		for {
			cur := e.latMaxNanos.Load()
			if latMax <= cur || e.latMaxNanos.CompareAndSwap(cur, latMax) {
				break
			}
		}
	}
	if outDrops > 0 {
		e.OutputDrops.Add(outDrops)
	}
	if ringDrops > 0 {
		e.RingDrops.Add(ringDrops)
		e.MidRingDrops.Add(ringDrops)
	}
	rc.flush()
	return moved
}

// flushSink hands a contiguous all-delivered run of a mover's drain buffer
// to the sink.
func (e *Engine) flushSink(run []*Packet) {
	if len(run) > 0 {
		e.sink(run)
	}
}

// updateBackpressure applies the watermark state machine: a chain sheds at
// entry while any of its stages' receive queues is above the high watermark,
// and clears when all are below the low one. Upstream yield flags follow the
// same rule as the simulator: set only when every chain through the stage is
// throttled and the stage sits upstream of a bottleneck. Every throttle edge
// is journaled and logged with its cause — the queue depth observed against
// the watermarks at decision time.
func (e *Engine) updateBackpressure() {
	over, under, depths := e.over, e.under, e.depths
	for i, s := range e.stages {
		l := s.rx.Len()
		depths[i] = l
		over[i] = l >= e.highWater
		under[i] = l < e.lowWater
		if s.rem != nil && s.rem.ecnActive.Load() {
			// The peer engine is congested (sustained ECN echoes): treat the
			// remote stage as over watermark regardless of local depth, so
			// the chain throttles at its origin before the pipe fills — the
			// paper's §3.4 cross-host backpressure. The signal also holds
			// the throttle (under stays false) until the echoes quiesce.
			over[i] = true
			under[i] = false
		}
	}
	for ci, chain := range e.chains {
		if e.throttled[ci].Load() {
			all := true
			// deepest tracks the fullest queue on the chain so the bp_off
			// record names where the pressure drained from.
			deepest := chain[0]
			for _, sid := range chain {
				if depths[sid] > depths[deepest] {
					deepest = sid
				}
				if !under[sid] {
					all = false
					break
				}
			}
			if all {
				e.throttled[ci].Store(false)
				e.record(Decision{Kind: DecisionBPOff, Chain: ci,
					Stage: e.stages[deepest].name, QueueDepth: depths[deepest],
					HighWater: e.highWater, LowWater: e.lowWater})
				if e.events != nil {
					e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelInfo,
						"bp_off", telemetry.F("chain", ci),
						telemetry.F("stage", e.stages[deepest].name),
						telemetry.F("qdepth", depths[deepest]),
						telemetry.F("low_water", e.lowWater))
				}
			}
		} else {
			for _, sid := range chain {
				if over[sid] {
					st := e.stages[sid]
					// A remote stage's throttle edge names its cause: the
					// link condition (credit exhaustion, peer ECN, outage)
					// behind the pressure, or "" for a plain deep queue.
					note := ""
					if st.rem != nil {
						note = st.rem.bpCause()
					}
					e.throttled[ci].Store(true)
					e.ThrottleEvents.Add(1)
					e.record(Decision{Kind: DecisionBPOn, Chain: ci,
						Stage: st.name, QueueDepth: depths[sid],
						HighWater: e.highWater, LowWater: e.lowWater,
						Note: note})
					if e.events != nil {
						fields := []telemetry.Field{
							telemetry.F("chain", ci),
							telemetry.F("stage", st.name),
							telemetry.F("qdepth", depths[sid]),
							telemetry.F("high_water", e.highWater),
						}
						if note != "" {
							fields = append(fields, telemetry.F("cause", note))
						}
						e.events.Emit(time.Since(e.startWall).Seconds(),
							telemetry.LevelInfo, "bp_on", fields...)
					}
					break
				}
			}
		}
	}
	for sid, s := range e.stages {
		yield := false
		for ci, chain := range e.chains {
			pos := -1
			for i, id := range chain {
				if id == sid {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			if !e.throttled[ci].Load() {
				yield = false
				break
			}
			upstreamOfBottleneck := false
			for i := pos + 1; i < len(chain); i++ {
				if over[chain[i]] {
					upstreamOfBottleneck = true
					break
				}
			}
			yield = upstreamOfBottleneck
			if !yield {
				break
			}
		}
		s.yield.Store(yield)
	}
}

// updateWeights is the rate-cost proportional controller: weight_i ∝
// arrivals_i × estimated cost_i, with an EWMA cost estimate from measured
// handler time.
func (e *Engine) updateWeights() {
	loads, totals := e.wLoads, e.wTotals
	for i := range totals {
		totals[i] = 0
	}
	for i, s := range e.stages {
		arr := s.arrivals.Load()
		busy := s.busyNanos.Load()
		proc := s.processed.Load()
		dArr := arr - s.lastArr
		dBusy := busy - s.lastBusy
		dProc := proc - s.lastProc
		s.lastArr, s.lastBusy, s.lastProc = arr, busy, proc
		cost := math.Float64frombits(s.estCost.Load())
		if dProc > 0 {
			sample := float64(dBusy) / float64(dProc)
			cost = 0.3*sample + 0.7*cost
			s.estCost.Store(math.Float64bits(cost))
		}
		loads[i] = float64(dArr) * cost
		totals[s.core] += loads[i]
	}
	const scale = 10 * 1024
	for i, s := range e.stages {
		if totals[s.core] <= 0 {
			continue
		}
		w := int64(loads[i] / totals[s.core] * scale)
		if w < scale/100 {
			w = scale / 100
		}
		if old := s.weight.Swap(w); old != w {
			e.record(Decision{Kind: DecisionWeight, Chain: -1, Stage: s.name,
				Load: loads[i], CostNanos: math.Float64frombits(s.estCost.Load()),
				OldWeight: old, NewWeight: w})
			if e.events != nil {
				e.events.Emit(time.Since(e.startWall).Seconds(), telemetry.LevelDebug,
					"weight", telemetry.F("stage", s.name), telemetry.F("weight", w))
			}
		}
	}
}

// RegisterMetrics publishes the engine's counters, gauges and the end-to-end
// latency histogram into a telemetry registry. All backing values are
// atomic, so the registry may be gathered (scraped) live while the engine
// runs. Must be called before Run.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	if e.running.Load() {
		panic("dataplane: RegisterMetrics after Run")
	}
	for _, s := range e.stages {
		lbl := []telemetry.Label{
			telemetry.L("stage", s.name),
			telemetry.L("id", strconv.Itoa(s.id)),
			telemetry.L("core", strconv.Itoa(s.core)),
		}
		reg.CounterFunc("dataplane_stage_processed_total",
			"Packets processed by the stage.", s.processed.Load, lbl...)
		reg.CounterFunc("dataplane_stage_arrivals_total",
			"Packets offered to the stage (attempts, including drops).", s.arrivals.Load, lbl...)
		reg.CounterFunc("dataplane_stage_queue_drops_total",
			"Packets dropped at the stage's full receive ring.", s.drops.Load, lbl...)
		reg.CounterFunc("dataplane_stage_wasted_total",
			"Packets processed by the stage that died downstream (wasted work).", s.wasted.Load, lbl...)
		reg.CounterFunc("dataplane_stage_busy_nanoseconds_total",
			"Cumulative handler wall time.", func() uint64 { return uint64(s.busyNanos.Load()) }, lbl...)
		reg.GaugeFunc("dataplane_stage_weight",
			"Current scheduler weight (1024 = one default share).",
			func() float64 { return float64(s.weight.Load()) }, lbl...)
		reg.GaugeFunc("dataplane_stage_queue_depth",
			"Instantaneous receive-ring occupancy.",
			func() float64 { return float64(s.rx.Len()) }, lbl...)
		reg.GaugeFunc("dataplane_stage_health",
			"Supervision state: 0 healthy, 1 degraded, 2 failed, 3 restarting.",
			func() float64 { return float64(s.health.Load()) }, lbl...)
		reg.CounterFunc("dataplane_stage_restarts_total",
			"Supervised worker respawns after a crash or stall.", s.restarts.Load, lbl...)
		reg.CounterFunc("dataplane_stage_fault_drops_total",
			"Packets lost in this stage's crashes, stalls and failed-queue drains.",
			s.faultDrops.Load, lbl...)
		reg.CounterFunc("dataplane_stage_nf_drops_total",
			"Packets the handler discarded via Packet.Drop.", s.nfDrops.Load, lbl...)
	}
	for _, m := range e.movers {
		m := m
		lbl := []telemetry.Label{telemetry.L("mover", strconv.Itoa(m.id))}
		reg.CounterFunc("dataplane_mover_sweeps_total",
			"Drain passes the TX shard made over its stage partition.", m.sweeps.Load, lbl...)
		reg.CounterFunc("dataplane_mover_moved_total",
			"Packets the TX shard drained from its tx rings.", m.moved.Load, lbl...)
		reg.CounterFunc("dataplane_mover_parks_total",
			"Times the idle TX shard parked awaiting a wake signal.", m.parks.Load, lbl...)
		reg.CounterFunc("dataplane_mover_wakes_total",
			"Enqueue-side wake signals delivered to the parked TX shard.", m.wakes.Load, lbl...)
		reg.CounterFunc("dataplane_mover_lane_moved_total",
			"Packets the TX shard drained from its bound inject lanes.", m.laneMoved.Load, lbl...)
		reg.GaugeFunc("dataplane_mover_lanes",
			"Inject lanes currently bound to the TX shard.",
			func() float64 { return float64(len(*m.lanes.Load())) }, lbl...)
		reg.GaugeFunc("dataplane_mover_batch",
			"Current adaptive sweep batch of the TX shard.",
			func() float64 { return float64(m.curBatch.Load()) }, lbl...)
		reg.GaugeFunc("dataplane_mover_park_ratio",
			"Fraction of the TX shard's sweeps that ended in a park.",
			func() float64 {
				if sw := m.sweeps.Load(); sw > 0 {
					return float64(m.parks.Load()) / float64(sw)
				}
				return 0
			}, lbl...)
		reg.GaugeFunc("dataplane_mover_drain_per_sweep",
			"Mean packets drained per TX-shard sweep.",
			func() float64 {
				if sw := m.sweeps.Load(); sw > 0 {
					return float64(m.moved.Load()) / float64(sw)
				}
				return 0
			}, lbl...)
	}
	for ci := range e.chains {
		lbl := []telemetry.Label{telemetry.L("chain", strconv.Itoa(ci))}
		th := &e.throttled[ci]
		reg.GaugeFunc("dataplane_chain_throttled",
			"1 while the chain is shed at entry by backpressure.",
			func() float64 {
				if th.Load() {
					return 1
				}
				return 0
			}, lbl...)
	}
	reg.CounterFunc("dataplane_injected_total",
		"Packets accepted into a chain entry ring.", e.Injected.Load)
	reg.CounterFunc("dataplane_delivered_total",
		"Packets that completed their chains.", e.Delivered.Load)
	reg.CounterFunc("dataplane_entry_drops_total",
		"Packets shed at chain entry by backpressure.", e.EntryDrops.Load)
	reg.CounterFunc("dataplane_ring_drops_total",
		"Packets dropped at full stage receive rings (entry or mid-chain).", e.RingDrops.Load)
	reg.CounterFunc("dataplane_mid_ring_drops_total",
		"Accepted packets dropped at full mid-chain receive rings (subset of ring drops).", e.MidRingDrops.Load)
	reg.CounterFunc("dataplane_output_drops_total",
		"Delivered packets dropped because the output channel was full.", e.OutputDrops.Load)
	reg.CounterFunc("dataplane_throttle_events_total",
		"Chain-throttle activations.", e.ThrottleEvents.Load)
	reg.CounterFunc("dataplane_fault_entry_drops_total",
		"Packets shed at the entry of a fail-closed chain with a Failed stage.",
		e.FaultEntryDrops.Load)
	reg.CounterFunc("dataplane_nf_drops_total",
		"Packets discarded by handlers via Packet.Drop.", e.NFDrops.Load)
	reg.CounterFunc("dataplane_fault_drops_total",
		"In-flight packets lost to stage crashes, stalls and failed-queue drains.",
		e.FaultDrops.Load)
	reg.CounterFunc("dataplane_shutdown_drops_total",
		"Accepted packets swept out of rings when Run wound down.",
		e.ShutdownDrops.Load)
	reg.CounterFunc("dataplane_late_drops_total",
		"Inject attempts rejected because Run had exited.", e.LateDrops.Load)
	reg.GaugeFunc("dataplane_watermark_packets",
		"Backpressure high watermark in packets.",
		func() float64 { return float64(e.highWater) }, telemetry.L("level", "high"))
	reg.GaugeFunc("dataplane_watermark_packets",
		"Backpressure low watermark in packets.",
		func() float64 { return float64(e.lowWater) }, telemetry.L("level", "low"))
	e.latHist = reg.Histogram("dataplane_latency_nanoseconds",
		"End-to-end sojourn time of delivered packets.")
	if r := e.rec; r != nil {
		reg.CounterFunc("dataplane_spans_sampled_total",
			"Flight-recorder spans started at inject.", r.sampled.Load)
		reg.CounterFunc("dataplane_spans_completed_total",
			"Flight-recorder spans that reached the output boundary.", r.completed.Load)
		reg.CounterFunc("dataplane_spans_aborted_total",
			"Flight-recorder spans whose packet was dropped mid-flight.", r.aborted.Load)
		reg.CounterFunc("dataplane_span_starved_total",
			"Sampler hits skipped because every span slab was in flight.", r.starved.Load)
		reg.CounterFunc("dataplane_span_spool_drops_total",
			"Completed spans discarded at a full spool.", r.spoolDrops.Load)
		e.hopService = make([]*telemetry.Histogram, len(e.stages))
		e.hopWait = make([]*telemetry.Histogram, len(e.stages))
		for _, s := range e.stages {
			lbl := []telemetry.Label{
				telemetry.L("stage", s.name),
				telemetry.L("id", strconv.Itoa(s.id)),
			}
			e.hopService[s.id] = reg.Histogram("dataplane_hop_service_nanoseconds",
				"Per-hop handler time of sampled packets.", lbl...)
			e.hopWait[s.id] = reg.Histogram("dataplane_hop_wait_nanoseconds",
				"Per-hop ring wait of sampled packets (previous move to dequeue).", lbl...)
		}
	}
	if j := e.journal; j != nil {
		reg.CounterFunc("dataplane_decisions_total",
			"Control-plane decisions appended to the journal.", j.Total)
		reg.CounterFunc("dataplane_decision_drops_total",
			"Journal records overwritten by ring wrap.", j.Dropped)
	}
	e.registerRemoteMetrics(reg)
}

// SetEventLog attaches a structured event log receiving backpressure
// transitions (info) and weight updates (debug). Must be called before Run.
func (e *Engine) SetEventLog(l *telemetry.EventLog) {
	if e.running.Load() {
		panic("dataplane: SetEventLog after Run")
	}
	e.events = l
}

// Tap registers a callback invoked (on a mover goroutine; concurrently
// from several when Config.Movers > 1) for every delivered packet, e.g.
// to mirror frames into a pcap capture. Must be set before Run.
func (e *Engine) Tap(fn func(*Packet)) {
	if e.running.Load() {
		panic("dataplane: Tap after Run")
	}
	e.tap = fn
}
