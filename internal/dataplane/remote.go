package dataplane

// Remote stages: the cross-host half of a service chain (paper §3.4).
//
// A remote stage looks like any other NF to the scheduler — it has a receive
// ring, a worker, a weight, a health state — but its "handler" serializes
// packets onto a credit-windowed TCP link (internal/remote) instead of
// processing them. The chain continues on the peer engine, whose accept side
// (RemoteIngress) re-materializes descriptors and injects them into its own
// chains.
//
// End-to-end backpressure composes from three mechanisms:
//
//   - Credit window: at most RemoteConfig.Window unacked frames ride the
//     wire. A slow peer stops acking, the window fills, the client's send
//     queue backs up, Space() hits zero, and the scheduler stops granting
//     the remote stage — its rx ring then fills and the ordinary watermark
//     machine throttles the chain at entry (journal bp_on, cause
//     "remote_window").
//   - ECN echo: the peer samples its own queue occupancy per ack
//     (CongestionSignal) and sets the CE flag; the client surfaces each
//     echo, and the control loop's ECNObserver (internal/bp) converts the
//     echo stream into a sustained congestion signal that forces the remote
//     stage "over watermark" so the origin throttles before the pipe even
//     fills (cause "remote_ecn").
//   - Link supervision: a lost connection puts the stage in Degraded while
//     the client re-dials under exponential backoff with seeded jitter
//     (packets keep buffering in the send queue — the outage is absorbed,
//     not dropped); MaxDials consecutive failures open the circuit, the
//     stage goes Failed permanently, and the chain's FailClosed/FailOpen
//     policy takes over exactly as for a crashed local NF.
//
// Accounting: a packet granted to a remote stage leaves the local ledger's
// ordinary classes and enters the transport's. The worker recycles the
// descriptor immediately (its bytes are copied into the frame), and the
// packet is charged to exactly one of RemoteDelivered (peer acked the frame)
// or RemoteDrops (link died with it queued or in flight, the circuit opened,
// or the engine shut down first). The reconciliation invariant becomes
//
//	Injected == Delivered + RingDrops + OutputDrops + NFDrops + FaultDrops
//	          + ShutdownDrops + RemoteDelivered + RemoteDrops
//
// exact at quiescence — and, because the peer dedups retransmitted frames by
// sequence number, A.RemoteDelivered equals the peer's received count even
// across connection kills. The one irreducible caveat is two-generals: a
// packet whose final ack was lost with a permanently dead link is counted
// RemoteDrops here though the peer delivered it. A healed link never
// double-counts.
//
// A remote stage must be the last hop of its local chain: the handler
// consumes every packet, so downstream local hops would never see traffic.

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"nfvnice/internal/bp"
	"nfvnice/internal/remote"
	"nfvnice/internal/telemetry"
)

// RemoteConfig parameterizes a remote stage's link. Build one with
// DefaultRemoteConfig and override what the deployment needs.
type RemoteConfig struct {
	// Addr is the peer engine's remote.Listen address. Required.
	Addr string
	// Window is the credit window: the maximum unacknowledged DATA frames in
	// flight. Must be >= 1 — an explicit window is the backpressure contract,
	// so there is no silent default here.
	Window int
	// FrameBatch caps packets per DATA frame (0 takes the transport default).
	FrameBatch int
	// SendBuf is the send-queue capacity ahead of framing (0 takes
	// Window*FrameBatch). The queue is what absorbs reconnect outages.
	SendBuf int
	// BackoffMin/BackoffMax bound the reconnect backoff (0 takes the
	// transport defaults, 5ms/1s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxDials is the consecutive failed dials that open the circuit and
	// fail the stage permanently (0 takes the default 16; negative retries
	// forever).
	MaxDials int
	// DialTimeout bounds each dial attempt (0 takes the default 2s).
	DialTimeout time.Duration
	// Seed drives the reconnect jitter; same seed, same retry schedule.
	Seed int64
	// Dial overrides the dialer — the hook for wire-level fault injection
	// (faults.WireInjector.Dial).
	Dial func(addr string) (net.Conn, error)
}

// DefaultRemoteConfig returns a working link config for addr: window 32,
// transport defaults elsewhere.
func DefaultRemoteConfig(addr string) RemoteConfig {
	return RemoteConfig{Addr: addr, Window: 32}
}

// Validate rejects unusable link configurations: a missing peer address, a
// zero or negative credit window, negative buffers, inverted backoff bounds.
func (c RemoteConfig) Validate() error {
	if c.Addr == "" {
		return errors.New("dataplane: remote stage needs a peer Addr")
	}
	if c.Window <= 0 {
		return fmt.Errorf("dataplane: remote Window %d: a credit window must be >= 1", c.Window)
	}
	if c.FrameBatch < 0 {
		return fmt.Errorf("dataplane: remote FrameBatch %d negative", c.FrameBatch)
	}
	if c.SendBuf < 0 {
		return fmt.Errorf("dataplane: remote SendBuf %d negative", c.SendBuf)
	}
	if c.BackoffMin < 0 || c.BackoffMax < 0 {
		return errors.New("dataplane: remote backoff negative")
	}
	if c.BackoffMin > 0 && c.BackoffMax > 0 && c.BackoffMin > c.BackoffMax {
		return fmt.Errorf("dataplane: remote BackoffMin %v > BackoffMax %v", c.BackoffMin, c.BackoffMax)
	}
	return nil
}

// clientConfig lowers the stage-level knobs onto the transport's config.
func (c RemoteConfig) clientConfig() remote.Config {
	return remote.Config{
		Addr:        c.Addr,
		Window:      c.Window,
		FrameBatch:  c.FrameBatch,
		SendBuf:     c.SendBuf,
		BackoffMin:  c.BackoffMin,
		BackoffMax:  c.BackoffMax,
		MaxDials:    c.MaxDials,
		DialTimeout: c.DialTimeout,
		Seed:        c.Seed,
		Dial:        c.Dial,
	}
}

// remoteLink binds a stage to its transport client and carries the ECN
// machinery: ecnEchoes is bumped by the client's read loop per CE-marked ack
// and swapped out by the control loop each backpressure tick; ecnObs (owned
// by the control goroutine) turns the echo stream into a sustained signal
// published through ecnActive for the backpressure pass.
type remoteLink struct {
	stage  *stage
	client *remote.Client
	addr   string
	// batch is the engine's grant quantum: the scheduler stops granting the
	// stage when the link's Space falls below it, so that is the credit
	// threshold bpCause judges "window exhausted" against.
	batch int

	ecnEchoes atomic.Uint64
	ecnActive atomic.Bool
	ecnObs    bp.ECNObserver // control-goroutine only
}

// grantable reports whether the link can absorb a full grant right now; the
// scheduler skips the stage otherwise, letting its rx ring carry the
// pressure to the watermark machine.
func (l *remoteLink) grantable(batch int) bool {
	return l.client.Space() >= batch
}

// bpCause names the remote condition behind a backpressure edge on this
// stage, for the decision journal ("" when the queue grew for ordinary
// local reasons).
func (l *remoteLink) bpCause() string {
	if l.ecnActive.Load() {
		return "remote_ecn"
	}
	switch l.client.State() {
	case remote.StateConnected:
		if l.client.Space() < l.batch {
			return "remote_window"
		}
		return ""
	case remote.StateCircuitOpen, remote.StateClosed:
		return "remote_down"
	case remote.StateConnecting:
		return "remote_connecting"
	default:
		return "remote_reconnecting"
	}
}

// AddRemoteStage registers a remote stage on core 0. See AddRemoteStageOn.
func (e *Engine) AddRemoteStage(name string, weight int64, rcfg RemoteConfig) int {
	return e.AddRemoteStageOn(name, weight, 0, rcfg)
}

// AddRemoteStageOn registers a stage whose handler ships packets to a peer
// engine over a credit-windowed link instead of processing them locally.
// Must be the final hop of any chain it appears on, and must be called
// before Run (the link starts dialing when Run starts). Panics on a config
// Validate rejects, like New.
func (e *Engine) AddRemoteStageOn(name string, weight int64, core int, rcfg RemoteConfig) int {
	if err := rcfg.Validate(); err != nil {
		panic(err.Error())
	}
	if e.running.Load() {
		panic("dataplane: AddRemoteStage after Run")
	}
	id := e.AddStageOn(name, weight, core, nil)
	s := e.stages[id]
	batch := e.cfg.BatchSize
	if batch == 0 {
		batch = DefaultConfig().BatchSize
	}
	l := &remoteLink{stage: s, addr: rcfg.Addr, batch: batch}
	ccfg := rcfg.clientConfig()
	ccfg.OnState = func(st remote.State, attempt int) { e.remoteLinkState(l, st, attempt) }
	ccfg.OnDelivered = func(n int) { e.RemoteDelivered.Add(uint64(n)) }
	ccfg.OnDropped = func(n int) { e.RemoteDrops.Add(uint64(n)) }
	ccfg.OnECN = func() { l.ecnEchoes.Add(1) }
	client, err := remote.New(ccfg)
	if err != nil {
		panic("dataplane: " + err.Error())
	}
	l.client = client
	s.fn = func(p *Packet) {
		// Copy the descriptor's wire-visible fields into the frame and
		// consume it: from here the transport ledger owns the packet. The
		// scheduler only grants while Space() covers a full batch, so a
		// refusal is a race with the link dying mid-grant — charged straight
		// to RemoteDrops.
		var one [1]remote.Pkt
		one[0] = remote.Pkt{Flow: int64(p.FlowID), Size: int32(p.Size)}
		if client.Offer(one[:]) == 0 {
			e.RemoteDrops.Add(1)
		}
		p.Drop = true // recycle locally without an NFDrops charge (see runChunk)
	}
	s.rem = l
	e.remotes = append(e.remotes, l)
	return id
}

// updateRemoteECN runs on the control goroutine at the backpressure cadence:
// it folds each link's echo count since the last tick into its observer and
// publishes signal edges for updateBackpressure (which runs right after).
func (e *Engine) updateRemoteECN() {
	for _, l := range e.remotes {
		echoes := l.ecnEchoes.Swap(0)
		if !l.ecnObs.Observe(echoes) {
			continue
		}
		active := l.ecnObs.Active()
		l.ecnActive.Store(active)
		state := "clear"
		if active {
			state = "active"
		}
		e.emit(telemetry.LevelInfo, "remote_ecn",
			telemetry.F("stage", l.stage.name),
			telemetry.F("peer", l.addr),
			telemetry.F("state", state))
	}
}

// idleRemotes reports whether every remote link has flushed — nothing queued
// or awaiting ack on any connected link. Links that cannot make progress
// (reconnecting, circuit open, closed) count as idle: the shutdown drain
// must not stall on a dead peer, and closing the clients will settle their
// accounting into RemoteDrops.
func (e *Engine) idleRemotes() bool {
	for _, l := range e.remotes {
		if l.client.State() != remote.StateConnected {
			continue
		}
		if l.client.Queued() > 0 || l.client.Inflight() > 0 {
			return false
		}
	}
	return true
}

// startRemotes begins dialing every link; called once from Run.
func (e *Engine) startRemotes() {
	for _, l := range e.remotes {
		l.client.Start()
	}
}

// closeRemotes settles every link: each client stops, and whatever the peer
// never acknowledged lands in RemoteDrops via OnDropped — the final entries
// that close the conservation ledger.
func (e *Engine) closeRemotes() {
	for _, l := range e.remotes {
		l.client.Close()
	}
}

// RemoteLinkStats is a snapshot of one remote link's transport state.
type RemoteLinkStats struct {
	Stage string
	Peer  string
	State string
	remote.Stats
	Queued   int
	Inflight int
}

// RemoteStats snapshots every remote link (empty when the engine has none).
func (e *Engine) RemoteStats() []RemoteLinkStats {
	out := make([]RemoteLinkStats, 0, len(e.remotes))
	for _, l := range e.remotes {
		out = append(out, RemoteLinkStats{
			Stage:    l.stage.name,
			Peer:     l.addr,
			State:    l.client.State().String(),
			Stats:    l.client.Stats(),
			Queued:   l.client.Queued(),
			Inflight: l.client.Inflight(),
		})
	}
	return out
}

// RemoteIngress returns the accept-side adapter for this engine: wire it as
// a remote.ServerConfig.OnBatch and every frame from upstream peers is
// re-materialized from the freelist and injected into this engine's chains
// (flows must be mapped with MapFlow as usual). Safe for concurrent sessions.
func (e *Engine) RemoteIngress() func([]remote.Pkt) {
	return func(ps []remote.Pkt) {
		if len(ps) == 0 {
			return
		}
		batch := make([]*Packet, len(ps))
		for i, rp := range ps {
			p := e.GetPacket()
			p.FlowID = int(rp.Flow)
			p.Size = int(rp.Size)
			batch[i] = p
		}
		e.InjectBatch(batch)
	}
}

// CongestionSignal returns the peer-side ECN sampler: true while any stage's
// receive ring sits at or above the high watermark. Wire it as a
// remote.ServerConfig.ECN so upstream senders throttle at their origin when
// this engine congests (paper §3.4's cross-host backpressure).
func (e *Engine) CongestionSignal() func() bool {
	return func() bool {
		for _, s := range e.stages {
			if s.rx.Len() >= e.highWater {
				return true
			}
		}
		return false
	}
}

// registerRemoteMetrics publishes per-link transport counters and the global
// remote ledger classes; called from RegisterMetrics.
func (e *Engine) registerRemoteMetrics(reg *telemetry.Registry) {
	if len(e.remotes) == 0 {
		return
	}
	for _, l := range e.remotes {
		l := l
		lbl := []telemetry.Label{
			telemetry.L("stage", l.stage.name),
			telemetry.L("peer", l.addr),
		}
		reg.CounterFunc("dataplane_remote_sent_total",
			"Packets framed and written to the peer (including later retransmits).",
			func() uint64 { return l.client.Stats().Sent }, lbl...)
		reg.CounterFunc("dataplane_remote_acked_total",
			"Packets the peer acknowledged (delivered exactly once).",
			func() uint64 { return l.client.Stats().Acked }, lbl...)
		reg.CounterFunc("dataplane_remote_retries_total",
			"Frames retransmitted after a reconnect.",
			func() uint64 { return l.client.Stats().Retries }, lbl...)
		reg.CounterFunc("dataplane_remote_reconnects_total",
			"Successful re-dials after a connection loss.",
			func() uint64 { return l.client.Stats().Reconnects }, lbl...)
		reg.CounterFunc("dataplane_remote_window_stalls_total",
			"Stall episodes where the send queue was ready but the credit window was full.",
			func() uint64 { return l.client.Stats().WindowStalls }, lbl...)
		reg.CounterFunc("dataplane_remote_ecn_echoes_total",
			"Acks carrying the peer's congestion mark.",
			func() uint64 { return l.client.Stats().ECNEchoes }, lbl...)
		reg.GaugeFunc("dataplane_remote_queued",
			"Packets buffered ahead of framing on the link.",
			func() float64 { return float64(l.client.Queued()) }, lbl...)
		reg.GaugeFunc("dataplane_remote_inflight_frames",
			"DATA frames sent and not yet acknowledged.",
			func() float64 { return float64(l.client.Inflight()) }, lbl...)
		reg.GaugeFunc("dataplane_remote_link_state",
			"Link state: 0 connecting, 1 connected, 2 reconnecting, 3 circuit open, 4 closed.",
			func() float64 { return float64(l.client.State()) }, lbl...)
	}
	reg.CounterFunc("dataplane_remote_delivered_total",
		"Packets confirmed delivered to peer engines (cumulative acks).",
		e.RemoteDelivered.Load)
	reg.CounterFunc("dataplane_remote_drops_total",
		"Packets surrendered by dead or closing remote links.",
		e.RemoteDrops.Load)
}
