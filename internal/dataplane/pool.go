package dataplane

// The packet freelist. Engine.free is a lock-free MPMC recycle ring shared
// by every goroutine; PacketCache layers a per-producer local cache on top
// so hot producers and consumers touch the shared ring once per
// half-cache-full of traffic (one CAS-reserve batch reservation) instead of
// once per packet.
//
// Ownership contract:
//
//   - GetPacket (or PacketCache.Get) hands the caller a descriptor; the
//     caller owns it until Inject returns true or InjectBatch consumes it.
//   - A packet rejected by Inject (false) is still the caller's: retry it or
//     PutPacket it. InjectBatch instead consumes every packet, recycling the
//     rejected ones itself (unless Config.NoRecycle).
//   - Packets the engine drops in flight (full rings, full output) are
//     recycled automatically unless Config.NoRecycle.
//   - A delivered packet (Output channel or Sink) is owned by the consumer;
//     returning it with PutPacket closes the zero-allocation loop. Skipping
//     that is safe — the freelist just refills from the heap.
//
// Because recycled packets are reused immediately, callers that stash
// *Packet pointers (or pointers reachable from Userdata) past these
// ownership boundaries must set Config.NoRecycle and skip PutPacket.
//
// Config.DebugPool arms ownership tracking for debugging violations of this
// contract: every recycle path flips the descriptor's poolState live→pooled
// with a CAS and panics on a double put; every Get marks it live again; and
// stage workers panic (naming the stage) when a handler receives a pooled
// descriptor — a use-after-recycle. Disabled, the tracking costs nothing:
// the hot path stays allocation-free and check-free.

import "sync/atomic"

// debugPut flips a descriptor live→pooled, panicking on a second put. With
// a frame arena it also verifies the descriptor still owns its arena slot:
// every legal reslice of frame0 shares the slot's final byte, so a Frame
// whose last reachable byte lives elsewhere was swapped for a foreign
// buffer — the pooling contract violation that silently leaks arena slots.
func debugPut(p *Packet) {
	if !atomic.CompareAndSwapInt32(&p.poolState, 0, 1) {
		panic("dataplane: double PutPacket: descriptor is already in the freelist")
	}
	if f0, f := p.frame0, p.Frame; cap(f0) > 0 && cap(f) > 0 &&
		&f[:cap(f)][cap(f)-1] != &f0[:cap(f0)][cap(f0)-1] {
		panic("dataplane: recycled descriptor's Frame no longer aliases its arena slot (buffer swapped)")
	}
}

// resetFrame restores Frame to the descriptor's empty arena slot (a length
// reset only — the bytes stay put). Called on every recycle path so frame
// ownership follows the descriptor through the freelist.
func (p *Packet) resetFrame() {
	if p.frame0 != nil {
		p.Frame = p.frame0[:0]
	} else {
		p.Frame = nil
	}
}

// newPacket is the heap fallback when the freelist runs dry: with a frame
// arena configured the fresh descriptor gets a private full-capacity slot
// so the Frame contract holds even off the preallocated pool.
func (e *Engine) newPacket() *Packet {
	p := &Packet{}
	if fs := e.cfg.FrameSize; fs > 0 {
		slot := make([]byte, fs)
		p.frame0 = slot
		p.Frame = slot[:0]
	}
	return p
}

// GetPacket returns a descriptor from the engine's freelist, falling back to
// the heap when it is empty. Safe from any goroutine.
func (e *Engine) GetPacket() *Packet {
	if p, ok := e.free.Dequeue(); ok {
		if e.cfg.DebugPool {
			atomic.StoreInt32(&p.poolState, 0)
		}
		return p
	}
	return e.newPacket()
}

// PutPacket recycles a descriptor the caller owns. The packet's Userdata is
// cleared (so the freelist never pins user objects); if the freelist is full
// the packet is left to the garbage collector. Safe from any goroutine.
func (e *Engine) PutPacket(p *Packet) {
	if p.span != nil {
		// A rejected-Inject packet surrendered with its span still attached
		// (delivered packets had theirs completed by the mover).
		e.abortSpan(p)
	}
	if e.cfg.DebugPool {
		debugPut(p)
	}
	p.Userdata = nil
	p.Hop = 0
	p.Drop = false
	p.resetFrame()
	e.free.Enqueue(p)
}

// PutPacketBatch recycles a slice of descriptors the caller owns with one
// freelist reservation for the whole batch — the delivery-side mirror of
// InjectBatch, for sinks and output consumers that retire packets in
// bursts. Descriptors that do not fit the freelist are left to the garbage
// collector. Safe from any goroutine; the slice itself is not retained.
func (e *Engine) PutPacketBatch(ps []*Packet) {
	for _, p := range ps {
		if p.span != nil {
			e.abortSpan(p)
		}
		if e.cfg.DebugPool {
			debugPut(p)
		}
		p.Userdata = nil
		p.Hop = 0
		p.Drop = false
		p.resetFrame()
	}
	// Surplus beyond the freelist capacity is GC'd with the caller's refs.
	e.free.EnqueueBatch(ps)
}

// recycler batches the engine-internal recycling of packets dropped in
// flight: drops accumulate in a local slab and return to the shared
// freelist with one batch reservation per flush (once per mover sweep)
// instead of one CAS-reserve Enqueue per packet — the same lane treatment
// the inject path got, applied to the freelist's producer side, so movers
// recycling drops stop CASing against GetPacket's consumers. Each mover
// owns one; the serial shutdown drain owns another. Not safe for
// concurrent use.
type recycler struct {
	e   *Engine
	buf []*Packet
	n   int
}

func (e *Engine) newRecycler(size int) *recycler {
	if size < 1 {
		size = 1
	}
	return &recycler{e: e, buf: make([]*Packet, size)}
}

// put readies a dropped packet for reuse and buffers it for the next flush,
// honouring the NoRecycle opt-out (spans still abort so slabs recycle).
func (r *recycler) put(p *Packet) {
	if p.span != nil {
		r.e.abortSpan(p)
	}
	if r.e.cfg.NoRecycle {
		return
	}
	if r.e.cfg.DebugPool {
		debugPut(p)
	}
	p.Userdata = nil
	p.Hop = 0
	p.Drop = false
	p.resetFrame()
	if r.n == len(r.buf) {
		r.flush()
	}
	r.buf[r.n] = p
	r.n++
}

// flush returns the buffered packets to the shared freelist in one batch
// reservation; whatever does not fit is surplus and left to the GC.
func (r *recycler) flush() {
	if r.n == 0 {
		return
	}
	r.e.free.EnqueueBatch(r.buf[:r.n])
	for i := 0; i < r.n; i++ {
		r.buf[i] = nil
	}
	r.n = 0
}

// freePacket is the engine-internal recycle for packets dropped in flight,
// honouring the NoRecycle opt-out.
func (e *Engine) freePacket(p *Packet) {
	if p.span != nil {
		// Dropped in flight: the span aborts (and its slab recycles) even
		// when NoRecycle leaves the descriptor itself to the caller.
		e.abortSpan(p)
	}
	if e.cfg.NoRecycle {
		return
	}
	if e.cfg.DebugPool {
		debugPut(p)
	}
	p.Userdata = nil
	p.Hop = 0
	p.Drop = false
	p.resetFrame()
	e.free.Enqueue(p)
}

// PacketCache is a per-goroutine freelist cache: Get and Put work on a local
// LIFO slab and exchange half the cache with the shared recycle ring in one
// bulk reservation when it runs dry or fills up. Create one per producer (or
// consumer) goroutine; a PacketCache must not be shared between goroutines.
type PacketCache struct {
	e   *Engine
	buf []*Packet
}

// NewPacketCache returns a cache holding up to size descriptors locally
// (minimum 8).
func (e *Engine) NewPacketCache(size int) *PacketCache {
	if size < 8 {
		size = 8
	}
	return &PacketCache{e: e, buf: make([]*Packet, 0, size)}
}

// Get returns a descriptor, refilling half the cache from the shared
// freelist when the local slab is empty.
func (c *PacketCache) Get() *Packet {
	if len(c.buf) == 0 {
		n := c.e.free.DequeueBatch(c.buf[:cap(c.buf)/2])
		c.buf = c.buf[:n]
		if n == 0 {
			return c.e.newPacket()
		}
	}
	p := c.buf[len(c.buf)-1]
	c.buf[len(c.buf)-1] = nil
	c.buf = c.buf[:len(c.buf)-1]
	if c.e.cfg.DebugPool {
		atomic.StoreInt32(&p.poolState, 0)
	}
	return p
}

// Put recycles a descriptor, spilling half the cache to the shared freelist
// when the local slab is full.
func (c *PacketCache) Put(p *Packet) {
	if p.span != nil {
		c.e.abortSpan(p)
	}
	if c.e.cfg.DebugPool {
		debugPut(p)
	}
	p.Userdata = nil
	p.Hop = 0
	p.Drop = false
	p.resetFrame()
	if len(c.buf) == cap(c.buf) {
		half := cap(c.buf) / 2
		c.e.free.EnqueueBatch(c.buf[half:])
		// Whatever didn't fit in the shared ring is surplus: drop the
		// references and let the GC take it.
		for i := half; i < len(c.buf); i++ {
			c.buf[i] = nil
		}
		c.buf = c.buf[:half]
	}
	c.buf = append(c.buf, p)
}
