package dataplane

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// spin burns roughly d of CPU, standing in for packet processing work.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func drain(e *Engine, stop <-chan struct{}) *uint64 {
	var n uint64
	go func() {
		for {
			select {
			case <-e.Output():
				n++
			case <-stop:
				return
			}
		}
	}()
	return &n
}

func TestPipelineDeliversAll(t *testing.T) {
	e := New(Config{RingSize: 256, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(p *Packet) { p.Userdata = p.Userdata.(int) + 1 })
	b := e.AddStage("b", 1024, func(p *Packet) { p.Userdata = p.Userdata.(int) * 2 })
	ch, err := e.AddChain(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(7, ch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	const total = 1000
	results := make(map[int]bool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			p := <-e.Output()
			results[p.Userdata.(int)] = true
		}
	}()
	sent := 0
	for sent < total {
		if e.Inject(&Packet{FlowID: 7, Size: 64, Userdata: sent}) {
			sent++
		} else {
			runtime.Gosched()
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timeout waiting for deliveries")
	}
	// Both handlers applied, in order: (v+1)*2.
	if !results[(0+1)*2] || !results[(999+1)*2] {
		t.Fatal("handlers not applied in chain order")
	}
	if e.Delivered.Load() != total {
		t.Fatalf("delivered %d, want %d", e.Delivered.Load(), total)
	}
}

func TestUnroutedFlowRejected(t *testing.T) {
	e := New(Config{})
	if e.Inject(&Packet{FlowID: 99}) {
		t.Fatal("unrouted inject accepted")
	}
}

func TestChainValidation(t *testing.T) {
	e := New(Config{})
	if _, err := e.AddChain(); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := e.AddChain(42); err == nil {
		t.Fatal("unknown stage accepted")
	}
}

func TestWeightedSharesSkewThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	// Two independent single-stage chains with equal work and a 4:1
	// manual weight ratio: the heavy stage should process several times
	// more packets when both queues are always full.
	// Pre-fill both queues so the scheduler is never idle-constrained by
	// the injector (on one CPU a hot injector goroutine starves), then
	// measure a window during which both queues stay non-empty.
	e := New(Config{RingSize: 4096, BatchSize: 8, WeightPeriod: 0})
	work := func(p *Packet) { spin(20 * time.Microsecond) }
	a := e.AddStage("a", 4096, work)
	b := e.AddStage("b", 1024, work)
	ca, _ := e.AddChain(a)
	cb, _ := e.AddChain(b)
	e.MapFlow(0, ca)
	e.MapFlow(1, cb)
	for i := 0; i < 3000; i++ {
		e.Inject(&Packet{FlowID: 0})
		e.Inject(&Packet{FlowID: 1})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go e.Run(ctx)
	stop := make(chan struct{})
	drain(e, stop)
	time.Sleep(40 * time.Millisecond)
	cancel()
	close(stop)
	st := e.Stats()
	if st[0].Processed >= 2900 || st[1].Processed >= 2900 {
		t.Skipf("queues drained during window (a=%d b=%d); host too fast for sizing assumptions",
			st[0].Processed, st[1].Processed)
	}
	if st[0].Processed < 200 {
		t.Skipf("host too slow: only %d grants in the window", st[0].Processed)
	}
	ratio := float64(st[0].Processed) / float64(st[1].Processed)
	if ratio < 2.0 {
		t.Fatalf("4:1 weights produced only %.2fx throughput skew (a=%d b=%d)",
			ratio, st[0].Processed, st[1].Processed)
	}
}

func TestAutoWeightsEqualizeUnequalCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	// Rate-cost proportional controller: stage B costs 4x stage A; with
	// equal arrivals the controller should weight B up and roughly
	// equalize processed counts.
	e := New(Config{RingSize: 512, BatchSize: 8, WeightPeriod: 5 * time.Millisecond})
	a := e.AddStage("light", 1024, func(p *Packet) { spin(5 * time.Microsecond) })
	b := e.AddStage("heavy", 1024, func(p *Packet) { spin(50 * time.Microsecond) })
	ca, _ := e.AddChain(a)
	cb, _ := e.AddChain(b)
	e.MapFlow(0, ca)
	e.MapFlow(1, cb)
	ctx, cancel := context.WithCancel(context.Background())
	go e.Run(ctx)
	stop := make(chan struct{})
	drain(e, stop)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		e.Inject(&Packet{FlowID: 0})
		e.Inject(&Packet{FlowID: 1})
	}
	cancel()
	close(stop)
	st := e.Stats()
	if st[1].EstCost <= st[0].EstCost {
		// Wall-clock measurement was inverted by host scheduling noise;
		// the controller acted on garbage inputs, so the assertions below
		// would test the host, not the code.
		t.Skipf("host timing noise inverted cost estimates: light=%v heavy=%v",
			st[0].EstCost, st[1].EstCost)
	}
	if st[1].Weight <= st[0].Weight {
		t.Fatalf("controller did not weight the heavy stage up: %d vs %d",
			st[1].Weight, st[0].Weight)
	}
	ratio := float64(st[0].Processed) / float64(st[1].Processed)
	if ratio > 4 {
		t.Fatalf("throughputs not equalized: light=%d heavy=%d (%.2fx)",
			st[0].Processed, st[1].Processed, ratio)
	}
}

func TestBackpressureShedsAtEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	// A fast upstream feeding a very slow downstream: the chain must
	// throttle at entry rather than queueing without bound. The tight
	// sampling cadence keeps the wasted-work bound below at ring-depth
	// granularity (at the default 1 ms cadence the fast stage can burn
	// several rings' worth between samples).
	e := New(Config{RingSize: 128, BatchSize: 8, WeightPeriod: 0,
		BackpressurePeriod: 50 * time.Microsecond})
	fast := e.AddStage("fast", 1024, func(p *Packet) {})
	slow := e.AddStage("slow", 1024, func(p *Packet) { spin(200 * time.Microsecond) })
	ch, _ := e.AddChain(fast, slow)
	e.MapFlow(0, ch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	stop := make(chan struct{})
	defer close(stop)
	drain(e, stop)
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !e.Inject(&Packet{FlowID: 0}) {
			// Yield on rejection: on a single-CPU box (GOMAXPROCS=1,
			// -race) an unyielding producer loop can starve the control
			// loop into lockstep, bursting only while the throttle is
			// clear and never observing it set.
			runtime.Gosched()
		}
	}
	if e.EntryDrops.Load() == 0 {
		t.Fatal("overloaded chain never shed at entry")
	}
	// Wasted work should be bounded: the fast stage must not have
	// processed vastly more than the slow one (default platforms waste a
	// ring's worth at every cycle; here it is bounded by ring depth plus
	// the control plane's sampling slack — on a 1-CPU host the decoupled
	// control goroutine's wakeups lag its nominal cadence, so allow a few
	// extra rings; without backpressure the excess grows without bound).
	st := e.Stats()
	if st[0].Processed > st[1].Processed+8*128 {
		t.Fatalf("wasted work: fast=%d slow=%d", st[0].Processed, st[1].Processed)
	}
}

func TestThrottleClears(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	e := New(Config{RingSize: 128, BatchSize: 8, WeightPeriod: 0})
	slow := e.AddStage("slow", 1024, func(p *Packet) { spin(50 * time.Microsecond) })
	ch, _ := e.AddChain(slow)
	e.MapFlow(0, ch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	stop := make(chan struct{})
	defer close(stop)
	drain(e, stop)
	// Flood: on a single CPU the engine may set AND clear the throttle
	// within one of its own timeslices, so assert on the event counter
	// rather than polling the instantaneous state.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) && e.ThrottleEvents.Load() == 0 {
		e.Inject(&Packet{FlowID: 0})
	}
	if e.ThrottleEvents.Load() == 0 {
		t.Fatal("never throttled under flood")
	}
	// Stop injecting; the queue drains and the throttle clears.
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && e.Throttled(ch) {
		time.Sleep(time.Millisecond)
	}
	if e.Throttled(ch) {
		t.Fatal("throttle never cleared after drain")
	}
}

// TestInjectAccountingReconciles audits drop accounting across every path a
// packet can take: shed at entry (throttle), dropped at the entry ring
// (Inject), dropped mid-chain (mover), dropped at the full output channel,
// or delivered. For a single chain a→b the counters must reconcile exactly
// once the pipeline quiesces:
//
//	attempts           == arrivals(a)
//	rejected           == EntryDrops + drops(a)
//	accepted           == Injected == Delivered + OutputDrops + drops(b)
//	processed(a)       == arrivals(b) == processed(b) + drops(b)
//	processed(b)       == Delivered + OutputDrops
//	wasted(a)          == drops(b),  wasted(b) == OutputDrops
func TestInjectAccountingReconciles(t *testing.T) {
	// Tiny rings and a slow second stage force every drop path; the
	// consumer drains with pauses so the output channel also overflows.
	e := New(Config{RingSize: 32, BatchSize: 8, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(p *Packet) {})
	bID := e.AddStage("b", 1024, func(p *Packet) { spin(2 * time.Microsecond) })
	ch, err := e.AddChain(a, bID)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case p := <-e.Output():
				e.PutPacket(p)
			case <-stop:
				return
			}
			if e.Delivered.Load()%64 == 0 {
				time.Sleep(200 * time.Microsecond) // let the channel back up
			}
		}
	}()
	defer close(stop)

	var attempts, rejected uint64
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		p := e.GetPacket()
		p.FlowID = 0
		p.Size = 64
		attempts++
		if !e.Inject(p) {
			rejected++
			e.PutPacket(p)
		}
	}

	// Quiesce: all accepted packets must end up delivered or dropped.
	stats := func(name string) StageStats {
		for _, s := range e.Stats() {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("stage %s missing", name)
		return StageStats{}
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.Injected.Load() == e.Delivered.Load()+e.OutputDrops.Load()+stats("b").QueueDrops {
			break
		}
		time.Sleep(time.Millisecond)
	}

	sa, sb := stats("a"), stats("b")
	accepted := attempts - rejected
	if got := e.Injected.Load(); got != accepted {
		t.Errorf("Injected = %d, want accepted = %d", got, accepted)
	}
	if got := sa.QueueDrops + e.EntryDrops.Load(); got != rejected {
		t.Errorf("EntryDrops+drops(a) = %d, want rejected = %d", got, rejected)
	}
	if sa.Arrivals != attempts {
		t.Errorf("arrivals(a) = %d, want attempts = %d", sa.Arrivals, attempts)
	}
	if sb.Arrivals != sa.Processed {
		t.Errorf("arrivals(b) = %d, want processed(a) = %d", sb.Arrivals, sa.Processed)
	}
	if sb.Arrivals != sb.Processed+sb.QueueDrops {
		t.Errorf("arrivals(b) = %d, want processed(b)+drops(b) = %d",
			sb.Arrivals, sb.Processed+sb.QueueDrops)
	}
	if sb.Processed != e.Delivered.Load()+e.OutputDrops.Load() {
		t.Errorf("processed(b) = %d, want delivered+outputDrops = %d",
			sb.Processed, e.Delivered.Load()+e.OutputDrops.Load())
	}
	if got := e.Delivered.Load() + e.OutputDrops.Load() + sb.QueueDrops; got != accepted {
		t.Errorf("delivered+outputDrops+drops(b) = %d, want accepted = %d", got, accepted)
	}
	if sa.Wasted != sb.QueueDrops {
		t.Errorf("wasted(a) = %d, want drops(b) = %d", sa.Wasted, sb.QueueDrops)
	}
	if sb.Wasted != e.OutputDrops.Load() {
		t.Errorf("wasted(b) = %d, want OutputDrops = %d", sb.Wasted, e.OutputDrops.Load())
	}
	// The interesting paths actually fired; otherwise this test proves
	// nothing. Entry drops need sustained pressure, which a 1-CPU host may
	// not generate, so only ring/output drops are mandatory.
	if sb.QueueDrops == 0 {
		t.Log("note: no mid-chain drops occurred this run")
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Run(ctx) // returns immediately
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	e.Run(ctx)
}

func TestStatsSnapshot(t *testing.T) {
	e := New(Config{})
	e.AddStage("x", 2048, func(*Packet) {})
	st := e.Stats()
	if len(st) != 1 || st[0].Name != "x" || st[0].Weight != 2048 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetWeightFloor(t *testing.T) {
	e := New(Config{})
	id := e.AddStage("x", 1024, func(*Packet) {})
	e.SetWeight(id, 0)
	if e.Stats()[0].Weight < 2 {
		t.Fatal("weight floor not applied")
	}
}

func TestRunShutsDownCleanly(t *testing.T) {
	// Run must return after cancellation — no deadlocked workers.
	e := New(Config{Cores: 2, RingSize: 64, WeightPeriod: 0})
	a := e.AddStageOn("a", 1024, 0, func(*Packet) {})
	b := e.AddStageOn("b", 1024, 1, func(*Packet) {})
	ch, _ := e.AddChain(a, b)
	e.MapFlow(0, ch)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	for i := 0; i < 100; i++ {
		e.Inject(&Packet{FlowID: 0})
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel: worker deadlock")
	}
}

func TestMultiCoreChainsProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	// A chain spanning two cores: both stages progress and all packets
	// arrive in order of chain position.
	e := New(Config{Cores: 2, RingSize: 256, BatchSize: 8, WeightPeriod: 0})
	a := e.AddStageOn("a", 1024, 0, func(p *Packet) {})
	b := e.AddStageOn("b", 1024, 1, func(p *Packet) {})
	ch, _ := e.AddChain(a, b)
	e.MapFlow(0, ch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	var got atomic.Int64
	recv := make(chan struct{})
	go func() {
		for range e.Output() {
			if got.Add(1) == 500 {
				close(recv)
				return
			}
		}
	}()
	// Closed loop: cap in-flight packets well below the output channel's
	// RingSize capacity, because delivery is a non-blocking send — a burst
	// while this consumer goroutine is descheduled would overflow the
	// channel and count OutputDrops instead of deliveries.
	sent := 0
	for sent < 500 {
		if sent-int(got.Load()) >= 128 {
			runtime.Gosched()
			continue
		}
		if e.Inject(&Packet{FlowID: 0}) {
			sent++
		} else {
			runtime.Gosched()
		}
	}
	select {
	case <-recv:
	case <-time.After(10 * time.Second):
		t.Fatalf("cross-core chain delivered only %d/500", got.Load())
	}
	st := e.Stats()
	if st[0].Processed < 500 || st[1].Processed < 500 {
		t.Fatalf("stage progress: %d/%d", st[0].Processed, st[1].Processed)
	}
	cancel()
	<-done
}

func TestAddStageOnValidatesCore(t *testing.T) {
	e := New(Config{Cores: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range core accepted")
		}
	}()
	e.AddStageOn("x", 1024, 5, func(*Packet) {})
}

func TestLatencyStats(t *testing.T) {
	e := New(Config{RingSize: 64, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(p *Packet) { spin(100 * time.Microsecond) })
	ch, _ := e.AddChain(a)
	e.MapFlow(0, ch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	got := make(chan struct{})
	go func() {
		for i := 0; i < 20; i++ {
			<-e.Output()
		}
		close(got)
	}()
	for i := 0; i < 20; {
		if e.Inject(&Packet{FlowID: 0}) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	mean, max := e.LatencyStats()
	if mean < 100*time.Microsecond {
		t.Fatalf("mean latency %v below the 100µs handler time", mean)
	}
	if max < mean {
		t.Fatalf("max %v < mean %v", max, mean)
	}
	cancel()
	<-done
}

func TestTapSeesDeliveredPackets(t *testing.T) {
	e := New(Config{RingSize: 64, WeightPeriod: 0})
	a := e.AddStage("a", 1024, func(*Packet) {})
	ch, _ := e.AddChain(a)
	e.MapFlow(0, ch)
	var tapped int
	e.Tap(func(*Packet) { tapped++ })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	seen := make(chan struct{})
	go func() {
		for i := 0; i < 30; i++ {
			<-e.Output()
		}
		close(seen)
	}()
	for i := 0; i < 30; {
		if e.Inject(&Packet{FlowID: 0}) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	select {
	case <-seen:
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	if tapped < 30 {
		t.Fatalf("tap saw %d packets, want >=30", tapped)
	}
	cancel()
	<-done
}

func TestTapAfterRunPanics(t *testing.T) {
	e := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Run(ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("Tap after Run did not panic")
		}
	}()
	e.Tap(func(*Packet) {})
}
