package dataplane

// Supervision: the NF-Manager liveness layer around stage workers.
//
// The paper's NF Manager assumes misbehaving NFs are contained — overload
// is managed (backpressure, early discard), never fatal. This file gives
// the live goroutine dataplane the same property:
//
//   - A handler panic fails only its stage: the worker recovers, charges
//     the in-flight chunk to the fault ledger, reports the failure through
//     its done channel and exits; the scheduler marks the stage Failed.
//   - A handler that blocks past Config.GrantTimeout cannot wedge the
//     scheduler: the grant wait has a deadline, and an overdue stage is
//     *detached* — its epoch is bumped so the stale worker discovers it on
//     wake, and its in-flight packets are claimed via an atomic Swap of
//     the incarnation's inflight counter. Exactly one side (worker,
//     detaching scheduler, or the shutdown sweep) wins the Swap and owns
//     the accounting, so no packet is double-counted or lost.
//   - Failed stages restart with exponential backoff plus seeded jitter
//     under a max-restart circuit breaker; a restarted stage re-earns
//     Healthy through a probation of clean grants (Restarting → Degraded
//     → Healthy).
//   - Chains through a Failed stage follow a per-chain policy: FailClosed
//     sheds at chain entry (reusing the backpressure gate shape, charged
//     to FaultEntryDrops), FailOpen bypasses the dead hop in the mover.
//
// Goroutines cannot be killed, so a truly wedged worker leaks until it
// wakes; the circuit breaker bounds the leak, and every structure the old
// incarnation might touch on wake is either epoch-guarded, per-incarnation
// (scratch batch, channels, inflight), or safe under an extra producer
// (the MPMC tx ring).

import (
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"nfvnice/internal/remote"
	"nfvnice/internal/ring"
	"nfvnice/internal/telemetry"
)

// Health is a stage's supervision state.
type Health int32

// Health states. Every state but Failed is schedulable.
const (
	// Healthy: normal operation.
	Healthy Health = iota
	// Degraded: restarted and on probation; a run of clean grants
	// promotes the stage back to Healthy.
	Degraded
	// Failed: crashed or stalled; waiting out restart backoff, or down
	// permanently once the circuit breaker opens.
	Failed
	// Restarting: a fresh worker was spawned and has yet to complete its
	// first grant.
	Restarting
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	case Restarting:
		return "restarting"
	default:
		return "?"
	}
}

// FailPolicy selects a chain's degradation mode while one of its stages is
// Failed.
type FailPolicy uint8

const (
	// FailClosed sheds the chain's packets at entry (the paper's
	// drop-early ethos: don't invest work in packets that cannot finish).
	FailClosed FailPolicy = iota
	// FailOpen forwards past the dead hop, trading the failed stage's
	// processing for chain availability.
	FailOpen
)

// probationGrants is how many clean grants a Degraded stage must complete
// to be promoted back to Healthy (resetting the failure streak).
const probationGrants = 8

// restartNever marks a circuit-open stage: no restart will be scheduled.
const restartNever = int64(math.MaxInt64)

// workerKind distinguishes worker incarnations by what their stage's
// handler does with packets.
type workerKind uint8

const (
	// workerLocal runs an ordinary NF handler.
	workerLocal workerKind = iota
	// workerRemote ships packets onto a remote link (see remote.go). Remote
	// incarnations skip grant probation — the link state machine, not clean
	// grants, decides the stage's health — and their handler never blocks,
	// so the grant-deadline detach path is effectively unreachable for them.
	workerRemote
)

// workerCtx is one worker incarnation. Restart replaces the whole context,
// so a stale worker can never share channels, scratch or the inflight
// counter with its replacement.
type workerCtx struct {
	// epoch identifies the incarnation; stage.epoch moves past it when
	// the incarnation is detached.
	epoch uint64
	// kind is the incarnation's handler class (local NF or remote link).
	kind workerKind
	// grant carries the batch budget; closed on shutdown.
	grant chan int
	// done reports grant completion; cap 1 so a worker finishing after
	// detach (or after shutdown) never blocks sending to a departed
	// scheduler.
	done chan grantResult
	// batch is the incarnation's dequeue scratch.
	batch []*Packet
	// inflight is the chunk ownership arbiter: the worker publishes the
	// chunk size before running handlers; whoever Swap()s it to zero owns
	// the accounting for those packets.
	inflight atomic.Int64
	// closed guards grant against double close: both detach and shutdown
	// retire an incarnation, and a detached-but-never-restarted stage
	// reaches shutdown with the same incarnation current.
	closed atomic.Bool
	// okGrants counts clean grants since (re)start; owned by the
	// scheduler goroutine of the stage's core.
	okGrants int
}

// grantResult is a worker's per-grant completion report.
type grantResult struct {
	panicked bool
	panicVal string
}

// spawnWorker starts a fresh worker incarnation for the stage. The epoch
// bump precedes the pointer swap so any previous incarnation that wakes
// later observes it is stale before it can signal anyone.
func (e *Engine) spawnWorker(s *stage) {
	kind := workerLocal
	if s.rem != nil {
		kind = workerRemote
	}
	w := &workerCtx{
		epoch: s.epoch.Add(1),
		kind:  kind,
		grant: make(chan int),
		done:  make(chan grantResult, 1),
		batch: make([]*Packet, e.cfg.BatchSize),
	}
	s.w.Store(w)
	e.liveWorkers.Add(1)
	go e.worker(s, w)
}

// newGrantTimer returns a stopped, drained timer for waitGrant reuse.
func newGrantTimer() *time.Timer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}

// waitGrant waits for the grant to complete, bounded by the grant deadline
// (negative d waits forever). The timer must come from newGrantTimer and is
// left stopped and drained either way, so the wait is allocation-free.
func waitGrant(w *workerCtx, timer *time.Timer, d time.Duration) (grantResult, bool) {
	if d < 0 {
		return <-w.done, true
	}
	timer.Reset(d)
	select {
	case res := <-w.done:
		if !timer.Stop() {
			<-timer.C
		}
		return res, true
	case <-timer.C:
		return grantResult{}, false
	}
}

// decInflight claims one unit from an incarnation's inflight counter,
// reporting false when a detach (or the shutdown sweep) already claimed the
// remainder.
func decInflight(v *atomic.Int64) bool {
	for {
		cur := v.Load()
		if cur <= 0 {
			return false
		}
		if v.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// panicString renders a recovered panic value (cold path).
func panicString(r any) string { return fmt.Sprint(r) }

// emit forwards a supervision event to the attached event log, if any.
func (e *Engine) emit(lvl telemetry.Level, typ string, fields ...telemetry.Field) {
	if e.events != nil {
		e.events.Emit(time.Since(e.startWall).Seconds(), lvl, typ, fields...)
	}
}

// setHealth transitions a stage's health state, emitting the change.
func (e *Engine) setHealth(s *stage, h Health) {
	e.setHealthNote(s, h, "")
}

// setHealthNote is setHealth with a cause note (panic message, stall) that
// rides along in the decision journal.
func (e *Engine) setHealthNote(s *stage, h Health, note string) {
	if from := Health(s.health.Swap(int32(h))); from != h {
		e.record(Decision{Kind: DecisionHealth, Chain: -1, Stage: s.name,
			From: from.String(), To: h.String(),
			Failures: int(s.consecFails.Load()), Note: note})
		e.emit(telemetry.LevelInfo, "stage_health",
			telemetry.F("stage", s.name), telemetry.F("state", h.String()))
	}
}

// closeGrant retires an incarnation's grant channel exactly once. Safe
// because only the stage's (single) grantor ever sends on it, and a
// retired incarnation is never granted again.
func closeGrant(w *workerCtx) {
	if w.closed.CompareAndSwap(false, true) {
		close(w.grant)
	}
}

// detachStage abandons a worker incarnation that overran the grant
// deadline: the epoch bump makes the incarnation stale, and the inflight
// Swap claims whatever chunk it was holding for the fault ledger (if the
// worker completes the chunk concurrently, exactly one side wins the Swap).
// Closing the grant channel releases the worker if it finished just after
// the deadline and re-blocked waiting for a grant that will never come.
func (e *Engine) detachStage(s *stage, w *workerCtx) {
	s.epoch.Add(1)
	closeGrant(w)
	if k := w.inflight.Swap(0); k > 0 {
		e.FaultDrops.Add(uint64(k))
		s.faultDrops.Add(uint64(k))
	}
	e.failStage(s, "stall", "grant deadline exceeded")
}

// failStage marks a stage Failed, schedules its restart (or opens the
// circuit breaker), and applies chain degradation policies. Called from the
// scheduler goroutine of the stage's core.
func (e *Engine) failStage(s *stage, kind, msg string) {
	fails := int(s.consecFails.Add(1))
	e.anyFaulty.Store(true)
	if e.cfg.MaxRestarts >= 0 && fails > e.cfg.MaxRestarts {
		s.restartAtNanos.Store(restartNever)
		e.record(Decision{Kind: DecisionCircuitOpen, Chain: -1, Stage: s.name,
			Failures: fails, Note: kind + ": " + msg})
		e.emit(telemetry.LevelWarn, "stage_circuit_open",
			telemetry.F("stage", s.name), telemetry.F("failures", fails))
	} else {
		s.restartAtNanos.Store(time.Now().UnixNano() + e.restartBackoff(fails).Nanoseconds())
	}
	e.setHealthNote(s, Failed, kind+": "+msg)
	e.recomputeChainsDown()
	e.emit(telemetry.LevelWarn, "stage_fault",
		telemetry.F("stage", s.name), telemetry.F("kind", kind),
		telemetry.F("msg", msg), telemetry.F("failures", fails))
}

// restartBackoff is the supervised-restart schedule: exponential in the
// consecutive-failure count, capped, with ±20% seeded jitter so co-failing
// stages don't restart in lockstep (and chaos runs stay reproducible).
func (e *Engine) restartBackoff(fails int) time.Duration {
	d := e.cfg.RestartBackoff
	for i := 1; i < fails && d < e.cfg.RestartBackoffMax; i++ {
		d *= 2
	}
	if d > e.cfg.RestartBackoffMax {
		d = e.cfg.RestartBackoffMax
	}
	e.jitterMu.Lock()
	f := 0.8 + 0.4*e.jitterRand.Float64()
	e.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// restartStage spawns a replacement worker for a Failed stage. The context
// swap happens before the health transition so no scheduler can grant a
// stale incarnation.
func (e *Engine) restartStage(s *stage) {
	s.restarts.Add(1)
	e.record(Decision{Kind: DecisionRestart, Chain: -1, Stage: s.name,
		Failures: int(s.consecFails.Load()),
		Note:     "attempt " + strconv.FormatUint(s.restarts.Load(), 10)})
	e.spawnWorker(s)
	e.setHealth(s, Restarting)
	e.recomputeChainsDown()
	e.emit(telemetry.LevelInfo, "stage_restart",
		telemetry.F("stage", s.name),
		telemetry.F("attempt", s.restarts.Load()),
		telemetry.F("failures", s.consecFails.Load()))
}

// recomputeChainsDown refreshes the fail-closed entry gates: a chain is
// down while any of its stages is Failed and its policy is FailClosed.
func (e *Engine) recomputeChainsDown() {
	for ci, chain := range e.chains {
		down := false
		if e.chainPolicy[ci] == FailClosed {
			for _, sid := range chain {
				if Health(e.stages[sid].health.Load()) == Failed {
					down = true
					break
				}
			}
		}
		if e.chainDown[ci].Swap(down) != down {
			state := "up"
			kind := DecisionChainUp
			if down {
				state = "down"
				kind = DecisionChainDown
			}
			e.record(Decision{Kind: kind, Chain: ci})
			e.emit(telemetry.LevelInfo, "chain_failclosed",
				telemetry.F("chain", ci), telemetry.F("state", state))
		}
	}
}

// remoteLinkState maps a remote link's transport transitions onto its
// stage's supervision state — the link's reconnect loop plays the role the
// restart/backoff schedule plays for local workers. Called from the client's
// connection-manager goroutine; everything it touches is atomic- or
// mutex-guarded.
//
//   - Connected: the stage is Healthy again immediately (no probation — the
//     handshake itself is the proof). A recovery after an outage journals
//     remote_reconnect with the peer address and how many dials it took.
//   - Reconnecting: the stage degrades but stays schedulable; packets keep
//     flowing into the send queue until Space() runs out and the watermark
//     machine throttles the chain.
//   - CircuitOpen: the link is dead for good. The stage fails permanently
//     (restartNever, like a local circuit breaker) and the chain policies
//     take over; the journal records remote_circuit_open with the peer.
//   - Closed: engine shutdown; nothing to transition.
func (e *Engine) remoteLinkState(l *remoteLink, st remote.State, attempt int) {
	s := l.stage
	switch st {
	case remote.StateConnected:
		if attempt > 0 {
			e.record(Decision{Kind: DecisionRemoteReconnect, Chain: -1,
				Stage: s.name, Peer: l.addr, Failures: attempt})
			e.emit(telemetry.LevelInfo, "remote_reconnect",
				telemetry.F("stage", s.name), telemetry.F("peer", l.addr),
				telemetry.F("attempts", attempt))
		}
		s.consecFails.Store(0)
		e.setHealthNote(s, Healthy, "remote: connected "+l.addr)
		e.recomputeChainsDown()
	case remote.StateReconnecting:
		s.consecFails.Store(int32(attempt))
		e.setHealthNote(s, Degraded, "remote: reconnecting "+l.addr)
	case remote.StateCircuitOpen:
		s.consecFails.Store(int32(attempt))
		s.restartAtNanos.Store(restartNever)
		e.anyFaulty.Store(true)
		e.record(Decision{Kind: DecisionRemoteCircuitOpen, Chain: -1,
			Stage: s.name, Peer: l.addr, Failures: attempt})
		e.setHealthNote(s, Failed, "remote: circuit open "+l.addr)
		e.recomputeChainsDown()
		e.emit(telemetry.LevelWarn, "remote_circuit_open",
			telemetry.F("stage", s.name), telemetry.F("peer", l.addr),
			telemetry.F("failures", attempt))
	case remote.StateClosed:
		// Engine shutdown owns the final accounting; no health transition.
	}
}

// supervise is the control loop's restart pass: respawn Failed stages whose
// backoff elapsed and keep circuit-open stages' queues from stranding
// accepted packets. Gated on anyFaulty so the all-healthy steady state pays
// one atomic load per iteration.
func (e *Engine) supervise(now int64) {
	if !e.anyFaulty.Load() {
		return
	}
	allHealthy := true
	for _, s := range e.stages {
		switch Health(s.health.Load()) {
		case Healthy:
			continue
		case Failed:
			allHealthy = false
			ra := s.restartAtNanos.Load()
			if ra == restartNever {
				// Circuit open: the stage will never drain its own queue.
				if n := e.sweepRing(s.rx, &e.FaultDrops); n > 0 {
					s.faultDrops.Add(n)
				}
			} else if now >= ra {
				e.restartStage(s)
			}
		default:
			allHealthy = false
		}
	}
	if allHealthy {
		e.anyFaulty.Store(false)
	}
}

// bypassFailedHops advances each packet's hop past Failed stages on
// fail-open chains, so the mover forwards (or delivers) around dead hops.
func (e *Engine) bypassFailedHops(ps []*Packet) {
	for _, pkt := range ps {
		if e.chainPolicy[pkt.ChainID] != FailOpen {
			continue
		}
		chain := e.chains[pkt.ChainID]
		for pkt.Hop < len(chain) && Health(e.stages[chain[pkt.Hop]].health.Load()) == Failed {
			pkt.Hop++
		}
	}
}

// sweepRing drains a ring, recycling packets and charging them to the
// given drop counter; returns how many were swept.
func (e *Engine) sweepRing(r *ring.MPMC[*Packet], counter *atomic.Uint64) uint64 {
	var n uint64
	for {
		p, ok := r.Dequeue()
		if !ok {
			break
		}
		e.freePacket(p)
		n++
	}
	if n > 0 {
		counter.Add(n)
	}
	return n
}

// idleRings reports whether every stage's rx and tx ring is empty.
func (e *Engine) idleRings() bool {
	for _, s := range e.stages {
		if s.rx.Len() > 0 || s.tx.Len() > 0 {
			return false
		}
	}
	return true
}

// idleLanes reports whether every registered inject lane is empty (the
// shutdown drain's companion to idleRings).
func (e *Engine) idleLanes() bool {
	e.laneMu.Lock()
	defer e.laneMu.Unlock()
	for _, ln := range e.lanes {
		if ln.ring.Len() > 0 {
			return false
		}
	}
	return true
}

// shutdown is Run's wind-down: bounded drain, stop gate, bounded worker
// join, final sweep. After it returns, every accepted packet is delivered
// or charged to a drop class — the reconciliation invariant holds for the
// whole run, not just steady state (the one caveat is a worker preempted
// between winning its inflight claim and publishing to tx for longer than
// the exit wait; it self-charges ShutdownDrops on wake).
func (e *Engine) shutdown(timer *time.Timer) {
	if e.cfg.DrainTimeout >= 0 {
		deadline := time.Now().Add(e.cfg.DrainTimeout)
		for time.Now().Before(deadline) {
			e.coarseNanos.Store(time.Now().UnixNano())
			// The movers have exited, so their lane-consumer role passes
			// to this goroutine: drain registered lanes into the chain so
			// in-lane packets get their delivery chance before the sweep.
			laneBacklog := 0
			for _, m := range e.movers {
				laneBacklog += e.drainLanes(m)
			}
			ran := false
			for _, s := range e.stages {
				if !s.schedulable() || s.rx.Len() == 0 {
					continue
				}
				if s.tx.Len() >= e.cfg.RingSize-1-e.cfg.BatchSize {
					continue
				}
				if s.rem != nil && !s.rem.grantable(e.cfg.BatchSize) {
					continue // link out of credit: let acks (or the timeout) decide
				}
				// Yield flags are ignored: the goal is flushing, not
				// fairness.
				e.grantStage(s, timer, s.core)
				ran = true
			}
			e.moveAll()
			e.supervise(time.Now().UnixNano())
			if !ran && laneBacklog == 0 {
				if e.idleRings() && e.idleLanes() && e.idleRemotes() {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	// Stop gate: from here on, Inject attempts are counted (LateDrops),
	// not enqueued, and workers deliver nothing new into tx.
	e.stopped.Store(true)
	// Release the workers and give them a bounded window; a handler
	// wedged inside a packet cannot hold Run hostage.
	for _, s := range e.stages {
		closeGrant(s.w.Load())
	}
	exitWait := e.cfg.DrainTimeout
	if exitWait <= 0 {
		exitWait = 50 * time.Millisecond
	}
	if exitWait > time.Second {
		exitWait = time.Second
	}
	waitDeadline := time.Now().Add(exitWait)
	for e.liveWorkers.Load() > 0 && time.Now().Before(waitDeadline) {
		time.Sleep(100 * time.Microsecond)
	}
	// Deliver what reached tx, then sweep what's left into the shutdown
	// ledger: live in-flight claims first (a wedged worker waking later
	// loses the Swap and recycles without counting), then every ring.
	e.moveAll()
	for _, s := range e.stages {
		if k := s.w.Load().inflight.Swap(0); k > 0 {
			e.ShutdownDrops.Add(uint64(k))
		}
	}
	for _, s := range e.stages {
		e.sweepRing(s.rx, &e.ShutdownDrops)
		e.sweepRing(s.tx, &e.ShutdownDrops)
	}
	// Inject lanes still holding packets are swept into LateDrops (their
	// packets were never counted Injected), serialized with any producer
	// racing the stop gate via lateMu.
	e.sweepLanes()
	// Settle the remote links: whatever the peers never acknowledged is
	// surrendered into RemoteDrops, closing the cross-host ledger.
	e.closeRemotes()
	// The shutdown recycler may hold the last drops; return them to the
	// freelist so a post-Run GetPacket still finds them.
	e.drainRC.flush()
	// Flush spans completed by the final moveAll; the control loop that
	// normally drains the spool has already exited.
	e.drainSpool()
}

// HealthSnapshot reports every stage's supervision state, restart count and
// failure streak, followed by one row per TX shard carrying the mover's
// drain telemetry (parks, wakes, park ratio, drain efficiency) in Detail —
// the /healthz payload (see telemetry.AddHealthz). Stage rows always come
// first, in stage-id order, so indexing by stage id keeps working.
func (e *Engine) HealthSnapshot() []telemetry.ComponentHealth {
	out := make([]telemetry.ComponentHealth, len(e.stages), len(e.stages)+len(e.movers))
	for i, s := range e.stages {
		h := Health(s.health.Load())
		out[i] = telemetry.ComponentHealth{
			Component: s.name,
			State:     h.String(),
			Healthy:   h != Failed,
			Restarts:  s.restarts.Load(),
			Failures:  uint64(s.consecFails.Load()),
		}
	}
	for _, ms := range e.MoverStats() {
		detail := map[string]float64{
			"stages":     float64(ms.Stages),
			"lanes":      float64(ms.Lanes),
			"batch":      float64(ms.Batch),
			"sweeps":     float64(ms.Sweeps),
			"moved":      float64(ms.Moved),
			"lane_moved": float64(ms.LaneMoved),
			"parks":      float64(ms.Parks),
			"wakes":      float64(ms.Wakes),
		}
		if ms.Sweeps > 0 {
			detail["park_ratio"] = float64(ms.Parks) / float64(ms.Sweeps)
			detail["drain_per_sweep"] = float64(ms.Moved) / float64(ms.Sweeps)
		}
		out = append(out, telemetry.ComponentHealth{
			Component: "mover/" + strconv.Itoa(len(out)-len(e.stages)),
			State:     "active",
			Healthy:   true,
			Detail:    detail,
		})
	}
	for _, rs := range e.RemoteStats() {
		out = append(out, telemetry.ComponentHealth{
			Component: "remote/" + rs.Stage,
			State:     rs.State,
			Healthy:   rs.State != "circuit_open" && rs.State != "closed",
			Restarts:  rs.Reconnects,
			Failures:  rs.DialFails,
			Detail: map[string]float64{
				"queued":        float64(rs.Queued),
				"inflight":      float64(rs.Inflight),
				"sent":          float64(rs.Sent),
				"acked":         float64(rs.Acked),
				"retries":       float64(rs.Retries),
				"window_stalls": float64(rs.WindowStalls),
				"ecn_echoes":    float64(rs.ECNEchoes),
			},
		})
	}
	return out
}
