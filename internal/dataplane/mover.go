package dataplane

// The sharded TX path: the paper's NF Manager dedicates TX threads that
// shuttle packets between NF rings; here Config.Movers spawns M mover
// goroutines, each owning a static partition of the stages' tx rings
// (stage i belongs to mover i mod M). Stage affinity keeps every tx ring
// single-consumer while the engine runs, and preserves per-flow FIFO: a
// flow's packets traverse a fixed stage sequence, each hop's ring is FIFO,
// and every ring on the path has exactly one drainer.
//
// Idle movers descend an adaptive spin → yield → park ladder so unused
// shards don't burn cores: a mover that sweeps dry respins a few times
// (work usually arrives within a batch quantum), then yields the OS thread
// via Gosched, then parks on its wake channel. Workers publishing into a
// parked mover's tx ring send a non-blocking wake token; a bounded park
// timeout backstops the (seqcst-ordered, therefore lost-wakeup-free)
// signal so a missed edge costs bounded latency, never liveness.
//
// Everything a mover touches per sweep is shard-local — scratch buffer,
// latency run-length state, counter accumulators flushed once per drained
// batch — so movers share nothing but the lock-free rings and the final
// atomic counter adds.

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"nfvnice/internal/ring"
)

// Idle-ladder tuning. Spin sweeps are nearly free (one atomic load per
// owned stage), the yield phase keeps single-CPU hosts live, and the park
// timeout bounds delivery latency if a wake edge is ever missed.
const (
	moverSpinSweeps  = 64
	moverYieldSweeps = 16
	moverParkMax     = time.Millisecond
)

// Mover run states (mover.state).
const (
	moverActive int32 = iota
	moverParked
)

// mover is one TX shard: a goroutine draining its partition of stage tx
// rings (and its bound inject lanes) toward next hops, the sink, or the
// output channel.
type mover struct {
	id     int
	stages []*stage  // static partition, fixed before Run spawns workers
	buf    []*Packet // sweep scratch, one MoverBatchMax slab per shard
	rc     *recycler // shard-local freelist batcher for in-flight drops
	// nstages mirrors len(stages) for MoverStats, which may race Run's
	// partition assignment.
	nstages atomic.Int32

	// lanes is the COW list of inject lanes bound to this shard (writers
	// serialize on Engine.laneMu; the sweep just loads the pointer), and
	// laneRR rotates the drain start index so one saturated lane cannot
	// starve the others. Owned by the mover goroutine except the pointer.
	lanes  atomic.Pointer[[]*injectLane]
	laneRR int

	// batch is the adaptive sweep batch: it tracks the drain-per-sweep
	// EWMA between Config.MoverBatchMin and MoverBatchMax, growing under
	// sustained backlog and shrinking when sweeps come up light. batch and
	// ewma are owned by the mover goroutine; curBatch mirrors batch for
	// MoverStats.
	batch    int
	ewma     float64
	curBatch atomic.Int32

	// Externally-touched hot fields get their own cache line: workers on
	// other cores hit state (maybeWake's load) and wakeCh on every publish
	// into a parked shard, and must not bounce the line carrying the
	// mover's own accumulators below.
	_     ring.Pad
	state atomic.Int32
	wakes atomic.Uint64 // worker-written: wake tokens delivered
	// wakeCh carries at most one pending wake token; workers publishing
	// into a parked mover's tx ring send into it without blocking.
	wakeCh chan struct{}

	// Mover-written telemetry: sweeps counts drain passes over the
	// partition, moved the packets those sweeps drained from tx rings,
	// laneMoved the packets drained from inject lanes, and parks the
	// descents into a blocking wait.
	_         ring.Pad
	sweeps    atomic.Uint64
	moved     atomic.Uint64
	laneMoved atomic.Uint64
	parks     atomic.Uint64
	_         ring.Pad
}

// MoverStats is a snapshot of one TX shard's counters.
type MoverStats struct {
	// Stages is how many stages' tx rings the shard owns; Lanes is how
	// many inject lanes are currently bound to it.
	Stages int
	Lanes  int
	// Batch is the shard's current adaptive sweep batch (between
	// Config.MoverBatchMin and MoverBatchMax).
	Batch int
	// Sweeps counts drain passes; Moved counts packets drained from tx
	// rings across all sweeps (Moved/Sweeps is the drain efficiency);
	// LaneMoved counts packets drained from inject lanes.
	Sweeps    uint64
	Moved     uint64
	LaneMoved uint64
	// Parks counts blocking idle waits; Parks/Sweeps is the park ratio.
	Parks uint64
	// Wakes counts enqueue-side wake signals delivered to this shard.
	Wakes uint64
}

// MoverStats snapshots every TX shard.
func (e *Engine) MoverStats() []MoverStats {
	out := make([]MoverStats, len(e.movers))
	for i, m := range e.movers {
		out[i] = MoverStats{
			Stages:    int(m.nstages.Load()),
			Lanes:     len(*m.lanes.Load()),
			Batch:     int(m.curBatch.Load()),
			Sweeps:    m.sweeps.Load(),
			Moved:     m.moved.Load(),
			LaneMoved: m.laneMoved.Load(),
			Parks:     m.parks.Load(),
			Wakes:     m.wakes.Load(),
		}
	}
	return out
}

// maybeWake delivers a wake token if the mover is parked (or descending
// into a park). One atomic load on the worker's publish path; the cap-1
// channel send never blocks.
func (m *mover) maybeWake() {
	if m.state.Load() == moverParked {
		select {
		case m.wakeCh <- struct{}{}:
			m.wakes.Add(1)
		default:
		}
	}
}

// pending reports whether any owned tx ring or bound inject lane holds
// packets — the post-park re-check that closes the wake race window.
func (m *mover) pending() bool {
	for _, s := range m.stages {
		if s.tx.Len() > 0 {
			return true
		}
	}
	for _, ln := range *m.lanes.Load() {
		if ln.ring.Len() > 0 || ln.closed.Load() {
			return true
		}
	}
	return false
}

// assignMovers statically partitions the stages across the engine's movers
// (stage i → mover i mod M) and records each stage's owner for the
// enqueue-side wake path. Called once by Run, before any worker spawns.
func (e *Engine) assignMovers() {
	for _, m := range e.movers {
		m.stages = m.stages[:0]
	}
	for i, s := range e.stages {
		m := e.movers[i%len(e.movers)]
		m.stages = append(m.stages, s)
		s.mov = m
	}
	for _, m := range e.movers {
		m.nstages.Store(int32(len(m.stages)))
	}
}

// adaptBatch retunes the shard's sweep batch from the drain-per-sweep
// EWMA: sustained sweeps that fill most of the batch double it (deeper
// amortization while backlogged) and sweeps that drain only a sliver halve
// it (smaller walks, fresher latency stamps, less scratch traffic while
// idle-ish), clamped to [min, max]. The EWMA's 1/8 gain makes the batch
// react within a few tens of sweeps — fast against the 1 ms control
// cadence, slow against per-sweep noise. Owned by the mover goroutine;
// curBatch mirrors the choice for MoverStats.
func (m *mover) adaptBatch(drained, min, max int) {
	m.ewma += (float64(drained) - m.ewma) / 8
	switch {
	case m.ewma > 0.75*float64(m.batch) && m.batch < max:
		m.batch *= 2
		if m.batch > max {
			m.batch = max
		}
		m.curBatch.Store(int32(m.batch))
	case m.ewma < 0.25*float64(m.batch) && m.batch > min:
		m.batch /= 2
		if m.batch < min {
			m.batch = min
		}
		m.curBatch.Store(int32(m.batch))
	}
}

// runMover is one TX shard's loop: drain the bound inject lanes, sweep the
// stage partition, adapt the sweep batch to the observed drain, and when a
// sweep comes up dry descend the spin → yield → park ladder. Exits when Run
// closes moverStop (movers keep draining through the cancel-to-join window
// so the graceful drain starts from near-empty tx rings).
func (e *Engine) runMover(m *mover) {
	defer e.moverWg.Done()
	timer := newGrantTimer()
	defer timer.Stop()
	idle := 0
	for {
		select {
		case <-e.moverStop:
			return
		default:
		}
		// Lanes first: lane packets feed entry rings, so the stage sweep
		// that follows can already forward what the lanes just delivered.
		// (drainLanes accounts laneMoved itself.)
		n := e.drainLanes(m)
		sm := e.moveStages(m.stages, m.buf[:m.batch], m.rc)
		n += sm
		m.sweeps.Add(1)
		m.adaptBatch(n, e.cfg.MoverBatchMin, e.cfg.MoverBatchMax)
		if sm > 0 {
			m.moved.Add(uint64(sm))
		}
		if n > 0 {
			idle = 0
			continue
		}
		idle++
		switch {
		case idle <= moverSpinSweeps:
			// Spin: re-sweep immediately; a worker mid-grant publishes
			// within a batch quantum.
		case idle <= moverSpinSweeps+moverYieldSweeps:
			runtime.Gosched()
		default:
			// Park. Publish the parked state before re-checking the rings:
			// a worker that enqueues after the re-check must observe the
			// state (seqcst total order) and deliver a wake token; the
			// bounded timeout backstops the edge either way.
			m.state.Store(moverParked)
			if m.pending() {
				m.state.Store(moverActive)
				idle = 0
				continue
			}
			m.parks.Add(1)
			timer.Reset(moverParkMax)
			select {
			case <-m.wakeCh:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			case <-e.moverStop:
				m.state.Store(moverActive)
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				return
			}
			m.state.Store(moverActive)
			// Skip straight to the yield phase: one wake usually means one
			// batch, not a sustained burst.
			idle = moverSpinSweeps
		}
	}
}

// controlLoop is the decoupled control plane: the engine clock, the
// watermark backpressure state machine (every Config.BackpressurePeriod,
// the paper's 1 ms load-estimation cadence), stage supervision, and the
// rate-cost weight controller (every Config.WeightPeriod, the paper's
// 10 ms weight push). It runs on Run's own goroutine so the hot path —
// schedulers granting, workers processing, movers shuttling — never
// carries control work.
func (e *Engine) controlLoop(ctx context.Context) {
	tick := e.cfg.BackpressurePeriod
	if tick > controlTickMax {
		tick = controlTickMax
	}
	if e.cfg.WeightPeriod > 0 && e.cfg.WeightPeriod < tick {
		tick = e.cfg.WeightPeriod
	}
	lastBP := time.Now()
	lastW := lastBP
	for ctx.Err() == nil {
		now := time.Now()
		e.coarseNanos.Store(now.UnixNano())
		if now.Sub(lastBP) >= e.cfg.BackpressurePeriod {
			// Fold remote ECN echoes into their observers first so the
			// backpressure pass sees fresh cross-host congestion signals.
			if len(e.remotes) > 0 {
				e.updateRemoteECN()
			}
			e.updateBackpressure()
			lastBP = now
		}
		// Flight recorder: completed spans drain here, off the hot path —
		// the histogram observes and the span sink run on this goroutine.
		e.drainSpool()
		e.supervise(now.UnixNano())
		if e.cfg.WeightPeriod > 0 && now.Sub(lastW) >= e.cfg.WeightPeriod {
			e.updateWeights()
			lastW = now
		}
		time.Sleep(tick)
	}
}

// controlTickMax bounds the control loop's sleep so the coarse engine
// clock stays fresh (and supervision reacts promptly) even when the
// backpressure cadence is long.
const controlTickMax = 100 * time.Microsecond
