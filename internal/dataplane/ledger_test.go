package dataplane

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestLedgerCleanRunCloses: with no faults and paced injection, the ledger
// identity holds exactly after Run returns and every class except Delivered
// is zero.
func TestLedgerCleanRunCloses(t *testing.T) {
	e := New(Config{RingSize: 256, WeightPeriod: 0})
	a := e.AddStage("a", 256, func(p *Packet) {})
	b := e.AddStage("b", 256, func(p *Packet) {})
	ch, err := e.AddChain(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	e.SetSink(func(ps []*Packet) { e.PutPacketBatch(ps) })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	const total = 5000
	for sent := 0; sent < total; {
		p := e.GetPacket()
		p.FlowID = 0
		if e.Inject(p) {
			sent++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.LedgerSnapshot().Residual() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("residual never settled: %+v", e.LedgerSnapshot())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	l := e.LedgerSnapshot()
	if l.Residual() != 0 {
		t.Fatalf("residual %d after Run, ledger %+v", l.Residual(), l)
	}
	if l.Delivered != total || l.Injected != total {
		t.Fatalf("delivered %d injected %d, want %d", l.Delivered, l.Injected, total)
	}
	if l.MidRingDrops != 0 || l.ShutdownDrops != 0 || l.FaultDrops != 0 {
		t.Fatalf("unexpected drop classes in clean run: %+v", l)
	}
	if got := l.Accounted(); got != l.Injected {
		t.Fatalf("Accounted %d != Injected %d", got, l.Injected)
	}
}

// TestLedgerMidRingDrops: a slow second stage behind a tiny ring, with the
// watermarks effectively disabled, forces mover-side mid-chain drops. They
// must land in MidRingDrops (and RingDrops), and the identity must still
// close exactly once the pipeline quiesces.
func TestLedgerMidRingDrops(t *testing.T) {
	e := New(Config{
		RingSize: 64, BatchSize: 8, WeightPeriod: 0,
		// HighFrac 1.0 keeps backpressure from throttling the chain before
		// the mid-chain ring overflows.
		HighFrac: 1.0, LowFrac: 0.9,
		DrainTimeout: 2 * time.Second,
	})
	a := e.AddStage("a", 64, func(p *Packet) {})
	b := e.AddStage("b", 64, func(p *Packet) { spin(50 * time.Microsecond) })
	ch, err := e.AddChain(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e.MapFlow(0, ch)
	e.SetSink(func(ps []*Packet) { e.PutPacketBatch(ps) })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	const total = 20000
	for sent := 0; sent < total; {
		p := e.GetPacket()
		p.FlowID = 0
		if e.Inject(p) {
			sent++
		} else {
			e.PutPacket(p)
			runtime.Gosched()
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for e.LedgerSnapshot().Residual() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("residual never settled: %+v", e.LedgerSnapshot())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	l := e.LedgerSnapshot()
	if l.Residual() != 0 {
		t.Fatalf("residual %d, ledger %+v", l.Residual(), l)
	}
	if l.MidRingDrops == 0 {
		t.Fatalf("expected mid-chain ring drops, ledger %+v", l)
	}
	if l.MidRingDrops > l.RingDrops {
		t.Fatalf("MidRingDrops %d exceeds RingDrops %d", l.MidRingDrops, l.RingDrops)
	}
	if l.Delivered+l.MidRingDrops != total {
		t.Fatalf("delivered %d + midDrops %d != injected %d",
			l.Delivered, l.MidRingDrops, total)
	}
}

// TestLedgerAccessors covers the topology/queue snapshot helpers the
// hypothesis checkers use.
func TestLedgerAccessors(t *testing.T) {
	e := New(Config{RingSize: 64, WeightPeriod: 0})
	a := e.AddStage("a", 64, func(p *Packet) {})
	b := e.AddStage("b", 64, func(p *Packet) {})
	c := e.AddStage("c", 64, func(p *Packet) {})
	ch1, _ := e.AddChain(a, b)
	ch2, _ := e.AddChain(c)

	if n := e.NumChains(); n != 2 {
		t.Fatalf("NumChains %d, want 2", n)
	}
	got := e.ChainStages(ch1)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("ChainStages(%d) = %v, want [%d %d]", ch1, got, a, b)
	}
	got[0] = 999 // must be a copy
	if e.ChainStages(ch1)[0] != a {
		t.Fatal("ChainStages returned a live slice")
	}
	if e.ChainStages(-1) != nil || e.ChainStages(99) != nil {
		t.Fatal("out-of-range chain id not rejected")
	}
	if e.ChainStages(ch2)[0] != c {
		t.Fatalf("ChainStages(%d) wrong", ch2)
	}

	depths := e.QueueDepths(nil)
	if len(depths) != 3 {
		t.Fatalf("QueueDepths len %d, want 3", len(depths))
	}
	for i, d := range depths {
		if d != 0 {
			t.Fatalf("stage %d depth %d before Run, want 0", i, d)
		}
	}
	// Reuse path: a big enough scratch must be reused, not reallocated.
	scratch := make([]int, 8)
	out := e.QueueDepths(scratch)
	if &out[0] != &scratch[0] {
		t.Fatal("QueueDepths reallocated despite sufficient capacity")
	}
}
