package dataplane

import (
	"runtime"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"defaults", DefaultConfig(), true},
		{"negative cores", Config{Cores: -1}, false},
		{"negative movers", Config{Movers: -2}, false},
		{"negative ring", Config{RingSize: -1}, false},
		{"negative batch", Config{BatchSize: -8}, false},
		{"negative backpressure period", Config{BackpressurePeriod: -time.Millisecond}, false},
		{"negative weight period", Config{WeightPeriod: -time.Second}, false},
		{"high frac above one", Config{HighFrac: 1.5}, false},
		{"negative low frac", Config{LowFrac: -0.1}, false},
		{"low above high", Config{HighFrac: 0.5, LowFrac: 0.7}, false},
		{"high frac one", Config{HighFrac: 1.0, LowFrac: 0.5}, true},
		{"paper cadences", Config{BackpressurePeriod: time.Millisecond,
			WeightPeriod: 10 * time.Millisecond}, true},
		{"negative batch min", Config{MoverBatchMin: -1}, false},
		{"negative batch max", Config{MoverBatchMax: -1}, false},
		{"batch min above max", Config{MoverBatchMin: 64, MoverBatchMax: 16}, false},
		{"batch window", Config{MoverBatchMin: 16, MoverBatchMax: 128}, true},
		// Negative values with documented meanings must stay legal.
		{"negative grant timeout", Config{GrantTimeout: -1}, true},
		{"negative drain timeout", Config{DrainTimeout: -1}, true},
		{"unlimited restarts", Config{MaxRestarts: -1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a negative Movers count")
		}
	}()
	New(Config{Movers: -1})
}

// TestConfigCadenceDefaults pins the paper's control-plane cadences: 1 ms
// backpressure/load estimation, 10 ms weight push.
func TestConfigCadenceDefaults(t *testing.T) {
	def := DefaultConfig()
	if def.BackpressurePeriod != time.Millisecond {
		t.Errorf("default BackpressurePeriod = %v, want 1ms", def.BackpressurePeriod)
	}
	if def.WeightPeriod != 10*time.Millisecond {
		t.Errorf("default WeightPeriod = %v, want 10ms", def.WeightPeriod)
	}
	e := New(Config{})
	if e.cfg.BackpressurePeriod != time.Millisecond {
		t.Errorf("resolved BackpressurePeriod = %v, want 1ms", e.cfg.BackpressurePeriod)
	}
}

// TestMoversDefault pins the Movers auto-default: min(Cores, GOMAXPROCS),
// never below 1.
func TestMoversDefault(t *testing.T) {
	maxp := runtime.GOMAXPROCS(0)
	want := func(cores int) int {
		m := cores
		if m > maxp {
			m = maxp
		}
		if m < 1 {
			m = 1
		}
		return m
	}
	for _, cores := range []int{1, 2, 8} {
		e := New(Config{Cores: cores})
		if got := len(e.movers); got != want(cores) {
			t.Errorf("Cores=%d: movers = %d, want %d", cores, got, want(cores))
		}
	}
	// An explicit Movers wins over the derived default.
	e := New(Config{Cores: 1, Movers: 3})
	if len(e.movers) != 3 {
		t.Errorf("explicit Movers=3: movers = %d", len(e.movers))
	}
	if len(e.MoverStats()) != 3 {
		t.Errorf("MoverStats length = %d, want 3", len(e.MoverStats()))
	}
}
