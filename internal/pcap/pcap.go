// Package pcap reads and writes the classic libpcap capture format
// (tcpdump/Wireshark compatible), so traffic flowing through the dataplane
// or synthesized by internal/proto can be captured and replayed. Only
// LINKTYPE_ETHERNET and microsecond timestamps are supported — the variant
// every tool writes by default.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// File format constants.
const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeEthernet is LINKTYPE_ETHERNET (DLT_EN10MB).
	LinkTypeEthernet = 1
	fileHeaderLen    = 24
	recordHeaderLen  = 16
)

// Common errors.
var (
	ErrBadMagic  = errors.New("pcap: bad magic (not a microsecond little-endian pcap)")
	ErrTruncated = errors.New("pcap: truncated record")
)

// Packet is one captured record.
type Packet struct {
	Time time.Time
	// Data is the captured bytes; Orig is the original wire length
	// (>= len(Data) when the capture was truncated by a snap length).
	Data []byte
	Orig int
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen uint32
	started bool

	// Packets counts records written.
	Packets uint64
}

// NewWriter returns a writer with the given snap length (0 = 65535).
func NewWriter(w io.Writer, snapLen int) *Writer {
	if snapLen <= 0 {
		snapLen = 65535
	}
	return &Writer{w: w, snapLen: uint32(snapLen)}
}

func (w *Writer) writeHeader() error {
	var h [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], magicMicros)
	binary.LittleEndian.PutUint16(h[4:6], versionMajor)
	binary.LittleEndian.PutUint16(h[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(h[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(h[20:24], LinkTypeEthernet)
	_, err := w.w.Write(h[:])
	return err
}

// WritePacket appends one record, truncating to the snap length.
func (w *Writer) WritePacket(t time.Time, frame []byte) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	capLen := len(frame)
	if capLen > int(w.snapLen) {
		capLen = int(w.snapLen)
	}
	var h [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(t.Unix()))
	binary.LittleEndian.PutUint32(h[4:8], uint32(t.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(h[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(frame)))
	if _, err := w.w.Write(h[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return err
	}
	w.Packets++
	return nil
}

// Flush writes the file header even if no packets were captured (an empty
// but valid pcap).
func (w *Writer) Flush() error {
	if !w.started {
		w.started = true
		return w.writeHeader()
	}
	return nil
}

// Reader consumes a pcap stream.
type Reader struct {
	r       io.Reader
	snapLen uint32
	started bool
}

// NewReader returns a reader over r; the header is validated on first Next.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// SnapLen reports the stream's snap length (valid after the first Next).
func (r *Reader) SnapLen() int { return int(r.snapLen) }

func (r *Reader) readHeader() error {
	var h [fileHeaderLen]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(h[0:4]) != magicMicros {
		return ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(h[20:24]); lt != LinkTypeEthernet {
		return fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	r.snapLen = binary.LittleEndian.Uint32(h[16:20])
	return nil
}

// Next returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Next() (Packet, error) {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return Packet{}, err
		}
		r.started = true
	}
	var h [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, ErrTruncated
	}
	sec := binary.LittleEndian.Uint32(h[0:4])
	usec := binary.LittleEndian.Uint32(h[4:8])
	capLen := binary.LittleEndian.Uint32(h[8:12])
	origLen := binary.LittleEndian.Uint32(h[12:16])
	if r.snapLen != 0 && capLen > r.snapLen {
		return Packet{}, fmt.Errorf("pcap: record capLen %d exceeds snaplen %d", capLen, r.snapLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, ErrTruncated
	}
	return Packet{
		Time: time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data: data,
		Orig: int(origLen),
	}, nil
}

// ReadAll drains the stream into memory.
func ReadAll(r io.Reader) ([]Packet, error) {
	pr := NewReader(r)
	var out []Packet
	for {
		p, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
