package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"

	"nfvnice/internal/proto"
)

func frame(payload string) []byte {
	return proto.BuildUDP(
		proto.MAC{2, 0, 0, 0, 0, 1}, proto.MAC{2, 0, 0, 0, 0, 2},
		proto.Addr4(10, 0, 0, 1), proto.Addr4(10, 0, 0, 2),
		1234, 80, []byte(payload))
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	t0 := time.Unix(1700000000, 123456000).UTC()
	frames := [][]byte{frame("one"), frame("two"), frame("three")}
	for i, f := range frames {
		if err := w.WritePacket(t0.Add(time.Duration(i)*time.Millisecond), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 3 {
		t.Fatalf("Packets = %d", w.Packets)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d records", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, frames[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if p.Orig != len(frames[i]) {
			t.Fatalf("record %d orig = %d", i, p.Orig)
		}
		want := t0.Add(time.Duration(i) * time.Millisecond)
		if !p.Time.Equal(want) {
			t.Fatalf("record %d time %v, want %v", i, p.Time, want)
		}
	}
}

func TestGoldenHeader(t *testing.T) {
	// The file header must match the canonical little-endian microsecond
	// pcap layout byte for byte.
	var buf bytes.Buffer
	w := NewWriter(&buf, 65535)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()
	if len(h) != 24 {
		t.Fatalf("header length %d", len(h))
	}
	if binary.LittleEndian.Uint32(h[0:4]) != 0xa1b2c3d4 {
		t.Fatal("magic wrong")
	}
	if h[4] != 2 || h[6] != 4 {
		t.Fatal("version wrong")
	}
	if binary.LittleEndian.Uint32(h[16:20]) != 65535 {
		t.Fatal("snaplen wrong")
	}
	if binary.LittleEndian.Uint32(h[20:24]) != 1 {
		t.Fatal("linktype wrong")
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 60)
	big := frame("a very long payload that exceeds the snap length for sure......")
	w.WritePacket(time.Unix(0, 0), big)
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Data) != 60 {
		t.Fatalf("capLen = %d, want 60", len(got[0].Data))
	}
	if got[0].Orig != len(big) {
		t.Fatalf("orig = %d, want %d", got[0].Orig, len(big))
	}
}

func TestBadMagic(t *testing.T) {
	data := make([]byte, 24)
	if _, err := ReadAll(bytes.NewReader(data)); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	w.WritePacket(time.Unix(0, 0), frame("x"))
	cut := buf.Bytes()[:buf.Len()-3]
	_, err := ReadAll(bytes.NewReader(cut))
	if err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	w.Flush()
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty pcap: %v, %d records", err, len(got))
	}
}

func TestReaderEOFOnEmptyInput(t *testing.T) {
	_, err := NewReader(bytes.NewReader(nil)).Next()
	if err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		for i, p := range payloads {
			if len(p) > 1400 {
				p = p[:1400]
			}
			fr := frame(string(p))
			if err := w.WritePacket(time.Unix(int64(i), 0), fr); err != nil {
				return false
			}
		}
		w.Flush()
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		return len(got) == len(payloads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodableByProto(t *testing.T) {
	// Frames surviving the pcap round trip must still decode.
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	w.WritePacket(time.Unix(1, 0), frame("hello"))
	got, _ := ReadAll(&buf)
	f, err := proto.Decode(got[0].Data)
	if err != nil || !f.HasUDP || string(f.Payload) != "hello" {
		t.Fatalf("decode after round trip failed: %v", err)
	}
}
