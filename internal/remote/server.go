package remote

import (
	"net"
	"sync"
	"sync/atomic"
)

// ServerConfig parameterizes the accept side of a remote link.
type ServerConfig struct {
	// OnBatch receives each DATA frame's packets exactly once, in per-session
	// order. May be called concurrently for different sessions.
	OnBatch func(ps []Pkt)
	// ECN, when non-nil, is sampled once per ack: true sets the congestion
	// mark so the sender throttles at the origin (paper §3.4). Wire an
	// engine's CongestionSignal here.
	ECN func() bool
}

// ServerStats snapshots the accept-side counters.
type ServerStats struct {
	Received  uint64 // packets delivered exactly once to OnBatch
	Dups      uint64 // packets discarded as retransmitted duplicates
	Frames    uint64 // DATA frames processed (incl. duplicates)
	BadFrames uint64 // corrupt or protocol-violating frames (connection fatal)
	Conns     uint64 // connections accepted
}

// session is one sender's sequence space. It survives the sender's
// connections: a client reconnecting with the same HELLO session resumes
// where its acks left off, and retransmitted frames below next are dups.
type session struct {
	mu   sync.Mutex
	next uint64
}

// Server accepts remote-link connections and delivers framed packets
// exactly once per session.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu       sync.Mutex
	sessions map[uint64]*session
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	received, dups, frames, badFrames, connsN atomic.Uint64
}

// Listen binds addr ("host:port"; use ":0" for an ephemeral port) and starts
// accepting.
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, cfg), nil
}

// Serve starts accepting on an existing listener (ownership transfers).
func Serve(ln net.Listener, cfg ServerConfig) *Server {
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		sessions: make(map[uint64]*session),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr reports the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the accept-side counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Received:  s.received.Load(),
		Dups:      s.dups.Load(),
		Frames:    s.frames.Load(),
		BadFrames: s.badFrames.Load(),
		Conns:     s.connsN.Load(),
	}
}

// Close stops accepting, drops every open connection, and waits for the
// handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsN.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := newReader(conn)
	typ, payload, err := readFrame(br)
	if err != nil || typ != typeHello {
		s.badFrames.Add(1)
		return
	}
	sid, err := decodeHello(payload)
	if err != nil {
		s.badFrames.Add(1)
		return
	}
	sess := s.session(sid)
	// Ack the current position up front: a resuming sender trims everything
	// the previous connection already delivered.
	sess.mu.Lock()
	pos := sess.next
	sess.mu.Unlock()
	if writeRaw(conn, encodeAck(pos, s.ecnFlag())) != nil {
		return
	}
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if err == ErrCorrupt {
				// A mangled frame is unrecoverable mid-stream: kill the
				// connection and let reconnect + retransmit repair it.
				s.badFrames.Add(1)
			}
			return
		}
		if typ != typeData {
			s.badFrames.Add(1)
			return
		}
		seq, pkts, err := decodeData(payload)
		if err != nil {
			s.badFrames.Add(1)
			return
		}
		s.frames.Add(1)
		var ackNext uint64
		sess.mu.Lock()
		switch {
		case seq == sess.next:
			sess.next++
			ackNext = sess.next
			s.received.Add(uint64(len(pkts)))
			if s.cfg.OnBatch != nil {
				// Delivered under the session lock so a racing old/new
				// connection pair cannot reorder a session's batches.
				s.cfg.OnBatch(pkts)
			}
			sess.mu.Unlock()
		case seq < sess.next:
			ackNext = sess.next
			sess.mu.Unlock()
			s.dups.Add(uint64(len(pkts)))
		default:
			// A gap over an in-order transport is a protocol violation.
			sess.mu.Unlock()
			s.badFrames.Add(1)
			return
		}
		if writeRaw(conn, encodeAck(ackNext, s.ecnFlag())) != nil {
			return
		}
	}
}

func (s *Server) ecnFlag() byte {
	if s.cfg.ECN != nil && s.cfg.ECN() {
		return ackFlagECN
	}
	return 0
}

func (s *Server) session(id uint64) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		sess = &session{}
		s.sessions[id] = sess
	}
	return sess
}
