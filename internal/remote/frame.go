// Package remote is the wire transport for cross-host service chains: a
// dial-side Client that serializes packet batches into length-prefixed TCP
// frames under a bounded in-flight credit window, and an accept-side Server
// that delivers them exactly once and acknowledges cumulatively, echoing a
// local-congestion (ECN) bit back to the sender.
//
// The protocol is deliberately small. Every frame is
//
//	u32 bodyLen | body
//	body := u8 type | payload | u32 crc32c(type|payload)
//
// with three frame types:
//
//	HELLO{u64 session}              client → server, once per connection
//	DATA {u64 seq, u32 n, n×Pkt}    client → server; Pkt = u64 flow | u32 size
//	ACK  {u64 nextSeq, u8 flags}    server → client; flags bit0 = ECN mark
//
// DATA frames carry consecutive sequence numbers within a session. ACKs are
// cumulative ("everything below nextSeq arrived"), so a sender resuming after
// a reconnect retransmits its whole unacked window and the receiver's
// per-session dedup discards what it already delivered — at-least-once on the
// wire, exactly-once in the delivery accounting. A corrupt frame (CRC
// mismatch) kills the connection rather than guessing: the client's
// reconnect + retransmit path is the error recovery.
package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
)

// Pkt is the unit carried across the wire: the packet descriptor fields that
// survive serialization. Payload bytes are out of scope for this repo's
// descriptor-only dataplane (as in the simulator, packets are metadata).
type Pkt struct {
	Flow int64
	Size int32
}

const (
	typeHello byte = 1
	typeData  byte = 2
	typeAck   byte = 3

	// ackFlagECN echoes the receiver's congestion state (queue above the
	// high watermark) back to the sender — the frame-ack analogue of the
	// paper's §3.4 ECN marking.
	ackFlagECN byte = 1 << 0

	pktWire = 12 // u64 flow + u32 size

	// maxFrameBody bounds a frame body so a corrupt length prefix cannot
	// drive an arbitrary-size allocation.
	maxFrameBody = 1 << 20
)

var (
	// ErrCorrupt reports a frame whose CRC did not match its contents.
	ErrCorrupt = errors.New("remote: corrupt frame (crc mismatch)")
	// ErrProtocol reports a structurally invalid frame or sequence.
	ErrProtocol = errors.New("remote: protocol violation")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps a body (type byte already first) with the length prefix
// and trailing CRC, appending to dst.
func appendFrame(dst, body []byte) []byte {
	crc := crc32.Checksum(body, crcTable)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)+4))
	dst = append(dst, body...)
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return dst
}

func encodeHello(session uint64) []byte {
	body := make([]byte, 0, 9)
	body = append(body, typeHello)
	body = binary.BigEndian.AppendUint64(body, session)
	return appendFrame(nil, body)
}

func encodeData(seq uint64, pkts []Pkt) []byte {
	body := make([]byte, 0, 13+len(pkts)*pktWire)
	body = append(body, typeData)
	body = binary.BigEndian.AppendUint64(body, seq)
	body = binary.BigEndian.AppendUint32(body, uint32(len(pkts)))
	for _, p := range pkts {
		body = binary.BigEndian.AppendUint64(body, uint64(p.Flow))
		body = binary.BigEndian.AppendUint32(body, uint32(p.Size))
	}
	return appendFrame(nil, body)
}

func encodeAck(next uint64, flags byte) []byte {
	body := make([]byte, 0, 10)
	body = append(body, typeAck)
	body = binary.BigEndian.AppendUint64(body, next)
	body = append(body, flags)
	return appendFrame(nil, body)
}

// readFrame reads one frame off the stream and verifies its CRC, returning
// the type byte and payload (CRC stripped). io errors pass through; framing
// errors are ErrCorrupt/ErrProtocol.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 5 || n > maxFrameBody {
		return 0, nil, fmt.Errorf("%w: frame length %d", ErrProtocol, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, nil, err
	}
	body, crcB := buf[:n-4], buf[n-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(crcB) {
		return 0, nil, ErrCorrupt
	}
	return body[0], body[1:], nil
}

func decodeHello(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: hello payload %d bytes", ErrProtocol, len(payload))
	}
	return binary.BigEndian.Uint64(payload), nil
}

func decodeData(payload []byte) (uint64, []Pkt, error) {
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("%w: data payload %d bytes", ErrProtocol, len(payload))
	}
	seq := binary.BigEndian.Uint64(payload)
	n := int(binary.BigEndian.Uint32(payload[8:]))
	if len(payload) != 12+n*pktWire {
		return 0, nil, fmt.Errorf("%w: data count %d vs payload %d", ErrProtocol, n, len(payload))
	}
	pkts := make([]Pkt, n)
	off := 12
	for i := range pkts {
		pkts[i].Flow = int64(binary.BigEndian.Uint64(payload[off:]))
		pkts[i].Size = int32(binary.BigEndian.Uint32(payload[off+8:]))
		off += pktWire
	}
	return seq, pkts, nil
}

func decodeAck(payload []byte) (uint64, byte, error) {
	if len(payload) != 9 {
		return 0, 0, fmt.Errorf("%w: ack payload %d bytes", ErrProtocol, len(payload))
	}
	return binary.BigEndian.Uint64(payload), payload[8], nil
}

// writeRaw writes an already-encoded frame to the connection.
func writeRaw(conn net.Conn, enc []byte) error {
	_, err := conn.Write(enc)
	return err
}

func newReader(conn net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(conn, 64<<10)
}
