package remote

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	pkts := []Pkt{{Flow: 7, Size: 1500}, {Flow: -1, Size: 64}, {Flow: 1 << 40, Size: 0}}
	var stream bytes.Buffer
	stream.Write(encodeHello(0xdeadbeef))
	stream.Write(encodeData(42, pkts))
	stream.Write(encodeAck(43, ackFlagECN))

	br := bufio.NewReader(&stream)

	typ, payload, err := readFrame(br)
	if err != nil || typ != typeHello {
		t.Fatalf("hello: typ=%d err=%v", typ, err)
	}
	sid, err := decodeHello(payload)
	if err != nil || sid != 0xdeadbeef {
		t.Fatalf("hello decode: sid=%#x err=%v", sid, err)
	}

	typ, payload, err = readFrame(br)
	if err != nil || typ != typeData {
		t.Fatalf("data: typ=%d err=%v", typ, err)
	}
	seq, got, err := decodeData(payload)
	if err != nil || seq != 42 {
		t.Fatalf("data decode: seq=%d err=%v", seq, err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("data decode: %d pkts, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i] != pkts[i] {
			t.Fatalf("pkt %d: got %+v want %+v", i, got[i], pkts[i])
		}
	}

	typ, payload, err = readFrame(br)
	if err != nil || typ != typeAck {
		t.Fatalf("ack: typ=%d err=%v", typ, err)
	}
	next, flags, err := decodeAck(payload)
	if err != nil || next != 43 || flags&ackFlagECN == 0 {
		t.Fatalf("ack decode: next=%d flags=%#x err=%v", next, flags, err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	enc := encodeData(9, []Pkt{{Flow: 1, Size: 100}})
	// Flip a payload bit past the length prefix.
	enc[7] ^= 0x10
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(enc)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestFrameLengthBounds(t *testing.T) {
	// An absurd length prefix must be rejected before any allocation.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(bad)))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}
