package remote_test

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"nfvnice/internal/faults"
	"nfvnice/internal/remote"
)

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// offerAll pushes every packet, retrying refused tails (backpressure).
func offerAll(t *testing.T, c *remote.Client, ps []remote.Pkt) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(ps) > 0 {
		n := c.Offer(ps)
		ps = ps[n:]
		if len(ps) > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("timed out offering: %d packets refused", len(ps))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestClientServerDelivery(t *testing.T) {
	var got atomic.Uint64
	var flowSum atomic.Int64
	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: func(ps []remote.Pkt) {
			got.Add(uint64(len(ps)))
			for _, p := range ps {
				flowSum.Add(p.Flow)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var delivered atomic.Uint64
	cl, err := remote.New(remote.Config{
		Addr:        srv.Addr(),
		Window:      4,
		FrameBatch:  8,
		OnDelivered: func(n int) { delivered.Add(uint64(n)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()

	const N = 1000
	want := int64(0)
	ps := make([]remote.Pkt, N)
	for i := range ps {
		ps[i] = remote.Pkt{Flow: int64(i % 17), Size: int32(64 + i%1400)}
		want += ps[i].Flow
	}
	offerAll(t, cl, ps)
	waitUntil(t, 5*time.Second, "all packets acked", func() bool { return delivered.Load() == N })
	cl.Close()

	if got.Load() != N {
		t.Fatalf("server received %d packets, want %d", got.Load(), N)
	}
	if flowSum.Load() != want {
		t.Fatalf("flow checksum %d, want %d", flowSum.Load(), want)
	}
	st := cl.Stats()
	if st.Acked != N {
		t.Fatalf("client acked %d, want %d", st.Acked, N)
	}
	ss := srv.Stats()
	if ss.Received != N || ss.Dups != 0 {
		t.Fatalf("server stats %+v", ss)
	}
}

// TestReconnectDedupExactlyOnce kills the connection every 25 writes; the
// client must reconnect, retransmit its unacked window, and the server's
// session dedup must keep delivery exactly-once.
func TestReconnectDedupExactlyOnce(t *testing.T) {
	var got atomic.Uint64
	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: func(ps []remote.Pkt) { got.Add(uint64(len(ps))) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	wire := faults.NewWire(7, faults.ConnDropOn(faults.EveryNth(25)))
	var delivered, dropped atomic.Uint64
	cl, err := remote.New(remote.Config{
		Addr:        srv.Addr(),
		Window:      4,
		FrameBatch:  4,
		BackoffMin:  200 * time.Microsecond,
		BackoffMax:  2 * time.Millisecond,
		MaxDials:    -1,
		Seed:        7,
		Dial:        wire.Dial(nil),
		OnDelivered: func(n int) { delivered.Add(uint64(n)) },
		OnDropped:   func(n int) { dropped.Add(uint64(n)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()

	const N = 2000
	ps := make([]remote.Pkt, N)
	for i := range ps {
		ps[i] = remote.Pkt{Flow: int64(i), Size: 64}
	}
	offerAll(t, cl, ps)
	waitUntil(t, 20*time.Second, "all packets acked through link kills", func() bool {
		return delivered.Load() == N
	})
	cl.Close()

	if got.Load() != N {
		t.Fatalf("server delivered %d packets, want exactly %d", got.Load(), N)
	}
	if dropped.Load() != 0 {
		t.Fatalf("dropped %d packets on a healed link", dropped.Load())
	}
	st := cl.Stats()
	if st.Reconnects < 3 {
		t.Fatalf("want >= 3 reconnects (kill/heal cycles), got %d", st.Reconnects)
	}
	if st.Retries == 0 {
		t.Fatalf("want retransmitted frames after kills, got 0")
	}
	if w := wire.Stats(); w.Drops < 3 {
		t.Fatalf("wire injector killed %d conns, want >= 3", w.Drops)
	}
}

// TestCorruptFrameTriggersReconnect flips a bit in one frame; the server
// must reject it (CRC), kill the connection, and the retransmit path must
// still deliver every packet exactly once.
func TestCorruptFrameTriggersReconnect(t *testing.T) {
	var got atomic.Uint64
	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		OnBatch: func(ps []remote.Pkt) { got.Add(uint64(len(ps))) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Write 0 is the HELLO; corrupt a DATA frame a few writes in.
	wire := faults.NewWire(11, faults.CorruptOn(faults.OnceAt(5)))
	var delivered atomic.Uint64
	cl, err := remote.New(remote.Config{
		Addr:        srv.Addr(),
		Window:      2,
		FrameBatch:  4,
		BackoffMin:  200 * time.Microsecond,
		BackoffMax:  2 * time.Millisecond,
		MaxDials:    -1,
		Dial:        wire.Dial(nil),
		OnDelivered: func(n int) { delivered.Add(uint64(n)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()

	const N = 200
	ps := make([]remote.Pkt, N)
	for i := range ps {
		ps[i] = remote.Pkt{Flow: int64(i), Size: 64}
	}
	offerAll(t, cl, ps)
	waitUntil(t, 10*time.Second, "all packets acked through corruption", func() bool {
		return delivered.Load() == N
	})
	cl.Close()

	if got.Load() != N {
		t.Fatalf("server delivered %d packets, want exactly %d", got.Load(), N)
	}
	if srv.Stats().BadFrames == 0 {
		t.Fatalf("server never saw the corrupt frame")
	}
	if wire.Stats().Corruptions != 1 {
		t.Fatalf("wire corruptions = %d, want 1", wire.Stats().Corruptions)
	}
}

// TestWindowStallThrottles connects to a peer that accepts but never acks:
// the window runs out of credit, framing stalls, the send buffer fills, and
// Offer starts refusing — bounded memory under a stalled peer.
func TestWindowStallThrottles(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, read nothing, ack nothing
		}
	}()

	cl, err := remote.New(remote.Config{
		Addr:       ln.Addr().String(),
		Window:     2,
		FrameBatch: 4,
		SendBuf:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()

	ps := make([]remote.Pkt, 64)
	for i := range ps {
		ps[i] = remote.Pkt{Flow: int64(i), Size: 64}
	}
	accepted := 0
	waitUntil(t, 5*time.Second, "send buffer to fill and Offer to refuse", func() bool {
		accepted += cl.Offer(ps[:1])
		return cl.Space() == 0 && cl.Offer(ps[:1]) == 0
	})
	waitUntil(t, 5*time.Second, "a window stall episode", func() bool {
		return cl.Stats().WindowStalls >= 1
	})
	if fl := cl.Inflight(); fl != 2 {
		t.Fatalf("inflight frames = %d, want the full window of 2", fl)
	}

	// Close surrenders everything the peer never acked.
	cl.Close()
	st := cl.Stats()
	if st.Acked != 0 {
		t.Fatalf("acked %d with a mute peer", st.Acked)
	}
}

// TestCircuitOpen drives dials at a dead address until MaxDials opens the
// circuit; everything buffered is surrendered to OnDropped and further
// offers are refused.
func TestCircuitOpen(t *testing.T) {
	// Grab a port, then close it so dials fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var dropped atomic.Uint64
	states := make(chan remote.State, 64)
	cl, err := remote.New(remote.Config{
		Addr:       addr,
		BackoffMin: 100 * time.Microsecond,
		BackoffMax: time.Millisecond,
		MaxDials:   3,
		OnState: func(s remote.State, attempt int) {
			select {
			case states <- s:
			default:
			}
		},
		OnDropped: func(n int) { dropped.Add(uint64(n)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]remote.Pkt, 10)
	if n := cl.Offer(ps); n != 10 {
		t.Fatalf("pre-start offer accepted %d, want 10 (buffered)", n)
	}
	cl.Start()

	waitUntil(t, 5*time.Second, "circuit to open", func() bool {
		return cl.State() == remote.StateCircuitOpen
	})
	if dropped.Load() != 10 {
		t.Fatalf("dropped %d packets at circuit open, want 10", dropped.Load())
	}
	if cl.Offer(ps[:1]) != 0 || cl.Space() != 0 {
		t.Fatalf("circuit-open client still accepting offers")
	}
	if cl.Stats().DialFails < 3 {
		t.Fatalf("dial fails = %d, want >= 3", cl.Stats().DialFails)
	}
	cl.Close()
	if dropped.Load() != 10 {
		t.Fatalf("close double-counted drops: %d", dropped.Load())
	}
	sawReconnecting := false
	for {
		select {
		case s := <-states:
			if s == remote.StateReconnecting {
				sawReconnecting = true
			}
			continue
		default:
		}
		break
	}
	if !sawReconnecting {
		t.Fatalf("never observed StateReconnecting before circuit open")
	}
}

// TestECNEcho checks the congestion mark round trip: a server whose ECN
// sampler asserts congestion marks every ack, and the client surfaces it.
func TestECNEcho(t *testing.T) {
	var congested atomic.Bool
	congested.Store(true)
	srv, err := remote.Listen("127.0.0.1:0", remote.ServerConfig{
		ECN: func() bool { return congested.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var ecn atomic.Uint64
	var delivered atomic.Uint64
	cl, err := remote.New(remote.Config{
		Addr:        srv.Addr(),
		OnECN:       func() { ecn.Add(1) },
		OnDelivered: func(n int) { delivered.Add(uint64(n)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	defer cl.Close()

	ps := make([]remote.Pkt, 100)
	offerAll(t, cl, ps)
	waitUntil(t, 5*time.Second, "acked with ECN echoes", func() bool {
		return delivered.Load() == 100 && ecn.Load() > 0
	})
	if cl.Stats().ECNEchoes == 0 {
		t.Fatalf("no ECN echoes recorded")
	}
}

func TestClientConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  remote.Config
		ok   bool
	}{
		{"ok", remote.Config{Addr: "127.0.0.1:1"}, true},
		{"missing addr", remote.Config{}, false},
		{"negative window", remote.Config{Addr: "a:1", Window: -1}, false},
		{"negative frame batch", remote.Config{Addr: "a:1", FrameBatch: -4}, false},
		{"negative sendbuf", remote.Config{Addr: "a:1", SendBuf: -1}, false},
		{"backoff min > max", remote.Config{Addr: "a:1", BackoffMin: time.Second, BackoffMax: time.Millisecond}, false},
		{"negative backoff", remote.Config{Addr: "a:1", BackoffMin: -time.Second}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("invalid config accepted")
			}
		})
	}
}
