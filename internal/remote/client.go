package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// State is the client link state, driven by the connection lifecycle.
type State int32

const (
	// StateConnecting is the initial state before the first dial completes.
	StateConnecting State = iota
	// StateConnected means a connection is established and framing flows.
	StateConnected
	// StateReconnecting means the link is down and dials are being retried
	// under exponential backoff. Offers still buffer (the send queue absorbs
	// the outage) until the buffer fills.
	StateReconnecting
	// StateCircuitOpen means MaxDials consecutive dials failed: the link is
	// declared dead, buffered and unacked packets are surrendered to
	// OnDropped, and no further dials are attempted.
	StateCircuitOpen
	// StateClosed means Close was called.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateConnected:
		return "connected"
	case StateReconnecting:
		return "reconnecting"
	case StateCircuitOpen:
		return "circuit_open"
	case StateClosed:
		return "closed"
	}
	return "unknown"
}

// Config parameterizes a Client.
type Config struct {
	// Addr is the peer listener address ("host:port"). Required.
	Addr string
	// Window is the maximum number of unacknowledged DATA frames in flight
	// (default 32). When the window is full, framing stalls and the send
	// queue backs up — the credit that turns a slow peer into upstream
	// backpressure instead of unbounded memory.
	Window int
	// FrameBatch is the maximum packets per DATA frame (default 64).
	FrameBatch int
	// SendBuf is the packet capacity of the send queue ahead of framing
	// (default Window*FrameBatch). Offer rejects packets beyond it.
	SendBuf int
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 5ms, 1s).
	// Each failed dial doubles the delay, with ±20% seeded jitter.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxDials is the number of consecutive failed dials in one outage
	// before the circuit opens (default 16; negative = retry forever).
	MaxDials int
	// DialTimeout bounds each dial attempt (default 2s) when the default
	// dialer is used.
	DialTimeout time.Duration
	// Seed drives the backoff jitter; same seed, same retry schedule.
	Seed int64
	// Dial overrides the dialer — the hook where tests wrap the connection
	// in a wire-fault injector. Defaults to net.DialTimeout("tcp", ...).
	Dial func(addr string) (net.Conn, error)

	// OnState fires on every link state transition. For StateConnected,
	// attempt is 0 on the first-ever connect and otherwise the number of
	// dials the outage took; for StateReconnecting and StateCircuitOpen it
	// is the consecutive failed-dial count so far.
	OnState func(s State, attempt int)
	// OnDelivered fires with the packet count covered by each advancing
	// cumulative ack — confirmed received by the peer.
	OnDelivered func(n int)
	// OnDropped fires with the packet count surrendered when the link dies
	// for good (circuit open) or the client closes with traffic still
	// queued or unacked.
	OnDropped func(n int)
	// OnECN fires for each ack carrying the peer's congestion mark.
	OnECN func()
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Addr == "" {
		return errors.New("remote: Addr required")
	}
	if c.Window < 0 {
		return fmt.Errorf("remote: Window %d negative", c.Window)
	}
	if c.FrameBatch < 0 {
		return fmt.Errorf("remote: FrameBatch %d negative", c.FrameBatch)
	}
	if c.SendBuf < 0 {
		return fmt.Errorf("remote: SendBuf %d negative", c.SendBuf)
	}
	if c.BackoffMin < 0 || c.BackoffMax < 0 {
		return errors.New("remote: negative backoff")
	}
	if c.BackoffMin > 0 && c.BackoffMax > 0 && c.BackoffMin > c.BackoffMax {
		return fmt.Errorf("remote: BackoffMin %v > BackoffMax %v", c.BackoffMin, c.BackoffMax)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.FrameBatch == 0 {
		c.FrameBatch = 64
	}
	if c.SendBuf == 0 {
		c.SendBuf = c.Window * c.FrameBatch
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 5 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.BackoffMin > c.BackoffMax {
		c.BackoffMin = c.BackoffMax
	}
	if c.MaxDials == 0 {
		c.MaxDials = 16
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Dial == nil {
		to := c.DialTimeout
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, to)
		}
	}
	return c
}

// Stats is a snapshot of the client's transport counters. Packets counts
// except Retries, Reconnects, WindowStalls, ECNEchoes, Dials and DialFails,
// which count frames/events.
type Stats struct {
	Sent         uint64 // packets framed and written (incl. later-retried)
	Acked        uint64 // packets covered by cumulative acks
	Retries      uint64 // frames retransmitted after a reconnect
	Reconnects   uint64 // successful re-dials after a connection loss
	WindowStalls uint64 // stall episodes: send queue ready, window full
	ECNEchoes    uint64 // acks carrying the peer's congestion mark
	Dials        uint64 // dial attempts
	DialFails    uint64 // dial attempts that failed
}

type frameRec struct {
	seq   uint64
	npkts int
	enc   []byte
}

// Client is the dial side of a remote link. Create with New, start with
// Start, feed with Offer, and Close to surrender whatever the peer never
// acknowledged.
type Client struct {
	cfg     Config
	session uint64

	mu      sync.Mutex
	cond    *sync.Cond
	sendq   []Pkt // circular, capacity SendBuf
	head, n int
	unacked []*frameRec
	nextSeq uint64
	epoch   int
	conn    net.Conn
	closed  bool
	circuit bool
	stalled bool

	closedCh chan struct{}
	wg       sync.WaitGroup

	state    atomic.Int32
	queued   atomic.Int64 // mirrors n for lock-free Space
	inflight atomic.Int64 // mirrors len(unacked)

	sent, acked, retries, reconnects atomic.Uint64
	windowStalls, ecnEchoes          atomic.Uint64
	dials, dialFails                 atomic.Uint64
	rng                              *rand.Rand // run-goroutine only
}

var sessionCounter atomic.Uint64

// New builds an unstarted client. Call Start to begin dialing.
func New(cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Client{
		cfg: cfg,
		// Session identity must be unique per client instance so the peer
		// never merges two senders' sequence spaces.
		session:  uint64(time.Now().UnixNano()) ^ (sessionCounter.Add(1) << 48),
		sendq:    make([]Pkt, cfg.SendBuf),
		closedCh: make(chan struct{}),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	c.cond = sync.NewCond(&c.mu)
	c.state.Store(int32(StateConnecting))
	return c, nil
}

// Start launches the connection manager. Idempotence is the caller's job.
func (c *Client) Start() {
	c.wg.Add(1)
	go c.run()
}

// Offer enqueues up to len(ps) packets for transmission, returning how many
// were accepted. Never blocks: packets beyond the send buffer — or any
// packet once the circuit is open or the client closed — are refused.
func (c *Client) Offer(ps []Pkt) int {
	if len(ps) == 0 {
		return 0
	}
	c.mu.Lock()
	if c.closed || c.circuit {
		c.mu.Unlock()
		return 0
	}
	k := len(c.sendq) - c.n
	if k > len(ps) {
		k = len(ps)
	}
	for i := 0; i < k; i++ {
		c.sendq[(c.head+c.n+i)%len(c.sendq)] = ps[i]
	}
	c.n += k
	c.queued.Store(int64(c.n))
	c.mu.Unlock()
	if k > 0 {
		c.cond.Signal()
	}
	return k
}

// Space reports how many packets Offer would currently accept. Lock-free.
func (c *Client) Space() int {
	switch State(c.state.Load()) {
	case StateCircuitOpen, StateClosed:
		return 0
	}
	s := c.cfg.SendBuf - int(c.queued.Load())
	if s < 0 {
		s = 0
	}
	return s
}

// Queued reports packets buffered ahead of framing.
func (c *Client) Queued() int { return int(c.queued.Load()) }

// Inflight reports DATA frames sent but not yet acknowledged.
func (c *Client) Inflight() int { return int(c.inflight.Load()) }

// State reports the current link state.
func (c *Client) State() State { return State(c.state.Load()) }

// Stats snapshots the transport counters.
func (c *Client) Stats() Stats {
	return Stats{
		Sent:         c.sent.Load(),
		Acked:        c.acked.Load(),
		Retries:      c.retries.Load(),
		Reconnects:   c.reconnects.Load(),
		WindowStalls: c.windowStalls.Load(),
		ECNEchoes:    c.ecnEchoes.Load(),
		Dials:        c.dials.Load(),
		DialFails:    c.dialFails.Load(),
	}
}

// Close stops the client, waits for its goroutines, and surrenders whatever
// is still queued or unacknowledged to OnDropped — after Close returns, every
// offered packet has been reported exactly once as delivered or dropped
// (modulo the two-generals caveat: a packet whose final ack was lost with the
// link is reported dropped even though the peer delivered it).
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	close(c.closedCh)
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	c.cond.Broadcast()
	c.wg.Wait()
	c.mu.Lock()
	dropped := c.drainLocked()
	c.mu.Unlock()
	c.setState(StateClosed, 0)
	if dropped > 0 && c.cfg.OnDropped != nil {
		c.cfg.OnDropped(dropped)
	}
}

// drainLocked empties the send queue and unacked window, returning the
// packet count surrendered. Caller holds mu.
func (c *Client) drainLocked() int {
	dropped := c.n
	c.head, c.n = 0, 0
	for _, f := range c.unacked {
		dropped += f.npkts
	}
	c.unacked = nil
	c.queued.Store(0)
	c.inflight.Store(0)
	return dropped
}

func (c *Client) setState(s State, attempt int) {
	c.state.Store(int32(s))
	if c.cfg.OnState != nil {
		c.cfg.OnState(s, attempt)
	}
}

// jitter spreads a backoff delay ±20% so a fleet of links does not thunder
// back in lockstep (mirrors the supervisor's restartBackoff).
func (c *Client) jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*c.rng.Float64()))
}

// sleep waits d or until Close, reporting whether the client is still open.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closedCh:
		return false
	case <-t.C:
		return true
	}
}

// run is the connection manager: dial with backoff, handshake, then pump
// frames until the connection dies, and repeat. It exits on Close or when
// the circuit opens.
func (c *Client) run() {
	defer c.wg.Done()
	connectedBefore := false
	fails := 0 // consecutive failed dials this outage
	backoff := c.cfg.BackoffMin
	for {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		c.dials.Add(1)
		conn, err := c.connect()
		if err != nil {
			c.dialFails.Add(1)
			fails++
			if c.cfg.MaxDials >= 0 && fails >= c.cfg.MaxDials {
				c.openCircuit(fails)
				return
			}
			c.setState(StateReconnecting, fails)
			if !c.sleep(c.jitter(backoff)) {
				return
			}
			backoff *= 2
			if backoff > c.cfg.BackoffMax {
				backoff = c.cfg.BackoffMax
			}
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.epoch++
		ep := c.epoch
		c.conn = conn
		c.mu.Unlock()
		if connectedBefore {
			c.reconnects.Add(1)
			c.setState(StateConnected, fails+1)
		} else {
			connectedBefore = true
			c.setState(StateConnected, 0)
		}
		fails = 0
		backoff = c.cfg.BackoffMin
		var rwg sync.WaitGroup
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			c.readLoop(conn, ep)
		}()
		c.writeLoop(conn, ep)
		conn.Close()
		rwg.Wait()
		c.mu.Lock()
		if c.conn == conn {
			c.conn = nil
		}
		closed = c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		c.setState(StateReconnecting, 0)
	}
}

// connect dials and completes the HELLO handshake.
func (c *Client) connect() (net.Conn, error) {
	conn, err := c.cfg.Dial(c.cfg.Addr)
	if err != nil {
		return nil, err
	}
	if err := writeRaw(conn, encodeHello(c.session)); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// openCircuit declares the link dead: no more dials, and everything queued
// or in flight is surrendered to OnDropped.
func (c *Client) openCircuit(fails int) {
	c.mu.Lock()
	c.circuit = true
	dropped := c.drainLocked()
	c.mu.Unlock()
	c.setState(StateCircuitOpen, fails)
	if dropped > 0 && c.cfg.OnDropped != nil {
		c.cfg.OnDropped(dropped)
	}
}

// writeLoop retransmits the unacked window, then frames the send queue for
// as long as the window has credit. Returns when the connection dies (write
// error or the reader bumping the epoch) or the client closes.
func (c *Client) writeLoop(conn net.Conn, ep int) {
	// Retransmit first: the peer dedups by sequence, so resending is always
	// safe, and it is the only way frames swallowed by a dying connection
	// ever arrive.
	c.mu.Lock()
	resend := make([][]byte, len(c.unacked))
	for i, f := range c.unacked {
		resend[i] = f.enc
	}
	c.mu.Unlock()
	for _, enc := range resend {
		if writeRaw(conn, enc) != nil {
			return
		}
		c.retries.Add(1)
	}
	for {
		c.mu.Lock()
		for {
			if c.closed || c.epoch != ep {
				c.mu.Unlock()
				return
			}
			if c.n > 0 && len(c.unacked) < c.cfg.Window {
				break
			}
			if c.n > 0 && !c.stalled {
				// Queue has traffic but the window is out of credit: one
				// stall episode (cleared when an ack restores credit).
				c.stalled = true
				c.windowStalls.Add(1)
			}
			c.cond.Wait()
		}
		c.stalled = false
		k := c.n
		if k > c.cfg.FrameBatch {
			k = c.cfg.FrameBatch
		}
		pkts := make([]Pkt, k)
		for i := 0; i < k; i++ {
			pkts[i] = c.sendq[(c.head+i)%len(c.sendq)]
		}
		c.head = (c.head + k) % len(c.sendq)
		c.n -= k
		c.queued.Store(int64(c.n))
		seq := c.nextSeq
		c.nextSeq++
		fr := &frameRec{seq: seq, npkts: k, enc: encodeData(seq, pkts)}
		c.unacked = append(c.unacked, fr)
		c.inflight.Store(int64(len(c.unacked)))
		c.mu.Unlock()
		if writeRaw(conn, fr.enc) != nil {
			return
		}
		c.sent.Add(uint64(k))
	}
}

// readLoop consumes acks: advancing the cumulative ack releases window
// credit and reports delivery; the ECN flag is surfaced per ack. Any read or
// framing error kills the connection (bumping the epoch so the writer
// notices) and lets run reconnect.
func (c *Client) readLoop(conn net.Conn, ep int) {
	br := newReader(conn)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			break
		}
		if typ != typeAck {
			break // only acks flow client-ward
		}
		next, flags, err := decodeAck(payload)
		if err != nil {
			break
		}
		delivered := 0
		c.mu.Lock()
		for len(c.unacked) > 0 && c.unacked[0].seq < next {
			delivered += c.unacked[0].npkts
			c.unacked[0] = nil
			c.unacked = c.unacked[1:]
		}
		c.inflight.Store(int64(len(c.unacked)))
		c.mu.Unlock()
		if delivered > 0 {
			c.acked.Add(uint64(delivered))
			if c.cfg.OnDelivered != nil {
				c.cfg.OnDelivered(delivered)
			}
			c.cond.Broadcast()
		}
		if flags&ackFlagECN != 0 {
			c.ecnEchoes.Add(1)
			if c.cfg.OnECN != nil {
				c.cfg.OnECN()
			}
		}
	}
	conn.Close()
	c.mu.Lock()
	if c.epoch == ep {
		c.epoch++
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}
