package chain

import "testing"

func TestAddAndLookup(t *testing.T) {
	r := NewRegistry()
	c1 := r.MustAdd("fw-nat-mon", 0, 1, 2)
	c2 := r.MustAdd("fw-dpi", 0, 3)
	if c1.ID != 0 || c2.ID != 1 {
		t.Fatalf("ids: %d %d", c1.ID, c2.ID)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Get(0) != c1 || r.Get(1) != c2 {
		t.Fatal("Get mismatch")
	}
	if r.Get(99) != nil || r.Get(-1) != nil {
		t.Fatal("out-of-range Get should be nil")
	}
}

func TestChainValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add("empty"); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := r.Add("dup", 1, 2, 1); err == nil {
		t.Fatal("repeated NF accepted")
	}
}

func TestPositionsAndUpstream(t *testing.T) {
	r := NewRegistry()
	c := r.MustAdd("abc", 10, 20, 30)
	if c.Len() != 3 || c.Entry() != 10 || c.NFAt(2) != 30 {
		t.Fatal("basic accessors wrong")
	}
	if c.Position(20) != 1 || c.Position(99) != -1 {
		t.Fatal("Position wrong")
	}
	up := c.Upstream(2)
	if len(up) != 2 || up[0] != 10 || up[1] != 20 {
		t.Fatalf("Upstream = %v", up)
	}
	if c.Upstream(0) != nil {
		t.Fatal("Upstream(0) should be nil")
	}
}

func TestChainsThrough(t *testing.T) {
	// The Fig 8 topology: chain1 = NF1,NF2,NF4; chain2 = NF1,NF3,NF4.
	r := NewRegistry()
	c1 := r.MustAdd("chain1", 1, 2, 4)
	c2 := r.MustAdd("chain2", 1, 3, 4)
	through1 := r.ChainsThrough(1)
	if len(through1) != 2 || through1[0] != c1 || through1[1] != c2 {
		t.Fatalf("ChainsThrough(1) = %v", through1)
	}
	if got := r.ChainsThrough(3); len(got) != 1 || got[0] != c2 {
		t.Fatalf("ChainsThrough(3) = %v", got)
	}
	if got := r.ChainsThrough(99); got != nil {
		t.Fatalf("ChainsThrough(99) = %v", got)
	}
}

func TestString(t *testing.T) {
	r := NewRegistry()
	c := r.MustAdd("x", 1, 2)
	if c.String() != "chain0[1 2]" {
		t.Fatalf("String = %q", c.String())
	}
}
