// Package chain defines service chains: ordered sequences of network
// functions a packet traverses (RFC 7665 service function chaining). Chains
// are configured at platform startup from simple declarative specs — the
// simulator's stand-in for OpenNetVM's config files or an SDN controller's
// flow rule installer.
package chain

import (
	"fmt"
)

// Chain is an ordered list of NF identifiers. The same NF instance may
// appear in multiple chains (the paper's Fig 8 shares NF1 and NF4 across two
// chains); it may appear at most once within a single chain.
type Chain struct {
	ID   int
	Name string
	NFs  []int
}

// Len reports the number of hops.
func (c *Chain) Len() int { return len(c.NFs) }

// NFAt returns the NF id at the given hop.
func (c *Chain) NFAt(hop int) int { return c.NFs[hop] }

// Entry returns the first NF id — where cross-chain backpressure sheds load.
func (c *Chain) Entry() int { return c.NFs[0] }

// Position reports the hop index of nf in the chain, or -1.
func (c *Chain) Position(nf int) int {
	for i, id := range c.NFs {
		if id == nf {
			return i
		}
	}
	return -1
}

// Upstream reports the NF ids strictly before hop pos — the NFs whose work
// is wasted if the packet dies at pos.
func (c *Chain) Upstream(pos int) []int {
	if pos <= 0 {
		return nil
	}
	return c.NFs[:pos]
}

func (c *Chain) String() string {
	return fmt.Sprintf("chain%d%v", c.ID, c.NFs)
}

// Registry holds all configured chains, indexed by id.
type Registry struct {
	chains []*Chain
	byNF   map[int][]*Chain
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNF: make(map[int][]*Chain)}
}

// Add registers a chain and returns it. Chain IDs are assigned densely in
// registration order. An empty NF list or a repeated NF within the chain is
// rejected.
func (r *Registry) Add(name string, nfs ...int) (*Chain, error) {
	if len(nfs) == 0 {
		return nil, fmt.Errorf("chain: %q has no NFs", name)
	}
	seen := make(map[int]bool, len(nfs))
	for _, id := range nfs {
		if seen[id] {
			return nil, fmt.Errorf("chain: %q repeats NF %d", name, id)
		}
		seen[id] = true
	}
	c := &Chain{ID: len(r.chains), Name: name, NFs: append([]int(nil), nfs...)}
	r.chains = append(r.chains, c)
	for _, id := range nfs {
		r.byNF[id] = append(r.byNF[id], c)
	}
	return c, nil
}

// MustAdd is Add that panics on error, for experiment setup code.
func (r *Registry) MustAdd(name string, nfs ...int) *Chain {
	c, err := r.Add(name, nfs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Get returns the chain with the given id, or nil.
func (r *Registry) Get(id int) *Chain {
	if id < 0 || id >= len(r.chains) {
		return nil
	}
	return r.chains[id]
}

// Len reports the number of chains.
func (r *Registry) Len() int { return len(r.chains) }

// All returns every chain in id order.
func (r *Registry) All() []*Chain { return r.chains }

// ChainsThrough reports every chain that includes the NF — the set the
// manager must throttle when that NF becomes a bottleneck.
func (r *Registry) ChainsThrough(nf int) []*Chain { return r.byNF[nf] }
