package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"nfvnice/internal/simtime"
)

// Sink receives trace instrumentation points. Both the buffered Trace (kept
// for in-memory inspection and as the compatibility wrapper) and the
// streaming ChromeWriter implement it, so callers can instrument once and
// choose the destination at run time.
type Sink interface {
	RunSpan(core int, task string, start, end simtime.Cycles)
	Instant(name string, now simtime.Cycles, args map[string]any)
	Counter(name string, now simtime.Cycles, value float64)
}

var (
	_ Sink = (*Trace)(nil)
	_ Sink = (*ChromeWriter)(nil)
)

// ChromeWriter emits Chrome trace events incrementally to an io.Writer
// instead of buffering them, so arbitrarily long runs never hit a retention
// cap and silently drop. Events are written in emission order; trace viewers
// (Perfetto, chrome://tracing) do not require timestamp ordering. Safe for
// concurrent producers. Call Close to terminate the JSON array; viewers
// tolerate a missing terminator if the process dies first.
type ChromeWriter struct {
	mu     sync.Mutex
	w      io.Writer
	enc    *json.Encoder
	unit   TimeUnit
	n      int
	err    error
	closed bool
}

// NewChromeWriter returns a writer streaming the JSON-array trace format to w.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{w: w, enc: json.NewEncoder(w)}
	cw.enc.SetEscapeHTML(false)
	return cw
}

// SetUnit selects the timestamp base for subsequent events (the zero value
// is UnitCycles, the simulator's clock; the live dataplane sets UnitNanos
// and passes wall-clock nanoseconds cast to simtime.Cycles). Returns the
// writer for chaining: obs.NewChromeWriter(f).SetUnit(obs.UnitNanos).
func (c *ChromeWriter) SetUnit(u TimeUnit) *ChromeWriter {
	c.mu.Lock()
	c.unit = u
	c.mu.Unlock()
	return c
}

// timeUnit reads the configured unit under the lock.
func (c *ChromeWriter) timeUnit() TimeUnit {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unit
}

func (c *ChromeWriter) emit(e event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil || c.closed {
		return
	}
	if c.n == 0 {
		if _, err := io.WriteString(c.w, "[\n"); err != nil {
			c.err = err
			return
		}
	} else {
		if _, err := io.WriteString(c.w, ","); err != nil {
			c.err = err
			return
		}
	}
	if err := c.enc.Encode(&e); err != nil {
		c.err = fmt.Errorf("obs: %w", err)
		return
	}
	c.n++
}

// RunSpan streams a task execution span on a core.
func (c *ChromeWriter) RunSpan(core int, task string, start, end simtime.Cycles) {
	if end <= start {
		return
	}
	u := c.timeUnit()
	c.emit(event{
		Name: task,
		Cat:  "run",
		Ph:   "X",
		TS:   u.toUS(start),
		Dur:  u.toUS(end - start),
		PID:  0,
		TID:  core,
	})
}

// Instant streams a point event on the control lane.
func (c *ChromeWriter) Instant(name string, now simtime.Cycles, args map[string]any) {
	c.emit(event{
		Name: name,
		Cat:  "control",
		Ph:   "i",
		TS:   c.timeUnit().toUS(now),
		PID:  0,
		TID:  1000,
		S:    "g",
		Args: args,
	})
}

// Counter streams a named counter sample.
func (c *ChromeWriter) Counter(name string, now simtime.Cycles, value float64) {
	c.emit(event{
		Name: name,
		Ph:   "C",
		TS:   c.timeUnit().toUS(now),
		PID:  0,
		TID:  0,
		Args: map[string]any{"value": value},
	})
}

// Len reports events written so far.
func (c *ChromeWriter) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Err reports the first write error, if any; once set, further events are
// discarded.
func (c *ChromeWriter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close terminates the JSON array. Further events are discarded.
func (c *ChromeWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	c.closed = true
	if c.err != nil {
		return c.err
	}
	terminator := "]\n"
	if c.n == 0 {
		terminator = "[]\n"
	}
	if _, err := io.WriteString(c.w, terminator); err != nil {
		c.err = err
	}
	return c.err
}
