package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"nfvnice/internal/simtime"
)

func TestRunSpanAndWrite(t *testing.T) {
	tr := New()
	tr.RunSpan(0, "nf1", 2600, 5200) // 1µs..2µs
	tr.RunSpan(1, "nf2", 0, 2600)
	tr.Instant("bp-throttle", 5200, map[string]any{"nf": "nf1"})
	tr.Counter("shares:nf1", 5200, 4096)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 4 {
		t.Fatalf("decoded %d events", len(evs))
	}
	// Sorted by timestamp: nf2's span (ts=0) first.
	if evs[0]["name"] != "nf2" {
		t.Fatalf("first event %v, want nf2 (sorted)", evs[0]["name"])
	}
	// Span duration in microseconds.
	for _, e := range evs {
		if e["name"] == "nf1" && e["ph"] == "X" {
			if e["dur"].(float64) != 1.0 {
				t.Fatalf("nf1 dur = %v µs, want 1", e["dur"])
			}
			if e["ts"].(float64) != 1.0 {
				t.Fatalf("nf1 ts = %v µs, want 1", e["ts"])
			}
		}
	}
}

func TestZeroLengthSpanSkipped(t *testing.T) {
	tr := New()
	tr.RunSpan(0, "x", 100, 100)
	tr.RunSpan(0, "x", 100, 50)
	if tr.Len() != 0 {
		t.Fatal("degenerate spans recorded")
	}
}

func TestCapBoundsMemory(t *testing.T) {
	tr := New()
	tr.Cap = 10
	for i := 0; i < 100; i++ {
		tr.Counter("c", simtime.Cycles(i), float64(i))
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want capped 10", tr.Len())
	}
	if tr.Dropped != 90 {
		t.Fatalf("Dropped = %d", tr.Dropped)
	}
}

func TestEmptyTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}
