package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nfvnice/internal/simtime"
)

func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, data)
	}
	return evs
}

func TestChromeWriterStreams(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf)

	cw.RunSpan(0, "nf-a", 0, 2600)
	before := buf.Len()
	cw.Instant("bp-throttle", 2600, map[string]any{"nf": "nf-a"})
	if buf.Len() <= before {
		t.Error("Instant did not stream incrementally")
	}
	cw.Counter("shares:nf-a", 5200, 512)
	cw.RunSpan(1, "zero-span", 100, 100) // dropped: zero duration

	if err := cw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if cw.Len() != 3 {
		t.Errorf("Len = %d, want 3", cw.Len())
	}

	evs := decodeTrace(t, buf.Bytes())
	if len(evs) != 3 {
		t.Fatalf("decoded %d events, want 3", len(evs))
	}
	span := evs[0]
	if span["name"] != "nf-a" || span["ph"] != "X" || span["tid"] != float64(0) {
		t.Errorf("span event = %v", span)
	}
	if span["dur"] != float64(1) { // 2600 cycles = 1 µs at 2.6 GHz
		t.Errorf("span dur = %v, want 1", span["dur"])
	}
	if inst := evs[1]; inst["ph"] != "i" || inst["s"] != "g" {
		t.Errorf("instant event = %v", inst)
	}
	if ctr := evs[2]; ctr["ph"] != "C" {
		t.Errorf("counter event = %v", ctr)
	}

	// Close is idempotent and stops accepting events.
	cw.Counter("late", 0, 1)
	if err := cw.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if cw.Len() != 3 {
		t.Errorf("events accepted after Close: %d", cw.Len())
	}
}

func TestChromeWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty trace = %q, want []", got)
	}
}

// TestTraceAndChromeWriterAgree pins that the buffered Trace's serialized
// output matches what the streaming writer emits for the same calls.
func TestTraceAndChromeWriterAgree(t *testing.T) {
	tr := New()
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf)
	for _, s := range []Sink{tr, cw} {
		s.RunSpan(2, "fw", 0, 26000)
		s.Instant("bp-clear", 26000, nil)
		s.Counter("q", 26000, 3)
	}
	var trBuf bytes.Buffer
	if err := tr.WriteChrome(&trBuf); err != nil {
		t.Fatal(err)
	}
	cw.Close()

	a := decodeTrace(t, trBuf.Bytes())
	b := decodeTrace(t, buf.Bytes())
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		aj, _ := json.Marshal(a[i])
		bj, _ := json.Marshal(b[i])
		if string(aj) != string(bj) {
			t.Errorf("event %d differs:\nbuffered:  %s\nstreaming: %s", i, aj, bj)
		}
	}
}

func TestChromeWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				cw.RunSpan(g, "t", simtime.Cycles(i*100), simtime.Cycles(i*100+50))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if evs := decodeTrace(t, buf.Bytes()); len(evs) != 800 {
		t.Errorf("decoded %d events, want 800", len(evs))
	}
}

// TestChromeWriterUnitNanos pins the wall-clock mode used by the live
// dataplane's flight recorder: with UnitNanos, timestamps fed as nanoseconds
// come out as microseconds in the trace (ts/dur are µs by Chrome convention).
func TestChromeWriterUnitNanos(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf).SetUnit(UnitNanos)
	cw.RunSpan(0, "hop", 1000, 3000) // 1 µs .. 3 µs wall clock
	cw.Instant("deliver", 3000, nil)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	if len(evs) != 2 {
		t.Fatalf("decoded %d events, want 2", len(evs))
	}
	if ts, dur := evs[0]["ts"], evs[0]["dur"]; ts != float64(1) || dur != float64(2) {
		t.Errorf("nanos span ts=%v dur=%v, want 1 and 2 µs", ts, dur)
	}
	if ts := evs[1]["ts"]; ts != float64(3) {
		t.Errorf("nanos instant ts=%v, want 3 µs", ts)
	}
	// The zero value stays cycle-denominated (simulator compatibility).
	var buf2 bytes.Buffer
	cw2 := NewChromeWriter(&buf2)
	cw2.RunSpan(0, "hop", 0, 2600)
	cw2.Close()
	if evs := decodeTrace(t, buf2.Bytes()); evs[0]["dur"] != float64(1) {
		t.Errorf("default unit dur=%v, want 1 µs for 2600 cycles", evs[0]["dur"])
	}
}
