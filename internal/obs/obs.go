// Package obs records simulator timelines in the Chrome trace-event format
// (the JSON array flavour), so a platform run can be opened in Perfetto or
// chrome://tracing: per-core swimlanes of NF run spans, instant markers for
// backpressure transitions, and counter tracks for cgroup weight updates.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"nfvnice/internal/simtime"
)

// TimeUnit scales a sink's raw timestamps into the trace format's
// microseconds. Producers hand in either simulated cycles (the simulator's
// simtime.Cycles, the zero-value default) or wall-clock nanoseconds (the
// live dataplane's flight recorder: cast the int64 nanos to simtime.Cycles
// and set UnitNanos on the sink). One writer therefore serves both sides.
type TimeUnit float64

const (
	// UnitCycles interprets timestamps as simtime.Cycles (the default; the
	// zero TimeUnit behaves identically).
	UnitCycles = TimeUnit(1) / TimeUnit(simtime.Microsecond)
	// UnitNanos interprets timestamps as wall-clock nanoseconds.
	UnitNanos TimeUnit = 1.0 / 1000
)

// toUS converts a raw timestamp to trace microseconds under the unit.
func (u TimeUnit) toUS(c simtime.Cycles) float64 {
	if u == 0 {
		u = UnitCycles
	}
	return float64(c) * float64(u)
}

// event is one Chrome trace event (subset of the spec we emit).
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates events. Safe for single-threaded simulator use; a mutex
// guards WriteChrome racing late events in concurrent settings.
type Trace struct {
	mu  sync.Mutex
	evs []event

	// Cap bounds retained events to protect long runs (0 = 1<<20).
	Cap int

	// Dropped counts events discarded past Cap.
	Dropped uint64

	// Unit selects the timestamp base (zero value = UnitCycles). Set it
	// before recording: events store converted microseconds.
	Unit TimeUnit
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{}
}

func (t *Trace) add(e event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cap := t.Cap
	if cap == 0 {
		cap = 1 << 20
	}
	if len(t.evs) >= cap {
		t.Dropped++
		return
	}
	t.evs = append(t.evs, e)
}

// RunSpan records a task executing on a core from start to end.
func (t *Trace) RunSpan(core int, task string, start, end simtime.Cycles) {
	if end <= start {
		return
	}
	t.add(event{
		Name: task,
		Cat:  "run",
		Ph:   "X",
		TS:   t.Unit.toUS(start),
		Dur:  t.Unit.toUS(end - start),
		PID:  0,
		TID:  core,
	})
}

// Instant records a point event on a core-independent control lane.
func (t *Trace) Instant(name string, now simtime.Cycles, args map[string]any) {
	t.add(event{
		Name: name,
		Cat:  "control",
		Ph:   "i",
		TS:   t.Unit.toUS(now),
		PID:  0,
		TID:  1000, // control-plane lane
		S:    "g",
		Args: args,
	})
}

// Counter records a named counter sample (e.g. an NF's cpu.shares).
func (t *Trace) Counter(name string, now simtime.Cycles, value float64) {
	t.add(event{
		Name: name,
		Ph:   "C",
		TS:   t.Unit.toUS(now),
		PID:  0,
		TID:  0,
		Args: map[string]any{"value": value},
	})
}

// Len reports recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// WriteChrome emits the JSON-array trace format, events sorted by timestamp
// as the viewers prefer.
func (t *Trace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	evs := make([]event, len(t.evs))
	copy(evs, t.evs)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i := range evs {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := enc.Encode(&evs[i]); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
