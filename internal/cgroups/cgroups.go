// Package cgroups models the Linux control-group cpu subsystem as NFVnice
// uses it: a per-NF cgroup whose cpu.shares file the manager writes to steer
// the kernel scheduler's weights, without any kernel modification. Writes go
// through a simulated sysfs with the measured ~5 µs cost per write (paper
// §4.3.8), which is why NFVnice batches weight updates at 10 ms granularity
// rather than reacting per packet.
package cgroups

import (
	"fmt"
	"sort"

	"nfvnice/internal/cpusched"
	"nfvnice/internal/simtime"
)

// DefaultShares is the default cpu.shares of a fresh cgroup (and the weight
// of a nice-0 task).
const DefaultShares = cpusched.NiceZeroWeight

// MinShares is the kernel's floor for cpu.shares.
const MinShares = 2

// WriteCost is the simulated cost of one sysfs write (measured at ~5 µs in
// the paper). The controller charges it to its own budget to decide how
// often updating weights is affordable.
const WriteCost = 5 * simtime.Microsecond

// Group is one cgroup directory holding a single NF task.
type Group struct {
	name   string
	shares int
	task   *cpusched.Task
}

// Name reports the cgroup path component.
func (g *Group) Name() string { return g.name }

// Shares reports the current cpu.shares value.
func (g *Group) Shares() int { return g.shares }

// Task reports the task confined to this group.
func (g *Group) Task() *cpusched.Task { return g.task }

// FS is the cgroup virtual filesystem root. It tracks write statistics so
// experiments can report the control-plane overhead.
type FS struct {
	groups map[string]*Group

	// Writes counts cpu.shares writes; WriteCycles the cumulative cost.
	Writes      uint64
	WriteCycles simtime.Cycles
	// SkippedWrites counts updates elided because the value was unchanged
	// (the manager's dirty check).
	SkippedWrites uint64
}

// NewFS returns an empty cgroup filesystem.
func NewFS() *FS {
	return &FS{groups: make(map[string]*Group)}
}

// Create makes a cgroup for a task with default shares. Creating an existing
// name is an error, mirroring mkdir semantics.
func (fs *FS) Create(name string, task *cpusched.Task) (*Group, error) {
	if _, ok := fs.groups[name]; ok {
		return nil, fmt.Errorf("cgroups: %q exists", name)
	}
	g := &Group{name: name, shares: DefaultShares, task: task}
	fs.groups[name] = g
	return g, nil
}

// Lookup finds a cgroup by name.
func (fs *FS) Lookup(name string) (*Group, bool) {
	g, ok := fs.groups[name]
	return g, ok
}

// Groups returns all groups in deterministic (name) order.
func (fs *FS) Groups() []*Group {
	names := make([]string, 0, len(fs.groups))
	for n := range fs.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Group, len(names))
	for i, n := range names {
		out[i] = fs.groups[n]
	}
	return out
}

// SetShares writes cpu.shares for the group, clamping to the kernel's valid
// range and propagating the weight into the task's scheduler. It reports the
// cycles the write cost (zero when elided because the value is unchanged).
func (fs *FS) SetShares(g *Group, shares int) simtime.Cycles {
	if shares < MinShares {
		shares = MinShares
	}
	const maxShares = 1 << 18 // kernel MAX_SHARES (2^18)
	if shares > maxShares {
		shares = maxShares
	}
	if shares == g.shares {
		fs.SkippedWrites++
		return 0
	}
	g.shares = shares
	fs.Writes++
	fs.WriteCycles += WriteCost
	if g.task != nil && g.task.Core() != nil {
		g.task.Core().SetWeight(g.task, shares)
	}
	return WriteCost
}
