package cgroups

import (
	"testing"

	"nfvnice/internal/cpusched"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/simtime"
)

func TestCreateAndLookup(t *testing.T) {
	fs := NewFS()
	g, err := fs.Create("nf1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shares() != DefaultShares {
		t.Fatalf("default shares = %d", g.Shares())
	}
	if got, ok := fs.Lookup("nf1"); !ok || got != g {
		t.Fatal("lookup failed")
	}
	if _, err := fs.Create("nf1", nil); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestSetSharesClamping(t *testing.T) {
	fs := NewFS()
	g, _ := fs.Create("nf", nil)
	fs.SetShares(g, 0)
	if g.Shares() != MinShares {
		t.Fatalf("shares = %d, want floor %d", g.Shares(), MinShares)
	}
	fs.SetShares(g, 1<<30)
	if g.Shares() != 1<<18 {
		t.Fatalf("shares = %d, want ceiling 2^18", g.Shares())
	}
}

func TestWriteAccounting(t *testing.T) {
	fs := NewFS()
	g, _ := fs.Create("nf", nil)
	if cost := fs.SetShares(g, 2048); cost != WriteCost {
		t.Fatalf("cost = %v", cost)
	}
	// Unchanged value: elided.
	if cost := fs.SetShares(g, 2048); cost != 0 {
		t.Fatalf("unchanged write cost = %v, want 0", cost)
	}
	if fs.Writes != 1 || fs.SkippedWrites != 1 {
		t.Fatalf("writes=%d skipped=%d", fs.Writes, fs.SkippedWrites)
	}
	if fs.WriteCycles != WriteCost {
		t.Fatalf("WriteCycles = %v", fs.WriteCycles)
	}
}

func TestGroupsDeterministicOrder(t *testing.T) {
	fs := NewFS()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		fs.Create(n, nil)
	}
	gs := fs.Groups()
	if gs[0].Name() != "alpha" || gs[1].Name() != "mid" || gs[2].Name() != "zeta" {
		t.Fatalf("order: %s %s %s", gs[0].Name(), gs[1].Name(), gs[2].Name())
	}
}

type busy struct{}

func (busy) Segment(simtime.Cycles) simtime.Cycles { return 10 * simtime.Microsecond }
func (busy) Complete(simtime.Cycles) bool          { return true }

func TestSharesReachScheduler(t *testing.T) {
	// End to end: writing cpu.shares must change the CFS allocation.
	eng := eventsim.New()
	core := cpusched.NewCore(0, eng, cpusched.NewCFS(), cpusched.DefaultCoreParams())
	a := cpusched.NewTask(1, "a", busy{})
	b := cpusched.NewTask(2, "b", busy{})
	core.AddTask(a)
	core.AddTask(b)
	core.Wake(a)
	core.Wake(b)

	fs := NewFS()
	ga, _ := fs.Create("a", a)
	fs.Create("b", b)
	fs.SetShares(ga, 4*DefaultShares)

	eng.RunUntil(simtime.Second)
	ratio := float64(a.Stats.Runtime) / float64(b.Stats.Runtime)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("runtime ratio = %.2f, want ~4 after cpu.shares write", ratio)
	}
}
