package frontend

import (
	"context"
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/packet"
	"nfvnice/internal/proto"
)

// SyntheticConfig tunes the seeded generator.
type SyntheticConfig struct {
	// Seed makes the run reproducible (0 takes 1).
	Seed int64
	// Flows is the number of distinct flows to generate before stopping.
	Flows int
	// ActiveFlows bounds the live working set: flows emit interleaved, and
	// an exhausted flow's slot is immediately re-armed with a fresh one, so
	// memory stays constant while total distinct flows grow without bound
	// (default 1024).
	ActiveFlows int
	// Alpha is the bounded-Pareto shape for per-flow packet counts: heavy
	// tails mean most flows are mice and most packets belong to elephants
	// (default 1.2).
	Alpha float64
	// MinPackets and MaxPackets bound the per-flow packet count
	// (defaults 1 and 1024).
	MinPackets, MaxPackets int
	// PayloadLen is the UDP payload size in bytes, minimum 16 — the first
	// 16 bytes carry the flow number and a payload checksum so any tap can
	// verify frame integrity end to end (default 64).
	PayloadLen int
	// Rate paces emission in packets/second across the whole run; 0 runs
	// at maximum rate.
	Rate int
	// LaneDepth is the producer lane capacity (0 takes Config.RingSize).
	LaneDepth int
	// Batch is the emission batch size (default 64).
	Batch int
}

// SyntheticStats reports a finished run.
type SyntheticStats struct {
	// Offered counts packets accepted into the inject lane; Rejected
	// counts lane-full packets recycled after retries were cut short by
	// cancellation (otherwise the generator retries until accepted).
	Offered  uint64
	Rejected uint64
	// Flows is the number of distinct flows generated; Bytes the frame
	// bytes offered.
	Flows uint64
	Bytes uint64
}

// synthFlow is one live working-set slot.
type synthFlow struct {
	key       packet.FlowKey
	chain     int
	remaining int
	payload   []byte
}

// Synthetic is the seeded heavy-tailed traffic generator. Create with
// NewSynthetic; Run drives the engine until the flow budget is spent.
type Synthetic struct {
	cfg SyntheticConfig
	dir *Director
	rng *rand.Rand

	nextFlow uint64
	active   []synthFlow
	stats    SyntheticStats
}

// NewSynthetic returns a generator feeding chains through the director's
// flow table. Zero-valued config fields take the documented defaults.
func NewSynthetic(cfg SyntheticConfig, dir *Director) *Synthetic {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ActiveFlows <= 0 {
		cfg.ActiveFlows = 1024
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1.2
	}
	if cfg.MinPackets <= 0 {
		cfg.MinPackets = 1
	}
	if cfg.MaxPackets < cfg.MinPackets {
		cfg.MaxPackets = 1024
		if cfg.MaxPackets < cfg.MinPackets {
			cfg.MaxPackets = cfg.MinPackets
		}
	}
	if cfg.PayloadLen < 16 {
		cfg.PayloadLen = 64
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Flows < cfg.ActiveFlows {
		cfg.ActiveFlows = cfg.Flows
	}
	return &Synthetic{cfg: cfg, dir: dir, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// FrameSize reports the frame size the generator emits, so callers can
// size Config.FrameSize.
func (s *Synthetic) FrameSize() int {
	return proto.EthernetHeaderLen + proto.IPv4MinHeaderLen + proto.UDPHeaderLen + s.cfg.PayloadLen
}

// boundedPareto draws a per-flow packet count in [MinPackets, MaxPackets]
// with shape Alpha (inverse-CDF sampling).
func (s *Synthetic) boundedPareto() int {
	l, h, a := float64(s.cfg.MinPackets), float64(s.cfg.MaxPackets), s.cfg.Alpha
	if l >= h {
		return s.cfg.MinPackets
	}
	u := s.rng.Float64()
	x := l / math.Pow(1-u*(1-math.Pow(l/h, a)), 1/a)
	n := int(x)
	if n < s.cfg.MinPackets {
		n = s.cfg.MinPackets
	}
	if n > s.cfg.MaxPackets {
		n = s.cfg.MaxPackets
	}
	return n
}

// flowKeyFor derives flow n's 5-tuple: a unique source in 10/8 toward one
// external service — the many-clients-one-service shape NAT and firewall
// chains are built for.
func flowKeyFor(n uint64) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   0x0a000000 | uint32(n&0xffffff),
		DstIP:   uint32(proto.Addr4(198, 51, 100, 1)),
		SrcPort: uint16(1024 + (n>>24)*131%60000),
		DstPort: 80,
		Proto:   packet.UDP,
	}
}

// FillPayload writes flow n's deterministic payload into buf (length ≥ 16):
// bytes 0..7 are the flow number, 8..15 an FNV-1a checksum of the body,
// and the rest a flow-keyed byte pattern. VerifyPayload checks it.
func FillPayload(n uint64, buf []byte) {
	binary.BigEndian.PutUint64(buf[0:8], n)
	for i := 16; i < len(buf); i++ {
		buf[i] = byte(uint64(i)*1099511628211 + n*131)
	}
	binary.BigEndian.PutUint64(buf[8:16], payloadSum(n, buf[16:]))
}

// VerifyPayload re-derives the payload checksum and reports whether the
// bytes survived the chain intact, plus the flow number they claim.
func VerifyPayload(buf []byte) (flow uint64, ok bool) {
	if len(buf) < 16 {
		return 0, false
	}
	flow = binary.BigEndian.Uint64(buf[0:8])
	return flow, binary.BigEndian.Uint64(buf[8:16]) == payloadSum(flow, buf[16:])
}

// payloadSum is FNV-1a over the payload body, mixed with the flow number.
func payloadSum(n uint64, body []byte) uint64 {
	h := uint64(14695981039346656037) ^ n
	for _, b := range body {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// armFlow replaces slot i with the next fresh flow.
func (s *Synthetic) armFlow(i int) {
	f := &s.active[i]
	n := s.nextFlow
	s.nextFlow++
	f.key = flowKeyFor(n)
	f.chain = s.dir.ChainOf(f.key)
	f.remaining = s.boundedPareto()
	if f.payload == nil {
		f.payload = make([]byte, s.cfg.PayloadLen)
	}
	FillPayload(n, f.payload)
	s.stats.Flows++
}

var synthSrcMAC = proto.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
var synthDstMAC = proto.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}

// Run generates the configured flows into the engine through a private
// inject lane, blocking until the flow budget is spent or ctx is canceled.
// The engine must be running, configured with Config.FrameSize ≥
// s.FrameSize(), and have chain i reachable via MapFlow(i, i) for every
// chain the director spreads over.
func (s *Synthetic) Run(ctx context.Context, e *dataplane.Engine) SyntheticStats {
	h := e.ProducerHandle(s.cfg.LaneDepth)
	defer h.Close()
	cache := e.NewPacketCache(4 * s.cfg.Batch)
	s.active = make([]synthFlow, s.cfg.ActiveFlows)
	for i := range s.active {
		s.armFlow(i)
	}
	batch := make([]*dataplane.Packet, s.cfg.Batch)
	var paceStart time.Time
	if s.cfg.Rate > 0 {
		paceStart = time.Now()
	}
	slot := 0
	for len(s.active) > 0 {
		if ctx.Err() != nil {
			return s.stats
		}
		// Fill one batch round-robin across the working set so flows
		// interleave on the wire like independent senders.
		bn := 0
		for bn < len(batch) && len(s.active) > 0 {
			if slot >= len(s.active) {
				slot = 0
			}
			f := &s.active[slot]
			p := cache.Get()
			buf := p.Frame[:cap(p.Frame)]
			n := proto.EncodeUDP(buf, synthSrcMAC, synthDstMAC,
				proto.IPv4Addr(f.key.SrcIP), proto.IPv4Addr(f.key.DstIP),
				f.key.SrcPort, f.key.DstPort, f.payload)
			p.Frame = buf[:n]
			p.Size = n
			p.FlowID = f.chain
			batch[bn] = p
			bn++
			s.stats.Bytes += uint64(n)
			f.remaining--
			if f.remaining == 0 {
				if s.stats.Flows < uint64(s.cfg.Flows) {
					s.armFlow(slot)
					slot++
				} else {
					// Budget spent: shrink the working set.
					last := len(s.active) - 1
					s.active[slot] = s.active[last]
					s.active = s.active[:last]
				}
			} else {
				slot++
			}
		}
		// Offer the batch; a full lane is transient per-producer
		// backpressure, so spin politely until the mover catches up.
		rem := batch[:bn]
		for len(rem) > 0 {
			n := h.InjectBatch(rem)
			s.stats.Offered += uint64(n)
			rem = rem[n:]
			if len(rem) == 0 {
				break
			}
			if ctx.Err() != nil {
				s.stats.Rejected += uint64(len(rem))
				for _, p := range rem {
					cache.Put(p)
				}
				return s.stats
			}
			runtime.Gosched()
		}
		if s.cfg.Rate > 0 {
			// Pace against the wall clock: sleep off any lead over the
			// target cumulative schedule.
			ahead := time.Duration(float64(s.stats.Offered)/float64(s.cfg.Rate)*float64(time.Second)) - time.Since(paceStart)
			if ahead > time.Millisecond {
				time.Sleep(ahead)
			}
		}
	}
	return s.stats
}
