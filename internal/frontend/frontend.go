// Package frontend provides real ingress for the live dataplane: producers
// that fill preallocated arena frames (Config.FrameSize) in place and feed
// them through per-producer inject lanes, so real NF chains see wire bytes
// without a copy or an allocation on the steady-state path.
//
// Two frontends cover the paper's evaluation traffic:
//
//   - Replay streams a pcap trace at maximum rate, copying each record's
//     bytes into an arena frame (the software analogue of NIC DMA — the
//     single unavoidable copy at ingress).
//   - Synthetic generates seeded traffic with heavy-tailed flow sizes
//     (bounded Pareto, the distribution "Benchmarking NFV Software
//     Dataplanes" uses for realistic mixes), building Ethernet+IPv4+UDP
//     frames in place and cycling a bounded working set of live flows so a
//     run can cross millions of distinct flows with constant memory.
//
// Both classify every frame's 5-tuple through the concurrent flow table
// (flowtable.Sharded) — OpenNetVM's flow-director role — and route by
// setting Packet.FlowID to the resolved chain. Callers pre-map chain i to
// flow i (engine.MapFlow(i, i)), keeping the engine's flow map tiny while
// the flow table absorbs the millions of real 5-tuples.
package frontend

import (
	"nfvnice/internal/flowtable"
	"nfvnice/internal/packet"
	"nfvnice/internal/proto"
)

// Director resolves frames to service chains through the shared concurrent
// flow table: resident flows hit the table; new flows are installed
// hash-spread across the chains, so a flow's chain assignment is sticky for
// as long as it stays resident (and deterministically re-derived if random
// replacement evicted it).
type Director struct {
	Table  *flowtable.Sharded
	Chains int
}

// NewDirector returns a director over a fresh sharded table bounded at
// capacity entries, spreading flows across nChains chains.
func NewDirector(nChains, capacity int) *Director {
	if nChains < 1 {
		nChains = 1
	}
	return &Director{Table: flowtable.NewSharded(64, capacity), Chains: nChains}
}

// spread is the miss-path chain assignment: a hash spread over the chains.
func (d *Director) spread(k packet.FlowKey) int {
	return int(k.Hash() % uint64(d.Chains))
}

// ChainOf resolves (installing if absent) the chain for a flow key.
func (d *Director) ChainOf(k packet.FlowKey) int {
	id, _ := d.Table.LookupOrInsert(k, d.spread)
	return id
}

// FlowKeyOf extracts the 5-tuple from a raw Ethernet frame; ok is false
// for non-IPv4 frames.
func FlowKeyOf(frame []byte) (packet.FlowKey, bool) {
	f, err := proto.Decode(frame)
	if err != nil || !f.HasIP {
		return packet.FlowKey{}, false
	}
	k := packet.FlowKey{
		SrcIP: uint32(f.IP.Src),
		DstIP: uint32(f.IP.Dst),
	}
	switch {
	case f.HasUDP:
		k.Proto = packet.UDP
		k.SrcPort, k.DstPort = f.UDP.SrcPort, f.UDP.DstPort
	case f.HasTCP:
		k.Proto = packet.TCP
		k.SrcPort, k.DstPort = f.TCP.SrcPort, f.TCP.DstPort
	default:
		k.Proto = packet.Proto(f.IP.Protocol)
	}
	return k, true
}
