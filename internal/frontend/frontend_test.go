package frontend_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/frontend"
	"nfvnice/internal/nfs"
	"nfvnice/internal/pcap"
	"nfvnice/internal/proto"
)

// buildEngine assembles a live engine with a frame arena and the given
// real-NF chains (one slice of processors per chain), premapping flow i to
// chain i so the frontends' directors can route by chain id. The sink
// recycles deliveries back into the arena pool.
func buildEngine(t testing.TB, frameSize int, chains ...[]nfs.Processor) (*dataplane.Engine, context.CancelFunc, *sync.WaitGroup) {
	t.Helper()
	e := dataplane.New(dataplane.Config{
		RingSize:  4096,
		BatchSize: 256,
		FrameSize: frameSize,
		// The controller cadences stay at defaults; backpressure protects
		// the rings when a max-rate producer overruns the chain.
	})
	for ci, procs := range chains {
		ids := make([]int, len(procs))
		for i, p := range procs {
			ids[i] = e.AddBatchStage(p.Name(), 1024, nfs.AdaptBatch(p))
		}
		id, err := e.AddChain(ids...)
		if err != nil {
			t.Fatalf("AddChain: %v", err)
		}
		if id != ci {
			t.Fatalf("chain id %d, want %d", id, ci)
		}
		e.MapFlow(ci, ci)
	}
	e.SetSink(func(ps []*dataplane.Packet) { e.PutPacketBatch(ps) })
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Run(ctx)
	}()
	return e, cancel, &wg
}

// waitAccounted polls until every lane-accepted packet has been routed and
// settled into an outcome class (offered == injected + pre-acceptance
// drops is implied by residual reaching zero after the lanes drain).
func waitAccounted(t testing.TB, e *dataplane.Engine, offered uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		l := e.LedgerSnapshot()
		settled := l.Injected + l.EntryDrops + l.FaultEntryDrops + l.LateDrops +
			(l.RingDrops - l.MidRingDrops)
		if settled >= offered && l.Residual() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not settle: offered=%d ledger=%+v", offered, l)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tracePcap builds an in-memory pcap with UDP and TCP flows.
func tracePcap(t testing.TB, flows, pktsPerFlow int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, 65535)
	src := proto.MAC{2, 0, 0, 0, 0, 1}
	dst := proto.MAC{2, 0, 0, 0, 0, 2}
	base := time.Unix(0, 0)
	for i := 0; i < pktsPerFlow; i++ {
		for f := 0; f < flows; f++ {
			sip := proto.Addr4(10, 1, byte(f>>8), byte(f))
			dip := proto.Addr4(198, 51, 100, 7)
			var frame []byte
			if f%2 == 0 {
				frame = proto.BuildUDP(src, dst, sip, dip, uint16(2000+f), 53, []byte("replayed payload"))
			} else {
				frame = proto.BuildTCP(src, dst, sip, dip, uint16(2000+f), 80, uint32(i), 0, 0x10, []byte("replayed tcp"))
			}
			if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), frame); err != nil {
				t.Fatalf("WritePacket: %v", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return &buf
}

// TestReplaySmoke replays a trace at max rate through a firewall→monitor
// chain on the live engine: every record must be offered, the ledger must
// close exactly, and the monitor must have seen real frames.
func TestReplaySmoke(t *testing.T) {
	const flows, per, loops = 32, 8, 25
	trace := tracePcap(t, flows, per)
	dir := frontend.NewDirector(1, 1<<12)
	rp, err := frontend.NewReplay(trace, frontend.ReplayConfig{Loops: loops}, dir)
	if err != nil {
		t.Fatalf("NewReplay: %v", err)
	}
	if rp.Records() != flows*per {
		t.Fatalf("prescan kept %d records, want %d", rp.Records(), flows*per)
	}
	mon := nfs.NewMonitor()
	e, cancel, wg := buildEngine(t, rp.MaxFrame(),
		[]nfs.Processor{nfs.NewFirewall(nfs.Accept), mon})
	stats := rp.Run(context.Background(), e)
	if want := uint64(flows * per * loops); stats.Offered != want {
		t.Fatalf("offered %d, want %d (rejected=%d skipped=%d)", stats.Offered, want, stats.Rejected, stats.Skipped)
	}
	if stats.Skipped != 0 {
		t.Fatalf("replay skipped %d records", stats.Skipped)
	}
	waitAccounted(t, e, stats.Offered, 10*time.Second)
	cancel()
	wg.Wait()
	l := e.LedgerSnapshot()
	if l.Residual() != 0 {
		t.Fatalf("ledger residual %d after shutdown: %+v", l.Residual(), l)
	}
	if l.Delivered == 0 {
		t.Fatalf("nothing delivered: %+v", l)
	}
	if got := dir.Table.Lookups.Load(); got < uint64(stats.Offered) {
		t.Fatalf("flow table saw %d lookups, want >= %d", got, stats.Offered)
	}
	if mon.Flows() != flows {
		t.Fatalf("monitor tracked %d flows, want %d", mon.Flows(), flows)
	}
}

// TestMillionFlowConservation drives over a million distinct flows — the
// synthetic heavy-tailed generator and a looping pcap replay concurrently —
// through the shared flow table into stateless real-NF chains, at max rate,
// and requires the packet ledger to close exactly at shutdown.
func TestMillionFlowConservation(t *testing.T) {
	synthFlows := 1_050_000
	if testing.Short() {
		synthFlows = 120_000
	}
	dir := frontend.NewDirector(2, 1<<20)
	syn := frontend.NewSynthetic(frontend.SyntheticConfig{
		Seed:        42,
		Flows:       synthFlows,
		ActiveFlows: 2048,
		MaxPackets:  4,
		PayloadLen:  32,
	}, dir)

	const rpFlows, rpPer, rpLoops = 64, 4, 50
	rp, err := frontend.NewReplay(tracePcap(t, rpFlows, rpPer), frontend.ReplayConfig{Loops: rpLoops}, dir)
	if err != nil {
		t.Fatalf("NewReplay: %v", err)
	}
	frameSize := syn.FrameSize()
	if rp.MaxFrame() > frameSize {
		frameSize = rp.MaxFrame()
	}

	rt := nfs.NewRouter()
	if err := rt.AddRoute(0, 0, 1); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	e, cancel, wg := buildEngine(t, frameSize,
		[]nfs.Processor{nfs.NewFirewall(nfs.Accept), nfs.NewDPI([][]byte{[]byte("malware")}, false)},
		[]nfs.Processor{nfs.NewFirewall(nfs.Accept), rt})

	var syns frontend.SyntheticStats
	var rps frontend.ReplayStats
	var prod sync.WaitGroup
	prod.Add(2)
	go func() { defer prod.Done(); syns = syn.Run(context.Background(), e) }()
	go func() { defer prod.Done(); rps = rp.Run(context.Background(), e) }()
	prod.Wait()

	offered := syns.Offered + rps.Offered
	waitAccounted(t, e, offered, 60*time.Second)
	cancel()
	wg.Wait()

	l := e.LedgerSnapshot()
	if l.Residual() != 0 {
		t.Fatalf("ledger residual %d: %+v", l.Residual(), l)
	}
	if syns.Rejected != 0 || rps.Rejected != 0 {
		t.Fatalf("producers gave up on %d+%d packets", syns.Rejected, rps.Rejected)
	}
	distinct := syns.Flows + rpFlows
	if !testing.Short() && distinct < 1_000_000 {
		t.Fatalf("only %d distinct flows crossed the table", distinct)
	}
	// The synthetic generator classifies once per flow (at arm time); the
	// replay classifies every record it offers.
	if got, want := dir.Table.Lookups.Load(), syns.Flows+rps.Offered; got < want {
		t.Fatalf("flow table lookups %d < %d", got, want)
	}
	// The bounded table must have survived the sweep within its cap, and
	// with > 1M distinct flows through a 1M-entry table, evicted something.
	if dir.Table.Len() > dir.Table.Capacity() {
		t.Fatalf("table over capacity: %d > %d", dir.Table.Len(), dir.Table.Capacity())
	}
	if !testing.Short() && dir.Table.Evictions.Load() == 0 {
		t.Fatal("expected evictions with flows exceeding table capacity")
	}
	if l.Delivered == 0 {
		t.Fatalf("nothing delivered: %+v", l)
	}
	t.Logf("flows=%d offered=%d delivered=%d entry_drops=%d mid_ring=%d evictions=%d",
		distinct, offered, l.Delivered, l.EntryDrops, l.MidRingDrops, dir.Table.Evictions.Load())
}
