package frontend

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/packet"
	"nfvnice/internal/pcap"
)

// ReplayConfig tunes the pcap replay producer.
type ReplayConfig struct {
	// Loops is how many times to replay the whole trace (default 1).
	Loops int
	// LaneDepth is the producer lane capacity (0 takes Config.RingSize).
	LaneDepth int
	// Batch is the injection batch size (default 64).
	Batch int
}

// ReplayStats reports a finished replay.
type ReplayStats struct {
	// Offered counts frames accepted into the inject lane; Rejected counts
	// frames recycled when cancellation cut the lane retry short.
	Offered  uint64
	Rejected uint64
	Bytes    uint64
	// Skipped counts trace records the replay could not forward: non-IPv4
	// frames (no 5-tuple to direct on) and frames larger than the arena
	// slot.
	Skipped uint64
}

// replayRecord is one prescanned trace record: its bytes and its resolved
// flow key, so the replay loop pays no decode cost.
type replayRecord struct {
	data []byte
	key  packet.FlowKey
}

// Replay streams a prescanned pcap trace into the engine at maximum rate,
// copying each record into an arena frame — the one ingress copy a real
// NIC's DMA would make — and directing flows through the shared table.
type Replay struct {
	cfg  ReplayConfig
	dir  *Director
	recs []replayRecord
	skip uint64
	max  int
}

// NewReplay prescans a pcap stream (decoding each record's 5-tuple once)
// and returns a replay producer over the director's chains.
func NewReplay(r io.Reader, cfg ReplayConfig, dir *Director) (*Replay, error) {
	pkts, err := pcap.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("frontend: reading trace: %w", err)
	}
	if cfg.Loops <= 0 {
		cfg.Loops = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	rp := &Replay{cfg: cfg, dir: dir}
	for _, p := range pkts {
		k, ok := FlowKeyOf(p.Data)
		if !ok {
			rp.skip++
			continue
		}
		if len(p.Data) > rp.max {
			rp.max = len(p.Data)
		}
		rp.recs = append(rp.recs, replayRecord{data: p.Data, key: k})
	}
	return rp, nil
}

// Records reports the number of replayable records per loop; MaxFrame the
// largest record, so callers can size Config.FrameSize.
func (r *Replay) Records() int  { return len(r.recs) }
func (r *Replay) MaxFrame() int { return r.max }

// Run replays the trace through a private inject lane at maximum rate,
// blocking until the configured loops complete or ctx is canceled. The
// engine must be running with Config.FrameSize ≥ r.MaxFrame() and chain i
// mapped via MapFlow(i, i).
func (r *Replay) Run(ctx context.Context, e *dataplane.Engine) ReplayStats {
	stats := ReplayStats{Skipped: r.skip * uint64(r.cfg.Loops)}
	if len(r.recs) == 0 {
		return stats
	}
	h := e.ProducerHandle(r.cfg.LaneDepth)
	defer h.Close()
	cache := e.NewPacketCache(4 * r.cfg.Batch)
	batch := make([]*dataplane.Packet, 0, r.cfg.Batch)
	flush := func() bool {
		rem := batch
		for len(rem) > 0 {
			n := h.InjectBatch(rem)
			stats.Offered += uint64(n)
			rem = rem[n:]
			if len(rem) == 0 {
				break
			}
			if ctx.Err() != nil {
				stats.Rejected += uint64(len(rem))
				for _, p := range rem {
					cache.Put(p)
				}
				return false
			}
			runtime.Gosched()
		}
		batch = batch[:0]
		return true
	}
	for loop := 0; loop < r.cfg.Loops; loop++ {
		for i := range r.recs {
			rec := &r.recs[i]
			p := cache.Get()
			if cap(p.Frame) < len(rec.data) {
				cache.Put(p)
				stats.Skipped++
				continue
			}
			p.Frame = p.Frame[:len(rec.data)]
			copy(p.Frame, rec.data)
			p.Size = len(rec.data)
			p.FlowID = r.dir.ChainOf(rec.key)
			stats.Bytes += uint64(len(rec.data))
			batch = append(batch, p)
			if len(batch) == cap(batch) {
				if !flush() {
					return stats
				}
			}
		}
	}
	flush()
	return stats
}
