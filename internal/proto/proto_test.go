package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0xaa}
	macB = MAC{0x02, 0, 0, 0, 0, 0xbb}
	ipA  = Addr4(10, 0, 0, 1)
	ipB  = Addr4(192, 168, 1, 2)
)

func TestChecksumRFC1071Example(t *testing.T) {
	// The classic example from RFC 1071 §3: words 0x0001,0xf203,0xf4f5,
	// 0xf6f7 sum to 0xddf2 before inversion.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd final byte is padded with zero on the right.
	even := Checksum([]byte{0x12, 0x34, 0xab, 0x00})
	odd := Checksum([]byte{0x12, 0x34, 0xab})
	if even != odd {
		t.Fatalf("odd-length padding wrong: %04x vs %04x", odd, even)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("hello nfv world")
	b := BuildUDP(macA, macB, ipA, ipB, 1234, 53, payload)
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Eth.Src != macA || f.Eth.Dst != macB || f.Eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("ethernet: %+v", f.Eth)
	}
	if !f.HasIP || f.IP.Src != ipA || f.IP.Dst != ipB || f.IP.Protocol != IPProtoUDP {
		t.Fatalf("ip: %+v", f.IP)
	}
	if !f.HasUDP || f.UDP.SrcPort != 1234 || f.UDP.DstPort != 53 {
		t.Fatalf("udp: %+v", f.UDP)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload = %q", f.Payload)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	b := BuildTCP(macA, macB, ipA, ipB, 5000, 80, 12345, 67890, TCPSyn|TCPAck, []byte("GET /"))
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasTCP || f.TCP.SrcPort != 5000 || f.TCP.DstPort != 80 {
		t.Fatalf("tcp: %+v", f.TCP)
	}
	if f.TCP.Seq != 12345 || f.TCP.Ack != 67890 {
		t.Fatal("seq/ack wrong")
	}
	if f.TCP.Flags != TCPSyn|TCPAck {
		t.Fatalf("flags = %02x", f.TCP.Flags)
	}
	if string(f.Payload) != "GET /" {
		t.Fatalf("payload = %q", f.Payload)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	b := BuildUDP(macA, macB, ipA, ipB, 1, 2, nil)
	if !VerifyIPv4Checksum(b[EthernetHeaderLen:]) {
		t.Fatal("built frame has invalid IP checksum")
	}
	// Corrupt a header byte: checksum must fail.
	b[EthernetHeaderLen+8] ^= 0xff // TTL
	if VerifyIPv4Checksum(b[EthernetHeaderLen:]) {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestTransportChecksumValid(t *testing.T) {
	b := BuildUDP(macA, macB, ipA, ipB, 9, 10, []byte{1, 2, 3})
	seg := b[EthernetHeaderLen+IPv4MinHeaderLen:]
	// Checksum over segment including its checksum field must be 0
	// (i.e., valid).
	if PseudoChecksum(ipA, ipB, IPProtoUDP, seg) != 0 {
		t.Fatal("UDP checksum invalid")
	}
	bt := BuildTCP(macA, macB, ipA, ipB, 9, 10, 1, 2, TCPAck, []byte{9, 9})
	segT := bt[EthernetHeaderLen+IPv4MinHeaderLen:]
	if PseudoChecksum(ipA, ipB, IPProtoTCP, segT) != 0 {
		t.Fatal("TCP checksum invalid")
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := BuildUDP(macA, macB, ipA, ipB, 1, 2, []byte("data"))
	for _, n := range []int{0, 5, 13, EthernetHeaderLen + 3, EthernetHeaderLen + IPv4MinHeaderLen + 2} {
		if _, err := Decode(b[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestDecodeNonIPv4(t *testing.T) {
	b := make([]byte, 64)
	e := Ethernet{Dst: macB, Src: macA, EtherType: EtherTypeARP}
	e.Put(b)
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasIP || f.HasUDP || f.HasTCP {
		t.Fatal("ARP frame decoded as IP")
	}
}

func TestDecodeBadIPVersion(t *testing.T) {
	b := BuildUDP(macA, macB, ipA, ipB, 1, 2, nil)
	b[EthernetHeaderLen] = 6 << 4 // claim IPv6
	if _, err := Decode(b); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestECNManipulation(t *testing.T) {
	var ip IPv4
	ip.SetECN(2) // ECT(0)
	if ip.ECN() != 2 {
		t.Fatalf("ECN = %d", ip.ECN())
	}
	ip.TOS |= 0xfc // DSCP bits
	ip.SetECN(3)   // CE
	if ip.ECN() != 3 || ip.TOS>>2 != 0x3f {
		t.Fatal("SetECN must not clobber DSCP")
	}
}

func TestIPv4LengthBounds(t *testing.T) {
	// A frame whose IP total length exceeds the buffer must clamp, not
	// panic.
	b := BuildUDP(macA, macB, ipA, ipB, 1, 2, []byte("abc"))
	ipb := b[EthernetHeaderLen:]
	binary.BigEndian.PutUint16(ipb[2:4], 60000)
	// Fix checksum so only the length is wrong.
	ipb[10], ipb[11] = 0, 0
	cs := Checksum(ipb[:20])
	binary.BigEndian.PutUint16(ipb[10:12], cs)
	if _, err := Decode(b); err != nil {
		t.Fatalf("oversized length should clamp: %v", err)
	}
}

func TestAddrStringers(t *testing.T) {
	if Addr4(10, 1, 2, 3).String() != "10.1.2.3" {
		t.Fatal("IPv4Addr.String wrong")
	}
	if macA.String() != "02:00:00:00:00:aa" {
		t.Fatalf("MAC.String = %s", macA)
	}
}

func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		b := BuildUDP(macA, macB, ipA, ipB, sp, dp, payload)
		fr, err := Decode(b)
		if err != nil {
			return false
		}
		return fr.HasUDP && fr.UDP.SrcPort == sp && fr.UDP.DstPort == dp &&
			bytes.Equal(fr.Payload, payload) &&
			VerifyIPv4Checksum(b[EthernetHeaderLen:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Fuzz-lite: random bytes must never panic the decoder.
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeUDPFrame(b *testing.B) {
	frame := BuildUDP(macA, macB, ipA, ipB, 1234, 53, make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}
