// Package proto implements the packet header formats the platform's real
// network functions parse and rewrite: Ethernet II, IPv4, UDP and TCP, with
// correct internet checksums. It is a minimal, allocation-conscious
// decoder/encoder in the spirit of gopacket's DecodingLayerParser: headers
// decode from and serialize into caller-provided byte slices, so the hot
// path never allocates.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Byte offsets and sizes of the supported headers.
const (
	EthernetHeaderLen = 14
	IPv4MinHeaderLen  = 20
	UDPHeaderLen      = 8
	TCPMinHeaderLen   = 20
)

// EtherTypes.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17
)

// Common decoding errors.
var (
	ErrTooShort   = errors.New("proto: buffer too short")
	ErrBadVersion = errors.New("proto: not IPv4")
	ErrBadIHL     = errors.New("proto: bad IPv4 header length")
)

// MAC is an Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4Addr is an IPv4 address in network order.
type IPv4Addr uint32

// Addr4 builds an address from octets.
func Addr4(a, b, c, d byte) IPv4Addr {
	return IPv4Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// DecodeEthernet parses the header and returns the payload slice.
func DecodeEthernet(b []byte) (Ethernet, []byte, error) {
	if len(b) < EthernetHeaderLen {
		return Ethernet{}, nil, ErrTooShort
	}
	var e Ethernet
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return e, b[EthernetHeaderLen:], nil
}

// Put serializes the header into b, which must hold EthernetHeaderLen bytes.
func (e *Ethernet) Put(b []byte) {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
}

// IPv4 is an IPv4 header (options unsupported on encode, skipped on decode).
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length including header
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst IPv4Addr
}

// ECN codepoint accessors (low two bits of TOS).
func (ip *IPv4) ECN() uint8     { return ip.TOS & 0x3 }
func (ip *IPv4) SetECN(v uint8) { ip.TOS = ip.TOS&^0x3 | v&0x3 }

// DecodeIPv4 parses the header and returns the L4 payload slice.
func DecodeIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < IPv4MinHeaderLen {
		return IPv4{}, nil, ErrTooShort
	}
	if b[0]>>4 != 4 {
		return IPv4{}, nil, ErrBadVersion
	}
	var ip IPv4
	ip.IHL = b[0] & 0x0f
	hlen := int(ip.IHL) * 4
	if hlen < IPv4MinHeaderLen || len(b) < hlen {
		return IPv4{}, nil, ErrBadIHL
	}
	ip.TOS = b[1]
	ip.Length = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	ip.Src = IPv4Addr(binary.BigEndian.Uint32(b[12:16]))
	ip.Dst = IPv4Addr(binary.BigEndian.Uint32(b[16:20]))
	end := int(ip.Length)
	if end > len(b) || end < hlen {
		end = len(b)
	}
	return ip, b[hlen:end], nil
}

// Put serializes a 20-byte (optionless) header into b and stamps a correct
// checksum. Length, Src, Dst etc. come from the struct; IHL is forced to 5.
func (ip *IPv4) Put(b []byte) {
	ip.IHL = 5
	b[0] = 4<<4 | 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(ip.Dst))
	ip.Checksum = Checksum(b[:20])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
}

// VerifyChecksum reports whether an on-wire IPv4 header checksums to zero.
func VerifyIPv4Checksum(b []byte) bool {
	if len(b) < IPv4MinHeaderLen {
		return false
	}
	hlen := int(b[0]&0x0f) * 4
	if hlen < IPv4MinHeaderLen || hlen > len(b) {
		return false
	}
	return Checksum(b[:hlen]) == 0
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// DecodeUDP parses the header and returns the payload.
func DecodeUDP(b []byte) (UDP, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDP{}, nil, ErrTooShort
	}
	u := UDP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}
	return u, b[UDPHeaderLen:], nil
}

// Put serializes the header (checksum left as stored; use PseudoChecksum to
// compute it).
func (u *UDP) Put(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
}

// TCP is a TCP header (options preserved as opaque bytes on decode).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
	TCPEce = 1 << 6 // ECN echo
	TCPCwr = 1 << 7
)

// DecodeTCP parses the header and returns the payload.
func DecodeTCP(b []byte) (TCP, []byte, error) {
	if len(b) < TCPMinHeaderLen {
		return TCP{}, nil, ErrTooShort
	}
	var t TCP
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.DataOff = b[12] >> 4
	hlen := int(t.DataOff) * 4
	if hlen < TCPMinHeaderLen || hlen > len(b) {
		return TCP{}, nil, ErrBadIHL
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	return t, b[hlen:], nil
}

// Put serializes a 20-byte (optionless) header.
func (t *TCP) Put(b []byte) {
	t.DataOff = 5
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
}

// Checksum computes the RFC 1071 internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// PseudoChecksum computes the TCP/UDP checksum over the IPv4 pseudo header
// plus the transport segment bytes (header with zeroed checksum + payload).
func PseudoChecksum(src, dst IPv4Addr, protocol uint8, segment []byte) uint16 {
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:4], uint32(src))
	binary.BigEndian.PutUint32(pseudo[4:8], uint32(dst))
	pseudo[9] = protocol
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b[:2]))
			b = b[2:]
		}
		if len(b) == 1 {
			sum += uint32(b[0]) << 8
		}
	}
	add(pseudo[:])
	add(segment)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Frame is a fully decoded packet: the layers present and the payload.
type Frame struct {
	Eth     Ethernet
	IP      IPv4
	HasIP   bool
	UDP     UDP
	HasUDP  bool
	TCP     TCP
	HasTCP  bool
	Payload []byte
}

// Decode parses an Ethernet frame through the transport layer. Unsupported
// ether types or protocols stop cleanly with the decoded prefix.
func Decode(b []byte) (Frame, error) {
	var f Frame
	eth, rest, err := DecodeEthernet(b)
	if err != nil {
		return f, err
	}
	f.Eth = eth
	f.Payload = rest
	if eth.EtherType != EtherTypeIPv4 {
		return f, nil
	}
	ip, l4, err := DecodeIPv4(rest)
	if err != nil {
		return f, err
	}
	f.IP = ip
	f.HasIP = true
	f.Payload = l4
	switch ip.Protocol {
	case IPProtoUDP:
		u, pay, err := DecodeUDP(l4)
		if err != nil {
			return f, err
		}
		f.UDP = u
		f.HasUDP = true
		f.Payload = pay
	case IPProtoTCP:
		t, pay, err := DecodeTCP(l4)
		if err != nil {
			return f, err
		}
		f.TCP = t
		f.HasTCP = true
		f.Payload = pay
	}
	return f, nil
}

// EncodeUDP assembles a complete Ethernet+IPv4+UDP frame with correct
// checksums in place into b — the allocation-free counterpart of BuildUDP
// for preallocated frame arenas — and reports the frame length. b must have
// room for EthernetHeaderLen+IPv4MinHeaderLen+UDPHeaderLen+len(payload)
// bytes (it panics on a short buffer, like any slice write).
func EncodeUDP(b []byte, srcMAC, dstMAC MAC, src, dst IPv4Addr, srcPort, dstPort uint16, payload []byte) int {
	total := EthernetHeaderLen + IPv4MinHeaderLen + UDPHeaderLen + len(payload)
	b = b[:total]
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	eth.Put(b)
	ipb := b[EthernetHeaderLen:]
	ip := IPv4{
		Length:   uint16(IPv4MinHeaderLen + UDPHeaderLen + len(payload)),
		TTL:      64,
		Protocol: IPProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	ip.Put(ipb)
	ub := ipb[IPv4MinHeaderLen:]
	u := UDP{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UDPHeaderLen + len(payload))}
	u.Put(ub)
	copy(ub[UDPHeaderLen:], payload)
	u.Checksum = PseudoChecksum(src, dst, IPProtoUDP, ub)
	binary.BigEndian.PutUint16(ub[6:8], u.Checksum)
	return total
}

// BuildUDP assembles a complete Ethernet+IPv4+UDP frame with correct
// checksums into a fresh slice.
func BuildUDP(srcMAC, dstMAC MAC, src, dst IPv4Addr, srcPort, dstPort uint16, payload []byte) []byte {
	total := EthernetHeaderLen + IPv4MinHeaderLen + UDPHeaderLen + len(payload)
	b := make([]byte, total)
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	eth.Put(b)
	ipb := b[EthernetHeaderLen:]
	ip := IPv4{
		Length:   uint16(IPv4MinHeaderLen + UDPHeaderLen + len(payload)),
		TTL:      64,
		Protocol: IPProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	ip.Put(ipb)
	ub := ipb[IPv4MinHeaderLen:]
	u := UDP{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UDPHeaderLen + len(payload))}
	u.Put(ub)
	copy(ub[UDPHeaderLen:], payload)
	u.Checksum = PseudoChecksum(src, dst, IPProtoUDP, ub)
	binary.BigEndian.PutUint16(ub[6:8], u.Checksum)
	return b
}

// BuildTCP assembles a complete Ethernet+IPv4+TCP frame with correct
// checksums into a fresh slice.
func BuildTCP(srcMAC, dstMAC MAC, src, dst IPv4Addr, srcPort, dstPort uint16, seq, ack uint32, flags uint8, payload []byte) []byte {
	total := EthernetHeaderLen + IPv4MinHeaderLen + TCPMinHeaderLen + len(payload)
	b := make([]byte, total)
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	eth.Put(b)
	ipb := b[EthernetHeaderLen:]
	ip := IPv4{
		Length:   uint16(IPv4MinHeaderLen + TCPMinHeaderLen + len(payload)),
		TTL:      64,
		Protocol: IPProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	ip.Put(ipb)
	tb := ipb[IPv4MinHeaderLen:]
	t := TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	t.Put(tb)
	copy(tb[TCPMinHeaderLen:], payload)
	t.Checksum = PseudoChecksum(src, dst, IPProtoTCP, tb)
	binary.BigEndian.PutUint16(tb[16:18], t.Checksum)
	return b
}
