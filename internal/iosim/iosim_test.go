package iosim

import (
	"testing"

	"nfvnice/internal/eventsim"
	"nfvnice/internal/simtime"
)

func TestDiskCompletesInOrder(t *testing.T) {
	eng := eventsim.New()
	d := NewDisk(eng)
	var order []int
	d.Submit(1000, func(simtime.Cycles) { order = append(order, 1) })
	d.Submit(1000, func(simtime.Cycles) { order = append(order, 2) })
	d.Submit(1000, func(simtime.Cycles) { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("completion order %v", order)
	}
	if d.Ops != 3 || d.Bytes != 3000 {
		t.Fatalf("ops=%d bytes=%d", d.Ops, d.Bytes)
	}
}

func TestDiskTiming(t *testing.T) {
	eng := eventsim.New()
	d := NewDisk(eng)
	d.Bandwidth = 1_000_000 // 1 MB/s to make transfer time visible
	d.Latency = simtime.Millisecond
	var doneAt simtime.Cycles
	// 1000 bytes at 1MB/s = 1ms transfer + 1ms latency = 2ms.
	d.Submit(1000, func(now simtime.Cycles) { doneAt = now })
	eng.Run()
	want := 2 * simtime.Millisecond
	if doneAt != want {
		t.Fatalf("completion at %v, want %v", doneAt, want)
	}
}

func TestDiskQueueDepth(t *testing.T) {
	eng := eventsim.New()
	d := NewDisk(eng)
	d.Submit(1<<20, nil)
	d.Submit(1<<20, nil)
	if d.QueueDepth() != 2 {
		t.Fatalf("depth = %d", d.QueueDepth())
	}
	eng.Run()
	if d.QueueDepth() != 0 {
		t.Fatalf("depth after drain = %d", d.QueueDepth())
	}
}

func TestWriterDoubleBuffering(t *testing.T) {
	eng := eventsim.New()
	d := NewDisk(eng)
	w := NewWriter(eng, d)
	w.BufBytes = 1000
	// Fill buffer A: triggers a flush, but logging continues into B.
	if !w.Log(1000) {
		t.Fatal("first fill rejected")
	}
	if !w.Log(500) {
		t.Fatal("log during flush rejected: double buffering broken")
	}
	eng.Run()
	if d.Bytes < 1000 {
		t.Fatalf("flushed bytes = %d", d.Bytes)
	}
}

func TestWriterBlocksWhenBothBuffersBusy(t *testing.T) {
	eng := eventsim.New()
	d := NewDisk(eng)
	// Glacial disk so flushes stay in flight.
	d.Bandwidth = 1000
	d.Latency = simtime.Second
	w := NewWriter(eng, d)
	w.BufBytes = 100
	unblocked := false
	w.Unblock = func(simtime.Cycles) { unblocked = true }
	if !w.Log(100) { // A flushes
		t.Fatal("fill A rejected")
	}
	if !w.Log(100) { // B flushes
		t.Fatal("fill B rejected")
	}
	if w.Log(10) { // both in flight: must report blocked
		t.Fatal("log accepted with both buffers flushing")
	}
	if w.BlockedLogs != 1 {
		t.Fatalf("BlockedLogs = %d", w.BlockedLogs)
	}
	eng.Run()
	if !unblocked {
		t.Fatal("Unblock never fired after flush completed")
	}
}

func TestWriterFlushInterval(t *testing.T) {
	// A partial buffer must flush after FlushInterval even without
	// reaching capacity.
	eng := eventsim.New()
	d := NewDisk(eng)
	w := NewWriter(eng, d)
	w.BufBytes = 1 << 20
	w.FlushInterval = simtime.Millisecond
	w.Log(100)
	eng.RunUntil(10 * simtime.Millisecond)
	eng.Run()
	if d.Bytes != 100 {
		t.Fatalf("partial buffer never flushed: disk bytes = %d", d.Bytes)
	}
}

func TestWriterZeroBytes(t *testing.T) {
	eng := eventsim.New()
	w := NewWriter(eng, NewDisk(eng))
	if !w.Log(0) {
		t.Fatal("zero-byte log should be accepted")
	}
	if w.Pending() != 0 {
		t.Fatal("zero-byte log should not buffer")
	}
}

func TestWriterThroughputMatchesDisk(t *testing.T) {
	// Saturating the writer must achieve the disk's bandwidth: flushes of
	// full buffers back to back.
	eng := eventsim.New()
	d := NewDisk(eng)
	d.Latency = 0
	d.Bandwidth = 100_000_000 // 100 MB/s
	w := NewWriter(eng, d)
	w.BufBytes = 64 << 10

	// Offer 1500 bytes every microsecond for a simulated second
	// (1.5 GB/s offered, far above disk speed).
	var rejected int
	eng.Every(0, simtime.Microsecond, func() {
		if eng.Now() >= simtime.Second {
			eng.Stop()
			return
		}
		if !w.Log(1500) {
			rejected++
		}
	})
	eng.Run()
	gbDone := float64(d.Bytes)
	if gbDone < 95_000_000 || gbDone > 105_000_000 {
		t.Fatalf("disk moved %.0f bytes in 1s, want ~100MB", gbDone)
	}
	if rejected == 0 {
		t.Fatal("overdriven writer never pushed back")
	}
}

func TestSyncWriterStalls(t *testing.T) {
	eng := eventsim.New()
	d := NewDisk(eng)
	s := NewSyncWriter(d)
	stall := s.StallCycles(1500)
	// Syscall cost plus 1500 bytes at 500 MB/s.
	want := s.SyscallCost + simtime.Cycles(uint64(1500)*uint64(simtime.Second)/d.Bandwidth)
	if stall != want {
		t.Fatalf("stall %v, want %v", stall, want)
	}
	if s.LoggedBytes != 1500 {
		t.Fatalf("LoggedBytes = %d", s.LoggedBytes)
	}
}

func TestReaderWindow(t *testing.T) {
	eng := eventsim.New()
	d := NewDisk(eng)
	d.Latency = simtime.Millisecond
	r := NewReader(eng, d)
	r.MaxOutstanding = 2
	unblocked := 0
	r.Unblock = func(simtime.Cycles) { unblocked++ }
	completions := 0
	cb := func(simtime.Cycles) { completions++ }
	if !r.Read(512, cb) || !r.Read(512, cb) {
		t.Fatal("reads within window rejected")
	}
	if r.Read(512, cb) {
		t.Fatal("read beyond window accepted")
	}
	if r.Outstanding() != 2 || r.BlockedReads != 1 {
		t.Fatalf("outstanding=%d blocked=%d", r.Outstanding(), r.BlockedReads)
	}
	eng.Run()
	if completions != 2 {
		t.Fatalf("completions = %d", completions)
	}
	if unblocked == 0 {
		t.Fatal("Unblock never fired")
	}
	if r.BytesRead != 1024 || r.ReadsIssued != 2 {
		t.Fatalf("bytes=%d reads=%d", r.BytesRead, r.ReadsIssued)
	}
	// Window free again.
	if !r.Read(100, nil) {
		t.Fatal("read after drain rejected")
	}
	eng.Run()
}
