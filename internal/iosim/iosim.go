// Package iosim models the storage path behind libnf's asynchronous I/O
// API (libnf_read_data / libnf_write_data): a bandwidth-limited disk that
// serves requests in FIFO order, and a double-buffered batched writer that
// lets an NF keep processing packets while a full buffer flushes in the
// background. When both buffers are full the NF must yield the CPU — the
// blocking condition the paper describes.
package iosim

import (
	"nfvnice/internal/eventsim"
	"nfvnice/internal/simtime"
)

// Disk is a simple storage device: one request at a time, each costing a
// fixed setup latency plus size/bandwidth. The defaults approximate a SATA
// SSD (500 MB/s, 50 µs op latency), enough to be the bottleneck an NF's
// logging must hide.
type Disk struct {
	eng *eventsim.Engine

	// Bandwidth is in bytes per second; Latency is the per-op setup cost.
	Bandwidth uint64
	Latency   simtime.Cycles

	busy  bool
	queue []request

	// Ops and Bytes count completed operations.
	Ops   uint64
	Bytes uint64
}

type request struct {
	bytes    int
	callback func(now simtime.Cycles)
}

// NewDisk returns a disk attached to the engine with default parameters.
func NewDisk(eng *eventsim.Engine) *Disk {
	return &Disk{eng: eng, Bandwidth: 500_000_000, Latency: 50 * simtime.Microsecond}
}

// Submit queues an operation of the given size; callback (optional) runs at
// completion time in engine context.
func (d *Disk) Submit(bytes int, callback func(now simtime.Cycles)) {
	d.queue = append(d.queue, request{bytes, callback})
	if !d.busy {
		d.startNext()
	}
}

// QueueDepth reports outstanding requests (including the one in flight).
func (d *Disk) QueueDepth() int {
	n := len(d.queue)
	if d.busy {
		n++
	}
	return n
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	req := d.queue[0]
	d.queue = d.queue[1:]
	d.busy = true
	dur := d.Latency + simtime.Cycles(uint64(req.bytes)*uint64(simtime.Second)/d.Bandwidth)
	d.eng.After(dur, func() {
		d.Ops++
		d.Bytes += uint64(req.bytes)
		if req.callback != nil {
			req.callback(d.eng.Now())
		}
		d.startNext()
	})
}

// bufState is the lifecycle of one of the writer's two buffers.
type bufState uint8

const (
	bufIdle bufState = iota
	bufFilling
	bufFlushing
)

// Writer is libnf's double-buffered batched log writer. Log appends bytes
// to the filling buffer; when it reaches BufBytes the writer swaps buffers
// and flushes the full one asynchronously. A flush timer bounds how long a
// partial buffer can linger. Log reports false — "NF must yield" — exactly
// when both buffers are unavailable (one flushing, the other full waiting).
type Writer struct {
	eng  *eventsim.Engine
	disk *Disk

	// BufBytes is each buffer's capacity; FlushInterval bounds staleness
	// of a partially filled buffer. Both are the "tunable by the NF
	// implementation" knobs from the paper.
	BufBytes      int
	FlushInterval simtime.Cycles

	fill       [2]int
	state      [2]bufState
	active     int
	flushTimer *eventsim.Event

	// Unblock, if set, is invoked when buffer space becomes available
	// after Log returned false — libnf's wakeup of a blocked NF.
	Unblock func(now simtime.Cycles)
	blocked bool

	// LoggedBytes counts accepted bytes; BlockedLogs counts Log calls
	// that found no space.
	LoggedBytes uint64
	BlockedLogs uint64
}

// NewWriter returns a writer with 64 KiB buffers and a 1 ms flush interval.
func NewWriter(eng *eventsim.Engine, disk *Disk) *Writer {
	return &Writer{
		eng:           eng,
		disk:          disk,
		BufBytes:      64 << 10,
		FlushInterval: simtime.Millisecond,
	}
}

// Log appends bytes to the active buffer. It reports false when no buffer
// can accept the data; the caller should block until Unblock fires.
func (w *Writer) Log(bytes int) bool {
	if bytes <= 0 {
		return true
	}
	a := w.active
	if w.state[a] == bufFlushing {
		// Try the other buffer.
		a = 1 - a
		if w.state[a] == bufFlushing {
			w.BlockedLogs++
			w.blocked = true
			return false
		}
		w.active = a
	}
	if w.state[a] == bufIdle {
		w.state[a] = bufFilling
		w.armFlushTimer()
	}
	w.fill[a] += bytes
	w.LoggedBytes += uint64(bytes)
	if w.fill[a] >= w.BufBytes {
		w.flush(a)
	}
	return true
}

// Pending reports bytes buffered but not yet submitted to the disk.
func (w *Writer) Pending() int { return w.fill[0] + w.fill[1] }

func (w *Writer) armFlushTimer() {
	if w.flushTimer != nil {
		w.flushTimer.Cancel()
	}
	w.flushTimer = w.eng.After(w.FlushInterval, func() {
		w.flushTimer = nil
		a := w.active
		if w.state[a] == bufFilling && w.fill[a] > 0 {
			w.flush(a)
		}
	})
}

func (w *Writer) flush(i int) {
	bytes := w.fill[i]
	w.state[i] = bufFlushing
	w.disk.Submit(bytes, func(now simtime.Cycles) {
		w.fill[i] = 0
		w.state[i] = bufIdle
		if w.blocked {
			w.blocked = false
			if w.Unblock != nil {
				w.Unblock(now)
			}
		}
	})
	// Continue filling into the other buffer if it is free.
	if w.state[1-i] != bufFlushing {
		w.active = 1 - i
	}
}

// SyncWriter models the naive alternative the paper compares against:
// blocking write() calls on the packet path. Each call pays the syscall +
// page-cache copy cost inline, and the writeback throttles the caller to the
// device bandwidth once the cache is dirty — so the NF stalls for
// syscall + bytes/bandwidth per logged packet instead of overlapping I/O
// with processing as libnf's double-buffered writer does.
type SyncWriter struct {
	disk *Disk

	// SyscallCost is the blocking write() overhead (trap, copy, locking).
	SyscallCost simtime.Cycles

	// LoggedBytes counts written bytes.
	LoggedBytes uint64
}

// NewSyncWriter returns a synchronous writer over the disk.
func NewSyncWriter(disk *Disk) *SyncWriter {
	return &SyncWriter{disk: disk, SyscallCost: 5 * simtime.Microsecond}
}

// StallCycles reports how long the NF is stalled writing the given size.
func (s *SyncWriter) StallCycles(bytes int) simtime.Cycles {
	s.LoggedBytes += uint64(bytes)
	return s.SyscallCost + simtime.Cycles(uint64(bytes)*uint64(simtime.Second)/s.disk.Bandwidth)
}

// Reader is the read half of libnf's async I/O (libnf_read_data): requests
// are queued with a callback and completed off the packet path; the NF keeps
// processing while reads are in flight, blocking only when too many are
// outstanding.
type Reader struct {
	eng  *eventsim.Engine
	disk *Disk

	// MaxOutstanding bounds in-flight reads before Read pushes back.
	MaxOutstanding int

	outstanding int
	blocked     bool

	// Unblock, if set, fires when a completion frees a slot after Read
	// returned false.
	Unblock func(now simtime.Cycles)

	// ReadsIssued and BytesRead count completed activity; BlockedReads
	// counts rejected submissions.
	ReadsIssued  uint64
	BytesRead    uint64
	BlockedReads uint64
}

// NewReader returns a reader allowing 8 outstanding requests.
func NewReader(eng *eventsim.Engine, disk *Disk) *Reader {
	return &Reader{eng: eng, disk: disk, MaxOutstanding: 8}
}

// Outstanding reports in-flight reads.
func (r *Reader) Outstanding() int { return r.outstanding }

// Read submits an asynchronous read of the given size; callback (optional)
// runs at completion. It reports false when the outstanding window is full —
// the NF should yield until Unblock fires.
func (r *Reader) Read(bytes int, callback func(now simtime.Cycles)) bool {
	if r.outstanding >= r.MaxOutstanding {
		r.BlockedReads++
		r.blocked = true
		return false
	}
	r.outstanding++
	r.disk.Submit(bytes, func(now simtime.Cycles) {
		r.outstanding--
		r.ReadsIssued++
		r.BytesRead += uint64(bytes)
		if callback != nil {
			callback(now)
		}
		if r.blocked && r.outstanding < r.MaxOutstanding {
			r.blocked = false
			if r.Unblock != nil {
				r.Unblock(now)
			}
		}
	})
	return true
}
