package nf

import (
	"math/rand"
	"testing"

	"nfvnice/internal/cpusched"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/iosim"
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

func testNF(cost CostModel) *NF {
	return New(1, "nf", cost, DefaultParams(), 42)
}

func fill(n *NF, pool *packet.Pool, count int) {
	for i := 0; i < count; i++ {
		pkt := pool.Get()
		pkt.Size = 64
		n.Rx.Enqueue(0, pkt)
	}
}

func TestSegmentBatching(t *testing.T) {
	n := testNF(FixedCost(250))
	pool := packet.NewPool(256)
	fill(n, pool, 100)
	cost := n.Segment(0)
	// First segment carries the rdtsc sampling overhead.
	want := simtime.Cycles(32*250) + n.params.BatchOverhead + 2*n.params.RDTSCCost
	if cost != want {
		t.Fatalf("batch cost = %d, want %d", cost, want)
	}
	if more := n.Complete(0); !more {
		t.Fatal("68 packets remain; NF should keep the CPU")
	}
	if n.Tx.Len() != 32 {
		t.Fatalf("tx ring = %d, want 32", n.Tx.Len())
	}
}

func TestSegmentEmptyRxBlocks(t *testing.T) {
	n := testNF(FixedCost(250))
	if n.Segment(0) != 0 {
		t.Fatal("empty rx should report no work")
	}
}

func TestCompleteBlocksWhenDrained(t *testing.T) {
	n := testNF(FixedCost(100))
	pool := packet.NewPool(64)
	fill(n, pool, 5)
	n.Segment(0)
	if n.Complete(0) {
		t.Fatal("drained NF should yield")
	}
}

func TestYieldFlagStopsProcessing(t *testing.T) {
	n := testNF(FixedCost(100))
	pool := packet.NewPool(64)
	fill(n, pool, 40)
	n.YieldFlag = true
	if n.Segment(0) != 0 {
		t.Fatal("yield flag must stop new batches")
	}
	n.YieldFlag = false
	if n.Segment(0) == 0 {
		t.Fatal("cleared flag should allow work")
	}
	n.YieldFlag = true
	if n.Complete(0) {
		t.Fatal("flag set mid-batch: NF must yield at the boundary")
	}
}

func TestYieldFlagBlocksWake(t *testing.T) {
	n := testNF(FixedCost(100))
	pool := packet.NewPool(64)
	fill(n, pool, 10)
	n.YieldFlag = true
	if n.WantsWake() {
		t.Fatal("throttled NF must not be woken")
	}
	n.YieldFlag = false
	if !n.WantsWake() {
		t.Fatal("NF with packets should want wake")
	}
}

func TestTxFullTriggersLocalBackpressure(t *testing.T) {
	p := DefaultParams()
	p.RingSize = 64
	n := New(1, "nf", FixedCost(100), p, 1)
	pool := packet.NewPool(256)
	for i := 0; i < 128; i++ {
		pkt := pool.Get()
		if !n.Rx.Enqueue(0, pkt) {
			pkt.Release()
		}
	}
	// Process until the 64-slot Tx ring fills (2 batches of 32).
	for i := 0; i < 2; i++ {
		if n.Segment(0) == 0 {
			t.Fatalf("segment %d refused work", i)
		}
		n.Complete(0)
	}
	if !n.TxBlocked() {
		t.Fatal("full tx ring must set local backpressure")
	}
	if n.Segment(0) != 0 {
		t.Fatal("tx-blocked NF must not take another batch")
	}
	// Manager drains tx and clears the flag; with fresh rx packets the NF
	// resumes.
	for n.Tx.Len() > 0 {
		n.Tx.Dequeue(0).Release()
	}
	n.SetTxBlocked(false)
	fill(n, pool, 4)
	if n.Segment(0) == 0 {
		t.Fatal("NF should resume after tx drain")
	}
}

func TestSegmentLimitedByTxSpace(t *testing.T) {
	p := DefaultParams()
	p.RingSize = 64
	n := New(1, "nf", FixedCost(100), p, 1)
	pool := packet.NewPool(256)
	fill(n, pool, 60)
	// Leave only 10 slots free in Tx.
	for i := 0; i < 54; i++ {
		n.Tx.Enqueue(0, pool.Get())
	}
	n.Segment(0)
	if got := len(n.batch); got != 10 {
		t.Fatalf("batch limited to %d, want 10 (tx space)", got)
	}
	n.Complete(0)
}

func TestServiceTimeEstimation(t *testing.T) {
	n := testNF(FixedCost(550))
	pool := packet.NewPool(4096)
	now := simtime.Cycles(0)
	// Run enough sampled batches to pass warmup (10) and populate the
	// 100 ms window; samples are 1 ms apart.
	for i := 0; i < 40; i++ {
		fill(n, pool, 32)
		c := n.Segment(now)
		if c == 0 {
			t.Fatal("no work")
		}
		n.Complete(now)
		n.Tx.DrainAndRelease(now)
		now += n.params.SampleInterval
	}
	got := n.EstimatedServiceTime(now)
	if got != 550 {
		t.Fatalf("estimated service time = %d, want 550", got)
	}
}

func TestServiceTimeMedianRobustToVariance(t *testing.T) {
	// With per-packet class costs, the median should land on one of the
	// class values, not an average distorted by outliers.
	n := testNF(ClassCost{120, 270, 550})
	pool := packet.NewPool(4096)
	rng := rand.New(rand.NewSource(5))
	now := simtime.Cycles(0)
	for i := 0; i < 60; i++ {
		for j := 0; j < 32; j++ {
			pkt := pool.Get()
			pkt.CostClass = rng.Intn(3)
			n.Rx.Enqueue(now, pkt)
		}
		if n.Segment(now) == 0 {
			t.Fatal("no work")
		}
		n.Complete(now)
		n.Tx.DrainAndRelease(now)
		now += n.params.SampleInterval
	}
	got := uint64(n.EstimatedServiceTime(now))
	if got != 120 && got != 270 && got != 550 {
		t.Fatalf("median = %d, want one of the class costs", got)
	}
}

func TestAsyncLoggerBlocksNF(t *testing.T) {
	eng := eventsim.New()
	disk := iosim.NewDisk(eng)
	disk.Bandwidth = 1000 // glacial
	disk.Latency = simtime.Second
	w := iosim.NewWriter(eng, disk)
	w.BufBytes = 64 // tiny: one packet fills a buffer

	n := testNF(FixedCost(100))
	n.AttachLogger(w)
	pool := packet.NewPool(256)
	fill(n, pool, 96)
	for i := 0; i < 3 && !n.IOBlocked(); i++ {
		if n.Segment(eng.Now()) == 0 {
			break
		}
		n.Complete(eng.Now())
		n.Tx.DrainAndRelease(eng.Now())
	}
	if !n.IOBlocked() {
		t.Fatal("saturated writer must block the NF")
	}
	if n.Segment(eng.Now()) != 0 {
		t.Fatal("io-blocked NF must not process")
	}
	// Let the disk finish a flush; the unblock callback clears the state.
	eng.Run()
	if n.IOBlocked() {
		t.Fatal("flush completion should unblock the NF")
	}
}

func TestSyncLoggerInflatesCost(t *testing.T) {
	eng := eventsim.New()
	disk := iosim.NewDisk(eng)
	n := testNF(FixedCost(100))
	n.SyncLogger = iosim.NewSyncWriter(disk)
	pool := packet.NewPool(64)
	fill(n, pool, 32)
	cost := n.Segment(0)
	if cost < 32*n.SyncLogger.SyscallCost {
		t.Fatalf("sync logging cost %v should include per-packet syscall stalls", cost)
	}
	n.Complete(0)
}

func TestLogFlowsSelective(t *testing.T) {
	eng := eventsim.New()
	disk := iosim.NewDisk(eng)
	w := iosim.NewWriter(eng, disk)
	n := testNF(FixedCost(100))
	n.AttachLogger(w)
	n.LogFlows = map[int]bool{7: true}
	pool := packet.NewPool(64)
	for i := 0; i < 10; i++ {
		pkt := pool.Get()
		pkt.Size = 100
		pkt.FlowID = i % 2 // flows 0 and 1, neither is 7
		n.Rx.Enqueue(0, pkt)
	}
	n.Segment(0)
	n.Complete(0)
	if w.LoggedBytes != 0 {
		t.Fatalf("logged %d bytes for non-matching flows", w.LoggedBytes)
	}
	// Now a matching flow.
	pkt := pool.Get()
	pkt.Size = 100
	pkt.FlowID = 7
	n.Rx.Enqueue(0, pkt)
	n.Segment(0)
	n.Complete(0)
	if w.LoggedBytes != 100 {
		t.Fatalf("logged %d bytes, want 100", w.LoggedBytes)
	}
}

func TestHopAndWorkAdvance(t *testing.T) {
	n := testNF(FixedCost(250))
	pool := packet.NewPool(8)
	pkt := pool.Get()
	n.Rx.Enqueue(0, pkt)
	n.Segment(0)
	n.Complete(0)
	out := n.Tx.Dequeue(0)
	if out.Hop != 1 {
		t.Fatalf("hop = %d, want 1", out.Hop)
	}
	if out.Work != 250 {
		t.Fatalf("work = %v, want 250", out.Work)
	}
}

func TestCostModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if FixedCost(120).Cost(nil, rng) != 120 {
		t.Fatal("fixed")
	}
	cc := ClassCost{10, 20, 30}
	if cc.Cost(&packet.Packet{CostClass: 2}, rng) != 30 {
		t.Fatal("class")
	}
	if cc.Cost(&packet.Packet{CostClass: 9}, rng) != 10 {
		t.Fatal("class out of range should fall back to class 0")
	}
	if (ClassCost{}).Cost(&packet.Packet{}, rng) != 0 {
		t.Fatal("empty class cost")
	}
	u := UniformCost{Lo: 100, Hi: 200}
	for i := 0; i < 100; i++ {
		c := u.Cost(nil, rng)
		if c < 100 || c > 200 {
			t.Fatalf("uniform out of range: %d", c)
		}
	}
	if (UniformCost{Lo: 50, Hi: 50}).Cost(nil, rng) != 50 {
		t.Fatal("degenerate uniform")
	}
	b := ByteCost{Base: 100, PerByte: 2}
	if b.Cost(&packet.Packet{Size: 64}, rng) != 228 {
		t.Fatal("byte cost")
	}
	d := NewDynamicCost(300)
	if d.Cost(nil, rng) != 300 || d.Current() != 300 {
		t.Fatal("dynamic initial")
	}
	d.Set(900)
	if d.Cost(nil, rng) != 900 {
		t.Fatal("dynamic update")
	}
}

func TestTaskIntegration(t *testing.T) {
	// The NF as a cpusched actor on a real core: packets in, packets out.
	eng := eventsim.New()
	core := cpusched.NewCore(0, eng, cpusched.NewCFS(), cpusched.DefaultCoreParams())
	n := testNF(FixedCost(260)) // 10 Mpps capacity at 2.6GHz
	core.AddTask(n.Task)
	pool := packet.NewPool(4096)
	fill(n, pool, 1000)
	core.Wake(n.Task)
	eng.RunUntil(simtime.Millisecond)
	if got := n.ProcessedMeter.Total(); got != 1000 {
		t.Fatalf("processed %d packets, want 1000", got)
	}
	if n.Task.State() != cpusched.Blocked {
		t.Fatal("NF should block after draining its queue")
	}
}
