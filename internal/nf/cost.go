package nf

import (
	"math/rand"

	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

// CostModel yields the CPU cost of processing one packet at an NF. The
// paper's workloads use fixed per-packet costs (e.g. 120/270/550 cycles),
// per-packet variable costs drawn from a class set (Fig 10), per-byte costs
// (Fig 14's I/O experiment varies packet size), and costs that change at
// runtime (Fig 15a's dynamic adaptation).
type CostModel interface {
	// Cost returns the cycles needed for this packet. rng is the NF's
	// seeded RNG for stochastic models.
	Cost(p *packet.Packet, rng *rand.Rand) simtime.Cycles
}

// FixedCost charges the same cycles for every packet.
type FixedCost simtime.Cycles

// Cost implements CostModel.
func (c FixedCost) Cost(*packet.Packet, *rand.Rand) simtime.Cycles {
	return simtime.Cycles(c)
}

// ClassCost charges by the packet's CostClass, the Fig 10 workload where
// "packets are classified as having one of 3 processing costs at each NF".
// A packet whose class is out of range uses class 0.
type ClassCost []simtime.Cycles

// Cost implements CostModel.
func (c ClassCost) Cost(p *packet.Packet, _ *rand.Rand) simtime.Cycles {
	if len(c) == 0 {
		return 0
	}
	if p.CostClass < 0 || p.CostClass >= len(c) {
		return c[0]
	}
	return c[p.CostClass]
}

// UniformCost draws each packet's cost uniformly from [Lo, Hi].
type UniformCost struct {
	Lo, Hi simtime.Cycles
}

// Cost implements CostModel.
func (c UniformCost) Cost(_ *packet.Packet, rng *rand.Rand) simtime.Cycles {
	if c.Hi <= c.Lo {
		return c.Lo
	}
	return c.Lo + simtime.Cycles(rng.Int63n(int64(c.Hi-c.Lo+1)))
}

// ByteCost charges Base plus PerByte cycles for each byte of the frame —
// the shape of payload-touching NFs (DPI, encryption, logging).
type ByteCost struct {
	Base    simtime.Cycles
	PerByte simtime.Cycles
}

// Cost implements CostModel.
func (c ByteCost) Cost(p *packet.Packet, _ *rand.Rand) simtime.Cycles {
	return c.Base + c.PerByte*simtime.Cycles(p.Size)
}

// DynamicCost is a fixed cost that the experiment can change at runtime
// (Fig 15a triples NF1's cost between t=31 s and t=60 s).
type DynamicCost struct {
	cycles simtime.Cycles
}

// NewDynamicCost returns a mutable fixed-cost model.
func NewDynamicCost(c simtime.Cycles) *DynamicCost { return &DynamicCost{cycles: c} }

// Set changes the per-packet cost; takes effect for subsequently processed
// packets.
func (d *DynamicCost) Set(c simtime.Cycles) { d.cycles = c }

// Current reports the active cost.
func (d *DynamicCost) Current() simtime.Cycles { return d.cycles }

// Cost implements CostModel.
func (d *DynamicCost) Cost(*packet.Packet, *rand.Rand) simtime.Cycles { return d.cycles }
