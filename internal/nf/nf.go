// Package nf models a network function process linked against libnf: it
// reads packets from its receive ring in batches of at most 32, charges
// per-packet CPU cost, writes results to its transmit ring, samples its own
// service time for the manager, optionally logs packets through the async
// I/O library, and yields the CPU exactly when libnf would — receive ring
// empty, transmit ring full, I/O buffers saturated, or the manager's
// backpressure flag set.
package nf

import (
	"math/rand"

	"nfvnice/internal/cpusched"
	"nfvnice/internal/iosim"
	"nfvnice/internal/packet"
	"nfvnice/internal/ring"
	"nfvnice/internal/simtime"
	"nfvnice/internal/stats"
)

// Params configure libnf behaviour. Defaults mirror the paper's platform.
type Params struct {
	// BatchSize is the maximum packets processed between yield checks.
	BatchSize int
	// BatchOverhead is framework cost per batch (ring ops, flag checks).
	BatchOverhead simtime.Cycles
	// SampleInterval is how often libnf samples packet processing time
	// with the cycle counter (1 ms in the paper, to avoid per-packet
	// rdtsc pipeline flushes).
	SampleInterval simtime.Cycles
	// SampleWindow is the moving window over which the manager takes the
	// median service time (100 ms).
	SampleWindow simtime.Cycles
	// RDTSCCost is the cycle counter read cost charged on sampled batches.
	RDTSCCost simtime.Cycles
	// RingSize, HighFrac and LowFrac shape the receive/transmit rings and
	// their backpressure watermarks.
	RingSize int
	HighFrac float64
	LowFrac  float64
	// WarmupSamples are discarded before the estimator trusts service
	// times ("we discard the first 10 samples to account for warming the
	// cache").
	WarmupSamples int
}

// DefaultParams returns the calibrated libnf parameters.
func DefaultParams() Params {
	return Params{
		BatchSize:      32,
		BatchOverhead:  100,
		SampleInterval: simtime.Millisecond,
		SampleWindow:   100 * simtime.Millisecond,
		RDTSCCost:      50,
		RingSize:       4096,
		HighFrac:       0.80,
		LowFrac:        0.60,
		WarmupSamples:  10,
	}
}

// NF is one network function instance.
type NF struct {
	ID       int
	Name     string
	Cost     CostModel
	Priority float64 // NFVnice share multiplier (default 1)

	Rx   *ring.Buffer
	Tx   *ring.Buffer
	Task *cpusched.Task

	// YieldFlag is the shared-memory flag the manager sets to make the NF
	// relinquish the CPU at its next batch boundary (backpressure).
	YieldFlag bool

	// Logger, when set, makes the NF log matching packets to storage via
	// the async double-buffered writer. SyncLogger is the synchronous
	// baseline; at most one should be set.
	Logger     *iosim.Writer
	SyncLogger *iosim.SyncWriter
	// LogFlows restricts logging to specific FlowIDs (nil logs all).
	LogFlows map[int]bool

	// ServiceEst is the service-time estimator shared with the manager.
	ServiceEst *stats.MedianWindow
	// ServiceHist accumulates every sampled per-packet service time over
	// the NF's lifetime (telemetry's service-time histogram; the estimator
	// above only keeps the 100 ms window).
	ServiceHist stats.Histogram

	// Meters the manager and experiments read.
	ArrivalMeter   stats.Meter // packets enqueued to Rx
	ProcessedMeter stats.Meter // packets processed
	WastedDrops    stats.Meter // packets this NF processed that died downstream
	// ProcessedByChain splits the processed count per service chain, for
	// shared-NF accounting (the paper's Table 6).
	ProcessedByChain map[int]uint64

	params Params
	rng    *rand.Rand

	ioBlocked bool
	txBlocked bool

	batch       []*packet.Packet
	batchCosts  []simtime.Cycles
	sampled     int
	pendSample  bool
	everSampled bool
	lastSample  simtime.Cycles
}

// New constructs an NF with its rings and scheduler task. The caller pins
// the Task to a core and wires the manager.
func New(id int, name string, cost CostModel, params Params, seed int64) *NF {
	n := &NF{
		ID:               id,
		Name:             name,
		Cost:             cost,
		Priority:         1,
		params:           params,
		rng:              rand.New(rand.NewSource(seed)),
		Rx:               ring.NewBuffer(params.RingSize, params.HighFrac, params.LowFrac),
		Tx:               ring.NewBuffer(params.RingSize, params.HighFrac, params.LowFrac),
		ServiceEst:       stats.NewMedianWindow(params.SampleWindow),
		ProcessedByChain: make(map[int]uint64),
		batch:            make([]*packet.Packet, 0, params.BatchSize),
		batchCosts:       make([]simtime.Cycles, 0, params.BatchSize),
	}
	n.Task = cpusched.NewTask(id, name, n)
	n.Task.Backlog = n.Rx.Len
	return n
}

// Params returns the NF's libnf configuration.
func (n *NF) Params() Params { return n.params }

// WantsWake reports whether the NF has work it is allowed to run: packets
// pending and no blocking condition. The manager's wakeup subsystem wakes
// the task only when this holds.
func (n *NF) WantsWake() bool {
	return n.Rx.Len() > 0 && !n.YieldFlag && !n.ioBlocked && !n.txBlocked
}

// TxBlocked reports whether the NF is suspended on a full transmit ring.
func (n *NF) TxBlocked() bool { return n.txBlocked }

// SetTxBlocked is used by the manager's Tx thread when it clears (or
// detects) transmit-ring pressure.
func (n *NF) SetTxBlocked(v bool) { n.txBlocked = v }

// IOBlocked reports whether the NF is suspended on saturated I/O buffers.
func (n *NF) IOBlocked() bool { return n.ioBlocked }

// AttachLogger wires an async writer and its unblock callback so the NF
// resumes when a flush completes.
func (n *NF) AttachLogger(w *iosim.Writer) {
	n.Logger = w
	w.Unblock = func(now simtime.Cycles) {
		n.ioBlocked = false
		if n.WantsWake() && n.Task.Core() != nil {
			n.Task.Core().Wake(n.Task)
		}
	}
}

// Segment implements cpusched.Actor: dequeue the next batch and report its
// CPU cost. Returning 0 blocks the task.
func (n *NF) Segment(now simtime.Cycles) simtime.Cycles {
	if n.YieldFlag || n.ioBlocked {
		return 0
	}
	space := n.Tx.Free()
	if space == 0 {
		// Local backpressure: transmit ring full, suspend.
		n.txBlocked = true
		return 0
	}
	limit := n.params.BatchSize
	if space < limit {
		limit = space
	}
	n.batch = n.batch[:0]
	n.batchCosts = n.batchCosts[:0]
	var cost simtime.Cycles
	for len(n.batch) < limit {
		pkt := n.Rx.Dequeue(now)
		if pkt == nil {
			break
		}
		c := n.Cost.Cost(pkt, n.rng)
		if n.SyncLogger != nil && n.shouldLog(pkt) {
			// Synchronous I/O stalls the NF inline — the baseline
			// NFVnice's async library replaces.
			c += n.SyncLogger.StallCycles(pkt.Size)
		}
		n.batch = append(n.batch, pkt)
		n.batchCosts = append(n.batchCosts, c)
		cost += c
	}
	if len(n.batch) == 0 {
		return 0
	}
	cost += n.params.BatchOverhead
	if !n.everSampled || now-n.lastSample >= n.params.SampleInterval {
		n.everSampled = true
		// libnf wraps this batch's first handler call in rdtsc reads.
		cost += 2 * n.params.RDTSCCost
		n.pendSample = true
		n.lastSample = now
	}
	return cost
}

func (n *NF) shouldLog(pkt *packet.Packet) bool {
	if n.LogFlows == nil {
		return true
	}
	return n.LogFlows[pkt.FlowID]
}

// Complete implements cpusched.Actor: deliver the processed batch to the
// transmit ring and decide whether to keep the CPU.
func (n *NF) Complete(now simtime.Cycles) bool {
	if n.pendSample && len(n.batch) > 0 {
		n.pendSample = false
		n.sampled++
		if n.sampled > n.params.WarmupSamples {
			n.ServiceEst.Observe(now, uint64(n.batchCosts[0]))
			n.ServiceHist.Observe(uint64(n.batchCosts[0]))
		}
	}
	for i, pkt := range n.batch {
		pkt.Work += n.batchCosts[i]
		pkt.Hop++
		n.ProcessedByChain[pkt.ChainID]++
		if n.Logger != nil && n.shouldLog(pkt) {
			if !n.Logger.Log(pkt.Size) {
				n.ioBlocked = true
			}
		}
		if !n.Tx.Enqueue(now, pkt) {
			// Cannot happen: Segment bounded the batch by Tx space and
			// nothing else enqueues to our Tx ring.
			panic("nf: transmit ring overflow")
		}
	}
	n.ProcessedMeter.Add(uint64(len(n.batch)))
	n.batch = n.batch[:0]
	n.batchCosts = n.batchCosts[:0]

	if n.Tx.Free() == 0 {
		// Local backpressure: suspend until the Tx thread drains us.
		n.txBlocked = true
		return false
	}
	if n.YieldFlag || n.ioBlocked {
		return false
	}
	return n.Rx.Len() > 0
}

// InFlight reports descriptors held in the batch currently being processed
// (between Segment and Complete).
func (n *NF) InFlight() int { return len(n.batch) }

// EstimatedServiceTime reports the median sampled per-packet cost over the
// moving window, or 0 when the estimator has no data yet.
func (n *NF) EstimatedServiceTime(now simtime.Cycles) simtime.Cycles {
	return simtime.Cycles(n.ServiceEst.Median(now))
}

// EstimatedServiceTimeMean is the mean-based variant for the estimator
// ablation.
func (n *NF) EstimatedServiceTimeMean(now simtime.Cycles) simtime.Cycles {
	return simtime.Cycles(n.ServiceEst.Mean(now))
}
