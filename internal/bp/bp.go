// Package bp implements NFVnice's backpressure machinery: the per-NF
// hysteresis state machine of the paper's Figure 4 (watch list → packet
// throttle → clear throttle), the cross-chain throttle table that enables
// service-chain-specific packet dropping at chain entry points, and the
// ECN marker for responsive flows crossing host boundaries.
package bp

import (
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
	"nfvnice/internal/stats"
)

// State is a position in the Figure 4 state machine.
type State uint8

// Backpressure states.
const (
	ClearThrottle  State = iota // no pressure
	WatchList                   // queue crossed HIGH_WATER_MARK, under observation
	PacketThrottle              // backpressure asserted
)

func (s State) String() string {
	switch s {
	case ClearThrottle:
		return "clear"
	case WatchList:
		return "watch"
	case PacketThrottle:
		return "throttle"
	default:
		return "?"
	}
}

// Params tune the state machine.
type Params struct {
	// QueueTimeThreshold is how long occupancy must stay above the high
	// watermark before throttling engages — the hysteresis that stops a
	// short burst from triggering backpressure.
	QueueTimeThreshold simtime.Cycles
}

// DefaultParams returns the calibrated threshold (50 µs: roughly the
// wakeup-thread scan spacing, as the paper's separation of detection and
// control implies).
func DefaultParams() Params {
	return Params{QueueTimeThreshold: 50 * simtime.Microsecond}
}

// Transition describes one state-machine edge together with the queue
// observation that caused it — the decision provenance record consumed by
// event logs and decision journals. The inputs are the exact arguments the
// Update call saw, so a logged transition is always explainable after the
// fact ("throttled because the queue had been above HIGH_WATER_MARK for
// TimeAbove ≥ QueueTimeThreshold").
type Transition struct {
	From, To State
	// AboveHigh and BelowLow are the watermark conditions at decision time.
	AboveHigh, BelowLow bool
	// TimeAbove is how long the queue had been above the high watermark.
	TimeAbove simtime.Cycles
}

// NFState is one NF's backpressure state machine. Update is fed queue
// observations (typically by the manager's wakeup thread) and reports
// enable/disable edges.
type NFState struct {
	state State

	// Throttles counts enable edges, for diagnostics.
	Throttles uint64

	// Observer, when set, sees every state change with its cause — the
	// hook that feeds decision journals without coupling the state machine
	// to any particular log. Called synchronously from Update.
	Observer func(Transition)
}

// State reports the current state.
func (s *NFState) State() State { return s.state }

// setState transitions the machine, notifying the observer on change.
func (s *NFState) setState(to State, aboveHigh, belowLow bool, timeAbove simtime.Cycles) {
	from := s.state
	s.state = to
	if from != to && s.Observer != nil {
		s.Observer(Transition{From: from, To: to, AboveHigh: aboveHigh, BelowLow: belowLow, TimeAbove: timeAbove})
	}
}

// Update advances the machine given the NF's receive-ring condition.
// enable is true on the Watch→Throttle edge; disable on Throttle→Clear.
func (s *NFState) Update(p Params, aboveHigh, belowLow bool, timeAbove simtime.Cycles) (enable, disable bool) {
	switch s.state {
	case ClearThrottle:
		if aboveHigh {
			s.setState(WatchList, aboveHigh, belowLow, timeAbove)
			// Immediate promotion if the queue has already been high
			// long enough (e.g. detection lagged).
			if timeAbove >= p.QueueTimeThreshold {
				s.setState(PacketThrottle, aboveHigh, belowLow, timeAbove)
				s.Throttles++
				return true, false
			}
		}
	case WatchList:
		switch {
		case belowLow:
			s.setState(ClearThrottle, aboveHigh, belowLow, timeAbove)
		case aboveHigh && timeAbove >= p.QueueTimeThreshold:
			s.setState(PacketThrottle, aboveHigh, belowLow, timeAbove)
			s.Throttles++
			return true, false
		}
	case PacketThrottle:
		if belowLow {
			s.setState(ClearThrottle, aboveHigh, belowLow, timeAbove)
			return false, true
		}
	}
	return false, false
}

// ChainThrottles tracks which service chains are currently under
// backpressure. A chain is throttled while at least one of its NFs is in
// PacketThrottle; the Rx thread then drops that chain's packets at entry
// ("selective early discard"), leaving other chains untouched.
type ChainThrottles struct {
	counts map[int]int

	// EntryDrops counts packets shed at chain entry, per chain.
	EntryDrops map[int]uint64
}

// NewChainThrottles returns an empty table.
func NewChainThrottles() *ChainThrottles {
	return &ChainThrottles{counts: make(map[int]int), EntryDrops: make(map[int]uint64)}
}

// Enable marks the chain throttled by one more bottleneck NF.
func (c *ChainThrottles) Enable(chainID int) { c.counts[chainID]++ }

// Disable removes one bottleneck's claim on the chain.
func (c *ChainThrottles) Disable(chainID int) {
	if c.counts[chainID] > 0 {
		c.counts[chainID]--
	}
}

// Throttled reports whether the chain should be shed at entry.
func (c *ChainThrottles) Throttled(chainID int) bool { return c.counts[chainID] > 0 }

// CountEntryDrop records a packet shed at the chain's entry point.
func (c *ChainThrottles) CountEntryDrop(chainID int) { c.EntryDrops[chainID]++ }

// TotalEntryDrops sums sheds across chains.
func (c *ChainThrottles) TotalEntryDrops() uint64 {
	var n uint64
	for _, v := range c.EntryDrops {
		n += v
	}
	return n
}

// ECNMarker marks Congestion Experienced on ECN-capable packets when the
// exponentially weighted moving average of queue length exceeds a threshold,
// following RFC 3168 as the paper does for cross-host chains. ECN works at
// longer timescales than backpressure, hence the EWMA rather than the
// instantaneous occupancy.
type ECNMarker struct {
	avg       *stats.EWMA
	threshold float64

	// Marked counts CE marks applied.
	Marked uint64

	// OnMark, when set, observes every CE mark (telemetry).
	OnMark func()
}

// NewECNMarker returns a marker that trips when the smoothed queue length
// exceeds threshold packets. Weight 0.02 gives the multi-millisecond
// averaging horizon ECN wants.
func NewECNMarker(threshold float64) *ECNMarker {
	return &ECNMarker{avg: stats.NewEWMA(0.02), threshold: threshold}
}

// OnEnqueue observes the post-enqueue queue length and marks the packet if
// the smoothed length is above threshold and the transport supports ECN.
func (m *ECNMarker) OnEnqueue(qlen int, pkt *packet.Packet) {
	m.avg.Observe(float64(qlen))
	if pkt.ECN == packet.ECT && m.avg.Value() > m.threshold {
		pkt.ECN = packet.CE
		m.Marked++
		if m.OnMark != nil {
			m.OnMark()
		}
	}
}

// Average reports the smoothed queue length.
func (m *ECNMarker) Average() float64 { return m.avg.Value() }

// ECNObserver is the receive side of the cross-host ECN loop: it turns a
// stream of ack-carried CE echoes (see internal/remote) into a sustained
// congestion on/off signal with hysteresis. Congestion asserts on the first
// echo in an observation window and clears only after QuietWindows
// consecutive windows without one — ECN operates at longer timescales than
// local watermark backpressure, matching the EWMA marker on the send side.
// Call Observe once per control-plane window (the engine's backpressure
// cadence) with the echo count since the last call; not safe for concurrent
// use (own it from one control goroutine).
type ECNObserver struct {
	// QuietWindows is how many consecutive echo-free windows clear the
	// signal (0 takes DefaultECNQuietWindows).
	QuietWindows int

	// Asserts counts off→on transitions.
	Asserts uint64

	active bool
	quiet  int
}

// DefaultECNQuietWindows is the default clear hysteresis: with the paper's
// 1 ms backpressure cadence, 8 quiet windows ≈ 8 ms of silence before the
// origin stops throttling.
const DefaultECNQuietWindows = 8

// Observe feeds one window's echo count and reports whether the congestion
// signal changed edge.
func (o *ECNObserver) Observe(echoes uint64) (changed bool) {
	if echoes > 0 {
		o.quiet = 0
		if !o.active {
			o.active = true
			o.Asserts++
			return true
		}
		return false
	}
	if !o.active {
		return false
	}
	o.quiet++
	q := o.QuietWindows
	if q <= 0 {
		q = DefaultECNQuietWindows
	}
	if o.quiet >= q {
		o.active = false
		o.quiet = 0
		return true
	}
	return false
}

// Active reports the current congestion signal.
func (o *ECNObserver) Active() bool { return o.active }
