package bp

import (
	"testing"

	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

func TestStateMachineFigure4(t *testing.T) {
	p := DefaultParams()
	var s NFState
	if s.State() != ClearThrottle {
		t.Fatal("initial state should be clear")
	}
	// Queue crosses high watermark: clear -> watch.
	if en, dis := s.Update(p, true, false, 0); en || dis {
		t.Fatal("no edge expected on clear->watch")
	}
	if s.State() != WatchList {
		t.Fatalf("state = %v, want watch", s.State())
	}
	// Still high but not long enough: stay in watch.
	s.Update(p, true, false, p.QueueTimeThreshold/2)
	if s.State() != WatchList {
		t.Fatal("should remain in watch below time threshold")
	}
	// High and past threshold: watch -> throttle with enable edge.
	en, dis := s.Update(p, true, false, p.QueueTimeThreshold)
	if !en || dis {
		t.Fatal("expected enable edge")
	}
	if s.State() != PacketThrottle {
		t.Fatalf("state = %v, want throttle", s.State())
	}
	// Drain below low watermark: throttle -> clear with disable edge.
	en, dis = s.Update(p, false, true, 0)
	if en || !dis {
		t.Fatal("expected disable edge")
	}
	if s.State() != ClearThrottle {
		t.Fatalf("state = %v, want clear", s.State())
	}
	if s.Throttles != 1 {
		t.Fatalf("Throttles = %d", s.Throttles)
	}
}

func TestWatchReturnsToClear(t *testing.T) {
	p := DefaultParams()
	var s NFState
	s.Update(p, true, false, 0) // -> watch
	// Burst absorbed: below low before threshold elapsed.
	if en, dis := s.Update(p, false, true, 0); en || dis {
		t.Fatal("no edges expected on watch->clear")
	}
	if s.State() != ClearThrottle {
		t.Fatal("watch should fall back to clear below low watermark")
	}
}

func TestImmediatePromotionWhenDetectionLagged(t *testing.T) {
	p := DefaultParams()
	var s NFState
	// First observation already shows a long-standing overload.
	en, _ := s.Update(p, true, false, 10*p.QueueTimeThreshold)
	if !en || s.State() != PacketThrottle {
		t.Fatal("stale overload should promote directly to throttle")
	}
}

func TestThrottleHoldsBetweenWatermarks(t *testing.T) {
	// Hysteresis: between LOW and HIGH the throttle must hold.
	p := DefaultParams()
	var s NFState
	s.Update(p, true, false, p.QueueTimeThreshold) // straight to throttle
	if en, dis := s.Update(p, false, false, 0); en || dis {
		t.Fatal("no edge expected between watermarks")
	}
	if s.State() != PacketThrottle {
		t.Fatal("throttle must hold until below low watermark")
	}
}

func TestChainThrottleRefcounting(t *testing.T) {
	ct := NewChainThrottles()
	if ct.Throttled(1) {
		t.Fatal("fresh table should not throttle")
	}
	// Two bottleneck NFs on the same chain (paper Fig 5: chain C crosses
	// both NF3 and NF5).
	ct.Enable(1)
	ct.Enable(1)
	ct.Disable(1)
	if !ct.Throttled(1) {
		t.Fatal("chain must stay throttled while any bottleneck remains")
	}
	ct.Disable(1)
	if ct.Throttled(1) {
		t.Fatal("chain should clear when all bottlenecks clear")
	}
	// Extra disable must not wedge the counter negative.
	ct.Disable(1)
	ct.Enable(1)
	if !ct.Throttled(1) {
		t.Fatal("counter went negative")
	}
}

func TestChainThrottleSelective(t *testing.T) {
	// Fig 5: backpressure on chains A, C, D must not touch chain B.
	ct := NewChainThrottles()
	ct.Enable(0) // A
	ct.Enable(2) // C
	ct.Enable(3) // D
	if ct.Throttled(1) {
		t.Fatal("unrelated chain throttled")
	}
	for _, id := range []int{0, 2, 3} {
		if !ct.Throttled(id) {
			t.Fatalf("chain %d should be throttled", id)
		}
	}
}

func TestEntryDropAccounting(t *testing.T) {
	ct := NewChainThrottles()
	ct.CountEntryDrop(4)
	ct.CountEntryDrop(4)
	ct.CountEntryDrop(7)
	if ct.EntryDrops[4] != 2 || ct.EntryDrops[7] != 1 {
		t.Fatalf("per-chain drops: %v", ct.EntryDrops)
	}
	if ct.TotalEntryDrops() != 3 {
		t.Fatalf("total = %d", ct.TotalEntryDrops())
	}
}

func TestECNMarking(t *testing.T) {
	m := NewECNMarker(10)
	pkt := &packet.Packet{ECN: packet.ECT}
	// Low queue: no mark.
	m.OnEnqueue(1, pkt)
	if pkt.ECN != packet.ECT {
		t.Fatal("marked below threshold")
	}
	// Long period of deep queues pushes the EWMA over threshold.
	for i := 0; i < 500; i++ {
		m.OnEnqueue(100, &packet.Packet{ECN: packet.ECT})
	}
	if m.Average() < 10 {
		t.Fatalf("EWMA = %v, want > 10", m.Average())
	}
	pkt2 := &packet.Packet{ECN: packet.ECT}
	m.OnEnqueue(100, pkt2)
	if pkt2.ECN != packet.CE {
		t.Fatal("ECT packet not marked above threshold")
	}
	if m.Marked == 0 {
		t.Fatal("mark counter not incremented")
	}
}

func TestECNIgnoresNonECT(t *testing.T) {
	m := NewECNMarker(1)
	for i := 0; i < 1000; i++ {
		m.OnEnqueue(100, &packet.Packet{ECN: packet.NotECT})
	}
	pkt := &packet.Packet{ECN: packet.NotECT}
	m.OnEnqueue(100, pkt)
	if pkt.ECN != packet.NotECT {
		t.Fatal("non-ECT packet must never be marked")
	}
	// Already-marked packets stay marked, not double counted.
	ce := &packet.Packet{ECN: packet.CE}
	before := m.Marked
	m.OnEnqueue(100, ce)
	if ce.ECN != packet.CE || m.Marked != before {
		t.Fatal("CE packet should pass through unchanged")
	}
}

func TestECNSmoothingIgnoresBursts(t *testing.T) {
	// A single burst observation must not trip the marker: the EWMA works
	// at longer timescales.
	m := NewECNMarker(10)
	pkt := &packet.Packet{ECN: packet.ECT}
	m.OnEnqueue(1000, pkt) // first observation initializes EWMA to 1000
	// The first sample seeds the average, so use a fresh marker to test
	// burst rejection after settling.
	m2 := NewECNMarker(10)
	for i := 0; i < 100; i++ {
		m2.OnEnqueue(1, &packet.Packet{ECN: packet.ECT})
	}
	p2 := &packet.Packet{ECN: packet.ECT}
	m2.OnEnqueue(200, p2) // one burst sample
	if p2.ECN == packet.CE {
		t.Fatal("single burst tripped the EWMA marker")
	}
}

func TestStateString(t *testing.T) {
	if ClearThrottle.String() != "clear" || WatchList.String() != "watch" || PacketThrottle.String() != "throttle" {
		t.Fatal("state names wrong")
	}
}

var _ = simtime.Cycles(0)

// TestObserverSeesTransitions pins the decision-provenance hook: every state
// change (including the intermediate clear→watch hop of an immediate
// promotion) reaches the observer with the exact inputs that caused it.
func TestObserverSeesTransitions(t *testing.T) {
	p := DefaultParams()
	var s NFState
	var seen []Transition
	s.Observer = func(tr Transition) { seen = append(seen, tr) }

	s.Update(p, true, false, 0)                    // clear -> watch
	s.Update(p, true, false, p.QueueTimeThreshold) // watch -> throttle
	s.Update(p, true, false, p.QueueTimeThreshold) // no change: not observed
	s.Update(p, false, true, 0)                    // throttle -> clear

	want := []Transition{
		{From: ClearThrottle, To: WatchList, AboveHigh: true},
		{From: WatchList, To: PacketThrottle, AboveHigh: true, TimeAbove: p.QueueTimeThreshold},
		{From: PacketThrottle, To: ClearThrottle, BelowLow: true},
	}
	if len(seen) != len(want) {
		t.Fatalf("observed %d transitions, want %d: %+v", len(seen), len(want), seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, seen[i], want[i])
		}
	}

	// Immediate promotion surfaces both edges, in order.
	seen = nil
	s2 := NFState{Observer: func(tr Transition) { seen = append(seen, tr) }}
	if en, _ := s2.Update(p, true, false, 2*p.QueueTimeThreshold); !en {
		t.Fatal("expected enable edge on immediate promotion")
	}
	if len(seen) != 2 || seen[0].To != WatchList || seen[1].To != PacketThrottle {
		t.Fatalf("immediate promotion transitions = %+v", seen)
	}
}
