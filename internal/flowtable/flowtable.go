// Package flowtable implements the NF manager's flow table: the Rx thread
// looks up each arriving packet's 5-tuple to find the service chain it
// belongs to. Exact-match entries are populated on demand (flow-cache style)
// from installed rules, mirroring OpenNetVM's flow director with an SDN-fed
// rule installer.
package flowtable

import (
	"fmt"

	"nfvnice/internal/packet"
)

// Rule maps a match to a service chain. Zero-valued fields are wildcards.
type Rule struct {
	// Match fields; zero means "any".
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            packet.Proto

	// ChainID is the service chain packets matching this rule follow.
	ChainID int

	// Priority breaks ties among overlapping rules: the highest priority
	// matching rule wins; among equals, the earliest installed wins.
	Priority int
}

func (r Rule) matches(k packet.FlowKey) bool {
	if r.SrcIP != 0 && r.SrcIP != k.SrcIP {
		return false
	}
	if r.DstIP != 0 && r.DstIP != k.DstIP {
		return false
	}
	if r.SrcPort != 0 && r.SrcPort != k.SrcPort {
		return false
	}
	if r.DstPort != 0 && r.DstPort != k.DstPort {
		return false
	}
	if r.Proto != 0 && r.Proto != k.Proto {
		return false
	}
	return true
}

// Table is the two-level flow table: an exact-match cache in front of an
// ordered rule list. Not safe for concurrent use (the simulation is
// single-threaded; the Rx thread owns lookups).
type Table struct {
	exact map[packet.FlowKey]int
	rules []Rule

	// Lookups, CacheHits and Misses count lookup outcomes. A "miss" is a
	// packet matching no rule (dropped by the platform).
	Lookups   uint64
	CacheHits uint64
	Misses    uint64
}

// New returns an empty table.
func New() *Table {
	return &Table{exact: make(map[packet.FlowKey]int)}
}

// Install adds a rule. Rules are consulted in priority order (stable for
// equal priorities). Installing a rule invalidates the exact-match cache,
// as a real flow director must.
func (t *Table) Install(r Rule) {
	// Insert keeping the slice sorted by descending priority, stable.
	pos := len(t.rules)
	for i, existing := range t.rules {
		if r.Priority > existing.Priority {
			pos = i
			break
		}
	}
	t.rules = append(t.rules, Rule{})
	copy(t.rules[pos+1:], t.rules[pos:])
	t.rules[pos] = r
	t.exact = make(map[packet.FlowKey]int)
}

// InstallExact adds an exact-match entry directly, bypassing the rule list.
// Used by tests and by per-flow chain assignment in workloads.
func (t *Table) InstallExact(k packet.FlowKey, chainID int) {
	t.exact[k] = chainID
}

// Lookup resolves the chain for a flow key. ok is false when no rule
// matches.
func (t *Table) Lookup(k packet.FlowKey) (chainID int, ok bool) {
	t.Lookups++
	if id, hit := t.exact[k]; hit {
		t.CacheHits++
		return id, true
	}
	for _, r := range t.rules {
		if r.matches(k) {
			t.exact[k] = r.ChainID
			return r.ChainID, true
		}
	}
	t.Misses++
	return 0, false
}

// Rules reports the number of installed rules; Entries the exact-cache size.
func (t *Table) Rules() int   { return len(t.rules) }
func (t *Table) Entries() int { return len(t.exact) }

// String summarizes the table for diagnostics.
func (t *Table) String() string {
	return fmt.Sprintf("flowtable{rules=%d cache=%d lookups=%d hits=%d misses=%d}",
		len(t.rules), len(t.exact), t.Lookups, t.CacheHits, t.Misses)
}
