package flowtable

import (
	"testing"

	"nfvnice/internal/packet"
)

func key(src, dst uint32, sp, dp uint16, proto packet.Proto) packet.FlowKey {
	return packet.FlowKey{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
}

func TestExactMatch(t *testing.T) {
	ft := New()
	k := key(1, 2, 10, 80, packet.TCP)
	ft.InstallExact(k, 7)
	id, ok := ft.Lookup(k)
	if !ok || id != 7 {
		t.Fatalf("Lookup = %d,%v", id, ok)
	}
	if ft.CacheHits != 1 {
		t.Fatalf("CacheHits = %d", ft.CacheHits)
	}
}

func TestMiss(t *testing.T) {
	ft := New()
	if _, ok := ft.Lookup(key(1, 2, 3, 4, packet.UDP)); ok {
		t.Fatal("lookup in empty table matched")
	}
	if ft.Misses != 1 {
		t.Fatalf("Misses = %d", ft.Misses)
	}
}

func TestWildcardRule(t *testing.T) {
	ft := New()
	ft.Install(Rule{DstPort: 80, ChainID: 1})       // anything to port 80
	ft.Install(Rule{Proto: packet.UDP, ChainID: 2}) // any UDP
	if id, ok := ft.Lookup(key(5, 6, 1000, 80, packet.TCP)); !ok || id != 1 {
		t.Fatalf("port-80 rule: %d,%v", id, ok)
	}
	if id, ok := ft.Lookup(key(5, 6, 1000, 53, packet.UDP)); !ok || id != 2 {
		t.Fatalf("udp rule: %d,%v", id, ok)
	}
	if _, ok := ft.Lookup(key(5, 6, 1000, 53, packet.TCP)); ok {
		t.Fatal("TCP/53 should not match either rule")
	}
}

func TestRuleCachesResolution(t *testing.T) {
	ft := New()
	ft.Install(Rule{ChainID: 3}) // match-all
	k := key(1, 2, 3, 4, packet.UDP)
	ft.Lookup(k)
	if ft.Entries() != 1 {
		t.Fatalf("Entries = %d, want cached resolution", ft.Entries())
	}
	ft.Lookup(k)
	if ft.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want second lookup cached", ft.CacheHits)
	}
}

func TestPriorityOrdering(t *testing.T) {
	ft := New()
	ft.Install(Rule{Proto: packet.TCP, ChainID: 1, Priority: 0})
	ft.Install(Rule{DstPort: 443, ChainID: 2, Priority: 10})
	// TCP to 443: higher priority rule (chain 2) must win.
	if id, _ := ft.Lookup(key(1, 2, 3, 443, packet.TCP)); id != 2 {
		t.Fatalf("priority violated: chain %d", id)
	}
	// TCP elsewhere: falls to chain 1.
	if id, _ := ft.Lookup(key(1, 2, 3, 80, packet.TCP)); id != 1 {
		t.Fatalf("fallback rule: chain %d", id)
	}
}

func TestEqualPriorityStable(t *testing.T) {
	ft := New()
	ft.Install(Rule{Proto: packet.UDP, ChainID: 1, Priority: 5})
	ft.Install(Rule{Proto: packet.UDP, ChainID: 2, Priority: 5})
	if id, _ := ft.Lookup(key(1, 2, 3, 4, packet.UDP)); id != 1 {
		t.Fatalf("equal priority must be first-installed-wins, got chain %d", id)
	}
}

func TestInstallInvalidatesCache(t *testing.T) {
	ft := New()
	ft.Install(Rule{ChainID: 1})
	k := key(9, 9, 9, 9, packet.UDP)
	ft.Lookup(k) // caches chain 1
	ft.Install(Rule{SrcIP: 9, ChainID: 2, Priority: 1})
	if id, _ := ft.Lookup(k); id != 2 {
		t.Fatalf("stale cache after rule install: chain %d", id)
	}
}

func TestCounters(t *testing.T) {
	ft := New()
	ft.Install(Rule{ChainID: 1})
	k := key(1, 1, 1, 1, packet.UDP)
	ft.Lookup(k)
	ft.Lookup(k)
	ft.Lookup(key(2, 2, 2, 2, packet.UDP))
	if ft.Lookups != 3 {
		t.Fatalf("Lookups = %d", ft.Lookups)
	}
	if ft.Rules() != 1 {
		t.Fatalf("Rules = %d", ft.Rules())
	}
	_ = ft.String()
}

func BenchmarkLookupCached(b *testing.B) {
	ft := New()
	keys := make([]packet.FlowKey, 64)
	for i := range keys {
		keys[i] = key(uint32(i), uint32(i+1), uint16(i), 80, packet.UDP)
		ft.InstallExact(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Lookup(keys[i%64])
	}
}
