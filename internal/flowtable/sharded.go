package flowtable

// Sharded is the concurrent, bounded counterpart of Table for the live
// dataplane's ingress frontends: the Rx-thread flow director, but safe for
// any number of producer goroutines and with a hard cap on resident
// entries. Millions of distinct flows stream through it; when a shard is
// full, inserting a new flow evicts an arbitrary resident one (Go's
// randomized map iteration order makes this an effectively random-
// replacement cache, the strategy hardware flow caches fall back to when
// LRU metadata is too expensive per lookup).
//
// Keys spread across power-of-two shards by their FNV-1a hash; each shard
// is an independently locked exact-match map, so concurrent producers
// contend only when their flows collide on a shard.

import (
	"sync"
	"sync/atomic"

	"nfvnice/internal/packet"
	"nfvnice/internal/ring"
)

type shard struct {
	mu      sync.Mutex
	entries map[packet.FlowKey]int
	// The pad keeps one producer's hot shard lock off its neighbours'
	// cache lines (the ring.Pad layout contract).
	_ ring.Pad
}

// Sharded is a concurrency-safe bounded flow table. Create with NewSharded.
type Sharded struct {
	shards   []shard
	mask     uint64
	capShard int

	// Lookups/Hits/Misses count lookup outcomes; Evictions counts resident
	// flows displaced by inserts into a full shard.
	Lookups   atomic.Uint64
	Hits      atomic.Uint64
	Misses    atomic.Uint64
	Evictions atomic.Uint64
}

// NewSharded returns a table of the given shard count (rounded up to a
// power of two, minimum 1) holding at most capacity entries in total
// (minimum one per shard).
func NewSharded(shards, capacity int) *Sharded {
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	t := &Sharded{shards: make([]shard, n), mask: uint64(n - 1), capShard: per}
	for i := range t.shards {
		t.shards[i].entries = make(map[packet.FlowKey]int)
	}
	return t
}

func (t *Sharded) shardOf(k packet.FlowKey) *shard {
	return &t.shards[k.Hash()&t.mask]
}

// Lookup resolves the chain for a flow key; ok is false when the flow is
// not resident (never inserted, or evicted since).
func (t *Sharded) Lookup(k packet.FlowKey) (chainID int, ok bool) {
	t.Lookups.Add(1)
	s := t.shardOf(k)
	s.mu.Lock()
	chainID, ok = s.entries[k]
	s.mu.Unlock()
	if ok {
		t.Hits.Add(1)
	} else {
		t.Misses.Add(1)
	}
	return chainID, ok
}

// Insert makes the flow resident, evicting an arbitrary entry from its
// shard if the shard is at capacity (updates to a resident key never
// evict).
func (t *Sharded) Insert(k packet.FlowKey, chainID int) {
	s := t.shardOf(k)
	s.mu.Lock()
	if _, resident := s.entries[k]; !resident && len(s.entries) >= t.capShard {
		for victim := range s.entries {
			delete(s.entries, victim)
			t.Evictions.Add(1)
			break
		}
	}
	s.entries[k] = chainID
	s.mu.Unlock()
}

// LookupOrInsert resolves the flow, installing chainOf(k) on a miss under
// the shard lock — one locked section for the director's common miss path,
// so two producers racing the same new flow still converge on one entry.
// Reports the chain and whether the flow was already resident.
func (t *Sharded) LookupOrInsert(k packet.FlowKey, chainOf func(packet.FlowKey) int) (chainID int, hit bool) {
	t.Lookups.Add(1)
	s := t.shardOf(k)
	s.mu.Lock()
	if id, ok := s.entries[k]; ok {
		s.mu.Unlock()
		t.Hits.Add(1)
		return id, true
	}
	chainID = chainOf(k)
	if len(s.entries) >= t.capShard {
		for victim := range s.entries {
			delete(s.entries, victim)
			t.Evictions.Add(1)
			break
		}
	}
	s.entries[k] = chainID
	s.mu.Unlock()
	t.Misses.Add(1)
	return chainID, false
}

// Len reports the resident entry count across all shards.
func (t *Sharded) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Capacity reports the table's total entry bound.
func (t *Sharded) Capacity() int { return t.capShard * len(t.shards) }
