package flowtable

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"nfvnice/internal/packet"
)

func keyN(n uint64) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   uint32(0x0a000000 + n&0xffffff),
		DstIP:   0xc6336401,
		SrcPort: uint16(1024 + (n>>24)&0x7fff),
		DstPort: 53,
		Proto:   packet.UDP,
	}
}

// TestShardedConcurrent hammers lookup/insert/LookupOrInsert from many
// goroutines over an overlapping key space; run under -race it is the
// table's data-race gate, and the counters must reconcile afterwards.
func TestShardedConcurrent(t *testing.T) {
	tab := NewSharded(16, 1<<14)
	workers := 4 * runtime.GOMAXPROCS(0)
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				k := keyN(uint64(rng.Intn(1 << 15)))
				switch rng.Intn(3) {
				case 0:
					tab.Insert(k, int(k.SrcIP)%7)
				case 1:
					if id, ok := tab.Lookup(k); ok && id != int(k.SrcIP)%7 {
						panic("sharded: wrong chain for key")
					}
				default:
					id, _ := tab.LookupOrInsert(k, func(packet.FlowKey) int { return int(k.SrcIP) % 7 })
					if id != int(k.SrcIP)%7 {
						panic("sharded: LookupOrInsert returned wrong chain")
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if tab.Len() > tab.Capacity() {
		t.Fatalf("resident %d exceeds capacity %d", tab.Len(), tab.Capacity())
	}
	if got := tab.Hits.Load() + tab.Misses.Load(); got != tab.Lookups.Load() {
		t.Fatalf("lookup outcomes don't reconcile: hits+misses=%d lookups=%d", got, tab.Lookups.Load())
	}
}

// TestShardedEvictionAtScale streams millions of distinct flows through a
// bounded table: residency must never exceed the cap, every displaced flow
// must be counted, and flows from the most recent window — which random
// replacement keeps resident with high probability in aggregate — must
// still resolve correctly when present.
func TestShardedEvictionAtScale(t *testing.T) {
	total := uint64(2_000_000)
	if testing.Short() {
		total = 200_000
	}
	capacity := 1 << 16
	tab := NewSharded(64, capacity)
	for n := uint64(0); n < total; n++ {
		tab.Insert(keyN(n), int(n%5))
	}
	if tab.Len() > tab.Capacity() {
		t.Fatalf("resident %d exceeds capacity %d", tab.Len(), tab.Capacity())
	}
	if got, want := uint64(tab.Len())+tab.Evictions.Load(), total; got != want {
		t.Fatalf("residency accounting: len+evictions=%d, inserted %d distinct flows", got, want)
	}
	// A bounded cache under a one-pass scan must have evicted almost
	// everything — and what survives must still map to the right chain.
	if tab.Evictions.Load() == 0 {
		t.Fatal("no evictions after overflowing the capacity")
	}
	resident := 0
	for n := total - uint64(capacity); n < total; n++ {
		if id, ok := tab.Lookup(keyN(n)); ok {
			resident++
			if id != int(n%5) {
				t.Fatalf("flow %d resolved to chain %d, want %d", n, id, n%5)
			}
		}
	}
	if resident == 0 {
		t.Fatal("random replacement evicted the entire trailing window; expected some residency")
	}
}

// TestShardedUpdateDoesNotEvict pins the update-in-place rule: re-inserting
// a resident key at capacity must not displace a neighbour.
func TestShardedUpdateDoesNotEvict(t *testing.T) {
	tab := NewSharded(1, 4)
	for n := uint64(0); n < 4; n++ {
		tab.Insert(keyN(n), 1)
	}
	tab.Insert(keyN(2), 9)
	if tab.Evictions.Load() != 0 {
		t.Fatalf("update of a resident key evicted: %d", tab.Evictions.Load())
	}
	if id, ok := tab.Lookup(keyN(2)); !ok || id != 9 {
		t.Fatalf("updated key lost: id=%d ok=%v", id, ok)
	}
}

// BenchmarkShardedLookupHit establishes the ns/lookup the batch adapter's
// amortization claim is measured against (resident key, uncontended).
func BenchmarkShardedLookupHit(b *testing.B) {
	tab := NewSharded(16, 1<<16)
	const flows = 1 << 14
	for n := uint64(0); n < flows; n++ {
		tab.Insert(keyN(n), int(n%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(keyN(uint64(i) % flows))
	}
}

// BenchmarkShardedLookupParallel measures the contended path: every P
// hammers the same table, flows spread across shards.
func BenchmarkShardedLookupParallel(b *testing.B) {
	tab := NewSharded(64, 1<<16)
	const flows = 1 << 14
	for n := uint64(0); n < flows; n++ {
		tab.Insert(keyN(n), int(n%5))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := uint64(rand.Int63())
		for pb.Next() {
			tab.Lookup(keyN(n % flows))
			n++
		}
	})
}

// BenchmarkExactLookup is the single-threaded Table baseline (the
// simulator's Rx-thread cache hit).
func BenchmarkExactLookup(b *testing.B) {
	tab := New()
	const flows = 1 << 14
	for n := uint64(0); n < flows; n++ {
		tab.InstallExact(keyN(n), int(n%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(keyN(uint64(i) % flows))
	}
}
