package nfs

import (
	"encoding/binary"
	"fmt"

	"nfvnice/internal/proto"
)

// Router is a longest-prefix-match IPv4 router over a binary trie, with TTL
// decrement and incremental checksum update — the classic "switch-class"
// NF with per-core throughput in the Mpps range.
type Router struct {
	root *trieNode

	// Routed, TTLExpired and NoRoute count outcomes. LastNextHop records
	// the most recent routing decision for observability.
	Routed      uint64
	TTLExpired  uint64
	NoRoute     uint64
	LastNextHop int
}

type trieNode struct {
	child   [2]*trieNode
	nextHop int
	valid   bool
}

// NewRouter returns a router with an empty FIB.
func NewRouter() *Router {
	return &Router{root: &trieNode{}, LastNextHop: -1}
}

// Name implements Processor.
func (r *Router) Name() string { return "router" }

// AddRoute installs prefix/plen → nextHop. A /0 sets the default route.
func (r *Router) AddRoute(prefix proto.IPv4Addr, plen int, nextHop int) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("router: bad prefix length %d", plen)
	}
	n := r.root
	for i := 0; i < plen; i++ {
		bit := uint32(prefix) >> (31 - i) & 1
		if n.child[bit] == nil {
			n.child[bit] = &trieNode{}
		}
		n = n.child[bit]
	}
	n.nextHop = nextHop
	n.valid = true
	return nil
}

// Lookup performs longest-prefix match.
func (r *Router) Lookup(addr proto.IPv4Addr) (nextHop int, ok bool) {
	n := r.root
	best := -1
	found := false
	for i := 0; i < 32 && n != nil; i++ {
		if n.valid {
			best, found = n.nextHop, true
		}
		bit := uint32(addr) >> (31 - i) & 1
		n = n.child[bit]
	}
	if n != nil && n.valid {
		best, found = n.nextHop, true
	}
	return best, found
}

// Process implements Processor: LPM lookup, TTL decrement, checksum fix.
func (r *Router) Process(frame []byte) Verdict {
	if len(frame) < proto.EthernetHeaderLen+proto.IPv4MinHeaderLen {
		return Drop
	}
	f, err := proto.Decode(frame)
	if err != nil || !f.HasIP {
		return Drop
	}
	if f.IP.TTL <= 1 {
		r.TTLExpired++
		return Drop
	}
	hop, ok := r.Lookup(f.IP.Dst)
	if !ok {
		r.NoRoute++
		r.LastNextHop = -1
		return Drop
	}
	// Decrement TTL in place; the checksum change for TTL-1 on the high
	// byte of word 4 is an incremental update.
	ipb := frame[proto.EthernetHeaderLen:]
	oldWord := binary.BigEndian.Uint16(ipb[8:10])
	ipb[8]--
	newWord := binary.BigEndian.Uint16(ipb[8:10])
	cs := binary.BigEndian.Uint16(ipb[10:12])
	binary.BigEndian.PutUint16(ipb[10:12], csumUpdate16(cs, oldWord, newWord))
	r.LastNextHop = hop
	r.Routed++
	return Accept
}
