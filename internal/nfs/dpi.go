package nfs

import (
	"nfvnice/internal/proto"
)

// DPI is a deep packet inspection NF: an Aho-Corasick multi-pattern matcher
// scanning every payload byte. It is the canonical "High" cost NF — per
// packet cost scales with payload length, the heterogeneity §2.1 measures.
type DPI struct {
	ac *ahoCorasick
	// DropOnMatch makes matching packets get dropped (IPS mode) instead
	// of just counted (IDS mode).
	DropOnMatch bool

	// Scanned, Matches and Dropped count activity; PerPattern counts hits
	// by pattern index.
	Scanned    uint64
	Matches    uint64
	Dropped    uint64
	PerPattern []uint64
}

// NewDPI builds the matcher over the given byte patterns.
func NewDPI(patterns [][]byte, dropOnMatch bool) *DPI {
	return &DPI{
		ac:          buildAhoCorasick(patterns),
		DropOnMatch: dropOnMatch,
		PerPattern:  make([]uint64, len(patterns)),
	}
}

// Name implements Processor.
func (d *DPI) Name() string { return "dpi" }

// Process implements Processor: scan the application payload.
func (d *DPI) Process(frame []byte) Verdict {
	f, err := proto.Decode(frame)
	if err != nil {
		return Drop
	}
	d.Scanned++
	matched := false
	d.ac.scan(f.Payload, func(pattern int) {
		matched = true
		d.Matches++
		d.PerPattern[pattern]++
	})
	if matched && d.DropOnMatch {
		d.Dropped++
		return Drop
	}
	return Accept
}

// ahoCorasick is a classic Aho-Corasick automaton over bytes.
type ahoCorasick struct {
	next [][256]int32 // goto function; -1 = undefined before fallback fill
	fail []int32
	out  [][]int32 // pattern indices terminating at each state
}

func buildAhoCorasick(patterns [][]byte) *ahoCorasick {
	ac := &ahoCorasick{}
	newState := func() int32 {
		var row [256]int32
		for i := range row {
			row[i] = -1
		}
		ac.next = append(ac.next, row)
		ac.fail = append(ac.fail, 0)
		ac.out = append(ac.out, nil)
		return int32(len(ac.next) - 1)
	}
	newState() // root = 0
	// Build the trie.
	for pi, p := range patterns {
		s := int32(0)
		for _, c := range p {
			if ac.next[s][c] == -1 {
				ac.next[s][c] = newState()
			}
			s = ac.next[s][c]
		}
		ac.out[s] = append(ac.out[s], int32(pi))
	}
	// BFS to set failure links and complete the goto function.
	queue := make([]int32, 0, len(ac.next))
	for c := 0; c < 256; c++ {
		if ac.next[0][c] == -1 {
			ac.next[0][c] = 0
		} else {
			ac.fail[ac.next[0][c]] = 0
			queue = append(queue, ac.next[0][c])
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			t := ac.next[s][c]
			if t == -1 {
				ac.next[s][c] = ac.next[ac.fail[s]][c]
				continue
			}
			ac.fail[t] = ac.next[ac.fail[s]][c]
			ac.out[t] = append(ac.out[t], ac.out[ac.fail[t]]...)
			queue = append(queue, t)
		}
	}
	return ac
}

// scan walks the payload, invoking emit for every pattern occurrence.
func (ac *ahoCorasick) scan(payload []byte, emit func(pattern int)) {
	s := int32(0)
	for _, c := range payload {
		s = ac.next[s][c]
		for _, pi := range ac.out[s] {
			emit(int(pi))
		}
	}
}
