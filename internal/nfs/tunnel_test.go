package nfs

import (
	"bytes"
	"testing"

	"nfvnice/internal/proto"
)

func TestVXLANRoundTrip(t *testing.T) {
	inner := udpFrame(insideA, outside, 1234, 80, "inner payload")
	enc := &VXLANEncap{
		VNI:         42,
		OuterSrc:    proto.Addr4(172, 16, 0, 1),
		OuterDst:    proto.Addr4(172, 16, 0, 2),
		OuterSrcMAC: macA,
		OuterDstMAC: macB,
	}
	if enc.Process(inner) != Accept {
		t.Fatal("encap dropped")
	}
	outer := enc.LastFrame
	// Outer frame is well-formed UDP to 4789 with valid checksums.
	checksumsValid(t, outer)
	fo, err := proto.Decode(outer)
	if err != nil || !fo.HasUDP || fo.UDP.DstPort != 4789 {
		t.Fatalf("outer frame wrong: %+v err=%v", fo.UDP, err)
	}

	dec := &VXLANDecap{VNI: 42}
	if dec.Process(outer) != Accept {
		t.Fatal("decap dropped matching VNI")
	}
	if !bytes.Equal(dec.LastFrame, inner) {
		t.Fatal("inner frame corrupted through the tunnel")
	}
	if enc.Encapsulated != 1 || dec.Decapsulated != 1 {
		t.Fatal("counters wrong")
	}
}

func TestVXLANDecapFiltersVNI(t *testing.T) {
	inner := udpFrame(insideA, outside, 1, 2, "x")
	enc := &VXLANEncap{VNI: 7, OuterSrc: proto.Addr4(1, 1, 1, 1), OuterDst: proto.Addr4(2, 2, 2, 2), OuterSrcMAC: macA, OuterDstMAC: macB}
	enc.Process(inner)
	dec := &VXLANDecap{VNI: 99}
	if dec.Process(enc.LastFrame) != Drop {
		t.Fatal("foreign VNI accepted")
	}
	if dec.Rejected != 1 {
		t.Fatal("rejection not counted")
	}
	// VNI 0 terminates any tunnel.
	decAny := &VXLANDecap{}
	if decAny.Process(enc.LastFrame) != Accept {
		t.Fatal("wildcard VNI rejected")
	}
}

func TestVXLANDecapRejectsNonVXLAN(t *testing.T) {
	dec := &VXLANDecap{}
	if dec.Process(udpFrame(insideA, outside, 1, 53, "dns")) != Drop {
		t.Fatal("non-VXLAN UDP accepted")
	}
	if dec.Process([]byte{1, 2, 3}) != Drop {
		t.Fatal("garbage accepted")
	}
}

func TestRateLimiterAggregate(t *testing.T) {
	// 1000 B/s, 1500 B burst: the first full-size packet conforms, then
	// the bucket refills a packet per ~1.5 s.
	rl := NewRateLimiter(1000, 1500, false)
	fr := udpFrame(insideA, outside, 1, 2, string(make([]byte, 1458))) // 1500B frame
	rl.Tick(0)
	if rl.Process(fr) != Accept {
		t.Fatal("first packet should conform (full bucket)")
	}
	if rl.Process(fr) != Drop {
		t.Fatal("second immediate packet should be policed")
	}
	rl.Tick(1.5)
	if rl.Process(fr) != Accept {
		t.Fatal("refilled bucket should conform")
	}
	if rl.Conformed != 2 || rl.Policed != 1 {
		t.Fatalf("counters: %d/%d", rl.Conformed, rl.Policed)
	}
}

func TestRateLimiterLongRunRate(t *testing.T) {
	// Over 10 simulated seconds at 10 kB/s, ~100 frames of 1000 B conform
	// regardless of a 10x offered rate.
	rl := NewRateLimiter(10_000, 2000, false)
	fr := udpFrame(insideA, outside, 1, 2, string(make([]byte, 958))) // 1000B
	for i := 0; i < 1000; i++ {
		rl.Tick(float64(i) * 0.01)
		rl.Process(fr)
	}
	got := rl.Conformed
	if got < 95 || got > 110 {
		t.Fatalf("conformed %d frames, want ~100 (token rate)", got)
	}
}

func TestRateLimiterPerFlowIsolation(t *testing.T) {
	rl := NewRateLimiter(1000, 1500, true)
	f1 := udpFrame(insideA, outside, 1000, 80, string(make([]byte, 1458)))
	f2 := udpFrame(insideA, outside, 2000, 80, string(make([]byte, 1458)))
	rl.Tick(0)
	if rl.Process(f1) != Accept {
		t.Fatal("flow1 first packet policed")
	}
	if rl.Process(f1) != Drop {
		t.Fatal("flow1 burst not policed")
	}
	// A different flow has its own bucket.
	if rl.Process(f2) != Accept {
		t.Fatal("flow2 penalized for flow1's burst")
	}
}
