package nfs

import (
	"encoding/binary"

	"nfvnice/internal/proto"
)

// LoadBalancer is an L4 load balancer: flows are hashed consistently onto a
// backend set and the destination address is rewritten in place (checksum-
// incremental), so a flow always lands on the same backend even as other
// backends come and go — a rendezvous ("highest random weight") hash.
type LoadBalancer struct {
	// VIP is the virtual address the balancer answers for; only traffic
	// to it is rewritten.
	VIP      proto.IPv4Addr
	backends []proto.IPv4Addr

	// Balanced, PassedThrough count outcomes; PerBackend counts flows by
	// backend index (first packet of each flow).
	Balanced      uint64
	PassedThrough uint64
	PerBackend    []uint64

	flows map[natKey]int
}

// NewLoadBalancer returns a balancer for vip over backends.
func NewLoadBalancer(vip proto.IPv4Addr, backends []proto.IPv4Addr) *LoadBalancer {
	return &LoadBalancer{
		VIP:        vip,
		backends:   append([]proto.IPv4Addr(nil), backends...),
		PerBackend: make([]uint64, len(backends)),
		flows:      make(map[natKey]int),
	}
}

// Name implements Processor.
func (lb *LoadBalancer) Name() string { return "loadbalancer" }

// rendezvous picks the backend with the highest hash(flow, backend) score.
func (lb *LoadBalancer) rendezvous(k natKey) int {
	best, bestScore := 0, uint64(0)
	for i, b := range lb.backends {
		h := fnvMix(uint64(k.src)<<32|uint64(k.srcPort)<<16|uint64(k.proto), uint64(b))
		if h >= bestScore {
			best, bestScore = i, h
		}
	}
	return best
}

func fnvMix(a, b uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= a >> (8 * i) & 0xff
		h *= prime
	}
	for i := 0; i < 8; i++ {
		h ^= b >> (8 * i) & 0xff
		h *= prime
	}
	return h
}

// Process implements Processor.
func (lb *LoadBalancer) Process(frame []byte) Verdict {
	if len(lb.backends) == 0 {
		return Drop
	}
	f, err := proto.Decode(frame)
	if err != nil || !f.HasIP || f.IP.Dst != lb.VIP || (!f.HasUDP && !f.HasTCP) {
		lb.PassedThrough++
		return Accept
	}
	var sp, dp uint16
	if f.HasUDP {
		sp, dp = f.UDP.SrcPort, f.UDP.DstPort
	} else {
		sp, dp = f.TCP.SrcPort, f.TCP.DstPort
	}
	k := natKey{src: f.IP.Src, dst: f.IP.Dst, srcPort: sp, dstPort: dp, proto: f.IP.Protocol}
	idx, ok := lb.flows[k]
	if !ok {
		idx = lb.rendezvous(k)
		lb.flows[k] = idx
		lb.PerBackend[idx]++
	}
	backend := lb.backends[idx]

	ipb := frame[proto.EthernetHeaderLen:]
	hlen := int(f.IP.IHL) * 4
	l4 := ipb[hlen:]
	oldAddr := binary.BigEndian.Uint32(ipb[16:20])
	binary.BigEndian.PutUint32(ipb[16:20], uint32(backend))
	cs := binary.BigEndian.Uint16(ipb[10:12])
	binary.BigEndian.PutUint16(ipb[10:12], csumUpdate32(cs, oldAddr, uint32(backend)))
	if off := transportCsumOffset(f.IP.Protocol); off >= 0 {
		tc := binary.BigEndian.Uint16(l4[off : off+2])
		if f.IP.Protocol != proto.IPProtoUDP || tc != 0 {
			binary.BigEndian.PutUint16(l4[off:off+2], csumUpdate32(tc, oldAddr, uint32(backend)))
		}
	}
	lb.Balanced++
	return Accept
}

// ActiveFlows reports tracked flows.
func (lb *LoadBalancer) ActiveFlows() int { return len(lb.flows) }
