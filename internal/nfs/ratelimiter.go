package nfs

import (
	"nfvnice/internal/proto"
)

// RateLimiter is a token-bucket policer: each flow (or the aggregate) may
// send at RateBps with bursts up to BurstBytes; excess packets are dropped.
// Time is supplied by the caller (Tick) so the limiter works identically
// under the simulator's virtual clock and the dataplane's wall clock.
type RateLimiter struct {
	// RateBps is the refill rate in bytes per second; BurstBytes the
	// bucket depth.
	RateBps    float64
	BurstBytes float64
	// PerFlow polices each 5-tuple separately instead of the aggregate.
	PerFlow bool

	now     float64 // seconds, advanced by Tick
	buckets map[flowKey]*bucket
	agg     bucket

	// Conformed and Policed count outcomes.
	Conformed uint64
	Policed   uint64
}

type bucket struct {
	tokens float64
	last   float64
}

// NewRateLimiter returns a limiter with a full bucket.
func NewRateLimiter(rateBps, burstBytes float64, perFlow bool) *RateLimiter {
	rl := &RateLimiter{
		RateBps:    rateBps,
		BurstBytes: burstBytes,
		PerFlow:    perFlow,
		buckets:    make(map[flowKey]*bucket),
	}
	rl.agg.tokens = burstBytes
	return rl
}

// Tick advances the limiter's clock to t seconds.
func (rl *RateLimiter) Tick(t float64) {
	if t > rl.now {
		rl.now = t
	}
}

// Name implements Processor.
func (rl *RateLimiter) Name() string { return "ratelimiter" }

func (rl *RateLimiter) bucketFor(f *proto.Frame) *bucket {
	if !rl.PerFlow {
		return &rl.agg
	}
	k := flowKey{src: f.IP.Src, dst: f.IP.Dst, proto: f.IP.Protocol}
	switch {
	case f.HasUDP:
		k.srcPort, k.dstPort = f.UDP.SrcPort, f.UDP.DstPort
	case f.HasTCP:
		k.srcPort, k.dstPort = f.TCP.SrcPort, f.TCP.DstPort
	}
	b := rl.buckets[k]
	if b == nil {
		b = &bucket{tokens: rl.BurstBytes, last: rl.now}
		rl.buckets[k] = b
	}
	return b
}

// Process implements Processor.
func (rl *RateLimiter) Process(frame []byte) Verdict {
	f, err := proto.Decode(frame)
	if err != nil || !f.HasIP {
		return Drop
	}
	b := rl.bucketFor(&f)
	// Refill.
	b.tokens += (rl.now - b.last) * rl.RateBps
	b.last = rl.now
	if b.tokens > rl.BurstBytes {
		b.tokens = rl.BurstBytes
	}
	need := float64(len(frame))
	if b.tokens < need {
		rl.Policed++
		return Drop
	}
	b.tokens -= need
	rl.Conformed++
	return Accept
}
