package nfs

import (
	"testing"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/proto"
)

var (
	macA    = proto.MAC{2, 0, 0, 0, 0, 0xaa}
	macB    = proto.MAC{2, 0, 0, 0, 0, 0xbb}
	macC    = proto.MAC{2, 0, 0, 0, 0, 0xcc}
	insideA = proto.Addr4(10, 0, 0, 5)
	outside = proto.Addr4(93, 184, 216, 34)
	natIP   = proto.Addr4(198, 51, 100, 1)
)

func udpFrame(src, dst proto.IPv4Addr, sp, dp uint16, payload string) []byte {
	return proto.BuildUDP(macA, macB, src, dst, sp, dp, []byte(payload))
}

func tcpFrame(src, dst proto.IPv4Addr, sp, dp uint16, payload string) []byte {
	return proto.BuildTCP(macA, macB, src, dst, sp, dp, 1000, 2000, proto.TCPAck, []byte(payload))
}

// checksumsValid verifies IP and transport checksums of a frame.
func checksumsValid(t *testing.T, frame []byte) {
	t.Helper()
	ipb := frame[proto.EthernetHeaderLen:]
	if !proto.VerifyIPv4Checksum(ipb) {
		t.Fatal("IP checksum invalid")
	}
	f, err := proto.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	seg := ipb[int(f.IP.IHL)*4:]
	if proto.PseudoChecksum(f.IP.Src, f.IP.Dst, f.IP.Protocol, seg) != 0 {
		t.Fatal("transport checksum invalid")
	}
}

func TestBridgeLearnsAndForwards(t *testing.T) {
	b := NewBridge(3)
	// First frame from A: dst unknown -> flood, A learned on port 3.
	f1 := proto.BuildUDP(macA, macB, insideA, outside, 1, 2, nil)
	if b.Process(f1) != Accept {
		t.Fatal("bridge dropped a frame")
	}
	if b.LastOutPort != -1 || b.Flooded != 1 {
		t.Fatal("unknown destination should flood")
	}
	if port, ok := b.Lookup(macA); !ok || port != 3 {
		t.Fatal("source not learned")
	}
	// Reply toward A: forwarded out port 3.
	b2 := NewBridge(7)
	b2.table = b.table // same fabric table
	f2 := proto.BuildUDP(macB, macA, outside, insideA, 2, 1, nil)
	b2.Process(f2)
	if b2.LastOutPort != 3 {
		t.Fatalf("reply forwarded to port %d, want 3", b2.LastOutPort)
	}
	if b2.TableSize() != 2 {
		t.Fatalf("table size = %d", b2.TableSize())
	}
}

func TestBridgeRelearnsMovedHost(t *testing.T) {
	b := NewBridge(1)
	b.Process(proto.BuildUDP(macA, macC, insideA, outside, 1, 2, nil))
	b.Port = 9 // host moved to another port
	b.Process(proto.BuildUDP(macA, macC, insideA, outside, 1, 2, nil))
	if port, _ := b.Lookup(macA); port != 9 {
		t.Fatalf("moved host port = %d, want 9", port)
	}
}

func TestMonitorCountsFlows(t *testing.T) {
	m := NewMonitor()
	for i := 0; i < 5; i++ {
		m.Process(udpFrame(insideA, outside, 1111, 53, "query"))
	}
	for i := 0; i < 3; i++ {
		m.Process(tcpFrame(insideA, outside, 2222, 443, "hello TLS"))
	}
	if m.Flows() != 2 {
		t.Fatalf("flows = %d", m.Flows())
	}
	top := m.Top(1)
	if len(top) != 1 || top[0].Packets != 5 || top[0].DstPort != 53 {
		t.Fatalf("top flow = %+v", top)
	}
	if m.Top(10)[1].Packets != 3 {
		t.Fatal("second flow miscounted")
	}
}

func TestMonitorNeverDrops(t *testing.T) {
	m := NewMonitor()
	if m.Process([]byte{1, 2, 3}) != Accept {
		t.Fatal("monitor dropped garbage; it must be passive")
	}
	if m.NonIP != 1 {
		t.Fatal("NonIP not counted")
	}
}

func TestFirewallRules(t *testing.T) {
	fw := NewFirewall(Drop) // default deny
	// Allow DNS anywhere, and all traffic from 10.0.0.0/8.
	fw.AddRule(FirewallRule{DstPortLo: 53, Proto: proto.IPProtoUDP, Action: Accept})
	fw.AddRule(FirewallRule{SrcAddr: proto.Addr4(10, 0, 0, 0), SrcPrefixLen: 8, Action: Accept})

	if fw.Process(udpFrame(outside, outside, 999, 53, "dns")) != Accept {
		t.Fatal("DNS rule should accept")
	}
	if fw.Process(tcpFrame(insideA, outside, 999, 22, "ssh")) != Accept {
		t.Fatal("10/8 rule should accept")
	}
	if fw.Process(tcpFrame(outside, insideA, 999, 22, "ssh")) != Drop {
		t.Fatal("default deny should drop")
	}
	if fw.Accepted != 2 || fw.Dropped != 1 {
		t.Fatalf("counters: acc=%d drop=%d", fw.Accepted, fw.Dropped)
	}
}

func TestFirewallFirstMatchWins(t *testing.T) {
	fw := NewFirewall(Accept)
	fw.AddRule(FirewallRule{DstPortLo: 80, DstPortHi: 90, Proto: proto.IPProtoTCP, Action: Drop})
	fw.AddRule(FirewallRule{DstPortLo: 85, Proto: proto.IPProtoTCP, Action: Accept}) // shadowed
	if fw.Process(tcpFrame(insideA, outside, 1, 85, "x")) != Drop {
		t.Fatal("first matching rule must win")
	}
}

func TestFirewallPortlessProtocols(t *testing.T) {
	fw := NewFirewall(Drop)
	fw.AddRule(FirewallRule{DstPortLo: 53, Action: Accept})
	// Build a bare IPv4/ICMP-ish frame (protocol 1, no L4 we decode).
	b := proto.BuildUDP(macA, macB, insideA, outside, 1, 53, nil)
	ipb := b[proto.EthernetHeaderLen:]
	ipb[9] = proto.IPProtoICMP
	// Port rule must not match a portless packet.
	if fw.Process(b) != Drop {
		t.Fatal("port rule matched a portless protocol")
	}
}

func TestNATOutboundInboundRoundTrip(t *testing.T) {
	n := NewNAT(natIP, func(a proto.IPv4Addr) bool { return uint32(a)>>24 == 10 })
	out := udpFrame(insideA, outside, 5555, 53, "query")
	if n.Process(out) != Accept {
		t.Fatal("outbound dropped")
	}
	f, _ := proto.Decode(out)
	if f.IP.Src != natIP {
		t.Fatalf("src not rewritten: %v", f.IP.Src)
	}
	natPort := f.UDP.SrcPort
	if natPort < 20000 {
		t.Fatalf("nat port = %d", natPort)
	}
	checksumsValid(t, out)

	// Reply comes back to the NAT's external address and port.
	in := udpFrame(outside, natIP, 53, natPort, "answer")
	if n.Process(in) != Accept {
		t.Fatal("inbound dropped")
	}
	fi, _ := proto.Decode(in)
	if fi.IP.Dst != insideA || fi.UDP.DstPort != 5555 {
		t.Fatalf("inbound not restored: %v:%d", fi.IP.Dst, fi.UDP.DstPort)
	}
	checksumsValid(t, in)
	if n.Bindings() != 1 {
		t.Fatalf("bindings = %d", n.Bindings())
	}
}

func TestNATReusesBindingPerFlow(t *testing.T) {
	n := NewNAT(natIP, nil)
	a := udpFrame(insideA, outside, 7777, 80, "1")
	b := udpFrame(insideA, outside, 7777, 80, "2")
	n.Process(a)
	n.Process(b)
	fa, _ := proto.Decode(a)
	fb, _ := proto.Decode(b)
	if fa.UDP.SrcPort != fb.UDP.SrcPort {
		t.Fatal("same flow must keep its binding")
	}
	if n.Bindings() != 1 {
		t.Fatalf("bindings = %d", n.Bindings())
	}
}

func TestNATDistinctFlowsDistinctPorts(t *testing.T) {
	n := NewNAT(natIP, nil)
	a := udpFrame(insideA, outside, 1000, 80, "")
	b := udpFrame(insideA, outside, 1001, 80, "")
	n.Process(a)
	n.Process(b)
	fa, _ := proto.Decode(a)
	fb, _ := proto.Decode(b)
	if fa.UDP.SrcPort == fb.UDP.SrcPort {
		t.Fatal("distinct flows share a NAT port")
	}
}

func TestNATTCPChecksum(t *testing.T) {
	n := NewNAT(natIP, nil)
	fr := tcpFrame(insideA, outside, 43210, 443, "payload bytes")
	if n.Process(fr) != Accept {
		t.Fatal("tcp outbound dropped")
	}
	checksumsValid(t, fr)
}

func TestNATUnsolicitedInboundDropped(t *testing.T) {
	n := NewNAT(natIP, func(a proto.IPv4Addr) bool { return uint32(a)>>24 == 10 })
	in := udpFrame(outside, natIP, 53, 33333, "scan")
	if n.Process(in) != Drop {
		t.Fatal("unsolicited inbound must be dropped")
	}
}

func TestRouterLPM(t *testing.T) {
	r := NewRouter()
	r.AddRoute(proto.Addr4(0, 0, 0, 0), 0, 1)   // default
	r.AddRoute(proto.Addr4(10, 0, 0, 0), 8, 2)  // corporate
	r.AddRoute(proto.Addr4(10, 1, 0, 0), 16, 3) // branch
	r.AddRoute(proto.Addr4(10, 1, 2, 0), 24, 4) // lab
	cases := []struct {
		addr proto.IPv4Addr
		hop  int
	}{
		{proto.Addr4(8, 8, 8, 8), 1},
		{proto.Addr4(10, 9, 9, 9), 2},
		{proto.Addr4(10, 1, 9, 9), 3},
		{proto.Addr4(10, 1, 2, 250), 4},
	}
	for _, c := range cases {
		hop, ok := r.Lookup(c.addr)
		if !ok || hop != c.hop {
			t.Errorf("Lookup(%v) = %d,%v, want %d", c.addr, hop, ok, c.hop)
		}
	}
	if _, ok := NewRouter().Lookup(proto.Addr4(1, 2, 3, 4)); ok {
		t.Error("empty FIB matched")
	}
	if err := r.AddRoute(0, 40, 1); err == nil {
		t.Error("bad prefix length accepted")
	}
}

func TestRouterTTLAndChecksum(t *testing.T) {
	r := NewRouter()
	r.AddRoute(0, 0, 7)
	fr := udpFrame(insideA, outside, 1, 2, "x")
	if r.Process(fr) != Accept {
		t.Fatal("routable packet dropped")
	}
	f, _ := proto.Decode(fr)
	if f.IP.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", f.IP.TTL)
	}
	if !proto.VerifyIPv4Checksum(fr[proto.EthernetHeaderLen:]) {
		t.Fatal("checksum wrong after TTL decrement")
	}
	if r.LastNextHop != 7 {
		t.Fatalf("next hop = %d", r.LastNextHop)
	}
	// TTL 1 expires.
	fr2 := udpFrame(insideA, outside, 1, 2, "x")
	fr2[proto.EthernetHeaderLen+8] = 1
	if r.Process(fr2) != Drop {
		t.Fatal("TTL 1 must expire")
	}
}

func TestDPIMatching(t *testing.T) {
	d := NewDPI([][]byte{[]byte("attack"), []byte("tac")}, true)
	// Overlapping patterns: "attack" contains "tac".
	if d.Process(udpFrame(insideA, outside, 1, 2, "an attack payload")) != Drop {
		t.Fatal("IPS mode must drop on match")
	}
	if d.PerPattern[0] != 1 || d.PerPattern[1] != 1 {
		t.Fatalf("per-pattern hits = %v (overlap must be found)", d.PerPattern)
	}
	if d.Process(udpFrame(insideA, outside, 1, 2, "benign traffic")) != Accept {
		t.Fatal("benign payload dropped")
	}
}

func TestDPIIDSMode(t *testing.T) {
	d := NewDPI([][]byte{[]byte("worm")}, false)
	if d.Process(udpFrame(insideA, outside, 1, 2, "worm worm worm")) != Accept {
		t.Fatal("IDS mode must not drop")
	}
	if d.Matches != 3 {
		t.Fatalf("matches = %d, want 3 occurrences", d.Matches)
	}
}

func TestDPIEmptyAndBinaryPayloads(t *testing.T) {
	d := NewDPI([][]byte{{0x90, 0x90, 0x90}}, true) // NOP sled
	if d.Process(udpFrame(insideA, outside, 1, 2, "")) != Accept {
		t.Fatal("empty payload mishandled")
	}
	bin := string([]byte{0x41, 0x90, 0x90, 0x90, 0x42})
	if d.Process(udpFrame(insideA, outside, 1, 2, bin)) != Drop {
		t.Fatal("binary pattern missed")
	}
}

func TestLoadBalancerConsistency(t *testing.T) {
	vip := proto.Addr4(198, 51, 100, 100)
	backends := []proto.IPv4Addr{
		proto.Addr4(10, 0, 1, 1), proto.Addr4(10, 0, 1, 2), proto.Addr4(10, 0, 1, 3),
	}
	lb := NewLoadBalancer(vip, backends)
	// The same flow must always land on the same backend.
	var first proto.IPv4Addr
	for i := 0; i < 5; i++ {
		fr := tcpFrame(insideA, vip, 40000, 80, "GET /")
		if lb.Process(fr) != Accept {
			t.Fatal("balanced packet dropped")
		}
		f, _ := proto.Decode(fr)
		if i == 0 {
			first = f.IP.Dst
		} else if f.IP.Dst != first {
			t.Fatal("flow moved between backends")
		}
		checksumsValid(t, fr)
	}
	if lb.ActiveFlows() != 1 {
		t.Fatalf("flows = %d", lb.ActiveFlows())
	}
}

func TestLoadBalancerSpreadsFlows(t *testing.T) {
	vip := proto.Addr4(198, 51, 100, 100)
	backends := []proto.IPv4Addr{
		proto.Addr4(10, 0, 1, 1), proto.Addr4(10, 0, 1, 2),
		proto.Addr4(10, 0, 1, 3), proto.Addr4(10, 0, 1, 4),
	}
	lb := NewLoadBalancer(vip, backends)
	for i := 0; i < 400; i++ {
		fr := tcpFrame(proto.Addr4(10, 0, 0, byte(i)), vip, uint16(1000+i), 80, "")
		lb.Process(fr)
	}
	for i, c := range lb.PerBackend {
		if c < 40 {
			t.Errorf("backend %d got only %d of 400 flows", i, c)
		}
	}
}

func TestLoadBalancerPassThrough(t *testing.T) {
	lb := NewLoadBalancer(proto.Addr4(198, 51, 100, 100), []proto.IPv4Addr{proto.Addr4(10, 0, 1, 1)})
	fr := udpFrame(insideA, outside, 1, 2, "not for vip")
	if lb.Process(fr) != Accept {
		t.Fatal("non-VIP traffic dropped")
	}
	f, _ := proto.Decode(fr)
	if f.IP.Dst != outside {
		t.Fatal("non-VIP traffic rewritten")
	}
	if lb.PassedThrough != 1 {
		t.Fatal("pass-through not counted")
	}
}

func TestAdaptDropsClearUserdata(t *testing.T) {
	fw := NewFirewall(Drop)
	h := Adapt(fw)
	pktDropped := pkt(udpFrame(outside, insideA, 1, 2, "x"))
	h(pktDropped)
	if pktDropped.Userdata != nil {
		t.Fatal("dropped frame not cleared")
	}
	if !pktDropped.Drop {
		t.Fatal("Drop verdict must set Packet.Drop so the ledger charges an NFDrop")
	}
	fwAllow := NewFirewall(Accept)
	h2 := Adapt(fwAllow)
	pktOK := pkt(udpFrame(outside, insideA, 1, 2, "x"))
	h2(pktOK)
	if pktOK.Userdata == nil {
		t.Fatal("accepted frame cleared")
	}
	// nil Userdata passes through untouched.
	h2(pktOK)
	pktNil := pkt(nil)
	h2(pktNil)
}

func BenchmarkNATOutbound(b *testing.B) {
	n := NewNAT(natIP, nil)
	fr := udpFrame(insideA, outside, 5555, 53, "query")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Process(fr)
	}
}

func BenchmarkRouterLPM(b *testing.B) {
	r := NewRouter()
	r.AddRoute(0, 0, 1)
	for i := 0; i < 256; i++ {
		r.AddRoute(proto.Addr4(10, byte(i), 0, 0), 16, i)
	}
	fr := udpFrame(insideA, proto.Addr4(10, 200, 3, 4), 1, 2, "x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr[proto.EthernetHeaderLen+8] = 64 // refresh TTL
		r.Process(fr)
	}
}

func BenchmarkDPI64B(b *testing.B) {
	d := NewDPI([][]byte{[]byte("attack"), []byte("malware"), []byte("exploit")}, false)
	fr := udpFrame(insideA, outside, 1, 2, "just an ordinary payload here!")
	b.SetBytes(int64(len(fr)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(fr)
	}
}

// pkt wraps a frame for the dataplane adapter tests.
func pkt(frame []byte) *dataplane.Packet {
	var ud any
	if frame != nil {
		ud = frame
	}
	return &dataplane.Packet{Userdata: ud}
}
