package nfs

import (
	"encoding/binary"

	"nfvnice/internal/proto"
)

// natKey identifies an internal connection.
type natKey struct {
	src, dst         proto.IPv4Addr
	srcPort, dstPort uint16
	proto            uint8
}

// natBinding is one translation entry.
type natBinding struct {
	key     natKey
	natPort uint16
}

// NAT is a source NAT (masquerade): outbound packets from internal
// addresses are rewritten to carry the NAT's external address and an
// allocated port; inbound packets to an allocated port are rewritten back.
// All IP and transport checksums are updated incrementally per RFC 1624 —
// the expensive little detail that makes NAT a "Medium" cost NF.
type NAT struct {
	// External is the public address owned by the NAT.
	External proto.IPv4Addr
	// Internal reports whether an address is on the inside network.
	Internal func(proto.IPv4Addr) bool

	nextPort uint16
	outbound map[natKey]uint16
	inbound  map[uint16]natBinding

	// Translated, Untranslatable and PortExhausted count outcomes.
	Translated     uint64
	Untranslatable uint64
	PortExhausted  uint64
}

// NewNAT returns a NAT owning the external address; internal classifies
// inside addresses (nil means "everything not equal to External").
func NewNAT(external proto.IPv4Addr, internal func(proto.IPv4Addr) bool) *NAT {
	if internal == nil {
		internal = func(a proto.IPv4Addr) bool { return a != external }
	}
	return &NAT{
		External: external,
		Internal: internal,
		nextPort: 20000,
		outbound: make(map[natKey]uint16),
		inbound:  make(map[uint16]natBinding),
	}
}

// Name implements Processor.
func (n *NAT) Name() string { return "nat" }

// Bindings reports active translations.
func (n *NAT) Bindings() int { return len(n.outbound) }

// csumUpdate16 folds a 16-bit field change into an internet checksum per
// RFC 1624: HC' = ~(~HC + ~m + m').
func csumUpdate16(hc, old, new uint16) uint16 {
	sum := uint32(^hc) + uint32(^old) + uint32(new)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// csumUpdate32 folds a 32-bit field change (e.g. an IPv4 address) into a
// checksum as two 16-bit updates.
func csumUpdate32(hc uint16, old, new uint32) uint16 {
	hc = csumUpdate16(hc, uint16(old>>16), uint16(new>>16))
	return csumUpdate16(hc, uint16(old), uint16(new))
}

// Process implements Processor.
func (n *NAT) Process(frame []byte) Verdict {
	if len(frame) < proto.EthernetHeaderLen+proto.IPv4MinHeaderLen {
		return Drop
	}
	ipb := frame[proto.EthernetHeaderLen:]
	f, err := proto.Decode(frame)
	if err != nil || !f.HasIP || (!f.HasUDP && !f.HasTCP) {
		n.Untranslatable++
		return Accept // pass non-translatable traffic untouched
	}
	hlen := int(f.IP.IHL) * 4
	l4 := ipb[hlen:]

	var srcPort, dstPort uint16
	if f.HasUDP {
		srcPort, dstPort = f.UDP.SrcPort, f.UDP.DstPort
	} else {
		srcPort, dstPort = f.TCP.SrcPort, f.TCP.DstPort
	}

	switch {
	case n.Internal(f.IP.Src):
		// Outbound: allocate (or reuse) a port, rewrite source.
		k := natKey{src: f.IP.Src, dst: f.IP.Dst, srcPort: srcPort, dstPort: dstPort, proto: f.IP.Protocol}
		port, ok := n.outbound[k]
		if !ok {
			port, ok = n.allocPort()
			if !ok {
				n.PortExhausted++
				return Drop
			}
			n.outbound[k] = port
			n.inbound[port] = natBinding{key: k, natPort: port}
		}
		n.rewrite(ipb, l4, f.IP.Protocol, true, n.External, port)
		n.Translated++
		return Accept
	case f.IP.Dst == n.External:
		// Inbound: look up the binding by destination port.
		b, ok := n.inbound[dstPort]
		if !ok {
			return Drop // unsolicited
		}
		n.rewriteDst(ipb, l4, f.IP.Protocol, b.key.src, b.key.srcPort)
		n.Translated++
		return Accept
	default:
		n.Untranslatable++
		return Accept
	}
}

func (n *NAT) allocPort() (uint16, bool) {
	for tries := 0; tries < 45000; tries++ {
		p := n.nextPort
		n.nextPort++
		if n.nextPort == 0 {
			n.nextPort = 20000
		}
		if p < 20000 {
			continue
		}
		if _, used := n.inbound[p]; !used {
			return p, true
		}
	}
	return 0, false
}

// rewrite replaces the source address/port in place with incremental
// checksum updates. l4 points at the transport header.
func (n *NAT) rewrite(ipb, l4 []byte, protocol uint8, _ bool, newAddr proto.IPv4Addr, newPort uint16) {
	oldAddr := binary.BigEndian.Uint32(ipb[12:16])
	binary.BigEndian.PutUint32(ipb[12:16], uint32(newAddr))
	// IP header checksum covers the address.
	ipCsum := binary.BigEndian.Uint16(ipb[10:12])
	ipCsum = csumUpdate32(ipCsum, oldAddr, uint32(newAddr))
	binary.BigEndian.PutUint16(ipb[10:12], ipCsum)
	// Transport checksum covers the pseudo header (address) and port.
	oldPort := binary.BigEndian.Uint16(l4[0:2])
	binary.BigEndian.PutUint16(l4[0:2], newPort)
	csOff := transportCsumOffset(protocol)
	if csOff >= 0 {
		tc := binary.BigEndian.Uint16(l4[csOff : csOff+2])
		if protocol != proto.IPProtoUDP || tc != 0 { // UDP checksum 0 = disabled
			tc = csumUpdate32(tc, oldAddr, uint32(newAddr))
			tc = csumUpdate16(tc, oldPort, newPort)
			binary.BigEndian.PutUint16(l4[csOff:csOff+2], tc)
		}
	}
}

// rewriteDst replaces the destination address/port (inbound direction).
func (n *NAT) rewriteDst(ipb, l4 []byte, protocol uint8, newAddr proto.IPv4Addr, newPort uint16) {
	oldAddr := binary.BigEndian.Uint32(ipb[16:20])
	binary.BigEndian.PutUint32(ipb[16:20], uint32(newAddr))
	ipCsum := binary.BigEndian.Uint16(ipb[10:12])
	ipCsum = csumUpdate32(ipCsum, oldAddr, uint32(newAddr))
	binary.BigEndian.PutUint16(ipb[10:12], ipCsum)
	oldPort := binary.BigEndian.Uint16(l4[2:4])
	binary.BigEndian.PutUint16(l4[2:4], newPort)
	csOff := transportCsumOffset(protocol)
	if csOff >= 0 {
		tc := binary.BigEndian.Uint16(l4[csOff : csOff+2])
		if protocol != proto.IPProtoUDP || tc != 0 {
			tc = csumUpdate32(tc, oldAddr, uint32(newAddr))
			tc = csumUpdate16(tc, oldPort, newPort)
			binary.BigEndian.PutUint16(l4[csOff:csOff+2], tc)
		}
	}
}

func transportCsumOffset(protocol uint8) int {
	switch protocol {
	case proto.IPProtoUDP:
		return 6
	case proto.IPProtoTCP:
		return 16
	default:
		return -1
	}
}
