package nfs

import (
	"sort"

	"nfvnice/internal/proto"
)

// FlowStat is a monitor counter for one 5-tuple.
type FlowStat struct {
	Src, Dst         proto.IPv4Addr
	SrcPort, DstPort uint16
	Proto            uint8
	Packets, Bytes   uint64
}

type flowKey struct {
	src, dst         proto.IPv4Addr
	srcPort, dstPort uint16
	proto            uint8
}

// Monitor is a passive per-flow packet/byte counter — the paper's "basic
// monitor NF". Its per-packet cost is a flow-table hash update, naturally
// cheap, matching the "Low" class.
type Monitor struct {
	flows map[flowKey]*FlowStat

	// NonIP counts frames the monitor could not classify.
	NonIP uint64
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{flows: make(map[flowKey]*FlowStat)}
}

// Name implements Processor.
func (m *Monitor) Name() string { return "monitor" }

// Process implements Processor.
func (m *Monitor) Process(frame []byte) Verdict {
	f, err := proto.Decode(frame)
	if err != nil || !f.HasIP {
		m.NonIP++
		return Accept // monitors never drop
	}
	k := flowKey{src: f.IP.Src, dst: f.IP.Dst, proto: f.IP.Protocol}
	switch {
	case f.HasUDP:
		k.srcPort, k.dstPort = f.UDP.SrcPort, f.UDP.DstPort
	case f.HasTCP:
		k.srcPort, k.dstPort = f.TCP.SrcPort, f.TCP.DstPort
	}
	st := m.flows[k]
	if st == nil {
		st = &FlowStat{Src: k.src, Dst: k.dst, SrcPort: k.srcPort, DstPort: k.dstPort, Proto: k.proto}
		m.flows[k] = st
	}
	st.Packets++
	st.Bytes += uint64(len(frame))
	return Accept
}

// Flows reports the number of tracked flows.
func (m *Monitor) Flows() int { return len(m.flows) }

// Top returns the n busiest flows by bytes, descending (deterministic ties
// by tuple order).
func (m *Monitor) Top(n int) []FlowStat {
	out := make([]FlowStat, 0, len(m.flows))
	for _, st := range m.flows {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].SrcPort < out[j].SrcPort
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
