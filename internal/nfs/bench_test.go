package nfs_test

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nfvnice/internal/dataplane"
	"nfvnice/internal/nfs"
	"nfvnice/internal/proto"
)

// The real-NF benchmark family measures the paper's firewall→NAT→monitor
// service chain on the live engine — real header parsing, RFC 1624
// incremental checksum rewrites, per-flow accounting — over two transports:
//
//   - BenchmarkRealNFChain3 rides the zero-copy frame path: wire bytes live
//     in preallocated arena slots (Config.FrameSize) and NFs mutate them in
//     place. TestRealNFChainZeroAllocs gates this path at 0 allocs/pkt.
//   - BenchmarkRealNFChain3Boxed rides the legacy Userdata path: a heap
//     frame and an interface box per packet, the cost the arena deletes.
//
// Both use the same closed-loop harness as internal/dataplane/bench_test.go
// (RingSize 4096, BatchSize 256, inflight window 1024) so ns/pkt deltas are
// attributable to the transport, not the topology.

const (
	realBenchBatch    = 64
	realBenchInflight = 1024
	realBenchFlows    = 64
	realBenchPayload  = 1458 // 1500-byte MTU frame with Ethernet+IPv4+UDP headers
)

// realChainProcs builds fresh firewall→NAT→monitor processors. The NAT
// masquerades 10/8 sources behind one external address; the benchmark's
// bounded flow set keeps its binding tables at realBenchFlows entries.
func realChainProcs() []nfs.Processor {
	external := proto.Addr4(203, 0, 113, 1)
	return []nfs.Processor{
		nfs.NewFirewall(nfs.Accept),
		nfs.NewNAT(external, nil),
		nfs.NewMonitor(),
	}
}

// realTemplates prebuilds one valid Ethernet+IPv4+UDP frame per flow; the
// producer's per-packet work is a template memcpy into the frame — the same
// single copy a NIC's DMA would make at ingress.
func realTemplates() [][]byte {
	src := proto.MAC{2, 0, 0, 0, 0, 1}
	dst := proto.MAC{2, 0, 0, 0, 0, 2}
	payload := make([]byte, realBenchPayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	tpls := make([][]byte, realBenchFlows)
	for f := range tpls {
		tpls[f] = proto.BuildUDP(src, dst,
			proto.Addr4(10, 0, 1, byte(f)), proto.Addr4(198, 51, 100, 7),
			uint16(40000+f), 53, payload)
	}
	return tpls
}

// newRealChainEngine assembles the live engine over the chain. frameSize 0
// selects the boxed Userdata transport (no arena) with the deprecated
// per-packet Adapt; otherwise stages run batch-adapted on arena frames.
func newRealChainEngine(tb testing.TB, frameSize int) *dataplane.Engine {
	tb.Helper()
	e := dataplane.New(dataplane.Config{
		RingSize:  4096,
		BatchSize: 256,
		FrameSize: frameSize,
	})
	ids := make([]int, 0, 3)
	for _, p := range realChainProcs() {
		if frameSize > 0 {
			ids = append(ids, e.AddBatchStage(p.Name(), 1024, nfs.AdaptBatch(p)))
		} else {
			//lint:ignore SA1019 the deprecated boxed path is exactly what this baseline measures
			ids = append(ids, e.AddStage(p.Name(), 1024, nfs.Adapt(p)))
		}
	}
	ch, err := e.AddChain(ids...)
	if err != nil {
		tb.Fatal(err)
	}
	e.MapFlow(0, ch)
	return e
}

// runRealChainBench is the closed-loop driver: b.N packets cross the chain
// with a bounded inflight window; fill copies flow f's template into the
// descriptor's transport (arena frame or heap box).
func runRealChainBench(b *testing.B, e *dataplane.Engine, fill func(p *dataplane.Packet, f int)) {
	var received atomic.Int64
	sinkCache := e.NewPacketCache(2 * realBenchBatch)
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(2 * realBenchBatch)
	batch := make([]*dataplane.Packet, realBenchBatch)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	injected := 0
	for int(received.Load()) < b.N {
		n := b.N - injected
		if n > realBenchBatch {
			n = realBenchBatch
		}
		if n > 0 && injected-int(received.Load()) < realBenchInflight {
			for i := 0; i < n; i++ {
				p := cache.Get()
				p.FlowID = 0
				fill(p, (injected+i)%realBenchFlows)
				batch[i] = p
			}
			injected += e.InjectBatch(batch[:n])
		} else {
			runtime.Gosched()
		}
	}
	elapsed := time.Since(start)
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "pps")
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ns/pkt")
	}
}

// fillFrame copies the template into the packet's arena frame in place.
func fillFrame(tpls [][]byte) func(p *dataplane.Packet, f int) {
	return func(p *dataplane.Packet, f int) {
		tpl := tpls[f]
		buf := p.Frame[:cap(p.Frame)]
		n := copy(buf, tpl)
		p.Frame = buf[:n]
		p.Size = n
	}
}

// fillBoxed allocates a fresh heap frame and boxes it into Userdata — the
// only safe contract the legacy path offers, since a recycled descriptor
// gives no ownership signal for whatever buffer it last carried.
func fillBoxed(tpls [][]byte) func(p *dataplane.Packet, f int) {
	return func(p *dataplane.Packet, f int) {
		tpl := tpls[f]
		frame := make([]byte, len(tpl))
		copy(frame, tpl)
		p.Userdata = frame
		p.Size = len(tpl)
	}
}

// BenchmarkRealNFChain3 measures firewall→NAT→monitor on arena frames: the
// zero-copy path the engine now runs real NFs on at line rate.
func BenchmarkRealNFChain3(b *testing.B) {
	tpls := realTemplates()
	e := newRealChainEngine(b, len(tpls[0]))
	runRealChainBench(b, e, fillFrame(tpls))
}

// BenchmarkRealNFChain3Boxed measures the same chain over the legacy boxed
// Userdata transport — one heap frame and one interface box per packet —
// recorded once as the baseline the frame path must beat by ≥2×.
func BenchmarkRealNFChain3Boxed(b *testing.B) {
	tpls := realTemplates()
	e := newRealChainEngine(b, 0)
	runRealChainBench(b, e, fillBoxed(tpls))
}

// TestRealNFChainZeroAllocs is the allocation gate for real NFs on the
// frame path: once the NAT and monitor flow tables are warm, pushing
// packets through the live firewall→NAT→monitor chain must not allocate —
// frames ride arena slots, verdicts route through Packet.Drop, and the
// batch adapter's scratch is reused. CI fails on any regression here.
func TestRealNFChainZeroAllocs(t *testing.T) {
	tpls := realTemplates()
	e := newRealChainEngine(t, len(tpls[0]))
	fill := fillFrame(tpls)
	var received atomic.Int64
	sinkCache := e.NewPacketCache(512)
	e.SetSink(func(ps []*dataplane.Packet) {
		for _, p := range ps {
			sinkCache.Put(p)
		}
		received.Add(int64(len(ps)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)

	cache := e.NewPacketCache(512)
	batch := make([]*dataplane.Packet, 256)
	sent := 0
	push := func() {
		for i := range batch {
			p := cache.Get()
			p.FlowID = 0
			fill(p, (sent+i)%realBenchFlows)
			batch[i] = p
		}
		sent += e.InjectBatch(batch)
		for int(received.Load()) < sent {
			runtime.Gosched()
		}
	}
	// Warm the freelist, the NAT bindings and the monitor flow table.
	for i := 0; i < 8; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(50, push)
	perPacket := allocs / float64(len(batch))
	if perPacket > 0.01 {
		t.Fatalf("real-NF steady state allocates: %.4f allocs/packet (%.1f per %d-packet batch)",
			perPacket, allocs, len(batch))
	}
}
