package nfs

import (
	"nfvnice/internal/proto"
)

// Bridge is a learning L2 switch: it learns source MAC → port bindings and
// reports the output port for each frame (flooding when unknown). It is the
// paper's "simple bridge NF (less than 100 lines of C)".
type Bridge struct {
	// Port is the ingress port this instance represents; frames are
	// attributed to it when learning.
	Port int

	table map[proto.MAC]int

	// Learned, Forwarded and Flooded count table activity.
	Learned   uint64
	Forwarded uint64
	Flooded   uint64

	// LastOutPort records the forwarding decision of the most recent
	// frame (-1 = flood), for observability and tests.
	LastOutPort int
}

// NewBridge returns an empty learning bridge for the given ingress port.
func NewBridge(port int) *Bridge {
	return &Bridge{Port: port, table: make(map[proto.MAC]int), LastOutPort: -1}
}

// Name implements Processor.
func (b *Bridge) Name() string { return "bridge" }

// Process implements Processor: learn the source, look up the destination.
func (b *Bridge) Process(frame []byte) Verdict {
	eth, _, err := proto.DecodeEthernet(frame)
	if err != nil {
		return Drop
	}
	if _, known := b.table[eth.Src]; !known {
		b.Learned++
	}
	b.table[eth.Src] = b.Port
	if out, ok := b.table[eth.Dst]; ok {
		b.LastOutPort = out
		b.Forwarded++
	} else {
		b.LastOutPort = -1
		b.Flooded++
	}
	return Accept
}

// Lookup reports the learned port for a MAC.
func (b *Bridge) Lookup(mac proto.MAC) (int, bool) {
	p, ok := b.table[mac]
	return p, ok
}

// TableSize reports the number of learned entries.
func (b *Bridge) TableSize() int { return len(b.table) }
