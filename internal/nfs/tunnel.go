package nfs

import (
	"encoding/binary"

	"nfvnice/internal/proto"
)

// VXLAN constants (RFC 7348).
const (
	vxlanPort      = 4789
	vxlanHeaderLen = 8
	vxlanFlagVNI   = 0x08 // "I" bit: VNI present
)

// VXLANEncap wraps each frame in an outer Ethernet/IPv4/UDP/VXLAN header —
// the tunnel half of a WAN-optimizer or overlay gateway. Per-packet cost is
// dominated by the copy and the fresh outer checksums, a realistic
// "Medium/High" NF.
type VXLANEncap struct {
	// VNI is the 24-bit VXLAN network identifier.
	VNI uint32
	// OuterSrc/OuterDst address the tunnel endpoints.
	OuterSrc, OuterDst proto.IPv4Addr
	OuterSrcMAC        proto.MAC
	OuterDstMAC        proto.MAC

	// Encapsulated counts processed frames; LastFrame holds the most
	// recent encapsulated frame (the NF's "output port" in tests).
	Encapsulated uint64
	LastFrame    []byte
}

// Name implements Processor.
func (v *VXLANEncap) Name() string { return "vxlan-encap" }

// Process implements Processor: builds the outer frame in LastFrame. The
// inner frame bytes are not modified.
func (v *VXLANEncap) Process(frame []byte) Verdict {
	// Outer UDP payload = VXLAN header + inner frame.
	payload := make([]byte, vxlanHeaderLen+len(frame))
	payload[0] = vxlanFlagVNI
	binary.BigEndian.PutUint32(payload[4:8], v.VNI<<8)
	copy(payload[vxlanHeaderLen:], frame)
	// Source port derived from the inner flow hash for ECMP entropy, as
	// real VTEPs do.
	srcPort := uint16(0xc000 | (fnvMix(uint64(len(frame)), uint64(frame[len(frame)-1])) & 0x3fff))
	v.LastFrame = proto.BuildUDP(v.OuterSrcMAC, v.OuterDstMAC, v.OuterSrc, v.OuterDst, srcPort, vxlanPort, payload)
	v.Encapsulated++
	return Accept
}

// VXLANDecap strips the outer headers, recovering the inner frame in place
// of the outer one (via LastFrame).
type VXLANDecap struct {
	// VNI filters which tunnel this endpoint terminates (0 = any).
	VNI uint32

	// Decapsulated and Rejected count outcomes; LastFrame holds the most
	// recent inner frame.
	Decapsulated uint64
	Rejected     uint64
	LastFrame    []byte
}

// Name implements Processor.
func (v *VXLANDecap) Name() string { return "vxlan-decap" }

// Process implements Processor.
func (v *VXLANDecap) Process(frame []byte) Verdict {
	f, err := proto.Decode(frame)
	if err != nil || !f.HasUDP || f.UDP.DstPort != vxlanPort {
		v.Rejected++
		return Drop
	}
	if len(f.Payload) < vxlanHeaderLen || f.Payload[0]&vxlanFlagVNI == 0 {
		v.Rejected++
		return Drop
	}
	vni := binary.BigEndian.Uint32(f.Payload[4:8]) >> 8
	if v.VNI != 0 && vni != v.VNI {
		v.Rejected++
		return Drop
	}
	v.LastFrame = f.Payload[vxlanHeaderLen:]
	v.Decapsulated++
	return Accept
}
