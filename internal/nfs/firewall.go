package nfs

import (
	"nfvnice/internal/proto"
)

// FirewallRule matches packets by prefixes, port ranges and protocol. Zero
// values are wildcards; PrefixLen 0 with Addr 0 matches any address.
type FirewallRule struct {
	SrcAddr      proto.IPv4Addr
	SrcPrefixLen int
	DstAddr      proto.IPv4Addr
	DstPrefixLen int
	SrcPortLo    uint16
	SrcPortHi    uint16 // 0 means "no upper bound configured" when Lo is 0 too
	DstPortLo    uint16
	DstPortHi    uint16
	Proto        uint8 // 0 = any

	Action Verdict
}

func prefixMatch(addr, ruleAddr proto.IPv4Addr, plen int) bool {
	if plen <= 0 {
		return true
	}
	if plen > 32 {
		plen = 32
	}
	mask := uint32(0xffffffff) << (32 - plen)
	return uint32(addr)&mask == uint32(ruleAddr)&mask
}

func portMatch(p, lo, hi uint16) bool {
	if lo == 0 && hi == 0 {
		return true
	}
	if hi == 0 {
		hi = lo
	}
	return p >= lo && p <= hi
}

// Matches reports whether the rule covers the decoded frame.
func (r *FirewallRule) Matches(f *proto.Frame) bool {
	if !f.HasIP {
		return false
	}
	if r.Proto != 0 && r.Proto != f.IP.Protocol {
		return false
	}
	if !prefixMatch(f.IP.Src, r.SrcAddr, r.SrcPrefixLen) {
		return false
	}
	if !prefixMatch(f.IP.Dst, r.DstAddr, r.DstPrefixLen) {
		return false
	}
	var sp, dp uint16
	switch {
	case f.HasUDP:
		sp, dp = f.UDP.SrcPort, f.UDP.DstPort
	case f.HasTCP:
		sp, dp = f.TCP.SrcPort, f.TCP.DstPort
	default:
		// Port constraints cannot match a portless protocol.
		if r.SrcPortLo != 0 || r.SrcPortHi != 0 || r.DstPortLo != 0 || r.DstPortHi != 0 {
			return false
		}
		return true
	}
	return portMatch(sp, r.SrcPortLo, r.SrcPortHi) && portMatch(dp, r.DstPortLo, r.DstPortHi)
}

// Firewall is a stateless ordered-rule packet filter (first match wins).
type Firewall struct {
	rules []FirewallRule
	// DefaultAction applies when no rule matches (default-deny posture
	// unless configured otherwise).
	DefaultAction Verdict

	// Accepted, Dropped and NonIP count outcomes.
	Accepted uint64
	Dropped  uint64
	NonIP    uint64
}

// NewFirewall returns a firewall with the given default action.
func NewFirewall(def Verdict) *Firewall {
	return &Firewall{DefaultAction: def}
}

// AddRule appends a rule (evaluated in insertion order).
func (fw *Firewall) AddRule(r FirewallRule) { fw.rules = append(fw.rules, r) }

// Name implements Processor.
func (fw *Firewall) Name() string { return "firewall" }

// Process implements Processor.
func (fw *Firewall) Process(frame []byte) Verdict {
	f, err := proto.Decode(frame)
	if err != nil {
		fw.Dropped++
		return Drop
	}
	if !f.HasIP {
		// L2-only traffic passes (the firewall filters IP).
		fw.NonIP++
		fw.Accepted++
		return Accept
	}
	v := fw.DefaultAction
	for i := range fw.rules {
		if fw.rules[i].Matches(&f) {
			v = fw.rules[i].Action
			break
		}
	}
	if v == Accept {
		fw.Accepted++
	} else {
		fw.Dropped++
	}
	return v
}
