// Package nfs implements the network functions the paper's introduction
// motivates — bridge, monitor, firewall, NAT, router, DPI, load balancer —
// as real packet processors over internal/proto frames. They run in the
// concurrent dataplane (each satisfies Processor; Adapt turns one into a
// dataplane.Handler) and double as realistic cost generators: their cycle
// costs vary with packet contents exactly the way §2.1 describes.
package nfs

import (
	"fmt"

	"nfvnice/internal/dataplane"
)

// Verdict is an NF's decision about a packet.
type Verdict int

// Verdicts.
const (
	Accept Verdict = iota
	Drop
)

func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Processor is a network function operating on a raw Ethernet frame. The
// frame may be mutated in place (NAT, router TTL, ECN marking).
type Processor interface {
	// Name identifies the NF in stats.
	Name() string
	// Process handles one frame and returns the verdict.
	Process(frame []byte) Verdict
}

// BatchProcessor is an optional Processor extension for NFs that can
// amortize work — interface dispatch, table lookups, branch setup — across
// a whole mover-sweep batch. ProcessBatch receives the batch's frames and a
// verdict slice pre-initialized to Accept; it writes Drop for frames to
// discard. Both slices are the caller's scratch and must not be retained.
type BatchProcessor interface {
	Processor
	ProcessBatch(frames [][]byte, verdicts []Verdict)
}

// AdaptFrame wraps a Processor as a per-packet dataplane Handler on the
// zero-copy frame path: the NF mutates Packet.Frame in place (no boxing, no
// copy) and a Drop verdict routes through Packet.Drop, so the worker
// recycles the descriptor and the conservation ledger charges an NFDrop.
// Frameless packets (descriptor-only traffic) pass through untouched.
func AdaptFrame(p Processor) dataplane.Handler {
	return func(pkt *dataplane.Packet) {
		if len(pkt.Frame) == 0 {
			return
		}
		if p.Process(pkt.Frame) == Drop {
			pkt.Drop = true
		}
	}
}

// AdaptBatch wraps a Processor as a dataplane BatchHandler: one closure
// call and one interface dispatch cover the worker's whole dequeued chunk.
// Processors implementing BatchProcessor get the frames as a batch (and can
// amortize their own per-packet costs — e.g. flow-table lookups across a
// sweep); plain Processors are called per frame but still save the
// per-packet handler indirection. Verdicts route through Packet.Drop.
//
// The returned handler keeps reusable scratch, so each AdaptBatch value
// must back at most one stage (stage handlers are grant-serialized; two
// stages sharing one adapter would race the scratch).
func AdaptBatch(p Processor) dataplane.BatchHandler {
	bp, batched := p.(BatchProcessor)
	if !batched {
		return func(pkts []*dataplane.Packet) {
			for _, pkt := range pkts {
				if len(pkt.Frame) == 0 {
					continue
				}
				if p.Process(pkt.Frame) == Drop {
					pkt.Drop = true
				}
			}
		}
	}
	var frames [][]byte
	var verdicts []Verdict
	return func(pkts []*dataplane.Packet) {
		if cap(frames) < len(pkts) {
			frames = make([][]byte, len(pkts))
			verdicts = make([]Verdict, len(pkts))
		}
		frames = frames[:len(pkts)]
		verdicts = verdicts[:len(pkts)]
		for i, pkt := range pkts {
			frames[i] = pkt.Frame
			verdicts[i] = Accept
		}
		bp.ProcessBatch(frames, verdicts)
		for i, pkt := range pkts {
			if verdicts[i] == Drop && len(pkt.Frame) > 0 {
				pkt.Drop = true
			}
			frames[i] = nil
		}
	}
}

// Adapt wraps a Processor as a dataplane Handler over the legacy boxed
// path: the frame travels in Packet.Userdata as []byte — a heap frame and
// an interface box per packet, plus a type assertion per hop.
//
// Deprecated: use AdaptFrame or AdaptBatch with Config.FrameSize so frames
// ride the preallocated arena instead of the heap. Adapt remains only as
// the measured baseline (BenchmarkRealNFChain3Boxed) and for callers not
// yet migrated. Note a Drop verdict now also sets Packet.Drop: dropped
// frames used to sail on as deliveries, invisible to the conservation
// ledger's NFDrops class.
func Adapt(p Processor) dataplane.Handler {
	return func(pkt *dataplane.Packet) {
		frame, ok := pkt.Userdata.([]byte)
		if !ok || frame == nil {
			return
		}
		if p.Process(frame) == Drop {
			pkt.Userdata = nil
			pkt.Drop = true
		}
	}
}
