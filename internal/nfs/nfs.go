// Package nfs implements the network functions the paper's introduction
// motivates — bridge, monitor, firewall, NAT, router, DPI, load balancer —
// as real packet processors over internal/proto frames. They run in the
// concurrent dataplane (each satisfies Processor; Adapt turns one into a
// dataplane.Handler) and double as realistic cost generators: their cycle
// costs vary with packet contents exactly the way §2.1 describes.
package nfs

import (
	"fmt"

	"nfvnice/internal/dataplane"
)

// Verdict is an NF's decision about a packet.
type Verdict int

// Verdicts.
const (
	Accept Verdict = iota
	Drop
)

func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Processor is a network function operating on a raw Ethernet frame. The
// frame may be mutated in place (NAT, router TTL, ECN marking).
type Processor interface {
	// Name identifies the NF in stats.
	Name() string
	// Process handles one frame and returns the verdict.
	Process(frame []byte) Verdict
}

// Adapt wraps a Processor as a dataplane Handler: the frame travels in
// Packet.Userdata as []byte; dropped packets have Userdata set to nil so
// downstream stages skip them (the dataplane delivers the descriptor
// regardless, mirroring how a real NF chain still forwards the descriptor
// slot).
func Adapt(p Processor) dataplane.Handler {
	return func(pkt *dataplane.Packet) {
		frame, ok := pkt.Userdata.([]byte)
		if !ok || frame == nil {
			return
		}
		if p.Process(frame) == Drop {
			pkt.Userdata = nil
		}
	}
}
