package cpusched

import (
	"nfvnice/internal/rbtree"
	"nfvnice/internal/simtime"
)

// CFSParams are the tunables of the Completely Fair Scheduler, defaulted to
// the kernel-3.19 values the paper's testbed ran (single-socket scaling).
type CFSParams struct {
	// SchedLatency is the targeted preemption latency: every runnable
	// task should run once within this period (when few tasks contend).
	SchedLatency simtime.Cycles
	// MinGranularity is the smallest slice a task is given; the period
	// stretches to nr_running * MinGranularity when contention is high.
	MinGranularity simtime.Cycles
	// WakeupGranularity damps wakeup preemption: a waking task preempts
	// only if its vruntime lags the running task's by more than this.
	WakeupGranularity simtime.Cycles
	// WakeupPreemption enables check_preempt_wakeup (SCHED_NORMAL). The
	// BATCH policy disables it: batch tasks only switch on tick expiry.
	WakeupPreemption bool
	// NrLatency is the runnable-task count beyond which the period
	// stretches (kernel sched_nr_latency, 8).
	NrLatency int
}

// DefaultCFSParams returns SCHED_NORMAL parameters.
func DefaultCFSParams() CFSParams {
	return CFSParams{
		SchedLatency:      6 * simtime.Millisecond,
		MinGranularity:    simtime.Millisecond * 3 / 4, // 0.75 ms
		WakeupGranularity: simtime.Millisecond,
		WakeupPreemption:  true,
		NrLatency:         8,
	}
}

// BatchCFSParams returns SCHED_BATCH parameters: identical fairness math
// with wakeup preemption disabled. That single change is what yields the
// paper's "longer time quantum and fewer context switches": batch tasks run
// until tick preemption instead of being interrupted by every waking NF.
func BatchCFSParams() CFSParams {
	p := DefaultCFSParams()
	p.WakeupPreemption = false
	return p
}

// CFS is the Completely Fair Scheduler model. Runnable tasks (excluding the
// running one) sit in a red-black tree ordered by vruntime; the leftmost is
// picked next, exactly as in the kernel.
type CFS struct {
	params CFSParams
	name   string

	tree        *rbtree.Tree[*Task]
	totalWeight int // weight of queued tasks
	curr        *Task
	minVruntime uint64
}

// NewCFS returns a SCHED_NORMAL scheduler.
func NewCFS() *CFS { return newCFS("cfs-normal", DefaultCFSParams()) }

// NewCFSBatch returns a SCHED_BATCH scheduler.
func NewCFSBatch() *CFS { return newCFS("cfs-batch", BatchCFSParams()) }

// NewCFSWith returns a CFS with explicit parameters (for tests/ablations).
func NewCFSWith(name string, p CFSParams) *CFS { return newCFS(name, p) }

func newCFS(name string, p CFSParams) *CFS {
	return &CFS{
		params: p,
		name:   name,
		tree: rbtree.New(func(a, b *Task) bool {
			if a.vruntime != b.vruntime {
				return a.vruntime < b.vruntime
			}
			return a.ID < b.ID
		}),
	}
}

// Name implements Scheduler.
func (c *CFS) Name() string { return c.name }

// Params exposes the active tunables.
func (c *CFS) Params() CFSParams { return c.params }

func (c *CFS) updateMinVruntime() {
	mv := c.minVruntime
	if c.curr != nil && c.curr.vruntime > mv {
		mv = c.curr.vruntime
	}
	if n := c.tree.Min(); n != nil {
		v := n.Item.vruntime
		if c.curr != nil {
			if c.curr.vruntime < v {
				v = c.curr.vruntime
			}
		}
		if v > mv {
			mv = v
		}
	}
	c.minVruntime = mv
}

// Enqueue implements Scheduler.
func (c *CFS) Enqueue(now simtime.Cycles, t *Task, wakeup bool, curr *Task) bool {
	if wakeup {
		// place_entity: sleepers resume slightly behind min_vruntime so
		// they get modest priority without starving others
		// (GENTLE_FAIR_SLEEPERS halves the credit).
		credit := uint64(c.params.SchedLatency / 2)
		floor := uint64(0)
		if c.minVruntime > credit {
			floor = c.minVruntime - credit
		}
		if t.vruntime < floor {
			t.vruntime = floor
		}
	}
	t.cfsNode = c.tree.Insert(t)
	c.totalWeight += t.weight
	if !wakeup || curr == nil {
		return false
	}
	// check_preempt_wakeup: only for NORMAL, and batch tasks neither
	// preempt nor get preempted on wakeup.
	if !c.params.WakeupPreemption || t.Batch || curr.Batch {
		return false
	}
	// Scale wakeup granularity into the waking task's vruntime units.
	gran := uint64(c.params.WakeupGranularity) * NiceZeroWeight / uint64(t.weight)
	return curr.vruntime > t.vruntime && curr.vruntime-t.vruntime > gran
}

// Dequeue implements Scheduler.
func (c *CFS) Dequeue(t *Task) {
	if t.cfsNode == nil {
		return
	}
	c.tree.Delete(t.cfsNode.(*rbtree.Node[*Task]))
	t.cfsNode = nil
	c.totalWeight -= t.weight
	c.updateMinVruntime()
}

// PickNext implements Scheduler.
func (c *CFS) PickNext(now simtime.Cycles) *Task {
	n := c.tree.Min()
	if n == nil {
		c.curr = nil
		return nil
	}
	t := n.Item
	c.tree.Delete(n)
	t.cfsNode = nil
	c.totalWeight -= t.weight
	t.sliceUsed = 0
	c.curr = t
	c.updateMinVruntime()
	return t
}

// Charge implements Scheduler: vruntime advances inversely to weight.
func (c *CFS) Charge(t *Task, ran simtime.Cycles) {
	t.Stats.Runtime += ran
	t.sliceUsed += ran
	t.vruntime += uint64(ran) * NiceZeroWeight / uint64(t.weight)
	if t == c.curr {
		c.updateMinVruntime()
	}
}

// slice computes the task's fair slice of the current period
// (sched_slice()): period * weight / total_weight, stretched when many
// tasks are runnable, floored at MinGranularity.
func (c *CFS) slice(t *Task) simtime.Cycles {
	nr := c.tree.Len() + 1 // queued + running
	period := c.params.SchedLatency
	if nr > c.params.NrLatency {
		period = simtime.Cycles(nr) * c.params.MinGranularity
	}
	total := c.totalWeight + t.weight
	s := simtime.Cycles(uint64(period) * uint64(t.weight) / uint64(total))
	if s < c.params.MinGranularity {
		s = c.params.MinGranularity
	}
	return s
}

// NeedsResched implements Scheduler (check_preempt_tick): the task yields
// when it has consumed its slice, or when it has run at least MinGranularity
// and the leftmost task is more than a slice of vruntime behind it.
func (c *CFS) NeedsResched(now simtime.Cycles, t *Task) bool {
	if c.tree.Len() == 0 {
		return false
	}
	s := c.slice(t)
	if t.sliceUsed >= s {
		t.Stats.SliceExhaustions++
		return true
	}
	if t.sliceUsed < c.params.MinGranularity {
		return false
	}
	left := c.tree.Min().Item
	if t.vruntime > left.vruntime && t.vruntime-left.vruntime > uint64(s) {
		return true
	}
	return false
}

// SetWeight implements Scheduler.
func (c *CFS) SetWeight(t *Task, w int) {
	if w < 2 {
		w = 2 // kernel floor: cpu.shares below 2 are clamped
	}
	if t.cfsNode != nil {
		// Re-key under the node's position is unchanged (vruntime is the
		// key, not weight), so no reinsert needed; just fix totals.
		c.totalWeight += w - t.weight
	}
	t.weight = w
}

// Runnable implements Scheduler.
func (c *CFS) Runnable() int { return c.tree.Len() }
