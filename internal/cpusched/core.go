package cpusched

import (
	"fmt"

	"nfvnice/internal/eventsim"
	"nfvnice/internal/simtime"
)

// CoreParams hold the context-switch cost model. The direct cost of a Linux
// context switch is 1–2 µs; we charge it to the core (not to either task's
// useful work), which is how it shows up as lost throughput in the paper.
type CoreParams struct {
	VoluntarySwitchCost   simtime.Cycles
	InvoluntarySwitchCost simtime.Cycles
	// PickOverhead is charged on every scheduling decision, on top of the
	// switch cost. It models schedulers that need extra state synchronized
	// per decision — e.g. the paper's abandoned queue-length-aware kernel
	// scheduler, which had to pull NF ring occupancies across the
	// user/kernel boundary.
	PickOverhead simtime.Cycles
}

// DefaultCoreParams returns the calibrated switch costs: 1 µs voluntary
// (semaphore block, warm caches), 2 µs involuntary (preemption, cold caches).
func DefaultCoreParams() CoreParams {
	return CoreParams{
		VoluntarySwitchCost:   1 * simtime.Microsecond,
		InvoluntarySwitchCost: 2 * simtime.Microsecond,
	}
}

// Core executes tasks under a Scheduler inside the event simulation. One
// Core is one physical CPU core running NF processes; manager threads run on
// their own dedicated cores and are not modelled by Core.
type Core struct {
	ID     int
	eng    *eventsim.Engine
	sched  Scheduler
	params CoreParams

	curr        *Task
	needResched bool
	switching   bool
	segEvent    *eventsim.Event
	tasks       []*Task
	runStart    simtime.Cycles

	// OnRunSpan, when set, observes every contiguous on-CPU interval of a
	// task (tracing).
	OnRunSpan func(t *Task, start, end simtime.Cycles)

	// BusyCycles is time spent executing task work; SwitchCycles is time
	// burned in context switches. Idle time is everything else.
	BusyCycles   simtime.Cycles
	SwitchCycles simtime.Cycles
	Switches     uint64
}

// NewCore returns a core driven by eng under the given scheduling policy.
func NewCore(id int, eng *eventsim.Engine, sched Scheduler, params CoreParams) *Core {
	return &Core{ID: id, eng: eng, sched: sched, params: params}
}

// Scheduler returns the core's scheduling policy.
func (c *Core) Scheduler() Scheduler { return c.sched }

// Tasks returns the tasks pinned to this core.
func (c *Core) Tasks() []*Task { return c.tasks }

// Current returns the running task, or nil when idle/switching.
func (c *Core) Current() *Task { return c.curr }

// Utilization reports busy+switch cycles as a fraction of elapsed.
func (c *Core) Utilization(elapsed simtime.Cycles) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(c.BusyCycles+c.SwitchCycles) / float64(elapsed)
}

// AddTask pins a blocked task to this core.
func (c *Core) AddTask(t *Task) {
	if t.core != nil {
		panic(fmt.Sprintf("cpusched: task %q already pinned to core %d", t.Name, t.core.ID))
	}
	t.core = c
	t.state = Blocked
	c.tasks = append(c.tasks, t)
}

// Wake transitions a blocked task to runnable. Waking an already-runnable
// or running task is a no-op (the semaphore is binary). This is the entry
// point the manager's wakeup subsystem uses.
func (c *Core) Wake(t *Task) {
	if t.core != c {
		panic("cpusched: Wake on foreign task")
	}
	if t.state != Blocked {
		return
	}
	now := c.eng.Now()
	t.state = Runnable
	t.readyAt = now
	t.Stats.WakeUps++
	if c.sched.Enqueue(now, t, true, c.curr) {
		c.needResched = true
		t.Stats.WakeupPreemptionsBy++
	}
	if c.curr == nil && !c.switching {
		c.schedule()
	}
}

// SetWeight adjusts a task's scheduler weight (cgroup cpu.shares write).
func (c *Core) SetWeight(t *Task, w int) {
	c.sched.SetWeight(t, w)
}

// Kick forces the running task to be re-evaluated at its next batch
// boundary. The NF manager uses this when it sets a task's yield flag; the
// flag itself is read by the actor, so Kick is only an optimization and is
// safe to call at any time.
func (c *Core) Kick() {
	// Nothing to do: preemption conditions are re-evaluated at every
	// segment completion, and actors observe their flags then. Kept as an
	// explicit method to mark intent at call sites.
}

func (c *Core) schedule() {
	if c.curr != nil {
		panic("cpusched: schedule with task running")
	}
	now := c.eng.Now()
	t := c.sched.PickNext(now)
	if t == nil {
		return // idle; next Wake restarts us
	}
	wait := now - t.readyAt
	t.Stats.WaitTime += wait
	t.Stats.WaitCount++
	t.state = Running
	c.curr = t
	c.needResched = false
	c.runStart = now
	if c.params.PickOverhead > 0 {
		c.SwitchCycles += c.params.PickOverhead
		c.eng.After(c.params.PickOverhead, c.startSegment)
		return
	}
	c.startSegment()
}

func (c *Core) startSegment() {
	t := c.curr
	now := c.eng.Now()
	dur := t.Actor.Segment(now)
	if dur == 0 {
		c.block(t)
		return
	}
	c.segEvent = c.eng.After(dur, func() { c.segmentDone(dur) })
}

func (c *Core) segmentDone(ran simtime.Cycles) {
	t := c.curr
	if t == nil {
		panic("cpusched: segment completion with no current task")
	}
	now := c.eng.Now()
	c.sched.Charge(t, ran)
	c.BusyCycles += ran
	more := t.Actor.Complete(now)

	// Preemption check at the batch boundary.
	if (c.needResched || c.sched.NeedsResched(now, t)) && c.sched.Runnable() > 0 {
		if !more {
			// The task was about to block anyway; treat as voluntary.
			c.block(t)
			return
		}
		t.state = Runnable
		t.readyAt = now
		t.Stats.InvolSwitches++
		c.sched.Enqueue(now, t, false, nil)
		c.deschedule(c.params.InvoluntarySwitchCost)
		return
	}
	if !more {
		c.block(t)
		return
	}
	c.startSegment()
}

func (c *Core) block(t *Task) {
	t.state = Blocked
	t.Stats.VoluntarySwitches++
	c.deschedule(c.params.VoluntarySwitchCost)
}

func (c *Core) deschedule(cost simtime.Cycles) {
	if c.OnRunSpan != nil && c.curr != nil {
		c.OnRunSpan(c.curr, c.runStart, c.eng.Now())
	}
	c.curr = nil
	c.needResched = false
	c.SwitchCycles += cost
	c.Switches++
	c.switching = true
	c.eng.After(cost, func() {
		c.switching = false
		if c.curr == nil {
			c.schedule()
		}
	})
}
