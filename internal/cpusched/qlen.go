package cpusched

import (
	"nfvnice/internal/simtime"
)

// QLen is the custom queue-length-aware CPU scheduler the paper's authors
// prototyped and abandoned (§3.2): it always runs the runnable task with
// the deepest receive backlog. As a pure policy it is excellent for chains —
// it is effectively backpressure enforced by the scheduler — but in a real
// kernel every decision needs NF queue lengths synchronized across the
// user/kernel boundary, an overhead the paper measured as outweighing the
// benefits. The experiment harness models that cost with Core.PickOverhead.
//
// Tasks must have Backlog set; a nil Backlog reads as zero (idle-ish).
type QLen struct {
	quantum simtime.Cycles
	queue   []*Task
}

// NewQLen returns a queue-length scheduler with the given quantum bound.
func NewQLen(quantum simtime.Cycles) *QLen {
	if quantum == 0 {
		quantum = 250 * simtime.Microsecond
	}
	return &QLen{quantum: quantum}
}

// Name implements Scheduler.
func (q *QLen) Name() string { return "qlen-custom" }

// Enqueue implements Scheduler. A waking task with a deeper backlog than
// the running task preempts it — the whole point of the design.
func (q *QLen) Enqueue(now simtime.Cycles, t *Task, wakeup bool, curr *Task) bool {
	t.rrIndex = len(q.queue)
	q.queue = append(q.queue, t)
	if !wakeup || curr == nil {
		return false
	}
	return backlog(t) > backlog(curr)
}

// Dequeue implements Scheduler.
func (q *QLen) Dequeue(t *Task) {
	if t.rrIndex < 0 || t.rrIndex >= len(q.queue) || q.queue[t.rrIndex] != t {
		return
	}
	copy(q.queue[t.rrIndex:], q.queue[t.rrIndex+1:])
	q.queue = q.queue[:len(q.queue)-1]
	for i := t.rrIndex; i < len(q.queue); i++ {
		q.queue[i].rrIndex = i
	}
	t.rrIndex = -1
}

// PickNext implements Scheduler: deepest backlog wins; ties go to the
// longest-waiting task (queue order).
func (q *QLen) PickNext(now simtime.Cycles) *Task {
	if len(q.queue) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(q.queue); i++ {
		if backlog(q.queue[i]) > backlog(q.queue[best]) {
			best = i
		}
	}
	t := q.queue[best]
	q.Dequeue(t)
	t.sliceUsed = 0
	return t
}

// Charge implements Scheduler.
func (q *QLen) Charge(t *Task, ran simtime.Cycles) {
	t.Stats.Runtime += ran
	t.sliceUsed += ran
}

// NeedsResched implements Scheduler: re-evaluate when the quantum expires
// or some queued task's backlog now dominates the running task's.
func (q *QLen) NeedsResched(now simtime.Cycles, t *Task) bool {
	if len(q.queue) == 0 {
		return false
	}
	if t.sliceUsed >= q.quantum {
		t.Stats.SliceExhaustions++
		return true
	}
	cur := backlog(t)
	for _, w := range q.queue {
		if backlog(w) > 2*cur {
			return true
		}
	}
	return false
}

// SetWeight implements Scheduler (queue length is the only signal).
func (q *QLen) SetWeight(t *Task, w int) { t.weight = w }

// Runnable implements Scheduler.
func (q *QLen) Runnable() int { return len(q.queue) }

func backlog(t *Task) int {
	if t.Backlog == nil {
		return 0
	}
	return t.Backlog()
}
