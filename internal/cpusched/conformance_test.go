package cpusched

import (
	"fmt"
	"testing"

	"nfvnice/internal/eventsim"
	"nfvnice/internal/simtime"
)

// schedulers under conformance test.
func allSchedulers() map[string]func() Scheduler {
	return map[string]func() Scheduler{
		"cfs-normal": func() Scheduler { return NewCFS() },
		"cfs-batch":  func() Scheduler { return NewCFSBatch() },
		"rr-1ms":     func() Scheduler { return NewRR("rr-1ms", simtime.Millisecond) },
		"rr-100ms":   func() Scheduler { return NewRR("rr-100ms", 100*simtime.Millisecond) },
	}
}

// TestNoStarvationWithMaliciousNF reproduces the §2.1 claim: a malicious NF
// that never yields must not starve well-behaved NFs under any scheduler.
func TestNoStarvationWithMaliciousNF(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			eng := eventsim.New()
			core := NewCore(0, eng, mk(), DefaultCoreParams())
			malicious := NewTask(1, "malicious", &cpuBound{cost: 50 * simtime.Microsecond})
			good := NewTask(2, "good", &cpuBound{cost: 10 * simtime.Microsecond})
			core.AddTask(malicious)
			core.AddTask(good)
			core.Wake(malicious)
			core.Wake(good)
			eng.RunUntil(2 * simtime.Second)
			share := float64(good.Stats.Runtime) / float64(2*simtime.Second)
			if share < 0.30 {
				t.Fatalf("well-behaved NF got only %.1f%% of the CPU", share*100)
			}
		})
	}
}

// TestWorkConservation: with a single always-ready task the core must be
// busy nearly all the time under every scheduler.
func TestWorkConservation(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			eng := eventsim.New()
			core := NewCore(0, eng, mk(), DefaultCoreParams())
			tk := NewTask(1, "t", &cpuBound{cost: 10 * simtime.Microsecond})
			core.AddTask(tk)
			core.Wake(tk)
			eng.RunUntil(simtime.Second)
			if util := core.Utilization(simtime.Second); util < 0.99 {
				t.Fatalf("utilization %.3f with an always-ready task", util)
			}
		})
	}
}

// TestRuntimeConservation: total charged runtime plus switch overhead can
// never exceed wall time on one core.
func TestRuntimeConservation(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			eng := eventsim.New()
			core := NewCore(0, eng, mk(), DefaultCoreParams())
			var tasks []*Task
			for i := 0; i < 5; i++ {
				tk := NewTask(i, fmt.Sprintf("t%d", i), &cpuBound{cost: simtime.Cycles(5+i) * simtime.Microsecond})
				core.AddTask(tk)
				tasks = append(tasks, tk)
				core.Wake(tk)
			}
			horizon := simtime.Cycles(500 * simtime.Millisecond)
			eng.RunUntil(horizon)
			var total simtime.Cycles
			for _, tk := range tasks {
				total += tk.Stats.Runtime
			}
			if total+core.SwitchCycles > horizon {
				t.Fatalf("charged %v + switches %v exceeds wall %v", total, core.SwitchCycles, horizon)
			}
			if total < horizon*9/10 {
				t.Fatalf("only %v of %v charged: core not work conserving", total, horizon)
			}
		})
	}
}

// TestBlockedNeverRuns: a task that is never woken must never accumulate
// runtime under any scheduler.
func TestBlockedNeverRuns(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			eng := eventsim.New()
			core := NewCore(0, eng, mk(), DefaultCoreParams())
			sleeper := NewTask(1, "sleeper", &cpuBound{cost: simtime.Microsecond})
			runner := NewTask(2, "runner", &cpuBound{cost: simtime.Microsecond})
			core.AddTask(sleeper)
			core.AddTask(runner)
			core.Wake(runner) // sleeper never woken
			eng.RunUntil(100 * simtime.Millisecond)
			if sleeper.Stats.Runtime != 0 {
				t.Fatal("never-woken task ran")
			}
		})
	}
}

// TestInterruptDrivenTaskLatency: a task woken with a single packet of work
// must run within a bounded delay under every scheduler (the paper's
// scheduling-latency metric).
func TestInterruptDrivenTaskLatency(t *testing.T) {
	for name, mk := range allSchedulers() {
		t.Run(name, func(t *testing.T) {
			eng := eventsim.New()
			core := NewCore(0, eng, mk(), DefaultCoreParams())
			hog := NewTask(1, "hog", &cpuBound{cost: 10 * simtime.Microsecond})
			act := &finite{cost: simtime.Microsecond, left: 0}
			light := NewTask(2, "light", act)
			core.AddTask(hog)
			core.AddTask(light)
			core.Wake(hog)
			eng.Every(0, simtime.Millisecond, func() {
				act.left = 1
				core.Wake(light)
			})
			eng.RunUntil(simtime.Second)
			delay := light.Stats.AvgSchedDelay()
			// Even RR(100ms) bounds the wait by one quantum.
			if delay > 110*simtime.Millisecond {
				t.Fatalf("avg scheduling delay %v too large", delay)
			}
			if light.Stats.Runtime == 0 {
				t.Fatal("interrupt-driven task never ran")
			}
		})
	}
}

// TestVruntimeOverflowHeadroom: a year of simulated runtime at maximum
// weight skew must not overflow the vruntime accumulator.
func TestVruntimeOverflowHeadroom(t *testing.T) {
	// vruntime advances at ran * 1024 / weight; the worst case is
	// weight=2 (512x scaling). A uint64 at 2.6 GHz holds
	// 2^64 / (2.6e9 * 512) seconds ≈ 440 years. Simulate the arithmetic.
	var vr uint64
	yearCycles := uint64(simtime.Second) * 86400 * 365
	perYear := yearCycles * 512
	if perYear < yearCycles { // overflow in one year?
		t.Fatal("vruntime would overflow within a year")
	}
	vr += perYear
	if vr == 0 {
		t.Fatal("unexpected wraparound")
	}
}
