package cpusched

import (
	"nfvnice/internal/simtime"
)

// RR models SCHED_RR with equal-priority tasks: a FIFO of runnable tasks,
// each running for a fixed quantum before rotating to the tail. The paper
// evaluates 1 ms and 100 ms quanta (sched_rr_timeslice_ms).
type RR struct {
	quantum simtime.Cycles
	queue   []*Task
	name    string
}

// NewRR returns a round-robin scheduler with the given time quantum.
func NewRR(name string, quantum simtime.Cycles) *RR {
	if quantum == 0 {
		panic("cpusched: RR quantum must be positive")
	}
	return &RR{quantum: quantum, name: name}
}

// Name implements Scheduler.
func (r *RR) Name() string { return r.name }

// Quantum reports the configured time slice.
func (r *RR) Quantum() simtime.Cycles { return r.quantum }

// Enqueue implements Scheduler. RR at equal priority never preempts on
// wakeup; the waker waits for the current task's quantum.
func (r *RR) Enqueue(now simtime.Cycles, t *Task, wakeup bool, curr *Task) bool {
	t.rrIndex = len(r.queue)
	r.queue = append(r.queue, t)
	return false
}

// Dequeue implements Scheduler.
func (r *RR) Dequeue(t *Task) {
	if t.rrIndex < 0 || t.rrIndex >= len(r.queue) || r.queue[t.rrIndex] != t {
		return
	}
	copy(r.queue[t.rrIndex:], r.queue[t.rrIndex+1:])
	r.queue = r.queue[:len(r.queue)-1]
	for i := t.rrIndex; i < len(r.queue); i++ {
		r.queue[i].rrIndex = i
	}
	t.rrIndex = -1
}

// PickNext implements Scheduler.
func (r *RR) PickNext(now simtime.Cycles) *Task {
	if len(r.queue) == 0 {
		return nil
	}
	t := r.queue[0]
	copy(r.queue, r.queue[1:])
	r.queue = r.queue[:len(r.queue)-1]
	for i, q := range r.queue {
		q.rrIndex = i
	}
	t.rrIndex = -1
	t.sliceUsed = 0
	return t
}

// Charge implements Scheduler.
func (r *RR) Charge(t *Task, ran simtime.Cycles) {
	t.Stats.Runtime += ran
	t.sliceUsed += ran
}

// NeedsResched implements Scheduler: quantum exhaustion only.
func (r *RR) NeedsResched(now simtime.Cycles, t *Task) bool {
	if len(r.queue) == 0 {
		return false
	}
	if t.sliceUsed >= r.quantum {
		t.Stats.SliceExhaustions++
		return true
	}
	return false
}

// SetWeight implements Scheduler. SCHED_RR ignores cgroup cpu.shares (the
// real-time class is outside CFS bandwidth control), so this is a no-op
// beyond recording the value — which matches the paper's observation that
// NFVnice's cgroup mechanism has no lever over RR and must rely on
// backpressure there.
func (r *RR) SetWeight(t *Task, w int) { t.weight = w }

// Runnable implements Scheduler.
func (r *RR) Runnable() int { return len(r.queue) }
