package cpusched

import (
	"testing"

	"nfvnice/internal/eventsim"
	"nfvnice/internal/simtime"
)

// backlogActor pairs a work source with a mutable backlog counter.
type backlogActor struct {
	cpuBound
	depth int
}

func TestQLenPicksDeepestQueue(t *testing.T) {
	q := NewQLen(0)
	if q.Name() != "qlen-custom" {
		t.Fatal("name")
	}
	mk := func(depth int) *Task {
		a := &backlogActor{cpuBound: cpuBound{cost: simtime.Microsecond}, depth: depth}
		tk := NewTask(depth, "t", a)
		tk.Backlog = func() int { return a.depth }
		return tk
	}
	shallow := mk(3)
	deep := mk(100)
	mid := mk(50)
	q.Enqueue(0, shallow, true, nil)
	q.Enqueue(0, deep, true, nil)
	q.Enqueue(0, mid, true, nil)
	if got := q.PickNext(0); got != deep {
		t.Fatalf("picked %s, want deepest", got.Name)
	}
	if got := q.PickNext(0); got != mid {
		t.Fatal("second pick should be mid")
	}
	if q.Runnable() != 1 {
		t.Fatalf("runnable = %d", q.Runnable())
	}
}

func TestQLenNilBacklogReadsZero(t *testing.T) {
	q := NewQLen(0)
	a := NewTask(1, "a", nil) // no Backlog
	b := NewTask(2, "b", nil)
	b.Backlog = func() int { return 5 }
	q.Enqueue(0, a, true, nil)
	q.Enqueue(0, b, true, nil)
	if got := q.PickNext(0); got != b {
		t.Fatal("task with backlog should beat nil-backlog task")
	}
}

func TestQLenWakeupPreemption(t *testing.T) {
	q := NewQLen(0)
	curr := NewTask(1, "curr", nil)
	curr.Backlog = func() int { return 10 }
	deeper := NewTask(2, "deeper", nil)
	deeper.Backlog = func() int { return 50 }
	if !q.Enqueue(0, deeper, true, curr) {
		t.Fatal("deeper waker should preempt")
	}
	shallower := NewTask(3, "shallower", nil)
	shallower.Backlog = func() int { return 5 }
	if q.Enqueue(0, shallower, true, curr) {
		t.Fatal("shallower waker must not preempt")
	}
}

func TestQLenNeedsResched(t *testing.T) {
	q := NewQLen(simtime.Millisecond)
	curr := NewTask(1, "curr", nil)
	curr.Backlog = func() int { return 10 }
	other := NewTask(2, "other", nil)
	depth := 15
	other.Backlog = func() int { return depth }
	q.Enqueue(0, other, true, nil)
	// Below quantum and below 2x dominance: keep running.
	q.Charge(curr, simtime.Microsecond)
	if q.NeedsResched(0, curr) {
		t.Fatal("no resched expected")
	}
	// A queued task with >2x the backlog forces a resched.
	depth = 25
	if !q.NeedsResched(0, curr) {
		t.Fatal("2x-dominant queue should preempt")
	}
	// Quantum exhaustion forces a resched regardless.
	depth = 1
	q.Charge(curr, simtime.Millisecond)
	if !q.NeedsResched(0, curr) {
		t.Fatal("quantum exhaustion should preempt")
	}
	if curr.Stats.SliceExhaustions != 1 {
		t.Fatal("exhaustion not counted")
	}
}

func TestQLenEndToEndDrainsBottleneck(t *testing.T) {
	// Two tasks with synthetic backlogs that deplete as they run: the
	// scheduler must keep the deeper one on CPU until parity.
	eng := eventsim.New()
	core := NewCore(0, eng, NewQLen(0), DefaultCoreParams())
	mkDraining := func(id, depth int) (*Task, *int) {
		d := depth
		var tk *Task
		a := &drainingActor{cost: 10 * simtime.Microsecond, depth: &d}
		tk = NewTask(id, "t", a)
		tk.Backlog = func() int { return d }
		return tk, &d
	}
	a, da := mkDraining(1, 1000)
	b, db := mkDraining(2, 100)
	core.AddTask(a)
	core.AddTask(b)
	core.Wake(a)
	core.Wake(b)
	eng.RunUntil(simtime.Second)
	if *da != 0 || *db != 0 {
		t.Fatalf("backlogs not drained: %d %d", *da, *db)
	}
	// The deep task must have finished the bulk of its work before the
	// shallow one got sustained time: its runtime dominates.
	if a.Stats.Runtime < 5*b.Stats.Runtime {
		t.Fatalf("deep task runtime %v vs shallow %v", a.Stats.Runtime, b.Stats.Runtime)
	}
}

type drainingActor struct {
	cost  simtime.Cycles
	depth *int
}

func (d *drainingActor) Segment(simtime.Cycles) simtime.Cycles {
	if *d.depth == 0 {
		return 0
	}
	return d.cost
}

func (d *drainingActor) Complete(simtime.Cycles) bool {
	if *d.depth > 0 {
		*d.depth--
	}
	return *d.depth > 0
}

func TestQLenZeroQuantumPanicsNot(t *testing.T) {
	// Zero quantum takes the default.
	q := NewQLen(0)
	if q.quantum == 0 {
		t.Fatal("default quantum not applied")
	}
}
