// Package cpusched models the Linux process schedulers the paper evaluates —
// CFS (SCHED_NORMAL), CFS-BATCH, and SCHED_RR — together with the per-core
// executor that runs NF tasks inside the discrete-event simulation.
//
// The models reproduce the mechanisms the paper's results hinge on:
//
//   - CFS keeps runnable tasks ordered by weighted virtual runtime on a
//     red-black tree; the leftmost task runs next. Weights come from cgroup
//     cpu.shares (nice-0 = 1024).
//   - SCHED_NORMAL preempts the running task when a waking task's vruntime
//     is sufficiently behind (wakeup preemption) — the source of the ~65k
//     involuntary context switches/s in the paper's Table 2.
//   - SCHED_BATCH disables wakeup preemption, leaving only tick preemption —
//     the ~1k switches/s behaviour.
//   - SCHED_RR cycles a FIFO of equal-priority tasks with a fixed quantum
//     (1 ms and 100 ms variants in the paper).
//
// Preemption decisions are evaluated at NF batch boundaries (≤ 32 packets,
// tens of microseconds), which is the granularity at which a real NFV
// platform observes them anyway — libnf checks flags between batches.
package cpusched

import (
	"fmt"

	"nfvnice/internal/simtime"
)

// TaskState is the run state of a task.
type TaskState uint8

// Task states.
const (
	Blocked  TaskState = iota // waiting on semaphore (no packets) or I/O
	Runnable                  // on the runqueue
	Running                   // current on its core
)

func (s TaskState) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// NiceZeroWeight is the CFS load weight of a nice-0 task; cgroup cpu.shares
// map 1:1 onto this scale (1024 = one default share).
const NiceZeroWeight = 1024

// TaskStats accumulates the perf-sched style metrics the paper reports.
type TaskStats struct {
	Runtime             simtime.Cycles // cycles actually executed
	VoluntarySwitches   uint64         // blocked while holding the CPU
	InvolSwitches       uint64         // preempted while still runnable
	WaitTime            simtime.Cycles // total runnable-but-waiting time
	WaitCount           uint64         // number of waits (for average delay)
	WakeUps             uint64
	SliceExhaustions    uint64 // RR/CFS tick preemptions
	WakeupPreemptionsBy uint64 // times this task's wakeup preempted another
}

// AvgSchedDelay reports the mean time from runnable to running.
func (s *TaskStats) AvgSchedDelay() simtime.Cycles {
	if s.WaitCount == 0 {
		return 0
	}
	return s.WaitTime / simtime.Cycles(s.WaitCount)
}

// Task is a schedulable entity (one NF process).
type Task struct {
	Name string
	ID   int

	// Actor supplies the task's work when it is on CPU.
	Actor Actor

	// Batch is true for SCHED_BATCH tasks (no wakeup preemption by or of
	// them in the BATCH policy model).
	Batch bool

	// Backlog, when set, reports the task's pending-work depth (the NF's
	// receive-ring occupancy). Only queue-aware schedulers read it.
	Backlog func() int

	weight int
	state  TaskState

	// CFS bookkeeping.
	vruntime  uint64 // weighted virtual runtime, in nice-0 cycles
	sliceUsed simtime.Cycles
	readyAt   simtime.Cycles

	Stats TaskStats

	// core the task is assigned to; tasks never migrate in the paper's
	// experiments (NFs are pinned).
	core *Core

	// queue linkage, owned by the scheduler implementations.
	cfsNode any
	rrIndex int
}

// NewTask returns a blocked task with nice-0 weight.
func NewTask(id int, name string, actor Actor) *Task {
	return &Task{ID: id, Name: name, Actor: actor, weight: NiceZeroWeight, rrIndex: -1}
}

// Weight reports the task's scheduler weight.
func (t *Task) Weight() int { return t.weight }

// State reports the task's current run state.
func (t *Task) State() TaskState { return t.state }

// Core returns the core the task is attached to (nil before AddTask).
func (t *Task) Core() *Core { return t.core }

// Actor is the work source a task runs. The executor calls Segment to learn
// the cost of the next indivisible unit (one packet batch); after charging
// that time it calls Complete, which performs the unit's effects (deliver
// packets, enqueue I/O) and reports whether the task has more work.
//
// Segment returning 0 means "no work": the task blocks (a voluntary switch)
// until Core.Wake is called.
type Actor interface {
	Segment(now simtime.Cycles) simtime.Cycles
	Complete(now simtime.Cycles) (more bool)
}

// Scheduler is a per-core scheduling policy.
type Scheduler interface {
	Name() string

	// Enqueue makes t runnable. wakeup is true when the task transitions
	// from Blocked (rather than being put back after preemption); wakeup
	// preemption applies only then. Returns true if the newly enqueued
	// task should preempt the currently running task curr (nil when the
	// core is idle).
	Enqueue(now simtime.Cycles, t *Task, wakeup bool, curr *Task) (preempt bool)

	// Dequeue removes a runnable task (it blocked or is being migrated).
	Dequeue(t *Task)

	// PickNext removes and returns the next task to run, or nil if the
	// runqueue is empty.
	PickNext(now simtime.Cycles) *Task

	// Charge accounts ran cycles of CPU to the running task t.
	Charge(t *Task, ran simtime.Cycles)

	// NeedsResched reports whether the running task t has exhausted its
	// quantum / fairness slice and should be preempted, given that other
	// tasks are runnable.
	NeedsResched(now simtime.Cycles, t *Task) bool

	// SetWeight updates t's scheduling weight (from cgroup cpu.shares).
	// Valid for queued and running tasks.
	SetWeight(t *Task, w int)

	// Runnable reports the number of queued (not running) tasks.
	Runnable() int
}
