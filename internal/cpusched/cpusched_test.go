package cpusched

import (
	"testing"

	"nfvnice/internal/eventsim"
	"nfvnice/internal/simtime"
)

// cpuBound always has another batch of work.
type cpuBound struct {
	cost simtime.Cycles
}

func (a *cpuBound) Segment(simtime.Cycles) simtime.Cycles { return a.cost }
func (a *cpuBound) Complete(simtime.Cycles) bool          { return true }

// finite runs n segments and then blocks until woken (and stays empty).
type finite struct {
	cost simtime.Cycles
	left int
	done int
}

func (a *finite) Segment(simtime.Cycles) simtime.Cycles {
	if a.left == 0 {
		return 0
	}
	return a.cost
}
func (a *finite) Complete(simtime.Cycles) bool {
	a.left--
	a.done++
	return a.left > 0
}

func newEnv(sched Scheduler) (*eventsim.Engine, *Core) {
	eng := eventsim.New()
	core := NewCore(0, eng, sched, DefaultCoreParams())
	return eng, core
}

func TestCFSFairnessEqualWeights(t *testing.T) {
	eng, core := newEnv(NewCFS())
	a := NewTask(1, "a", &cpuBound{cost: 10 * simtime.Microsecond})
	b := NewTask(2, "b", &cpuBound{cost: 10 * simtime.Microsecond})
	core.AddTask(a)
	core.AddTask(b)
	core.Wake(a)
	core.Wake(b)
	eng.RunUntil(simtime.Second)
	ra, rb := float64(a.Stats.Runtime), float64(b.Stats.Runtime)
	if ra == 0 || rb == 0 {
		t.Fatalf("starvation: runtimes %v %v", ra, rb)
	}
	if ratio := ra / rb; ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("equal-weight runtime ratio = %.3f, want ~1", ratio)
	}
}

func TestCFSFairnessWeighted(t *testing.T) {
	eng, core := newEnv(NewCFS())
	a := NewTask(1, "a", &cpuBound{cost: 10 * simtime.Microsecond})
	b := NewTask(2, "b", &cpuBound{cost: 10 * simtime.Microsecond})
	core.AddTask(a)
	core.AddTask(b)
	core.SetWeight(a, 3*NiceZeroWeight)
	core.SetWeight(b, 1*NiceZeroWeight)
	core.Wake(a)
	core.Wake(b)
	eng.RunUntil(simtime.Second)
	ratio := float64(a.Stats.Runtime) / float64(b.Stats.Runtime)
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("3:1 weight runtime ratio = %.3f, want ~3", ratio)
	}
}

func TestCFSWeightChangeMidRun(t *testing.T) {
	eng, core := newEnv(NewCFS())
	a := NewTask(1, "a", &cpuBound{cost: 10 * simtime.Microsecond})
	b := NewTask(2, "b", &cpuBound{cost: 10 * simtime.Microsecond})
	core.AddTask(a)
	core.AddTask(b)
	core.Wake(a)
	core.Wake(b)
	eng.RunUntil(simtime.Second)
	baseA := a.Stats.Runtime
	baseB := b.Stats.Runtime
	// Now give a 4x the weight and run another second.
	core.SetWeight(a, 4*NiceZeroWeight)
	eng.RunUntil(2 * simtime.Second)
	da := float64(a.Stats.Runtime - baseA)
	db := float64(b.Stats.Runtime - baseB)
	if ratio := da / db; ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("post-change ratio = %.3f, want ~4", ratio)
	}
}

func TestRRQuantumRotation(t *testing.T) {
	eng, core := newEnv(NewRR("rr-1ms", simtime.Millisecond))
	a := NewTask(1, "a", &cpuBound{cost: 10 * simtime.Microsecond})
	b := NewTask(2, "b", &cpuBound{cost: 10 * simtime.Microsecond})
	core.AddTask(a)
	core.AddTask(b)
	core.Wake(a)
	core.Wake(b)
	eng.RunUntil(simtime.Second / 2)
	// Equal CPU-bound tasks under RR get equal time.
	ratio := float64(a.Stats.Runtime) / float64(b.Stats.Runtime)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("RR runtime ratio = %.3f", ratio)
	}
	// And the switches are involuntary (quantum expiry), roughly
	// 1 per ms across the two tasks.
	inv := a.Stats.InvolSwitches + b.Stats.InvolSwitches
	if inv < 400 || inv > 600 {
		t.Fatalf("involuntary switches = %d, want ~500 in 0.5s at 1ms quantum", inv)
	}
}

func TestRRIgnoresWeights(t *testing.T) {
	eng, core := newEnv(NewRR("rr", simtime.Millisecond))
	a := NewTask(1, "a", &cpuBound{cost: 10 * simtime.Microsecond})
	b := NewTask(2, "b", &cpuBound{cost: 10 * simtime.Microsecond})
	core.AddTask(a)
	core.AddTask(b)
	core.SetWeight(a, 8*NiceZeroWeight)
	core.Wake(a)
	core.Wake(b)
	eng.RunUntil(simtime.Second / 2)
	ratio := float64(a.Stats.Runtime) / float64(b.Stats.Runtime)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("RR must ignore weights; ratio = %.3f", ratio)
	}
}

func TestBlockedTaskDoesNotRun(t *testing.T) {
	eng, core := newEnv(NewCFS())
	a := NewTask(1, "a", &finite{cost: 100 * simtime.Microsecond, left: 3})
	core.AddTask(a)
	core.Wake(a)
	eng.RunUntil(simtime.Second)
	if a.Stats.Runtime != 300*simtime.Microsecond {
		t.Fatalf("runtime = %v, want 300µs", a.Stats.Runtime)
	}
	if a.State() != Blocked {
		t.Fatalf("state = %v, want blocked", a.State())
	}
	if a.Stats.VoluntarySwitches != 1 {
		t.Fatalf("voluntary switches = %d, want 1", a.Stats.VoluntarySwitches)
	}
}

func TestWakeResumesBlockedTask(t *testing.T) {
	eng, core := newEnv(NewCFS())
	act := &finite{cost: 10 * simtime.Microsecond, left: 1}
	a := NewTask(1, "a", act)
	core.AddTask(a)
	core.Wake(a)
	eng.RunUntil(simtime.Millisecond)
	if act.done != 1 {
		t.Fatalf("done = %d", act.done)
	}
	// Refill work and wake.
	act.left = 2
	core.Wake(a)
	eng.RunUntil(2 * simtime.Millisecond)
	if act.done != 3 {
		t.Fatalf("done after rewake = %d, want 3", act.done)
	}
}

func TestWakeIdempotent(t *testing.T) {
	eng, core := newEnv(NewCFS())
	a := NewTask(1, "a", &cpuBound{cost: 10 * simtime.Microsecond})
	core.AddTask(a)
	core.Wake(a)
	core.Wake(a) // no-op: already runnable/running
	eng.RunUntil(simtime.Millisecond)
	if a.Stats.WakeUps != 1 {
		t.Fatalf("WakeUps = %d, want 1", a.Stats.WakeUps)
	}
}

func TestWakeupPreemptionNormalVsBatch(t *testing.T) {
	// An interrupt-driven light task contending with a CPU hog: under
	// SCHED_NORMAL the light task's wakeups preempt the hog (many
	// involuntary switches on the hog); under BATCH they do not.
	run := func(sched Scheduler) (hogInvol uint64) {
		eng := eventsim.New()
		core := NewCore(0, eng, sched, DefaultCoreParams())
		hog := NewTask(1, "hog", &cpuBound{cost: 10 * simtime.Microsecond})
		lightAct := &finite{cost: simtime.Microsecond, left: 0}
		light := NewTask(2, "light", lightAct)
		core.AddTask(hog)
		core.AddTask(light)
		core.Wake(hog)
		// Wake the light task every 100 µs with one packet of work.
		eng.Every(0, 100*simtime.Microsecond, func() {
			lightAct.left = 1
			core.Wake(light)
		})
		eng.RunUntil(simtime.Second)
		return hog.Stats.InvolSwitches
	}
	normal := run(NewCFS())
	batch := run(NewCFSBatch())
	if normal < 1000 {
		t.Fatalf("NORMAL hog involuntary switches = %d, want thousands from wakeup preemption", normal)
	}
	if batch > normal/5 {
		t.Fatalf("BATCH hog involuntary switches = %d vs NORMAL %d; BATCH should be far lower", batch, normal)
	}
}

func TestSchedulingDelayAccounted(t *testing.T) {
	eng, core := newEnv(NewRR("rr", 10*simtime.Millisecond))
	a := NewTask(1, "a", &cpuBound{cost: 10 * simtime.Microsecond})
	b := NewTask(2, "b", &cpuBound{cost: 10 * simtime.Microsecond})
	core.AddTask(a)
	core.AddTask(b)
	core.Wake(a)
	core.Wake(b)
	eng.RunUntil(simtime.Second)
	// b waits roughly a quantum each round.
	if b.Stats.AvgSchedDelay() < 8*simtime.Millisecond {
		t.Fatalf("avg delay = %v, want ~10ms quantum wait", b.Stats.AvgSchedDelay())
	}
}

func TestSwitchCostAccounting(t *testing.T) {
	eng, core := newEnv(NewCFS())
	a := NewTask(1, "a", &finite{cost: 10 * simtime.Microsecond, left: 1})
	core.AddTask(a)
	core.Wake(a)
	eng.RunUntil(simtime.Millisecond)
	if core.Switches != 1 {
		t.Fatalf("Switches = %d", core.Switches)
	}
	if core.SwitchCycles != DefaultCoreParams().VoluntarySwitchCost {
		t.Fatalf("SwitchCycles = %v", core.SwitchCycles)
	}
	if core.BusyCycles != 10*simtime.Microsecond {
		t.Fatalf("BusyCycles = %v", core.BusyCycles)
	}
	util := core.Utilization(simtime.Millisecond)
	if util <= 0 || util >= 1 {
		t.Fatalf("utilization = %v", util)
	}
}

func TestIdleCoreWakesImmediately(t *testing.T) {
	eng, core := newEnv(NewCFS())
	act := &finite{cost: 10 * simtime.Microsecond, left: 0}
	a := NewTask(1, "a", act)
	core.AddTask(a)
	var ranAt simtime.Cycles
	eng.At(500*simtime.Microsecond, func() {
		act.left = 1
		core.Wake(a)
	})
	eng.At(600*simtime.Microsecond, func() { ranAt = a.Stats.Runtime })
	eng.RunUntil(simtime.Millisecond)
	if ranAt != 10*simtime.Microsecond {
		t.Fatalf("task did not run promptly after wake on idle core: %v", ranAt)
	}
}

func TestCFSSleeperPlacement(t *testing.T) {
	// A task that slept a long time must not monopolize the CPU on wake:
	// its vruntime is clamped near min_vruntime.
	eng, core := newEnv(NewCFS())
	hog := NewTask(1, "hog", &cpuBound{cost: 10 * simtime.Microsecond})
	sleeperAct := &cpuBound{cost: 10 * simtime.Microsecond}
	sleeper := NewTask(2, "sleeper", sleeperAct)
	core.AddTask(hog)
	core.AddTask(sleeper)
	core.Wake(hog)
	// Let the hog accumulate 500 ms of vruntime, then wake the sleeper.
	eng.At(500*simtime.Millisecond, func() { core.Wake(sleeper) })
	eng.RunUntil(simtime.Second)
	base := hog.Stats.Runtime
	eng.RunUntil(simtime.Second + 500*simtime.Millisecond)
	// After the wake the hog must continue to receive close to half the
	// CPU; without placement clamping it would starve for ~500ms.
	delta := hog.Stats.Runtime - base
	if float64(delta) < 0.40*float64(500*simtime.Millisecond) {
		t.Fatalf("hog starved after sleeper woke: delta=%v", delta)
	}
}

func TestDoublePinPanics(t *testing.T) {
	_, core := newEnv(NewCFS())
	eng2 := eventsim.New()
	core2 := NewCore(1, eng2, NewCFS(), DefaultCoreParams())
	a := NewTask(1, "a", &cpuBound{cost: 1})
	core.AddTask(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double pin did not panic")
		}
	}()
	core2.AddTask(a)
}

func TestCFSManyTasksNoStarvation(t *testing.T) {
	eng, core := newEnv(NewCFS())
	var tasks []*Task
	for i := 0; i < 12; i++ {
		tk := NewTask(i, "t", &cpuBound{cost: 5 * simtime.Microsecond})
		core.AddTask(tk)
		tasks = append(tasks, tk)
		core.Wake(tk)
	}
	eng.RunUntil(simtime.Second)
	for i, tk := range tasks {
		share := float64(tk.Stats.Runtime) / float64(simtime.Second)
		if share < 0.05 {
			t.Fatalf("task %d share = %.3f, starved", i, share)
		}
	}
}

func TestRRDequeueMiddle(t *testing.T) {
	// Removing a task from the middle of the RR queue must keep indices
	// consistent.
	rr := NewRR("rr", simtime.Millisecond)
	a := NewTask(1, "a", nil)
	b := NewTask(2, "b", nil)
	c := NewTask(3, "c", nil)
	rr.Enqueue(0, a, true, nil)
	rr.Enqueue(0, b, true, nil)
	rr.Enqueue(0, c, true, nil)
	rr.Dequeue(b)
	if rr.Runnable() != 2 {
		t.Fatalf("Runnable = %d", rr.Runnable())
	}
	if got := rr.PickNext(0); got != a {
		t.Fatalf("PickNext = %v", got.Name)
	}
	if got := rr.PickNext(0); got != c {
		t.Fatalf("PickNext = %v", got.Name)
	}
	if rr.PickNext(0) != nil {
		t.Fatal("queue should be empty")
	}
}

func TestCFSSliceStretchesUnderLoad(t *testing.T) {
	cfs := NewCFS()
	var tasks []*Task
	for i := 0; i < 20; i++ {
		tk := NewTask(i, "t", nil)
		tasks = append(tasks, tk)
		cfs.Enqueue(0, tk, true, nil)
	}
	curr := cfs.PickNext(0)
	// With 20 runnable tasks, period = 20 * min_granularity and the
	// per-task slice = period/20 = min_granularity.
	if got := cfs.slice(curr); got != cfs.params.MinGranularity {
		t.Fatalf("slice = %v, want min granularity %v", got, cfs.params.MinGranularity)
	}
	_ = tasks
}

func TestSetWeightFloor(t *testing.T) {
	cfs := NewCFS()
	tk := NewTask(1, "t", nil)
	cfs.SetWeight(tk, 0)
	if tk.Weight() < 2 {
		t.Fatalf("weight %d below kernel floor", tk.Weight())
	}
}

func BenchmarkCFSScheduleCycle(b *testing.B) {
	eng := eventsim.New()
	core := NewCore(0, eng, NewCFS(), DefaultCoreParams())
	for i := 0; i < 3; i++ {
		tk := NewTask(i, "t", &cpuBound{cost: 10 * simtime.Microsecond})
		core.AddTask(tk)
		core.Wake(tk)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
}
