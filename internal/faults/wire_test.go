package faults

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// discardConn is a net.Conn that swallows writes — enough to drive the wire
// injector's schedule without a network.
type discardConn struct {
	net.Conn
	wrote  bytes.Buffer
	closed bool
}

func (c *discardConn) Write(b []byte) (int, error) { return c.wrote.Write(b) }
func (c *discardConn) Read(b []byte) (int, error)  { select {} }
func (c *discardConn) Close() error                { c.closed = true; return nil }

// TestWireDropDeterministic replays the same seed twice and expects kills at
// identical write indices.
func TestWireDropDeterministic(t *testing.T) {
	run := func() []uint64 {
		w := NewWire(99, ConnDropOn(EveryNth(10)), CorruptOn(Prob(0.2)))
		var kills []uint64
		for i := 0; i < 100; i++ {
			raw := &discardConn{}
			conn := w.Conn(raw)
			if _, err := conn.Write([]byte("frame")); err != nil {
				kills = append(kills, w.Seen()-1)
				if !raw.closed {
					t.Fatalf("injected drop left the conn open")
				}
			}
		}
		return kills
	}
	a, b := run(), run()
	if len(a) != 10 || len(a) != len(b) {
		t.Fatalf("kill counts differ: %d vs %d (want 10)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kill %d at write %d vs %d — schedule not replayable", i, a[i], b[i])
		}
	}
}

func TestWireCorruptFlipsOneBit(t *testing.T) {
	w := NewWire(3, CorruptOn(OnceAt(0)))
	raw := &discardConn{}
	conn := w.Conn(raw)
	orig := []byte{0, 0, 0, 0, 0, 0, 0, 0}
	if _, err := conn.Write(orig); err != nil {
		t.Fatal(err)
	}
	got := raw.wrote.Bytes()
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption touched %d bytes, want exactly 1", diff)
	}
	for _, b := range orig {
		if b != 0 {
			t.Fatalf("caller's buffer was scribbled on")
		}
	}
	if w.Stats().Corruptions != 1 {
		t.Fatalf("corruptions = %d", w.Stats().Corruptions)
	}
}

func TestWirePartitionWindow(t *testing.T) {
	w := NewWire(1, PartitionFor(OnceAt(0), 50*time.Millisecond))
	conn := w.Conn(&discardConn{})
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatalf("partition trigger did not kill the write")
	}
	if !w.Partitioned() {
		t.Fatalf("partition window not open")
	}
	dial := w.Dial(func(string) (net.Conn, error) { return &discardConn{}, nil })
	if _, err := dial("anywhere"); err == nil {
		t.Fatalf("dial succeeded during partition")
	}
	if w.Stats().DialRefused != 1 {
		t.Fatalf("dial refusals = %d", w.Stats().DialRefused)
	}
	deadline := time.Now().Add(time.Second)
	for w.Partitioned() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Partitioned() {
		t.Fatalf("partition never healed")
	}
	if _, err := dial("anywhere"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestWireDelay(t *testing.T) {
	w := NewWire(1, WireDelayOn(OnceAt(0), 20*time.Millisecond))
	conn := w.Conn(&discardConn{})
	start := time.Now()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delayed write took only %v", d)
	}
	if w.Stats().Delays != 1 {
		t.Fatalf("delays = %d", w.Stats().Delays)
	}
}
