package faults

import (
	"testing"
	"time"

	"nfvnice/internal/dataplane"
)

func TestEveryNth(t *testing.T) {
	tr := EveryNth(3)
	want := map[uint64]bool{2: true, 5: true, 8: true}
	for idx := uint64(0); idx < 10; idx++ {
		if got := tr.Fires(1, 0, idx); got != want[idx] {
			t.Errorf("EveryNth(3).Fires(idx=%d) = %v, want %v", idx, got, want[idx])
		}
	}
	if EveryNth(0).Fires(1, 0, 5) {
		t.Error("EveryNth(0) fired")
	}
}

func TestOnceAtAndAfter(t *testing.T) {
	if !OnceAt(4).Fires(0, 0, 4) || OnceAt(4).Fires(0, 0, 5) || OnceAt(4).Fires(0, 0, 3) {
		t.Error("OnceAt(4) wrong schedule")
	}
	for idx := uint64(0); idx < 10; idx++ {
		if got := After(6).Fires(0, 0, idx); got != (idx >= 6) {
			t.Errorf("After(6).Fires(%d) = %v", idx, got)
		}
	}
}

func TestProbDeterministicAndCalibrated(t *testing.T) {
	const n = 100000
	tr := Prob(0.1)
	fired := 0
	for idx := uint64(0); idx < n; idx++ {
		a := tr.Fires(99, 3, idx)
		b := tr.Fires(99, 3, idx)
		if a != b {
			t.Fatalf("Prob not deterministic at idx %d", idx)
		}
		if a {
			fired++
		}
	}
	// Loose 3-sigma-ish band around 10%.
	if fired < n/10-1000 || fired > n/10+1000 {
		t.Errorf("Prob(0.1) fired %d/%d times", fired, n)
	}
	// Different seed ⇒ different schedule (with overwhelming probability
	// some index differs in the first few thousand).
	same := true
	for idx := uint64(0); idx < 5000; idx++ {
		if tr.Fires(99, 3, idx) != tr.Fires(100, 3, idx) {
			same = false
			break
		}
	}
	if same {
		t.Error("Prob schedule identical under different seeds")
	}
	if Prob(0).Fires(1, 0, 0) || !Prob(1).Fires(1, 0, 0) {
		t.Error("Prob edge cases wrong")
	}
}

// TestSeededDeterminism is the harness's core promise: the same seed and
// rules produce the identical fault schedule, both via Plan (dry run) and
// via live Wrap execution.
func TestSeededDeterminism(t *testing.T) {
	mk := func() *Injector {
		return New(1234,
			PanicOn(EveryNth(97), "boom"),
			DropOn(Prob(0.05)),
			DelayOn(OnceAt(50), 0),
		)
	}
	planA, planB := mk().Plan(2000), mk().Plan(2000)
	if len(planA) == 0 {
		t.Fatal("empty plan")
	}
	if len(planA) != len(planB) {
		t.Fatalf("plan lengths differ: %d vs %d", len(planA), len(planB))
	}
	for i := range planA {
		if planA[i] != planB[i] {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, planA[i], planB[i])
		}
	}

	// Live run: feed 2000 packets through Wrap twice and record what
	// happened to each; the observable schedules must match each other
	// and the plan.
	run := func() []string {
		in := mk()
		var log []string
		fn := Wrap(in, func(*dataplane.Packet) {})
		for idx := 0; idx < 2000; idx++ {
			var pkt dataplane.Packet
			outcome := "pass"
			func() {
				defer func() {
					if r := recover(); r != nil {
						outcome = "panic"
					}
				}()
				fn(&pkt)
				if pkt.Drop {
					outcome = "drop"
				}
			}()
			log = append(log, outcome)
		}
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("live schedule diverges at packet %d: %s vs %s", i, a[i], b[i])
		}
	}
	panics, drops := 0, 0
	for _, o := range a {
		switch o {
		case "panic":
			panics++
		case "drop":
			drops++
		}
	}
	if panics != 2000/97 {
		t.Errorf("panics = %d, want %d", panics, 2000/97)
	}
	if drops == 0 {
		t.Error("Prob(0.05) drop rule never fired in 2000 packets")
	}
}

func TestStallReleases(t *testing.T) {
	in := New(7, StallOn(OnceAt(0), 0))
	fn := Wrap(in, func(*dataplane.Packet) {})
	done := make(chan struct{})
	go func() {
		var pkt dataplane.Packet
		fn(&pkt)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("forever-stall returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	in.Release()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("stall did not release")
	}
}

func TestDropSkipsHandler(t *testing.T) {
	in := New(7, DropOn(OnceAt(1)))
	calls := 0
	fn := Wrap(in, func(*dataplane.Packet) { calls++ })
	var a, b dataplane.Packet
	fn(&a)
	fn(&b)
	if calls != 1 {
		t.Errorf("handler ran %d times, want 1 (dropped packet must skip it)", calls)
	}
	if a.Drop || !b.Drop {
		t.Errorf("Drop flags wrong: a=%v b=%v", a.Drop, b.Drop)
	}
}
