package faults

// The wire layer: seeded fault injection for net.Conn transports, the
// network-side sibling of the handler injector above. A WireInjector wraps
// connections (or a dialer) and evaluates its rules against a per-injector
// *write* counter — writes, not packets, because the transport's framing is
// what crosses the wire. The schedule is a pure function of (seed, rule,
// write index), so a chaos soak that kills and heals links replays
// byte-for-byte from its seed.
//
//	wire := faults.NewWire(42,
//	    faults.ConnDropOn(faults.EveryNth(200)),   // kill the conn every 200 writes
//	    faults.CorruptOn(faults.Prob(0.001)),      // flip a bit, exercise the CRC
//	)
//	client, _ := remote.New(remote.Config{Addr: addr, Dial: wire.Dial(nil)})
//
// PartitionFor is the exception to statelessness: when it fires it opens a
// wall-clock window during which every wrapped connection errors and every
// dial fails — a two-sided network partition that heals by itself.

import (
	"errors"
	"net"
	"sync"
	"time"
)

// WireKind is what a firing wire rule does to the connection.
type WireKind uint8

const (
	// WireDrop closes the connection mid-write — an abrupt link loss; the
	// write errors and the transport's reconnect path takes over.
	WireDrop WireKind = iota
	// WireDelay sleeps before the write — added one-way latency.
	WireDelay
	// WireCorrupt flips one deterministic bit in the written bytes —
	// exercises the receiver's CRC and the sender's retransmit.
	WireCorrupt
	// WirePartition opens a timed window during which this injector's
	// connections all fail and dials are refused.
	WirePartition
)

func (k WireKind) String() string {
	switch k {
	case WireDrop:
		return "conn_drop"
	case WireDelay:
		return "wire_delay"
	case WireCorrupt:
		return "corrupt"
	case WirePartition:
		return "partition"
	default:
		return "?"
	}
}

// WireRule pairs a trigger with a wire action.
type WireRule struct {
	Trigger Trigger
	Kind    WireKind
	// Dur is the delay length (WireDelay) or partition window (WirePartition).
	Dur time.Duration
}

// ConnDropOn closes the connection when t fires (evaluated per write).
func ConnDropOn(t Trigger) WireRule { return WireRule{Trigger: t, Kind: WireDrop} }

// WireDelayOn sleeps d before the write when t fires. (Named apart from the
// handler-level DelayOn: this one stalls bytes, not packets.)
func WireDelayOn(t Trigger, d time.Duration) WireRule {
	return WireRule{Trigger: t, Kind: WireDelay, Dur: d}
}

// CorruptOn flips one seed-determined bit in the written bytes when t fires.
func CorruptOn(t Trigger) WireRule { return WireRule{Trigger: t, Kind: WireCorrupt} }

// PartitionFor starts a d-long partition when t fires: every connection
// wrapped by the injector errors and every dial is refused until it heals.
func PartitionFor(t Trigger, d time.Duration) WireRule {
	return WireRule{Trigger: t, Kind: WirePartition, Dur: d}
}

// ErrInjected is the error surfaced by injected connection kills, partition
// refusals, and dials attempted during a partition.
var ErrInjected = errors.New("faults: injected wire fault")

// WireStats counts the faults a WireInjector has actually applied.
type WireStats struct {
	Drops       uint64 // connections killed mid-write
	Delays      uint64 // delayed writes
	Corruptions uint64 // corrupted writes
	Partitions  uint64 // partition windows opened
	DialRefused uint64 // dials refused while partitioned
}

// WireInjector evaluates wire rules against a per-injector write counter.
// Safe for concurrent use across any number of wrapped connections — they
// share one schedule, like stages sharing a handler Injector.
type WireInjector struct {
	seed  uint64
	rules []WireRule

	mu        sync.Mutex
	idx       uint64
	partUntil time.Time
	stats     WireStats
}

// NewWire builds a wire injector with the given seed and rules (at most 32).
func NewWire(seed uint64, rules ...WireRule) *WireInjector {
	if len(rules) > maxRules {
		panic("faults: too many wire rules")
	}
	return &WireInjector{seed: seed, rules: rules}
}

// Stats snapshots the applied-fault counters.
func (w *WireInjector) Stats() WireStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Seen returns how many writes the injector has evaluated.
func (w *WireInjector) Seen() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.idx
}

// Partitioned reports whether a partition window is currently open.
func (w *WireInjector) Partitioned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Now().Before(w.partUntil)
}

// Conn wraps a connection with the injector's schedule.
func (w *WireInjector) Conn(c net.Conn) net.Conn {
	return &wireConn{Conn: c, in: w}
}

// Dial wraps a dialer: dials fail while partitioned, and successful
// connections come back wrapped. A nil base uses net.Dial("tcp", addr).
func (w *WireInjector) Dial(base func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if base == nil {
		base = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		if w.Partitioned() {
			w.mu.Lock()
			w.stats.DialRefused++
			w.mu.Unlock()
			return nil, ErrInjected
		}
		c, err := base(addr)
		if err != nil {
			return nil, err
		}
		return w.Conn(c), nil
	}
}

// step advances the write counter and returns the firing-rule bitmask.
func (w *WireInjector) step() (uint32, uint64) {
	w.mu.Lock()
	idx := w.idx
	w.idx++
	w.mu.Unlock()
	var mask uint32
	for i, r := range w.rules {
		if r.Trigger != nil && r.Trigger.Fires(w.seed, i, idx) {
			mask |= 1 << uint(i)
		}
	}
	return mask, idx
}

// wireConn applies the injector's schedule to writes; reads pass through
// (and fail naturally once the underlying conn is killed) except during a
// partition, which severs both directions.
type wireConn struct {
	net.Conn
	in *WireInjector
}

func (c *wireConn) Write(b []byte) (int, error) {
	in := c.in
	if in.Partitioned() {
		c.Conn.Close()
		return 0, ErrInjected
	}
	mask, idx := in.step()
	if mask != 0 {
		corrupt := false
		for i, r := range in.rules {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			switch r.Kind {
			case WirePartition:
				in.mu.Lock()
				in.partUntil = time.Now().Add(r.Dur)
				in.stats.Partitions++
				in.mu.Unlock()
				c.Conn.Close()
				return 0, ErrInjected
			case WireDrop:
				in.mu.Lock()
				in.stats.Drops++
				in.mu.Unlock()
				c.Conn.Close()
				return 0, ErrInjected
			case WireDelay:
				in.mu.Lock()
				in.stats.Delays++
				in.mu.Unlock()
				time.Sleep(r.Dur)
			case WireCorrupt:
				corrupt = true
			}
		}
		if corrupt && len(b) > 0 {
			in.mu.Lock()
			in.stats.Corruptions++
			in.mu.Unlock()
			// Flip one seed-determined bit in a copy (never scribble on the
			// caller's buffer).
			mangled := make([]byte, len(b))
			copy(mangled, b)
			pos := mix(in.seed^idx) % uint64(len(mangled))
			mangled[pos] ^= 1 << (mix(idx) % 8)
			return c.Conn.Write(mangled)
		}
	}
	return c.Conn.Write(b)
}

func (c *wireConn) Read(b []byte) (int, error) {
	if c.in.Partitioned() {
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Read(b)
}
