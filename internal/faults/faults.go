// Package faults is a deterministic fault-injection harness for dataplane
// handlers: wrap a stage's Handler with a seeded Injector and it panics,
// stalls, delays, or drops packets on a reproducible schedule. The point is
// making the supervision layer (crash isolation, stall detachment,
// restarts, degradation policies) testable — a chaos soak with a fixed seed
// replays the same fault sequence byte-for-byte, so a failure found in CI
// reproduces at the keyboard.
//
// An Injector composes up to 32 Rules. Each Rule pairs a Trigger (when to
// fire, as a pure function of the packet index and seed) with a Kind (what
// to do). Triggers never consult wall-clock randomness: probability
// triggers hash (seed, rule, index) with a splitmix64-style mixer, so the
// schedule is a function of the seed alone.
//
//	inj := faults.New(42,
//	    faults.PanicOn(faults.EveryNth(1000), "injected crash"),
//	    faults.DelayOn(faults.Prob(0.01), 200*time.Microsecond),
//	)
//	eng.AddStage("nat", faults.Wrap(inj, natHandler))
//
// Wrap counts packets per injector (not per rule), so one injector shared
// by several stages sees the union of their traffic; use one Injector per
// stage for per-stage schedules.
package faults

import (
	"fmt"
	"sync"
	"time"

	"nfvnice/internal/dataplane"
)

// Kind is what a firing rule does to the packet (or the goroutine
// processing it).
type Kind uint8

const (
	// KindPanic panics with the rule's message — exercises crash
	// isolation and supervised restart.
	KindPanic Kind = iota
	// KindStall blocks the handler for the rule's duration (forever when
	// the duration is 0, until Release) — exercises the grant deadline
	// and stall detachment.
	KindStall
	// KindDelay sleeps for the rule's duration — a latency spike, not a
	// fault: the grant completes, just late.
	KindDelay
	// KindDrop marks the packet dropped (Packet.Drop), standing in for a
	// transient per-packet processing error.
	KindDrop
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindDelay:
		return "delay"
	case KindDrop:
		return "drop"
	default:
		return "?"
	}
}

// Trigger decides whether a rule fires on the idx-th packet (0-based) seen
// by the injector. Implementations must be deterministic in (seed, rule
// index, idx); the only allowed state is monotone (e.g. "once after").
type Trigger interface {
	Fires(seed uint64, rule int, idx uint64) bool
}

// everyNth fires on packets n-1, 2n-1, ... (every n-th packet).
type everyNth uint64

func (n everyNth) Fires(_ uint64, _ int, idx uint64) bool {
	return n > 0 && (idx+1)%uint64(n) == 0
}

// EveryNth fires on every n-th packet (the n-th, 2n-th, ...). n <= 0 never
// fires.
func EveryNth(n int) Trigger {
	if n <= 0 {
		return everyNth(0)
	}
	return everyNth(n)
}

// onceAt fires exactly once, on packet index n (0-based).
type onceAt uint64

func (n onceAt) Fires(_ uint64, _ int, idx uint64) bool { return idx == uint64(n) }

// OnceAt fires exactly once, on the idx-th packet (0-based).
func OnceAt(idx int) Trigger { return onceAt(idx) }

// after fires on every packet from index n (0-based) onward.
type after uint64

func (n after) Fires(_ uint64, _ int, idx uint64) bool { return idx >= uint64(n) }

// After fires on every packet from the idx-th (0-based) onward.
func After(idx int) Trigger { return after(idx) }

// prob fires with fixed probability per packet, derived from a stateless
// hash of (seed, rule, idx) — same seed, same schedule.
type prob float64

func (p prob) Fires(seed uint64, rule int, idx uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := mix(seed ^ (uint64(rule)+1)*0x9e3779b97f4a7c15 ^ mix(idx))
	// Top 53 bits → uniform float64 in [0, 1).
	u := float64(h>>11) / (1 << 53)
	return u < float64(p)
}

// Prob fires with probability p per packet, deterministically derived from
// the injector seed (not a live RNG): replaying the same seed replays the
// same fault schedule.
func Prob(p float64) Trigger { return prob(p) }

// mix is the splitmix64 finalizer — a cheap, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rule pairs a trigger with an action.
type Rule struct {
	Trigger Trigger
	Kind    Kind
	// Dur is the stall/delay duration; 0 for KindStall means "until
	// Release".
	Dur time.Duration
	// Msg is the panic message for KindPanic.
	Msg string
}

// PanicOn panics with msg when t fires.
func PanicOn(t Trigger, msg string) Rule { return Rule{Trigger: t, Kind: KindPanic, Msg: msg} }

// StallOn blocks for d when t fires; d = 0 blocks until Release.
func StallOn(t Trigger, d time.Duration) Rule { return Rule{Trigger: t, Kind: KindStall, Dur: d} }

// DelayOn sleeps for d when t fires.
func DelayOn(t Trigger, d time.Duration) Rule { return Rule{Trigger: t, Kind: KindDelay, Dur: d} }

// DropOn marks the packet dropped when t fires.
func DropOn(t Trigger) Rule { return Rule{Trigger: t, Kind: KindDrop} }

// maxRules bounds an injector's rule set so a firing decision fits a
// uint32 bitmask.
const maxRules = 32

// Injector evaluates its rules against a per-injector packet counter and
// applies the firing ones. Safe for concurrent use (the counter is
// mutex-protected; injection is a test/chaos tool, not a hot-path
// component).
type Injector struct {
	seed  uint64
	rules []Rule

	mu  sync.Mutex
	idx uint64

	release chan struct{}
}

// New builds an injector with the given seed and rules (at most 32).
func New(seed uint64, rules ...Rule) *Injector {
	if len(rules) > maxRules {
		panic(fmt.Sprintf("faults: %d rules exceeds the maximum of %d", len(rules), maxRules))
	}
	return &Injector{seed: seed, rules: rules, release: make(chan struct{})}
}

// step advances the packet counter and returns the bitmask of firing rules.
func (in *Injector) step() uint32 {
	in.mu.Lock()
	idx := in.idx
	in.idx++
	in.mu.Unlock()
	var mask uint32
	for i, r := range in.rules {
		if r.Trigger != nil && r.Trigger.Fires(in.seed, i, idx) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Seen returns how many packets the injector has evaluated.
func (in *Injector) Seen() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.idx
}

// Release unblocks every rule currently stalled with Dur = 0 and disarms
// future forever-stalls (they return immediately). Call it in test cleanup
// so a wedged-handler test doesn't leak a blocked goroutine past the run.
func (in *Injector) Release() {
	in.mu.Lock()
	select {
	case <-in.release:
	default:
		close(in.release)
	}
	in.mu.Unlock()
}

// apply executes the firing rules against the packet. Panic is applied
// last so other firing rules (delays) still happen; drop + panic both
// firing is a panic (the packet's fate is the fault ledger either way).
func (in *Injector) apply(mask uint32, pkt *dataplane.Packet) {
	var panicMsg string
	panics := false
	for i, r := range in.rules {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		switch r.Kind {
		case KindPanic:
			panics, panicMsg = true, r.Msg
		case KindStall:
			if r.Dur <= 0 {
				<-in.release
			} else {
				select {
				case <-time.After(r.Dur):
				case <-in.release:
				}
			}
		case KindDelay:
			time.Sleep(r.Dur)
		case KindDrop:
			pkt.Drop = true
		}
	}
	if panics {
		if panicMsg == "" {
			panicMsg = "faults: injected panic"
		}
		panic(panicMsg)
	}
}

// Wrap returns a Handler that runs the injector's schedule before the
// wrapped handler. A firing drop skips fn (the packet is charged to the
// stage's NF drops); a firing panic fires after delays/stalls.
func Wrap(in *Injector, fn dataplane.Handler) dataplane.Handler {
	return func(pkt *dataplane.Packet) {
		if mask := in.step(); mask != 0 {
			in.apply(mask, pkt)
			if pkt.Drop {
				return
			}
		}
		fn(pkt)
	}
}

// Event is one row of a dry-run schedule: packet index plus the rule that
// fired.
type Event struct {
	Idx  uint64
	Rule int
	Kind Kind
}

// Plan evaluates the first n packet indices without side effects and
// returns every (index, rule) firing — the deterministic schedule a live
// run with the same seed and rules will follow. It does not advance the
// injector's live counter.
func (in *Injector) Plan(n int) []Event {
	var out []Event
	for idx := uint64(0); idx < uint64(n); idx++ {
		for i, r := range in.rules {
			if r.Trigger != nil && r.Trigger.Fires(in.seed, i, idx) {
				out = append(out, Event{Idx: idx, Rule: i, Kind: r.Kind})
			}
		}
	}
	return out
}
