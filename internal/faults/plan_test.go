package faults

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestPlanRoundTrip: export -> JSON -> PlanFromJSON -> rebuild must yield an
// injector with the byte-identical schedule, and re-marshaling the parsed
// plan must reproduce the original bytes.
func TestPlanRoundTrip(t *testing.T) {
	in := New(42,
		PanicOn(EveryNth(1000), "injected crash"),
		StallOn(OnceAt(2500), 5*time.Millisecond),
		DelayOn(Prob(0.01), 200*time.Microsecond),
		DropOn(After(9000)),
	)
	const horizon = 10000
	plan, err := in.ExportPlan(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Layer != "handler" || plan.Seed != 42 || plan.Horizon != horizon {
		t.Fatalf("plan header wrong: %+v", plan)
	}
	if plan.EventsTotal == 0 {
		t.Fatal("no events over a 10k horizon with an after(9000) rule")
	}
	if len(plan.Events) > 64 {
		t.Fatalf("event preview not capped: %d", len(plan.Events))
	}

	blob, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := PlanFromJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("re-marshaled plan differs:\n%s\n%s", blob, blob2)
	}

	rebuilt, err := parsed.Injector()
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := rebuilt.ExportPlan(horizon)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(plan)
	b2, _ := json.Marshal(plan2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("rebuilt injector schedule differs:\n%s\n%s", b1, b2)
	}

	// The rebuilt injector must agree with the original rule-by-rule on the
	// full uncapped schedule, not just the preview.
	orig := in.Plan(horizon)
	repl := rebuilt.Plan(horizon)
	if len(orig) != len(repl) {
		t.Fatalf("schedule length %d vs %d", len(orig), len(repl))
	}
	for i := range orig {
		if orig[i] != repl[i] {
			t.Fatalf("schedule diverges at %d: %+v vs %+v", i, orig[i], repl[i])
		}
	}
}

// TestWirePlanRoundTrip covers the wire layer.
func TestWirePlanRoundTrip(t *testing.T) {
	w := NewWire(7,
		ConnDropOn(EveryNth(150)),
		WireDelayOn(Prob(0.005), time.Millisecond),
		CorruptOn(OnceAt(300)),
		PartitionFor(OnceAt(700), 50*time.Millisecond),
	)
	plan, err := w.ExportPlan(2000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Layer != "wire" {
		t.Fatalf("layer %q", plan.Layer)
	}
	blob, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := PlanFromJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := parsed.WireInjector()
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := rebuilt.ExportPlan(2000)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(plan)
	b2, _ := json.Marshal(plan2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("rebuilt wire schedule differs:\n%s\n%s", b1, b2)
	}
	// Layer mismatch must be rejected both ways.
	if _, err := parsed.Injector(); err == nil {
		t.Fatal("wire plan accepted as handler plan")
	}
}

// TestPlanRejectsGarbage: unknown layers, kinds, and trigger syntax must be
// rejected at parse time, and custom triggers at export time.
func TestPlanRejectsGarbage(t *testing.T) {
	bad := []string{
		`{"layer":"quantum","seed":1,"rules":[],"events":[]}`,
		`{"layer":"handler","seed":1,"rules":[{"kind":"explode","trigger":"every_nth(5)"}],"events":[]}`,
		`{"layer":"handler","seed":1,"rules":[{"kind":"panic","trigger":"sometimes"}],"events":[]}`,
		`{"layer":"wire","seed":1,"rules":[{"kind":"panic","trigger":"every_nth(5)"}],"events":[]}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := PlanFromJSON([]byte(s)); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}

	type custom struct{ Trigger }
	in := New(1, Rule{Trigger: custom{EveryNth(2)}, Kind: KindDrop})
	if _, err := in.ExportPlan(10); err == nil {
		t.Fatal("custom trigger exported")
	}
}

// TestParseTriggerValues pins the constructor syntax, including float
// round-tripping for prob.
func TestParseTriggerValues(t *testing.T) {
	cases := []struct{ in, out string }{
		{"every_nth(200)", "every_nth(200)"},
		{"once_at(0)", "once_at(0)"},
		{"after(100)", "after(100)"},
		{"prob(0.01)", "prob(0.01)"},
		{"prob(0.3333333333333333)", "prob(0.3333333333333333)"},
	}
	for _, c := range cases {
		trig, err := ParseTrigger(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		got, err := formatTrigger(trig)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if got != c.out {
			t.Fatalf("%q round-tripped to %q", c.in, got)
		}
	}
}
