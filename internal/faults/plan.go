package faults

// Plan export: a serializable manifest of the exact fault schedule an
// Injector or WireInjector will execute. Hypothesis runs (cmd/nfvhypo)
// record the plan next to their results so a verdict can be replayed from
// the manifest alone: PlanFromJSON -> Plan.Injector()/Plan.WireInjector()
// rebuilds a live injector with the identical seed, rules, and therefore
// the identical firing schedule.
//
// The schedule itself is a pure function of (seed, rules), so the manifest
// stores those plus a bounded preview of the firing events over a fixed
// horizon — enough to eyeball what a run did without replaying it.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// planEventCap bounds the embedded event preview so a high-probability rule
// over a long horizon can't bloat the manifest; EventsTotal always carries
// the full count.
const planEventCap = 64

// RuleSpec is the serialized form of one Rule or WireRule.
type RuleSpec struct {
	// Kind is the action name: panic/stall/delay/drop for handler rules,
	// conn_drop/wire_delay/corrupt/partition for wire rules.
	Kind string `json:"kind"`
	// Trigger is the trigger in constructor syntax: "every_nth(200)",
	// "once_at(2000)", "after(100)", "prob(0.01)".
	Trigger string `json:"trigger"`
	// DurNanos is the stall/delay/partition duration in nanoseconds.
	DurNanos int64 `json:"dur_nanos,omitempty"`
	// Msg is the panic message (handler rules only).
	Msg string `json:"msg,omitempty"`
}

// PlanEvent is one firing in the dry-run preview.
type PlanEvent struct {
	Idx  uint64 `json:"idx"`
	Rule int    `json:"rule"`
	Kind string `json:"kind"`
}

// Plan is the replayable manifest of a seeded injector.
type Plan struct {
	// Layer is "handler" (packet-level Injector) or "wire" (WireInjector).
	Layer string `json:"layer"`
	Seed  uint64 `json:"seed"`
	// Horizon is the number of indices the preview was evaluated over.
	Horizon uint64     `json:"horizon"`
	Rules   []RuleSpec `json:"rules"`
	// Events previews the first firings (capped at 64); EventsTotal is the
	// uncapped count over the horizon.
	Events      []PlanEvent `json:"events"`
	EventsTotal uint64      `json:"events_total"`
}

// formatTrigger renders a built-in trigger in constructor syntax. Custom
// Trigger implementations are rejected: they can't be rebuilt from a
// manifest.
func formatTrigger(t Trigger) (string, error) {
	switch v := t.(type) {
	case everyNth:
		return fmt.Sprintf("every_nth(%d)", uint64(v)), nil
	case onceAt:
		return fmt.Sprintf("once_at(%d)", uint64(v)), nil
	case after:
		return fmt.Sprintf("after(%d)", uint64(v)), nil
	case prob:
		return "prob(" + strconv.FormatFloat(float64(v), 'g', -1, 64) + ")", nil
	case nil:
		return "", fmt.Errorf("faults: nil trigger is not serializable")
	default:
		return "", fmt.Errorf("faults: trigger %T is not serializable", t)
	}
}

// ParseTrigger parses constructor syntax ("every_nth(200)", "once_at(5)",
// "after(100)", "prob(0.01)") back into a live Trigger.
func ParseTrigger(s string) (Trigger, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("faults: malformed trigger %q", s)
	}
	name, arg := s[:open], s[open+1:len(s)-1]
	switch name {
	case "every_nth":
		n, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: trigger %q: %v", s, err)
		}
		return everyNth(n), nil
	case "once_at":
		n, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: trigger %q: %v", s, err)
		}
		return onceAt(n), nil
	case "after":
		n, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: trigger %q: %v", s, err)
		}
		return after(n), nil
	case "prob":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: trigger %q: %v", s, err)
		}
		return prob(p), nil
	default:
		return nil, fmt.Errorf("faults: unknown trigger %q", s)
	}
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return KindPanic, nil
	case "stall":
		return KindStall, nil
	case "delay":
		return KindDelay, nil
	case "drop":
		return KindDrop, nil
	default:
		return 0, fmt.Errorf("faults: unknown handler fault kind %q", s)
	}
}

func parseWireKind(s string) (WireKind, error) {
	switch s {
	case "conn_drop":
		return WireDrop, nil
	case "wire_delay":
		return WireDelay, nil
	case "corrupt":
		return WireCorrupt, nil
	case "partition":
		return WirePartition, nil
	default:
		return 0, fmt.Errorf("faults: unknown wire fault kind %q", s)
	}
}

// ExportPlan builds the replayable manifest for the injector, previewing
// firings over the first horizon packet indices. It does not touch the live
// counter. Fails if any rule uses a custom (non-serializable) trigger.
func (in *Injector) ExportPlan(horizon uint64) (Plan, error) {
	p := Plan{Layer: "handler", Seed: in.seed, Horizon: horizon}
	for _, r := range in.rules {
		ts, err := formatTrigger(r.Trigger)
		if err != nil {
			return Plan{}, err
		}
		p.Rules = append(p.Rules, RuleSpec{
			Kind:     r.Kind.String(),
			Trigger:  ts,
			DurNanos: int64(r.Dur),
			Msg:      r.Msg,
		})
	}
	for idx := uint64(0); idx < horizon; idx++ {
		for i, r := range in.rules {
			if r.Trigger.Fires(in.seed, i, idx) {
				if p.EventsTotal < planEventCap {
					p.Events = append(p.Events, PlanEvent{Idx: idx, Rule: i, Kind: r.Kind.String()})
				}
				p.EventsTotal++
			}
		}
	}
	return p, nil
}

// ExportPlan builds the replayable manifest for the wire injector,
// previewing firings over the first horizon write indices.
func (w *WireInjector) ExportPlan(horizon uint64) (Plan, error) {
	p := Plan{Layer: "wire", Seed: w.seed, Horizon: horizon}
	for _, r := range w.rules {
		ts, err := formatTrigger(r.Trigger)
		if err != nil {
			return Plan{}, err
		}
		p.Rules = append(p.Rules, RuleSpec{
			Kind:     r.Kind.String(),
			Trigger:  ts,
			DurNanos: int64(r.Dur),
		})
	}
	for idx := uint64(0); idx < horizon; idx++ {
		for i, r := range w.rules {
			if r.Trigger.Fires(w.seed, i, idx) {
				if p.EventsTotal < planEventCap {
					p.Events = append(p.Events, PlanEvent{Idx: idx, Rule: i, Kind: r.Kind.String()})
				}
				p.EventsTotal++
			}
		}
	}
	return p, nil
}

// MarshalJSON renders the plan with empty slices as [] (never null), so
// manifests are byte-stable regardless of how the Plan was built.
func (p Plan) MarshalJSON() ([]byte, error) {
	type alias Plan // drop the method to avoid recursion
	a := alias(p)
	if a.Rules == nil {
		a.Rules = []RuleSpec{}
	}
	if a.Events == nil {
		a.Events = []PlanEvent{}
	}
	return json.Marshal(a)
}

// PlanFromJSON parses and validates a manifest: the layer must be known,
// every trigger must parse, and every kind must belong to the layer.
func PlanFromJSON(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("faults: plan: %w", err)
	}
	if p.Layer != "handler" && p.Layer != "wire" {
		return Plan{}, fmt.Errorf("faults: plan: unknown layer %q", p.Layer)
	}
	for _, rs := range p.Rules {
		if _, err := ParseTrigger(rs.Trigger); err != nil {
			return Plan{}, err
		}
		var err error
		if p.Layer == "handler" {
			_, err = parseKind(rs.Kind)
		} else {
			_, err = parseWireKind(rs.Kind)
		}
		if err != nil {
			return Plan{}, err
		}
	}
	return p, nil
}

// Injector rebuilds a live handler injector from the manifest. The rebuilt
// injector follows the identical schedule: same seed, same rules, counter
// starting at zero.
func (p Plan) Injector() (*Injector, error) {
	if p.Layer != "handler" {
		return nil, fmt.Errorf("faults: plan layer %q is not a handler plan", p.Layer)
	}
	rules := make([]Rule, 0, len(p.Rules))
	for _, rs := range p.Rules {
		t, err := ParseTrigger(rs.Trigger)
		if err != nil {
			return nil, err
		}
		k, err := parseKind(rs.Kind)
		if err != nil {
			return nil, err
		}
		rules = append(rules, Rule{Trigger: t, Kind: k, Dur: time.Duration(rs.DurNanos), Msg: rs.Msg})
	}
	return New(p.Seed, rules...), nil
}

// WireInjector rebuilds a live wire injector from the manifest.
func (p Plan) WireInjector() (*WireInjector, error) {
	if p.Layer != "wire" {
		return nil, fmt.Errorf("faults: plan layer %q is not a wire plan", p.Layer)
	}
	rules := make([]WireRule, 0, len(p.Rules))
	for _, rs := range p.Rules {
		t, err := ParseTrigger(rs.Trigger)
		if err != nil {
			return nil, err
		}
		k, err := parseWireKind(rs.Kind)
		if err != nil {
			return nil, err
		}
		rules = append(rules, WireRule{Trigger: t, Kind: k, Dur: time.Duration(rs.DurNanos)})
	}
	return NewWire(p.Seed, rules...), nil
}
