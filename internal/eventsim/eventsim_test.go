package eventsim

import (
	"math/rand"
	"sort"
	"testing"

	"nfvnice/internal/simtime"
)

func TestOrdering(t *testing.T) {
	g := New()
	var got []int
	g.At(30, func() { got = append(got, 3) })
	g.At(10, func() { got = append(got, 1) })
	g.At(20, func() { got = append(got, 2) })
	g.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if g.Now() != 30 {
		t.Fatalf("clock = %v, want 30", g.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	g := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		g.At(50, func() { got = append(got, i) })
	}
	g.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatal("same-timestamp events did not fire in scheduling order")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	g := New()
	g.At(100, func() {})
	g.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	g.At(50, func() {})
}

func TestCancel(t *testing.T) {
	g := New()
	fired := false
	e := g.At(10, func() { fired = true })
	e.Cancel()
	g.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if g.Executed != 0 {
		t.Fatalf("Executed = %d, want 0", g.Executed)
	}
}

func TestAfter(t *testing.T) {
	g := New()
	var at simtime.Cycles
	g.At(100, func() {
		g.After(50, func() { at = g.Now() })
	})
	g.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestEvery(t *testing.T) {
	g := New()
	var ticks []simtime.Cycles
	series := g.Every(10, 25, func() { ticks = append(ticks, g.Now()) })
	g.At(100, func() { series.Cancel() })
	g.Run()
	want := []simtime.Cycles{10, 35, 60, 85}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEveryCancelInsideCallback(t *testing.T) {
	g := New()
	n := 0
	var series *Event
	series = g.Every(0, 10, func() {
		n++
		if n == 3 {
			series.Cancel()
		}
	})
	g.Run()
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestRunUntil(t *testing.T) {
	g := New()
	var fired []simtime.Cycles
	for _, tm := range []simtime.Cycles{5, 10, 15, 20} {
		tm := tm
		g.At(tm, func() { fired = append(fired, tm) })
	}
	g.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5,10", fired)
	}
	if g.Now() != 12 {
		t.Fatalf("clock = %v, want 12 (advanced to boundary)", g.Now())
	}
	g.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4", fired)
	}
	if g.Now() != 100 {
		t.Fatalf("clock = %v, want 100", g.Now())
	}
}

func TestRunUntilInclusive(t *testing.T) {
	g := New()
	fired := false
	g.At(10, func() { fired = true })
	g.RunUntil(10)
	if !fired {
		t.Fatal("event at boundary time did not fire")
	}
}

func TestStop(t *testing.T) {
	g := New()
	n := 0
	g.At(1, func() { n++; g.Stop() })
	g.At(2, func() { n++ })
	g.Run()
	if n != 1 {
		t.Fatalf("events after Stop fired: n=%d", n)
	}
}

func TestDeterminism(t *testing.T) {
	// Two runs with identical random schedules must produce identical
	// firing orders.
	run := func(seed int64) []int {
		g := New()
		rng := rand.New(rand.NewSource(seed))
		var order []int
		for i := 0; i < 1000; i++ {
			i := i
			g.At(simtime.Cycles(rng.Intn(100)), func() { order = append(order, i) })
		}
		g.Run()
		return order
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled at the current time from within a callback fire in
	// the same Run, after already-queued same-time events.
	g := New()
	var got []string
	g.At(10, func() {
		got = append(got, "a")
		g.At(10, func() { got = append(got, "c") })
	})
	g.At(10, func() { got = append(got, "b") })
	g.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v", got)
	}
}

func BenchmarkEngine(b *testing.B) {
	g := New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			g.After(10, tick)
		}
	}
	g.At(0, tick)
	b.ResetTimer()
	g.Run()
}

func BenchmarkEngineFanOut(b *testing.B) {
	g := New()
	for i := 0; i < b.N; i++ {
		g.At(simtime.Cycles(i%1000), func() {})
	}
	b.ResetTimer()
	g.Run()
}
