// Package eventsim provides the deterministic discrete-event engine that
// drives the NFVnice simulator. Components schedule callbacks at absolute
// simulated times; the engine executes them in timestamp order, breaking
// ties by scheduling sequence so that runs are bit-reproducible.
package eventsim

import (
	"container/heap"
	"fmt"

	"nfvnice/internal/simtime"
)

// Event is a scheduled callback. The zero Event is invalid; obtain events
// only through Engine.At or Engine.After.
type Event struct {
	when     simtime.Cycles
	seq      uint64
	index    int // position in the heap, -1 when not queued
	fn       func()
	canceled bool
}

// When reports the time the event is scheduled to fire.
func (e *Event) When() simtime.Cycles { return e.when }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the whole simulation runs on one goroutine by design.
type Engine struct {
	now     simtime.Cycles
	seq     uint64
	queue   eventHeap
	stopped bool

	// Executed counts events that have fired, for diagnostics and tests.
	Executed uint64
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (g *Engine) Now() simtime.Cycles { return g.now }

// At schedules fn at absolute time t. Scheduling in the past (t < Now)
// panics: it always indicates a simulator bug, and silently clamping would
// mask causality violations.
func (g *Engine) At(t simtime.Cycles, fn func()) *Event {
	if t < g.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", t, g.now))
	}
	g.seq++
	e := &Event{when: t, seq: g.seq, fn: fn}
	heap.Push(&g.queue, e)
	return e
}

// After schedules fn d cycles from now.
func (g *Engine) After(d simtime.Cycles, fn func()) *Event {
	return g.At(g.now+d, fn)
}

// Every schedules fn at t, t+period, t+2*period, ... until the returned
// Event is canceled. fn observes the tick time via Engine.Now. The returned
// event handle remains valid across ticks: canceling it stops the series.
func (g *Engine) Every(start, period simtime.Cycles, fn func()) *Event {
	if period == 0 {
		panic("eventsim: Every with zero period")
	}
	// series outlives individual heap entries; reuse one handle so the
	// caller's Cancel works at any point in the series.
	series := &Event{}
	var tick func()
	tick = func() {
		if series.canceled {
			return
		}
		fn()
		if series.canceled {
			return
		}
		next := g.At(g.now+period, tick)
		series.when = next.when
	}
	first := g.At(start, tick)
	series.when = first.when
	return series
}

// Step fires the earliest pending event. It reports false when the queue is
// empty or the engine was stopped.
func (g *Engine) Step() bool {
	for len(g.queue) > 0 && !g.stopped {
		e := heap.Pop(&g.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.when < g.now {
			panic("eventsim: time went backwards")
		}
		g.now = e.when
		g.Executed++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock reaches t (inclusive of events at
// exactly t) or the queue drains. The clock is advanced to t even if the
// queue drains earlier, so rate computations over the window are exact.
func (g *Engine) RunUntil(t simtime.Cycles) {
	for len(g.queue) > 0 && !g.stopped {
		next := g.queue[0]
		if next.canceled {
			heap.Pop(&g.queue)
			continue
		}
		if next.when > t {
			break
		}
		g.Step()
	}
	if !g.stopped && g.now < t {
		g.now = t
	}
}

// Run executes events until the queue drains or Stop is called.
func (g *Engine) Run() {
	for g.Step() {
	}
}

// Stop halts the engine; subsequent Step/RunUntil calls do nothing.
func (g *Engine) Stop() { g.stopped = true }

// Pending reports the number of queued (possibly canceled) events.
func (g *Engine) Pending() int { return len(g.queue) }
