package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"unsafe"
)

// refSPSC is the unpadded reference implementation: the identical SPSC
// algorithm with bare head/tail atomics, no cache-line padding and no cached
// opposite indices. It exists only as the model for the equivalence test —
// any behavioural divergence in the padded/index-cached SPSC is a bug in the
// fast-path machinery, not the algorithm.
type refSPSC[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64
	tail atomic.Uint64
}

func newRefSPSC[T any](capacity int) *refSPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &refSPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

func (r *refSPSC[T]) Cap() int { return len(r.buf) - 1 }
func (r *refSPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

func (r *refSPSC[T]) Enqueue(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)-1) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

func (r *refSPSC[T]) EnqueueBatch(vs []T) int {
	t := r.tail.Load()
	space := uint64(len(r.buf)-1) - (t - r.head.Load())
	n := uint64(len(vs))
	if n > space {
		n = space
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = vs[i]
	}
	if n > 0 {
		r.tail.Store(t + n)
	}
	return int(n)
}

func (r *refSPSC[T]) Dequeue() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return v, false
	}
	v = r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

func (r *refSPSC[T]) DequeueBatch(dst []T) int {
	h := r.head.Load()
	avail := r.tail.Load() - h
	n := avail
	if n > uint64(len(dst)) {
		n = uint64(len(dst))
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		dst[i] = r.buf[(h+i)&r.mask]
		r.buf[(h+i)&r.mask] = zero
	}
	if n > 0 {
		r.head.Store(h + n)
	}
	return int(n)
}

// TestPaddedTypesLayout pins the layout contract the pad helpers promise:
// a PaddedUint64/PaddedInt64 spans at least a full cache line (so adjacent
// array elements cannot share one) and Pad is exactly one line of spacing.
func TestPaddedTypesLayout(t *testing.T) {
	if got := unsafe.Sizeof(Pad{}); got != CacheLine {
		t.Fatalf("Pad is %d bytes, want %d", got, CacheLine)
	}
	if got := unsafe.Sizeof(PaddedUint64{}); got < CacheLine {
		t.Fatalf("PaddedUint64 is %d bytes, want >= %d", got, CacheLine)
	}
	if got := unsafe.Sizeof(PaddedInt64{}); got < CacheLine {
		t.Fatalf("PaddedInt64 is %d bytes, want >= %d", got, CacheLine)
	}
	// The embedded atomic must stay usable through promotion.
	var u PaddedUint64
	u.Add(3)
	if u.Load() != 3 {
		t.Fatal("PaddedUint64 promotion broken")
	}
	var i PaddedInt64
	i.Add(-2)
	if i.Load() != -2 {
		t.Fatal("PaddedInt64 promotion broken")
	}
}

// TestSPSCMatchesUnpaddedReference drives the padded, index-cached SPSC and
// the unpadded reference through identical random single/batch operation
// mixes (testing/quick seeds) and requires identical return values, element
// sequences and occupancy at every step. This is the regression net for the
// layout work: padding and index caching must be invisible to behaviour.
func TestSPSCMatchesUnpaddedReference(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%31) + 2
		padded := NewSPSC[int](capacity)
		ref := newRefSPSC[int](capacity)
		if padded.Cap() != ref.Cap() {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		next := 0
		a := make([]int, 48)
		b := make([]int, 48)
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0:
				if padded.Enqueue(next) != ref.Enqueue(next) {
					return false
				}
				next++
			case 1:
				k := rng.Intn(len(a)) + 1
				for i := 0; i < k; i++ {
					a[i] = next + i
				}
				n1 := padded.EnqueueBatch(a[:k])
				n2 := ref.EnqueueBatch(a[:k])
				if n1 != n2 {
					return false
				}
				next += n1
			case 2:
				v1, ok1 := padded.Dequeue()
				v2, ok2 := ref.Dequeue()
				if ok1 != ok2 || v1 != v2 {
					return false
				}
			default:
				k := rng.Intn(len(a)) + 1
				n1 := padded.DequeueBatch(a[:k])
				n2 := ref.DequeueBatch(b[:k])
				if n1 != n2 {
					return false
				}
				for i := 0; i < n1; i++ {
					if a[i] != b[i] {
						return false
					}
				}
			}
			if padded.Len() != ref.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSPSCConcurrentMatchesReference runs the padded SPSC and the reference
// under a real producer/consumer pair (the regime the cached indices
// actually optimize) and checks exact conservation and FIFO against the
// injected sequence. Run under -race this also proves the pads didn't
// perturb the happens-before edges.
func TestSPSCConcurrentMatchesReference(t *testing.T) {
	const total = 200_000
	run := func(enq func(int) bool, deq func() (int, bool)) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total; {
				if enq(i) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}()
		want := 0
		for want < total {
			if v, ok := deq(); ok {
				if v != want {
					t.Errorf("out of order: got %d want %d", v, want)
					break
				}
				want++
			} else {
				runtime.Gosched()
			}
		}
		wg.Wait()
	}
	p := NewSPSC[int](128)
	run(p.Enqueue, p.Dequeue)
	r := newRefSPSC[int](128)
	run(r.Enqueue, r.Dequeue)
}

// BenchmarkFalseSharing is the before/after contention microbenchmark for
// the padding work: GOMAXPROCS goroutines each hammer their own counter.
// In the packed layout the counters share cache lines and every Add
// invalidates the neighbours' lines; in the padded layout each counter owns
// its line. The gap between the two sub-benchmarks is the false-sharing tax
// the dataplane's stage/mover counter layout avoids (on a single-CPU host
// the two converge — there is no second core to invalidate against).
func BenchmarkFalseSharing(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	b.Run("unpadded", func(b *testing.B) {
		counters := make([]atomic.Uint64, workers)
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			c := &counters[int(next.Add(1)-1)%workers]
			for pb.Next() {
				c.Add(1)
			}
		})
	})
	b.Run("padded", func(b *testing.B) {
		counters := make([]PaddedUint64, workers)
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			c := &counters[int(next.Add(1)-1)%workers]
			for pb.Next() {
				c.Add(1)
			}
		})
	})
}
