package ring

import (
	"sync/atomic"
)

// MPMC is a bounded lock-free multi-producer multi-consumer queue after
// Vyukov's bounded MPMC design, the Go analogue of DPDK's rte_ring in MP/MC
// mode. Each slot carries a sequence number that encodes whether it is ready
// for the producer or the consumer of a given lap, so producers contend only
// on the tail CAS and consumers only on the head CAS.
//
// The dataplane uses it in two roles: as a stage receive ring (injectors and
// the mover produce concurrently, one worker consumes — the "CAS-reserve
// MPSC" injection path that replaced the old mutex), and as the shared packet
// freelist (any goroutine may recycle or allocate).
//
// Batch operations reserve a run of slots with a single CAS: the caller scans
// the published (or free) prefix first and only then CASes the index forward,
// so a successful reservation never has to spin waiting on slots mid-write
// by another thread.
type MPMC[T any] struct {
	slots []slot[T]
	mask  uint64

	_    Pad // tail and head on separate cache lines
	tail atomic.Uint64
	_    Pad
	head atomic.Uint64
	_    Pad
}

type slot[T any] struct {
	// seq == pos:       slot free, awaiting the producer of lap pos/size
	// seq == pos+1:     slot published, awaiting the consumer
	// seq == pos+size:  slot consumed, free for the next lap
	seq atomic.Uint64
	val T
}

// Slots are deliberately NOT padded to a cache line each: the dominant
// access pattern is the batch reservation (EnqueueBatch/DequeueBatch), which
// scans and fills contiguous runs of slots — with 16-byte slots a 64-byte
// line carries four of them, so a 32-packet batch touches 8 lines instead of
// the 32 that per-slot padding would cost. Producer/consumer false sharing
// on a boundary slot happens at most once per batch and loses to the 4×
// locality win (rte_ring makes the same call). The head and tail indices,
// which EVERY operation hits, are the ones padded apart above.

// NewMPMC returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func NewMPMC[T any](capacity int) *MPMC[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	q := &MPMC[T]{slots: make([]slot[T], size), mask: uint64(size - 1)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap reports capacity. Unlike SPSC, no slot is sacrificed: fullness is
// encoded in the per-slot sequence numbers.
func (q *MPMC[T]) Cap() int { return len(q.slots) }

// Len reports an instantaneous occupancy estimate (reserved slots count as
// occupied).
func (q *MPMC[T]) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// Enqueue adds v; it reports false when the ring is full. Safe for any
// number of concurrent producers.
func (q *MPMC[T]) Enqueue(v T) bool {
	pos := q.tail.Load()
	for {
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if q.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				return true
			}
			pos = q.tail.Load()
		case d < 0:
			return false // full: slot still holds last lap's value
		default:
			pos = q.tail.Load() // lost a race; reload
		}
	}
}

// EnqueueBatch adds up to len(vs) items with one tail CAS per attempt and
// reports how many were accepted. Items are published in order; a partial
// count means the ring filled.
func (q *MPMC[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	for {
		pos := q.tail.Load()
		// Scan the free prefix before reserving: after a successful CAS the
		// reserved slots are known-writable, so no per-slot spin is needed.
		n := uint64(0)
		for n < uint64(len(vs)) {
			if q.slots[(pos+n)&q.mask].seq.Load() != pos+n {
				break
			}
			n++
		}
		if n == 0 {
			// Distinguish "full" from "lost a race": if tail moved, retry.
			if q.tail.Load() == pos {
				return 0
			}
			continue
		}
		if !q.tail.CompareAndSwap(pos, pos+n) {
			continue
		}
		for i := uint64(0); i < n; i++ {
			s := &q.slots[(pos+i)&q.mask]
			s.val = vs[i]
			s.seq.Store(pos + i + 1)
		}
		return int(n)
	}
}

// Dequeue removes the oldest item. Safe for any number of concurrent
// consumers.
func (q *MPMC[T]) Dequeue() (v T, ok bool) {
	pos := q.head.Load()
	for {
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos+1); {
		case d == 0:
			if q.head.CompareAndSwap(pos, pos+1) {
				v = s.val
				var zero T
				s.val = zero
				s.seq.Store(pos + uint64(len(q.slots)))
				return v, true
			}
			pos = q.head.Load()
		case d < 0:
			return v, false // empty (or producer mid-publish; caller retries)
		default:
			pos = q.head.Load()
		}
	}
}

// DequeueBatch removes up to len(dst) items into dst with one head CAS per
// attempt, reporting the count. Only the contiguously published prefix is
// taken, so a slow producer mid-publish bounds the batch rather than
// stalling the consumer.
func (q *MPMC[T]) DequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	for {
		pos := q.head.Load()
		n := uint64(0)
		for n < uint64(len(dst)) {
			if q.slots[(pos+n)&q.mask].seq.Load() != pos+n+1 {
				break
			}
			n++
		}
		if n == 0 {
			if q.head.Load() == pos {
				return 0
			}
			continue
		}
		if !q.head.CompareAndSwap(pos, pos+n) {
			continue
		}
		var zero T
		for i := uint64(0); i < n; i++ {
			s := &q.slots[(pos+i)&q.mask]
			dst[i] = s.val
			s.val = zero
			s.seq.Store(pos + i + uint64(len(q.slots)))
		}
		return int(n)
	}
}
