package ring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

// TestBufferModelEquivalence drives the ring with random operation
// sequences and checks it against a plain-slice reference model.
func TestBufferModelEquivalence(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%63) + 2
		r := NewBuffer(capacity, 0.8, 0.6)
		pool := packet.NewPool(capacity * 2)
		var model []*packet.Packet
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 500; op++ {
			if rng.Intn(2) == 0 {
				pkt := pool.Get()
				if pkt == nil {
					// Pool drained because the model holds them; skip.
					continue
				}
				ok := r.Enqueue(simtime.Cycles(op), pkt)
				wantOK := len(model) < capacity
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, pkt)
				} else {
					pkt.Release()
				}
			} else {
				got := r.Dequeue(simtime.Cycles(op))
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if got != want {
						return false
					}
					got.Release()
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSPSCModelEquivalence drives the SPSC ring single-threaded with random
// mixes of single and batch operations against a plain-slice model: FIFO
// order and exact element conservation must hold, including the cached-index
// fast paths (which only this mix of refresh patterns exercises).
func TestSPSCModelEquivalence(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		r := NewSPSC[int](int(capRaw%31) + 2)
		capacity := r.Cap()
		var model []int
		rng := rand.New(rand.NewSource(seed))
		next := 0
		scratch := make([]int, 40)
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0:
				ok := r.Enqueue(next)
				if ok != (len(model) < capacity) {
					return false
				}
				if ok {
					model = append(model, next)
					next++
				}
			case 1:
				k := rng.Intn(len(scratch)) + 1
				for i := 0; i < k; i++ {
					scratch[i] = next + i
				}
				n := r.EnqueueBatch(scratch[:k])
				want := capacity - len(model)
				if want > k {
					want = k
				}
				if n != want {
					return false
				}
				model = append(model, scratch[:n]...)
				next += n
			case 2:
				v, ok := r.Dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			default:
				k := rng.Intn(len(scratch)) + 1
				n := r.DequeueBatch(scratch[:k])
				want := len(model)
				if want > k {
					want = k
				}
				if n != want {
					return false
				}
				for i := 0; i < n; i++ {
					if scratch[i] != model[i] {
						return false
					}
				}
				model = model[n:]
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWatermarkInvariants: AboveHigh and BelowLow can never hold
// simultaneously, and TimeAboveHigh is zero exactly when below the mark.
func TestWatermarkInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := NewBuffer(32, 0.8, 0.6)
		pool := packet.NewPool(64)
		rng := rand.New(rand.NewSource(seed))
		now := simtime.Cycles(0)
		for op := 0; op < 300; op++ {
			now += simtime.Cycles(rng.Intn(100))
			if rng.Intn(2) == 0 {
				if pkt := pool.Get(); pkt != nil {
					if !r.Enqueue(now, pkt) {
						pkt.Release()
					}
				}
			} else if pkt := r.Dequeue(now); pkt != nil {
				pkt.Release()
			}
			if r.AboveHigh() && r.BelowLow() {
				return false
			}
			if !r.AboveHigh() && r.TimeAboveHigh(now) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
