package ring

import (
	"testing"

	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

func newTestBuffer(capacity int) (*Buffer, *packet.Pool) {
	return NewBuffer(capacity, 0.80, 0.60), packet.NewPool(capacity * 2)
}

func TestBufferFIFO(t *testing.T) {
	r, pool := newTestBuffer(8)
	var pkts []*packet.Packet
	for i := 0; i < 5; i++ {
		pkt := pool.Get()
		pkt.Hop = i
		pkts = append(pkts, pkt)
		if !r.Enqueue(0, pkt) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		pkt := r.Dequeue(0)
		if pkt != pkts[i] {
			t.Fatalf("dequeue %d: wrong packet (hop %d)", i, pkt.Hop)
		}
	}
	if r.Dequeue(0) != nil {
		t.Fatal("dequeue on empty should be nil")
	}
}

func TestBufferRejectsWhenFull(t *testing.T) {
	r, pool := newTestBuffer(4)
	for i := 0; i < 4; i++ {
		if !r.Enqueue(0, pool.Get()) {
			t.Fatalf("enqueue %d failed below capacity", i)
		}
	}
	pkt := pool.Get()
	if r.Enqueue(0, pkt) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	if r.Rejected != 1 {
		t.Fatalf("Rejected = %d", r.Rejected)
	}
	pkt.Release()
}

func TestBufferWrapAround(t *testing.T) {
	r, pool := newTestBuffer(4)
	// Cycle through the ring several times its capacity.
	for i := 0; i < 20; i++ {
		pkt := pool.Get()
		pkt.Hop = i
		if !r.Enqueue(0, pkt) {
			t.Fatalf("enqueue %d failed", i)
		}
		got := r.Dequeue(0)
		if got.Hop != i {
			t.Fatalf("iteration %d: got hop %d", i, got.Hop)
		}
		got.Release()
	}
	if r.Enqueued != 20 || r.Dequeued != 20 {
		t.Fatalf("counters: enq=%d deq=%d", r.Enqueued, r.Dequeued)
	}
}

func TestWatermarks(t *testing.T) {
	r := NewBuffer(10, 0.80, 0.60)
	pool := packet.NewPool(16)
	if r.HighWater() != 8 || r.LowWater() != 6 {
		t.Fatalf("watermarks = %d/%d, want 8/6", r.HighWater(), r.LowWater())
	}
	for i := 0; i < 7; i++ {
		r.Enqueue(100, pool.Get())
	}
	if r.AboveHigh() {
		t.Fatal("7 < 8 should not be above high")
	}
	if r.BelowLow() {
		t.Fatal("7 >= 6 should not be below low")
	}
	r.Enqueue(200, pool.Get()) // now 8 = high watermark
	if !r.AboveHigh() {
		t.Fatal("8 >= 8 should be above high")
	}
	if got := r.TimeAboveHigh(500); got != 300 {
		t.Fatalf("TimeAboveHigh = %d, want 300", got)
	}
	// Dropping below high resets the above-timer.
	r.Dequeue(600).Release()
	if r.TimeAboveHigh(700) != 0 {
		t.Fatal("TimeAboveHigh should reset below high watermark")
	}
	// Crossing up again restarts the clock.
	r.Enqueue(800, pool.Get())
	if got := r.TimeAboveHigh(900); got != 100 {
		t.Fatalf("TimeAboveHigh after recross = %d, want 100", got)
	}
	for r.Len() > 5 {
		r.Dequeue(1000).Release()
	}
	if !r.BelowLow() {
		t.Fatal("5 < 6 should be below low")
	}
}

// TestTinyRingWatermarkClamp is the regression test for truncation-to-zero
// watermarks: a 1-slot ring at 0.8/0.6 used to compute high=0 (permanently
// "above high", so backpressure throttled forever) and low=0 (BelowLow never
// true, so a throttle could never clear).
func TestTinyRingWatermarkClamp(t *testing.T) {
	for _, capacity := range []int{1, 2, 3} {
		r := NewBuffer(capacity, 0.8, 0.6)
		if r.HighWater() < 1 {
			t.Errorf("cap %d: high watermark %d < 1 descriptor", capacity, r.HighWater())
		}
		if r.LowWater() < 1 {
			t.Errorf("cap %d: low watermark %d < 1 descriptor", capacity, r.LowWater())
		}
		if r.LowWater() > r.HighWater() {
			t.Errorf("cap %d: low %d > high %d", capacity, r.LowWater(), r.HighWater())
		}
		if r.AboveHigh() {
			t.Errorf("cap %d: empty ring reports above-high", capacity)
		}
		if !r.BelowLow() {
			t.Errorf("cap %d: empty ring not below-low", capacity)
		}
	}
	// The clamp keeps ordering even when lowFrac is 0.
	if h, l := ClampWatermarks(4, 0.1, 0); h != 1 || l != 1 {
		t.Errorf("ClampWatermarks(4, 0.1, 0) = %d/%d, want 1/1", h, l)
	}
}

func TestWatermarkValidation(t *testing.T) {
	for _, c := range []struct{ high, low float64 }{
		{0, 0}, {1.5, 0.5}, {0.5, 0.8}, {0.8, -0.1},
	} {
		func() {
			defer func() { recover() }()
			NewBuffer(10, c.high, c.low)
			t.Errorf("NewBuffer(10, %v, %v) did not panic", c.high, c.low)
		}()
	}
}

func TestDequeueBatch(t *testing.T) {
	r, pool := newTestBuffer(64)
	for i := 0; i < 10; i++ {
		r.Enqueue(0, pool.Get())
	}
	dst := make([]*packet.Packet, 32)
	if n := r.DequeueBatch(0, dst, 32); n != 10 {
		t.Fatalf("batch = %d, want 10", n)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after draining batch", r.Len())
	}
	// max smaller than dst.
	for i := 0; i < 10; i++ {
		r.Enqueue(0, pool.Get())
	}
	if n := r.DequeueBatch(0, dst, 4); n != 4 {
		t.Fatalf("bounded batch = %d, want 4", n)
	}
}

func TestScan(t *testing.T) {
	r, pool := newTestBuffer(8)
	for i := 0; i < 5; i++ {
		pkt := pool.Get()
		pkt.ChainID = i
		r.Enqueue(0, pkt)
	}
	var seen []int
	r.Scan(func(p *packet.Packet) bool {
		seen = append(seen, p.ChainID)
		return true
	})
	for i, v := range seen {
		if v != i {
			t.Fatalf("scan order wrong: %v", seen)
		}
	}
	// Early stop.
	n := 0
	r.Scan(func(p *packet.Packet) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDrainAndRelease(t *testing.T) {
	r, pool := newTestBuffer(8)
	for i := 0; i < 6; i++ {
		r.Enqueue(0, pool.Get())
	}
	before := pool.Available()
	if n := r.DrainAndRelease(0); n != 6 {
		t.Fatalf("drained %d, want 6", n)
	}
	if pool.Available() != before+6 {
		t.Fatal("descriptors not returned to pool")
	}
	if r.Peek() != nil {
		t.Fatal("ring not empty after drain")
	}
}

func TestPeek(t *testing.T) {
	r, pool := newTestBuffer(4)
	if r.Peek() != nil {
		t.Fatal("peek on empty should be nil")
	}
	pkt := pool.Get()
	r.Enqueue(0, pkt)
	if r.Peek() != pkt {
		t.Fatal("peek returned wrong packet")
	}
	if r.Len() != 1 {
		t.Fatal("peek must not dequeue")
	}
}

func BenchmarkBufferEnqueueDequeue(b *testing.B) {
	r := NewBuffer(4096, 0.8, 0.6)
	pool := packet.NewPool(4096)
	pkt := pool.Get()
	var now simtime.Cycles
	for i := 0; i < b.N; i++ {
		now++
		r.Enqueue(now, pkt)
		r.Dequeue(now)
	}
}
