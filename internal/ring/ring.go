// Package ring provides the descriptor queues that connect the NF manager
// and network functions. Buffer is the simulator's bounded FIFO with the
// HIGH/LOW watermark accounting NFVnice's backpressure is built on; SPSC (in
// spsc.go) is a lock-free single-producer single-consumer ring used by the
// concurrent goroutine dataplane, mirroring DPDK's rte_ring.
package ring

import (
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

// Buffer is a bounded FIFO of packet descriptors with watermark state.
// It is single-threaded, as the whole discrete-event simulation is.
type Buffer struct {
	buf  []*packet.Packet
	head int // next dequeue position
	tail int // next enqueue position
	n    int

	highWater int
	lowWater  int

	// aboveSince is the time the occupancy last crossed up through the
	// high watermark, used for the backpressure "queuing time above
	// threshold" condition. Zero when below.
	aboveSince simtime.Cycles
	above      bool

	// Enqueued, Dequeued and Rejected count ring operations.
	Enqueued uint64
	Dequeued uint64
	Rejected uint64
}

// NewBuffer returns a ring holding up to capacity descriptors with
// watermarks expressed as fractions of capacity (e.g. 0.80 and 0.60).
func NewBuffer(capacity int, highFrac, lowFrac float64) *Buffer {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	if highFrac <= 0 || highFrac > 1 || lowFrac < 0 || lowFrac > highFrac {
		panic("ring: watermarks must satisfy 0 <= low <= high <= 1")
	}
	high, low := ClampWatermarks(capacity, highFrac, lowFrac)
	return &Buffer{
		buf:       make([]*packet.Packet, capacity),
		highWater: high,
		lowWater:  low,
	}
}

// ClampWatermarks converts fractional watermarks to descriptor counts,
// clamping both to at least one descriptor. Without the clamp a tiny ring
// (e.g. capacity 1 at highFrac 0.8) truncates to a high watermark of 0 —
// permanently "above high", so backpressure throttles forever — and a low
// watermark of 0 can never be gone below, so a throttle would never clear.
func ClampWatermarks(capacity int, highFrac, lowFrac float64) (high, low int) {
	high = int(float64(capacity) * highFrac)
	low = int(float64(capacity) * lowFrac)
	if high < 1 {
		high = 1
	}
	if low < 1 {
		low = 1
	}
	if low > high {
		low = high
	}
	return high, low
}

// Len reports current occupancy.
func (r *Buffer) Len() int { return r.n }

// Cap reports capacity.
func (r *Buffer) Cap() int { return len(r.buf) }

// Free reports remaining slots.
func (r *Buffer) Free() int { return len(r.buf) - r.n }

// HighWater and LowWater report the watermark thresholds in descriptors.
func (r *Buffer) HighWater() int { return r.highWater }
func (r *Buffer) LowWater() int  { return r.lowWater }

// AboveHigh reports whether occupancy is at or above the high watermark.
func (r *Buffer) AboveHigh() bool { return r.n >= r.highWater }

// BelowLow reports whether occupancy is below the low watermark.
func (r *Buffer) BelowLow() bool { return r.n < r.lowWater }

// TimeAboveHigh reports how long occupancy has continuously been at or above
// the high watermark as of now; zero when below.
func (r *Buffer) TimeAboveHigh(now simtime.Cycles) simtime.Cycles {
	if !r.above {
		return 0
	}
	return now - r.aboveSince
}

// Enqueue appends pkt, returning false (and counting a rejection) when full.
// now drives watermark crossing timestamps.
func (r *Buffer) Enqueue(now simtime.Cycles, pkt *packet.Packet) bool {
	if r.n == len(r.buf) {
		r.Rejected++
		return false
	}
	r.buf[r.tail] = pkt
	r.tail++
	if r.tail == len(r.buf) {
		r.tail = 0
	}
	r.n++
	r.Enqueued++
	if !r.above && r.n >= r.highWater {
		r.above = true
		r.aboveSince = now
	}
	return true
}

// Dequeue removes and returns the oldest descriptor, or nil when empty.
func (r *Buffer) Dequeue(now simtime.Cycles) *packet.Packet {
	if r.n == 0 {
		return nil
	}
	pkt := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	r.Dequeued++
	if r.above && r.n < r.highWater {
		r.above = false
	}
	return pkt
}

// DequeueBatch removes up to max descriptors into dst and reports the count.
func (r *Buffer) DequeueBatch(now simtime.Cycles, dst []*packet.Packet, max int) int {
	if max > len(dst) {
		max = len(dst)
	}
	n := 0
	for n < max {
		pkt := r.Dequeue(now)
		if pkt == nil {
			break
		}
		dst[n] = pkt
		n++
	}
	return n
}

// Peek returns the oldest descriptor without removing it, or nil when empty.
func (r *Buffer) Peek() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// Scan calls fn over queued descriptors from oldest to newest without
// dequeuing. The manager uses this to classify the service chains present in
// an overloaded queue (cross-chain backpressure).
func (r *Buffer) Scan(fn func(*packet.Packet) bool) {
	i := r.head
	for k := 0; k < r.n; k++ {
		if !fn(r.buf[i]) {
			return
		}
		i++
		if i == len(r.buf) {
			i = 0
		}
	}
}

// DrainAndRelease empties the ring, releasing every descriptor back to its
// pool, and reports how many were dropped. Used at teardown and when a chain
// is torn down mid-run.
func (r *Buffer) DrainAndRelease(now simtime.Cycles) int {
	n := 0
	for {
		pkt := r.Dequeue(now)
		if pkt == nil {
			return n
		}
		pkt.Release()
		n++
	}
}
