package ring

import "sync/atomic"

// Cache-line layout helpers shared by the rings and the dataplane's hot
// structs.
//
// The contract these helpers give is deliberately weaker than "aligned to a
// cache line" — Go's allocator guarantees only size-class alignment — but
// still sufficient to kill false sharing: two fields separated by at least
// CacheLine bytes of padding can never occupy the same CacheLine-sized line,
// regardless of where the enclosing struct starts. Group fields by writer,
// put a Pad between groups, and a core hammering one group's line never
// invalidates another group's.
//
// CacheLine is 64 bytes: the coherence-granule size on every amd64 part and
// on most arm64 server parts. Some arm64 (and Apple) designs prefetch line
// pairs, for which 128 would be safer; 64 is kept because the padded structs
// here are replicated per stage/mover and doubling them measurably grows the
// working set. The false-sharing microbenchmark (BenchmarkFalseSharing)
// validates the choice on the host it runs on.
const CacheLine = 64

// Pad is one cache line of dead space. Embed it (as an anonymous `_` field)
// between groups of fields written by different goroutines.
type Pad [CacheLine]byte

// PaddedUint64 is an atomic.Uint64 alone on its cache line(s): the value
// plus trailing padding spans a full line, so two adjacent PaddedUint64s in
// an array or struct never share one. Use it for per-worker counters that
// sit in arrays; for struct fields, grouping with Pad separators is usually
// cheaper.
type PaddedUint64 struct {
	atomic.Uint64
	_ [CacheLine - 8]byte
}

// PaddedInt64 is the signed counterpart of PaddedUint64.
type PaddedInt64 struct {
	atomic.Int64
	_ [CacheLine - 8]byte
}
